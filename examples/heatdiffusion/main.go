// Heat diffusion with in-situ analysis: a real numerical kernel — a
// distributed Jacobi relaxation with periodic halo exchange — runs as the
// simulation component, concurrently coupled with an analysis application
// that pulls the final temperature field straight out of the solver's
// memory and computes global statistics in situ.
//
// This is the complete pattern the paper targets: the solver's
// intra-application communication (halo exchanges over the application
// communicator) and the inter-application coupling (direct memory-to-memory
// field transfer) both run on the framework, with the data-centric mapping
// keeping the coupling node-local.
//
// Run with: go run ./examples/heatdiffusion
package main

import (
	"fmt"
	"log"
	"math"

	cods "github.com/insitu/cods"
	"github.com/insitu/cods/internal/analysis"
	"github.com/insitu/cods/internal/apps"
)

const (
	solverID   = 1
	analysisID = 2
	sweeps     = 8
	side       = 32
)

func main() {
	fw, err := cods.New(cods.Config{
		Nodes:        10,
		CoresPerNode: 4,
		Domain:       []int{side, side},
	})
	if err != nil {
		log.Fatal(err)
	}
	solverDecomp, err := fw.BlockedDecomposition([]int{8, 4}) // 32 tasks
	if err != nil {
		log.Fatal(err)
	}
	analysisDecomp, err := fw.BlockedDecomposition([]int{2, 4}) // 8 tasks
	if err != nil {
		log.Fatal(err)
	}

	// A hot disc in a cold plate.
	initial := func(p cods.Point) float64 {
		dx := float64(p[0]) - side/2
		dy := float64(p[1]) - side/2
		if dx*dx+dy*dy < 25 {
			return 100
		}
		return 0
	}
	if err := fw.RegisterApp(cods.AppSpec{
		ID:     solverID,
		Decomp: solverDecomp,
		Run: apps.NewJacobi(apps.JacobiConfig{
			Var: "temperature", Iterations: sweeps, Init: initial, Mode: apps.Concurrent,
		}),
	}); err != nil {
		log.Fatal(err)
	}

	if err := fw.RegisterApp(cods.AppSpec{
		ID:     analysisID,
		Decomp: analysisDecomp,
		Run: func(ctx *cods.AppContext) error {
			solver := ctx.Producers[solverID]
			moments := analysis.NewMoments()
			hist, err := analysis.NewHistogram(0, 100, 10)
			if err != nil {
				return err
			}
			for _, region := range ctx.Decomp.Region(ctx.Rank) {
				field, err := ctx.Space.GetConcurrent(solver, "temperature", sweeps, region)
				if err != nil {
					return err
				}
				moments.AddAll(field)
				hist.AddAll(field)
			}
			global, err := analysis.ReduceMoments(ctx.Comm, moments)
			if err != nil {
				return err
			}
			ghist, err := analysis.ReduceHistogram(ctx.Comm, hist)
			if err != nil {
				return err
			}
			if ctx.Rank == 0 {
				fmt.Printf("after %d sweeps: mean %.4f, max %.4f, stddev %.4f\n",
					sweeps, global.Mean(), global.Max, math.Sqrt(global.Variance()))
				fmt.Print("temperature histogram:")
				for _, b := range ghist.Bins {
					fmt.Printf(" %.0f", b)
				}
				fmt.Println()
			}
			return nil
		},
	}); err != nil {
		log.Fatal(err)
	}

	if _, err := fw.RunWorkflowText("APP_ID 1\nAPP_ID 2\nBUNDLE 1 2\n", cods.DataCentric); err != nil {
		log.Fatal(err)
	}
	tr := fw.Traffic()
	fmt.Printf("halo exchange: %d B over network; coupling: %d B network, %d B in-situ\n",
		tr.IntraNetwork, tr.CoupledNetwork, tr.CoupledShm)
}
