// Coupled climate modeling: the paper's second motivating scenario
// (Section II-A), modeled on CESM. The atmosphere model runs first and
// stores its boundary fields in the CoDS distributed in-memory space; the
// land and sea-ice models then launch on the same allocation — the
// client-side data-centric mapping re-dispatches each of their tasks to
// the node where the atmosphere data it needs is stored — and consume the
// fields in situ.
//
// The workflow is exactly the paper's Listing 1 climate DAG.
//
// Run with: go run ./examples/climate
package main

import (
	"fmt"
	"log"

	cods "github.com/insitu/cods"
)

const climateDAG = `
# Climate Modeling Workflow
# Atmosphere model has appid=1
# Land model has appid=2, Sea-ice model has appid=3
APP_ID 1
APP_ID 2
APP_ID 3
PARENT_APPID 1 CHILD_APPID 2
PARENT_APPID 1 CHILD_APPID 3
BUNDLE 1
BUNDLE 2
BUNDLE 3
`

const (
	atmosphereID = 1
	landID       = 2
	seaIceID     = 3
)

func main() {
	fw, err := cods.New(cods.Config{
		Nodes:        8,
		CoresPerNode: 4,
		Domain:       []int{32, 32, 32},
	})
	if err != nil {
		log.Fatal(err)
	}

	atmosDecomp, err := fw.BlockedDecomposition([]int{4, 4, 2}) // 32 tasks
	if err != nil {
		log.Fatal(err)
	}
	landDecomp, err := fw.BlockedDecomposition([]int{2, 2, 2}) // 8 tasks
	if err != nil {
		log.Fatal(err)
	}
	iceDecomp, err := fw.BlockedDecomposition([]int{2, 3, 4}) // 24 tasks
	if err != nil {
		log.Fatal(err)
	}

	// Atmosphere: computes surface fluxes over its blocks and stores them
	// in the space for the models that run after it.
	err = fw.RegisterApp(cods.AppSpec{
		ID:     atmosphereID,
		Decomp: atmosDecomp,
		Run: func(ctx *cods.AppContext) error {
			for _, block := range ctx.Decomp.Region(ctx.Rank) {
				flux := make([]float64, block.Volume())
				i := 0
				block.Each(func(p cods.Point) {
					flux[i] = 300.0 + 0.1*float64(p[0]) - 0.05*float64(p[2])
					i++
				})
				if err := ctx.Space.PutSequential("surface-flux", 0, block, flux); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Land and sea-ice both consume the atmosphere's boundary field over
	// their own (different) decompositions and reduce a diagnostic.
	consume := func(name string, decomp *cods.Decomposition, id int) cods.AppSpec {
		return cods.AppSpec{
			ID:       id,
			Decomp:   decomp,
			ReadsVar: "surface-flux",
			Run: func(ctx *cods.AppContext) error {
				ctx.Space.SetPhase(fmt.Sprintf("couple:%d:0", id))
				local := 0.0
				for _, region := range ctx.Decomp.Region(ctx.Rank) {
					flux, err := ctx.Space.GetSequential("surface-flux", 0, region)
					if err != nil {
						return err
					}
					for _, v := range flux {
						local += v
					}
				}
				mean, err := ctx.Comm.Allreduce(0, []float64{local})
				if err != nil {
					return err
				}
				if ctx.Rank == 0 {
					fmt.Printf("%s: domain-mean surface flux %.3f\n",
						name, mean[0]/float64(32*32*32))
				}
				return nil
			},
		}
	}
	if err := fw.RegisterApp(consume("land   ", landDecomp, landID)); err != nil {
		log.Fatal(err)
	}
	if err := fw.RegisterApp(consume("sea-ice", iceDecomp, seaIceID)); err != nil {
		log.Fatal(err)
	}

	report, err := fw.RunWorkflowText(climateDAG, cods.DataCentric)
	if err != nil {
		log.Fatal(err)
	}
	tr := fw.Traffic()
	total := tr.CoupledNetwork + tr.CoupledShm
	fmt.Printf("workflow: %d bundles, %d tasks\n", report.BundlesRun, report.TasksRun)
	fmt.Printf("boundary data: %d B total, %.1f%% consumed in-situ from node-local memory\n",
		total, 100*float64(tr.CoupledShm)/float64(total))
}
