// Online data processing: the paper's first motivating scenario
// (Section II-A). A simulation streams its field every iteration to a
// concurrently running analysis application — the end-to-end I/O pipeline
// pattern of ADIOS-style in-situ processing — instead of writing files.
//
// The example runs the same workflow twice, once under the launcher
// baseline and once under the data-centric mapping, and prints the
// network/shared-memory split of the coupled data, reproducing the effect
// of the paper's Figure 8 on a laptop-sized configuration.
//
// Run with: go run ./examples/onlineproc
package main

import (
	"fmt"
	"log"

	cods "github.com/insitu/cods"
)

const (
	simulationID = 1
	analysisID   = 2
	iterations   = 4
)

// buildWorkflow wires one framework instance with the simulation and
// analysis applications.
func buildWorkflow() (*cods.Framework, *cods.DAG, error) {
	fw, err := cods.New(cods.Config{
		Nodes:        10,
		CoresPerNode: 4,
		Domain:       []int{32, 32, 32},
	})
	if err != nil {
		return nil, nil, err
	}
	simDecomp, err := fw.BlockedDecomposition([]int{4, 4, 2}) // 32 tasks
	if err != nil {
		return nil, nil, err
	}
	anaDecomp, err := fw.BlockedDecomposition([]int{2, 2, 2}) // 8 tasks
	if err != nil {
		return nil, nil, err
	}

	// The simulation: per iteration it advances its local state (here a
	// trivial stencil-flavoured update) and publishes the field.
	err = fw.RegisterApp(cods.AppSpec{
		ID:     simulationID,
		Decomp: simDecomp,
		Run: func(ctx *cods.AppContext) error {
			blocks := ctx.Decomp.Region(ctx.Rank)
			state := make(map[string][]float64, len(blocks))
			for _, b := range blocks {
				state[b.String()] = make([]float64, b.Volume())
			}
			for version := 0; version < iterations; version++ {
				ctx.Space.SetPhase(fmt.Sprintf("couple:%d:%d", simulationID, version))
				for _, b := range blocks {
					field := state[b.String()]
					for i := range field {
						field[i] += float64(version) // stand-in for the solver step
					}
					out := append([]float64(nil), field...)
					if err := ctx.Space.PutConcurrent("pressure", version, b, out); err != nil {
						return err
					}
				}
			}
			return nil
		},
	})
	if err != nil {
		return nil, nil, err
	}

	// The analysis: per iteration it pulls its region directly from the
	// simulation's memory and computes a local statistic, then reduces it
	// across the analysis ranks.
	err = fw.RegisterApp(cods.AppSpec{
		ID:     analysisID,
		Decomp: anaDecomp,
		Run: func(ctx *cods.AppContext) error {
			producer := ctx.Producers[simulationID]
			for version := 0; version < iterations; version++ {
				ctx.Space.SetPhase(fmt.Sprintf("couple:%d:%d", analysisID, version))
				localSum := 0.0
				for _, region := range ctx.Decomp.Region(ctx.Rank) {
					field, err := ctx.Space.GetConcurrent(producer, "pressure", version, region)
					if err != nil {
						return err
					}
					for _, v := range field {
						localSum += v
					}
				}
				global, err := ctx.Comm.Allreduce(0, []float64{localSum})
				if err != nil {
					return err
				}
				want := float64(version*(version+1)/2) * 32 * 32 * 32
				if ctx.Rank == 0 && global[0] != want {
					return fmt.Errorf("iteration %d: global sum %v, want %v", version, global[0], want)
				}
			}
			return nil
		},
	})
	if err != nil {
		return nil, nil, err
	}

	dag, err := cods.NewWorkflow([]int{simulationID, analysisID}, nil,
		[][]int{{simulationID, analysisID}})
	if err != nil {
		return nil, nil, err
	}
	return fw, dag, nil
}

func main() {
	for _, policy := range []cods.Policy{cods.RoundRobin, cods.DataCentric} {
		fw, dag, err := buildWorkflow()
		if err != nil {
			log.Fatal(err)
		}
		if _, err := fw.RunWorkflow(dag, policy); err != nil {
			log.Fatal(err)
		}
		tr := fw.Traffic()
		total := tr.CoupledNetwork + tr.CoupledShm
		retrieval, err := fw.PhaseTime(fmt.Sprintf("couple:%d", analysisID))
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-13s coupled %8d B over network, %8d B in-situ (%.1f%%); retrieval %.3f ms\n",
			policy.String()+":", tr.CoupledNetwork, tr.CoupledShm,
			100*float64(tr.CoupledShm)/float64(total), retrieval*1e3)
	}
}
