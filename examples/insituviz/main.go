// In-situ analysis and visualization pipeline (paper Section VI relates
// the framework to in-situ visualization): a simulation is concurrently
// coupled with a feature-detection stage, which is sequentially coupled
// with a rendering stage. The pipeline exercises both coupling styles in
// one workflow:
//
//	simulation ==bundle== detector  --DAG edge-->  renderer
//
// The detector pulls the raw field directly from the simulation every
// iteration (concurrent coupling), thresholds it and stores the reduced
// feature field in the space (sequential coupling); the renderer launches
// afterwards, is mapped client-side next to the stored features, and
// produces a (text) image.
//
// Run with: go run ./examples/insituviz
package main

import (
	"fmt"
	"log"
	"math"

	cods "github.com/insitu/cods"
	"github.com/insitu/cods/internal/analysis"
)

const (
	simulationID = 1
	detectorID   = 2
	rendererID   = 3
	iterations   = 2
	side         = 32
)

const pipelineDAG = `
APP_ID 1
APP_ID 2
APP_ID 3
PARENT_APPID 2 CHILD_APPID 3
BUNDLE 1 2
BUNDLE 3
`

func main() {
	fw, err := cods.New(cods.Config{
		Nodes:        10,
		CoresPerNode: 4,
		Domain:       []int{side, side, side},
	})
	if err != nil {
		log.Fatal(err)
	}
	simDecomp, err := fw.BlockedDecomposition([]int{4, 2, 2}) // 16 tasks
	if err != nil {
		log.Fatal(err)
	}
	detDecomp, err := fw.BlockedDecomposition([]int{2, 2, 2}) // 8 tasks
	if err != nil {
		log.Fatal(err)
	}
	renDecomp, err := fw.BlockedDecomposition([]int{4, 4, 1}) // 16 tasks
	if err != nil {
		log.Fatal(err)
	}

	// Simulation: a travelling Gaussian blob, published per iteration.
	err = fw.RegisterApp(cods.AppSpec{
		ID:     simulationID,
		Decomp: simDecomp,
		Run: func(ctx *cods.AppContext) error {
			for version := 0; version < iterations; version++ {
				center := float64(8 + 12*version)
				for _, block := range ctx.Decomp.Region(ctx.Rank) {
					field := make([]float64, block.Volume())
					i := 0
					block.Each(func(p cods.Point) {
						dx := float64(p[0]) - center
						dy := float64(p[1]) - float64(side)/2
						dz := float64(p[2]) - float64(side)/2
						field[i] = math.Exp(-(dx*dx + dy*dy + dz*dz) / 64)
						i++
					})
					if err := ctx.Space.PutConcurrent("density", version, block, field); err != nil {
						return err
					}
				}
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Detector: computes in-situ statistics of each snapshot (global
	// moments and the isosurface cell count at density 0.5), then
	// thresholds the final snapshot into a feature mask for the renderer.
	err = fw.RegisterApp(cods.AppSpec{
		ID:     detectorID,
		Decomp: detDecomp,
		Run: func(ctx *cods.AppContext) error {
			producer := ctx.Producers[simulationID]
			for version := 0; version < iterations; version++ {
				moments := analysis.NewMoments()
				var isoCells int64
				for _, region := range ctx.Decomp.Region(ctx.Rank) {
					field, err := ctx.Space.GetConcurrent(producer, "density", version, region)
					if err != nil {
						return err
					}
					moments.AddAll(field)
					n, err := analysis.IsoCells(region, field, 0.5)
					if err != nil {
						return err
					}
					isoCells += n
					mask := make([]float64, len(field))
					for i, v := range field {
						if v > 0.5 {
							mask[i] = 1
						}
					}
					if version == iterations-1 {
						if err := ctx.Space.PutSequential("features", 0, region, mask); err != nil {
							return err
						}
					}
				}
				global, err := analysis.ReduceMoments(ctx.Comm, moments)
				if err != nil {
					return err
				}
				totalIso, err := analysis.ReduceCount(ctx.Comm, isoCells)
				if err != nil {
					return err
				}
				if ctx.Rank == 0 {
					fmt.Printf("detector: step %d density mean %.5f max %.3f, isosurface cells %d\n",
						version, global.Mean(), global.Max, totalIso)
				}
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// Renderer: launched after the detector completes, mapped next to the
	// stored feature mask; projects the mask along z and gathers an ASCII
	// image at rank 0.
	err = fw.RegisterApp(cods.AppSpec{
		ID:       rendererID,
		Decomp:   renDecomp,
		ReadsVar: "features",
		Run: func(ctx *cods.AppContext) error {
			ctx.Space.SetPhase(fmt.Sprintf("couple:%d:0", rendererID))
			var local float64
			for _, region := range ctx.Decomp.Region(ctx.Rank) {
				mask, err := ctx.Space.GetSequential("features", 0, region)
				if err != nil {
					return err
				}
				for _, v := range mask {
					local += v
				}
			}
			totals, err := ctx.Comm.Allreduce(0, []float64{local})
			if err != nil {
				return err
			}
			if ctx.Rank == 0 {
				fmt.Printf("renderer: feature volume = %.0f cells\n", totals[0])
				if totals[0] == 0 {
					return fmt.Errorf("no features detected — pipeline broken")
				}
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	if _, err := fw.RunWorkflowText(pipelineDAG, cods.DataCentric); err != nil {
		log.Fatal(err)
	}
	tr := fw.Traffic()
	fmt.Printf("pipeline traffic: %d B coupled over network, %d B coupled in-situ\n",
		tr.CoupledNetwork, tr.CoupledShm)
	retrieval, err := fw.PhaseTime("couple:")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("simulated retrieval time across the pipeline: %.3f ms\n", retrieval*1e3)
}
