// Coupled fusion simulation pipeline: the workflow the paper's
// introduction describes from the Fusion Simulation Project — kinetic
// pedestal buildup (XGC0), magnetic equilibrium reconstruction (M3D_OMP),
// linear stability check (Elite), nonlinear ELM crash (M3D_MPP) and
// divertor heat-load evaluation (XGC0 again) — as a five-stage
// sequentially coupled DAG.
//
// Each stage consumes the field its predecessor stored in the space and
// produces its own; every launch uses the client-side data-centric mapping
// to land next to its input. The workflow description is fully
// self-contained: domain and decompositions are declared with the DOMAIN
// and DECOMP directives.
//
// Run with: go run ./examples/fusion
package main

import (
	"fmt"
	"log"
	"strings"

	cods "github.com/insitu/cods"
)

const fusionDAG = `
# Coupled fusion simulation workflow (paper Section I)
DOMAIN 32 32 32
APP_ID 1
APP_ID 2
APP_ID 3
APP_ID 4
APP_ID 5
DECOMP 1 blocked 4 4 2
DECOMP 2 blocked 2 2 2
DECOMP 3 blocked 2 2 1
DECOMP 4 blocked 4 2 2
DECOMP 5 blocked 2 4 2
PARENT_APPID 1 CHILD_APPID 2
PARENT_APPID 2 CHILD_APPID 3
PARENT_APPID 3 CHILD_APPID 4
PARENT_APPID 4 CHILD_APPID 5
`

// stages names the pipeline for the report.
var stages = map[int]struct {
	name     string
	produces string
	consumes string
}{
	1: {"XGC0 (pedestal buildup)", "pedestal", ""},
	2: {"M3D_OMP (equilibrium)", "equilibrium", "pedestal"},
	3: {"Elite (stability check)", "stability", "equilibrium"},
	4: {"M3D_MPP (ELM crash)", "elm", "stability"},
	5: {"XGC0 (divertor heat load)", "heatload", "elm"},
}

func main() {
	fw, err := cods.New(cods.Config{Nodes: 8, CoresPerNode: 4, Domain: []int{32, 32, 32}})
	if err != nil {
		log.Fatal(err)
	}
	dag, err := cods.ParseWorkflow(strings.NewReader(fusionDAG))
	if err != nil {
		log.Fatal(err)
	}
	decomps, err := dag.Decompositions(nil)
	if err != nil {
		log.Fatal(err)
	}
	for _, id := range dag.Apps {
		id := id
		st := stages[id]
		spec := cods.AppSpec{
			ID:     id,
			Decomp: decomps[id],
			Run: func(ctx *cods.AppContext) error {
				// Consume the predecessor's field.
				if st.consumes != "" {
					ctx.Space.SetPhase(fmt.Sprintf("couple:%d:0", id))
					for _, region := range ctx.Decomp.Region(ctx.Rank) {
						if _, err := ctx.Space.GetSequential(st.consumes, 0, region); err != nil {
							return err
						}
					}
				}
				// Produce this stage's field.
				for _, block := range ctx.Decomp.Region(ctx.Rank) {
					data := make([]float64, block.Volume())
					for i := range data {
						data[i] = float64(id)
					}
					if err := ctx.Space.PutSequential(st.produces, 0, block, data); err != nil {
						return err
					}
				}
				return nil
			},
		}
		if st.consumes != "" {
			spec.ReadsVar = st.consumes
		}
		if err := fw.RegisterApp(spec); err != nil {
			log.Fatal(err)
		}
	}
	report, err := fw.RunWorkflow(dag, cods.DataCentric)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("fusion pipeline complete: %d stages, %d tasks\n", report.BundlesRun, report.TasksRun)
	for _, id := range dag.Apps {
		fmt.Printf("  stage %d: %s\n", id, stages[id].name)
	}
	tr := fw.Traffic()
	total := tr.CoupledNetwork + tr.CoupledShm
	fmt.Printf("inter-stage data: %d B total, %.1f%% consumed in-situ\n",
		total, 100*float64(tr.CoupledShm)/float64(total))
}
