// Quickstart: two coupled applications share a 3-D field through the CoDS
// shared-space abstraction.
//
// A 32x32x32 domain is decomposed blocked across 8 producer tasks and 4
// consumer tasks. The producer puts its blocks with the concurrent-coupling
// operator; the consumer pulls its regions directly out of the producer's
// memory. With the data-centric mapping, the framework places communicating
// producer and consumer tasks on the same simulated compute nodes, so most
// of the coupled data moves through intra-node shared memory.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	cods "github.com/insitu/cods"
)

func main() {
	fw, err := cods.New(cods.Config{
		Nodes:        3,
		CoresPerNode: 4,
		Domain:       []int{32, 32, 32},
	})
	if err != nil {
		log.Fatal(err)
	}

	producerDecomp, err := fw.BlockedDecomposition([]int{2, 2, 2}) // 8 tasks
	if err != nil {
		log.Fatal(err)
	}
	consumerDecomp, err := fw.BlockedDecomposition([]int{2, 2, 1}) // 4 tasks
	if err != nil {
		log.Fatal(err)
	}

	// The producer fills each owned block with a deterministic field and
	// publishes it for direct consumption.
	err = fw.RegisterApp(cods.AppSpec{
		ID:     1,
		Decomp: producerDecomp,
		Run: func(ctx *cods.AppContext) error {
			for _, block := range ctx.Decomp.Region(ctx.Rank) {
				data := make([]float64, block.Volume())
				i := 0
				block.Each(func(p cods.Point) {
					data[i] = float64(p[0] + p[1] + p[2])
					i++
				})
				if err := ctx.Space.PutConcurrent("temperature", 0, block, data); err != nil {
					return err
				}
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The consumer retrieves its region of interest with a geometric
	// descriptor and checks a sample value.
	err = fw.RegisterApp(cods.AppSpec{
		ID:     2,
		Decomp: consumerDecomp,
		Run: func(ctx *cods.AppContext) error {
			producer := ctx.Producers[1]
			for _, region := range ctx.Decomp.Region(ctx.Rank) {
				field, err := ctx.Space.GetConcurrent(producer, "temperature", 0, region)
				if err != nil {
					return err
				}
				// Verify one corner cell.
				want := float64(region.Min[0] + region.Min[1] + region.Min[2])
				if field[0] != want {
					return fmt.Errorf("rank %d: corner = %v, want %v", ctx.Rank, field[0], want)
				}
			}
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// The workflow: one bundle, both applications scheduled together.
	report, err := fw.RunWorkflowText("APP_ID 1\nAPP_ID 2\nBUNDLE 1 2\n", cods.DataCentric)
	if err != nil {
		log.Fatal(err)
	}

	traffic := fw.Traffic()
	total := traffic.CoupledNetwork + traffic.CoupledShm
	fmt.Printf("ran %d tasks across %d bundles\n", report.TasksRun, report.BundlesRun)
	fmt.Printf("coupled data moved: %d bytes, %.1f%% through intra-node shared memory\n",
		total, 100*float64(traffic.CoupledShm)/float64(total))
}
