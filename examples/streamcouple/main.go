// Streaming coupling: a producer application publishes a bounded-lag
// stream of field versions while a consumer follows it through a cursor —
// the loosely synchronized producer/consumer pattern of in-situ pipelines
// where the two sides advance at their own rates instead of in lock step.
//
// The stream is declared once with its producer count, lag bound and
// policy. Each producer rank publishes its piece of the domain as
// successive versions; under the Backpressure policy a producer blocks
// whenever it would run more than MaxLag versions ahead of the slowest
// cursor, so every consumer observes every version, gap-free, and memory
// stays bounded: versions below every cursor are retired automatically.
//
// Run with: go run ./examples/streamcouple
package main

import (
	"errors"
	"fmt"
	"log"

	cods "github.com/insitu/cods"
)

const (
	producerID = 1
	consumerID = 2
	rounds     = 6
	maxLag     = 2
)

func main() {
	fw, err := cods.New(cods.Config{
		Nodes:        4,
		CoresPerNode: 2,
		Domain:       []int{32, 32},
	})
	if err != nil {
		log.Fatal(err)
	}
	prodDecomp, err := fw.BlockedDecomposition([]int{2, 2}) // 4 producer tasks
	if err != nil {
		log.Fatal(err)
	}
	consDecomp, err := fw.BlockedDecomposition([]int{2, 1}) // 2 consumer tasks
	if err != nil {
		log.Fatal(err)
	}

	// One monotone version sequence per producer piece; with one piece per
	// rank the producer index is the rank itself.
	if err := fw.DeclareStream("field", cods.StreamConfig{
		Producers: 4,
		MaxLag:    maxLag,
		Policy:    cods.Backpressure,
	}); err != nil {
		log.Fatal(err)
	}

	err = fw.RegisterApp(cods.AppSpec{
		ID:     producerID,
		Decomp: prodDecomp,
		Run: func(ctx *cods.AppContext) error {
			pieces := ctx.Decomp.Region(ctx.Rank)
			for round := 0; round < rounds; round++ {
				for _, blk := range pieces {
					// Every cell of version v carries the value v, so the
					// consumer can check version routing cell by cell.
					field := make([]float64, blk.Volume())
					for i := range field {
						field[i] = float64(round)
					}
					ver, err := ctx.Space.Publish("field", ctx.Rank, blk, field)
					if err != nil {
						return err
					}
					if ver != round {
						return fmt.Errorf("rank %d stamped version %d, want %d", ctx.Rank, ver, round)
					}
				}
			}
			// Closing the producer index ends the stream once every rank has.
			return ctx.Space.ClosePublisher("field", ctx.Rank)
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	err = fw.RegisterApp(cods.AppSpec{
		ID:     consumerID,
		Decomp: consDecomp,
		Run: func(ctx *cods.AppContext) error {
			cur, err := ctx.Space.Subscribe("field")
			if err != nil {
				return err
			}
			defer cur.Close()
			observed := 0
			for {
				pos := cur.Pos()
				endOfStream := false
				for _, region := range ctx.Decomp.Region(ctx.Rank) {
					window, err := cur.GetWindow(region, pos, pos)
					if errors.Is(err, cods.ErrStreamEnded) {
						endOfStream = true
						break
					}
					if err != nil {
						return err
					}
					for i, v := range window[0] {
						if v != float64(pos) {
							return fmt.Errorf("rank %d v%d cell %d: got %v", ctx.Rank, pos, i, v)
						}
					}
				}
				if endOfStream {
					break
				}
				if err := cur.Advance(pos + 1); err != nil {
					return err
				}
				observed++
			}
			if observed != rounds {
				return fmt.Errorf("rank %d observed %d versions, want %d", ctx.Rank, observed, rounds)
			}
			fmt.Printf("consumer rank %d followed %d versions gap-free\n", ctx.Rank, observed)
			return nil
		},
	})
	if err != nil {
		log.Fatal(err)
	}

	// A bundle runs producer and consumer concurrently — the stream is the
	// only synchronization between them.
	dag, err := cods.NewWorkflow([]int{producerID, consumerID}, nil,
		[][]int{{producerID, consumerID}})
	if err != nil {
		log.Fatal(err)
	}
	if _, err := fw.RunWorkflow(dag, cods.DataCentric); err != nil {
		log.Fatal(err)
	}
	published, consumed, dropped := fw.StreamStats()
	fmt.Printf("stream: %d versions published, %d consumed, %d dropped (lag bound %d, backpressure)\n",
		published, consumed, dropped, maxLag)
	if dropped != 0 {
		log.Fatalf("backpressure must never drop, saw %d", dropped)
	}
}
