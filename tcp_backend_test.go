package cods_test

// End-to-end smoke test of the multi-process TCP backend: codsrun with
// -backend=tcp launches one codsnode child per node and runs a workflow
// whose every cross-node operation crosses real sockets. The run must
// verify cell-by-cell (codsrun -verify), report the same traffic totals
// as the single-process backend, and produce a reconciled observability
// report.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"

	"github.com/insitu/cods/internal/obs"
	"github.com/insitu/cods/internal/trace"
)

// buildTCPBinaries compiles codsrun and codsnode into one directory so the
// driver finds the child next to itself.
func buildTCPBinaries(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, pkg := range []string{"./cmd/codsrun", "./cmd/codsnode"} {
		out, err := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return dir
}

// trafficLines extracts the deterministic data-volume lines of a codsrun
// transcript (coupled and intra-app; control volumes are deterministic
// too in a fault-free run, so they are included).
func trafficLines(out string) string {
	var keep []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "coupled data:") ||
			strings.HasPrefix(line, "intra-app data:") ||
			strings.HasPrefix(line, "control:") ||
			strings.HasPrefix(line, "workflow complete:") {
			keep = append(keep, line)
		}
	}
	return strings.Join(keep, "\n")
}

// TestTCPDistributedTrace runs a two-node workflow over the TCP backend
// with span tracing and asserts the merged trace is one cross-process
// tree: every remote handler span the codsnode children emitted carries a
// node label and parents under a driver-side span — no orphans, no
// unlabelled remote spans.
func TestTCPDistributedTrace(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process smoke test in -short mode")
	}
	bin := buildTCPBinaries(t)
	dir := t.TempDir()
	dag := filepath.Join(dir, "wf.dag")
	if err := os.WriteFile(dag, []byte("APP_ID 1\nAPP_ID 2\nPARENT_APPID 1 CHILD_APPID 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	spansPath := filepath.Join(dir, "spans.jsonl")
	cmd := exec.Command(filepath.Join(bin, "codsrun"),
		"-backend", "tcp",
		"-nodes", "2", "-cores", "2", "-domain", "8x8",
		"-dag", dag,
		"-app", "1:blocked:2x2", "-app", "2:blocked:2x1",
		"-policy", "round-robin",
		"-spans", spansPath)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("codsrun: %v\n%s", err, out)
	}

	f, err := os.Open(spansPath)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	evs, err := obs.ReadSpans(f)
	if err != nil {
		t.Fatal(err)
	}
	driver := map[obs.SpanID]string{} // driver-side span id -> name
	remote := 0
	for _, ev := range evs {
		if ev.Ev != "b" {
			continue
		}
		if !strings.HasPrefix(ev.Name, "remote:") {
			if ev.Node != "" {
				t.Fatalf("driver span carries a node label: %+v", ev)
			}
			driver[ev.ID] = ev.Name
			continue
		}
		remote++
		if ev.Node == "" {
			t.Errorf("remote span without node label: %+v", ev)
		}
		parent, ok := driver[ev.Parent]
		if !ok {
			t.Errorf("remote span %q parents under %d, not a driver span", ev.Name, ev.Parent)
			continue
		}
		// Data-plane spans hang off the pull that caused them; control
		// spans (DHT lookups) off the task or pull issuing the query.
		if !strings.HasPrefix(parent, "pull:") && !strings.HasPrefix(parent, "task:") {
			t.Errorf("remote span %q parents under %q, want a pull or task span", ev.Name, parent)
		}
	}
	if remote == 0 {
		t.Fatal("two-node TCP run captured no remote handler spans")
	}

	tree := trace.BuildSpanTree(evs)
	if len(tree.Orphans) != 0 {
		t.Fatalf("merged trace has %d orphaned spans", len(tree.Orphans))
	}
	if len(tree.Roots) != 1 || tree.Roots[0].Name != "workflow:round-robin" {
		t.Fatalf("trace roots = %+v", tree.Roots)
	}
}

func TestTCPBackendSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process smoke test in -short mode")
	}
	bin := buildTCPBinaries(t)
	dag := filepath.Join(t.TempDir(), "wf.dag")
	if err := os.WriteFile(dag, []byte("APP_ID 1\nAPP_ID 2\nPARENT_APPID 1 CHILD_APPID 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(backend, reportPath string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, "codsrun"),
			"-backend", backend,
			"-nodes", "2", "-cores", "2", "-domain", "8x8",
			"-dag", dag,
			"-app", "1:blocked:2x2", "-app", "2:blocked:2x1",
			"-policy", "round-robin", "-verify",
			"-report", "-report-path", reportPath)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("codsrun -backend=%s: %v\n%s", backend, err, out)
		}
		return string(out)
	}

	dir := t.TempDir()
	inprocReport := filepath.Join(dir, "inproc.json")
	tcpReport := filepath.Join(dir, "tcp.json")
	inprocOut := run("inproc", inprocReport)
	tcpOut := run("tcp", tcpReport)

	if !strings.Contains(tcpOut, "codsnode 0 serving at") || !strings.Contains(tcpOut, "codsnode 1 serving at") {
		t.Fatalf("tcp run did not launch one codsnode per node:\n%s", tcpOut)
	}
	// -verify compares every retrieved cell against the synthetic fill;
	// equal traffic lines on top of that pin the metered volumes.
	if got, want := trafficLines(tcpOut), trafficLines(inprocOut); got != want {
		t.Fatalf("traffic differs across backends:\ninproc:\n%s\ntcp:\n%s", want, got)
	}

	for _, path := range []string{inprocReport, tcpReport} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var rep struct {
			Reconciled     bool `json:"reconciled"`
			Reconciliation []struct {
				Name     string `json:"name"`
				Registry int64  `json:"registry"`
				External int64  `json:"external"`
				Match    bool   `json:"match"`
			} `json:"reconciliation"`
		}
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !rep.Reconciled || len(rep.Reconciliation) == 0 {
			t.Fatalf("%s: report not reconciled: %+v", path, rep)
		}
		for _, c := range rep.Reconciliation {
			if !c.Match {
				t.Errorf("%s: check %s: registry %d != external %d", path, c.Name, c.Registry, c.External)
			}
		}
	}
}
