package cods_test

// End-to-end smoke test of the multi-process TCP backend: codsrun with
// -backend=tcp launches one codsnode child per node and runs a workflow
// whose every cross-node operation crosses real sockets. The run must
// verify cell-by-cell (codsrun -verify), report the same traffic totals
// as the single-process backend, and produce a reconciled observability
// report.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildTCPBinaries compiles codsrun and codsnode into one directory so the
// driver finds the child next to itself.
func buildTCPBinaries(t *testing.T) string {
	t.Helper()
	dir := t.TempDir()
	for _, pkg := range []string{"./cmd/codsrun", "./cmd/codsnode"} {
		out, err := exec.Command("go", "build", "-o", dir+string(os.PathSeparator), pkg).CombinedOutput()
		if err != nil {
			t.Fatalf("go build %s: %v\n%s", pkg, err, out)
		}
	}
	return dir
}

// trafficLines extracts the deterministic data-volume lines of a codsrun
// transcript (coupled and intra-app; control volumes are deterministic
// too in a fault-free run, so they are included).
func trafficLines(out string) string {
	var keep []string
	for _, line := range strings.Split(out, "\n") {
		if strings.HasPrefix(line, "coupled data:") ||
			strings.HasPrefix(line, "intra-app data:") ||
			strings.HasPrefix(line, "control:") ||
			strings.HasPrefix(line, "workflow complete:") {
			keep = append(keep, line)
		}
	}
	return strings.Join(keep, "\n")
}

func TestTCPBackendSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process smoke test in -short mode")
	}
	bin := buildTCPBinaries(t)
	dag := filepath.Join(t.TempDir(), "wf.dag")
	if err := os.WriteFile(dag, []byte("APP_ID 1\nAPP_ID 2\nPARENT_APPID 1 CHILD_APPID 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	run := func(backend, reportPath string) string {
		t.Helper()
		cmd := exec.Command(filepath.Join(bin, "codsrun"),
			"-backend", backend,
			"-nodes", "2", "-cores", "2", "-domain", "8x8",
			"-dag", dag,
			"-app", "1:blocked:2x2", "-app", "2:blocked:2x1",
			"-policy", "round-robin", "-verify",
			"-report", "-report-path", reportPath)
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("codsrun -backend=%s: %v\n%s", backend, err, out)
		}
		return string(out)
	}

	dir := t.TempDir()
	inprocReport := filepath.Join(dir, "inproc.json")
	tcpReport := filepath.Join(dir, "tcp.json")
	inprocOut := run("inproc", inprocReport)
	tcpOut := run("tcp", tcpReport)

	if !strings.Contains(tcpOut, "codsnode 0 serving at") || !strings.Contains(tcpOut, "codsnode 1 serving at") {
		t.Fatalf("tcp run did not launch one codsnode per node:\n%s", tcpOut)
	}
	// -verify compares every retrieved cell against the synthetic fill;
	// equal traffic lines on top of that pin the metered volumes.
	if got, want := trafficLines(tcpOut), trafficLines(inprocOut); got != want {
		t.Fatalf("traffic differs across backends:\ninproc:\n%s\ntcp:\n%s", want, got)
	}

	for _, path := range []string{inprocReport, tcpReport} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var rep struct {
			Reconciled     bool `json:"reconciled"`
			Reconciliation []struct {
				Name     string `json:"name"`
				Registry int64  `json:"registry"`
				External int64  `json:"external"`
				Match    bool   `json:"match"`
			} `json:"reconciliation"`
		}
		if err := json.Unmarshal(data, &rep); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if !rep.Reconciled || len(rep.Reconciliation) == 0 {
			t.Fatalf("%s: report not reconciled: %+v", path, rep)
		}
		for _, c := range rep.Reconciliation {
			if !c.Match {
				t.Errorf("%s: check %s: registry %d != external %d", path, c.Name, c.Registry, c.External)
			}
		}
	}
}
