package cods_test

// One benchmark per reproduced figure of the paper's evaluation, plus the
// ablation studies from DESIGN.md. Each benchmark regenerates its figure's
// full data series per iteration.
//
// The benchmarks default to the laptop-sized SmallScale so `go test
// -bench=.` stays fast; set CODS_BENCH_SCALE=paper to run them at the
// paper's exact sizes (512/64 and 512/128+384 tasks over a 1024^3 domain —
// figure 16 then sweeps up to 8192 tasks and takes tens of seconds per
// iteration). `codsbench -fig all -scale paper` prints the same series as
// tables.

import (
	"os"
	"testing"

	"github.com/insitu/cods/internal/bench"
	"github.com/insitu/cods/internal/runtime"
)

func benchScale() bench.Scale {
	if os.Getenv("CODS_BENCH_SCALE") == "paper" {
		return bench.PaperScale()
	}
	return bench.SmallScale()
}

func runFig(b *testing.B, fn func(bench.Scale) (*bench.Table, error)) {
	b.Helper()
	sc := benchScale()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tbl, err := fn(sc)
		if err != nil {
			b.Fatal(err)
		}
		if len(tbl.Rows) == 0 {
			b.Fatal("empty figure")
		}
	}
}

// BenchmarkFig08 regenerates Figure 8: concurrent-coupling network bytes,
// data-centric vs round-robin, across decomposition patterns.
func BenchmarkFig08(b *testing.B) { runFig(b, bench.Fig8) }

// BenchmarkFig09 regenerates Figure 9: sequential-coupling network bytes.
func BenchmarkFig09(b *testing.B) { runFig(b, bench.Fig9) }

// BenchmarkFig10 regenerates Figure 10: producer fan-out per consumer task.
func BenchmarkFig10(b *testing.B) { runFig(b, bench.Fig10) }

// BenchmarkFig11 regenerates Figure 11: coupled-data retrieval times.
func BenchmarkFig11(b *testing.B) { runFig(b, bench.Fig11) }

// BenchmarkFig12 regenerates Figure 12: concurrent intra-app network bytes.
func BenchmarkFig12(b *testing.B) { runFig(b, bench.Fig12) }

// BenchmarkFig13 regenerates Figure 13: sequential intra-app network bytes.
func BenchmarkFig13(b *testing.B) { runFig(b, bench.Fig13) }

// BenchmarkFig14 regenerates Figure 14: concurrent communication breakdown.
func BenchmarkFig14(b *testing.B) { runFig(b, bench.Fig14) }

// BenchmarkFig15 regenerates Figure 15: sequential communication breakdown.
func BenchmarkFig15(b *testing.B) { runFig(b, bench.Fig15) }

// BenchmarkFig16 regenerates Figure 16: weak scaling of retrieval time
// (restricted to factors 1-4 at small scale to bound benchmark time; the
// paper-scale run uses the full 16x sweep).
func BenchmarkFig16(b *testing.B) {
	sc := benchScale()
	factors := []int{1, 2, 4}
	if os.Getenv("CODS_BENCH_SCALE") == "paper" {
		factors = []int{1, 2, 4, 8, 16}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := bench.Fig16(sc, factors); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalConcurrent executes (not just computes) the
// concurrent workflow: real execution clients, puts, pulls and metering.
func BenchmarkFunctionalConcurrent(b *testing.B) {
	sc := bench.SmallScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunConcurrentFunctional(sc, runtime.DataCentric, 1, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFunctionalSequential executes the sequential workflow.
func BenchmarkFunctionalSequential(b *testing.B) {
	sc := bench.SmallScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RunSequentialFunctional(sc, runtime.DataCentric, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationLinearization compares Hilbert vs row-major span counts
// (DESIGN.md ablation 1).
func BenchmarkAblationLinearization(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationLinearization(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationScheduleCache measures schedule-cache savings
// (DESIGN.md ablation 2).
func BenchmarkAblationScheduleCache(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationScheduleCache(8); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkAblationPartitioner compares partitioner variants (DESIGN.md
// ablation 3).
func BenchmarkAblationPartitioner(b *testing.B) {
	sc := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.AblationPartitioner(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStagingComparison regenerates the staging-area vs in-situ
// comparison (paper Section VI, quantified).
func BenchmarkStagingComparison(b *testing.B) {
	sc := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.StagingComparison(sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRatioSweep regenerates the coupling/exchange ratio sweep
// (paper Section V-B's applicability condition).
func BenchmarkRatioSweep(b *testing.B) {
	sc := benchScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := bench.RatioSweep(sc, nil); err != nil {
			b.Fatal(err)
		}
	}
}
