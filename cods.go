// Package cods is a distributed data sharing and task execution framework
// for the in-situ execution of coupled scientific workflows, reproducing
// Zhang et al., "Enabling In-situ Execution of Coupled Scientific Workflow
// on Multi-core Platform" (IPDPS 2012).
//
// A workflow is a DAG of data-parallel applications extended with
// "bundles" (applications scheduled simultaneously because they exchange
// data at runtime). The framework places the computation tasks of the
// coupled applications onto the cores of a simulated multi-core machine
// with a data-centric, locality-aware mapping, so that most of the coupled
// data moves through intra-node shared memory instead of the network:
//
//   - concurrently coupled bundles are mapped server-side by partitioning
//     the inter-application communication graph (a from-scratch multilevel
//     k-way partitioner plays the role of METIS);
//   - sequentially coupled consumers are mapped client-side: each
//     execution client queries the CoDS data-lookup service (a DHT over a
//     Hilbert space-filling-curve linearization of the data domain) and
//     re-dispatches its task to the node storing most of its input.
//
// Applications exchange data through the Co-located DataSpaces (CoDS)
// shared-space abstraction: PutConcurrent/GetConcurrent for direct
// producer-to-consumer coupling and PutSequential/GetSequential for
// staging through the distributed in-memory store. All transfers run on
// HybridDART, which picks shared memory or the (simulated) network fabric
// per transfer and meters every byte; a flow-level 3-D torus network
// simulator turns the recorded transfers into transfer times.
//
// # Quick start
//
//	fw, err := cods.New(cods.Config{Nodes: 4, CoresPerNode: 4, Domain: []int{32, 32, 32}})
//	...
//	producerDecomp, _ := fw.BlockedDecomposition([]int{4, 4, 2})
//	fw.RegisterApp(cods.AppSpec{ID: 1, Decomp: producerDecomp, Run: produce})
//	...
//	report, err := fw.RunWorkflowText("APP_ID 1\nAPP_ID 2\nBUNDLE 1 2\n", cods.DataCentric)
//
// See examples/ for complete programs and internal/bench for the
// reproduction of the paper's evaluation.
package cods

import (
	"fmt"
	"io"
	"strings"

	"github.com/insitu/cods/internal/cluster"
	icods "github.com/insitu/cods/internal/cods"
	"github.com/insitu/cods/internal/decomp"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/lock"
	"github.com/insitu/cods/internal/netsim"
	"github.com/insitu/cods/internal/obs"
	"github.com/insitu/cods/internal/retry"
	"github.com/insitu/cods/internal/runtime"
	"github.com/insitu/cods/internal/trace"
	"github.com/insitu/cods/internal/transport"
	"github.com/insitu/cods/internal/workflow"
)

// Re-exported core types; see the internal packages for full reference
// documentation.
type (
	// AppContext is the per-task view an application subroutine receives.
	AppContext = runtime.AppContext
	// AppFunc is an application subroutine, invoked once per task.
	AppFunc = runtime.AppFunc
	// AppSpec declares an application (id, decomposition, subroutine,
	// optionally the variable it reads from a sequential producer).
	AppSpec = runtime.AppSpec
	// Policy selects the task mapping strategy.
	Policy = runtime.Policy
	// Report summarizes a workflow run.
	Report = runtime.Report
	// DAG is a parsed workflow description.
	DAG = workflow.DAG
	// Decomposition maps a data domain onto application ranks.
	Decomposition = decomp.Decomposition
	// BBox is an axis-aligned region descriptor (inclusive Min, exclusive
	// Max), the geometric descriptor of the put/get operators.
	BBox = geometry.BBox
	// Point is an n-dimensional integer coordinate.
	Point = geometry.Point
	// ProducerInfo describes a concurrently coupled producer for
	// GetConcurrent.
	ProducerInfo = icods.ProducerInfo
	// LockClient is a task's handle on the distributed reader/writer lock
	// service (AppContext.Locks), for lock-on-write / lock-on-read
	// coordination of shared variables.
	LockClient = lock.Client
	// FaultPlan is a compiled set of deterministic fault-injection rules
	// for the transport fabric (see ParseFaultPlan).
	FaultPlan = transport.FaultPlan
	// RetryPolicy bounds retried fabric operations: attempt budget,
	// exponential backoff with deterministic jitter, per-operation deadline.
	RetryPolicy = retry.Policy
	// TaskRetryPolicy extends RetryPolicy with task-level remapping; it
	// governs the re-running of failed computation tasks.
	TaskRetryPolicy = runtime.TaskRetryPolicy
	// PullError reports a data retrieval whose transfer ultimately failed;
	// it unwraps to the transport-level cause.
	PullError = icods.PullError
	// TaskError reports a computation task that failed all its attempts.
	TaskError = runtime.TaskError
	// StreamConfig declares a stream's shape: producer rank count, lag
	// bound and the policy applied when the bound would be exceeded.
	StreamConfig = icods.StreamConfig
	// StreamPolicy selects what happens when a consumer falls more than
	// MaxLag versions behind the watermark.
	StreamPolicy = icods.StreamPolicy
	// Cursor is one consumer's subscription to a stream, returned by
	// AppContext.Space.Subscribe.
	Cursor = icods.Cursor
)

// Transport error sentinels, for errors.Is against failures surfacing from
// the put/get operators and the workflow runtime.
var (
	// ErrInjected marks failures produced by the fault injector.
	ErrInjected = transport.ErrInjected
	// ErrEndpointClosed marks operations against a closed endpoint; the
	// retry layers treat it as terminal.
	ErrEndpointClosed = transport.ErrEndpointClosed
	// ErrStreamEnded marks operations against a stream whose producers
	// have all closed.
	ErrStreamEnded = icods.ErrStreamEnded
)

// Stream lag policies.
const (
	// Backpressure blocks a producer while the slowest cursor is MaxLag
	// versions behind.
	Backpressure = icods.Backpressure
	// DropOldest keeps the producer running and force-retires versions
	// older than MaxLag behind the watermark, bumping lagging cursors.
	DropOldest = icods.DropOldest
)

// DefaultRetryPolicy is the policy the command-line tools install when
// retrying is requested without explicit tuning.
func DefaultRetryPolicy() RetryPolicy { return retry.Default() }

// ParseFaultPlan loads and validates a deterministic fault plan from JSON:
//
//	{"seed": 42, "rules": [
//	  {"op": "read", "mode": "error", "prob": 0.05, "max": 40},
//	  {"op": "send", "medium": "shm", "mode": "delay", "delay_us": 50, "prob": 0.1}]}
//
// Malformed input returns an error, never a partially applied plan.
func ParseFaultPlan(data []byte) (*FaultPlan, error) {
	return transport.ParseFaultPlan(data)
}

// Mapping policies.
const (
	// DataCentric is the paper's contribution: server-side graph
	// partitioning for bundles, client-side locality mapping for
	// sequential consumers.
	DataCentric = runtime.DataCentric
	// RoundRobin is the launcher baseline.
	RoundRobin = runtime.RoundRobin
)

// ElemSize is the size in bytes of one domain cell (float64 fields).
const ElemSize = icods.ElemSize

// NewBBox builds a region descriptor from inclusive lower and exclusive
// upper corners, e.g. NewBBox(Point{0,0,0}, Point{10,10,20}).
func NewBBox(min, max Point) BBox { return geometry.NewBBox(min, max) }

// Config sizes the simulated platform and the coupled data domain.
type Config struct {
	// Nodes is the number of compute nodes of the allocation.
	Nodes int
	// CoresPerNode is the core count per node (the paper's Jaguar XT5
	// nodes have 12).
	CoresPerNode int
	// Domain is the size of the coupled data domain, one extent per
	// dimension.
	Domain []int
	// Seed makes the randomized mapping phases deterministic (default 1).
	Seed int64
	// Curve selects the linearization policy of the lookup index space:
	// "hilbert" (or empty, the paper's default), "morton" or "rowmajor".
	Curve string
}

// Framework is the top-level handle: a simulated machine, the CoDS space
// and the workflow management server.
type Framework struct {
	machine *cluster.Machine
	server  *runtime.Server
	domain  geometry.BBox
	tracer  *obs.Tracer
}

// New bootstraps the framework on a simulated machine.
func New(cfg Config) (*Framework, error) {
	if len(cfg.Domain) == 0 {
		return nil, fmt.Errorf("cods: empty domain")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 1
	}
	m, err := cluster.NewMachine(cfg.Nodes, cfg.CoresPerNode)
	if err != nil {
		return nil, err
	}
	domain := geometry.BoxFromSize(cfg.Domain)
	srv, err := runtime.NewServerWithCurve(m, domain, seed, cfg.Curve)
	if err != nil {
		return nil, err
	}
	return &Framework{machine: m, server: srv, domain: domain}, nil
}

// Domain returns the coupled data domain.
func (f *Framework) Domain() BBox { return f.domain.Clone() }

// MachineInfo exposes the simulated machine (topology, metrics) for
// advanced reporting.
func (f *Framework) MachineInfo() *cluster.Machine { return f.machine }

// BlockedDecomposition decomposes the framework's domain with a standard
// blocked distribution over the given process grid.
func (f *Framework) BlockedDecomposition(grid []int) (*Decomposition, error) {
	return decomp.New(decomp.Blocked, f.domain, grid, nil)
}

// CyclicDecomposition decomposes the domain cyclically (block size 1).
func (f *Framework) CyclicDecomposition(grid []int) (*Decomposition, error) {
	return decomp.New(decomp.Cyclic, f.domain, grid, nil)
}

// BlockCyclicDecomposition decomposes the domain block-cyclically with the
// given per-dimension block size.
func (f *Framework) BlockCyclicDecomposition(grid, block []int) (*Decomposition, error) {
	return decomp.New(decomp.BlockCyclic, f.domain, grid, block)
}

// RegisterApp declares an application to the framework. Applications are
// statically registered before the workflow runs, mirroring the paper's
// pre-linked MPI subroutines.
func (f *Framework) RegisterApp(spec AppSpec) error {
	return f.server.RegisterApp(spec)
}

// ParseWorkflow reads a DAG description in the paper's format (APP_ID,
// PARENT_APPID/CHILD_APPID, BUNDLE directives).
func ParseWorkflow(r io.Reader) (*DAG, error) { return workflow.Parse(r) }

// NewWorkflow builds a DAG programmatically; bundles may be nil, leaving
// every application in its own implicit bundle.
func NewWorkflow(apps []int, edges [][2]int, bundles [][]int) (*DAG, error) {
	return workflow.New(apps, edges, bundles)
}

// RunWorkflow executes a workflow to completion under the given mapping
// policy.
func (f *Framework) RunWorkflow(d *DAG, policy Policy) (*Report, error) {
	return f.server.Run(d, policy)
}

// RunWorkflowText parses a DAG description string and runs it.
func (f *Framework) RunWorkflowText(text string, policy Policy) (*Report, error) {
	d, err := ParseWorkflow(strings.NewReader(text))
	if err != nil {
		return nil, err
	}
	return f.RunWorkflow(d, policy)
}

// TrafficReport is the byte accounting of a run, per medium and class.
type TrafficReport struct {
	// CoupledNetwork / CoupledShm are inter-application coupling bytes.
	CoupledNetwork, CoupledShm int64
	// IntraNetwork / IntraShm are intra-application exchange bytes.
	IntraNetwork, IntraShm int64
	// ControlNetwork / ControlShm are framework control bytes (lookup
	// queries, collective bookkeeping).
	ControlNetwork, ControlShm int64
}

// Traffic returns the bytes moved so far, as metered by HybridDART.
func (f *Framework) Traffic() TrafficReport {
	mt := f.machine.Metrics()
	return TrafficReport{
		CoupledNetwork: mt.Bytes(cluster.InterApp, cluster.Network),
		CoupledShm:     mt.Bytes(cluster.InterApp, cluster.SharedMemory),
		IntraNetwork:   mt.Bytes(cluster.IntraApp, cluster.Network),
		IntraShm:       mt.Bytes(cluster.IntraApp, cluster.SharedMemory),
		ControlNetwork: mt.Bytes(cluster.Control, cluster.Network),
		ControlShm:     mt.Bytes(cluster.Control, cluster.SharedMemory),
	}
}

// ResetTraffic clears the byte counters and the flow log (between
// experiments on one framework instance).
func (f *Framework) ResetTraffic() { f.machine.Metrics().Reset() }

// PhaseTime replays the transfers whose phase tag starts with the given
// prefix through the flow-level torus network simulator and returns the
// phase's completion time in seconds. Application code tags phases via
// AppContext.Space.SetPhase; the framework uses "couple:<app>:<version>"
// for consumer retrievals and "halo:<app>:<version>" for stencil
// exchanges.
func (f *Framework) PhaseTime(phasePrefix string) (float64, error) {
	sim, err := netsim.New(netsim.DefaultConfig(), f.machine.NumNodes())
	if err != nil {
		return 0, err
	}
	return sim.PhaseTime(f.machine.Metrics(), phasePrefix), nil
}

// WriteFlows streams every transfer flow recorded so far to w as JSON
// Lines (one flow per line: phase tag, source node, destination node,
// bytes), for archiving or offline analysis.
func (f *Framework) WriteFlows(w io.Writer) error {
	return trace.Write(w, f.machine.Metrics().Flows(""))
}

// MediumStats is the fabric's independent per-medium accounting: every
// transfer increments exactly one medium's bytes and ops at the transport
// choke point. It is the external truth the observability registry is
// reconciled against.
type MediumStats struct {
	ShmBytes, ShmOps         int64
	NetworkBytes, NetworkOps int64
}

// MediumStats returns the fabric's per-medium byte and operation totals.
func (f *Framework) MediumStats() MediumStats {
	fab := f.server.Fabric()
	return MediumStats{
		ShmBytes:     fab.MediumBytes(cluster.SharedMemory),
		ShmOps:       fab.MediumOps(cluster.SharedMemory),
		NetworkBytes: fab.MediumBytes(cluster.Network),
		NetworkOps:   fab.MediumOps(cluster.Network),
	}
}

// AppTraffic returns the bytes received by one application, split by
// medium, for the coupled (inter-application) and intra-application
// classes — the per-consumer breakdown of the paper's Figures 9 and 10.
func (f *Framework) AppTraffic(app int) (coupledShm, coupledNet, intraShm, intraNet int64) {
	mt := f.machine.Metrics()
	return mt.AppBytes(app, cluster.InterApp, cluster.SharedMemory),
		mt.AppBytes(app, cluster.InterApp, cluster.Network),
		mt.AppBytes(app, cluster.IntraApp, cluster.SharedMemory),
		mt.AppBytes(app, cluster.IntraApp, cluster.Network)
}

// EnableObservability switches the process-wide metrics registry on or
// off. Off (the default) leaves only one atomic load + branch on every
// instrumented hot path.
func EnableObservability(on bool) { obs.Enable(on) }

// WriteMetrics renders the current registry contents to w in a stable
// line-oriented text form (one counter/gauge/histogram per line).
func (f *Framework) WriteMetrics(w io.Writer) error { return obs.Default.WriteText(w) }

// SetSpanTrace starts span tracing: begin/end events for the workflow run,
// every bundle group, every task and every CoDS pull are written to w as
// JSON Lines, parent-linked so a reader can rebuild the execution tree.
// Pass nil to stop tracing. Call FlushSpans before reading the output.
func (f *Framework) SetSpanTrace(w io.Writer) {
	if w == nil {
		f.tracer = nil
		f.server.SetTracer(nil)
		return
	}
	f.tracer = obs.NewTracer(w)
	f.server.SetTracer(f.tracer)
}

// FlushSpans flushes buffered span events to the SetSpanTrace writer.
func (f *Framework) FlushSpans() error { return f.tracer.Flush() }

// SpanTracer returns the tracer installed by SetSpanTrace (nil when
// tracing is off), so a transport backend can merge remotely captured
// span events into the same output stream.
func (f *Framework) SpanTracer() *obs.Tracer { return f.tracer }

// SetFaultPlan installs a deterministic fault plan on the transport fabric
// (nil removes it). Every fabric operation consults the plan; with none
// installed the only cost is one atomic pointer load per operation.
func (f *Framework) SetFaultPlan(p *FaultPlan) { f.server.Fabric().SetFaultPlan(p) }

// SetRetryPolicy installs the transfer retry policy on the CoDS pull
// engine and the lookup service's RPC fan-out. The zero policy (the
// default) disables retrying.
func (f *Framework) SetRetryPolicy(p RetryPolicy) { f.server.Space().SetRetryPolicy(p) }

// SetTaskRetry installs the task retry policy: a failed computation task
// is re-run up to the policy's attempt budget and optionally remapped to a
// spare core. The zero policy (the default) disables task retrying; see
// TaskRetryPolicy for the restartability requirement on subroutines.
func (f *Framework) SetTaskRetry(p TaskRetryPolicy) { f.server.SetTaskRetry(p) }

// FaultsInjected returns the total number of error faults injected into
// the fabric since the framework was created, across all installed plans.
func (f *Framework) FaultsInjected() int64 { return f.server.Fabric().FaultsInjected() }

// TransportFabric exposes the framework's transport fabric, so a caller
// can install an alternative data-movement backend (transport.SetBackend)
// — e.g. the TCP backend that routes operations to codsnode processes.
func (f *Framework) TransportFabric() *transport.Fabric { return f.server.Fabric() }

// SharedSpace exposes the framework's CoDS shared space, so an elastic
// driver can install membership hooks on it: the staged-block ledger
// (SetPutRecorder), schedule invalidation after a topology change
// (InvalidateAll), and lookup re-registration through Lookup.
func (f *Framework) SharedSpace() *icods.Space { return f.server.Space() }

// DeclareStream registers a streaming coupling variable (DESIGN §5i). It
// must be called once before the workflow runs, with the stream's full
// producer count — one index per published piece; see
// apps.StreamProducerIndexBase for the dense rank-major assignment.
func (f *Framework) DeclareStream(v string, cfg StreamConfig) error {
	return f.server.Space().DeclareStream(v, cfg)
}

// StreamStats sums the streaming accounting over every declared stream:
// versions published, versions acknowledged by cursors, versions dropped
// past lagging cursors.
func (f *Framework) StreamStats() (published, consumed, dropped int64) {
	return f.server.Space().StreamStats()
}

// StreamState reports stream v's complete watermark and lowest retained
// version.
func (f *Framework) StreamState(v string) (latest, floor int, err error) {
	return f.server.Space().StreamState(v)
}

// RetireNode withdraws a crashed node's execution clients from the task
// remap spare pool, so retried tasks only land on surviving cores while
// the node has no serving process.
func (f *Framework) RetireNode(node int) { f.server.RetireNode(cluster.NodeID(node)) }

// RestoreNode re-admits a node's execution clients to the remap spare
// pool once a replacement process serves it again.
func (f *Framework) RestoreNode(node int) { f.server.RestoreNode(cluster.NodeID(node)) }
