package cods_test

import (
	"fmt"
	"strings"
	"testing"

	cods "github.com/insitu/cods"
)

func newFramework(t testing.TB) *cods.Framework {
	t.Helper()
	fw, err := cods.New(cods.Config{Nodes: 4, CoresPerNode: 4, Domain: []int{16, 16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	return fw
}

func TestNewValidation(t *testing.T) {
	if _, err := cods.New(cods.Config{Nodes: 0, CoresPerNode: 4, Domain: []int{8}}); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := cods.New(cods.Config{Nodes: 1, CoresPerNode: 1}); err == nil {
		t.Error("empty domain accepted")
	}
}

func TestDecompositionConstructors(t *testing.T) {
	fw := newFramework(t)
	b, err := fw.BlockedDecomposition([]int{2, 2, 2})
	if err != nil || b.NumTasks() != 8 {
		t.Fatalf("blocked: %v, %v", b, err)
	}
	c, err := fw.CyclicDecomposition([]int{2, 2, 2})
	if err != nil || c.NumTasks() != 8 {
		t.Fatalf("cyclic: %v, %v", c, err)
	}
	bc, err := fw.BlockCyclicDecomposition([]int{2, 2, 2}, []int{4, 4, 4})
	if err != nil || bc.NumTasks() != 8 {
		t.Fatalf("block-cyclic: %v, %v", bc, err)
	}
	if _, err := fw.BlockedDecomposition([]int{2}); err == nil {
		t.Error("grid rank mismatch accepted")
	}
}

// End-to-end through the public API: a concurrently coupled pair exchanges
// a field, with verification, under both policies.
func TestPublicAPIConcurrentWorkflow(t *testing.T) {
	for _, policy := range []cods.Policy{cods.DataCentric, cods.RoundRobin} {
		fw := newFramework(t)
		prodDc, err := fw.BlockedDecomposition([]int{2, 2, 2})
		if err != nil {
			t.Fatal(err)
		}
		consDc, err := fw.BlockedDecomposition([]int{2, 2, 1})
		if err != nil {
			t.Fatal(err)
		}
		fill := func(b cods.BBox) []float64 {
			data := make([]float64, b.Volume())
			i := 0
			b.Each(func(p cods.Point) {
				data[i] = float64(p[0]*1000 + p[1]*10 + p[2])
				i++
			})
			return data
		}
		if err := fw.RegisterApp(cods.AppSpec{
			ID: 1, Decomp: prodDc,
			Run: func(ctx *cods.AppContext) error {
				for _, blk := range ctx.Decomp.Region(ctx.Rank) {
					if err := ctx.Space.PutConcurrent("u", 0, blk, fill(blk)); err != nil {
						return err
					}
				}
				return nil
			},
		}); err != nil {
			t.Fatal(err)
		}
		if err := fw.RegisterApp(cods.AppSpec{
			ID: 2, Decomp: consDc,
			Run: func(ctx *cods.AppContext) error {
				info := ctx.Producers[1]
				for _, region := range ctx.Decomp.Region(ctx.Rank) {
					got, err := ctx.Space.GetConcurrent(info, "u", 0, region)
					if err != nil {
						return err
					}
					want := fill(region)
					for i := range want {
						if got[i] != want[i] {
							return fmt.Errorf("cell %d: got %v want %v", i, got[i], want[i])
						}
					}
				}
				return nil
			},
		}); err != nil {
			t.Fatal(err)
		}
		rep, err := fw.RunWorkflowText("APP_ID 1\nAPP_ID 2\nBUNDLE 1 2\n", policy)
		if err != nil {
			t.Fatal(err)
		}
		if rep.TasksRun != 12 {
			t.Fatalf("TasksRun = %d", rep.TasksRun)
		}
		tr := fw.Traffic()
		total := tr.CoupledNetwork + tr.CoupledShm
		if total != 16*16*16*cods.ElemSize {
			t.Fatalf("coupled bytes = %d", total)
		}
	}
}

func TestPublicAPISequentialWorkflowAndPhaseTime(t *testing.T) {
	fw := newFramework(t)
	prodDc, err := fw.BlockedDecomposition([]int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	consDc, err := fw.BlockedDecomposition([]int{2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.RegisterApp(cods.AppSpec{
		ID: 1, Decomp: prodDc,
		Run: func(ctx *cods.AppContext) error {
			for _, blk := range ctx.Decomp.Region(ctx.Rank) {
				if err := ctx.Space.PutSequential("state", 0, blk, make([]float64, blk.Volume())); err != nil {
					return err
				}
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := fw.RegisterApp(cods.AppSpec{
		ID: 2, Decomp: consDc, ReadsVar: "state",
		Run: func(ctx *cods.AppContext) error {
			ctx.Space.SetPhase("couple:2:0")
			for _, region := range ctx.Decomp.Region(ctx.Rank) {
				if _, err := ctx.Space.GetSequential("state", 0, region); err != nil {
					return err
				}
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	d, err := cods.NewWorkflow([]int{1, 2}, [][2]int{{1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.RunWorkflow(d, cods.DataCentric); err != nil {
		t.Fatal(err)
	}
	secs, err := fw.PhaseTime("couple:2")
	if err != nil {
		t.Fatal(err)
	}
	if secs <= 0 {
		t.Fatalf("PhaseTime = %v", secs)
	}
}

func TestParseWorkflowPublic(t *testing.T) {
	d, err := cods.ParseWorkflow(strings.NewReader("APP_ID 1\nAPP_ID 2\nPARENT_APPID 1 CHILD_APPID 2\n"))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Apps) != 2 || len(d.Bundles) != 2 {
		t.Fatalf("parsed %+v", d)
	}
}

func TestResetTraffic(t *testing.T) {
	fw := newFramework(t)
	fw.ResetTraffic()
	tr := fw.Traffic()
	if tr.CoupledNetwork != 0 || tr.ControlNetwork != 0 {
		t.Fatal("fresh framework has traffic")
	}
}

func TestNewBBox(t *testing.T) {
	b := cods.NewBBox(cods.Point{0, 0, 0}, cods.Point{10, 10, 20})
	if b.Volume() != 2000 {
		t.Fatalf("Volume = %d", b.Volume())
	}
	if b.String() != "<0,0,0; 10,10,20>" {
		t.Fatalf("String = %q", b.String())
	}
}

func TestWriteFlows(t *testing.T) {
	fw := newFramework(t)
	prodDc, err := fw.BlockedDecomposition([]int{2, 2, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.RegisterApp(cods.AppSpec{
		ID: 1, Decomp: prodDc,
		Run: func(ctx *cods.AppContext) error {
			blk := ctx.Decomp.Region(ctx.Rank)[0]
			return ctx.Space.PutSequential("x", 0, blk, make([]float64, blk.Volume()))
		},
	}); err != nil {
		t.Fatal(err)
	}
	d, err := cods.NewWorkflow([]int{1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.RunWorkflow(d, cods.DataCentric); err != nil {
		t.Fatal(err)
	}
	var buf strings.Builder
	if err := fw.WriteFlows(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"phase"`) {
		t.Fatalf("flow trace missing fields:\n%.200s", buf.String())
	}
}

func TestMachineInfo(t *testing.T) {
	fw := newFramework(t)
	if fw.MachineInfo().TotalCores() != 16 {
		t.Fatalf("TotalCores = %d", fw.MachineInfo().TotalCores())
	}
	if fw.Domain().Volume() != 16*16*16 {
		t.Fatalf("Domain volume = %d", fw.Domain().Volume())
	}
}
