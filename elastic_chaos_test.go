package cods_test

// Topology-chaos end-to-end test of the elastic membership layer: a
// multi-process TCP run where one codsnode is hard-killed after staging,
// while the consumer's pulls are in flight. The lease monitor must detect
// the crash, the reconcile loop must spawn a replacement at a higher
// incarnation and re-stage the dead node's blocks from the put ledger,
// and every pull must still verify cell-by-cell (codsrun -verify fails
// the run on the first wrong cell). The observability report must
// reconcile delta-0, including the membership counters against the
// reconciler's accounting.

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

func TestElasticChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process chaos test in -short mode")
	}
	bin := buildTCPBinaries(t)
	dir := t.TempDir()
	dag := filepath.Join(dir, "wf.dag")
	if err := os.WriteFile(dag, []byte("APP_ID 1\nAPP_ID 2\nPARENT_APPID 1 CHILD_APPID 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	reportPath := filepath.Join(dir, "report.json")
	// The producer stages 4 blocks (blocked 2x2), so -chaos-after 4 kills
	// node 1 exactly when staging is done and consumption begins. The
	// retry budget must outlive lease expiry plus replacement spawn.
	cmd := exec.Command(filepath.Join(bin, "codsrun"),
		"-backend", "tcp",
		"-nodes", "2", "-cores", "2", "-domain", "8x8",
		"-dag", dag,
		"-app", "1:blocked:2x2", "-app", "2:blocked:2x1",
		"-policy", "round-robin",
		"-elastic", "-lease-ttl", "250ms",
		"-chaos-kill", "1", "-chaos-after", "4",
		"-retry", "attempts=100,base=5ms,cap=50ms,deadline=60s",
		"-task-retry", "3", "-task-remap",
		"-verify",
		"-report", "-report-path", reportPath)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("codsrun: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{
		"elastic membership: 2 leases",
		"chaos: killing codsnode 1",
		"membership: reconciled 1 node(s)",
		"workflow complete:",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
	// The serving announcement must appear twice for node 1: the initial
	// spawn and the replacement.
	if n := strings.Count(text, "codsnode 1 serving at "); n != 2 {
		t.Fatalf("want initial + replacement spawns of codsnode 1, saw %d:\n%s", n, text)
	}

	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Reconciled     bool `json:"reconciled"`
		Reconciliation []struct {
			Name     string `json:"name"`
			Registry int64  `json:"registry"`
			External int64  `json:"external"`
			Match    bool   `json:"match"`
		} `json:"reconciliation"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("%s: %v", reportPath, err)
	}
	if !rep.Reconciled || len(rep.Reconciliation) == 0 {
		t.Fatalf("report not reconciled: %+v", rep)
	}
	checks := map[string]int64{}
	for _, c := range rep.Reconciliation {
		if !c.Match {
			t.Errorf("check %s: registry %d != external %d", c.Name, c.Registry, c.External)
		}
		checks[c.Name] = c.External
	}
	// One crash, one replacement: the initial joins plus the replacement
	// join, one expiry, and a non-empty migration — half the producer's
	// blocks lived on node 1 under round-robin placement.
	if got := checks["membership.joins"]; got != 3 {
		t.Errorf("membership.joins = %d, want 3", got)
	}
	if got := checks["membership.expirations"]; got != 1 {
		t.Errorf("membership.expirations = %d, want 1", got)
	}
	if got := checks["membership.migrated_blocks"]; got <= 0 {
		t.Errorf("membership.migrated_blocks = %d, want > 0", got)
	}
	if got := checks["membership.migrated_bytes"]; got <= 0 {
		t.Errorf("membership.migrated_bytes = %d, want > 0", got)
	}
	if _, ok := checks["membership.reinserted_records"]; !ok {
		t.Error("report missing the membership.reinserted_records check")
	}
}
