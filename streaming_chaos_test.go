package cods_test

// Streaming-chaos end-to-end test (ISSUE 9 satellite): a multi-process
// TCP run couples a stream producer to a stream consumer, and one
// producer-owning codsnode is hard-killed mid-stream. The lease monitor
// must detect the crash, the replacement must adopt the mirrored stream
// table at a higher incarnation, the reconcile must re-stage the dead
// process's ledger blocks — including a version whose expose was
// acknowledged by the doomed incarnation moments before the kill — and
// under the backpressure policy every consumer must still observe a
// gap-free version sequence, verified cell by cell. The observability
// report must reconcile delta-0, stream counters included.

import (
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

func TestStreamingChaos(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping multi-process chaos test in -short mode")
	}
	const rounds = 8
	bin := buildTCPBinaries(t)
	dir := t.TempDir()
	dag := filepath.Join(dir, "wf.dag")
	if err := os.WriteFile(dag, []byte("APP_ID 1\nAPP_ID 2\nBUNDLE 1 2\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	reportPath := filepath.Join(dir, "report.json")
	// Producer tasks land on cores 0-3, consumers on 4-5, so node 1
	// (cores 3-5) owns one producer piece and one consumer; -chaos-after 4
	// kills it once the first version is fully staged and the next is in
	// flight. No -task-retry: a producer's versions survive the kill
	// through the ledger restage, and a re-run would re-stamp versions the
	// stream already advanced past. The retry budget must outlive lease
	// expiry plus replacement spawn plus the read-patience bounce.
	cmd := exec.Command(filepath.Join(bin, "codsrun"),
		"-backend", "tcp",
		"-nodes", "2", "-cores", "3", "-domain", "8x8",
		"-dag", dag,
		"-app", "1:blocked:2x2", "-app", "2:blocked:2x1",
		"-policy", "round-robin",
		"-stream", "-stream-rounds", fmt.Sprint(rounds), "-halo", "0",
		"-verify",
		"-elastic", "-lease-ttl", "1s",
		"-chaos-kill", "1", "-chaos-after", "4",
		"-retry", "attempts=100,base=5ms,cap=50ms,deadline=60s",
		"-report", "-report-path", reportPath)
	out, err := cmd.CombinedOutput()
	if err != nil {
		t.Fatalf("codsrun: %v\n%s", err, out)
	}
	text := string(out)
	for _, want := range []string{
		"elastic membership: 2 leases",
		"chaos: killing codsnode 1",
		"membership: resynced 1 stream table(s) after replacement",
		"membership: reconciled 1 node(s)",
		"workflow complete:",
	} {
		if !strings.Contains(text, want) {
			t.Fatalf("output missing %q:\n%s", want, text)
		}
	}
	// The serving announcement must appear twice for node 1: the initial
	// spawn and the replacement.
	if n := strings.Count(text, "codsnode 1 serving at "); n != 2 {
		t.Fatalf("want initial + replacement spawns of codsnode 1, saw %d:\n%s", n, text)
	}
	// Both consumer tasks must have followed the full stream gap-free:
	// backpressure never drops, and the restage puts a lost version back
	// before its reader can give up.
	sum := regexp.MustCompile(`stream consumer 2\.(\d+) observed (\d+) versions \[(\d+)\.\.(\d+)\] gaps (\d+)`)
	matches := sum.FindAllStringSubmatch(text, -1)
	if len(matches) != 2 {
		t.Fatalf("want 2 consumer summaries, got %d:\n%s", len(matches), text)
	}
	for _, m := range matches {
		if m[2] != fmt.Sprint(rounds) || m[3] != "0" || m[4] != fmt.Sprint(rounds-1) || m[5] != "0" {
			t.Errorf("consumer 2.%s: observed %s versions [%s..%s] gaps %s, want %d versions [0..%d] gaps 0",
				m[1], m[2], m[3], m[4], m[5], rounds, rounds-1)
		}
	}

	data, err := os.ReadFile(reportPath)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Reconciled     bool `json:"reconciled"`
		Reconciliation []struct {
			Name     string `json:"name"`
			Registry int64  `json:"registry"`
			External int64  `json:"external"`
			Match    bool   `json:"match"`
		} `json:"reconciliation"`
		Metrics struct {
			Counters map[string]int64 `json:"counters"`
		} `json:"metrics"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("%s: %v", reportPath, err)
	}
	if !rep.Reconciled || len(rep.Reconciliation) == 0 {
		t.Fatalf("report not reconciled: %+v", rep)
	}
	for _, c := range rep.Reconciliation {
		if !c.Match {
			t.Errorf("check %s: registry %d != external %d", c.Name, c.Registry, c.External)
		}
	}
	counters := rep.Metrics.Counters
	// 4 producer indices x 8 rounds published; 2 consumers x 8 versions
	// acknowledged; backpressure never drops.
	if got := counters["cods.stream.published"]; got != 4*rounds {
		t.Errorf("cods.stream.published = %d, want %d", got, 4*rounds)
	}
	if got := counters["cods.stream.consumed"]; got != 2*rounds {
		t.Errorf("cods.stream.consumed = %d, want %d", got, 2*rounds)
	}
	if got := counters["cods.stream.dropped"]; got != 0 {
		t.Errorf("cods.stream.dropped = %d, want 0", got)
	}
	// One crash, one replacement: initial joins + replacement join, one
	// expiry, and the dead process's ledger blocks re-staged.
	if got := counters["membership.joins"]; got != 3 {
		t.Errorf("membership.joins = %d, want 3", got)
	}
	if got := counters["membership.expirations"]; got != 1 {
		t.Errorf("membership.expirations = %d, want 1", got)
	}
	if got := counters["membership.migrated_blocks"]; got <= 0 {
		t.Errorf("membership.migrated_blocks = %d, want > 0", got)
	}
}
