// Command dagcheck validates a workflow DAG description file (the format
// of the paper's Listing 1) and prints its structure and execution order.
//
// Usage:
//
//	dagcheck workflow.dag
//	echo "APP_ID 1" | dagcheck -
package main

import (
	"fmt"
	"io"
	"os"

	"github.com/insitu/cods/internal/workflow"
)

func main() {
	if len(os.Args) != 2 {
		fmt.Fprintln(os.Stderr, "usage: dagcheck <file|->")
		os.Exit(2)
	}
	var r io.Reader
	if os.Args[1] == "-" {
		r = os.Stdin
	} else {
		f, err := os.Open(os.Args[1])
		if err != nil {
			fmt.Fprintf(os.Stderr, "dagcheck: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		r = f
	}
	d, err := workflow.Parse(r)
	if err != nil {
		fmt.Fprintf(os.Stderr, "dagcheck: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("valid workflow: %d applications, %d dependencies, %d bundles\n",
		len(d.Apps), len(d.Edges), len(d.Bundles))
	for i, b := range d.Bundles {
		fmt.Printf("  bundle %d: apps %v\n", i, b)
	}
	order, err := d.TopoOrder()
	if err != nil {
		fmt.Fprintf(os.Stderr, "dagcheck: %v\n", err)
		os.Exit(1)
	}
	fmt.Print("execution order:")
	for _, b := range order {
		fmt.Printf(" %v", d.Bundles[b])
	}
	fmt.Println()
	fmt.Println("\ncanonical form:")
	fmt.Print(d.String())
}
