package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/insitu/cods/internal/bench"
)

func TestRunSelectors(t *testing.T) {
	sc := bench.SmallScale()
	for _, fig := range []string{"8", "9", "10", "11", "12", "13", "14", "15"} {
		tables, err := run(fig, sc, "")
		if err != nil {
			t.Fatalf("fig %s: %v", fig, err)
		}
		if len(tables) != 1 || len(tables[0].Rows) == 0 {
			t.Fatalf("fig %s: empty", fig)
		}
	}
	if _, err := run("16", sc, "1,2"); err != nil {
		t.Fatal(err)
	}
	if _, err := run("16", sc, "1,x"); err == nil {
		t.Fatal("bad factor accepted")
	}
	if _, err := run("unknown", sc, ""); err == nil {
		t.Fatal("unknown figure accepted")
	}
	for _, fig := range []string{"staging", "ratio", "mapping-cost", "functional"} {
		if _, err := run(fig, sc, ""); err != nil {
			t.Fatalf("%s: %v", fig, err)
		}
	}
}

func TestWriteTable(t *testing.T) {
	dir := t.TempDir()
	tbl := &bench.Table{ID: "demo", Title: "t", Columns: []string{"a"}}
	tbl.AddRow("1")
	if err := writeTable(dir, tbl); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"demo.txt", "demo.csv"} {
		if fi, err := os.Stat(filepath.Join(dir, name)); err != nil || fi.Size() == 0 {
			t.Fatalf("%s not written: %v", name, err)
		}
	}
}
