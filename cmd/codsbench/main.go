// Command codsbench regenerates the paper's evaluation figures
// (Section V) and the ablation studies.
//
// Usage:
//
//	codsbench -fig 8              # one figure at paper scale
//	codsbench -fig all            # figures 8-16
//	codsbench -fig ablations      # ablation studies
//	codsbench -fig functional     # executed (not analytic) comparison
//	codsbench -fig all -scale small
//	codsbench -fig 8 -csv         # emit CSV instead of a table
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"

	"github.com/insitu/cods/internal/bench"
)

func main() {
	fig := flag.String("fig", "all", "figure to regenerate: 8..16, all, ablations, functional, staging, ratio, mapping-cost")
	scaleName := flag.String("scale", "paper", "experiment scale: paper or small")
	csv := flag.Bool("csv", false, "emit CSV instead of aligned tables")
	outDir := flag.String("o", "", "also write each table to <dir>/<figure>.txt and .csv")
	factors := flag.String("factors", "1,2,4,8,16", "weak-scaling factors for figure 16")
	flag.Parse()

	var sc bench.Scale
	switch *scaleName {
	case "paper":
		sc = bench.PaperScale()
	case "small":
		sc = bench.SmallScale()
	default:
		fmt.Fprintf(os.Stderr, "codsbench: unknown scale %q\n", *scaleName)
		os.Exit(2)
	}

	tables, err := run(*fig, sc, *factors)
	if err != nil {
		fmt.Fprintf(os.Stderr, "codsbench: %v\n", err)
		os.Exit(1)
	}
	for _, t := range tables {
		var werr error
		if *csv {
			werr = t.CSV(os.Stdout)
		} else {
			werr = t.Render(os.Stdout)
		}
		if werr == nil && *outDir != "" {
			werr = writeTable(*outDir, t)
		}
		if werr != nil {
			fmt.Fprintf(os.Stderr, "codsbench: %v\n", werr)
			os.Exit(1)
		}
	}
}

// writeTable saves a table under dir as both aligned text and CSV.
func writeTable(dir string, t *bench.Table) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	txt, err := os.Create(filepath.Join(dir, t.ID+".txt"))
	if err != nil {
		return err
	}
	if err := t.Render(txt); err != nil {
		txt.Close()
		return err
	}
	if err := txt.Close(); err != nil {
		return err
	}
	csvf, err := os.Create(filepath.Join(dir, t.ID+".csv"))
	if err != nil {
		return err
	}
	if err := t.CSV(csvf); err != nil {
		csvf.Close()
		return err
	}
	return csvf.Close()
}

func run(fig string, sc bench.Scale, factorSpec string) ([]*bench.Table, error) {
	one := func(t *bench.Table, err error) ([]*bench.Table, error) {
		if err != nil {
			return nil, err
		}
		return []*bench.Table{t}, nil
	}
	switch fig {
	case "8":
		return one(bench.Fig8(sc))
	case "9":
		return one(bench.Fig9(sc))
	case "10":
		return one(bench.Fig10(sc))
	case "11":
		return one(bench.Fig11(sc))
	case "12":
		return one(bench.Fig12(sc))
	case "13":
		return one(bench.Fig13(sc))
	case "14":
		return one(bench.Fig14(sc))
	case "15":
		return one(bench.Fig15(sc))
	case "16":
		var factors []int
		for _, part := range strings.Split(factorSpec, ",") {
			f, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				return nil, fmt.Errorf("bad weak-scaling factor %q", part)
			}
			factors = append(factors, f)
		}
		return one(bench.Fig16(sc, factors))
	case "all":
		return bench.All(sc)
	case "ablations":
		return bench.Ablations(sc)
	case "functional":
		return one(bench.FunctionalComparison(bench.SmallScale()))
	case "staging":
		return one(bench.StagingComparison(sc))
	case "ratio":
		return one(bench.RatioSweep(sc, nil))
	case "mapping-cost":
		return one(bench.MappingCost(sc, nil))
	}
	return nil, fmt.Errorf("unknown figure %q (want 8..16, all, ablations, functional, staging, ratio, mapping-cost)", fig)
}
