// Command pullbench measures the parallel pull engine against the serial
// baseline and the SFC span cache against the raw orthant walk, and writes
// the results to results/BENCH_pull.json.
//
// The pull benchmark stages a grid of blocks round-robin across a 4x4
// machine (adjacent blocks always have different owners, so coalescing
// cannot shrink the schedule) and retrieves the full domain. The fabric is
// configured with a simulated one-sided-read round-trip latency (2us
// shared memory / 25us network, modelling a 2012-era RDMA get): the
// in-process fabric copies memory in nanoseconds, which no interconnect
// does, and it is these round trips that the worker pool overlaps. Byte
// accounting per retrieval is asserted identical across worker counts.
//
// Usage:
//
//	pullbench                 # write results/BENCH_pull.json
//	pullbench -o other.json   # write elsewhere
//	pullbench -reps 9         # more timing repetitions (median is kept)
//	pullbench -curve morton   # linearize lookups with a different policy
//	pullbench -curve all      # sweep every policy into results/BENCH_curves.json
package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"time"

	"flag"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/cods"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/obs"
	"github.com/insitu/cods/internal/retry"
	"github.com/insitu/cods/internal/sfc"
	"github.com/insitu/cods/internal/transport"
	"github.com/insitu/cods/internal/transport/tcpnet"
)

const (
	nodes        = 4
	coresPerNode = 4
	side         = 32 // cells per block side; 32x32 doubles = 8 KiB per transfer
	shmLatency   = 2 * time.Microsecond
	netLatency   = 25 * time.Microsecond
)

// pullResult is one (transfers, workers) timing row.
type pullResult struct {
	Transfers       int     `json:"transfers"`
	Workers         int     `json:"workers"`
	NsPerOp         int64   `json:"ns_per_op"`
	MBPerSec        float64 `json:"mb_per_sec"`
	SpeedupVsSerial float64 `json:"speedup_vs_serial"`
}

type spanResult struct {
	CurveDim      int     `json:"curve_dim"`
	CurveBits     int     `json:"curve_bits"`
	Queries       int     `json:"queries_per_op"`
	CachedNsPerOp int64   `json:"cached_ns_per_op"`
	RawNsPerOp    int64   `json:"uncached_ns_per_op"`
	Speedup       float64 `json:"speedup"`
}

// tcpResult is one TCP-backend row: the staged pull of an inset region
// (every boundary block is clipped) over real loopback sockets, measured
// under one wire protocol. The scatter-gather protocol batches the routed
// transfers per owning peer and ships owner-clipped segments; the
// whole-block ablation ships each stored block in full and clips on the
// puller.
type tcpResult struct {
	Transfers      int    `json:"transfers"`
	Protocol       string `json:"protocol"`
	NsPerOp        int64  `json:"ns_per_op"`
	WireBytes      int64  `json:"wire_bytes_per_op"`
	RequestFrames  int64  `json:"read_request_frames_per_op"`
	SegmentBytes   int64  `json:"segment_bytes_per_op"`
	PredictedBytes int64  `json:"schedule_predicted_bytes"`
	MeteredMatches bool   `json:"metered_equals_predicted"`
}

type report struct {
	GeneratedBy    string       `json:"generated_by"`
	GOMAXPROCS     int          `json:"gomaxprocs"`
	Machine        string       `json:"machine"`
	ShmLatencyUs   float64      `json:"simulated_shm_read_latency_us"`
	NetLatencyUs   float64      `json:"simulated_network_read_latency_us"`
	BlockBytes     int64        `json:"block_bytes"`
	BytesIdentical bool         `json:"bytes_identical_across_workers"`
	Pull           []pullResult `json:"pull"`
	Spans          spanResult   `json:"spans"`
	TCP            []tcpResult  `json:"tcp,omitempty"`
}

// rig is a staged space ready for repeated full-domain retrievals.
type rig struct {
	sp       *cods.Space
	fabric   *transport.Fabric
	consumer *cods.Handle
	region   geometry.BBox
}

func buildRig(transfers int, curve string) (*rig, error) {
	nx := 1
	for nx*nx < transfers {
		nx *= 2
	}
	ny := transfers / nx
	m, err := cluster.NewMachine(nodes, coresPerNode)
	if err != nil {
		return nil, err
	}
	f := transport.NewFabric(m)
	sp, err := cods.NewSpaceWithCurve(f, geometry.BoxFromSize([]int{nx * side, ny * side}), curve)
	if err != nil {
		return nil, err
	}
	cores := m.TotalCores()
	n := 0
	for bx := 0; bx < nx; bx++ {
		for by := 0; by < ny; by++ {
			blk := geometry.NewBBox(
				geometry.Point{bx * side, by * side},
				geometry.Point{(bx + 1) * side, (by + 1) * side})
			data := make([]float64, blk.Volume())
			for i := range data {
				data[i] = float64(n + i)
			}
			h := sp.HandleAt(cluster.CoreID(n%cores), 1, "put")
			if err := h.PutSequential("u", 0, blk, data); err != nil {
				return nil, err
			}
			n++
		}
	}
	f.SetReadLatency(shmLatency, netLatency)
	return &rig{
		sp:       sp,
		fabric:   f,
		consumer: sp.HandleAt(0, 2, "get"),
		region:   geometry.BoxFromSize([]int{nx * side, ny * side}),
	}, nil
}

// timePull returns the median wall time of reps full-domain retrievals at
// the given worker count, plus the per-retrieval byte counts by medium.
func (r *rig) timePull(workers, reps int) (time.Duration, [2]int64, error) {
	r.sp.SetPullWorkers(workers)
	// Warm the schedule cache so timings measure pull execution only.
	if _, err := r.consumer.GetSequential("u", 0, r.region); err != nil {
		return 0, [2]int64{}, err
	}
	var bytes [2]int64
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		shm0 := r.fabric.MediumBytes(cluster.SharedMemory)
		net0 := r.fabric.MediumBytes(cluster.Network)
		start := time.Now()
		if _, err := r.consumer.GetSequential("u", 0, r.region); err != nil {
			return 0, bytes, err
		}
		times = append(times, time.Since(start))
		bytes[cluster.SharedMemory] = r.fabric.MediumBytes(cluster.SharedMemory) - shm0
		bytes[cluster.Network] = r.fabric.MediumBytes(cluster.Network) - net0
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], bytes, nil
}

// fabricTotals sums the per-medium byte/op accounting over every fabric a
// run created, for reconciliation against the process-wide registry.
type fabricTotals struct {
	bytes [2]int64
	ops   [2]int64
}

func (ft *fabricTotals) add(f *transport.Fabric) {
	for _, md := range []cluster.Medium{cluster.SharedMemory, cluster.Network} {
		ft.bytes[md] += f.MediumBytes(md)
		ft.ops[md] += f.MediumOps(md)
	}
}

func runPull(reps int, curve string) ([]pullResult, bool, fabricTotals, error) {
	var out []pullResult
	var totals fabricTotals
	identical := true
	for _, transfers := range []int{16, 64, 256} {
		r, err := buildRig(transfers, curve)
		if err != nil {
			return nil, false, totals, err
		}
		var serial time.Duration
		var serialBytes [2]int64
		for _, workers := range []int{1, 2, 4, 8} {
			d, bytes, err := r.timePull(workers, reps)
			if err != nil {
				return nil, false, totals, err
			}
			if workers == 1 {
				serial, serialBytes = d, bytes
			} else if bytes != serialBytes {
				identical = false
			}
			vol := r.region.Volume() * cods.ElemSize
			out = append(out, pullResult{
				Transfers:       transfers,
				Workers:         workers,
				NsPerOp:         d.Nanoseconds(),
				MBPerSec:        float64(vol) / 1e6 / d.Seconds(),
				SpeedupVsSerial: float64(serial) / float64(d),
			})
		}
		totals.add(r.fabric)
	}
	return out, identical, totals, nil
}

// tcpRig stages the same round-robin blocks behind the TCP loopback
// backend (every node listens on a real socket; cross-node pulls travel
// the wire). No simulated latency is injected — the wall times are real
// socket round trips. The retrieved region is inset by half a block on
// every side, so each boundary block contributes a clipped sub-box and
// the two wire protocols move different byte counts.
type tcpRig struct {
	sp        *cods.Space
	fabric    *transport.Fabric
	backend   *tcpnet.Backend
	consumer  *cods.Handle
	region    geometry.BBox
	predicted int64 // schedule-predicted network bytes per retrieval
}

func buildTCPRig(transfers int, curve string) (*tcpRig, error) {
	nx := 1
	for nx*nx < transfers {
		nx *= 2
	}
	ny := transfers / nx
	m, err := cluster.NewMachine(nodes, coresPerNode)
	if err != nil {
		return nil, err
	}
	f := transport.NewFabric(m)
	p := retry.Default()
	p.Deadline = 10 * time.Second
	b, err := tcpnet.NewLoopback(f, tcpnet.Config{Retry: p, IOTimeout: 10 * time.Second})
	if err != nil {
		return nil, err
	}
	f.SetBackend(b)
	sp, err := cods.NewSpaceWithCurve(f, geometry.BoxFromSize([]int{nx * side, ny * side}), curve)
	if err != nil {
		b.Close()
		return nil, err
	}
	region := geometry.NewBBox(
		geometry.Point{side / 2, side / 2},
		geometry.Point{nx*side - side/2, ny*side - side/2})
	cores := m.TotalCores()
	var predicted int64
	n := 0
	for bx := 0; bx < nx; bx++ {
		for by := 0; by < ny; by++ {
			blk := geometry.NewBBox(
				geometry.Point{bx * side, by * side},
				geometry.Point{(bx + 1) * side, (by + 1) * side})
			data := make([]float64, blk.Volume())
			for i := range data {
				// Full-mantissa values, like real field data: an integer
				// ramp would let gob's trailing-zero float compaction
				// flatter the whole-block baseline.
				data[i] = float64(n+i+1) / 3.0
			}
			owner := cluster.CoreID(n % cores)
			h := sp.HandleAt(owner, 1, "put")
			if err := h.PutSequential("u", 0, blk, data); err != nil {
				b.Close()
				return nil, err
			}
			// The consumer sits on core 0; every block on another node
			// crosses the wire, and the schedule clips it to the region.
			if m.NodeOf(owner) != m.NodeOf(0) {
				if sub, ok := blk.Intersect(region); ok {
					predicted += int64(sub.Volume() * cods.ElemSize)
				}
			}
			n++
		}
	}
	return &tcpRig{
		sp:        sp,
		fabric:    f,
		backend:   b,
		consumer:  sp.HandleAt(0, 2, "get"),
		region:    region,
		predicted: predicted,
	}, nil
}

func (r *tcpRig) close() {
	r.fabric.SetBackend(nil)
	r.backend.Close()
}

// timeTCP measures the inset retrieval under one wire protocol: median
// wall time plus per-retrieval wire-counter deltas (each retrieval is
// identical, so the deltas divide evenly across reps).
func (r *tcpRig) timeTCP(batched bool, reps int) (tcpResult, error) {
	r.sp.SetBatchedPulls(batched)
	protocol := "whole-block"
	if batched {
		protocol = "scatter-gather"
	}
	// Warm the schedule cache and the connection pool.
	if _, err := r.consumer.GetSequential("u", 0, r.region); err != nil {
		return tcpResult{}, err
	}
	s0 := r.backend.WireStats()
	net0 := r.fabric.MediumBytes(cluster.Network)
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if _, err := r.consumer.GetSequential("u", 0, r.region); err != nil {
			return tcpResult{}, err
		}
		times = append(times, time.Since(start))
	}
	s1 := r.backend.WireStats()
	netPerOp := (r.fabric.MediumBytes(cluster.Network) - net0) / int64(reps)
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return tcpResult{
		Protocol:       protocol,
		NsPerOp:        times[len(times)/2].Nanoseconds(),
		WireBytes:      (s1.BytesOut + s1.BytesIn - s0.BytesOut - s0.BytesIn) / int64(reps),
		RequestFrames:  (s1.ReadRequests + s1.ReadMultiRequests - s0.ReadRequests - s0.ReadMultiRequests) / int64(reps),
		SegmentBytes:   (s1.SegmentBytesServed - s0.SegmentBytesServed) / int64(reps),
		PredictedBytes: r.predicted,
		MeteredMatches: netPerOp == r.predicted,
	}, nil
}

func runPullTCP(reps int, curve string) ([]tcpResult, error) {
	var out []tcpResult
	for _, transfers := range []int{16, 64} {
		r, err := buildTCPRig(transfers, curve)
		if err != nil {
			return nil, err
		}
		r.sp.SetPullWorkers(4)
		for _, batched := range []bool{true, false} {
			res, err := r.timeTCP(batched, reps)
			if err != nil {
				r.close()
				return nil, err
			}
			res.Transfers = transfers
			out = append(out, res)
		}
		r.close()
	}
	return out, nil
}

func runSpans(reps int) (spanResult, error) {
	const dim, bits = 2, 8
	c, err := sfc.NewCurve(dim, bits)
	if err != nil {
		return spanResult{}, err
	}
	var qs []geometry.BBox
	for bx := 0; bx < 4; bx++ {
		for by := 0; by < 4; by++ {
			qs = append(qs, geometry.NewBBox(
				geometry.Point{bx * 16, by * 16},
				geometry.Point{(bx + 1) * 16, (by + 1) * 16}))
		}
	}
	// Each timed op runs every query once; the cached run repeats the ops
	// enough that the first (miss) pass is amortised away by the median.
	measure := func(capacity int) (time.Duration, error) {
		sfc.ResetSpanCache()
		sfc.SetSpanCacheCapacity(capacity)
		defer func() {
			sfc.ResetSpanCache()
			sfc.SetSpanCacheCapacity(sfc.DefaultSpanCacheCapacity)
		}()
		times := make([]time.Duration, 0, reps)
		for i := 0; i < reps*8; i++ {
			start := time.Now()
			for _, q := range qs {
				if len(c.Spans(q)) == 0 {
					return 0, fmt.Errorf("empty spans for %v", q)
				}
			}
			times = append(times, time.Since(start))
		}
		sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
		return times[len(times)/2], nil
	}
	cached, err := measure(sfc.DefaultSpanCacheCapacity)
	if err != nil {
		return spanResult{}, err
	}
	raw, err := measure(0)
	if err != nil {
		return spanResult{}, err
	}
	return spanResult{
		CurveDim:      dim,
		CurveBits:     bits,
		Queries:       len(qs),
		CachedNsPerOp: cached.Nanoseconds(),
		RawNsPerOp:    raw.Nanoseconds(),
		Speedup:       float64(raw) / float64(cached),
	}, nil
}

// curveResult compares one linearization policy on the staged pull path:
// the same round-robin blocks, the same full-domain retrieval, only the
// lookup curve changes. InsetSpans is the fragmentation the DHT pays to
// cover a half-block-inset query under this policy — the row-major curve
// shatters it into one span per row, the locality-preserving curves keep
// contiguous runs — and SpanNsPerOp is the raw (uncached) decomposition
// walk producing those spans.
type curveResult struct {
	Curve       string  `json:"curve"`
	Transfers   int     `json:"transfers"`
	Workers     int     `json:"workers"`
	NsPerOp     int64   `json:"ns_per_op"`
	MBPerSec    float64 `json:"mb_per_sec"`
	InsetSpans  int     `json:"inset_query_spans"`
	SpanNsPerOp int64   `json:"span_walk_ns_per_op"`
}

type curveReport struct {
	GeneratedBy    string        `json:"generated_by"`
	GOMAXPROCS     int           `json:"gomaxprocs"`
	Machine        string        `json:"machine"`
	ShmLatencyUs   float64       `json:"simulated_shm_read_latency_us"`
	NetLatencyUs   float64       `json:"simulated_network_read_latency_us"`
	BytesIdentical bool          `json:"bytes_identical_across_curves"`
	Curves         []curveResult `json:"curves"`
}

// runCurves sweeps every registered linearization policy over an
// identical staged retrieval. The retrieved values must be byte-identical
// across policies — the curve only relabels the lookup index space — so
// the sweep doubles as a cross-curve correctness check.
func runCurves(reps int) ([]curveResult, bool, error) {
	const transfers, workers = 64, 4
	identical := true
	var ref []float64
	var out []curveResult
	for _, name := range sfc.CurveNames() {
		r, err := buildRig(transfers, name)
		if err != nil {
			return nil, false, err
		}
		d, _, err := r.timePull(workers, reps)
		if err != nil {
			return nil, false, err
		}
		got, err := r.consumer.GetSequential("u", 0, r.region)
		if err != nil {
			return nil, false, err
		}
		if ref == nil {
			ref = got
		} else if len(got) != len(ref) {
			identical = false
		} else {
			for i := range got {
				if got[i] != ref[i] {
					identical = false
					break
				}
			}
		}
		l, err := sfc.ForDomain(name, r.region.Sizes())
		if err != nil {
			return nil, false, err
		}
		inset := geometry.NewBBox(
			geometry.Point{side / 2, side / 2},
			geometry.Point{r.region.Max[0] - side/2, r.region.Max[1] - side/2})
		walk, nspans, err := timeSpanWalk(l, inset, reps)
		if err != nil {
			return nil, false, err
		}
		vol := r.region.Volume() * cods.ElemSize
		out = append(out, curveResult{
			Curve:       name,
			Transfers:   transfers,
			Workers:     workers,
			NsPerOp:     d.Nanoseconds(),
			MBPerSec:    float64(vol) / 1e6 / d.Seconds(),
			InsetSpans:  nspans,
			SpanNsPerOp: walk.Nanoseconds(),
		})
	}
	return out, identical, nil
}

// timeSpanWalk medians reps raw decompositions of one query, cache off so
// every repetition pays the full orthant walk.
func timeSpanWalk(l sfc.Linearizer, q geometry.BBox, reps int) (time.Duration, int, error) {
	sfc.ResetSpanCache()
	sfc.SetSpanCacheCapacity(0)
	defer func() {
		sfc.ResetSpanCache()
		sfc.SetSpanCacheCapacity(sfc.DefaultSpanCacheCapacity)
	}()
	nspans := len(l.Spans(q))
	if nspans == 0 {
		return 0, 0, fmt.Errorf("empty spans for %v", q)
	}
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		l.Spans(q)
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nspans, nil
}

func main() {
	out := flag.String("o", filepath.Join("results", "BENCH_pull.json"), "output JSON path")
	reps := flag.Int("reps", 7, "timing repetitions per configuration (median kept)")
	obsReport := flag.Bool("report", false, "enable the metrics registry and write a reconciled report")
	obsReportPath := flag.String("report-path", filepath.Join("results", "report.json"), "where -report writes the JSON report")
	backend := flag.String("backend", "", `also benchmark a real backend ("tcp": loopback sockets, scatter-gather vs whole-block)`)
	curve := flag.String("curve", "", `lookup linearization policy: hilbert (default), morton or rowmajor; "all" sweeps every policy`)
	curvesOut := flag.String("curves-o", filepath.Join("results", "BENCH_curves.json"), `where -curve=all writes the sweep`)
	flag.Parse()
	if *reps < 1 {
		*reps = 1
	}
	sweep := *curve == "all"
	rigCurve := *curve
	if sweep {
		rigCurve = "" // the standard benches keep the default policy
	}
	if *obsReport {
		// NOTE: instrumentation on changes what is being measured; -report
		// timings quantify the registry's overhead, they are not the
		// baseline numbers.
		obs.Enable(true)
	}

	pull, identical, fabTotals, err := runPull(*reps, rigCurve)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pullbench: %v\n", err)
		os.Exit(1)
	}
	spans, err := runSpans(*reps)
	if err != nil {
		fmt.Fprintf(os.Stderr, "pullbench: %v\n", err)
		os.Exit(1)
	}
	var tcp []tcpResult
	switch *backend {
	case "":
	case "tcp":
		if tcp, err = runPullTCP(*reps, rigCurve); err != nil {
			fmt.Fprintf(os.Stderr, "pullbench: %v\n", err)
			os.Exit(1)
		}
	default:
		fmt.Fprintf(os.Stderr, "pullbench: unknown -backend %q (want \"tcp\")\n", *backend)
		os.Exit(1)
	}
	rep := report{
		GeneratedBy:    "cmd/pullbench",
		GOMAXPROCS:     runtime.GOMAXPROCS(0),
		Machine:        fmt.Sprintf("%d nodes x %d cores (simulated)", nodes, coresPerNode),
		ShmLatencyUs:   float64(shmLatency) / float64(time.Microsecond),
		NetLatencyUs:   float64(netLatency) / float64(time.Microsecond),
		BlockBytes:     int64(side * side * cods.ElemSize),
		BytesIdentical: identical,
		Pull:           pull,
		Spans:          spans,
		TCP:            tcp,
	}
	if err := os.MkdirAll(filepath.Dir(*out), 0o755); err != nil {
		fmt.Fprintf(os.Stderr, "pullbench: %v\n", err)
		os.Exit(1)
	}
	buf, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "pullbench: %v\n", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "pullbench: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("wrote %s\n", *out)
	for _, p := range pull {
		fmt.Printf("  pull transfers=%-4d workers=%d  %10.3f ms/op  speedup %.2fx\n",
			p.Transfers, p.Workers, float64(p.NsPerOp)/1e6, p.SpeedupVsSerial)
	}
	fmt.Printf("  spans cached %.1f us vs raw %.1f us  speedup %.2fx\n",
		float64(spans.CachedNsPerOp)/1e3, float64(spans.RawNsPerOp)/1e3, spans.Speedup)
	for _, tr := range tcp {
		fmt.Printf("  tcp  transfers=%-4d %-14s %10.3f ms/op  wire %8d B  frames %3d  metered=%v\n",
			tr.Transfers, tr.Protocol, float64(tr.NsPerOp)/1e6, tr.WireBytes, tr.RequestFrames, tr.MeteredMatches)
	}

	if sweep {
		curves, curvesIdentical, err := runCurves(*reps)
		if err != nil {
			fmt.Fprintf(os.Stderr, "pullbench: %v\n", err)
			os.Exit(1)
		}
		crep := curveReport{
			GeneratedBy:    "cmd/pullbench -curve all",
			GOMAXPROCS:     runtime.GOMAXPROCS(0),
			Machine:        rep.Machine,
			ShmLatencyUs:   rep.ShmLatencyUs,
			NetLatencyUs:   rep.NetLatencyUs,
			BytesIdentical: curvesIdentical,
			Curves:         curves,
		}
		if err := os.MkdirAll(filepath.Dir(*curvesOut), 0o755); err != nil {
			fmt.Fprintf(os.Stderr, "pullbench: %v\n", err)
			os.Exit(1)
		}
		cbuf, err := json.MarshalIndent(crep, "", "  ")
		if err != nil {
			fmt.Fprintf(os.Stderr, "pullbench: %v\n", err)
			os.Exit(1)
		}
		cbuf = append(cbuf, '\n')
		if err := os.WriteFile(*curvesOut, cbuf, 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "pullbench: %v\n", err)
			os.Exit(1)
		}
		fmt.Printf("wrote %s (bytes identical across curves: %v)\n", *curvesOut, curvesIdentical)
		for _, c := range curves {
			fmt.Printf("  curve %-9s %10.3f ms/op  inset spans %4d  walk %8.1f us\n",
				c.Curve, float64(c.NsPerOp)/1e6, c.InsetSpans, float64(c.SpanNsPerOp)/1e3)
		}
		if !curvesIdentical {
			fmt.Fprintln(os.Stderr, "pullbench: retrieved bytes differ across linearization policies")
			os.Exit(1)
		}
	}

	if *obsReport {
		r := obs.NewReport("pullbench")
		r.SetMeta("reps", fmt.Sprintf("%d", *reps))
		r.SetMeta("machine", rep.Machine)
		r.AddCheck("transport.shm.bytes",
			r.Metrics.Counters["transport.shm.bytes"], fabTotals.bytes[cluster.SharedMemory])
		r.AddCheck("transport.shm.ops",
			r.Metrics.Counters["transport.shm.ops"], fabTotals.ops[cluster.SharedMemory])
		r.AddCheck("transport.network.bytes",
			r.Metrics.Counters["transport.network.bytes"], fabTotals.bytes[cluster.Network])
		r.AddCheck("transport.network.ops",
			r.Metrics.Counters["transport.network.ops"], fabTotals.ops[cluster.Network])
		if err := r.WriteFile(*obsReportPath); err != nil {
			fmt.Fprintf(os.Stderr, "pullbench: %v\n", err)
			os.Exit(1)
		}
		status := "reconciled"
		if !r.Reconciled {
			status = "MISMATCH"
		}
		fmt.Printf("wrote %s (registry vs fabric: %s)\n", *obsReportPath, status)
	}
}
