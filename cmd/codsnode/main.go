// Command codsnode serves one simulated node of a coupled-workflow machine
// over TCP. A driver (codsrun -backend=tcp) launches one codsnode per
// node; each child builds the full runtime for the shared machine shape —
// transport fabric, CoDS space, lookup and lock services — but owns only
// its own node's endpoint state, which it serves to the driver and to the
// other children through the tcpnet wire protocol.
//
// The child prints one line to stdout once it accepts operations:
//
//	CODSNODE LISTEN <address>
//
// With -obs-http the child first announces its metrics listener:
//
//	CODSNODE OBS <address>
//
// The driver scrapes those lines, distributes the full address table to
// every child, runs the workflow, collects each child's transfer
// accounting (and, with -spans, its captured handler spans), and asks the
// children to exit.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	cods "github.com/insitu/cods"
	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/obs"
	"github.com/insitu/cods/internal/transport/tcpnet"
)

func main() {
	var (
		node       = flag.Int("node", -1, "node this process serves (required)")
		nodes      = flag.Int("nodes", 0, "total nodes of the machine (required)")
		cores      = flag.Int("cores", 0, "cores per node (required)")
		domainSpec = flag.String("domain", "", "coupled domain size, e.g. 32x32x32 (required)")
		listen     = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		seed       = flag.Int64("seed", 1, "mapping seed; must match the driver")
		curve      = flag.String("curve", "", "lookup linearization policy: hilbert (default), morton or rowmajor; "+
			"must match the driver")
		obsOn = flag.Bool("obs", false, "enable the metrics registry from process start "+
			"(required for the driver's per-node report reconciliation)")
		spans = flag.Bool("spans", false, "capture a handler span for every remote operation "+
			"carrying trace context, for the driver to drain into its merged trace")
		obsHTTP = flag.String("obs-http", "", "serve the metrics registry over HTTP on this address "+
			"(announced as CODSNODE OBS)")
		pprof        = flag.Bool("pprof", false, "also serve net/http/pprof handlers on the -obs-http listener")
		readPatience = flag.Duration("read-patience", 0, "bound on a waiting read's deferred wait; "+
			"0 waits forever (elastic drivers set a bound so reads that raced a node replacement retry)")
		incarnation = flag.Uint64("incarnation", 0, "membership incarnation of this serving process "+
			"(a replacement for a crashed node carries a strictly higher one)")
	)
	flag.Parse()
	if err := run(nodeOptions{
		node: *node, nodes: *nodes, cores: *cores,
		domainSpec: *domainSpec, listen: *listen, seed: *seed, curve: *curve,
		obs: *obsOn, spans: *spans, obsHTTP: *obsHTTP, pprof: *pprof,
		readPatience: *readPatience, incarnation: *incarnation,
	}); err != nil {
		fmt.Fprintf(os.Stderr, "codsnode: %v\n", err)
		os.Exit(1)
	}
}

type nodeOptions struct {
	node, nodes, cores int
	domainSpec, listen string
	seed               int64
	curve              string
	obs                bool
	spans              bool
	obsHTTP            string
	pprof              bool
	readPatience       time.Duration
	incarnation        uint64
}

func run(o nodeOptions) error {
	if o.node < 0 || o.nodes < 1 || o.cores < 1 || o.domainSpec == "" {
		return fmt.Errorf("-node, -nodes, -cores and -domain are required")
	}
	domain, err := parseDomain(o.domainSpec)
	if err != nil {
		return err
	}
	// Enabled before the fabric or backend exist, so every instrumented
	// path counts from the first byte and the driver's per-node
	// reconciliation closes with zero delta.
	if o.obs || o.obsHTTP != "" {
		cods.EnableObservability(true)
		defer cods.EnableObservability(false)
	}
	fw, err := cods.New(cods.Config{Nodes: o.nodes, CoresPerNode: o.cores, Domain: domain, Seed: o.seed, Curve: o.curve})
	if err != nil {
		return err
	}
	fabric := fw.TransportFabric()
	be, err := tcpnet.Serve(fabric, cluster.NodeID(o.node), o.listen,
		tcpnet.Config{Incarnation: o.incarnation, ReadPatience: o.readPatience})
	if err != nil {
		return err
	}
	defer be.Close()
	if o.spans {
		be.EnableSpanCapture()
	}
	if o.obsHTTP != "" {
		h := obs.NewHandler(obs.Default, obs.HandlerOpts{
			Flows: func() []cluster.Flow { return fw.MachineInfo().Metrics().Flows("") },
			Pprof: o.pprof,
		})
		srv, err := obs.Serve(o.obsHTTP, h)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("CODSNODE OBS %s\n", srv.Addr())
	}
	// Handlers on this node (lookup inserts forwarding results, lock
	// grants) may themselves target other nodes, so the child routes
	// through the backend too. Installed before the address is announced:
	// no operation can arrive while the fabric still routes everything
	// locally.
	fabric.SetBackend(be)
	fmt.Printf("CODSNODE LISTEN %s\n", be.Addr(cluster.NodeID(o.node)))
	<-be.Done()
	return nil
}

func parseDomain(spec string) ([]int, error) {
	var out []int
	cur := 0
	seen := false
	for i := 0; i <= len(spec); i++ {
		if i == len(spec) || spec[i] == 'x' {
			if !seen {
				return nil, fmt.Errorf("bad -domain %q", spec)
			}
			out = append(out, cur)
			cur, seen = 0, false
			continue
		}
		c := spec[i]
		if c < '0' || c > '9' {
			return nil, fmt.Errorf("bad -domain %q", spec)
		}
		cur = cur*10 + int(c-'0')
		seen = true
	}
	return out, nil
}
