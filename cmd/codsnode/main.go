// Command codsnode serves one simulated node of a coupled-workflow machine
// over TCP. A driver (codsrun -backend=tcp) launches one codsnode per
// node; each child builds the full runtime for the shared machine shape —
// transport fabric, CoDS space, lookup and lock services — but owns only
// its own node's endpoint state, which it serves to the driver and to the
// other children through the tcpnet wire protocol.
//
// The child prints one line to stdout once it accepts operations:
//
//	CODSNODE LISTEN <address>
//
// The driver scrapes that line, distributes the full address table to
// every child, runs the workflow, collects each child's transfer
// accounting, and asks the children to exit.
package main

import (
	"flag"
	"fmt"
	"os"

	cods "github.com/insitu/cods"
	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/transport/tcpnet"
)

func main() {
	var (
		node       = flag.Int("node", -1, "node this process serves (required)")
		nodes      = flag.Int("nodes", 0, "total nodes of the machine (required)")
		cores      = flag.Int("cores", 0, "cores per node (required)")
		domainSpec = flag.String("domain", "", "coupled domain size, e.g. 32x32x32 (required)")
		listen     = flag.String("listen", "127.0.0.1:0", "TCP listen address")
		seed       = flag.Int64("seed", 1, "mapping seed; must match the driver")
	)
	flag.Parse()
	if err := run(*node, *nodes, *cores, *domainSpec, *listen, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "codsnode: %v\n", err)
		os.Exit(1)
	}
}

func run(node, nodes, cores int, domainSpec, listen string, seed int64) error {
	if node < 0 || nodes < 1 || cores < 1 || domainSpec == "" {
		return fmt.Errorf("-node, -nodes, -cores and -domain are required")
	}
	domain, err := parseDomain(domainSpec)
	if err != nil {
		return err
	}
	fw, err := cods.New(cods.Config{Nodes: nodes, CoresPerNode: cores, Domain: domain, Seed: seed})
	if err != nil {
		return err
	}
	fabric := fw.TransportFabric()
	be, err := tcpnet.Serve(fabric, cluster.NodeID(node), listen, tcpnet.Config{})
	if err != nil {
		return err
	}
	defer be.Close()
	// Handlers on this node (lookup inserts forwarding results, lock
	// grants) may themselves target other nodes, so the child routes
	// through the backend too. Installed before the address is announced:
	// no operation can arrive while the fabric still routes everything
	// locally.
	fabric.SetBackend(be)
	fmt.Printf("CODSNODE LISTEN %s\n", be.Addr(cluster.NodeID(node)))
	<-be.Done()
	return nil
}

func parseDomain(spec string) ([]int, error) {
	var out []int
	cur := 0
	seen := false
	for i := 0; i <= len(spec); i++ {
		if i == len(spec) || spec[i] == 'x' {
			if !seen {
				return nil, fmt.Errorf("bad -domain %q", spec)
			}
			out = append(out, cur)
			cur, seen = 0, false
			continue
		}
		c := spec[i]
		if c < '0' || c > '9' {
			return nil, fmt.Errorf("bad -domain %q", spec)
		}
		cur = cur*10 + int(c-'0')
		seen = true
	}
	return out, nil
}
