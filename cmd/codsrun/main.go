// Command codsrun executes a coupled workflow described by a DAG file on a
// simulated multi-core machine, using synthetic producer/consumer
// applications, and reports the traffic and timing the framework measured.
//
// Each application is declared with -app id:kind:grid (kind one of
// blocked, cyclic, block-cyclic; grid like 4x4x2). The first application
// of a multi-application bundle produces data that the bundle's other
// applications consume concurrently; an application with workflow parents
// consumes the data its parent produced sequentially; other applications
// produce data sequentially.
//
// Example (the paper's online data processing scenario):
//
//	codsrun -nodes 12 -cores 4 -domain 32x32x32 \
//	    -app 1:blocked:4x4x2 -app 2:blocked:2x2x2 \
//	    -dag online.dag -policy data-centric
package main

import (
	"bufio"
	"flag"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	cods "github.com/insitu/cods"
	"github.com/insitu/cods/internal/apps"
	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/mapping"
	"github.com/insitu/cods/internal/obs"
	"github.com/insitu/cods/internal/transport/tcpnet"
)

type appFlags []string

func (a *appFlags) String() string     { return strings.Join(*a, ",") }
func (a *appFlags) Set(s string) error { *a = append(*a, s); return nil }

// options collects every knob of one codsrun invocation.
type options struct {
	nodes, cores     int
	domainSpec       string
	curve            string
	dagPath          string
	policyName       string
	iterations, halo int
	verify, verbose  bool
	flowsPath        string
	report           bool
	reportPath       string
	spansPath        string
	obsHTTP          string
	nodeObsHTTP      string
	pprof            bool
	appSpecs         []string
	faultsPath       string
	retrySpec        string
	taskRetry        int
	taskRemap        bool
	backend          string
	codsnodePath     string
	elastic          bool
	leaseTTL         time.Duration
	readPatience     time.Duration
	chaosKill        int
	chaosAfter       int
	stream           bool
	streamRounds     int
	streamLag        int
	streamPolicy     string
}

func main() {
	var o options
	flag.IntVar(&o.nodes, "nodes", 12, "number of compute nodes")
	flag.IntVar(&o.cores, "cores", 4, "cores per node")
	flag.StringVar(&o.domainSpec, "domain", "32x32x32", "coupled domain size, e.g. 32x32x32")
	flag.StringVar(&o.curve, "curve", "", "lookup linearization policy: hilbert (default), morton or rowmajor")
	flag.StringVar(&o.dagPath, "dag", "", "workflow description file (required)")
	flag.StringVar(&o.policyName, "policy", "data-centric", "task mapping: data-centric or round-robin")
	flag.IntVar(&o.iterations, "iterations", 1, "coupling iterations for concurrent bundles")
	flag.IntVar(&o.halo, "halo", 1, "stencil ghost width (0 disables intra-app exchange)")
	flag.BoolVar(&o.verify, "verify", true, "verify retrieved data cell by cell")
	flag.StringVar(&o.flowsPath, "flows", "", "write the recorded transfer flows as JSON Lines to this file")
	flag.BoolVar(&o.report, "report", false, "enable the metrics registry and write a reconciled report")
	flag.StringVar(&o.reportPath, "report-path", "results/report.json", "where -report writes the JSON report")
	flag.StringVar(&o.spansPath, "spans", "", "write parent-linked span events as JSON Lines to this file")
	flag.StringVar(&o.obsHTTP, "obs-http", "", "serve the metrics registry over HTTP on this address (e.g. :8970)")
	flag.StringVar(&o.nodeObsHTTP, "node-obs-http", "", "with -backend=tcp, serve each codsnode's registry over HTTP "+
		"on this address (use port 0 to pick a free port per child)")
	flag.BoolVar(&o.pprof, "pprof", false, "also serve net/http/pprof handlers on the -obs-http and -node-obs-http listeners")
	flag.StringVar(&o.faultsPath, "faults", "", "JSON fault plan to inject into the fabric (see ParseFaultPlan)")
	flag.StringVar(&o.retrySpec, "retry", "", "transfer retry policy: attempt count (e.g. 4) or "+
		"attempts=4,base=200us,cap=50ms,jitter=0.2,deadline=5s")
	flag.IntVar(&o.taskRetry, "task-retry", 0, "re-run a failed task up to this many attempts (0 disables)")
	flag.BoolVar(&o.taskRemap, "task-remap", false, "remap retried tasks' data operations to a spare core")
	flag.StringVar(&o.backend, "backend", "inproc", "transport backend: inproc (single process) or "+
		"tcp (one codsnode child process per node, operations over loopback TCP)")
	flag.StringVar(&o.codsnodePath, "codsnode", "", "path to the codsnode binary for -backend=tcp "+
		"(default: next to this binary, then $PATH)")
	flag.BoolVar(&o.elastic, "elastic", false, "with -backend=tcp, run the elastic membership layer: every codsnode "+
		"holds a heartbeat-renewed lease, and a crashed node is replaced and its staged data re-staged automatically")
	flag.DurationVar(&o.leaseTTL, "lease-ttl", time.Second, "membership lease TTL for -elastic "+
		"(heartbeats and expiry sweeps run at a quarter of this)")
	flag.DurationVar(&o.readPatience, "read-patience", 2*time.Second, "with -elastic, bound each codsnode's "+
		"deferred-read wait so reads that raced a node replacement are retried against the reconciled "+
		"routing instead of blocking forever (0: wait forever)")
	flag.IntVar(&o.chaosKill, "chaos-kill", -1, "with -elastic, kill this node's codsnode child once staging is done, "+
		"to exercise crash recovery under live traffic (-1 disables)")
	flag.IntVar(&o.chaosAfter, "chaos-after", 0, "with -chaos-kill, fire once the put ledger holds at least this many "+
		"blocks (0: fire when the ledger stops growing)")
	flag.BoolVar(&o.stream, "stream", false, "couple multi-application bundles through a bounded-lag version stream "+
		"(publish/subscribe cursors) instead of lock-step iterations")
	flag.IntVar(&o.streamRounds, "stream-rounds", 8, "with -stream, versions each producer publishes")
	flag.IntVar(&o.streamLag, "stream-lag", 2, "with -stream, max versions a consumer may trail the watermark")
	flag.StringVar(&o.streamPolicy, "stream-policy", "backpressure", "with -stream, lag policy: backpressure or drop-oldest")
	flag.BoolVar(&o.verbose, "v", false, "print the per-node task placement of every stage")
	var appSpecs appFlags
	flag.Var(&appSpecs, "app", "application spec id:kind:grid (repeatable)")
	flag.Parse()
	o.appSpecs = appSpecs

	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "codsrun: %v\n", err)
		os.Exit(1)
	}
}

func parseInts(spec, sep string) ([]int, error) {
	parts := strings.Split(spec, sep)
	out := make([]int, len(parts))
	for i, p := range parts {
		v, err := strconv.Atoi(strings.TrimSpace(p))
		if err != nil {
			return nil, fmt.Errorf("bad integer %q in %q", p, spec)
		}
		out[i] = v
	}
	return out, nil
}

// parseRetrySpec builds a retry policy from the -retry flag: either a bare
// attempt count (the default policy with that budget) or a comma-separated
// key=value list of attempts, base, cap, multiplier, jitter and deadline.
func parseRetrySpec(spec string) (cods.RetryPolicy, error) {
	pol := cods.DefaultRetryPolicy()
	if n, err := strconv.Atoi(spec); err == nil {
		if n < 1 {
			return pol, fmt.Errorf("-retry attempts %d < 1", n)
		}
		pol.MaxAttempts = n
		return pol, nil
	}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return pol, fmt.Errorf("bad -retry element %q (want key=value)", kv)
		}
		var err error
		switch k {
		case "attempts":
			pol.MaxAttempts, err = strconv.Atoi(v)
		case "base":
			pol.BaseDelay, err = time.ParseDuration(v)
		case "cap":
			pol.MaxDelay, err = time.ParseDuration(v)
		case "multiplier":
			pol.Multiplier, err = strconv.ParseFloat(v, 64)
		case "jitter":
			pol.Jitter, err = strconv.ParseFloat(v, 64)
		case "deadline":
			pol.Deadline, err = time.ParseDuration(v)
		default:
			return pol, fmt.Errorf("unknown -retry key %q", k)
		}
		if err != nil {
			return pol, fmt.Errorf("bad -retry value %q for %s: %v", v, k, err)
		}
	}
	if pol.MaxAttempts < 1 {
		return pol, fmt.Errorf("-retry attempts %d < 1", pol.MaxAttempts)
	}
	return pol, nil
}

func run(o options) error {
	if o.dagPath == "" {
		return fmt.Errorf("-dag is required")
	}
	var policy cods.Policy
	switch o.policyName {
	case "data-centric":
		policy = cods.DataCentric
	case "round-robin":
		policy = cods.RoundRobin
	default:
		return fmt.Errorf("unknown policy %q", o.policyName)
	}
	var streamPol cods.StreamPolicy
	if o.stream {
		switch o.streamPolicy {
		case "backpressure":
			streamPol = cods.Backpressure
		case "drop-oldest":
			streamPol = cods.DropOldest
		default:
			return fmt.Errorf("unknown stream policy %q (want backpressure or drop-oldest)", o.streamPolicy)
		}
	}
	domain, err := parseInts(o.domainSpec, "x")
	if err != nil {
		return err
	}
	f, err := os.Open(o.dagPath)
	if err != nil {
		return err
	}
	d, err := cods.ParseWorkflow(f)
	f.Close()
	if err != nil {
		return err
	}

	// A DOMAIN directive in the DAG file overrides the -domain flag.
	if d.Domain != nil {
		domain = d.Domain
	}
	fw, err := cods.New(cods.Config{Nodes: o.nodes, CoresPerNode: o.cores, Domain: domain, Curve: o.curve})
	if err != nil {
		return err
	}

	// Observability: the registry costs one atomic load per hot-path probe
	// when off, so it is only switched on when some output wants it. It is
	// enabled before any transport backend starts, so the wire-mirror
	// counters see every byte (handshakes included) and reconcile exactly
	// against the backend's own accounting.
	if o.report || o.obsHTTP != "" || o.nodeObsHTTP != "" {
		cods.EnableObservability(true)
		defer cods.EnableObservability(false)
	}
	// The membership view is published before the elastic runtime exists:
	// the /members closure dereferences this pointer on each request, so
	// the handler can be mounted first and start answering once the
	// registry is up.
	var elPtr atomic.Pointer[elastic]
	if o.obsHTTP != "" {
		hopts := obs.HandlerOpts{
			Flows: func() []cluster.Flow { return fw.MachineInfo().Metrics().Flows("") },
			Pprof: o.pprof,
		}
		if o.elastic {
			hopts.Members = func() any {
				if el := elPtr.Load(); el != nil {
					return el.members()
				}
				return nil
			}
		}
		h := obs.NewHandler(obs.Default, hopts)
		srv, err := obs.Serve(o.obsHTTP, h)
		if err != nil {
			return err
		}
		defer srv.Close()
		fmt.Printf("metrics registry at http://%s/metrics (flow matrix at /flows)\n", srv.Addr())
	}
	var spansOut *os.File
	if o.spansPath != "" {
		spansOut, err = os.Create(o.spansPath)
		if err != nil {
			return err
		}
		defer spansOut.Close()
		fw.SetSpanTrace(spansOut)
	}

	// Transport backend: with -backend=tcp one codsnode child process is
	// launched per node and every data operation crosses real sockets.
	var tcpBE *tcpnet.Backend
	var tc *tcpCluster
	switch o.backend {
	case "", "inproc":
		if o.elastic {
			return fmt.Errorf("-elastic needs -backend=tcp (leases are held by codsnode processes)")
		}
	case "tcp":
		tc, err = startTCPBackend(fw, o, domain)
		if err != nil {
			return err
		}
		tcpBE = tc.be
		defer tc.stop(fw)
	default:
		return fmt.Errorf("unknown backend %q (want inproc or tcp)", o.backend)
	}

	// Fault injection and recovery knobs.
	var plan *cods.FaultPlan
	if o.faultsPath != "" {
		data, err := os.ReadFile(o.faultsPath)
		if err != nil {
			return err
		}
		plan, err = cods.ParseFaultPlan(data)
		if err != nil {
			return err
		}
		fw.SetFaultPlan(plan)
		fmt.Printf("fault plan %s installed\n", o.faultsPath)
	}
	if o.retrySpec != "" {
		pol, err := parseRetrySpec(o.retrySpec)
		if err != nil {
			return err
		}
		fw.SetRetryPolicy(pol)
	}
	if o.taskRetry > 0 {
		pol := cods.DefaultRetryPolicy()
		pol.MaxAttempts = o.taskRetry
		fw.SetTaskRetry(cods.TaskRetryPolicy{Policy: pol, Remap: o.taskRemap})
	} else if o.taskRemap {
		return fmt.Errorf("-task-remap needs -task-retry > 0")
	}

	// Elastic membership: leases on every codsnode, a monitor renewing
	// them, and a reconcile loop that replaces crashed processes and
	// re-stages their data while the workflow keeps running.
	var el *elastic
	if o.elastic {
		el, err = startElastic(fw, o, d, tc)
		if err != nil {
			return err
		}
		elPtr.Store(el)
		defer el.Stop()
		fmt.Printf("elastic membership: %d leases of %s (heartbeat every %s)\n",
			o.nodes, o.leaseTTL, o.leaseTTL/4)
		if o.chaosKill >= 0 {
			if o.chaosKill >= o.nodes {
				return fmt.Errorf("-chaos-kill %d out of range (0..%d)", o.chaosKill, o.nodes-1)
			}
			el.startChaos(o.chaosKill, o.chaosAfter)
		}
	} else if o.chaosKill >= 0 {
		return fmt.Errorf("-chaos-kill needs -elastic")
	}

	// Decomposition declarations come from the DAG file's DECOMP
	// directives, optionally overridden/completed by -app flags.
	decomps := make(map[int]*cods.Decomposition)
	if len(d.Decomps) > 0 {
		fromFile, err := d.Decompositions(domain)
		if err != nil {
			return err
		}
		for id, dc := range fromFile {
			decomps[id] = dc
		}
	}
	for _, spec := range o.appSpecs {
		parts := strings.Split(spec, ":")
		if len(parts) != 3 {
			return fmt.Errorf("bad -app spec %q (want id:kind:grid)", spec)
		}
		id, err := strconv.Atoi(parts[0])
		if err != nil {
			return fmt.Errorf("bad app id in %q", spec)
		}
		grid, err := parseInts(parts[2], "x")
		if err != nil {
			return err
		}
		var dc *cods.Decomposition
		switch parts[1] {
		case "blocked":
			dc, err = fw.BlockedDecomposition(grid)
		case "cyclic":
			dc, err = fw.CyclicDecomposition(grid)
		case "block-cyclic":
			block := make([]int, len(grid))
			for i := range block {
				block[i] = 2
			}
			dc, err = fw.BlockCyclicDecomposition(grid, block)
		default:
			return fmt.Errorf("unknown distribution %q in %q", parts[1], spec)
		}
		if err != nil {
			return err
		}
		decomps[id] = dc
	}

	// Classify each application by its workflow role and register the
	// matching synthetic subroutine.
	bundleOf := make(map[int][]int)
	for _, b := range d.Bundles {
		for _, a := range b {
			bundleOf[a] = b
		}
	}
	for _, id := range d.Apps {
		dc, ok := decomps[id]
		if !ok {
			return fmt.Errorf("application %d has no -app declaration", id)
		}
		bundle := bundleOf[id]
		spec := cods.AppSpec{ID: id, Decomp: dc}
		switch {
		case len(bundle) > 1 && bundle[0] == id && o.stream:
			v := fmt.Sprintf("data.%d", id)
			// One producer index per published piece, assigned densely in
			// rank-major order (apps.StreamProducerIndexBase).
			producers := 0
			for r := 0; r < dc.NumTasks(); r++ {
				producers += len(dc.Region(r))
			}
			if err := fw.DeclareStream(v, cods.StreamConfig{
				Producers: producers, MaxLag: o.streamLag, Policy: streamPol,
			}); err != nil {
				return err
			}
			spec.Run = apps.NewStreamProducer(apps.StreamProducerConfig{
				Var: v, Rounds: o.streamRounds, Halo: o.halo,
			})
			fmt.Printf("app %d: stream producer (%d tasks, %d indices, %d rounds, lag %d, %s policy, %s)\n",
				id, dc.NumTasks(), producers, o.streamRounds, o.streamLag, streamPol, dc)
		case len(bundle) > 1 && o.stream:
			spec.Run = apps.NewStreamConsumer(apps.StreamConsumerConfig{
				Var: fmt.Sprintf("data.%d", bundle[0]), Halo: o.halo, Verify: o.verify,
			})
			fmt.Printf("app %d: stream consumer of app %d (%d tasks, %s)\n", id, bundle[0], dc.NumTasks(), dc)
		case len(bundle) > 1 && bundle[0] == id:
			spec.Run = apps.NewProducer(apps.ProducerConfig{
				Var: fmt.Sprintf("data.%d", id), Iterations: o.iterations, Halo: o.halo,
				Mode: apps.Concurrent,
			})
			fmt.Printf("app %d: concurrent producer (%d tasks, %s)\n", id, dc.NumTasks(), dc)
		case len(bundle) > 1:
			spec.Run = apps.NewConsumer(apps.ConsumerConfig{
				Var: fmt.Sprintf("data.%d", bundle[0]), Producer: bundle[0],
				Iterations: o.iterations, Halo: o.halo, Mode: apps.Concurrent, Verify: o.verify,
			})
			fmt.Printf("app %d: concurrent consumer of app %d (%d tasks, %s)\n", id, bundle[0], dc.NumTasks(), dc)
		case len(d.Parents(id)) > 0:
			parent := d.Parents(id)[0]
			spec.Run = apps.NewConsumer(apps.ConsumerConfig{
				Var: fmt.Sprintf("data.%d", parent), Iterations: 1, Halo: o.halo,
				Mode: apps.Sequential, Verify: o.verify,
			})
			spec.ReadsVar = fmt.Sprintf("data.%d", parent)
			fmt.Printf("app %d: sequential consumer of app %d (%d tasks, %s)\n", id, parent, dc.NumTasks(), dc)
		default:
			spec.Run = apps.NewProducer(apps.ProducerConfig{
				Var: fmt.Sprintf("data.%d", id), Iterations: 1, Halo: o.halo,
				Mode: apps.Sequential,
			})
			fmt.Printf("app %d: sequential producer (%d tasks, %s)\n", id, dc.NumTasks(), dc)
		}
		if err := fw.RegisterApp(spec); err != nil {
			return err
		}
	}

	rep, err := fw.RunWorkflow(d, policy)
	if err != nil {
		return err
	}
	// A convergence still in flight at workflow end must finish before any
	// child is asked for its accounting — and a convergence failure is a
	// run failure even when every task happened to complete.
	if el != nil {
		if err := el.Settle(30 * time.Second); err != nil {
			return err
		}
	}
	// Remote endpoint groups meter the transfers they execute; fold their
	// accounting into the driver before any traffic is reported, and
	// splice the handler spans the children captured into the driver's
	// trace so the merged file holds one cross-process span tree.
	if tcpBE != nil {
		if err := tcpBE.MergeRemoteStats(); err != nil {
			return fmt.Errorf("collecting remote transfer stats: %w", err)
		}
		if tr := fw.SpanTracer(); tr != nil {
			if err := tcpBE.DrainRemoteSpans(tr); err != nil {
				return fmt.Errorf("collecting remote spans: %w", err)
			}
		}
	}
	fmt.Printf("\nworkflow complete: %d bundles, %d tasks, policy %s\n",
		rep.BundlesRun, rep.TasksRun, rep.Policy)
	if plan != nil {
		fmt.Printf("faults: %d errors + %d delays injected; task attempts %d (retries %d, recoveries %d)\n",
			plan.Injected(), plan.Delayed(), rep.TaskAttempts, rep.TaskRetries, rep.TaskRecoveries)
	}
	if o.verbose {
		printed := map[*cluster.Placement]bool{}
		for _, id := range d.Apps {
			pl := rep.PlacementOf[id]
			if pl == nil || printed[pl] {
				continue
			}
			printed[pl] = true
			fmt.Printf("placement (apps sharing app %d's stage):\n%s", id, mapping.Describe(fw.MachineInfo(), pl))
		}
	}
	if o.stream {
		pub, consumed, dropped := fw.StreamStats()
		fmt.Printf("stream:         %d versions published, %d consumed, %d dropped (%s policy, lag %d)\n",
			pub, consumed, dropped, streamPol, o.streamLag)
	}
	tr := fw.Traffic()
	fmt.Printf("coupled data:   %12d B network, %12d B shared memory (%.1f%% in-situ)\n",
		tr.CoupledNetwork, tr.CoupledShm, 100*ratio(tr.CoupledShm, tr.CoupledNetwork+tr.CoupledShm))
	fmt.Printf("intra-app data: %12d B network, %12d B shared memory\n", tr.IntraNetwork, tr.IntraShm)
	fmt.Printf("control:        %12d B network, %12d B shared memory\n", tr.ControlNetwork, tr.ControlShm)
	secs, err := fw.PhaseTime("couple:")
	if err != nil {
		return err
	}
	fmt.Printf("simulated coupled-data retrieval time: %.3f ms\n", secs*1e3)
	if o.flowsPath != "" {
		out, err := os.Create(o.flowsPath)
		if err != nil {
			return err
		}
		defer out.Close()
		if err := fw.WriteFlows(out); err != nil {
			return err
		}
		fmt.Printf("flow trace written to %s\n", o.flowsPath)
	}
	if spansOut != nil {
		if err := fw.FlushSpans(); err != nil {
			return err
		}
		fmt.Printf("span trace written to %s\n", o.spansPath)
	}
	if o.report {
		if err := writeReport(fw, d, o, rep, tcpBE, el); err != nil {
			return err
		}
		fmt.Printf("observability report written to %s\n", o.reportPath)
	}
	return nil
}

// writeReport snapshots the metrics registry and reconciles its transport
// counters against the fabric's independent per-medium accounting; any
// mismatch means an instrumented path drifted from the metering choke
// point. With -backend=tcp the report additionally carries one section
// per codsnode process, each reconciling that child's shipped registry
// snapshot against the fabric stats and wire counters shipped in the
// same stats reply, plus a driver-side check of the wire-mirror counters
// against the backend's own byte accounting. With -elastic the report also
// reconciles the membership counters — joins, expirations, migrated bytes
// and blocks, re-registered records — against the reconciler's summed
// results, so a crash recovery that moved data is accounted delta-0 too.
func writeReport(fw *cods.Framework, d *cods.DAG, o options, rep *cods.Report, tcpBE *tcpnet.Backend, el *elastic) error {
	r := obs.NewReport("codsrun")
	r.SetMeta("dag", o.dagPath)
	r.SetMeta("policy", o.policyName)
	r.SetMeta("platform", fmt.Sprintf("%d nodes x %d cores", o.nodes, o.cores))
	r.SetMeta("bundles_run", strconv.Itoa(rep.BundlesRun))
	r.SetMeta("tasks_run", strconv.Itoa(rep.TasksRun))
	r.SetMeta("task_attempts", strconv.Itoa(rep.TaskAttempts))
	r.SetMeta("task_retries", strconv.Itoa(rep.TaskRetries))
	r.SetMeta("task_recoveries", strconv.Itoa(rep.TaskRecoveries))
	r.SetMeta("faults_injected", strconv.FormatInt(rep.FaultsInjected, 10))
	ms := fw.MediumStats()
	r.AddCheck("transport.shm.bytes", r.Metrics.Counters["transport.shm.bytes"], ms.ShmBytes)
	r.AddCheck("transport.shm.ops", r.Metrics.Counters["transport.shm.ops"], ms.ShmOps)
	r.AddCheck("transport.network.bytes", r.Metrics.Counters["transport.network.bytes"], ms.NetworkBytes)
	r.AddCheck("transport.network.ops", r.Metrics.Counters["transport.network.ops"], ms.NetworkOps)
	// The per-operation fault counters must sum to the fabric's independent
	// injected-fault total.
	faultSum := int64(0)
	for _, k := range []string{"transport.faults.send", "transport.faults.recv",
		"transport.faults.read", "transport.faults.call"} {
		faultSum += r.Metrics.Counters[k]
	}
	r.AddCheck("transport.faults.total", faultSum, fw.FaultsInjected())
	// Per-application received bytes by medium (the paper's Figure 9/10
	// breakdown), from the machine metrics rather than the registry.
	for _, id := range d.Apps {
		cShm, cNet, iShm, iNet := fw.AppTraffic(id)
		r.SetMeta(fmt.Sprintf("app%d.coupled_bytes", id), fmt.Sprintf("shm=%d network=%d", cShm, cNet))
		r.SetMeta(fmt.Sprintf("app%d.intra_bytes", id), fmt.Sprintf("shm=%d network=%d", iShm, iNet))
	}
	if o.stream {
		// The registry's stream counters must reconcile against the stream
		// layer's own per-version accounting.
		pub, consumed, dropped := fw.StreamStats()
		r.AddCheck("cods.stream.published", r.Metrics.Counters["cods.stream.published"], pub)
		r.AddCheck("cods.stream.consumed", r.Metrics.Counters["cods.stream.consumed"], consumed)
		r.AddCheck("cods.stream.dropped", r.Metrics.Counters["cods.stream.dropped"], dropped)
	}
	if tcpBE != nil {
		// The driver's wire-mirror counters are bumped at the same sites
		// as the backend's own byte accounting, so they must agree.
		ws := tcpBE.WireStats()
		r.AddCheck("tcpnet.bytes_out", r.Metrics.Counters["tcpnet.bytes_out"], ws.BytesOut)
		r.AddCheck("tcpnet.bytes_in", r.Metrics.Counters["tcpnet.bytes_in"], ws.BytesIn)
		for _, acct := range tcpBE.NodeAccounts() {
			names := make([]string, len(acct.Nodes))
			for i, nd := range acct.Nodes {
				names[i] = fmt.Sprintf("node%d", nd)
			}
			n := r.AddNode(strings.Join(names, "+"), acct.Addr, acct.Registry)
			if !acct.Registry.Enabled {
				continue // child ran without -obs; nothing to reconcile
			}
			c := acct.Registry.Counters
			n.AddCheck("transport.shm.bytes", c["transport.shm.bytes"], acct.ShmBytes)
			n.AddCheck("transport.shm.ops", c["transport.shm.ops"], acct.ShmOps)
			n.AddCheck("transport.network.bytes", c["transport.network.bytes"], acct.NetBytes)
			n.AddCheck("transport.network.ops", c["transport.network.ops"], acct.NetOps)
			n.AddCheck("tcpnet.bytes_out", c["tcpnet.bytes_out"], acct.Wire.BytesOut)
			n.AddCheck("tcpnet.bytes_in", c["tcpnet.bytes_in"], acct.Wire.BytesIn)
			n.AddCheck("tcpnet.segments.served", c["tcpnet.segments.served"], acct.Wire.SegmentsServed)
			n.AddCheck("tcpnet.segments.bytes_served", c["tcpnet.segments.bytes_served"], acct.Wire.SegmentBytesServed)
		}
	}
	if el != nil {
		tot := el.totals()
		c := r.Metrics.Counters
		replaced := int64(len(tot.Affected))
		r.AddCheck("membership.joins", c["membership.joins"], int64(o.nodes)+replaced)
		r.AddCheck("membership.expirations", c["membership.expirations"], replaced)
		r.AddCheck("membership.migrated_blocks", c["membership.migrated_blocks"], tot.RestagedCount)
		r.AddCheck("membership.migrated_bytes", c["membership.migrated_bytes"], tot.MigratedBytes)
		r.AddCheck("membership.reinserted_records", c["membership.reinserted_records"], tot.Reinserted)
		r.SetMeta("membership.members", el.membersJSON())
	}
	return r.WriteFile(o.reportPath)
}

func ratio(a, b int64) float64 {
	if b == 0 {
		return 0
	}
	return float64(a) / float64(b)
}

// findCodsnode locates the codsnode binary: the -codsnode flag, then next
// to this executable, then $PATH.
func findCodsnode(o options) (string, error) {
	if o.codsnodePath != "" {
		return o.codsnodePath, nil
	}
	if exe, err := os.Executable(); err == nil {
		cand := filepath.Join(filepath.Dir(exe), "codsnode")
		if _, err := os.Stat(cand); err == nil {
			return cand, nil
		}
	}
	if p, err := exec.LookPath("codsnode"); err == nil {
		return p, nil
	}
	return "", fmt.Errorf("-backend=tcp needs the codsnode binary (build cmd/codsnode and pass -codsnode or put it on $PATH)")
}

// tcpCluster is the driver's handle on the codsnode child processes of a
// -backend=tcp run: the connected backend, the shared child arguments,
// and the live children keyed by node, so the elastic reconcile loop can
// kill, reap and replace a single node's process while the rest serve.
type tcpCluster struct {
	be   *tcpnet.Backend
	bin  string
	args []string // shared child flags, without -node/-incarnation

	mu       sync.Mutex
	children map[int]*exec.Cmd
	addrs    map[int]string
}

// startTCPBackend launches one codsnode child per node, collects their
// listen addresses, distributes the address table so children can reach
// each other, and installs the connected TCP backend on the framework's
// fabric. With -elastic every child starts at incarnation 1, so a
// replacement can supersede it with a strictly higher one.
func startTCPBackend(fw *cods.Framework, o options, domain []int) (*tcpCluster, error) {
	bin, err := findCodsnode(o)
	if err != nil {
		return nil, err
	}
	dims := make([]string, len(domain))
	for i, d := range domain {
		dims[i] = strconv.Itoa(d)
	}
	args := []string{
		"-nodes", strconv.Itoa(o.nodes),
		"-cores", strconv.Itoa(o.cores),
		"-domain", strings.Join(dims, "x"),
	}
	// The DHT interval assignment is curve-relative: every serving node
	// must linearize with the driver's policy or routing diverges.
	if o.curve != "" {
		args = append(args, "-curve", o.curve)
	}
	// Children mirror the driver's observability posture: a reconciled
	// report needs every child's registry counting from process start, a
	// span trace needs every child capturing handler spans for the driver
	// to drain.
	if o.report || o.nodeObsHTTP != "" {
		args = append(args, "-obs")
	}
	if o.spansPath != "" {
		args = append(args, "-spans")
	}
	if o.nodeObsHTTP != "" {
		args = append(args, "-obs-http", o.nodeObsHTTP)
		if o.pprof {
			args = append(args, "-pprof")
		}
	}
	// Replacements mean a read can land on a process that never receives
	// the buffer; bounded patience turns that from a hang into a retry.
	if o.elastic && o.readPatience > 0 {
		args = append(args, "-read-patience", o.readPatience.String())
	}
	tc := &tcpCluster{bin: bin, args: args,
		children: make(map[int]*exec.Cmd), addrs: make(map[int]string)}
	fail := func(err error) (*tcpCluster, error) {
		tc.killAll()
		return nil, err
	}
	var inc uint64
	if o.elastic {
		inc = 1
	}
	peers := make(map[cluster.NodeID]string, o.nodes)
	for node := 0; node < o.nodes; node++ {
		addr, err := tc.spawnNode(node, inc)
		if err != nil {
			return fail(fmt.Errorf("codsnode %d: %w", node, err))
		}
		peers[cluster.NodeID(node)] = addr
	}
	be, err := tcpnet.Connect(fw.TransportFabric(), peers, tcpnet.Config{})
	if err != nil {
		return fail(err)
	}
	if err := be.PushPeers(); err != nil {
		be.Close()
		return fail(fmt.Errorf("distributing peer addresses: %w", err))
	}
	tc.be = be
	fw.TransportFabric().SetBackend(be)
	return tc, nil
}

// spawnNode launches one codsnode child (incarnation 0 omits the flag),
// waits for its listen announcement, and records it as the node's serving
// process.
func (tc *tcpCluster) spawnNode(node int, inc uint64) (string, error) {
	args := append([]string{"-node", strconv.Itoa(node)}, tc.args...)
	if inc != 0 {
		args = append(args, "-incarnation", strconv.FormatUint(inc, 10))
	}
	cmd := exec.Command(tc.bin, args...)
	cmd.Stderr = os.Stderr
	stdout, err := cmd.StdoutPipe()
	if err != nil {
		return "", err
	}
	if err := cmd.Start(); err != nil {
		return "", fmt.Errorf("starting codsnode %d: %w", node, err)
	}
	addr, obsAddr, err := scrapeChildAddrs(stdout)
	if err != nil {
		cmd.Process.Kill()
		cmd.Wait()
		return "", err
	}
	go io.Copy(io.Discard, stdout)
	tc.mu.Lock()
	tc.children[node] = cmd
	tc.addrs[node] = addr
	tc.mu.Unlock()
	fmt.Printf("codsnode %d serving at %s\n", node, addr)
	if obsAddr != "" {
		fmt.Printf("codsnode %d metrics at http://%s/metrics (flow matrix at /flows)\n", node, obsAddr)
	}
	return addr, nil
}

// addr returns a node's announced listen address.
func (tc *tcpCluster) addr(node int) string {
	tc.mu.Lock()
	defer tc.mu.Unlock()
	return tc.addrs[node]
}

// kill terminates a node's child without reaping it — the chaos hook's
// crash. The reconcile loop detects the expired lease, reaps the corpse
// and spawns the replacement.
func (tc *tcpCluster) kill(node int) {
	tc.mu.Lock()
	cmd := tc.children[node]
	tc.mu.Unlock()
	if cmd != nil {
		cmd.Process.Kill()
	}
}

// reap kills (idempotent on a corpse) and waits out a node's child,
// freeing the slot for a replacement spawn.
func (tc *tcpCluster) reap(node int) {
	tc.mu.Lock()
	cmd := tc.children[node]
	delete(tc.children, node)
	tc.mu.Unlock()
	if cmd != nil {
		cmd.Process.Kill()
		cmd.Wait()
	}
}

// killAll hard-kills every child (startup failure cleanup).
func (tc *tcpCluster) killAll() {
	tc.mu.Lock()
	children := tc.children
	tc.children = make(map[int]*exec.Cmd)
	tc.mu.Unlock()
	for _, c := range children {
		c.Process.Kill()
		c.Wait()
	}
}

// scrapeChildAddrs reads the child's stdout until its CODSNODE LISTEN
// announcement, also capturing the CODSNODE OBS metrics address printed
// just before it when the child serves its registry over HTTP; EOF first
// means the child died before serving.
func scrapeChildAddrs(r io.Reader) (listen, obsAddr string, err error) {
	sc := bufio.NewScanner(r)
	for sc.Scan() {
		if addr, ok := strings.CutPrefix(sc.Text(), "CODSNODE OBS "); ok {
			obsAddr = strings.TrimSpace(addr)
			continue
		}
		if addr, ok := strings.CutPrefix(sc.Text(), "CODSNODE LISTEN "); ok {
			return strings.TrimSpace(addr), obsAddr, nil
		}
	}
	if err := sc.Err(); err != nil {
		return "", "", err
	}
	return "", "", fmt.Errorf("exited before announcing a listen address")
}

// stop restores in-process routing, asks every child to exit and reaps
// them, killing any straggler after a grace period.
func (tc *tcpCluster) stop(fw *cods.Framework) {
	fw.TransportFabric().SetBackend(nil)
	tc.be.ShutdownPeers()
	tc.be.Close()
	tc.mu.Lock()
	children := tc.children
	tc.children = make(map[int]*exec.Cmd)
	tc.mu.Unlock()
	for _, c := range children {
		c := c
		done := make(chan struct{})
		go func() {
			c.Wait()
			close(done)
		}()
		select {
		case <-done:
		case <-time.After(5 * time.Second):
			c.Process.Kill()
			<-done
		}
	}
}
