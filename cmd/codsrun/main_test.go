package main

import (
	"os"
	"path/filepath"
	"testing"
)

func writeDAG(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "wf.dag")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRunConcurrentWorkflowFile(t *testing.T) {
	dag := writeDAG(t, "DOMAIN 16 16 16\nAPP_ID 1\nAPP_ID 2\nDECOMP 1 blocked 2 2 2\nDECOMP 2 blocked 2 2 1\nBUNDLE 1 2\n")
	flows := filepath.Join(t.TempDir(), "flows.jsonl")
	err := run(4, 4, "8x8x8", dag, "data-centric", 1, 1, true, true, flows, nil)
	if err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(flows); err != nil || fi.Size() == 0 {
		t.Fatalf("flow trace not written: %v", err)
	}
}

func TestRunSequentialWorkflowFile(t *testing.T) {
	dag := writeDAG(t, "APP_ID 1\nAPP_ID 2\nPARENT_APPID 1 CHILD_APPID 2\n")
	err := run(4, 4, "16x16", dag, "round-robin", 1, 1, true, false, "",
		[]string{"1:blocked:4x2", "2:cyclic:2x2"})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRunErrors(t *testing.T) {
	dag := writeDAG(t, "APP_ID 1\n")
	cases := []struct {
		name string
		err  error
	}{
		{"missing dag", run(2, 2, "8x8", "", "data-centric", 1, 0, false, false, "", nil)},
		{"bad policy", run(2, 2, "8x8", dag, "fancy", 1, 0, false, false, "", nil)},
		{"bad domain", run(2, 2, "8xq", dag, "data-centric", 1, 0, false, false, "", nil)},
		{"missing app decl", run(2, 2, "8x8", dag, "data-centric", 1, 0, false, false, "", nil)},
		{"bad app spec", run(2, 2, "8x8", dag, "data-centric", 1, 0, false, false, "", []string{"nope"})},
		{"bad app kind", run(2, 2, "8x8", dag, "data-centric", 1, 0, false, false, "", []string{"1:fancy:2x2"})},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
