package main

import (
	"os"
	"path/filepath"
	"testing"

	"github.com/insitu/cods/internal/obs"
)

func writeDAG(t *testing.T, content string) string {
	t.Helper()
	p := filepath.Join(t.TempDir(), "wf.dag")
	if err := os.WriteFile(p, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return p
}

// opts builds the options one test invocation needs, starting from the
// flag defaults that matter.
func opts(nodes, cores int, domain, dag, policy string, iterations, halo int, verify, verbose bool) options {
	return options{
		nodes: nodes, cores: cores, domainSpec: domain, dagPath: dag,
		policyName: policy, iterations: iterations, halo: halo,
		verify: verify, verbose: verbose,
		chaosKill: -1,
	}
}

func TestRunConcurrentWorkflowFile(t *testing.T) {
	dag := writeDAG(t, "DOMAIN 16 16 16\nAPP_ID 1\nAPP_ID 2\nDECOMP 1 blocked 2 2 2\nDECOMP 2 blocked 2 2 1\nBUNDLE 1 2\n")
	o := opts(4, 4, "8x8x8", dag, "data-centric", 1, 1, true, true)
	o.flowsPath = filepath.Join(t.TempDir(), "flows.jsonl")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
	if fi, err := os.Stat(o.flowsPath); err != nil || fi.Size() == 0 {
		t.Fatalf("flow trace not written: %v", err)
	}
}

func TestRunSequentialWorkflowFile(t *testing.T) {
	dag := writeDAG(t, "APP_ID 1\nAPP_ID 2\nPARENT_APPID 1 CHILD_APPID 2\n")
	o := opts(4, 4, "16x16", dag, "round-robin", 1, 1, true, false)
	o.appSpecs = []string{"1:blocked:4x2", "2:cyclic:2x2"}
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}

// TestRunReportReconciles: -report must produce a report whose transport
// counters agree exactly with the fabric's per-medium accounting, and
// -spans must emit a readable parent-linked trace.
func TestRunReportReconciles(t *testing.T) {
	obs.Default.Reset()
	dag := writeDAG(t, "DOMAIN 16 16 16\nAPP_ID 1\nAPP_ID 2\nDECOMP 1 blocked 2 2 1\nDECOMP 2 blocked 2 1 1\nBUNDLE 1 2\n")
	dir := t.TempDir()
	o := opts(2, 4, "8x8x8", dag, "data-centric", 1, 1, true, false)
	o.report = true
	o.reportPath = filepath.Join(dir, "report.json")
	o.spansPath = filepath.Join(dir, "spans.jsonl")
	if err := run(o); err != nil {
		t.Fatal(err)
	}

	r, err := obs.ReadReport(o.reportPath)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Reconciled {
		t.Fatalf("report not reconciled: %+v", r.Checks)
	}
	if len(r.Checks) != 5 {
		t.Fatalf("got %d reconciliation checks, want 5", len(r.Checks))
	}
	var moved int64
	for _, c := range r.Checks {
		if !c.Match {
			t.Errorf("check %s: registry %d != external %d", c.Name, c.Registry, c.External)
		}
		moved += c.External
	}
	if moved == 0 {
		t.Fatal("report shows no traffic at all")
	}

	sf, err := os.Open(o.spansPath)
	if err != nil {
		t.Fatal(err)
	}
	defer sf.Close()
	events, err := obs.ReadSpans(sf)
	if err != nil {
		t.Fatal(err)
	}
	var roots, pulls int
	for _, ev := range events {
		if ev.Ev == "b" && ev.Parent == 0 {
			roots++
		}
		if ev.Ev == "b" && len(ev.Name) > 5 && ev.Name[:5] == "pull:" {
			pulls++
		}
	}
	if roots != 1 {
		t.Fatalf("span trace has %d roots, want 1", roots)
	}
	if pulls == 0 {
		t.Fatal("span trace has no pull spans")
	}
}

func TestRunErrors(t *testing.T) {
	dag := writeDAG(t, "APP_ID 1\n")
	bad := func(mutate func(*options)) error {
		o := opts(2, 2, "8x8", dag, "data-centric", 1, 0, false, false)
		mutate(&o)
		return run(o)
	}
	cases := []struct {
		name string
		err  error
	}{
		{"missing dag", bad(func(o *options) { o.dagPath = "" })},
		{"bad policy", bad(func(o *options) { o.policyName = "fancy" })},
		{"bad domain", bad(func(o *options) { o.domainSpec = "8xq" })},
		{"missing app decl", bad(func(o *options) {})},
		{"bad app spec", bad(func(o *options) { o.appSpecs = []string{"nope"} })},
		{"bad app kind", bad(func(o *options) { o.appSpecs = []string{"1:fancy:2x2"} })},
	}
	for _, c := range cases {
		if c.err == nil {
			t.Errorf("%s: accepted", c.name)
		}
	}
}
