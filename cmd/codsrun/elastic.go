package main

// The driver side of the elastic membership layer (DESIGN §5h): every
// codsnode registers in a lease registry, a monitor renews the leases by
// probing the children over the wire, and a reconcile loop sweeps for
// expired leases — a crash — then converges: reap the corpse, spawn a
// replacement at a higher incarnation, push the join to every peer, and
// re-stage the crashed node's staged blocks from the driver's put ledger
// while in-flight pulls retry against the re-validated routing.

import (
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	cods "github.com/insitu/cods"
	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/dht"
	"github.com/insitu/cods/internal/membership"
)

// elastic bundles the membership mechanisms of one -elastic run.
type elastic struct {
	o      options
	fw     *cods.Framework
	tc     *tcpCluster
	reg    *membership.Registry
	ledger *membership.Ledger
	mon    *membership.Monitor

	// varApp maps a staged variable back to the application that stages
	// it, so a re-staged block lands in the same lookup namespace.
	varApp map[string]int
	defApp int

	stop chan struct{}
	done chan struct{}

	converging atomic.Bool
	// chaosArmed counts armed crash hooks; Settle refuses to declare the
	// topology settled until at least that many nodes were reconciled,
	// even when every pull happened to complete before the kill landed.
	chaosArmed atomic.Int64

	mu      sync.Mutex
	results []membership.Result
	failure error
}

// startElastic joins every codsnode into the lease registry, installs the
// put ledger, and starts the lease monitor and the reconcile loop.
func startElastic(fw *cods.Framework, o options, d *cods.DAG, tc *tcpCluster) (*elastic, error) {
	el := &elastic{
		o: o, fw: fw, tc: tc,
		reg:    membership.NewRegistry(o.leaseTTL),
		ledger: membership.NewLedger(),
		varApp: make(map[string]int),
		stop:   make(chan struct{}),
		done:   make(chan struct{}),
	}
	inBundle := make(map[int]bool)
	for _, b := range d.Bundles {
		if len(b) > 1 {
			for _, a := range b {
				inBundle[a] = true
			}
		}
	}
	for _, id := range d.Apps {
		if el.defApp == 0 {
			el.defApp = id
		}
		if len(d.Parents(id)) == 0 && !inBundle[id] {
			el.varApp[fmt.Sprintf("data.%d", id)] = id
		}
	}
	// With -stream a bundle's head stages its stream versions through the
	// sequential path; re-staged blocks keep its namespace.
	if o.stream {
		for _, b := range d.Bundles {
			if len(b) > 1 {
				el.varApp[fmt.Sprintf("data.%d", b[0])] = b[0]
			}
		}
	}
	// Membership events become trace spans when the run traces at all, so
	// a crash and its recovery are visible inline with the pulls they
	// disrupted.
	if tr := fw.SpanTracer(); tr != nil {
		el.reg.SetEventHook(func(ev string, node cluster.NodeID) {
			tr.Event(0, fmt.Sprintf("membership.%s node %d", ev, node))
		})
	}
	for node := 0; node < o.nodes; node++ {
		if err := el.reg.Join(cluster.NodeID(node), tc.addr(node), 1); err != nil {
			return nil, err
		}
	}
	fw.SharedSpace().SetPutRecorder(el.ledger)
	interval := o.leaseTTL / 4
	if interval <= 0 {
		interval = time.Millisecond
	}
	el.mon = membership.NewMonitor(el.reg, interval, func(node cluster.NodeID, inc uint64) error {
		_, err := tc.be.ProbeLease(node, inc)
		return err
	})
	el.mon.Start()
	go el.loop(interval)
	return el, nil
}

// loop sweeps the registry for expired leases and converges on each
// topology change until stopped.
func (el *elastic) loop(interval time.Duration) {
	defer close(el.done)
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		select {
		case <-el.stop:
			return
		case <-t.C:
			if expired := el.reg.Sweep(); len(expired) > 0 {
				el.converge(expired)
			}
		}
	}
}

// converge replaces each expired node's process — reap, spawn at the next
// incarnation, announce to every peer, re-join — then runs the reconciler
// so the crashed processes' staged blocks are re-staged and every lookup
// record and cached schedule reflects the new processes. The replacement
// takes the dead node's slot, so the interval assignment is unchanged and
// the reconciler's re-split step is skipped.
func (el *elastic) converge(expired []cluster.NodeID) {
	el.converging.Store(true)
	defer el.converging.Store(false)
	for _, node := range expired {
		el.fw.RetireNode(int(node))
	}
	for _, node := range expired {
		el.tc.reap(int(node))
		inc := el.reg.Incarnation(node) + 1
		addr, err := el.tc.spawnNode(int(node), inc)
		if err != nil {
			el.fail(fmt.Errorf("membership: replacing node %d: %w", node, err))
			return
		}
		if err := el.tc.be.PushJoin(node, addr, inc); err != nil {
			el.fail(fmt.Errorf("membership: announcing node %d replacement: %w", node, err))
			return
		}
		if err := el.reg.Join(node, addr, inc); err != nil {
			el.fail(err)
			return
		}
	}
	if err := el.tc.be.PushPeers(); err != nil {
		el.fail(fmt.Errorf("membership: distributing peer addresses: %w", err))
		return
	}
	space := el.fw.SharedSpace()
	rc := membership.NewReconciler(el.reg, el.ledger, el.fw.MachineInfo(), membership.Actions{
		Restage: func(b membership.Block) error {
			return space.HandleAt(b.Owner, el.appOf(b.Var), "elastic").
				PutSequential(b.Var, b.Version, b.Region, b.Data)
		},
		Reinsert: func(b membership.Block) error {
			return space.Lookup().ClientAt(b.Owner).Insert("elastic", el.appOf(b.Var), dht.Entry{
				Var: b.Var, Version: b.Version, Region: b.Region, Owner: b.Owner,
			})
		},
		Invalidate: space.InvalidateAll,
	})
	res, err := rc.Reconcile(expired)
	if err != nil {
		el.fail(err)
		return
	}
	el.mu.Lock()
	el.results = append(el.results, res)
	el.mu.Unlock()
	for _, node := range expired {
		el.fw.RestoreNode(int(node))
	}
	// Replacements come up with empty stream tables; re-announce every
	// stream's live watermark, floor and cursor positions so they resume
	// mid-stream instead of at zero.
	if n := space.ResyncStreams(); n > 0 {
		fmt.Printf("membership: resynced %d stream table(s) after replacement\n", n)
	}
	fmt.Printf("membership: reconciled %d node(s): re-staged %d blocks (%d B), re-registered %d records\n",
		len(res.Affected), res.RestagedCount, res.MigratedBytes, res.Reinserted)
}

// appOf maps a staged variable to the application whose namespace it
// lives in.
func (el *elastic) appOf(v string) int {
	if id, ok := el.varApp[v]; ok {
		return id
	}
	return el.defApp
}

func (el *elastic) fail(err error) {
	fmt.Printf("membership: convergence failed: %v\n", err)
	el.mu.Lock()
	if el.failure == nil {
		el.failure = err
	}
	el.mu.Unlock()
}

// Err returns the first convergence failure, if any.
func (el *elastic) Err() error {
	el.mu.Lock()
	defer el.mu.Unlock()
	return el.failure
}

// totals sums every reconcile pass — the external side of the report's
// membership reconciliation.
func (el *elastic) totals() membership.Result {
	el.mu.Lock()
	defer el.mu.Unlock()
	var tot membership.Result
	for _, r := range el.results {
		tot.Affected = append(tot.Affected, r.Affected...)
		tot.RestagedCount += r.RestagedCount
		tot.MigratedBytes += r.MigratedBytes
		tot.Reinserted += r.Reinserted
		tot.MovedRecords += r.MovedRecords
	}
	return tot
}

// members snapshots the registry for the obs /members endpoint.
func (el *elastic) members() any { return el.reg.Members() }

// membersJSON renders the member snapshot for the report metadata.
func (el *elastic) membersJSON() string {
	data, err := json.Marshal(el.reg.Members())
	if err != nil {
		return ""
	}
	return string(data)
}

// Settle waits until no convergence is in flight and every member holds a
// live lease, then surfaces any convergence failure — called between the
// workflow and stats collection so the driver only talks to settled
// children.
func (el *elastic) Settle(timeout time.Duration) error {
	deadline := time.Now().Add(timeout)
	for {
		if err := el.Err(); err != nil {
			return err
		}
		recovered := int64(len(el.totals().Affected))
		if !el.converging.Load() && el.allAlive() && recovered >= el.chaosArmed.Load() {
			return nil
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("membership: convergence did not settle within %s", timeout)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func (el *elastic) allAlive() bool {
	for _, m := range el.reg.Members() {
		if m.State != "alive" {
			return false
		}
	}
	return true
}

// startChaos arms the crash hook: once the put ledger shows staging done —
// at least `after` blocks, or no growth across ten polls when after is 0 —
// the node's codsnode child is hard-killed, and recovery is left entirely
// to lease expiry and the reconcile loop.
func (el *elastic) startChaos(node, after int) {
	el.chaosArmed.Add(1)
	go func() {
		t := time.NewTicker(5 * time.Millisecond)
		defer t.Stop()
		last, stable := -1, 0
		for {
			select {
			case <-el.stop:
				return
			case <-t.C:
			}
			n := el.ledger.Len()
			if after > 0 {
				if n < after {
					continue
				}
			} else {
				if n == 0 || n != last {
					last, stable = n, 0
					continue
				}
				if stable++; stable < 10 {
					continue
				}
			}
			fmt.Printf("chaos: killing codsnode %d (%d blocks staged)\n", node, n)
			el.tc.kill(node)
			return
		}
	}()
}

// Stop halts the monitor and the reconcile loop and detaches the ledger.
func (el *elastic) Stop() {
	el.mon.Stop()
	close(el.stop)
	<-el.done
	el.fw.SharedSpace().SetPutRecorder(nil)
}
