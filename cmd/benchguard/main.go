// Command benchguard asserts that the observability instrumentation stays
// within its overhead budget on the parallel pull path.
//
// It stages the same rig as cmd/pullbench (round-robin block placement,
// simulated one-sided read latencies) and times full-domain retrievals
// twice in-process: once with the metrics registry disabled and once
// enabled. The enabled median must stay within -threshold (default 5%) of
// the disabled one, or the process exits 1. Comparing the two runs inside
// one process makes the guard robust in CI: machine speed, scheduler noise
// and turbo states cancel out, and the simulated transfer latencies
// dominate both sides equally.
//
// A committed pullbench baseline (-baseline, default
// results/BENCH_pull.json) is compared informationally only — absolute
// nanoseconds are not portable across machines, so drift against the
// baseline is reported but never fails the guard.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/cods"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/obs"
	"github.com/insitu/cods/internal/transport"
)

const (
	nodes        = 4
	coresPerNode = 4
	side         = 32
	shmLatency   = 2 * time.Microsecond
	netLatency   = 25 * time.Microsecond
	transfers    = 64
	workers      = 8
)

// buildRig mirrors cmd/pullbench's staging: a grid of blocks placed
// round-robin so adjacent blocks always live on different cores.
func buildRig() (*cods.Handle, geometry.BBox, error) {
	nx := 1
	for nx*nx < transfers {
		nx *= 2
	}
	ny := transfers / nx
	m, err := cluster.NewMachine(nodes, coresPerNode)
	if err != nil {
		return nil, geometry.BBox{}, err
	}
	f := transport.NewFabric(m)
	region := geometry.BoxFromSize([]int{nx * side, ny * side})
	sp, err := cods.NewSpace(f, region)
	if err != nil {
		return nil, geometry.BBox{}, err
	}
	cores := m.TotalCores()
	n := 0
	for bx := 0; bx < nx; bx++ {
		for by := 0; by < ny; by++ {
			blk := geometry.NewBBox(
				geometry.Point{bx * side, by * side},
				geometry.Point{(bx + 1) * side, (by + 1) * side})
			data := make([]float64, blk.Volume())
			for i := range data {
				data[i] = float64(n + i)
			}
			h := sp.HandleAt(cluster.CoreID(n%cores), 1, "put")
			if err := h.PutSequential("u", 0, blk, data); err != nil {
				return nil, geometry.BBox{}, err
			}
			n++
		}
	}
	f.SetReadLatency(shmLatency, netLatency)
	sp.SetPullWorkers(workers)
	return sp.HandleAt(0, 2, "get"), region, nil
}

// medianPull times reps full-domain retrievals and returns the median.
func medianPull(consumer *cods.Handle, region geometry.BBox, reps int) (time.Duration, error) {
	// Warm the schedule cache so only pull execution is timed.
	if _, err := consumer.GetSequential("u", 0, region); err != nil {
		return 0, err
	}
	times := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		start := time.Now()
		if _, err := consumer.GetSequential("u", 0, region); err != nil {
			return 0, err
		}
		times = append(times, time.Since(start))
	}
	sort.Slice(times, func(i, j int) bool { return times[i] < times[j] })
	return times[len(times)/2], nil
}

// baselineRow is the slice of the pullbench report the guard reads.
type baselineRow struct {
	Transfers int   `json:"transfers"`
	Workers   int   `json:"workers"`
	NsPerOp   int64 `json:"ns_per_op"`
}

func loadBaseline(path string) (int64, bool) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	var rep struct {
		Pull []baselineRow `json:"pull"`
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		return 0, false
	}
	for _, row := range rep.Pull {
		if row.Transfers == transfers && row.Workers == workers {
			return row.NsPerOp, true
		}
	}
	return 0, false
}

func run(baseline string, reps int, threshold float64) error {
	consumer, region, err := buildRig()
	if err != nil {
		return err
	}

	// Interleave disabled / enabled / disabled and keep the better disabled
	// median, so one-sided machine drift cannot fake a regression.
	obs.Enable(false)
	offA, err := medianPull(consumer, region, reps)
	if err != nil {
		return err
	}
	obs.Enable(true)
	on, err := medianPull(consumer, region, reps)
	obs.Enable(false)
	if err != nil {
		return err
	}
	offB, err := medianPull(consumer, region, reps)
	if err != nil {
		return err
	}
	off := offA
	if offB < off {
		off = offB
	}

	overhead := float64(on-off) / float64(off)
	fmt.Printf("pull %d transfers, %d workers: disabled %.3f ms, enabled %.3f ms, overhead %+.2f%% (budget %.0f%%)\n",
		transfers, workers, float64(off.Nanoseconds())/1e6, float64(on.Nanoseconds())/1e6,
		100*overhead, 100*threshold)

	if base, ok := loadBaseline(baseline); ok {
		drift := float64(off.Nanoseconds()-base) / float64(base)
		fmt.Printf("committed baseline %s: %.3f ms (%+.2f%% vs this machine; informational only)\n",
			baseline, float64(base)/1e6, 100*drift)
	} else {
		fmt.Printf("no usable baseline at %s (informational only)\n", baseline)
	}

	if overhead > threshold {
		return fmt.Errorf("instrumentation overhead %.2f%% exceeds budget %.0f%%",
			100*overhead, 100*threshold)
	}
	return nil
}

func main() {
	baseline := flag.String("baseline", filepath.Join("results", "BENCH_pull.json"), "pullbench report for the informational comparison")
	reps := flag.Int("reps", 15, "timing repetitions per mode (median kept)")
	threshold := flag.Float64("threshold", 0.05, "maximum allowed relative overhead of enabled instrumentation")
	flag.Parse()
	if *reps < 1 {
		*reps = 1
	}
	if err := run(*baseline, *reps, *threshold); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
}
