// Command benchguard asserts that the observability instrumentation,
// the transfer retry layer, and the pluggable-backend interface
// indirection stay within their overhead budgets on the parallel pull
// path.
//
// It stages the same rig as cmd/pullbench (round-robin block placement,
// simulated one-sided read latencies) and times full-domain retrievals
// in-process, alternating disabled and enabled batches of each toggle:
// the metrics registry, the transfer retry policy on a fault-free
// fabric, and — independently — forced routing of every operation
// through the Backend interface (the in-process backend is semantics-
// preserving, so the toggle isolates the pure interface-dispatch cost;
// its budget is a tighter 2%). The overhead estimate is the median of the
// per-pair duration differences relative to the median disabled batch;
// the process exits 1 when it exceeds -threshold (default 5%) AND a
// supermajority of pairs agree the enabled batch was slower (a paired
// sign test). Pairing adjacent batches inside one process makes the
// guard robust in CI: machine drift cancels within each pair, the median
// discards heavy-tailed scheduler outliers, and the sign test keeps
// residual jitter — which flips each pair like a coin — from tripping
// the gate, while a real regression slows nearly every pair.
//
// A committed pullbench baseline (-baseline, default
// results/BENCH_pull.json) is compared informationally only — absolute
// nanoseconds are not portable across machines, so drift against the
// baseline is reported but never fails the guard.
//
// A fourth, deterministic gate runs the pull engine over the TCP
// loopback backend and asserts the scatter-gather protocol ships exactly
// the schedule-predicted clipped bytes (±2% for framing tweaks), one
// request frame per owning peer, and no whole-block fallback reads.
//
// Three further paired gates run on the TCP loopback pull path: the
// distributed observability plane (registry, wire-mirror counters, span
// context and remote handler spans) against the -threshold budget, the
// elastic membership layer at steady state — lease heartbeats and
// expiry sweeps running, no topology change — against a tighter 3%, and
// the streaming coupling mode against the classic put/get/discard
// sequence moving identical bytes, against the default 5%.
//
// The adaptive remap plane gets a two-part gate: a paired overhead gate
// bounds the steady-state cost of a planner loop re-scoring the mapping
// from the live flow matrix while pulls proceed (budget 3%), and a
// deterministic win gate stages a fully skewed placement, runs one
// observe→plan→migrate round, and asserts the re-pull is byte-identical
// while inter-node bytes drop by at least 15%.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/cods"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/membership"
	"github.com/insitu/cods/internal/obs"
	"github.com/insitu/cods/internal/remap"
	"github.com/insitu/cods/internal/retry"
	"github.com/insitu/cods/internal/transport"
	"github.com/insitu/cods/internal/transport/tcpnet"
)

const (
	nodes        = 4
	coresPerNode = 4
	side         = 32
	shmLatency   = 2 * time.Microsecond
	netLatency   = 25 * time.Microsecond
	transfers    = 64
	workers      = 8
)

// buildRig mirrors cmd/pullbench's staging: a grid of blocks placed
// round-robin so adjacent blocks always live on different cores.
func buildRig() (*cods.Space, *cods.Handle, geometry.BBox, error) {
	nx := 1
	for nx*nx < transfers {
		nx *= 2
	}
	ny := transfers / nx
	m, err := cluster.NewMachine(nodes, coresPerNode)
	if err != nil {
		return nil, nil, geometry.BBox{}, err
	}
	f := transport.NewFabric(m)
	region := geometry.BoxFromSize([]int{nx * side, ny * side})
	sp, err := cods.NewSpace(f, region)
	if err != nil {
		return nil, nil, geometry.BBox{}, err
	}
	cores := m.TotalCores()
	n := 0
	for bx := 0; bx < nx; bx++ {
		for by := 0; by < ny; by++ {
			blk := geometry.NewBBox(
				geometry.Point{bx * side, by * side},
				geometry.Point{(bx + 1) * side, (by + 1) * side})
			data := make([]float64, blk.Volume())
			for i := range data {
				data[i] = float64(n + i)
			}
			h := sp.HandleAt(cluster.CoreID(n%cores), 1, "put")
			if err := h.PutSequential("u", 0, blk, data); err != nil {
				return nil, nil, geometry.BBox{}, err
			}
			n++
		}
	}
	f.SetReadLatency(shmLatency, netLatency)
	sp.SetPullWorkers(workers)
	return sp, sp.HandleAt(0, 2, "get"), region, nil
}

// pullBatch is how many retrievals share one timing measurement: batching
// averages out per-sleep timer jitter inside the simulated read latency.
const pullBatch = 4

// timedPulls times a batch of full-domain retrievals.
func timedPulls(consumer *cods.Handle, region geometry.BBox) (time.Duration, error) {
	start := time.Now()
	for i := 0; i < pullBatch; i++ {
		if _, err := consumer.GetSequential("u", 0, region); err != nil {
			return 0, err
		}
	}
	return time.Since(start), nil
}

// baselineRow is the slice of the pullbench report the guard reads.
type baselineRow struct {
	Transfers int   `json:"transfers"`
	Workers   int   `json:"workers"`
	NsPerOp   int64 `json:"ns_per_op"`
}

func loadBaseline(path string) (int64, bool) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return 0, false
	}
	var rep struct {
		Pull []baselineRow `json:"pull"`
	}
	if err := json.Unmarshal(buf, &rep); err != nil {
		return 0, false
	}
	for _, row := range rep.Pull {
		if row.Transfers == transfers && row.Workers == workers {
			return row.NsPerOp, true
		}
	}
	return 0, false
}

// pairedOverhead alternates disabled and enabled batches of one toggle
// and estimates the enabled mode's relative overhead as the median of the
// per-pair duration differences over the median disabled duration, plus
// the fraction of pairs in which the enabled batch was the slower one.
// Adjacent batches see the same machine drift, so each pair cancels it;
// the order within a pair flips every repetition so neither mode
// systematically runs on a warmer machine; and the median discards the
// heavy-tailed scheduler outliers that make single-batch comparisons
// swing far more than a real overhead budget.
func pairedOverhead(consumer *cods.Handle, region geometry.BBox, reps int, set func(on bool)) (off time.Duration, overhead, slowerFrac float64, err error) {
	// Warm the schedule cache so only pull execution is timed.
	set(false)
	if _, err := consumer.GetSequential("u", 0, region); err != nil {
		return 0, 0, 0, err
	}
	mode := func(on bool) (time.Duration, error) {
		set(on)
		d, err := timedPulls(consumer, region)
		set(false)
		return d, err
	}
	offs := make([]time.Duration, 0, reps)
	diffs := make([]time.Duration, 0, reps)
	for i := 0; i < reps; i++ {
		first := i%2 == 1 // odd reps run the enabled batch first
		dA, err := mode(first)
		if err != nil {
			return 0, 0, 0, err
		}
		dB, err := mode(!first)
		if err != nil {
			return 0, 0, 0, err
		}
		dOff, dOn := dA, dB
		if first {
			dOff, dOn = dB, dA
		}
		offs = append(offs, dOff)
		diffs = append(diffs, dOn-dOff)
	}
	slower := 0
	for _, d := range diffs {
		if d > 0 {
			slower++
		}
	}
	off = median(offs)
	return off, float64(median(diffs)) / float64(off), float64(slower) / float64(len(diffs)), nil
}

func median(ds []time.Duration) time.Duration {
	s := append([]time.Duration(nil), ds...)
	sort.Slice(s, func(i, j int) bool { return s[i] < s[j] })
	return s[len(s)/2]
}

// A genuine regression makes nearly every pair slower; pure timing
// noise leaves the sign of each pair at a coin flip. Requiring a
// supermajority of slower pairs (a paired sign test) on top of the
// budget keeps the gates' false-positive rate under a percent even on
// machines whose scheduler jitter dwarfs the budget itself.
const signBar = 0.7

// wireByteGate asserts the scatter-gather wire protocol ships exactly
// the bytes the schedule predicts. It stages a small grid behind the TCP
// loopback backend, retrieves a half-block-inset region (every boundary
// block is clipped on its owner), and compares the owner-side segment
// bytes against the analytic clipped byte count. The gate is
// deterministic — byte counters, not timings — so its tolerance covers
// only future framing tweaks, not machine jitter.
const wireByteTolerance = 0.02

func wireByteGate() error {
	const gateTransfers = 16
	nx := 1
	for nx*nx < gateTransfers {
		nx *= 2
	}
	ny := gateTransfers / nx
	m, err := cluster.NewMachine(nodes, coresPerNode)
	if err != nil {
		return err
	}
	f := transport.NewFabric(m)
	pol := retry.Default()
	pol.Deadline = 10 * time.Second
	b, err := tcpnet.NewLoopback(f, tcpnet.Config{Retry: pol, IOTimeout: 10 * time.Second})
	if err != nil {
		return err
	}
	defer func() {
		f.SetBackend(nil)
		b.Close()
	}()
	f.SetBackend(b)
	sp, err := cods.NewSpace(f, geometry.BoxFromSize([]int{nx * side, ny * side}))
	if err != nil {
		return err
	}
	region := geometry.NewBBox(
		geometry.Point{side / 2, side / 2},
		geometry.Point{nx*side - side/2, ny*side - side/2})
	cores := m.TotalCores()
	var predicted int64
	remoteOwners := map[cluster.NodeID]bool{}
	n := 0
	for bx := 0; bx < nx; bx++ {
		for by := 0; by < ny; by++ {
			blk := geometry.NewBBox(
				geometry.Point{bx * side, by * side},
				geometry.Point{(bx + 1) * side, (by + 1) * side})
			data := make([]float64, blk.Volume())
			for i := range data {
				data[i] = float64(n + i)
			}
			owner := cluster.CoreID(n % cores)
			h := sp.HandleAt(owner, 1, "put")
			if err := h.PutSequential("u", 0, blk, data); err != nil {
				return err
			}
			if m.NodeOf(owner) != m.NodeOf(0) {
				if sub, ok := blk.Intersect(region); ok {
					predicted += int64(sub.Volume() * cods.ElemSize)
					remoteOwners[m.NodeOf(owner)] = true
				}
			}
			n++
		}
	}
	consumer := sp.HandleAt(0, 2, "get")
	// Warm the schedule cache and connection pool, then measure one pull.
	if _, err := consumer.GetSequential("u", 0, region); err != nil {
		return err
	}
	s0 := b.WireStats()
	if _, err := consumer.GetSequential("u", 0, region); err != nil {
		return err
	}
	s1 := b.WireStats()
	segBytes := s1.SegmentBytesServed - s0.SegmentBytesServed
	frames := s1.ReadMultiRequests - s0.ReadMultiRequests
	drift := float64(segBytes-predicted) / float64(predicted)
	fmt.Printf("tcp wire gate: %d clipped segment bytes vs %d predicted (%+.2f%%; budget ±%.0f%%), %d request frames for %d peers\n",
		segBytes, predicted, 100*drift, 100*wireByteTolerance, frames, len(remoteOwners))
	if drift > wireByteTolerance || drift < -wireByteTolerance {
		return fmt.Errorf("scatter-gather wire bytes %d drift %+.2f%% from schedule-predicted %d (budget ±%.0f%%)",
			segBytes, 100*drift, predicted, 100*wireByteTolerance)
	}
	if int(frames) != len(remoteOwners) {
		return fmt.Errorf("scatter-gather sent %d request frames for %d owning peers (want one per peer)",
			frames, len(remoteOwners))
	}
	if s1.ReadRequests != s0.ReadRequests {
		return fmt.Errorf("clipped pull fell back to %d whole-block reads", s1.ReadRequests-s0.ReadRequests)
	}
	return nil
}

// distributedObsGate bounds the enabled cost of the distributed
// observability plane on the TCP pull path: the metrics registry with its
// wire-mirror counters, the span trace context every request frame
// carries, and the remote handler spans the serving side captures for the
// driver to drain. The toggle flips all three at once — registry on plus
// a live tracer (which makes every pull stamp its span id into the wire
// frames and every served operation emit a buffered handler span) versus
// everything off — so the measured overhead is the full price of running
// a TCP workload observed end to end.
func distributedObsGate(reps int, threshold float64) error {
	const gateTransfers = 16
	nx := 1
	for nx*nx < gateTransfers {
		nx *= 2
	}
	ny := gateTransfers / nx
	m, err := cluster.NewMachine(nodes, coresPerNode)
	if err != nil {
		return err
	}
	f := transport.NewFabric(m)
	pol := retry.Default()
	pol.Deadline = 10 * time.Second
	b, err := tcpnet.NewLoopback(f, tcpnet.Config{Retry: pol, IOTimeout: 10 * time.Second})
	if err != nil {
		return err
	}
	defer func() {
		f.SetBackend(nil)
		b.Close()
	}()
	f.SetBackend(b)
	sp, err := cods.NewSpace(f, geometry.BoxFromSize([]int{nx * side, ny * side}))
	if err != nil {
		return err
	}
	cores := m.TotalCores()
	n := 0
	for bx := 0; bx < nx; bx++ {
		for by := 0; by < ny; by++ {
			blk := geometry.NewBBox(
				geometry.Point{bx * side, by * side},
				geometry.Point{(bx + 1) * side, (by + 1) * side})
			data := make([]float64, blk.Volume())
			for i := range data {
				data[i] = float64(n + i)
			}
			h := sp.HandleAt(cluster.CoreID(n%cores), 1, "put")
			if err := h.PutSequential("u", 0, blk, data); err != nil {
				return err
			}
			n++
		}
	}
	region := geometry.NewBBox(
		geometry.Point{side / 2, side / 2},
		geometry.Point{nx*side - side/2, ny*side - side/2})
	consumer := sp.HandleAt(0, 2, "get")
	b.EnableSpanCapture()
	tr := obs.NewTracer(io.Discard)
	set := func(on bool) {
		obs.Enable(on)
		if on {
			sp.SetTracer(tr)
		} else {
			sp.SetTracer(nil)
		}
	}
	set(false)
	_, overhead, slower, err := pairedOverhead(consumer, region, reps, set)
	if err != nil {
		return err
	}
	// Keep the span buffer bounded; the drain cost is outside the timed
	// batches by construction.
	if err := b.DrainRemoteSpans(tr); err != nil {
		return err
	}
	fmt.Printf("tcp pull %d transfers: distributed obs overhead %+.2f%% (slower in %.0f%% of pairs; budget %.0f%%)\n",
		gateTransfers, 100*overhead, 100*slower, 100*threshold)
	if overhead > threshold && slower >= signBar {
		return fmt.Errorf("distributed observability overhead %.2f%% exceeds budget %.0f%% (slower in %.0f%% of pairs)",
			100*overhead, 100*threshold, 100*slower)
	}
	return nil
}

// elasticGate bounds the steady-state cost of the elastic membership
// layer on the TCP pull path: every node holds a lease renewed by
// ProbeLease heartbeats over the same loopback backend the pulls use, and
// the expiry sweep runs at the same cadence — but no lease ever expires,
// so the measured overhead is pure lease-plane traffic contending with
// pull traffic plus registry bookkeeping, the price a cluster pays for
// crash detection when nothing crashes. Its budget is a tighter 3%.
const elasticBudget = 0.03

func elasticGate(reps int) error {
	const gateTransfers = 16
	nx := 1
	for nx*nx < gateTransfers {
		nx *= 2
	}
	ny := gateTransfers / nx
	m, err := cluster.NewMachine(nodes, coresPerNode)
	if err != nil {
		return err
	}
	f := transport.NewFabric(m)
	pol := retry.Default()
	pol.Deadline = 10 * time.Second
	b, err := tcpnet.NewLoopback(f, tcpnet.Config{Retry: pol, IOTimeout: 10 * time.Second, Incarnation: 1})
	if err != nil {
		return err
	}
	defer func() {
		f.SetBackend(nil)
		b.Close()
	}()
	f.SetBackend(b)
	sp, err := cods.NewSpace(f, geometry.BoxFromSize([]int{nx * side, ny * side}))
	if err != nil {
		return err
	}
	cores := m.TotalCores()
	n := 0
	for bx := 0; bx < nx; bx++ {
		for by := 0; by < ny; by++ {
			blk := geometry.NewBBox(
				geometry.Point{bx * side, by * side},
				geometry.Point{(bx + 1) * side, (by + 1) * side})
			data := make([]float64, blk.Volume())
			for i := range data {
				data[i] = float64(n + i)
			}
			h := sp.HandleAt(cluster.CoreID(n%cores), 1, "put")
			if err := h.PutSequential("u", 0, blk, data); err != nil {
				return err
			}
			n++
		}
	}
	region := geometry.NewBBox(
		geometry.Point{side / 2, side / 2},
		geometry.Point{nx*side - side/2, ny*side - side/2})
	consumer := sp.HandleAt(0, 2, "get")

	// Leases far longer than the heartbeat: renewals always land in time,
	// so the sweep never expires anything — steady state by construction.
	reg := membership.NewRegistry(time.Minute)
	for node := 0; node < nodes; node++ {
		if err := reg.Join(cluster.NodeID(node), "", 1); err != nil {
			return err
		}
	}
	const heartbeat = 2 * time.Millisecond
	var mon *membership.Monitor
	var sweepStop chan struct{}
	set := func(on bool) {
		if on {
			mon = membership.NewMonitor(reg, heartbeat, func(node cluster.NodeID, inc uint64) error {
				_, err := b.ProbeLease(node, inc)
				return err
			})
			mon.Start()
			sweepStop = make(chan struct{})
			go func(stop chan struct{}) {
				t := time.NewTicker(heartbeat)
				defer t.Stop()
				for {
					select {
					case <-stop:
						return
					case <-t.C:
						reg.Sweep()
					}
				}
			}(sweepStop)
			return
		}
		if mon != nil {
			mon.Stop()
			mon = nil
		}
		if sweepStop != nil {
			close(sweepStop)
			sweepStop = nil
		}
	}
	_, overhead, slower, err := pairedOverhead(consumer, region, reps, set)
	if err != nil {
		return err
	}
	for _, mem := range reg.Members() {
		if mem.State != "alive" {
			return fmt.Errorf("steady-state elastic gate expired node %d's lease — heartbeats did not keep up", mem.Node)
		}
	}
	fmt.Printf("tcp pull %d transfers: steady-state elastic overhead %+.2f%% (slower in %.0f%% of pairs; budget %.0f%%)\n",
		gateTransfers, 100*overhead, 100*slower, 100*elasticBudget)
	if overhead > elasticBudget && slower >= signBar {
		return fmt.Errorf("steady-state elastic overhead %.2f%% exceeds budget %.0f%% (slower in %.0f%% of pairs)",
			100*overhead, 100*elasticBudget, 100*slower)
	}
	return nil
}

// streamingGate bounds the cost of the streaming coupling mode against
// the classic put/get/discard sequence it generalizes, on the TCP
// loopback pull path. Each pair times two batches moving identical bytes
// through identical placement: n sequential puts, a full-domain get and n
// explicit discards per version on one side; n publishes, a windowed
// cursor read and a cursor advance (which retires the version through the
// same DiscardSequential) on the other. The measured difference is pure
// stream bookkeeping — watermark and cursor accounting under the stream
// lock, the per-node mirror notifications, retirement routing — and must
// stay within the same 5% budget as the instrumentation gates.
const streamingBudget = 0.05

func streamingGate(reps int) error {
	const (
		gateBlocks   = 16
		gateVersions = 2
	)
	nx := 1
	for nx*nx < gateBlocks {
		nx *= 2
	}
	ny := gateBlocks / nx
	m, err := cluster.NewMachine(nodes, coresPerNode)
	if err != nil {
		return err
	}
	f := transport.NewFabric(m)
	pol := retry.Default()
	pol.Deadline = 10 * time.Second
	b, err := tcpnet.NewLoopback(f, tcpnet.Config{Retry: pol, IOTimeout: 10 * time.Second, Incarnation: 1})
	if err != nil {
		return err
	}
	defer func() {
		f.SetBackend(nil)
		b.Close()
	}()
	f.SetBackend(b)
	region := geometry.BoxFromSize([]int{nx * side, ny * side})
	sp, err := cods.NewSpace(f, region)
	if err != nil {
		return err
	}
	cores := m.TotalCores()
	blks := make([]geometry.BBox, 0, gateBlocks)
	datas := make([][]float64, 0, gateBlocks)
	handles := make([]*cods.Handle, 0, gateBlocks)
	n := 0
	for bx := 0; bx < nx; bx++ {
		for by := 0; by < ny; by++ {
			blk := geometry.NewBBox(
				geometry.Point{bx * side, by * side},
				geometry.Point{(bx + 1) * side, (by + 1) * side})
			data := make([]float64, blk.Volume())
			for i := range data {
				data[i] = float64(n + i)
			}
			blks = append(blks, blk)
			datas = append(datas, data)
			handles = append(handles, sp.HandleAt(cluster.CoreID(n%cores), 1, "put"))
			n++
		}
	}
	consumer := sp.HandleAt(0, 2, "get")

	classic := func(v string) (time.Duration, error) {
		start := time.Now()
		for ver := 0; ver < gateVersions; ver++ {
			for i := range blks {
				if err := handles[i].PutSequential(v, ver, blks[i], datas[i]); err != nil {
					return 0, err
				}
			}
			if _, err := consumer.GetSequential(v, ver, region); err != nil {
				return 0, err
			}
			for i := range blks {
				if err := handles[i].DiscardSequential(v, ver, blks[i]); err != nil {
					return 0, err
				}
			}
		}
		return time.Since(start), nil
	}
	streamed := func(v string) (time.Duration, error) {
		// Declaration and subscription are mode setup, paid once per
		// stream lifetime; the timed section is the steady-state loop.
		if err := sp.DeclareStream(v, cods.StreamConfig{
			Producers: gateBlocks, MaxLag: gateVersions, Policy: cods.Backpressure,
		}); err != nil {
			return 0, err
		}
		cur, err := consumer.Subscribe(v)
		if err != nil {
			return 0, err
		}
		start := time.Now()
		for ver := 0; ver < gateVersions; ver++ {
			for i := range blks {
				if _, err := handles[i].Publish(v, i, blks[i], datas[i]); err != nil {
					return 0, err
				}
			}
			if _, err := cur.GetWindow(region, ver, ver); err != nil {
				return 0, err
			}
			if err := cur.Advance(ver + 1); err != nil {
				return 0, err
			}
		}
		d := time.Since(start)
		for i := range blks {
			if err := handles[i].ClosePublisher(v, i); err != nil {
				return 0, err
			}
		}
		if err := cur.Close(); err != nil {
			return 0, err
		}
		return d, nil
	}

	// One untimed batch of each warms the sockets and code paths.
	if _, err := classic("warm-c"); err != nil {
		return err
	}
	if _, err := streamed("warm-s"); err != nil {
		return err
	}
	offs := make([]time.Duration, 0, reps)
	diffs := make([]time.Duration, 0, reps)
	slower := 0
	for i := 0; i < reps; i++ {
		var dC, dS time.Duration
		var err error
		if i%2 == 1 { // odd reps run the streaming batch first
			dS, err = streamed(fmt.Sprintf("s%d", i))
			if err == nil {
				dC, err = classic(fmt.Sprintf("c%d", i))
			}
		} else {
			dC, err = classic(fmt.Sprintf("c%d", i))
			if err == nil {
				dS, err = streamed(fmt.Sprintf("s%d", i))
			}
		}
		if err != nil {
			return err
		}
		offs = append(offs, dC)
		diffs = append(diffs, dS-dC)
		if dS > dC {
			slower++
		}
	}
	off := median(offs)
	overhead := float64(median(diffs)) / float64(off)
	slowerFrac := float64(slower) / float64(len(diffs))
	fmt.Printf("tcp stream %d blocks x %d versions: streaming overhead vs put/get %+.2f%% (slower in %.0f%% of pairs; budget %.0f%%)\n",
		gateBlocks, gateVersions, 100*overhead, 100*slowerFrac, 100*streamingBudget)
	if overhead > streamingBudget && slowerFrac >= signBar {
		return fmt.Errorf("streaming overhead %.2f%% exceeds budget %.0f%% (slower in %.0f%% of pairs)",
			100*overhead, 100*streamingBudget, 100*slowerFrac)
	}
	return nil
}

// remapOverheadBudget bounds the steady-state cost of the adaptive remap
// plane on the TCP pull path. The toggle runs a planner loop at a 1ms
// cadence — each tick rebuilds the observed flow matrix from the
// machine's flow log and re-scores the block→core mapping against it,
// exactly what an adaptive driver does between coupled iterations — while
// the timed pulls proceed. No plan is applied, so the placement never
// changes; the measured overhead is planner CPU plus the metrics-mutex
// contention its flow-log snapshots add to the recording path.
const remapOverheadBudget = 0.03

func remapOverheadGate(reps int) error {
	const gateTransfers = 16
	nx := 1
	for nx*nx < gateTransfers {
		nx *= 2
	}
	ny := gateTransfers / nx
	m, err := cluster.NewMachine(nodes, coresPerNode)
	if err != nil {
		return err
	}
	f := transport.NewFabric(m)
	pol := retry.Default()
	pol.Deadline = 10 * time.Second
	b, err := tcpnet.NewLoopback(f, tcpnet.Config{Retry: pol, IOTimeout: 10 * time.Second})
	if err != nil {
		return err
	}
	defer func() {
		f.SetBackend(nil)
		b.Close()
	}()
	f.SetBackend(b)
	sp, err := cods.NewSpace(f, geometry.BoxFromSize([]int{nx * side, ny * side}))
	if err != nil {
		return err
	}
	// The planner scores the real staged blocks, so the puts run through a
	// ledger exactly as a remap-capable driver stages them.
	ledger := membership.NewLedger()
	sp.SetPutRecorder(ledger)
	cores := m.TotalCores()
	n := 0
	for bx := 0; bx < nx; bx++ {
		for by := 0; by < ny; by++ {
			blk := geometry.NewBBox(
				geometry.Point{bx * side, by * side},
				geometry.Point{(bx + 1) * side, (by + 1) * side})
			data := make([]float64, blk.Volume())
			for i := range data {
				data[i] = float64(n + i)
			}
			h := sp.HandleAt(cluster.CoreID(n%cores), 1, "put")
			if err := h.PutSequential("u", 0, blk, data); err != nil {
				return err
			}
			n++
		}
	}
	region := geometry.NewBBox(
		geometry.Point{side / 2, side / 2},
		geometry.Point{nx*side - side/2, ny*side - side/2})
	consumer := sp.HandleAt(0, 2, "get")
	blocks := remap.LedgerBlocks(ledger)
	var stop, done chan struct{}
	set := func(on bool) {
		if on {
			stop, done = make(chan struct{}), make(chan struct{})
			go func(stop, done chan struct{}) {
				defer close(done)
				t := time.NewTicker(time.Millisecond)
				defer t.Stop()
				for {
					select {
					case <-stop:
						return
					case <-t.C:
						fm := obs.BuildFlowMatrix(m.Metrics().Flows(""))
						remap.Propose(m, fm, blocks, remap.Options{})
					}
				}
			}(stop, done)
			return
		}
		if stop != nil {
			close(stop)
			<-done
			stop, done = nil, nil
		}
	}
	_, overhead, slower, err := pairedOverhead(consumer, region, reps, set)
	if err != nil {
		return err
	}
	fmt.Printf("tcp pull %d transfers: remap planner overhead %+.2f%% (slower in %.0f%% of pairs; budget %.0f%%)\n",
		gateTransfers, 100*overhead, 100*slower, 100*remapOverheadBudget)
	if overhead > remapOverheadBudget && slower >= signBar {
		return fmt.Errorf("remap planner overhead %.2f%% exceeds budget %.0f%% (slower in %.0f%% of pairs)",
			100*overhead, 100*remapOverheadBudget, 100*slower)
	}
	return nil
}

// remapWinFloor is the minimum fractional inter-node byte reduction one
// remap round must deliver on the seeded skewed staging: every block is
// staged on nodes 1..3 while the only consumer sits on node 0, so the
// static mapping ships the whole domain over the wire on every pull. The
// planner reads that traffic from the flow matrix, migrates each block
// next to its reader through the put-ledger restage, and the re-pull must
// return byte-identical values while the coupled volume shifts onto
// shared memory. The gate is deterministic — byte counters, not timings —
// so the floor encodes the headline claim, not machine jitter.
const remapWinFloor = 0.15

func remapWinGate() error {
	const gateTransfers = 16
	nx := 1
	for nx*nx < gateTransfers {
		nx *= 2
	}
	ny := gateTransfers / nx
	m, err := cluster.NewMachine(nodes, coresPerNode)
	if err != nil {
		return err
	}
	f := transport.NewFabric(m)
	pol := retry.Default()
	pol.Deadline = 10 * time.Second
	b, err := tcpnet.NewLoopback(f, tcpnet.Config{Retry: pol, IOTimeout: 10 * time.Second})
	if err != nil {
		return err
	}
	defer func() {
		f.SetBackend(nil)
		b.Close()
	}()
	f.SetBackend(b)
	region := geometry.BoxFromSize([]int{nx * side, ny * side})
	sp, err := cods.NewSpace(f, region)
	if err != nil {
		return err
	}
	ledger := membership.NewLedger()
	sp.SetPutRecorder(ledger)
	// Skewed staging: owners cycle over the cores of nodes 1..3 only.
	remoteCores := m.TotalCores() - coresPerNode
	n := 0
	for bx := 0; bx < nx; bx++ {
		for by := 0; by < ny; by++ {
			blk := geometry.NewBBox(
				geometry.Point{bx * side, by * side},
				geometry.Point{(bx + 1) * side, (by + 1) * side})
			data := make([]float64, blk.Volume())
			for i := range data {
				data[i] = float64(n+i+1) / 3.0
			}
			h := sp.HandleAt(cluster.CoreID(coresPerNode+n%remoteCores), 1, "put")
			if err := h.PutSequential("u", 0, blk, data); err != nil {
				return err
			}
			n++
		}
	}
	consumer := sp.HandleAt(0, 2, "couple")
	// Warm the schedule cache and connection pool, then meter one static
	// pull — this is also the observed traffic the planner scores.
	before, err := consumer.GetSequential("u", 0, region)
	if err != nil {
		return err
	}
	net0 := f.MediumBytes(cluster.Network)
	if _, err := consumer.GetSequential("u", 0, region); err != nil {
		return err
	}
	staticNet := f.MediumBytes(cluster.Network) - net0
	if staticNet == 0 {
		return fmt.Errorf("remap win gate: skewed staging moved no inter-node bytes — the scenario is broken")
	}

	// One observe → plan → migrate round through the staged-block
	// machinery: ledger restage, DHT resplit, epoch fence.
	fm := obs.BuildFlowMatrix(m.Metrics().Flows(""))
	plan := remap.Propose(m, fm, remap.LedgerBlocks(ledger), remap.Options{})
	if len(plan.Moves) == 0 {
		return fmt.Errorf("remap win gate: planner kept the static mapping on a fully skewed staging")
	}
	moved, err := remap.Apply(sp, ledger, plan, 2, "couple")
	if err != nil {
		return err
	}

	// First re-pull recomputes the fenced schedule and must be
	// byte-identical; the second is the metered steady-state pull.
	after, err := consumer.GetSequential("u", 0, region)
	if err != nil {
		return err
	}
	if len(after) != len(before) {
		return fmt.Errorf("remap win gate: re-pull returned %d cells, want %d", len(after), len(before))
	}
	for i := range after {
		if after[i] != before[i] {
			return fmt.Errorf("remap win gate: retrieved values differ at cell %d after migration", i)
		}
	}
	net1 := f.MediumBytes(cluster.Network)
	if _, err := consumer.GetSequential("u", 0, region); err != nil {
		return err
	}
	remapNet := f.MediumBytes(cluster.Network) - net1
	reduction := 1 - float64(remapNet)/float64(staticNet)
	fmt.Printf("remap win gate: %d blocks migrated, inter-node bytes %d -> %d per pull (-%.1f%%; floor %.0f%%), re-pull byte-identical\n",
		moved, staticNet, remapNet, 100*reduction, 100*remapWinFloor)
	if reduction < remapWinFloor {
		return fmt.Errorf("remap round cut inter-node bytes by %.1f%%, below the %.0f%% floor (%d -> %d)",
			100*reduction, 100*remapWinFloor, staticNet, remapNet)
	}
	return nil
}

func run(baseline string, reps int, threshold float64) error {
	sp, consumer, region, err := buildRig()
	if err != nil {
		return err
	}

	// Guard 1: observability instrumentation on the fault-free pull path.
	obs.Enable(false)
	off, overhead, slowObs, err := pairedOverhead(consumer, region, reps, obs.Enable)
	if err != nil {
		return err
	}
	fmt.Printf("pull %d transfers, %d workers: disabled %.3f ms/op, obs overhead %+.2f%% (slower in %.0f%% of pairs; budget %.0f%%)\n",
		transfers, workers, float64(off.Nanoseconds())/1e6/pullBatch,
		100*overhead, 100*slowObs, 100*threshold)

	// Guard 2: the transfer retry layer on a fault-free fabric. An enabled
	// policy only adds the retry.Do bookkeeping per transfer — no fault
	// fires, so no backoff is ever slept.
	pol := retry.Default()
	_, retryOverhead, slowRetry, err := pairedOverhead(consumer, region, reps, func(enable bool) {
		if enable {
			sp.SetRetryPolicy(pol)
		} else {
			sp.SetRetryPolicy(retry.Policy{})
		}
	})
	if err != nil {
		return err
	}
	fmt.Printf("pull %d transfers, %d workers: retry overhead %+.2f%% (slower in %.0f%% of pairs; budget %.0f%%)\n",
		transfers, workers, 100*retryOverhead, 100*slowRetry, 100*threshold)

	// Guard 3: the Backend interface on the in-process path. Forcing every
	// operation through the interface — instead of the routeLocal fast path
	// that skips it — exposes exactly the indirection the pluggable-backend
	// split added, so it gets its own, tighter budget.
	const indirectionBudget = 0.02
	_, indirOverhead, slowIndir, err := pairedOverhead(consumer, region, reps, sp.Fabric().ForceBackendRouting)
	if err != nil {
		return err
	}
	fmt.Printf("pull %d transfers, %d workers: backend indirection overhead %+.2f%% (slower in %.0f%% of pairs; budget %.0f%%)\n",
		transfers, workers, 100*indirOverhead, 100*slowIndir, 100*indirectionBudget)

	if base, ok := loadBaseline(baseline); ok {
		drift := float64(off.Nanoseconds()/pullBatch-base) / float64(base)
		fmt.Printf("committed baseline %s: %.3f ms (%+.2f%% vs this machine; informational only)\n",
			baseline, float64(base)/1e6, 100*drift)
	} else {
		fmt.Printf("no usable baseline at %s (informational only)\n", baseline)
	}

	if overhead > threshold && slowObs >= signBar {
		return fmt.Errorf("instrumentation overhead %.2f%% exceeds budget %.0f%% (slower in %.0f%% of pairs)",
			100*overhead, 100*threshold, 100*slowObs)
	}
	if retryOverhead > threshold && slowRetry >= signBar {
		return fmt.Errorf("retry-layer overhead %.2f%% exceeds budget %.0f%% (slower in %.0f%% of pairs)",
			100*retryOverhead, 100*threshold, 100*slowRetry)
	}
	if indirOverhead > indirectionBudget && slowIndir >= signBar {
		return fmt.Errorf("backend indirection overhead %.2f%% exceeds budget %.0f%% (slower in %.0f%% of pairs)",
			100*indirOverhead, 100*indirectionBudget, 100*slowIndir)
	}

	// Guard 4: the scatter-gather wire protocol moves only what the
	// schedule predicts.
	if err := wireByteGate(); err != nil {
		return err
	}

	// Guard 5: the distributed observability plane on the TCP pull path.
	if err := distributedObsGate(reps, threshold); err != nil {
		return err
	}

	// Guard 6: the elastic membership layer at steady state — leases on,
	// no topology change.
	if err := elasticGate(reps); err != nil {
		return err
	}

	// Guard 7: the streaming coupling mode against the classic
	// put/get/discard sequence, identical bytes and placement.
	if err := streamingGate(reps); err != nil {
		return err
	}

	// Guard 8: the adaptive remap plane — the planner's steady-state cost,
	// then one migration round's win on a deterministic skewed staging.
	if err := remapOverheadGate(reps); err != nil {
		return err
	}
	return remapWinGate()
}

func main() {
	baseline := flag.String("baseline", filepath.Join("results", "BENCH_pull.json"), "pullbench report for the informational comparison")
	reps := flag.Int("reps", 25, "paired timing repetitions (median pair difference kept)")
	threshold := flag.Float64("threshold", 0.05, "maximum allowed relative overhead of enabled instrumentation")
	flag.Parse()
	if *reps < 1 {
		*reps = 1
	}
	if err := run(*baseline, *reps, *threshold); err != nil {
		fmt.Fprintf(os.Stderr, "benchguard: %v\n", err)
		os.Exit(1)
	}
}
