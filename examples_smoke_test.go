package cods_test

// Build-and-run smoke tests for every program under examples/: each must
// compile and — unless -short — run to completion under the race detector
// with a zero exit status. The examples double as integration coverage of
// the public API surface the README documents.

import (
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"testing"
)

// exampleDirs lists the example programs, failing the test if the
// directory layout changed unexpectedly.
func exampleDirs(t *testing.T) []string {
	t.Helper()
	entries, err := os.ReadDir("examples")
	if err != nil {
		t.Fatalf("reading examples/: %v", err)
	}
	var dirs []string
	for _, e := range entries {
		if e.IsDir() {
			dirs = append(dirs, filepath.Join("examples", e.Name()))
		}
	}
	sort.Strings(dirs)
	if len(dirs) == 0 {
		t.Fatal("no example programs found")
	}
	return dirs
}

func TestExamplesBuild(t *testing.T) {
	out, err := exec.Command("go", "build", "./examples/...").CombinedOutput()
	if err != nil {
		t.Fatalf("go build ./examples/...: %v\n%s", err, out)
	}
}

func TestExamplesRun(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping example runs in -short mode")
	}
	for _, dir := range exampleDirs(t) {
		dir := dir
		t.Run(filepath.Base(dir), func(t *testing.T) {
			t.Parallel()
			cmd := exec.Command("go", "run", "-race", "./"+dir)
			out, err := cmd.CombinedOutput()
			if err != nil {
				t.Fatalf("go run -race ./%s: %v\n%s", dir, err, out)
			}
		})
	}
}
