module github.com/insitu/cods

go 1.22
