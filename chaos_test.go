package cods_test

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	cods "github.com/insitu/cods"
	"github.com/insitu/cods/internal/obs"
)

// The chaos tests run complete coupled workflows under seeded fault plans
// and assert that the recovered results are byte-identical to a fault-free
// run: retries re-copy the same disjoint sub-boxes, so the assembled
// fields cannot drift no matter where the faults land. The fault schedule
// is deterministic (fire decisions are pure functions of the plan seed and
// each rule's match counter), so these assertions are stable under -race
// and -count=2.

// chaosRetry is the transfer retry policy the chaos workloads run under:
// a generous attempt budget with microsecond backoff, so recovery is fast
// and the tests stay quick.
func chaosRetry() cods.RetryPolicy {
	return cods.RetryPolicy{
		MaxAttempts: 6,
		BaseDelay:   time.Microsecond,
		MaxDelay:    50 * time.Microsecond,
		Multiplier:  2,
		Jitter:      0.2,
	}
}

// capture collects every region a consumer task retrieved, keyed by rank,
// version and region, for exact comparison across runs.
type capture struct {
	mu   sync.Mutex
	data map[string][]float64
}

func newCapture() *capture { return &capture{data: make(map[string][]float64)} }

func (c *capture) record(rank, version int, region cods.BBox, vals []float64) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.data[fmt.Sprintf("%d/%d/%s", rank, version, region)] = append([]float64(nil), vals...)
}

// chaosFill is the deterministic producer content of a region at a version.
func chaosFill(b cods.BBox, version int) []float64 {
	data := make([]float64, b.Volume())
	i := 0
	b.Each(func(p cods.Point) {
		v := float64(version) * 1e6
		for _, x := range p {
			v = v*100 + float64(x)
		}
		data[i] = v
		i++
	})
	return data
}

// runConcurrentWorkload runs a quickstart-style concurrently coupled pair
// (producer puts two versions, consumer pulls them directly) under an
// optional fault plan and returns what the consumer retrieved.
func runConcurrentWorkload(t *testing.T, plan *cods.FaultPlan) (map[string][]float64, *cods.Framework) {
	t.Helper()
	fw, err := cods.New(cods.Config{Nodes: 6, CoresPerNode: 4, Domain: []int{16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	fw.SetRetryPolicy(chaosRetry())
	if plan != nil {
		fw.SetFaultPlan(plan)
	}
	// A finer producer grid than the consumer's makes every consumer pull a
	// multi-transfer schedule (4 sub-box reads per region), giving the
	// fault rules a meaningful match stream.
	prodDc, err := fw.BlockedDecomposition([]int{4, 4})
	if err != nil {
		t.Fatal(err)
	}
	consDc, err := fw.BlockedDecomposition([]int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	const iters = 2
	if err := fw.RegisterApp(cods.AppSpec{
		ID: 1, Decomp: prodDc,
		Run: func(ctx *cods.AppContext) error {
			for version := 0; version < iters; version++ {
				for _, blk := range ctx.Decomp.Region(ctx.Rank) {
					if err := ctx.Space.PutConcurrent("u", version, blk, chaosFill(blk, version)); err != nil {
						return err
					}
				}
				// A collective per version gives the delay rules Send/Recv
				// traffic to slow down without failing the run.
				if err := ctx.Comm.Barrier(); err != nil {
					return err
				}
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	got := newCapture()
	if err := fw.RegisterApp(cods.AppSpec{
		ID: 2, Decomp: consDc,
		Run: func(ctx *cods.AppContext) error {
			info := ctx.Producers[1]
			for version := 0; version < iters; version++ {
				for _, region := range ctx.Decomp.Region(ctx.Rank) {
					vals, err := ctx.Space.GetConcurrent(info, "u", version, region)
					if err != nil {
						return err
					}
					got.record(ctx.Rank, version, region, vals)
				}
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := fw.RunWorkflowText("APP_ID 1\nAPP_ID 2\nBUNDLE 1 2\n", cods.DataCentric); err != nil {
		t.Fatalf("workflow failed under faults: %v", err)
	}
	return got.data, fw
}

// runSequentialWorkload runs a heatdiffusion-style staged pipeline: the
// producer stages its field through the space, the sequentially coupled
// consumer pulls it back out through the lookup service.
func runSequentialWorkload(t *testing.T, plan *cods.FaultPlan) (map[string][]float64, *cods.Framework) {
	t.Helper()
	fw, err := cods.New(cods.Config{Nodes: 4, CoresPerNode: 4, Domain: []int{16, 16}})
	if err != nil {
		t.Fatal(err)
	}
	fw.SetRetryPolicy(chaosRetry())
	if plan != nil {
		fw.SetFaultPlan(plan)
	}
	prodDc, err := fw.BlockedDecomposition([]int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	consDc, err := fw.BlockedDecomposition([]int{2, 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := fw.RegisterApp(cods.AppSpec{
		ID: 1, Decomp: prodDc,
		Run: func(ctx *cods.AppContext) error {
			for _, blk := range ctx.Decomp.Region(ctx.Rank) {
				if err := ctx.Space.PutSequential("state", 0, blk, chaosFill(blk, 0)); err != nil {
					return err
				}
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	got := newCapture()
	if err := fw.RegisterApp(cods.AppSpec{
		ID: 2, Decomp: consDc, ReadsVar: "state",
		Run: func(ctx *cods.AppContext) error {
			for _, region := range ctx.Decomp.Region(ctx.Rank) {
				vals, err := ctx.Space.GetSequential("state", 0, region)
				if err != nil {
					return err
				}
				got.record(ctx.Rank, 0, region, vals)
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	d, err := cods.NewWorkflow([]int{1, 2}, [][2]int{{1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := fw.RunWorkflow(d, cods.DataCentric); err != nil {
		t.Fatalf("workflow failed under faults: %v", err)
	}
	return got.data, fw
}

func mustPlan(t *testing.T, src string) *cods.FaultPlan {
	t.Helper()
	p, err := cods.ParseFaultPlan([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// Dropping a fraction of the one-sided reads must not change a single
// retrieved byte: the retry layer re-pulls each failed sub-box into its
// own disjoint slot of the output. Max bounds the total faults so even a
// pathological schedule terminates.
func TestChaosConcurrentReadDropRates(t *testing.T) {
	baseline, _ := runConcurrentWorkload(t, nil)
	for _, tc := range []struct {
		name string
		seed uint64
		prob float64
		// wantFaults requires the seeded schedule to actually fire; at 1%
		// the deterministic schedule may legitimately fire zero times.
		wantFaults bool
	}{
		{"drop1pct", 42, 0.01, false},
		{"drop5pct", 1, 0.05, true},
		{"drop10pct", 42, 0.10, true},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			plan := mustPlan(t, fmt.Sprintf(
				`{"seed": %d, "rules": [{"op": "read", "mode": "drop", "prob": %g, "max": 40}]}`, tc.seed, tc.prob))
			got, fw := runConcurrentWorkload(t, plan)
			if !reflect.DeepEqual(got, baseline) {
				t.Fatal("faulty run diverged from the fault-free baseline")
			}
			if tc.wantFaults && plan.Injected() == 0 {
				t.Fatal("seeded plan injected no faults")
			}
			if fw.FaultsInjected() != plan.Injected() {
				t.Fatalf("fabric count %d != plan count %d", fw.FaultsInjected(), plan.Injected())
			}
		})
	}
}

// The same drop plan over the staged pipeline: here recovery additionally
// exercises the lookup requery path of GetSequential.
func TestChaosSequentialReadDrops(t *testing.T) {
	baseline, _ := runSequentialWorkload(t, nil)
	plan := mustPlan(t,
		`{"seed": 9, "rules": [{"op": "read", "mode": "drop", "prob": 0.1, "max": 40}]}`)
	got, fw := runSequentialWorkload(t, plan)
	if !reflect.DeepEqual(got, baseline) {
		t.Fatal("faulty run diverged from the fault-free baseline")
	}
	if fw.FaultsInjected() == 0 {
		t.Fatal("seeded plan injected no faults")
	}
}

// An owner endpoint going dark for a stretch of reads and then healing
// (the scripted window) is survived by per-transfer retries plus the
// requery loop; the result still matches the baseline bit for bit.
func TestChaosSequentialDarkWindowHeals(t *testing.T) {
	baseline, _ := runSequentialWorkload(t, nil)
	plan := mustPlan(t,
		`{"seed": 3, "rules": [{"op": "read", "mode": "error", "from_op": 3, "to_op": 9}]}`)
	got, fw := runSequentialWorkload(t, plan)
	if !reflect.DeepEqual(got, baseline) {
		t.Fatal("faulty run diverged from the fault-free baseline")
	}
	// The window is six matches wide and every one of them fires.
	if fw.FaultsInjected() != 6 {
		t.Fatalf("FaultsInjected = %d, want 6", fw.FaultsInjected())
	}
}

// Delaying shared-memory sends perturbs timing (collectives, control
// messages) without failing anything; combined with read drops the run
// still converges to the baseline bytes.
func TestChaosShmSendDelaysAndDrops(t *testing.T) {
	baseline, _ := runConcurrentWorkload(t, nil)
	plan := mustPlan(t, `{"seed": 11, "rules": [
		{"op": "send", "medium": "shm", "mode": "delay", "delay_us": 20, "prob": 0.25, "max": 200},
		{"op": "read", "mode": "error", "prob": 0.05, "max": 40}]}`)
	got, _ := runConcurrentWorkload(t, plan)
	if !reflect.DeepEqual(got, baseline) {
		t.Fatal("faulty run diverged from the fault-free baseline")
	}
	if plan.Delayed() == 0 {
		t.Fatal("seeded plan delayed no sends")
	}
}

// With the registry enabled, a faulty run leaves a nonzero retry and
// recovery trail in the cods.pull counters.
func TestChaosRetryCountersVisible(t *testing.T) {
	obs.Enable(true)
	defer obs.Enable(false)
	retries0 := obs.Default.Counter("cods.pull.retries").Value()
	recovs0 := obs.Default.Counter("cods.pull.recoveries").Value()
	plan := mustPlan(t,
		`{"seed": 42, "rules": [{"op": "read", "mode": "drop", "prob": 0.1, "max": 40}]}`)
	if _, fw := runConcurrentWorkload(t, plan); fw.FaultsInjected() == 0 {
		t.Fatal("seeded plan injected no faults")
	}
	if d := obs.Default.Counter("cods.pull.retries").Value() - retries0; d == 0 {
		t.Fatal("cods.pull.retries did not move")
	}
	if d := obs.Default.Counter("cods.pull.recoveries").Value() - recovs0; d == 0 {
		t.Fatal("cods.pull.recoveries did not move")
	}
}
