package cods_test

// Model-based conformance tests (DESIGN §5e): randomized scenarios from
// internal/genwf run through the real pipeline and the reference model in
// internal/conformance, with deterministic shrinking on failure.

import (
	"strings"
	"testing"
	"time"

	"github.com/insitu/cods/internal/conformance"
	"github.com/insitu/cods/internal/genwf"
)

// conformanceSeeds returns how many generated scenarios a sweep runs.
func conformanceSeeds(t *testing.T, full int) uint64 {
	if testing.Short() {
		return uint64(full / 4)
	}
	return uint64(full)
}

// TestConformanceSweep runs randomized scenarios — sequential and
// concurrent coupling, every mapping policy, halos, multiple versions,
// restaging, fault plans — and requires byte identity with the reference
// model plus every cross-layer invariant. Every scenario runs on both
// transport backends (in-process and TCP loopback) and must produce
// byte-identical gets and equal metered traffic on each. On failure the
// scenario is shrunk to a minimal reproduction before reporting.
func TestConformanceSweep(t *testing.T) {
	n := conformanceSeeds(t, 24)
	for seed := uint64(1); seed <= n; seed++ {
		sc := genwf.Generate(seed)
		if err := conformance.RunCross(sc); err != nil {
			reportShrunkCross(t, sc, err)
		}
	}
}

// TestConformanceFaultsConcurrentPulls is the sweep pinned to the
// hardest configuration: parallel pull workers combined with a
// recoverable fault plan, so retries, backoff and the requery path run
// under contention. Results must still be byte-identical — recovered
// faults may never change data or double-meter traffic.
func TestConformanceFaultsConcurrentPulls(t *testing.T) {
	n := conformanceSeeds(t, 12)
	for seed := uint64(1); seed <= n; seed++ {
		sc := genwf.Generate(1000 + seed)
		sc.PullWorkers = 4
		sc.Retry = 4
		sc.Remap = false // remap rounds exclude fault plans; this sweep pins faults
		if sc.Faults == "" {
			sc.Faults = `{"seed": 7, "rules": [{"op": "read", "mode": "drop", "prob": 0.3, "max": 3}, {"op": "call", "mode": "error", "prob": 0.1, "max": 3}]}`
		}
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := conformance.Run(sc); err != nil {
			reportShrunk(t, sc, err)
		}
	}
}

// TestConformanceElastic is the sweep pinned to topology-chaos
// scenarios: after the first get round a node is killed — its staged
// blocks migrate to a survivor and the lookup intervals re-split over
// the remaining nodes — and on even seeds a replacement then rejoins.
// Every post-change get round must stay byte-identical to the reference
// model on both backends, with all accounting invariants intact.
func TestConformanceElastic(t *testing.T) {
	n := conformanceSeeds(t, 12)
	for seed := uint64(1); seed <= n; seed++ {
		sc := genwf.Generate(2000 + seed)
		sc.Sequential = true
		sc.Versions = 1
		sc.Restage = false
		if sc.Mapping == genwf.ServerDataCentric {
			sc.Mapping = genwf.Consecutive
		}
		if sc.Nodes < 2 {
			sc.Nodes = 2
		}
		sc.Kill = 1 + int(seed)%sc.Nodes
		sc.Rejoin = seed%2 == 0
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := conformance.RunCross(sc); err != nil {
			reportShrunkCross(t, sc, err)
		}
	}
}

// TestConformanceRemap is the sweep pinned to adaptive-remapping
// scenarios (DESIGN §5j): after the first get round the remap planner
// consumes the observed flow matrix and migrates staged blocks toward
// their readers (with a deterministic rotation fallback when the traffic
// is already local), re-splitting the lookup intervals and bumping the
// schedule-cache epoch. The second get round must stay byte-identical to
// the reference model on both backends, and the flow deltas across the
// remap epoch must equal the model prediction exactly. Seeds cycle the
// linearization policy through all three curves so remapping is proven
// independent of the space-filling curve underneath.
func TestConformanceRemap(t *testing.T) {
	curves := []string{"hilbert", "morton", "rowmajor"}
	n := conformanceSeeds(t, 12)
	for seed := uint64(1); seed <= n; seed++ {
		sc := genwf.Generate(4000 + seed)
		sc.Sequential = true
		sc.Versions = 1
		sc.Restage = false
		sc.Kill = 0
		sc.Rejoin = false
		sc.Faults = ""
		if sc.Mapping == genwf.ServerDataCentric {
			sc.Mapping = genwf.Consecutive
		}
		if sc.Nodes < 2 {
			sc.Nodes = 2
		}
		sc.Remap = true
		sc.Curve = curves[int(seed)%len(curves)]
		if err := sc.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := conformance.RunCross(sc); err != nil {
			reportShrunkCross(t, sc, err)
		}
	}
}

// TestConformanceStreaming is the sweep over streaming-coupling
// scenarios (DESIGN §5i): producers publish a bounded-lag stream of
// versions and consumers follow through cursors, under both lag policies
// — backpressure runs race producer and consumer goroutines, drop-oldest
// runs go lock-step with deterministic forced retirements, consume
// strides, mid-stream resubscribes and mid-stream kills. Every scenario
// runs on both backends and must produce byte-identical windowed gets
// against the versioned stream reference model, with retired versions
// verifiably gone from the DHT and all accounting invariants intact.
func TestConformanceStreaming(t *testing.T) {
	n := conformanceSeeds(t, 16)
	for seed := uint64(1); seed <= n; seed++ {
		sc := genwf.GenerateStreaming(3000 + seed)
		if err := conformance.RunCross(sc); err != nil {
			reportShrunkCross(t, sc, err)
		}
	}
}

// reportShrunk shrinks a failing scenario and fails the test with the
// minimal reproduction: the original error, the runnable Go literal and
// the .dag-style repro.
func reportShrunk(t *testing.T, sc genwf.Scenario, err error) {
	t.Helper()
	fails := func(c genwf.Scenario) bool {
		return conformance.RunOpts(c, conformance.Options{Timeout: 20 * time.Second}) != nil
	}
	min := genwf.Shrink(sc, fails)
	t.Fatalf("conformance failure: %v\n\nminimal failing scenario:\n%s\n\nrepro DAG:\n%s", err, min.GoLiteral(), min.DAG())
}

// reportShrunkCross is reportShrunk with the cross-backend runner as the
// shrinking predicate, so failures only one backend exhibits keep
// reproducing while the scenario is minimized.
func reportShrunkCross(t *testing.T, sc genwf.Scenario, err error) {
	t.Helper()
	fails := func(c genwf.Scenario) bool {
		return conformance.RunCrossOpts(c, conformance.Options{Timeout: 20 * time.Second}) != nil
	}
	min := genwf.Shrink(sc, fails)
	t.Fatalf("cross-backend conformance failure: %v\n\nminimal failing scenario:\n%s\n\nrepro DAG:\n%s", err, min.GoLiteral(), min.DAG())
}

// TestConformanceShrinkOnForcedFailure forces a deterministic failure
// (one corrupted cell in one get) and checks the shrinking machinery end
// to end: the shrunk scenario still fails, fails identically on a second
// run (reproducible from its printed seed alone), is minimal in every
// dimension the corruption does not depend on, and prints as a runnable
// Go literal plus a .dag-style repro.
func TestConformanceShrinkOnForcedFailure(t *testing.T) {
	opts := conformance.Options{CorruptGet: true, Timeout: 20 * time.Second}
	fails := func(c genwf.Scenario) bool { return conformance.RunOpts(c, opts) != nil }

	sc := genwf.Generate(3) // arbitrary; any scenario fails under CorruptGet
	if !fails(sc) {
		t.Fatal("corrupted scenario unexpectedly passed")
	}
	min := genwf.Shrink(sc, fails)
	if err := min.Validate(); err != nil {
		t.Fatalf("shrunk scenario invalid: %v", err)
	}

	// Deterministic reproduction: two runs of the minimal scenario fail
	// with the identical error.
	err1 := conformance.RunOpts(min, opts)
	err2 := conformance.RunOpts(min, opts)
	if err1 == nil || err2 == nil {
		t.Fatalf("shrunk scenario stopped failing: %v / %v", err1, err2)
	}
	if err1.Error() != err2.Error() {
		t.Fatalf("shrunk failure not deterministic:\n%v\nvs\n%v", err1, err2)
	}

	// The corruption hits every scenario, so everything must have shrunk
	// to its floor.
	if min.Nodes != 1 || min.CoresPerNode != 1 || len(min.Domain) != 1 ||
		min.Versions != 1 || min.Vars != 1 || min.Ghost != 0 ||
		min.Faults != "" || min.Restage || min.Kill != 0 {
		t.Errorf("scenario not minimal:\n%s", min.GoLiteral())
	}

	lit := min.GoLiteral()
	if !strings.Contains(lit, "genwf.Scenario{") || !strings.Contains(lit, "Seed: 0x") {
		t.Errorf("bad Go literal:\n%s", lit)
	}
	dag := min.DAG()
	if !strings.Contains(dag, "APP_ID 1") {
		t.Errorf("bad DAG repro:\n%s", dag)
	}
	t.Logf("minimal forced-failure scenario:\n%s\n%s", lit, dag)
}
