//go:build conformance_mutations

package cods_test

// Mutation check for the conformance harness (DESIGN §5e): with the
// conformance_mutations build tag, internal/mutate seeds one defect per
// CODS_MUTATION value into a different layer of the pipeline. Each
// directed scenario below must pass with its mutation disabled and fail
// with it enabled — proving the harness actually exercises the layer the
// defect lives in. Run with:
//
//	go test -tags conformance_mutations -run TestMutationDetection .

import (
	"fmt"
	"testing"
	"time"

	"github.com/insitu/cods/internal/conformance"
	"github.com/insitu/cods/internal/decomp"
	"github.com/insitu/cods/internal/genwf"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/membership"
	"github.com/insitu/cods/internal/mutate"
	"github.com/insitu/cods/internal/sfc"
)

// mutationScenario returns the directed scenario detecting one seeded
// defect. Randomized sweeps catch most of these too; the directed ones
// make each detection deterministic.
func mutationScenario(name string) genwf.Scenario {
	switch name {
	case mutate.GeomIntersect:
		// Ghost halos make every sequential schedule intersect stored
		// blocks with wider get regions; the clipped upper bound loses a
		// row and the schedule no longer covers the region.
		return genwf.Scenario{
			Seed: 0xA, Nodes: 2, CoresPerNode: 2, Domain: []int{8, 8},
			Sequential: true,
			ProdKind:   decomp.Blocked, ProdGrid: []int{2, 2},
			ConsKind: decomp.Blocked, ConsGrid: []int{2, 2},
			Vars: 1, Ghost: 1, Versions: 1, Mapping: genwf.Consecutive,
			PullWorkers: 1, SpanCache: sfc.DefaultSpanCacheCapacity,
		}
	case mutate.SfcSpanSplit:
		// 1-D domain of 16 over 8 lookup nodes (two SFC indices each).
		// The producer's second block [8,16) registers on nodes 4..7; the
		// consumer's ghost region [0,9) queries — mutated to [0,8) — only
		// nodes 0..3 and misses the entry entirely.
		return genwf.Scenario{
			Seed: 0xB, Nodes: 8, CoresPerNode: 1, Domain: []int{16},
			Sequential: true,
			ProdKind:   decomp.Blocked, ProdGrid: []int{2},
			ConsKind: decomp.Blocked, ConsGrid: []int{2},
			Vars: 1, Ghost: 1, Versions: 1, Mapping: genwf.Consecutive,
			PullWorkers: 1, SpanCache: sfc.DefaultSpanCacheCapacity,
		}
	case mutate.DropCoalesce:
		// One consumer pulling the whole domain from two producer blocks:
		// a two-transfer schedule, so dropping the last transfer leaves
		// half the cells zero.
		return genwf.Scenario{
			Seed: 0xC, Nodes: 2, CoresPerNode: 2, Domain: []int{16},
			Sequential: true,
			ProdKind:   decomp.Blocked, ProdGrid: []int{2},
			ConsKind: decomp.Blocked, ConsGrid: []int{1},
			Vars: 1, Ghost: 0, Versions: 1, Mapping: genwf.Consecutive,
			PullWorkers: 1, SpanCache: sfc.DefaultSpanCacheCapacity,
		}
	case mutate.StaleEpoch:
		// Restaging moves every block one node over; a schedule cache
		// that ignores the invalidation stamp keeps pulling the old,
		// unexposed buffer and blocks forever (caught by the watchdog).
		return genwf.Scenario{
			Seed: 0xD, Nodes: 2, CoresPerNode: 2, Domain: []int{8},
			Sequential: true,
			ProdKind:   decomp.Blocked, ProdGrid: []int{2},
			ConsKind: decomp.Blocked, ConsGrid: []int{2},
			Vars: 1, Ghost: 0, Versions: 1, Mapping: genwf.Consecutive,
			PullWorkers: 1, SpanCache: sfc.DefaultSpanCacheCapacity,
			Restage: true,
		}
	case mutate.SwapFlow:
		// Producers fill node 0, consumers node 1: all coupling flows
		// cross 0 -> 1. Swapped endpoints keep every per-medium total
		// identical — only the per-(src, dst) flow aggregation catches it.
		return genwf.Scenario{
			Seed: 0xE, Nodes: 2, CoresPerNode: 2, Domain: []int{8},
			Sequential: false, Staged: true,
			ProdKind: decomp.Blocked, ProdGrid: []int{2},
			ConsKind: decomp.Blocked, ConsGrid: []int{2},
			Vars: 1, Ghost: 0, Versions: 1, Mapping: genwf.Consecutive,
			PullWorkers: 1, SpanCache: sfc.DefaultSpanCacheCapacity,
		}
	case mutate.NoRequery:
		// A single-transfer schedule under a fault window that outlasts
		// the per-transfer retry budget (2 attempts, first 2 reads fail):
		// only the requery path's fresh pull can succeed. Skipping it
		// turns a recoverable fault into a failed get.
		return genwf.Scenario{
			Seed: 0xF, Nodes: 1, CoresPerNode: 1, Domain: []int{8},
			Sequential: true,
			ProdKind:   decomp.Blocked, ProdGrid: []int{1},
			ConsKind: decomp.Blocked, ConsGrid: []int{1},
			Vars: 1, Ghost: 0, Versions: 1, Mapping: genwf.Consecutive,
			PullWorkers: 1, SpanCache: sfc.DefaultSpanCacheCapacity,
			Faults: `{"seed": 1, "rules": [{"op": "read", "mode": "error", "from_op": 0, "to_op": 2}]}`,
			Retry:  2,
		}
	case mutate.TCPTruncFrame:
		// Producer block on node 1, single consumer on node 0: the pull and
		// its DHT lookups cross the wire under the TCP backend, where every
		// mutated frame is one byte short and the strict decoder rejects
		// it. The in-process leg of the cross-backend run stays green —
		// only the real network path carries the defect.
		return genwf.Scenario{
			Seed: 0x10, Nodes: 2, CoresPerNode: 1, Domain: []int{16},
			Sequential: true,
			ProdKind:   decomp.Blocked, ProdGrid: []int{2},
			ConsKind: decomp.Blocked, ConsGrid: []int{1},
			Vars: 1, Ghost: 0, Versions: 1, Mapping: genwf.Consecutive,
			PullWorkers: 1, SpanCache: sfc.DefaultSpanCacheCapacity,
		}
	case mutate.TCPMeterClass:
		// Same cross-node shape: the swapped class byte books the coupled
		// network pull as control traffic on the serving side. Data stays
		// byte-identical; the inter-app-bytes-vs-model invariant of the
		// TCP leg is what must catch it.
		return genwf.Scenario{
			Seed: 0x11, Nodes: 2, CoresPerNode: 1, Domain: []int{16},
			Sequential: true,
			ProdKind:   decomp.Blocked, ProdGrid: []int{2},
			ConsKind: decomp.Blocked, ConsGrid: []int{1},
			Vars: 1, Ghost: 0, Versions: 1, Mapping: genwf.Consecutive,
			PullWorkers: 1, SpanCache: sfc.DefaultSpanCacheCapacity,
		}
	case mutate.ObsFlowMisattribute:
		// Producers fill node 0, consumers node 1: the coupling flows
		// cross 0 -> 1. The defect re-credits cross-node cells to the
		// next node inside the obs aggregation only — the raw flow log
		// and every byte total stay correct, so only the flow-matrix
		// regrouping check (invariant 4b) can see it.
		return genwf.Scenario{
			Seed: 0x13, Nodes: 2, CoresPerNode: 2, Domain: []int{8},
			Sequential: false, Staged: true,
			ProdKind: decomp.Blocked, ProdGrid: []int{2},
			ConsKind: decomp.Blocked, ConsGrid: []int{2},
			Vars: 1, Ghost: 0, Versions: 1, Mapping: genwf.Consecutive,
			PullWorkers: 1, SpanCache: sfc.DefaultSpanCacheCapacity,
		}
	case mutate.TCPSGDrop, mutate.TCPSGReorder:
		// Four producer blocks over a 2x2 machine, consumer on core 0:
		// the blocks on node 1 become one scatter-gather batch of two
		// segments with different cell data. The drop defect announces and
		// streams one segment short (the client's count check fails the
		// pull); the reorder defect swaps the two payloads under intact
		// indices, which only the cross-backend byte-identity catches.
		return genwf.Scenario{
			Seed: 0x12, Nodes: 2, CoresPerNode: 2, Domain: []int{32},
			Sequential: true,
			ProdKind:   decomp.Blocked, ProdGrid: []int{4},
			ConsKind: decomp.Blocked, ConsGrid: []int{1},
			Vars: 1, Ghost: 0, Versions: 1, Mapping: genwf.Consecutive,
			PullWorkers: 1, SpanCache: sfc.DefaultSpanCacheCapacity,
		}
	case mutate.StaleRouteAfterResplit:
		// Killing node 1 migrates its blocks to node 0, re-splits the
		// lookup intervals onto the survivor and clears the departed
		// table. A query path still routing by the pre-resplit intervals
		// asks the cleared node for the upper half of the index space and
		// comes back empty-handed — the owner check sees fewer entries
		// than the model predicts.
		return genwf.Scenario{
			Seed: 0x14, Nodes: 2, CoresPerNode: 2, Domain: []int{8},
			Sequential: true,
			ProdKind:   decomp.Blocked, ProdGrid: []int{2},
			ConsKind: decomp.Blocked, ConsGrid: []int{2},
			Vars: 1, Ghost: 0, Versions: 1, Mapping: genwf.Consecutive,
			PullWorkers: 1, SpanCache: sfc.DefaultSpanCacheCapacity,
			Kill: 2,
		}
	case mutate.StaleWatermarkServed:
		// Three rounds, lag bound three, consumers striding every third
		// round: at the single consume the floor (0) is far below the
		// watermark (2), so the mutated latest-value read serves the
		// retained version 1 — the model answers version 2 with different
		// bytes, and the version comparison catches it deterministically.
		return genwf.Scenario{
			Seed: 0x15, Nodes: 2, CoresPerNode: 2, Domain: []int{8},
			Sequential: true,
			ProdKind:   decomp.Blocked, ProdGrid: []int{2},
			ConsKind: decomp.Blocked, ConsGrid: []int{2},
			Vars: 1, Ghost: 0, Versions: 1, Mapping: genwf.Consecutive,
			PullWorkers: 1, SpanCache: sfc.DefaultSpanCacheCapacity,
			Stream: true, Drop: true, Rounds: 3, MaxLag: 3, ConsumeEvery: 3,
		}
	case mutate.GCBeforeConsume:
		// Lag bound two with a stride of two: the clean run never drops
		// (the retire bound trails the slowest cursor exactly). The
		// mutated bound retires one version consumers were still entitled
		// to at the round-1 watermark advance — the floor and cursor
		// positions diverge from the model immediately after that publish.
		return genwf.Scenario{
			Seed: 0x16, Nodes: 2, CoresPerNode: 2, Domain: []int{8},
			Sequential: true,
			ProdKind:   decomp.Blocked, ProdGrid: []int{2},
			ConsKind: decomp.Blocked, ConsGrid: []int{2},
			Vars: 1, Ghost: 0, Versions: 1, Mapping: genwf.Consecutive,
			PullWorkers: 1, SpanCache: sfc.DefaultSpanCacheCapacity,
			Stream: true, Drop: true, Rounds: 4, MaxLag: 2, ConsumeEvery: 2,
		}
	case mutate.RemapStaleOwner:
		// One adaptive remap round migrates every staged block across
		// nodes. The defective executor discards the source copy but leaves
		// its location record registered, so the post-remap owner check
		// sees one entry more than the model predicts — and a pull routed
		// to the stale owner would double-cover its region.
		return genwf.Scenario{
			Seed: 0x18, Nodes: 2, CoresPerNode: 2, Domain: []int{8},
			Sequential: true,
			ProdKind:   decomp.Blocked, ProdGrid: []int{2},
			ConsKind: decomp.Blocked, ConsGrid: []int{2},
			Vars: 1, Ghost: 0, Versions: 1, Mapping: genwf.Consecutive,
			PullWorkers: 1, SpanCache: sfc.DefaultSpanCacheCapacity,
			Remap: true,
		}
	case mutate.VersionSkipOnResubscribe:
		// Keep-up consumers resubscribe after round 2 from position 1: the
		// mutated resume lands at 2 and silently skips a version — the
		// position check against the model's cursor catches the gap before
		// any data is read.
		return genwf.Scenario{
			Seed: 0x17, Nodes: 2, CoresPerNode: 2, Domain: []int{8},
			Sequential: true,
			ProdKind:   decomp.Blocked, ProdGrid: []int{2},
			ConsKind: decomp.Blocked, ConsGrid: []int{2},
			Vars: 1, Ghost: 0, Versions: 1, Mapping: genwf.Consecutive,
			PullWorkers: 1, SpanCache: sfc.DefaultSpanCacheCapacity,
			Stream: true, Drop: true, Rounds: 3, MaxLag: 2, ConsumeEvery: 1, Resub: 2,
		}
	default:
		panic("unknown mutation " + name)
	}
}

// detectLeaseExpiryIgnored proves the membership layer catches a sweep
// that ignores lapsed leases: a joined member that stops renewing must be
// reported as expired once its TTL passes. The defect makes Sweep report
// nothing forever, so the reconcile loop would never observe a crash.
func detectLeaseExpiryIgnored(t *testing.T) {
	probe := func() error {
		reg := membership.NewRegistry(time.Second)
		now := time.Unix(1000, 0)
		reg.SetClock(func() time.Time { return now })
		if err := reg.Join(0, "n0:1", 1); err != nil {
			return err
		}
		now = now.Add(time.Hour)
		if expired := reg.Sweep(); len(expired) != 1 {
			return fmt.Errorf("sweep reported %v, want the lapsed member", expired)
		}
		return nil
	}
	if err := probe(); err != nil {
		t.Fatalf("lease sweep fails even without the mutation: %v", err)
	}
	t.Setenv("CODS_MUTATION", mutate.LeaseExpiryIgnored)
	if !mutate.Enabled(mutate.LeaseExpiryIgnored) {
		t.Fatal("mutation hooks not compiled in (missing -tags conformance_mutations?)")
	}
	err := probe()
	if err == nil {
		t.Fatalf("membership suite did not detect seeded defect %q", mutate.LeaseExpiryIgnored)
	}
	t.Logf("detected %q: %v", mutate.LeaseExpiryIgnored, err)
}

// detectMortonBitSwap proves the linearizer suite catches a transposed
// Morton bit interleave. The defect is a consistent relabeling of the
// index space: DHT inserts and queries route through the same mutated
// Spans, so the scenario pipeline cannot see it — only the curve's own
// contracts (Decode inverts Encode; Spans covers exactly the box's cells
// under Encode) break, on any curve of two or more dimensions.
func detectMortonBitSwap(t *testing.T) {
	probe := func() error {
		m, err := sfc.NewMorton(2, 3)
		if err != nil {
			return err
		}
		for idx := uint64(0); idx < m.Total(); idx++ {
			p := m.Decode(idx)
			if back := m.Encode(p); back != idx {
				return fmt.Errorf("morton round trip broken: decode(%d) = %v encodes back to %d", idx, p, back)
			}
		}
		box := geometry.NewBBox(geometry.Point{1, 0}, geometry.Point{5, 3})
		covered := make(map[uint64]bool)
		for _, s := range m.Spans(box) {
			for idx := s.Start; idx < s.End; idx++ {
				covered[idx] = true
			}
		}
		var cells int
		for x := 1; x < 5; x++ {
			for y := 0; y < 3; y++ {
				cells++
				if idx := m.Encode(geometry.Point{x, y}); !covered[idx] {
					return fmt.Errorf("spans miss cell (%d,%d) at index %d", x, y, idx)
				}
			}
		}
		if len(covered) != cells {
			return fmt.Errorf("spans cover %d indices, box has %d cells", len(covered), cells)
		}
		return nil
	}
	if err := probe(); err != nil {
		t.Fatalf("morton contracts fail even without the mutation: %v", err)
	}
	t.Setenv("CODS_MUTATION", mutate.MortonBitSwap)
	if !mutate.Enabled(mutate.MortonBitSwap) {
		t.Fatal("mutation hooks not compiled in (missing -tags conformance_mutations?)")
	}
	sfc.ResetSpanCache() // never compare against spans cached pre-mutation
	defer sfc.ResetSpanCache()
	err := probe()
	if err == nil {
		t.Fatalf("linearizer suite did not detect seeded defect %q", mutate.MortonBitSwap)
	}
	t.Logf("detected %q: %v", mutate.MortonBitSwap, err)
}

func TestMutationDetection(t *testing.T) {
	for _, name := range mutate.Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			if name == mutate.LeaseExpiryIgnored {
				// The lease registry lives outside the scenario pipeline;
				// its detection drives the membership layer directly.
				detectLeaseExpiryIgnored(t)
				return
			}
			if name == mutate.MortonBitSwap {
				// A consistent index-space relabeling is invisible to the
				// pipeline; the curve's own contracts catch it.
				detectMortonBitSwap(t)
				return
			}
			sc := mutationScenario(name)
			if err := sc.Validate(); err != nil {
				t.Fatalf("directed scenario invalid: %v", err)
			}
			opts := conformance.Options{Timeout: 10 * time.Second}
			if name == mutate.StaleEpoch {
				// Detection is a deliberate hang; keep the watchdog short.
				opts.Timeout = 3 * time.Second
			}
			// The wire defects only exist on the TCP path; they are what
			// the cross-backend dimension of the sweep must catch.
			runScenario := conformance.RunOpts
			switch name {
			case mutate.TCPTruncFrame, mutate.TCPMeterClass, mutate.TCPSGDrop, mutate.TCPSGReorder:
				runScenario = conformance.RunCrossOpts
			}

			// Sanity: the scenario passes with the mutation disabled —
			// what the suite detects is the defect, not the scenario.
			if err := runScenario(sc, opts); err != nil {
				t.Fatalf("scenario fails even without the mutation: %v", err)
			}

			t.Setenv("CODS_MUTATION", name)
			if !mutate.Enabled(name) {
				t.Fatal("mutation hooks not compiled in (missing -tags conformance_mutations?)")
			}
			err := runScenario(sc, opts)
			if err == nil {
				t.Fatalf("conformance suite did not detect seeded defect %q", name)
			}
			t.Logf("detected %q: %v", name, err)
		})
	}
}
