package dht

import (
	"sync"
	"testing"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/sfc"
	"github.com/insitu/cods/internal/transport"
)

func service(t testing.TB, nodes, coresPerNode, dim, bits int) (*Service, *transport.Fabric) {
	t.Helper()
	m, err := cluster.NewMachine(nodes, coresPerNode)
	if err != nil {
		t.Fatal(err)
	}
	f := transport.NewFabric(m)
	curve, err := sfc.NewCurve(dim, bits)
	if err != nil {
		t.Fatal(err)
	}
	return NewService(f, curve), f
}

func TestIntervalsPartitionIndexSpace(t *testing.T) {
	for _, nodes := range []int{1, 3, 4, 7} {
		s, _ := service(t, nodes, 2, 2, 4) // index space 256
		var prevHi uint64
		for n := 0; n < nodes; n++ {
			lo, hi := s.intervalOf(n)
			if lo != prevHi {
				t.Fatalf("nodes=%d: interval %d starts at %d, want %d", nodes, n, lo, prevHi)
			}
			if hi <= lo {
				t.Fatalf("nodes=%d: empty interval %d", nodes, n)
			}
			prevHi = hi
		}
		if prevHi != s.curve.Total() {
			t.Fatalf("nodes=%d: intervals end at %d, total %d", nodes, prevHi, s.curve.Total())
		}
	}
}

func TestNodeOfIndexConsistent(t *testing.T) {
	s, _ := service(t, 5, 2, 2, 4)
	for idx := uint64(0); idx < s.curve.Total(); idx++ {
		n := s.nodeOfIndex(idx)
		lo, hi := s.intervalOf(n)
		if idx < lo || idx >= hi {
			t.Fatalf("index %d mapped to node %d with interval [%d,%d)", idx, n, lo, hi)
		}
	}
}

func TestInsertQueryRoundTrip(t *testing.T) {
	s, f := service(t, 4, 3, 3, 4)
	cl := s.ClientAt(5)
	region := geometry.NewBBox(geometry.Point{0, 0, 0}, geometry.Point{8, 8, 8})
	e := Entry{Var: "temperature", Version: 2, Region: region, Owner: 5}
	if err := cl.Insert("p", 1, e); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Query("p", 1, "temperature", 2, region)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Owner != 5 || !got[0].Region.Equal(region) {
		t.Fatalf("Query = %+v", got)
	}
	// Different version: no results.
	got, err = cl.Query("p", 1, "temperature", 3, region)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("version 3 query = %+v", got)
	}
	// Different variable: no results.
	got, err = cl.Query("p", 1, "velocity", 2, region)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("velocity query = %+v", got)
	}
	_ = f
}

func TestQueryPartialOverlap(t *testing.T) {
	s, _ := service(t, 2, 2, 2, 4)
	cl := s.ClientAt(0)
	// Two disjoint stored blocks.
	a := Entry{Var: "v", Region: geometry.NewBBox(geometry.Point{0, 0}, geometry.Point{8, 8}), Owner: 1}
	b := Entry{Var: "v", Region: geometry.NewBBox(geometry.Point{8, 0}, geometry.Point{16, 8}), Owner: 2}
	if err := cl.Insert("p", 1, a); err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert("p", 1, b); err != nil {
		t.Fatal(err)
	}
	// A query overlapping only block a.
	got, err := cl.Query("p", 1, "v", 0, geometry.NewBBox(geometry.Point{1, 1}, geometry.Point{4, 4}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Owner != 1 {
		t.Fatalf("partial query = %+v", got)
	}
	// A query spanning both.
	got, err = cl.Query("p", 1, "v", 0, geometry.NewBBox(geometry.Point{6, 0}, geometry.Point{10, 8}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("spanning query = %+v", got)
	}
}

func TestQueryDeduplicatesAcrossDHTCores(t *testing.T) {
	// A region spanning the whole domain is registered on every DHT core;
	// a full-domain query must still return it once.
	s, _ := service(t, 4, 2, 2, 4)
	cl := s.ClientAt(3)
	region := geometry.BoxFromSize([]int{16, 16})
	if err := cl.Insert("p", 1, Entry{Var: "v", Region: region, Owner: 3}); err != nil {
		t.Fatal(err)
	}
	// The entry must be present in several tables.
	total := 0
	for n := 0; n < 4; n++ {
		total += s.TableSize(n)
	}
	if total < 2 {
		t.Fatalf("full-domain entry registered in %d tables, expected several", total)
	}
	got, err := cl.Query("p", 1, "v", 0, region)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("query returned %d entries, want 1 after dedup", len(got))
	}
}

func TestInsertIdempotent(t *testing.T) {
	s, _ := service(t, 2, 2, 2, 3)
	cl := s.ClientAt(0)
	e := Entry{Var: "v", Region: geometry.BoxFromSize([]int{4, 4}), Owner: 0}
	for i := 0; i < 3; i++ {
		if err := cl.Insert("p", 1, e); err != nil {
			t.Fatal(err)
		}
	}
	got, err := cl.Query("p", 1, "v", 0, geometry.BoxFromSize([]int{4, 4}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 {
		t.Fatalf("after re-inserts query = %d entries", len(got))
	}
}

func TestEmptyRegionRejected(t *testing.T) {
	s, _ := service(t, 2, 2, 2, 3)
	cl := s.ClientAt(0)
	empty := geometry.NewBBox(geometry.Point{1, 1}, geometry.Point{1, 1})
	if err := cl.Insert("p", 1, Entry{Var: "v", Region: empty, Owner: 0}); err == nil {
		t.Fatal("empty insert accepted")
	}
	if _, err := cl.Query("p", 1, "v", 0, empty); err == nil {
		t.Fatal("empty query accepted")
	}
}

func TestControlTrafficMetered(t *testing.T) {
	s, f := service(t, 2, 2, 2, 4)
	cl := s.ClientAt(0)
	region := geometry.BoxFromSize([]int{16, 16})
	if err := cl.Insert("ph", 7, Entry{Var: "v", Region: region, Owner: 0}); err != nil {
		t.Fatal(err)
	}
	flows := f.Machine().Metrics().Flows("ph")
	if len(flows) == 0 {
		t.Fatal("no control flows recorded")
	}
}

func TestClear(t *testing.T) {
	s, _ := service(t, 2, 2, 2, 3)
	cl := s.ClientAt(0)
	if err := cl.Insert("p", 1, Entry{Var: "v", Region: geometry.BoxFromSize([]int{8, 8}), Owner: 0}); err != nil {
		t.Fatal(err)
	}
	s.Clear()
	for n := 0; n < 2; n++ {
		if s.TableSize(n) != 0 {
			t.Fatalf("table %d not cleared", n)
		}
	}
}

func TestConcurrentInsertQuery(t *testing.T) {
	s, _ := service(t, 4, 4, 2, 5)
	var wg sync.WaitGroup
	for c := 0; c < 8; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			cl := s.ClientAt(cluster.CoreID(c))
			region := geometry.NewBBox(geometry.Point{c * 4, 0}, geometry.Point{c*4 + 4, 32})
			if err := cl.Insert("v", 1, Entry{Var: "x", Region: region, Owner: cluster.CoreID(c)}); err != nil {
				t.Error(err)
				return
			}
			if _, err := cl.Query("v", 1, "x", 0, region); err != nil {
				t.Error(err)
			}
		}(c)
	}
	wg.Wait()
	cl := s.ClientAt(0)
	got, err := cl.Query("v", 1, "x", 0, geometry.BoxFromSize([]int{32, 32}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 8 {
		t.Fatalf("final query = %d entries, want 8", len(got))
	}
}

func BenchmarkQuery(b *testing.B) {
	s, _ := service(b, 8, 4, 3, 6)
	cl := s.ClientAt(0)
	// Populate with a blocked layout of 64 regions.
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			for k := 0; k < 4; k++ {
				r := geometry.NewBBox(
					geometry.Point{i * 16, j * 16, k * 16},
					geometry.Point{(i + 1) * 16, (j + 1) * 16, (k + 1) * 16})
				if err := cl.Insert("p", 1, Entry{Var: "v", Region: r, Owner: cluster.CoreID(i)}); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
	q := geometry.NewBBox(geometry.Point{8, 8, 8}, geometry.Point{40, 40, 40})
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Query("p", 1, "v", 1, q); err != nil {
			b.Fatal(err)
		}
	}
}

func TestRemove(t *testing.T) {
	s, _ := service(t, 4, 2, 2, 4)
	cl := s.ClientAt(0)
	region := geometry.BoxFromSize([]int{16, 16})
	e := Entry{Var: "v", Version: 2, Region: region, Owner: 3}
	if err := cl.Insert("p", 1, e); err != nil {
		t.Fatal(err)
	}
	if err := cl.Remove("p", 1, e); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Query("p", 1, "v", 2, region)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatalf("entry survived removal: %v", got)
	}
	for n := 0; n < 4; n++ {
		if s.TableSize(n) != 0 {
			t.Fatalf("node %d table not empty after remove", n)
		}
	}
	// Removing again (or something never inserted) is a no-op.
	if err := cl.Remove("p", 1, e); err != nil {
		t.Fatal(err)
	}
	empty := geometry.NewBBox(geometry.Point{0, 0}, geometry.Point{0, 0})
	if err := cl.Remove("p", 1, Entry{Var: "v", Region: empty}); err == nil {
		t.Fatal("empty region remove accepted")
	}
}

func TestRemoveLeavesOtherEntries(t *testing.T) {
	s, _ := service(t, 2, 2, 2, 4)
	cl := s.ClientAt(0)
	a := Entry{Var: "v", Region: geometry.NewBBox(geometry.Point{0, 0}, geometry.Point{8, 8}), Owner: 0}
	b := Entry{Var: "v", Region: geometry.NewBBox(geometry.Point{8, 0}, geometry.Point{16, 8}), Owner: 1}
	if err := cl.Insert("p", 1, a); err != nil {
		t.Fatal(err)
	}
	if err := cl.Insert("p", 1, b); err != nil {
		t.Fatal(err)
	}
	if err := cl.Remove("p", 1, a); err != nil {
		t.Fatal(err)
	}
	got, err := cl.Query("p", 1, "v", 0, geometry.BoxFromSize([]int{16, 8}))
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || got[0].Owner != 1 {
		t.Fatalf("Query after partial remove = %v", got)
	}
}
