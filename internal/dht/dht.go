// Package dht implements the CoDS data lookup service: a distributed hash
// table that keeps track of where coupled data is stored (paper Section
// IV-A, Figure 6).
//
// The application's n-dimensional Cartesian domain is linearized with a
// Hilbert space-filling curve; the resulting 1-D index space is divided
// into contiguous intervals, one per compute node. The first core of each
// node acts as that node's DHT core and maintains a location table mapping
// (variable, version, region) to the core storing the data. Clients
// translate geometric descriptors into index spans, route inserts and
// queries to the DHT cores responsible for the overlapping intervals, and
// merge the answers.
package dht

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/mutate"
	"github.com/insitu/cods/internal/obs"
	"github.com/insitu/cods/internal/retry"
	"github.com/insitu/cods/internal/sfc"
	"github.com/insitu/cods/internal/transport"
)

// Registry instruments for the lookup service. The per-shard op counters
// are a contention proxy: a heavily skewed distribution means most
// requests serialize on one shard lock, a flat one means the sharding is
// doing its job (there is no cheap portable way to measure lock wait
// directly, so we count the operations that take each lock).
var (
	obsQueryNs     = obs.H("dht.query_ns", obs.DefaultLatencyBounds())
	obsQueryOps    = obs.C("dht.query.ops")
	obsQueryFanout = obs.C("dht.query.fanout_calls")
	obsInsertOps   = obs.C("dht.insert.ops")
	obsRemoveOps   = obs.C("dht.remove.ops")
	obsShardReads  = obs.C("dht.table.shard_reads")
	obsShardWrites = obs.C("dht.table.shard_writes")
	obsShardOps    = shardOpCounters()
	obsRetries     = obs.C("dht.retry.attempts")
	obsRecoveries  = obs.C("dht.retry.recoveries")
	obsBackoffNs   = obs.H("dht.retry.backoff_ns", obs.DefaultLatencyBounds())
)

func shardOpCounters() [tableShards]*obs.Counter {
	var out [tableShards]*obs.Counter
	for i := range out {
		out[i] = obs.C(fmt.Sprintf("dht.table.shard%02d.ops", i))
	}
	return out
}

// Entry is one location record: data for Region of variable Var at Version
// is stored in the memory of core Owner.
type Entry struct {
	Var     string
	Version int
	Region  geometry.BBox
	Owner   cluster.CoreID
}

// entrySize approximates the wire size of an Entry for control-traffic
// metering: name, version, owner and two corners.
func entrySize(e Entry) int64 {
	return int64(len(e.Var)) + 8 + 8 + int64(16*e.Region.Dim())
}

// serviceName is the RPC service identifier registered on DHT cores.
const serviceName = "cods.dht"

// request types handled by the DHT core.
type insertReq struct{ Entry Entry }

type removeReq struct{ Entry Entry }

type queryReq struct {
	Var     string
	Version int
	Region  geometry.BBox
}

type queryResp struct{ Entries []Entry }

// dumpReq asks a DHT core for every entry it holds (the observe step of a
// re-split); clearReq empties its table (a member leaving the set).
type dumpReq struct{}

type dumpResp struct{ Entries []Entry }

type clearReq struct{}

func init() {
	// DHT RPC payloads cross process boundaries under a TCP backend.
	transport.RegisterWireType(insertReq{})
	transport.RegisterWireType(removeReq{})
	transport.RegisterWireType(queryReq{})
	transport.RegisterWireType(queryResp{})
	transport.RegisterWireType(dumpReq{})
	transport.RegisterWireType(dumpResp{})
	transport.RegisterWireType(clearReq{})
}

// tableShards is the number of independently locked shards of one node's
// location table. Entries are sharded by variable name, so inserts,
// removes and queries for different variables on the same DHT core do not
// contend on one mutex. Must be a power of two.
const tableShards = 16

// tableShard is one lock domain of a node's location table.
type tableShard struct {
	mu      sync.RWMutex
	entries map[string][]Entry // key: var\x00version
}

// table is one DHT core's location table, sharded by variable.
type table struct {
	shards [tableShards]tableShard
}

func newTable() *table {
	t := &table{}
	for i := range t.shards {
		t.shards[i].entries = make(map[string][]Entry)
	}
	return t
}

// shardIndex picks the shard slot holding a variable's entries (FNV-1a
// over the variable name).
func shardIndex(v string) int {
	h := uint32(2166136261)
	for i := 0; i < len(v); i++ {
		h ^= uint32(v[i])
		h *= 16777619
	}
	return int(h & (tableShards - 1))
}

// shardOf returns the shard holding a variable's entries, counting the
// access so shard-balance is observable.
func (t *table) shardOf(v string) *tableShard {
	i := shardIndex(v)
	obsShardOps[i].Inc()
	return &t.shards[i]
}

func tkey(v string, version int) string { return fmt.Sprintf("%s\x00%d", v, version) }

// routing is one immutable interval assignment of the linearized index
// space: the alive member nodes, sorted ascending, split the curve's
// Total() indices into contiguous intervals, the remainder spread over
// the first rem members. A topology change never mutates a routing — the
// reconcile loop builds a new one and swaps the pointer, so a concurrent
// fan-out sees either the old assignment or the new one, never a blend.
type routing struct {
	alive []int
	chunk uint64
	rem   uint64
}

func newRouting(alive []int, total uint64) *routing {
	sorted := append([]int(nil), alive...)
	sort.Ints(sorted)
	n := uint64(len(sorted))
	return &routing{alive: sorted, chunk: total / n, rem: total % n}
}

// interval returns the index interval [lo, hi) of the i-th member.
func (r *routing) interval(i int) (uint64, uint64) {
	ui := uint64(i)
	lo := ui*r.chunk + minU64(ui, r.rem)
	hi := lo + r.chunk
	if ui < r.rem {
		hi++
	}
	return lo, hi
}

// memberOfIndex returns the position into alive of the member whose
// interval contains idx.
func (r *routing) memberOfIndex(idx uint64) int {
	big := r.chunk + 1
	if idx < r.rem*big {
		return int(idx / big)
	}
	if r.chunk == 0 {
		return int(r.rem) // degenerate: more members than indices
	}
	return int(r.rem + (idx-r.rem*big)/r.chunk)
}

func (r *routing) nodeOfIndex(idx uint64) int { return r.alive[r.memberOfIndex(idx)] }

// nodesForRegion returns the sorted set of member nodes responsible for
// any part of the region's index spans under this assignment.
func (r *routing) nodesForRegion(curve sfc.Linearizer, b geometry.BBox) []int {
	seen := map[int]bool{}
	for _, span := range curve.Spans(b) {
		first := r.memberOfIndex(span.Start)
		last := r.memberOfIndex(span.End - 1)
		for i := first; i <= last; i++ {
			seen[r.alive[i]] = true
		}
	}
	out := make([]int, 0, len(seen))
	for n := range seen {
		out = append(out, n)
	}
	sort.Ints(out)
	return out
}

// Service is the machine-wide lookup service. One DHT core per member node
// serves the interval of the linearized index space assigned to it by the
// current routing.
type Service struct {
	fabric *transport.Fabric
	curve  sfc.Linearizer
	tables []*table // per node

	// route is the current interval assignment; prevRoute keeps the one
	// it replaced (consulted only by the StaleRouteAfterResplit seeded
	// defect, which pins the query fan-out to the pre-migration owners).
	route     atomic.Pointer[routing]
	prevRoute atomic.Pointer[routing]

	// retryPol bounds the retrying of control RPCs against DHT cores
	// (nil = single attempt). Stored atomically so the policy can be
	// installed while clients are live.
	retryPol atomic.Pointer[retry.Policy]
}

// NewService creates the lookup service for a fabric and registers the DHT
// RPC handler on the first core of every node. curve must cover the
// workflow's coupled data domain.
func NewService(f *transport.Fabric, curve sfc.Linearizer) *Service {
	m := f.Machine()
	s := &Service{
		fabric: f,
		curve:  curve,
		tables: make([]*table, m.NumNodes()),
	}
	all := make([]int, m.NumNodes())
	for i := range all {
		all[i] = i
	}
	s.route.Store(newRouting(all, curve.Total()))
	for node := 0; node < m.NumNodes(); node++ {
		s.tables[node] = newTable()
		core := m.CoreOn(cluster.NodeID(node), 0)
		node := node
		f.Endpoint(core).RegisterHandler(serviceName, func(src cluster.CoreID, req any) (any, error) {
			return s.serve(node, req)
		})
	}
	return s
}

// Curve returns the linearizer the service uses.
func (s *Service) Curve() sfc.Linearizer { return s.curve }

// SetRetryPolicy installs the retry policy for control RPCs: inserts,
// removes and query fan-out calls that fail transiently are re-attempted
// with backoff. The zero policy disables retrying (the default).
func (s *Service) SetRetryPolicy(p retry.Policy) { s.retryPol.Store(&p) }

// retryPolicy returns the installed policy (zero when none).
func (s *Service) retryPolicy() retry.Policy {
	if p := s.retryPol.Load(); p != nil {
		return *p
	}
	return retry.Policy{}
}

// retryableRPC classifies control-RPC failures: a closed DHT core is
// terminal, everything else (injected faults in particular) is transient.
func retryableRPC(err error) bool {
	return !errors.Is(err, transport.ErrEndpointClosed)
}

// call performs one control RPC under the service's retry policy.
func (cl *Client) call(node int, req any, m transport.Meter, reqBytes, respBytes int64, seed uint64) (any, error) {
	pol := cl.svc.retryPolicy()
	attempts, resp, err := doCall(pol, seed, func() (any, error) {
		return cl.ep.Call(cl.svc.DHTCore(node), serviceName, req, m, reqBytes, respBytes)
	})
	if attempts > 1 {
		obsRetries.Add(int64(attempts - 1))
		if err == nil {
			obsRecoveries.Inc()
		}
	}
	return resp, err
}

// doCall adapts retry.Do to an operation with a result.
func doCall(pol retry.Policy, seed uint64, op func() (any, error)) (int, any, error) {
	var resp any
	attempts, err := retry.Do(pol, seed, retryableRPC,
		func(d time.Duration) { obsBackoffNs.Observe(d.Nanoseconds()) },
		func(int) error {
			var cerr error
			resp, cerr = op()
			return cerr
		})
	if err != nil {
		return attempts, nil, err
	}
	return attempts, resp, nil
}

// Members returns the node ids of the current member set, ascending.
func (s *Service) Members() []int {
	return append([]int(nil), s.route.Load().alive...)
}

// intervalOf returns the index interval [lo, hi) owned by a node under the
// current routing ((0, 0) when the node is not a member).
func (s *Service) intervalOf(node int) (uint64, uint64) {
	r := s.route.Load()
	for i, n := range r.alive {
		if n == node {
			return r.interval(i)
		}
	}
	return 0, 0
}

// nodeOfIndex returns the node whose interval contains idx.
func (s *Service) nodeOfIndex(idx uint64) int {
	return s.route.Load().nodeOfIndex(idx)
}

// nodesForRegion returns the sorted set of nodes responsible for any part
// of the region's index spans under the current routing.
func (s *Service) nodesForRegion(b geometry.BBox) []int {
	return s.route.Load().nodesForRegion(s.curve, b)
}

// queryRouting is the assignment the query fan-out consults. The seeded
// StaleRouteAfterResplit defect pins it to the routing that predates the
// last re-split, so lookups go to the pre-migration interval owners —
// including departed members whose tables were handed off and cleared.
func (s *Service) queryRouting() *routing {
	if mutate.Enabled(mutate.StaleRouteAfterResplit) {
		if old := s.prevRoute.Load(); old != nil {
			return old
		}
	}
	return s.route.Load()
}

// DHTCore returns the core acting as the DHT core of a node.
func (s *Service) DHTCore(node int) cluster.CoreID {
	return s.fabric.Machine().CoreOn(cluster.NodeID(node), 0)
}

// serve processes one RPC on the DHT core of node. Writes take the
// affected variable's shard lock exclusively; queries only read-lock it,
// so concurrent lookups of the same variable proceed in parallel.
func (s *Service) serve(node int, req any) (any, error) {
	t := s.tables[node]
	switch r := req.(type) {
	case insertReq:
		obsShardWrites.Inc()
		sh := t.shardOf(r.Entry.Var)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		k := tkey(r.Entry.Var, r.Entry.Version)
		for _, e := range sh.entries[k] {
			if e.Owner == r.Entry.Owner && e.Region.Equal(r.Entry.Region) {
				return nil, nil // idempotent re-insert
			}
		}
		sh.entries[k] = append(sh.entries[k], r.Entry)
		return nil, nil
	case removeReq:
		obsShardWrites.Inc()
		sh := t.shardOf(r.Entry.Var)
		sh.mu.Lock()
		defer sh.mu.Unlock()
		k := tkey(r.Entry.Var, r.Entry.Version)
		entries := sh.entries[k]
		for i, e := range entries {
			if e.Owner == r.Entry.Owner && e.Region.Equal(r.Entry.Region) {
				sh.entries[k] = append(entries[:i], entries[i+1:]...)
				break
			}
		}
		if len(sh.entries[k]) == 0 {
			delete(sh.entries, k)
		}
		return nil, nil
	case queryReq:
		obsShardReads.Inc()
		sh := t.shardOf(r.Var)
		sh.mu.RLock()
		defer sh.mu.RUnlock()
		var out []Entry
		for _, e := range sh.entries[tkey(r.Var, r.Version)] {
			if e.Region.Overlaps(r.Region) {
				out = append(out, e)
			}
		}
		return queryResp{Entries: out}, nil
	case dumpReq:
		obsShardReads.Inc()
		var out []Entry
		for i := range t.shards {
			sh := &t.shards[i]
			sh.mu.RLock()
			for _, es := range sh.entries {
				out = append(out, es...)
			}
			sh.mu.RUnlock()
		}
		return dumpResp{Entries: out}, nil
	case clearReq:
		obsShardWrites.Inc()
		for i := range t.shards {
			sh := &t.shards[i]
			sh.mu.Lock()
			sh.entries = make(map[string][]Entry)
			sh.mu.Unlock()
		}
		return nil, nil
	default:
		return nil, fmt.Errorf("dht: unknown request type %T", req)
	}
}

// Client is a per-core handle used by execution clients to talk to the
// lookup service.
type Client struct {
	svc  *Service
	ep   *transport.Endpoint
	span uint64
}

// ClientAt returns a lookup client bound to the endpoint of core c.
func (s *Service) ClientAt(c cluster.CoreID) *Client {
	return &Client{svc: s, ep: s.fabric.Endpoint(c)}
}

// WithSpan returns a copy of the client whose control RPCs carry the
// given span id (obs.SpanID) as wire trace context, so a remote DHT
// core's handler spans parent under the caller's span. 0 clears it.
func (cl *Client) WithSpan(id uint64) *Client {
	out := *cl
	out.span = id
	return &out
}

// meter classifies DHT control traffic; it is framework bookkeeping
// attached to the requesting application and kept separate from the
// coupled-data payload counters the figures report. The client's span
// context rides along for distributed tracing.
func (cl *Client) meter(phase string, app int) transport.Meter {
	return transport.Meter{Phase: phase, Class: cluster.Control, DstApp: app, Span: cl.span}
}

// Insert registers the location of a stored region with every DHT core
// responsible for its index spans.
func (cl *Client) Insert(phase string, app int, e Entry) error {
	if e.Region.Empty() {
		return fmt.Errorf("dht: inserting empty region for %q", e.Var)
	}
	nodes := cl.svc.nodesForRegion(e.Region)
	if len(nodes) == 0 {
		return fmt.Errorf("dht: region %v outside the curve domain", e.Region)
	}
	obsInsertOps.Inc()
	size := entrySize(e)
	for _, node := range nodes {
		if _, err := cl.call(node, insertReq{Entry: e},
			cl.meter(phase, app), size, 8, rpcSeed(cl.ep.Core(), node, 1)); err != nil {
			return fmt.Errorf("dht: insert on node %d: %w", node, err)
		}
	}
	return nil
}

// rpcSeed derives the deterministic jitter seed of one control RPC.
func rpcSeed(core cluster.CoreID, node, op int) uint64 {
	return uint64(core)<<24 ^ uint64(uint32(node))<<8 ^ uint64(uint32(op))
}

// Remove withdraws a location record from every DHT core responsible for
// its index spans (idempotent: removing an absent entry is a no-op).
func (cl *Client) Remove(phase string, app int, e Entry) error {
	if e.Region.Empty() {
		return fmt.Errorf("dht: removing empty region for %q", e.Var)
	}
	obsRemoveOps.Inc()
	size := entrySize(e)
	for _, node := range cl.svc.nodesForRegion(e.Region) {
		if _, err := cl.call(node, removeReq{Entry: e},
			cl.meter(phase, app), size, 8, rpcSeed(cl.ep.Core(), node, 2)); err != nil {
			return fmt.Errorf("dht: remove on node %d: %w", node, err)
		}
	}
	return nil
}

// Query returns the deduplicated location entries overlapping the region
// for a variable version, gathered from all responsible DHT cores.
func (cl *Client) Query(phase string, app int, v string, version int, region geometry.BBox) ([]Entry, error) {
	if region.Empty() {
		return nil, fmt.Errorf("dht: querying empty region for %q", v)
	}
	req := queryReq{Var: v, Version: version, Region: region}
	reqSize := int64(len(v)) + 8 + int64(16*region.Dim())
	nodes := cl.svc.queryRouting().nodesForRegion(cl.svc.curve, region)
	// Meter the whole fan-out — span translation, the concurrent per-node
	// RPCs, and the deduplicating merge — as one query latency sample.
	var queryStart time.Time
	if obs.Enabled() {
		queryStart = time.Now()
		obsQueryOps.Inc()
		obsQueryFanout.Add(int64(len(nodes)))
		defer func() { obsQueryNs.Observe(time.Since(queryStart).Nanoseconds()) }()
	}
	// Fan the per-node lookups out concurrently: a region spanning several
	// DHT intervals pays one round trip instead of len(nodes). Results are
	// gathered per node index, keeping the merge deterministic.
	results := make([][]Entry, len(nodes))
	errs := make([]error, len(nodes))
	if len(nodes) == 1 {
		resp, err := cl.call(nodes[0], req, cl.meter(phase, app), reqSize, 8,
			rpcSeed(cl.ep.Core(), nodes[0], 3))
		if err != nil {
			errs[0] = err
		} else {
			results[0] = resp.(queryResp).Entries
		}
	} else {
		var wg sync.WaitGroup
		for i, node := range nodes {
			wg.Add(1)
			go func(i, node int) {
				defer wg.Done()
				resp, err := cl.call(node, req, cl.meter(phase, app), reqSize, 8,
					rpcSeed(cl.ep.Core(), node, 3))
				if err != nil {
					errs[i] = err
					return
				}
				results[i] = resp.(queryResp).Entries
			}(i, node)
		}
		wg.Wait()
	}
	var all []Entry
	for i := range nodes {
		if errs[i] != nil {
			return nil, fmt.Errorf("dht: query on node %d: %w", nodes[i], errs[i])
		}
		// Response size depends on the answer; metering the body would
		// require a second record; the fixed 8 bytes above covers the
		// header and the body is small control traffic.
		all = append(all, results[i]...)
	}
	// Deduplicate: the same entry is registered on every DHT core its
	// spans touch.
	sort.Slice(all, func(i, j int) bool {
		if all[i].Owner != all[j].Owner {
			return all[i].Owner < all[j].Owner
		}
		return geometry.Compare(all[i].Region, all[j].Region) < 0
	})
	out := all[:0]
	for i, e := range all {
		if i > 0 && e.Owner == all[i-1].Owner && e.Region.Equal(all[i-1].Region) {
			continue
		}
		out = append(out, e)
	}
	return out, nil
}

// Resplit converges the location tables onto a new member set — the
// migrate half of the membership reconcile loop's observe → diff →
// converge step. Every surviving entry is re-registered with the members
// responsible for its region under the new interval assignment (inserts
// are idempotent, so overlap with the old assignment is harmless),
// departed members have their tables cleared, and surviving members drop
// the entries that moved away from them. Entries held only by an
// unreachable departed member (a crash, not a graceful departure) cannot
// be observed here — the caller's staged-block ledger re-registers them.
// Returns the number of entry handoffs (re-registrations) performed.
//
// The routing swap happens between the re-registration and the pruning,
// so a concurrent query sees either the old assignment with the old
// tables intact or the new assignment with the entries already in place.
func (cl *Client) Resplit(phase string, app int, alive []int) (int, error) {
	s := cl.svc
	if len(alive) == 0 {
		return 0, fmt.Errorf("dht: resplit to an empty member set")
	}
	for _, n := range alive {
		if n < 0 || n >= s.fabric.Machine().NumNodes() {
			return 0, fmt.Errorf("dht: resplit member %d out of range", n)
		}
	}
	old := s.route.Load()
	next := newRouting(alive, s.curve.Total())
	aliveSet := make(map[int]bool, len(next.alive))
	for _, n := range next.alive {
		aliveSet[n] = true
	}
	// Observe: dump every old member's table. A departed member that is
	// already unreachable is skipped — its records are lost with it.
	type dumped struct {
		node    int
		entries []Entry
	}
	var dumps []dumped
	for _, node := range old.alive {
		resp, err := cl.call(node, dumpReq{}, cl.meter(phase, app), 8, 8,
			rpcSeed(cl.ep.Core(), node, 4))
		if err != nil {
			if aliveSet[node] {
				return 0, fmt.Errorf("dht: dumping node %d: %w", node, err)
			}
			continue
		}
		dumps = append(dumps, dumped{node, resp.(dumpResp).Entries})
	}
	// Converge: register each surviving record with its new owners.
	moved := 0
	for _, d := range dumps {
		for _, e := range d.entries {
			for _, node := range next.nodesForRegion(s.curve, e.Region) {
				if node == d.node {
					continue
				}
				if _, err := cl.call(node, insertReq{Entry: e},
					cl.meter(phase, app), entrySize(e), 8, rpcSeed(cl.ep.Core(), node, 1)); err != nil {
					return moved, fmt.Errorf("dht: handing off to node %d: %w", node, err)
				}
				moved++
			}
		}
	}
	// Swap the assignment, keeping the old one for the seeded
	// stale-route defect to consult.
	s.prevRoute.Store(old)
	s.route.Store(next)
	// Prune: departed members drop everything (best effort — the process
	// may already be gone), survivors drop what moved away from them.
	for _, d := range dumps {
		if !aliveSet[d.node] {
			_, _ = cl.call(d.node, clearReq{}, cl.meter(phase, app), 8, 8,
				rpcSeed(cl.ep.Core(), d.node, 5))
			continue
		}
		for _, e := range d.entries {
			still := false
			for _, node := range next.nodesForRegion(s.curve, e.Region) {
				if node == d.node {
					still = true
					break
				}
			}
			if still {
				continue
			}
			if _, err := cl.call(d.node, removeReq{Entry: e},
				cl.meter(phase, app), entrySize(e), 8, rpcSeed(cl.ep.Core(), d.node, 2)); err != nil {
				return moved, fmt.Errorf("dht: pruning node %d: %w", d.node, err)
			}
		}
	}
	return moved, nil
}

// TableSize reports how many entries the DHT core of a node currently
// holds (for tests and diagnostics).
func (s *Service) TableSize(node int) int {
	t := s.tables[node]
	n := 0
	for i := range t.shards {
		sh := &t.shards[i]
		sh.mu.RLock()
		for _, es := range sh.entries {
			n += len(es)
		}
		sh.mu.RUnlock()
	}
	return n
}

// Clear removes all entries from every location table (between workflow
// stages of independent experiments).
func (s *Service) Clear() {
	for _, t := range s.tables {
		for i := range t.shards {
			sh := &t.shards[i]
			sh.mu.Lock()
			sh.entries = make(map[string][]Entry)
			sh.mu.Unlock()
		}
	}
}

func minU64(a, b uint64) uint64 {
	if a < b {
		return a
	}
	return b
}
