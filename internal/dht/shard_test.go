package dht

import (
	"fmt"
	"sync"
	"testing"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/sfc"
	"github.com/insitu/cods/internal/transport"
)

func shardRig(t testing.TB, nodes, cores, dim, bits int) *Service {
	t.Helper()
	m, err := cluster.NewMachine(nodes, cores)
	if err != nil {
		t.Fatal(err)
	}
	curve, err := sfc.NewCurve(dim, bits)
	if err != nil {
		t.Fatal(err)
	}
	return NewService(transport.NewFabric(m), curve)
}

// TestShardedTableConsistency: entries of many variables land in different
// shards, yet TableSize, Query and Clear see the union.
func TestShardedTableConsistency(t *testing.T) {
	s := shardRig(t, 2, 2, 2, 4)
	cl := s.ClientAt(0)
	region := geometry.BoxFromSize([]int{16, 16})
	const vars = 64
	for i := 0; i < vars; i++ {
		e := Entry{Var: fmt.Sprintf("v%03d", i), Version: 1, Region: region, Owner: 1}
		if err := cl.Insert("t", 1, e); err != nil {
			t.Fatal(err)
		}
	}
	total := 0
	for n := 0; n < 2; n++ {
		total += s.TableSize(n)
	}
	// The full-domain region spans both nodes' intervals, so every entry
	// registers on both DHT cores.
	if total != 2*vars {
		t.Fatalf("total table size = %d, want %d", total, 2*vars)
	}
	for i := 0; i < vars; i++ {
		got, err := cl.Query("t", 1, fmt.Sprintf("v%03d", i), 1, region)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != 1 {
			t.Fatalf("var %d: %d entries, want 1 (dedup across nodes)", i, len(got))
		}
	}
	s.Clear()
	for n := 0; n < 2; n++ {
		if s.TableSize(n) != 0 {
			t.Fatalf("node %d not empty after Clear", n)
		}
	}
}

// TestConcurrentInsertQueryRemove hammers the sharded tables from many
// goroutines touching distinct variables (run under -race).
func TestConcurrentInsertQueryRemove(t *testing.T) {
	s := shardRig(t, 4, 4, 2, 5)
	region := geometry.BoxFromSize([]int{32, 32})
	const goroutines = 16
	const iterations = 25
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := s.ClientAt(cluster.CoreID(g))
			v := fmt.Sprintf("var%d", g)
			for it := 0; it < iterations; it++ {
				e := Entry{Var: v, Version: it, Region: region, Owner: cluster.CoreID(g)}
				if err := cl.Insert("t", 1, e); err != nil {
					errCh <- err
					return
				}
				got, err := cl.Query("t", 1, v, it, region)
				if err != nil {
					errCh <- err
					return
				}
				if len(got) != 1 {
					errCh <- fmt.Errorf("goroutine %d it %d: %d entries, want 1", g, it, len(got))
					return
				}
				if err := cl.Remove("t", 1, e); err != nil {
					errCh <- err
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	for n := 0; n < 4; n++ {
		if s.TableSize(n) != 0 {
			t.Fatalf("node %d retains %d entries after balanced insert/remove", n, s.TableSize(n))
		}
	}
}

// TestConcurrentQuerySameVariable: parallel readers of one variable share
// the shard read-lock and must all see the same answer.
func TestConcurrentQuerySameVariable(t *testing.T) {
	s := shardRig(t, 2, 4, 2, 4)
	region := geometry.BoxFromSize([]int{16, 16})
	if err := s.ClientAt(0).Insert("t", 1, Entry{Var: "hot", Version: 7, Region: region, Owner: 3}); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cl := s.ClientAt(cluster.CoreID(g))
			for i := 0; i < 50; i++ {
				got, err := cl.Query("t", 1, "hot", 7, region)
				if err != nil {
					errCh <- err
					return
				}
				if len(got) != 1 || got[0].Owner != 3 {
					errCh <- fmt.Errorf("reader %d: got %+v", g, got)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
}
