package dht

import (
	"errors"
	"testing"
	"time"

	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/retry"
	"github.com/insitu/cods/internal/transport"
)

func callFaultPlan(t *testing.T, src string) *transport.FaultPlan {
	t.Helper()
	p, err := transport.ParseFaultPlan([]byte(src))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// A control RPC that fails transiently is retried under the service policy
// and the round trip still succeeds.
func TestCallRetryRecoversInjectedFault(t *testing.T) {
	s, f := service(t, 4, 2, 2, 4)
	f.SetFaultPlan(callFaultPlan(t,
		`{"rules": [{"op": "call", "mode": "error", "from_op": 0, "to_op": 1}]}`))
	s.SetRetryPolicy(retry.Policy{
		MaxAttempts: 3,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
		Multiplier:  2,
	})
	cl := s.ClientAt(0)
	region := geometry.NewBBox(geometry.Point{0, 0}, geometry.Point{4, 4})
	if err := cl.Insert("p", 1, Entry{Var: "v", Region: region, Owner: 3}); err != nil {
		t.Fatalf("Insert under faults: %v", err)
	}
	got, err := cl.Query("p", 1, "v", 0, region)
	if err != nil {
		t.Fatalf("Query under faults: %v", err)
	}
	if len(got) != 1 || got[0].Owner != 3 {
		t.Fatalf("Query = %+v", got)
	}
	if f.FaultsInjected() != 1 {
		t.Fatalf("FaultsInjected = %d, want 1", f.FaultsInjected())
	}
}

// Without a policy the injected fault surfaces to the caller unchanged.
func TestCallNoPolicyFailsFast(t *testing.T) {
	s, f := service(t, 4, 2, 2, 4)
	f.SetFaultPlan(callFaultPlan(t,
		`{"rules": [{"op": "call", "mode": "error", "from_op": 0, "to_op": 1}]}`))
	cl := s.ClientAt(0)
	region := geometry.NewBBox(geometry.Point{0, 0}, geometry.Point{4, 4})
	err := cl.Insert("p", 1, Entry{Var: "v", Region: region, Owner: 3})
	if !errors.Is(err, transport.ErrInjected) {
		t.Fatalf("Insert error = %v, want ErrInjected", err)
	}
}

// A closed DHT core is terminal: the policy must not burn its attempt
// budget against an endpoint that will never answer.
func TestCallClosedEndpointNotRetried(t *testing.T) {
	s, f := service(t, 2, 2, 2, 4)
	s.SetRetryPolicy(retry.Policy{
		MaxAttempts: 5,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
		Multiplier:  2,
	})
	for n := 0; n < 2; n++ {
		f.Endpoint(s.DHTCore(n)).Close()
	}
	cl := s.ClientAt(1)
	region := geometry.NewBBox(geometry.Point{0, 0}, geometry.Point{4, 4})
	start := time.Now()
	err := cl.Insert("p", 1, Entry{Var: "v", Region: region, Owner: 1})
	if !errors.Is(err, transport.ErrEndpointClosed) {
		t.Fatalf("Insert error = %v, want ErrEndpointClosed", err)
	}
	// Five attempts with backoff would sleep; a terminal error returns at
	// once. Generous bound keeps this robust on loaded CI machines.
	if d := time.Since(start); d > time.Second {
		t.Fatalf("terminal error took %v, looks retried", d)
	}
}
