package dht

import (
	"testing"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/geometry"
)

// insertGrid registers one entry per 4x4 block of a 16x16 domain, owned by
// round-robin cores, and returns them.
func insertGrid(t *testing.T, cl *Client, cores int) []Entry {
	t.Helper()
	var entries []Entry
	i := 0
	for x := 0; x < 16; x += 4 {
		for y := 0; y < 16; y += 4 {
			e := Entry{
				Var:     "pressure",
				Version: 1,
				Region:  geometry.NewBBox(geometry.Point{x, y}, geometry.Point{x + 4, y + 4}),
				Owner:   cluster.CoreID(i % cores),
			}
			if err := cl.Insert("p", 1, e); err != nil {
				t.Fatal(err)
			}
			entries = append(entries, e)
			i++
		}
	}
	return entries
}

func queryAll(t *testing.T, cl *Client, entries []Entry) {
	t.Helper()
	for _, e := range entries {
		got, err := cl.Query("p", 1, e.Var, e.Version, e.Region)
		if err != nil {
			t.Fatal(err)
		}
		found := false
		for _, g := range got {
			if g.Owner == e.Owner && g.Region.Equal(e.Region) {
				found = true
			}
		}
		if !found {
			t.Fatalf("entry %+v not found after resplit (got %d entries)", e, len(got))
		}
	}
}

func TestResplitMigratesEntriesAndRemapsIntervals(t *testing.T) {
	s, _ := service(t, 4, 2, 2, 4) // 4 nodes, index space 256
	cl := s.ClientAt(1)
	entries := insertGrid(t, cl, 8)

	moved, err := cl.Resplit("p", 1, []int{0, 1, 3})
	if err != nil {
		t.Fatal(err)
	}
	if moved == 0 {
		t.Fatal("resplit dropping a member moved no entries")
	}
	if got := s.Members(); len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 3 {
		t.Fatalf("members after resplit: %v", got)
	}
	if lo, hi := s.intervalOf(2); lo != 0 || hi != 0 {
		t.Fatalf("departed member still owns [%d,%d)", lo, hi)
	}
	if n := s.TableSize(2); n != 0 {
		t.Fatalf("departed member retains %d entries", n)
	}
	// The surviving members' intervals partition the whole index space.
	var prevHi uint64
	for _, n := range s.Members() {
		lo, hi := s.intervalOf(n)
		if lo != prevHi || hi <= lo {
			t.Fatalf("member %d interval [%d,%d), want start %d", n, lo, hi, prevHi)
		}
		prevHi = hi
	}
	if prevHi != s.curve.Total() {
		t.Fatalf("intervals end at %d, want %d", prevHi, s.curve.Total())
	}
	// Every record is still found, and new inserts route to survivors only.
	queryAll(t, cl, entries)
	e := Entry{Var: "pressure", Version: 2,
		Region: geometry.NewBBox(geometry.Point{0, 0}, geometry.Point{16, 16}), Owner: 3}
	if err := cl.Insert("p", 1, e); err != nil {
		t.Fatal(err)
	}
	if n := s.TableSize(2); n != 0 {
		t.Fatalf("insert after resplit landed %d entries on departed member", n)
	}
}

func TestResplitRejoinRestoresFullMemberSet(t *testing.T) {
	s, _ := service(t, 3, 2, 2, 4)
	cl := s.ClientAt(0)
	entries := insertGrid(t, cl, 6)
	if _, err := cl.Resplit("p", 1, []int{0, 2}); err != nil {
		t.Fatal(err)
	}
	queryAll(t, cl, entries)
	// The replacement joins back: the full set is re-established and the
	// rejoined member's table is repopulated by the handoff.
	if _, err := cl.Resplit("p", 1, []int{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	queryAll(t, cl, entries)
	if n := s.TableSize(1); n == 0 {
		t.Fatal("rejoined member received no entries")
	}
}

func TestResplitSkipsCrashedDepartedMember(t *testing.T) {
	s, f := service(t, 3, 2, 2, 4)
	cl := s.ClientAt(0)
	insertGrid(t, cl, 6)
	// The member crashes before departing: its DHT core is unreachable,
	// so its records cannot be observed — the resplit must still converge
	// the survivors instead of failing.
	f.Endpoint(s.DHTCore(1)).Close()
	if _, err := cl.Resplit("p", 1, []int{0, 2}); err != nil {
		t.Fatal(err)
	}
	if got := s.Members(); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Fatalf("members after crash resplit: %v", got)
	}
}
