//go:build conformance_mutations

package mutate

import "os"

// Enabled reports whether the named seeded defect is active: it is when
// the CODS_MUTATION environment variable names it. Reading the variable
// per call lets one test process activate the defects one at a time.
func Enabled(name string) bool { return os.Getenv("CODS_MUTATION") == name }
