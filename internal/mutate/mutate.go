// Package mutate hosts the seeded-defect switchboard the conformance
// harness uses to validate itself (DESIGN §5e). A handful of call sites in
// geometry, sfc, cods and transport consult Enabled(name); in a normal
// build Enabled is a constant false that the compiler erases, so the
// production pipeline carries no mutation code at all. Building with
//
//	go test -tags conformance_mutations
//
// swaps in the environment-driven implementation (mutate_on.go): setting
// CODS_MUTATION=<name> activates exactly one seeded bug, and the mutation
// detection test asserts the conformance suite fails under every one of
// them while passing with none active.
package mutate

// The seeded defect names. Each names one deliberate bug at one call site;
// see the mutation detection test for the scenario that catches each.
const (
	// GeomIntersect shrinks every non-degenerate intersection by one cell
	// along dimension 0 (the classic inclusive/exclusive bound slip).
	GeomIntersect = "geom-intersect"
	// SfcSpanSplit mangles the span decomposition of a region: the last
	// span is dropped (or a lone span shortened), so DHT routing misses
	// the tail of the linearized index range.
	SfcSpanSplit = "sfc-span-split"
	// DropCoalesce loses the last transfer of a coalesced communication
	// schedule, as if the merge had swallowed a sub-box.
	DropCoalesce = "drop-coalesce"
	// StaleEpoch ignores the schedule-cache invalidation stamp, serving
	// cached schedules that point at discarded or restaged owners.
	StaleEpoch = "stale-epoch"
	// SwapFlow records every fabric transfer with source and destination
	// exchanged, corrupting the flow log while leaving totals intact.
	SwapFlow = "swap-flow"
	// NoRequery disables GetSequential's lookup re-query after an
	// exhausted pull, so a healed owner is never found again.
	NoRequery = "no-requery"
	// TCPTruncFrame truncates every encoded TCP wire frame by one byte
	// before the length prefix is computed, so the peer's strict decoder
	// rejects the frame — the classic short-write bug.
	TCPTruncFrame = "tcp-trunc-frame"
	// TCPMeterClass swaps the InterApp and Control meter classes on the
	// TCP wire, so the serving side books coupled data as control traffic.
	TCPMeterClass = "tcp-meter-class"
	// TCPSGDrop makes the scatter-gather server announce and stream one
	// segment fewer than requested, as if the batch had swallowed its last
	// sub-box — the batched twin of DropCoalesce, living on the wire.
	TCPSGDrop = "tcp-sg-drop"
	// TCPSGReorder swaps the payloads of the first two scatter-gather
	// segments while keeping their indices intact: the stream stays
	// protocol-valid but delivers the wrong bytes into each slot.
	TCPSGReorder = "tcp-sg-reorder"
	// ObsFlowMisattribute credits every cross-node cell of the aggregated
	// flow matrix to the wrong destination node (dst+1), leaving per-cell
	// and total byte counts intact — the observability-plane twin of
	// SwapFlow, living in the aggregation instead of the recording.
	ObsFlowMisattribute = "obs-flow-misattribute"
	// StaleRouteAfterResplit keeps the DHT query fan-out on the routing
	// table that predates the last interval re-split, so lookups after a
	// topology change are sent to the pre-migration interval owners —
	// including departed nodes whose tables were handed off and cleared.
	StaleRouteAfterResplit = "stale-route-after-resplit"
	// LeaseExpiryIgnored makes the membership registry's expiry sweep treat
	// every lease as live, so a crashed node that stopped renewing is never
	// marked expired and the reconcile loop never converges around it.
	LeaseExpiryIgnored = "lease-expiry-ignored"
	// StaleWatermarkServed makes a stream's GetLatest serve the version one
	// behind the complete watermark whenever an older version is still
	// retained — the consumer silently reads stale data inside the lag
	// window instead of the freshest complete version.
	StaleWatermarkServed = "stale-watermark-served"
	// GCBeforeConsume widens the drop-oldest retirement bound by one, so a
	// version the lag bound still entitles consumers to read is retired
	// (and its blocks discarded) before every cursor has passed it.
	GCBeforeConsume = "gc-before-consume"
	// VersionSkipOnResubscribe starts a resubscribing cursor one version
	// past the position it asked for, so the first unconsumed version is
	// silently skipped across a Close/SubscribeFrom boundary.
	VersionSkipOnResubscribe = "version-skip-on-resubscribe"
	// RemapStaleOwner makes the remap executor leave the pre-migration
	// owner's location record registered while its copy of the block is
	// already discarded, so even after the epoch bump lookups keep routing
	// pulls to the old owner — the adaptive-remapping twin of StaleEpoch,
	// living in the lookup plane instead of the schedule cache.
	RemapStaleOwner = "remap-stale-owner"
	// MortonBitSwap transposes the Morton bit interleave: bit l of
	// dimension d lands at l*dim+d instead of l*dim+(dim-1-d), so Encode
	// and Spans disagree about which cells an aligned index range covers
	// (Decode keeps the correct layout, breaking the round trip).
	MortonBitSwap = "morton-bit-swap"
)

// Names lists every seeded defect, in a stable order.
func Names() []string {
	return []string{GeomIntersect, SfcSpanSplit, DropCoalesce, StaleEpoch, SwapFlow, NoRequery,
		TCPTruncFrame, TCPMeterClass, TCPSGDrop, TCPSGReorder, ObsFlowMisattribute,
		StaleRouteAfterResplit, LeaseExpiryIgnored,
		StaleWatermarkServed, GCBeforeConsume, VersionSkipOnResubscribe,
		RemapStaleOwner, MortonBitSwap}
}
