//go:build !conformance_mutations

package mutate

// Enabled reports whether the named seeded defect is active. In normal
// builds no defect ever is; the constant false lets the compiler remove
// the mutation branches entirely.
func Enabled(string) bool { return false }
