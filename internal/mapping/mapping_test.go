package mapping

import (
	"strings"
	"testing"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/decomp"
	"github.com/insitu/cods/internal/dht"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/graph"
	"github.com/insitu/cods/internal/partition"
	"github.com/insitu/cods/internal/sfc"
	"github.com/insitu/cods/internal/transport"
)

func mustDecomp(t testing.TB, kind decomp.Kind, size, grid []int) *decomp.Decomposition {
	t.Helper()
	dc, err := decomp.New(kind, geometry.BoxFromSize(size), grid, nil)
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

func machine(t testing.TB, nodes, cores int) *cluster.Machine {
	t.Helper()
	m, err := cluster.NewMachine(nodes, cores)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

// concurrentScenario: producer 32 tasks, consumer 8 tasks over a 16^3
// domain on 12 nodes x 4 cores.
func concurrentScenario(t testing.TB) (*cluster.Machine, Bundle) {
	m := machine(t, 12, 4)
	size := []int{16, 16, 16}
	prod := mustDecomp(t, decomp.Blocked, size, []int{4, 4, 2})
	cons := mustDecomp(t, decomp.Blocked, size, []int{2, 2, 2})
	return m, Bundle{
		Apps:      []graph.App{{ID: 1, Decomp: prod}, {ID: 2, Decomp: cons}},
		Couplings: [][2]int{{1, 2}},
	}
}

func TestRoundRobinPlacesAllTasks(t *testing.T) {
	m, b := concurrentScenario(t)
	p, err := RoundRobin(m, b.Apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 40 {
		t.Fatalf("placed %d tasks, want 40", p.Len())
	}
	// Round-robin: the first 12 tasks land on distinct nodes.
	seen := map[cluster.NodeID]bool{}
	for r := 0; r < 12; r++ {
		n, _ := p.NodeOfTask(cluster.TaskID{App: 1, Rank: r})
		if seen[n] {
			t.Fatalf("round-robin placed two early tasks on node %d", n)
		}
		seen[n] = true
	}
}

func TestRoundRobinCapacity(t *testing.T) {
	m := machine(t, 2, 2)
	dc := mustDecomp(t, decomp.Blocked, []int{8}, []int{5})
	if _, err := RoundRobin(m, []graph.App{{ID: 1, Decomp: dc}}, nil); err == nil {
		t.Fatal("over-capacity placement accepted")
	}
}

func TestRoundRobinSpillsToNextNode(t *testing.T) {
	m := machine(t, 2, 2)
	dc := mustDecomp(t, decomp.Blocked, []int{8}, []int{4})
	p, err := RoundRobin(m, []graph.App{{ID: 1, Decomp: dc}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 4 {
		t.Fatalf("placed %d", p.Len())
	}
}

func TestServerDataCentricReducesNetworkBytes(t *testing.T) {
	m, b := concurrentScenario(t)
	rr, err := RoundRobin(m, b.Apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	dataCentric, err := ServerDataCentric(m, b, nil, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	prod, cons := b.Apps[0], b.Apps[1]
	trRR, err := CoupledTraffic(m, rr, rr, prod, cons, 8)
	if err != nil {
		t.Fatal(err)
	}
	trDC, err := CoupledTraffic(m, dataCentric, dataCentric, prod, cons, 8)
	if err != nil {
		t.Fatal(err)
	}
	total := int64(16*16*16) * 8
	if trRR.Total() != total || trDC.Total() != total {
		t.Fatalf("coupled totals: rr %d, dc %d, want %d", trRR.Total(), trDC.Total(), total)
	}
	if trDC.Network*2 > trRR.Network {
		t.Fatalf("data-centric network bytes %d not clearly below round-robin %d", trDC.Network, trRR.Network)
	}
}

func TestServerDataCentricRespectsNodeCapacity(t *testing.T) {
	m, b := concurrentScenario(t)
	p, err := ServerDataCentric(m, b, nil, 8, 7)
	if err != nil {
		t.Fatal(err)
	}
	perNode := map[cluster.NodeID]int{}
	for _, task := range p.Tasks() {
		n, _ := p.NodeOfTask(task)
		perNode[n]++
	}
	for n, c := range perNode {
		if c > m.CoresPerNode() {
			t.Fatalf("node %d has %d tasks, capacity %d", n, c, m.CoresPerNode())
		}
	}
}

func TestServerDataCentricDeterministic(t *testing.T) {
	m, b := concurrentScenario(t)
	p1, err := ServerDataCentric(m, b, nil, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := ServerDataCentric(m, b, nil, 8, 99)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range p1.Tasks() {
		c1 := p1.MustCoreOf(task)
		c2 := p2.MustCoreOf(task)
		if c1 != c2 {
			t.Fatalf("task %v placed on %d and %d for the same seed", task, c1, c2)
		}
	}
}

// sequentialScenario stores producer data in a lookup service and returns
// everything the client-side mapping needs.
func sequentialScenario(t testing.TB) (*cluster.Machine, *dht.Service, *cluster.Placement, graph.App, []Consumer) {
	m := machine(t, 8, 4)
	f := transport.NewFabric(m)
	size := []int{16, 16, 16}
	curve, err := sfc.CurveForDomain(size)
	if err != nil {
		t.Fatal(err)
	}
	lookup := dht.NewService(f, curve)

	prod := graph.App{ID: 1, Decomp: mustDecomp(t, decomp.Blocked, size, []int{4, 4, 2})}
	prodPl, err := RoundRobin(m, []graph.App{prod}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// The producer stored one block per task on its own core.
	for r := 0; r < prod.Decomp.NumTasks(); r++ {
		core := prodPl.MustCoreOf(cluster.TaskID{App: 1, Rank: r})
		cl := lookup.ClientAt(core)
		for _, blk := range prod.Decomp.Region(r) {
			if err := cl.Insert("store", 1, dht.Entry{Var: "v", Version: 0, Region: blk, Owner: core}); err != nil {
				t.Fatal(err)
			}
		}
	}
	consumers := []Consumer{
		{App: graph.App{ID: 2, Decomp: mustDecomp(t, decomp.Blocked, size, []int{2, 2, 2})}, Var: "v", Version: 0},
		{App: graph.App{ID: 3, Decomp: mustDecomp(t, decomp.Blocked, size, []int{2, 2, 4})}, Var: "v", Version: 0},
	}
	return m, lookup, prodPl, prod, consumers
}

func TestClientDataCentricMovesTasksToData(t *testing.T) {
	m, lookup, prodPl, prod, consumers := sequentialScenario(t)
	dataCentric, err := ClientDataCentric(m, lookup, consumers, nil, "map")
	if err != nil {
		t.Fatal(err)
	}
	apps := []graph.App{consumers[0].App, consumers[1].App}
	rr, err := RoundRobin(m, apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range consumers {
		trDC, err := CoupledTraffic(m, prodPl, dataCentric, prod, c.App, 8)
		if err != nil {
			t.Fatal(err)
		}
		trRR, err := CoupledTraffic(m, prodPl, rr, prod, c.App, 8)
		if err != nil {
			t.Fatal(err)
		}
		if trDC.Network >= trRR.Network {
			t.Fatalf("app %d: client mapping network %d not below round-robin %d",
				c.App.ID, trDC.Network, trRR.Network)
		}
	}
}

func TestClientDataCentricRespectsCapacity(t *testing.T) {
	m, lookup, _, _, consumers := sequentialScenario(t)
	p, err := ClientDataCentric(m, lookup, consumers, nil, "map")
	if err != nil {
		t.Fatal(err)
	}
	perNode := map[cluster.NodeID]int{}
	for _, task := range p.Tasks() {
		n, _ := p.NodeOfTask(task)
		perNode[n]++
	}
	for n, c := range perNode {
		if c > m.CoresPerNode() {
			t.Fatalf("node %d over capacity: %d", n, c)
		}
	}
	// All 8 + 16 consumer tasks placed.
	if p.Len() != 24 {
		t.Fatalf("placed %d consumer tasks, want 24", p.Len())
	}
}

// The analytic client-side mapping must agree with the lookup-based one:
// both see the same stored blocks.
func TestClientDataCentricAnalyticMatchesLookup(t *testing.T) {
	m, lookup, prodPl, prod, consumers := sequentialScenario(t)
	viaLookup, err := ClientDataCentric(m, lookup, consumers, nil, "map")
	if err != nil {
		t.Fatal(err)
	}
	analytic, err := ClientDataCentricAnalytic(m, prodPl, prod, consumers, nil)
	if err != nil {
		t.Fatal(err)
	}
	for _, task := range viaLookup.Tasks() {
		nl, _ := viaLookup.NodeOfTask(task)
		na, _ := analytic.NodeOfTask(task)
		if nl != na {
			t.Fatalf("task %v: lookup mapping node %d, analytic node %d", task, nl, na)
		}
	}
}

func TestCoupledFlowsMatchTraffic(t *testing.T) {
	m, b := concurrentScenario(t)
	p, err := RoundRobin(m, b.Apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := CoupledTraffic(m, p, p, b.Apps[0], b.Apps[1], 8)
	if err != nil {
		t.Fatal(err)
	}
	flows, err := CoupledFlows(p, p, b.Apps[0], b.Apps[1], 8, "couple")
	if err != nil {
		t.Fatal(err)
	}
	var net, shm int64
	for _, f := range flows {
		if f.Phase != "couple" {
			t.Fatalf("flow phase = %q", f.Phase)
		}
		if f.Src == f.Dst {
			shm += f.Bytes
		} else {
			net += f.Bytes
		}
	}
	if net != tr.Network || shm != tr.Shm {
		t.Fatalf("flows net/shm = %d/%d, traffic = %d/%d", net, shm, tr.Network, tr.Shm)
	}
}

func TestCoupledTrafficAccountsEveryByte(t *testing.T) {
	m, b := concurrentScenario(t)
	p, err := RoundRobin(m, b.Apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := CoupledTraffic(m, p, p, b.Apps[0], b.Apps[1], 8)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Total() != int64(16*16*16)*8 {
		t.Fatalf("total coupled bytes = %d", tr.Total())
	}
}

func TestCoupledTrafficUnplacedTask(t *testing.T) {
	m, b := concurrentScenario(t)
	empty := cluster.NewPlacement(m)
	if _, err := CoupledTraffic(m, empty, empty, b.Apps[0], b.Apps[1], 8); err == nil {
		t.Fatal("unplaced tasks accepted")
	}
}

func TestStencilTrafficSplitsByNode(t *testing.T) {
	m := machine(t, 2, 4)
	dc := mustDecomp(t, decomp.Blocked, []int{8, 8}, []int{2, 4})
	app := graph.App{ID: 1, Decomp: dc}
	p, err := RoundRobin(m, []graph.App{app}, nil)
	if err != nil {
		t.Fatal(err)
	}
	tr, err := StencilTraffic(m, p, app, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	var want int64
	for _, b := range graph.StencilBytes(dc, 1, 8) {
		want += b
	}
	if tr.Total() != want {
		t.Fatalf("stencil total %d, want %d", tr.Total(), want)
	}
	if tr.Network == 0 {
		t.Fatal("expected some cross-node stencil traffic under round-robin")
	}
}

// The headline behaviour (paper Figures 12/13): data-centric mapping
// increases the smaller application's intra-app network traffic because
// its tasks scatter across nodes, while greatly reducing inter-app bytes.
func TestDataCentricTradeoff(t *testing.T) {
	m, b := concurrentScenario(t)
	rr, err := RoundRobin(m, b.Apps, nil)
	if err != nil {
		t.Fatal(err)
	}
	dataCentric, err := ServerDataCentric(m, b, nil, 8, 1)
	if err != nil {
		t.Fatal(err)
	}
	cons := b.Apps[1] // the small app (8 tasks)
	stRR, err := StencilTraffic(m, rr, cons, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	stDC, err := StencilTraffic(m, dataCentric, cons, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	// Under round-robin the consumer's 8 tasks are spread one per node
	// already; data-centric scatters them with producers, so the stencil
	// traffic must not collapse to shm.
	if stDC.Network < stRR.Network/2 {
		t.Logf("note: consumer stencil network rr=%d dc=%d", stRR.Network, stDC.Network)
	}
	couRR, _ := CoupledTraffic(m, rr, rr, b.Apps[0], cons, 8)
	couDC, _ := CoupledTraffic(m, dataCentric, dataCentric, b.Apps[0], cons, 8)
	if couDC.Network >= couRR.Network {
		t.Fatalf("coupling bytes not reduced: rr=%d dc=%d", couRR.Network, couDC.Network)
	}
}

func TestConsecutivePacksNodes(t *testing.T) {
	m := machine(t, 3, 4)
	dc := mustDecomp(t, decomp.Blocked, []int{8}, []int{8})
	p, err := Consecutive(m, []graph.App{{ID: 1, Decomp: dc}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	// Ranks 0-3 on node 0, 4-7 on node 1.
	for r := 0; r < 8; r++ {
		n, _ := p.NodeOfTask(cluster.TaskID{App: 1, Rank: r})
		if int(n) != r/4 {
			t.Fatalf("rank %d on node %d", r, n)
		}
	}
	// Capacity check.
	big := mustDecomp(t, decomp.Blocked, []int{16}, []int{13})
	if _, err := Consecutive(m, []graph.App{{ID: 1, Decomp: big}}, nil); err == nil {
		t.Fatal("over-capacity placement accepted")
	}
}

func TestDescribe(t *testing.T) {
	m := machine(t, 2, 2)
	dc := mustDecomp(t, decomp.Blocked, []int{4}, []int{3})
	p, err := Consecutive(m, []graph.App{{ID: 7, Decomp: dc}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := Describe(m, p)
	if !strings.Contains(out, "node 0: 7:0 7:1") || !strings.Contains(out, "node 1: 7:2") {
		t.Fatalf("Describe:\n%s", out)
	}
}

func TestServerDataCentricSingleLevelStillValid(t *testing.T) {
	m, b := concurrentScenario(t)
	p, err := ServerDataCentricOpts(m, b, nil, 8, partition.Options{Seed: 1, SingleLevel: true})
	if err != nil {
		t.Fatal(err)
	}
	if p.Len() != 40 {
		t.Fatalf("placed %d tasks", p.Len())
	}
	perNode := map[cluster.NodeID]int{}
	for _, task := range p.Tasks() {
		n, _ := p.NodeOfTask(task)
		perNode[n]++
	}
	for n, c := range perNode {
		if c > m.CoresPerNode() {
			t.Fatalf("node %d over capacity: %d", n, c)
		}
	}
}
