// Package mapping implements the task placement strategies of the
// framework (paper Section IV-B):
//
//   - RoundRobin: the baseline used by common MPI job launchers — tasks
//     are dealt to the allocated compute nodes in rank order, one node
//     after another, with no knowledge of communication.
//   - ServerDataCentric: for a "bundle" of concurrently coupled
//     applications, the workflow management server builds the
//     inter-application communication graph offline and partitions it
//     into one group per compute node (group size = core count) with the
//     multilevel partitioner, so heavily-communicating producer/consumer
//     tasks land on the same node; tasks of each group are assigned to
//     the node's cores round-robin.
//   - ClientDataCentric: for applications sequentially coupled to a
//     completed producer, each execution client queries the Data Lookup
//     service for the storage locations of its assigned task's region and
//     re-dispatches the task to the node holding the largest share of
//     that data. Conflicts for core slots are resolved greedily in task
//     order (the paper's clients race for nodes; a deterministic order
//     keeps the simulation reproducible).
//
// The package also provides analytic traffic accounting: given a
// placement, the exact number of coupled and stencil bytes that cross the
// network is computable from the decompositions alone, which is how the
// benchmark harness reproduces the paper-scale experiments without
// materializing hundreds of gigabytes.
package mapping

import (
	"fmt"
	"sort"
	"strings"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/decomp"
	"github.com/insitu/cods/internal/dht"
	"github.com/insitu/cods/internal/graph"
	"github.com/insitu/cods/internal/partition"
)

// allNodes returns the node list or the whole machine when nil.
func allNodes(m *cluster.Machine, nodes []cluster.NodeID) []cluster.NodeID {
	if nodes != nil {
		return nodes
	}
	out := make([]cluster.NodeID, m.NumNodes())
	for i := range out {
		out[i] = cluster.NodeID(i)
	}
	return out
}

// taskList flattens the tasks of the applications in declaration order.
func taskList(apps []graph.App) []cluster.TaskID {
	var tasks []cluster.TaskID
	for _, a := range apps {
		for r := 0; r < a.Decomp.NumTasks(); r++ {
			tasks = append(tasks, cluster.TaskID{App: a.ID, Rank: r})
		}
	}
	return tasks
}

// Consecutive places tasks in rank order, filling every core of a node
// before moving to the next (SMP-style placement, what MPI job launchers
// such as aprun produce by default). This is the launcher baseline the
// paper's evaluation compares the data-centric mapping against: it packs
// each application's neighbouring ranks together (low intra-application
// network traffic) but ignores inter-application coupling entirely.
func Consecutive(m *cluster.Machine, apps []graph.App, nodes []cluster.NodeID) (*cluster.Placement, error) {
	nodes = allNodes(m, nodes)
	tasks := taskList(apps)
	if len(tasks) > len(nodes)*m.CoresPerNode() {
		return nil, fmt.Errorf("mapping: %d tasks exceed %d cores", len(tasks), len(nodes)*m.CoresPerNode())
	}
	p := cluster.NewPlacement(m)
	for i, t := range tasks {
		node := nodes[i/m.CoresPerNode()]
		if err := p.Assign(t, m.CoreOn(node, i%m.CoresPerNode())); err != nil {
			return nil, err
		}
	}
	return p, nil
}

// RoundRobin places the tasks of the given applications onto the nodes in
// round-robin order: task i goes to node i mod n, taking the next free
// core there (spilling to subsequent nodes when full). It is an
// alternative baseline that scatters every application across all nodes.
func RoundRobin(m *cluster.Machine, apps []graph.App, nodes []cluster.NodeID) (*cluster.Placement, error) {
	nodes = allNodes(m, nodes)
	tasks := taskList(apps)
	if len(tasks) > len(nodes)*m.CoresPerNode() {
		return nil, fmt.Errorf("mapping: %d tasks exceed %d cores", len(tasks), len(nodes)*m.CoresPerNode())
	}
	p := cluster.NewPlacement(m)
	slots := make([]int, len(nodes)) // next free slot per node
	for i, t := range tasks {
		placed := false
		for off := 0; off < len(nodes); off++ {
			ni := (i + off) % len(nodes)
			if slots[ni] < m.CoresPerNode() {
				if err := p.Assign(t, m.CoreOn(nodes[ni], slots[ni])); err != nil {
					return nil, err
				}
				slots[ni]++
				placed = true
				break
			}
		}
		if !placed {
			return nil, fmt.Errorf("mapping: no free core for task %v", t)
		}
	}
	return p, nil
}

// Bundle describes a set of concurrently coupled applications to be
// scheduled simultaneously, with the (producer, consumer) coupling pairs.
type Bundle struct {
	Apps      []graph.App
	Couplings [][2]int
}

// ServerDataCentric maps a bundle with the server-side data-centric
// strategy: partition the inter-application communication graph into
// num_task/core_count groups (capacity = cores per node), then map each
// group to one node and its tasks to the node's cores round-robin.
func ServerDataCentric(m *cluster.Machine, b Bundle, nodes []cluster.NodeID, elemSize int64, seed int64) (*cluster.Placement, error) {
	return ServerDataCentricOpts(m, b, nodes, elemSize, partition.Options{Seed: seed})
}

// ServerDataCentricOpts is ServerDataCentric with explicit partitioner
// options (the ablation benchmarks use it to compare partitioner
// variants). The capacity option is always overridden with the node core
// count.
func ServerDataCentricOpts(m *cluster.Machine, b Bundle, nodes []cluster.NodeID, elemSize int64, opts partition.Options) (*cluster.Placement, error) {
	nodes = allNodes(m, nodes)
	g, index, err := graph.BuildInterApp(b.Apps, b.Couplings, elemSize)
	if err != nil {
		return nil, err
	}
	n := g.NumVertices()
	if n > len(nodes)*m.CoresPerNode() {
		return nil, fmt.Errorf("mapping: %d tasks exceed %d cores", n, len(nodes)*m.CoresPerNode())
	}
	k := (n + m.CoresPerNode() - 1) / m.CoresPerNode()
	if k > len(nodes) {
		k = len(nodes)
	}
	// Convert to the partitioner's graph form.
	pg := &partition.Graph{VWgt: make([]int64, n), Adj: make([][]partition.Edge, n)}
	for v := 0; v < n; v++ {
		pg.VWgt[v] = 1
		for _, e := range g.Edges(v) {
			pg.Adj[v] = append(pg.Adj[v], partition.Edge{To: e.To, Wgt: e.Weight})
		}
	}
	opts.MaxPartWeight = int64(m.CoresPerNode())
	parts, err := partition.KWay(pg, k, opts)
	if err != nil {
		return nil, err
	}
	p := cluster.NewPlacement(m)
	slots := make([]int, len(nodes))
	for v := 0; v < n; v++ {
		ni := parts[v]
		if slots[ni] >= m.CoresPerNode() {
			return nil, fmt.Errorf("mapping: partition overfilled node %d", ni)
		}
		if err := p.Assign(g.Label(v), m.CoreOn(nodes[ni], slots[ni])); err != nil {
			return nil, err
		}
		slots[ni]++
	}
	_ = index
	return p, nil
}

// Consumer is one sequentially coupled application to be mapped
// client-side: its tasks read variable Var at Version, previously stored
// in the space by a completed producer.
type Consumer struct {
	App     graph.App
	Var     string
	Version int
}

// ClientDataCentric maps consumer tasks with the decentralized client-side
// strategy. Tasks are first dealt round-robin (the initial distribution);
// each execution client then queries the lookup service for the locations
// of its task's data region and re-dispatches the task to the node storing
// the largest part of it that still has a free core.
func ClientDataCentric(m *cluster.Machine, lookup *dht.Service, consumers []Consumer,
	nodes []cluster.NodeID, phase string) (*cluster.Placement, error) {
	nodes = allNodes(m, nodes)
	apps := make([]graph.App, len(consumers))
	for i, c := range consumers {
		apps[i] = c.App
	}
	initial, err := RoundRobin(m, apps, nodes)
	if err != nil {
		return nil, err
	}
	locality := func(t cluster.TaskID, c Consumer) (map[cluster.NodeID]int64, error) {
		// The execution client holding the initial assignment issues the
		// lookup queries.
		initCore := initial.MustCoreOf(t)
		cl := lookup.ClientAt(initCore)
		local := make(map[cluster.NodeID]int64)
		for _, piece := range c.App.Decomp.Region(t.Rank) {
			entries, err := cl.Query(phase, c.App.ID, c.Var, c.Version, piece)
			if err != nil {
				return nil, fmt.Errorf("mapping: task %v lookup: %w", t, err)
			}
			for _, e := range entries {
				if sub, ok := e.Region.Intersect(piece); ok {
					local[m.NodeOf(e.Owner)] += sub.Volume()
				}
			}
		}
		return local, nil
	}
	return placeByLocality(m, consumers, initial, nodes, locality)
}

// ClientDataCentricAnalytic is the client-side mapping computed from the
// producer's decomposition and placement instead of lookup-service queries.
// It produces the same placements as ClientDataCentric (the lookup answers
// are derived from the same stored blocks) but runs at paper scale without
// a populated DHT; the benchmark harness uses it for the large experiments
// and the tests cross-validate the two.
func ClientDataCentricAnalytic(m *cluster.Machine, prodPl *cluster.Placement, prod graph.App,
	consumers []Consumer, nodes []cluster.NodeID) (*cluster.Placement, error) {
	nodes = allNodes(m, nodes)
	apps := make([]graph.App, len(consumers))
	for i, c := range consumers {
		apps[i] = c.App
	}
	initial, err := RoundRobin(m, apps, nodes)
	if err != nil {
		return nil, err
	}
	// Pre-resolve producer nodes, then accumulate each consumer task's
	// per-node locality in one sparse overlap sweep per consumer app.
	prodNode := make([]cluster.NodeID, prod.Decomp.NumTasks())
	for rp := range prodNode {
		n, ok := prodPl.NodeOfTask(cluster.TaskID{App: prod.ID, Rank: rp})
		if !ok {
			return nil, fmt.Errorf("mapping: producer task %d unplaced", rp)
		}
		prodNode[rp] = n
	}
	localities := make([]map[int]map[cluster.NodeID]int64, len(consumers))
	for i, c := range consumers {
		ov, err := decomp.NewOverlap(prod.Decomp, c.App.Decomp)
		if err != nil {
			return nil, err
		}
		loc := make(map[int]map[cluster.NodeID]int64, c.App.Decomp.NumTasks())
		ov.EachPair(func(rp, rc int, vol int64) {
			m := loc[rc]
			if m == nil {
				m = make(map[cluster.NodeID]int64)
				loc[rc] = m
			}
			m[prodNode[rp]] += vol
		})
		localities[i] = loc
	}
	consumerIdx := make(map[int]int, len(consumers))
	for i, c := range consumers {
		consumerIdx[c.App.ID] = i
	}
	locality := func(t cluster.TaskID, c Consumer) (map[cluster.NodeID]int64, error) {
		return localities[consumerIdx[c.App.ID]][t.Rank], nil
	}
	return placeByLocality(m, consumers, initial, nodes, locality)
}

// placeByLocality performs the greedy locality-maximizing placement shared
// by the lookup-based and analytic client-side mappings: tasks are
// processed in deterministic order; each goes to the node holding the most
// of its data that still has a free core, falling back to its initial node
// and then to any node with room.
func placeByLocality(m *cluster.Machine, consumers []Consumer, initial *cluster.Placement,
	nodes []cluster.NodeID, locality func(cluster.TaskID, Consumer) (map[cluster.NodeID]int64, error)) (*cluster.Placement, error) {
	final := cluster.NewPlacement(m)
	slots := make([]int, len(nodes))
	nodeIndex := make(map[cluster.NodeID]int, len(nodes))
	for i, n := range nodes {
		nodeIndex[n] = i
	}
	for _, c := range consumers {
		for r := 0; r < c.App.Decomp.NumTasks(); r++ {
			t := cluster.TaskID{App: c.App.ID, Rank: r}
			local, err := locality(t, c)
			if err != nil {
				return nil, err
			}
			// Rank candidate nodes by stored bytes, descending; fall back
			// to the initial node, then any node with room.
			type cand struct {
				node  cluster.NodeID
				bytes int64
			}
			cands := make([]cand, 0, len(local))
			for n, b := range local {
				cands = append(cands, cand{node: n, bytes: b})
			}
			sort.Slice(cands, func(i, j int) bool {
				if cands[i].bytes != cands[j].bytes {
					return cands[i].bytes > cands[j].bytes
				}
				return cands[i].node < cands[j].node
			})
			initNode, _ := initial.NodeOfTask(t)
			cands = append(cands, cand{node: initNode})
			for _, n := range nodes {
				cands = append(cands, cand{node: n})
			}
			placed := false
			for _, cd := range cands {
				ni, ok := nodeIndex[cd.node]
				if !ok || slots[ni] >= m.CoresPerNode() {
					continue
				}
				if err := final.Assign(t, m.CoreOn(cd.node, slots[ni])); err != nil {
					return nil, err
				}
				slots[ni]++
				placed = true
				break
			}
			if !placed {
				return nil, fmt.Errorf("mapping: no free core for task %v", t)
			}
		}
	}
	return final, nil
}

// Describe renders a placement as a per-node occupancy summary ("node 3:
// 1:0 1:1 2:5"), for run reports and debugging.
func Describe(m *cluster.Machine, pl *cluster.Placement) string {
	perNode := make(map[cluster.NodeID][]cluster.TaskID)
	for _, t := range pl.Tasks() {
		n, _ := pl.NodeOfTask(t)
		perNode[n] = append(perNode[n], t)
	}
	var sb strings.Builder
	for n := 0; n < m.NumNodes(); n++ {
		tasks := perNode[cluster.NodeID(n)]
		if len(tasks) == 0 {
			continue
		}
		fmt.Fprintf(&sb, "node %d:", n)
		for _, t := range tasks {
			fmt.Fprintf(&sb, " %s", t)
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}

// Traffic is the analytic byte accounting of one coupling or exchange
// under a placement.
type Traffic struct {
	Network int64
	Shm     int64
}

// Total returns all bytes moved.
func (t Traffic) Total() int64 { return t.Network + t.Shm }

// CoupledTraffic computes, from the overlap matrix of a producer/consumer
// pair and a placement of both, how many coupled bytes cross the network
// versus stay inside a node. When consumers were launched later (sequential
// coupling) pass the producer placement the data was stored under.
func CoupledTraffic(m *cluster.Machine, prodPl, consPl *cluster.Placement,
	prod, cons graph.App, elemSize int64) (Traffic, error) {
	var tr Traffic
	err := eachCoupledTransfer(prodPl, consPl, prod, cons, elemSize,
		func(pn, cn cluster.NodeID, bytes int64) {
			if pn == cn {
				tr.Shm += bytes
			} else {
				tr.Network += bytes
			}
		})
	return tr, err
}

// CoupledFlows converts a coupling under a placement into one flow per
// overlapping (producer task, consumer task) pair, tagged with the given
// phase. All flows of a retrieval phase start simultaneously — the
// receiver-driven pulls of every consumer task are issued in parallel —
// so the network simulator can compute the paper's "data retrieve time".
func CoupledFlows(prodPl, consPl *cluster.Placement, prod, cons graph.App,
	elemSize int64, phase string) ([]cluster.Flow, error) {
	var flows []cluster.Flow
	err := eachCoupledTransfer(prodPl, consPl, prod, cons, elemSize,
		func(pn, cn cluster.NodeID, bytes int64) {
			flows = append(flows, cluster.Flow{Phase: phase, Src: pn, Dst: cn, Bytes: bytes})
		})
	return flows, err
}

// eachCoupledTransfer enumerates the node endpoints and byte volume of
// every overlapping producer/consumer task pair.
func eachCoupledTransfer(prodPl, consPl *cluster.Placement, prod, cons graph.App,
	elemSize int64, fn func(pn, cn cluster.NodeID, bytes int64)) error {
	ov, err := decomp.NewOverlap(prod.Decomp, cons.Decomp)
	if err != nil {
		return err
	}
	// Pre-resolve task nodes to keep the pair sweep cheap.
	prodNode := make([]cluster.NodeID, prod.Decomp.NumTasks())
	for rp := range prodNode {
		n, ok := prodPl.NodeOfTask(cluster.TaskID{App: prod.ID, Rank: rp})
		if !ok {
			return fmt.Errorf("mapping: producer task %d unplaced", rp)
		}
		prodNode[rp] = n
	}
	consNode := make([]cluster.NodeID, cons.Decomp.NumTasks())
	for rc := range consNode {
		n, ok := consPl.NodeOfTask(cluster.TaskID{App: cons.ID, Rank: rc})
		if !ok {
			return fmt.Errorf("mapping: consumer task %d unplaced", rc)
		}
		consNode[rc] = n
	}
	ov.EachPair(func(rp, rc int, vol int64) {
		fn(prodNode[rp], consNode[rc], vol*elemSize)
	})
	return nil
}

// StencilTraffic computes the near-neighbour halo exchange bytes of one
// application under a placement, split by medium.
func StencilTraffic(m *cluster.Machine, pl *cluster.Placement, app graph.App,
	halo int, elemSize int64) (Traffic, error) {
	var tr Traffic
	for pair, bytes := range graph.StencilBytes(app.Decomp, halo, elemSize) {
		na, ok := pl.NodeOfTask(cluster.TaskID{App: app.ID, Rank: pair[0]})
		if !ok {
			return Traffic{}, fmt.Errorf("mapping: task %d unplaced", pair[0])
		}
		nb, ok := pl.NodeOfTask(cluster.TaskID{App: app.ID, Rank: pair[1]})
		if !ok {
			return Traffic{}, fmt.Errorf("mapping: task %d unplaced", pair[1])
		}
		if na == nb {
			tr.Shm += bytes
		} else {
			tr.Network += bytes
		}
	}
	return tr, nil
}
