package apps

import (
	"math"
	"testing"

	"github.com/insitu/cods/internal/decomp"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/runtime"
	"github.com/insitu/cods/internal/workflow"
)

// hotSpot is an initial condition with a localized peak.
func hotSpot(p geometry.Point) float64 {
	v := 1.0
	for _, x := range p {
		if x != 2 {
			v = 0
		}
	}
	return v * 100
}

// gradient is a smooth non-trivial initial condition.
func gradient(p geometry.Point) float64 {
	v := 0.0
	for d, x := range p {
		v += float64((d + 1) * x)
	}
	return v
}

// runJacobiDistributed executes the solver on a simulated machine and
// collects the published field.
func runJacobiDistributed(t *testing.T, size, grid []int, iterations int,
	init func(geometry.Point) float64) []float64 {
	t.Helper()
	s := newServer(t, 4, 4, size)
	dc := mustDecomp(t, decomp.Blocked, size, grid)
	if err := s.RegisterApp(runtime.AppSpec{
		ID:     1,
		Decomp: dc,
		Run: NewJacobi(JacobiConfig{
			Var: "u", Iterations: iterations, Init: init, Mode: Sequential,
		}),
	}); err != nil {
		t.Fatal(err)
	}
	// A reader app collects the full field.
	ones := make([]int, len(size))
	for i := range ones {
		ones[i] = 1
	}
	var collected []float64
	if err := s.RegisterApp(runtime.AppSpec{
		ID:     2,
		Decomp: mustDecomp(t, decomp.Blocked, size, ones),
		Run: func(ctx *runtime.AppContext) error {
			got, err := ctx.Space.GetSequential("u", iterations, ctx.Decomp.Domain())
			if err != nil {
				return err
			}
			collected = got
			return nil
		},
		ReadsVar: "u",
	}); err != nil {
		t.Fatal(err)
	}
	d, err := workflow.New([]int{1, 2}, [][2]int{{1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(d, runtime.DataCentric); err != nil {
		t.Fatal(err)
	}
	return collected
}

// The distributed solver must agree bit-exactly with the serial reference:
// identical arithmetic per cell, only the data movement differs.
func TestJacobiMatchesSerial(t *testing.T) {
	cases := []struct {
		size, grid []int
		iters      int
		init       func(geometry.Point) float64
	}{
		{[]int{8, 8}, []int{2, 2}, 5, hotSpot},
		{[]int{8, 8}, []int{4, 2}, 3, gradient},
		{[]int{6, 6, 6}, []int{2, 2, 2}, 4, hotSpot},
	}
	for ci, c := range cases {
		domain := geometry.BoxFromSize(c.size)
		want := JacobiSerial(domain, c.iters, c.init)
		got := runJacobiDistributed(t, c.size, c.grid, c.iters, c.init)
		if len(got) != len(want) {
			t.Fatalf("case %d: lengths %d vs %d", ci, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("case %d: cell %d = %v, serial %v", ci, i, got[i], want[i])
			}
		}
	}
}

// Conservation: periodic Jacobi averaging preserves the field sum.
func TestJacobiConservesMass(t *testing.T) {
	domain := geometry.BoxFromSize([]int{8, 8})
	initial := 0.0
	domain.Each(func(p geometry.Point) { initial += gradient(p) })
	after := JacobiSerial(domain, 10, gradient)
	var sum float64
	for _, v := range after {
		sum += v
	}
	if math.Abs(sum-initial) > 1e-6*math.Abs(initial) {
		t.Fatalf("mass not conserved: %v -> %v", initial, sum)
	}
}

// Convergence: a hot spot diffuses toward the uniform mean.
func TestJacobiDiffusesTowardMean(t *testing.T) {
	domain := geometry.BoxFromSize([]int{8, 8})
	mean := 100.0 / float64(domain.Volume())
	early := JacobiSerial(domain, 1, hotSpot)
	late := JacobiSerial(domain, 50, hotSpot)
	dev := func(field []float64) float64 {
		var d float64
		for _, v := range field {
			d += (v - mean) * (v - mean)
		}
		return d
	}
	if dev(late) >= dev(early) {
		t.Fatalf("field did not diffuse: early dev %v, late dev %v", dev(early), dev(late))
	}
}

func TestJacobiNeedsInit(t *testing.T) {
	size := []int{4, 4}
	s := newServer(t, 1, 4, size)
	if err := s.RegisterApp(runtime.AppSpec{
		ID:     1,
		Decomp: mustDecomp(t, decomp.Blocked, size, []int{2, 2}),
		Run:    NewJacobi(JacobiConfig{Var: "u", Iterations: 1}),
	}); err != nil {
		t.Fatal(err)
	}
	d, _ := workflow.New([]int{1}, nil, nil)
	if _, err := s.Run(d, runtime.DataCentric); err == nil {
		t.Fatal("missing Init accepted")
	}
}
