// Package apps provides the synthetic data-parallel applications used by
// the examples and the evaluation harness. They reproduce the behaviour of
// the paper's testing workflow applications: CAP1/CAP2 (concurrently
// coupled producer and consumer) and SAP1/SAP2/SAP3 (a sequential
// producer and its two consumers), each optionally performing 2-D/3-D
// stencil-like near-neighbour exchanges to model intra-application
// communication (paper Section V).
package apps

import (
	"fmt"

	"github.com/insitu/cods/internal/cods"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/runtime"
)

// Coupling selects which pair of CoDS operators an application uses.
type Coupling int

// Coupling modes.
const (
	// Concurrent couples through direct producer-to-consumer transfers
	// (cods_put_cont / cods_get_cont).
	Concurrent Coupling = iota
	// Sequential stages data through the CoDS in-memory storage
	// (cods_put_seq / cods_get_seq).
	Sequential
)

// CellValue is the deterministic content of a domain cell at a version;
// consumers use it to verify retrieved data end to end.
func CellValue(p geometry.Point, version int) float64 {
	v := float64(version) * 1e9
	for _, x := range p {
		v = v*1000 + float64(x)
	}
	return v
}

// FillRegion materializes the row-major content of a region at a version.
func FillRegion(b geometry.BBox, version int) []float64 {
	data := make([]float64, b.Volume())
	i := 0
	b.Each(func(p geometry.Point) {
		data[i] = CellValue(p, version)
		i++
	})
	return data
}

// VerifyRegion checks that got is the row-major content of region at a
// version.
func VerifyRegion(region geometry.BBox, version int, got []float64) error {
	if int64(len(got)) != region.Volume() {
		return fmt.Errorf("apps: length %d != volume %d", len(got), region.Volume())
	}
	i := 0
	var err error
	region.Each(func(p geometry.Point) {
		if err == nil && got[i] != CellValue(p, version) {
			err = fmt.Errorf("apps: cell %v = %v, want %v", p, got[i], CellValue(p, version))
		}
		i++
	})
	return err
}

// HaloExchange performs one near-neighbour exchange: along every
// decomposed dimension the task swaps a halo slab of the given width with
// its +1 and -1 grid neighbours (periodic boundaries). The slab size is
// the task's face volume times the halo width; payload content is the
// task's boundary plane (representative bytes — the exchange is what the
// evaluation meters).
func HaloExchange(ctx *runtime.AppContext, halo int) error {
	if halo <= 0 {
		return nil
	}
	dc := ctx.Decomp
	grid := dc.Grid()
	coord := dc.GridCoord(ctx.Rank)
	vol := dc.OwnedVolume(ctx.Rank)
	for d := range grid {
		if grid[d] == 1 {
			continue
		}
		// Face volume along dimension d.
		var extent int64
		for _, iv := range dc.Intervals(d, coord[d], dc.Domain().Min[d], dc.Domain().Max[d]) {
			extent += int64(iv.Hi - iv.Lo)
		}
		if extent == 0 {
			continue
		}
		slab := make([]byte, (vol/extent)*int64(halo)*cods.ElemSize)
		up := append([]int(nil), coord...)
		up[d] = (coord[d] + 1) % grid[d]
		down := append([]int(nil), coord...)
		down[d] = (coord[d] - 1 + grid[d]) % grid[d]
		rUp, rDown := dc.RankOf(up), dc.RankOf(down)
		if rUp == ctx.Rank {
			continue // single neighbour wrap onto self
		}
		// Exchange with the +d neighbour, receive from -d, then the
		// reverse direction. Tags encode dimension and direction.
		if _, err := ctx.Comm.SendRecv(rUp, 2*d, slab, rDown, 2*d); err != nil {
			return fmt.Errorf("apps: halo +%d: %w", d, err)
		}
		if _, err := ctx.Comm.SendRecv(rDown, 2*d+1, slab, rUp, 2*d+1); err != nil {
			return fmt.Errorf("apps: halo -%d: %w", d, err)
		}
	}
	return nil
}

// ProducerConfig parameterizes a data-producing application.
type ProducerConfig struct {
	// Var is the CoDS variable written.
	Var string
	// Iterations is the number of coupling steps (versions 0..Iterations-1).
	Iterations int
	// Halo enables a stencil exchange of this width before every put.
	Halo int
	// Mode selects concurrent or sequential coupling operators.
	Mode Coupling
}

// NewProducer builds the producer subroutine: per iteration it performs
// its stencil exchange, then puts every owned block of the coupled domain
// into the space.
func NewProducer(cfg ProducerConfig) runtime.AppFunc {
	return func(ctx *runtime.AppContext) error {
		iters := cfg.Iterations
		if iters <= 0 {
			iters = 1
		}
		for version := 0; version < iters; version++ {
			ctx.Space.SetPhase(fmt.Sprintf("halo:%d:%d", ctx.AppID, version))
			ctx.Comm.SetPhase(fmt.Sprintf("halo:%d:%d", ctx.AppID, version))
			if err := HaloExchange(ctx, cfg.Halo); err != nil {
				return err
			}
			ctx.Space.SetPhase(fmt.Sprintf("put:%d:%d", ctx.AppID, version))
			for _, blk := range ctx.Decomp.Region(ctx.Rank) {
				data := FillRegion(blk, version)
				var err error
				if cfg.Mode == Concurrent {
					err = ctx.Space.PutConcurrent(cfg.Var, version, blk, data)
				} else {
					err = ctx.Space.PutSequential(cfg.Var, version, blk, data)
				}
				if err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// ConsumerConfig parameterizes a data-consuming application.
type ConsumerConfig struct {
	// Var is the CoDS variable read.
	Var string
	// Producer is the application id of the concurrently coupled producer
	// (ignored for Sequential mode).
	Producer int
	// Iterations mirrors the producer's iteration count.
	Iterations int
	// Halo enables a stencil exchange of this width after every get.
	Halo int
	// Mode selects concurrent or sequential coupling operators.
	Mode Coupling
	// Verify checks the retrieved contents cell by cell.
	Verify bool
	// GhostWidth widens every retrieved region by a ghost margin (clipped
	// to the domain), so neighbouring consumer tasks pull overlapping
	// data — the access pattern of stencil consumers that read their halo
	// straight from the space instead of exchanging it.
	GhostWidth int
}

// NewConsumer builds the consumer subroutine: per iteration it retrieves
// the task's owned regions of the coupled domain from the space (directly
// from the producer in concurrent mode), optionally verifies them, then
// performs its stencil exchange.
func NewConsumer(cfg ConsumerConfig) runtime.AppFunc {
	return func(ctx *runtime.AppContext) error {
		iters := cfg.Iterations
		if iters <= 0 {
			iters = 1
		}
		regions := ctx.Decomp.Region(ctx.Rank)
		if cfg.GhostWidth > 0 {
			regions = ctx.Decomp.GhostRegions(ctx.Rank, cfg.GhostWidth)
		}
		for version := 0; version < iters; version++ {
			ctx.Space.SetPhase(fmt.Sprintf("couple:%d:%d", ctx.AppID, version))
			for _, region := range regions {
				var got []float64
				var err error
				if cfg.Mode == Concurrent {
					info, ok := ctx.Producers[cfg.Producer]
					if !ok {
						return fmt.Errorf("apps: producer %d not in bundle", cfg.Producer)
					}
					got, err = ctx.Space.GetConcurrent(info, cfg.Var, version, region)
				} else {
					got, err = ctx.Space.GetSequential(cfg.Var, version, region)
				}
				if err != nil {
					return err
				}
				if cfg.Verify {
					if err := VerifyRegion(region, version, got); err != nil {
						return fmt.Errorf("apps: app %d rank %d: %w", ctx.AppID, ctx.Rank, err)
					}
				}
			}
			ctx.Space.SetPhase(fmt.Sprintf("halo:%d:%d", ctx.AppID, version))
			ctx.Comm.SetPhase(fmt.Sprintf("halo:%d:%d", ctx.AppID, version))
			if err := HaloExchange(ctx, cfg.Halo); err != nil {
				return err
			}
		}
		return nil
	}
}
