package apps

import (
	"fmt"

	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/halo"
	"github.com/insitu/cods/internal/runtime"
)

// JacobiConfig parameterizes a distributed Jacobi relaxation (heat
// diffusion with periodic boundaries) — a real numerical kernel running on
// the framework's communicator and halo-exchange substrate, standing in
// for the simulation codes of the paper's workflows.
type JacobiConfig struct {
	// Var is the CoDS variable the final field is published under ("" to
	// skip publication).
	Var string
	// Iterations is the number of relaxation sweeps.
	Iterations int
	// Init gives the initial value of every domain cell.
	Init func(geometry.Point) float64
	// Mode selects the coupling operators used for publication.
	Mode Coupling
}

// NewJacobi builds the solver subroutine. Each task owns one blocked
// region plus a one-cell ghost margin; every sweep exchanges halos with
// the grid neighbours and replaces each cell by the average of its 2*dim
// neighbours. The arithmetic is identical to JacobiSerial, cell for cell,
// so distributed runs are verifiable bit-exactly.
func NewJacobi(cfg JacobiConfig) runtime.AppFunc {
	return func(ctx *runtime.AppContext) error {
		if cfg.Init == nil {
			return fmt.Errorf("apps: jacobi needs an Init function")
		}
		dc := ctx.Decomp
		sched, err := halo.BuildSchedule(dc, 1)
		if err != nil {
			return err
		}
		owned := dc.Region(ctx.Rank)[0]
		dim := owned.Dim()
		ghostBox := owned.Clone()
		for d := 0; d < dim; d++ {
			ghostBox.Min[d]--
			ghostBox.Max[d]++
		}
		cur := make([]float64, ghostBox.Volume())
		next := make([]float64, ghostBox.Volume())
		owned.Each(func(p geometry.Point) {
			cur[ghostBox.Offset(p)] = cfg.Init(p)
		})
		read := func(region geometry.BBox) ([]float64, error) {
			data := make([]float64, region.Volume())
			i := 0
			region.Each(func(p geometry.Point) {
				data[i] = cur[ghostBox.Offset(p)]
				i++
			})
			return data, nil
		}
		write := func(region geometry.BBox, data []float64) error {
			i := 0
			region.Each(func(p geometry.Point) {
				cur[ghostBox.Offset(p)] = data[i]
				i++
			})
			return nil
		}
		for iter := 0; iter < cfg.Iterations; iter++ {
			ctx.Comm.SetPhase(fmt.Sprintf("halo:%d:%d", ctx.AppID, iter))
			if err := halo.Run(ctx.Comm, sched[ctx.Rank], read, write); err != nil {
				return err
			}
			owned.Each(func(p geometry.Point) {
				var sum float64
				for d := 0; d < dim; d++ {
					q := p.Clone()
					q[d]--
					sum += cur[ghostBox.Offset(q)]
					q[d] += 2
					sum += cur[ghostBox.Offset(q)]
				}
				next[ghostBox.Offset(p)] = sum / float64(2*dim)
			})
			cur, next = next, cur
		}
		if cfg.Var != "" {
			ctx.Space.SetPhase(fmt.Sprintf("put:%d", ctx.AppID))
			out, err := read(owned)
			if err != nil {
				return err
			}
			if cfg.Mode == Concurrent {
				return ctx.Space.PutConcurrent(cfg.Var, cfg.Iterations, owned, out)
			}
			return ctx.Space.PutSequential(cfg.Var, cfg.Iterations, owned, out)
		}
		return nil
	}
}

// JacobiSerial runs the identical relaxation on a single array, as the
// reference for correctness tests. It returns the row-major field over
// the domain after the given number of sweeps.
func JacobiSerial(domain geometry.BBox, iterations int, init func(geometry.Point) float64) []float64 {
	dim := domain.Dim()
	sizes := domain.Sizes()
	cur := make([]float64, domain.Volume())
	next := make([]float64, domain.Volume())
	domain.Each(func(p geometry.Point) {
		cur[domain.Offset(p)] = init(p)
	})
	wrap := func(p geometry.Point) geometry.Point {
		q := p.Clone()
		for d := range q {
			q[d] = ((q[d]-domain.Min[d])%sizes[d]+sizes[d])%sizes[d] + domain.Min[d]
		}
		return q
	}
	for iter := 0; iter < iterations; iter++ {
		domain.Each(func(p geometry.Point) {
			var sum float64
			for d := 0; d < dim; d++ {
				q := p.Clone()
				q[d]--
				sum += cur[domain.Offset(wrap(q))]
				q[d] += 2
				sum += cur[domain.Offset(wrap(q))]
			}
			next[domain.Offset(p)] = sum / float64(2*dim)
		})
		cur, next = next, cur
	}
	return cur
}
