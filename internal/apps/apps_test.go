package apps

import (
	"testing"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/decomp"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/runtime"
	"github.com/insitu/cods/internal/workflow"
)

func mustDecomp(t testing.TB, kind decomp.Kind, size, grid []int) *decomp.Decomposition {
	t.Helper()
	dc, err := decomp.New(kind, geometry.BoxFromSize(size), grid, nil)
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

func newServer(t testing.TB, nodes, cores int, size []int) *runtime.Server {
	t.Helper()
	m, err := cluster.NewMachine(nodes, cores)
	if err != nil {
		t.Fatal(err)
	}
	s, err := runtime.NewServer(m, geometry.BoxFromSize(size), 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func TestCellValueDistinctAcrossVersions(t *testing.T) {
	p := geometry.Point{1, 2, 3}
	if CellValue(p, 0) == CellValue(p, 1) {
		t.Fatal("versions collide")
	}
	q := geometry.Point{1, 2, 4}
	if CellValue(p, 0) == CellValue(q, 0) {
		t.Fatal("cells collide")
	}
}

func TestFillVerifyRoundTrip(t *testing.T) {
	b := geometry.NewBBox(geometry.Point{2, 3}, geometry.Point{6, 9})
	data := FillRegion(b, 5)
	if err := VerifyRegion(b, 5, data); err != nil {
		t.Fatal(err)
	}
	data[3] = -1
	if err := VerifyRegion(b, 5, data); err == nil {
		t.Fatal("corruption not detected")
	}
	if err := VerifyRegion(b, 5, data[:4]); err == nil {
		t.Fatal("short data not detected")
	}
}

// Full concurrent workflow with verification and multiple iterations.
func TestConcurrentProducerConsumerIterations(t *testing.T) {
	size := []int{8, 8, 8}
	s := newServer(t, 4, 4, size)
	if err := s.RegisterApp(runtime.AppSpec{
		ID:     1,
		Decomp: mustDecomp(t, decomp.Blocked, size, []int{2, 2, 2}),
		Run:    NewProducer(ProducerConfig{Var: "u", Iterations: 3, Halo: 1, Mode: Concurrent}),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterApp(runtime.AppSpec{
		ID:     2,
		Decomp: mustDecomp(t, decomp.Blocked, size, []int{2, 2, 1}),
		Run: NewConsumer(ConsumerConfig{
			Var: "u", Producer: 1, Iterations: 3, Halo: 1, Mode: Concurrent, Verify: true,
		}),
	}); err != nil {
		t.Fatal(err)
	}
	d, err := workflow.New([]int{1, 2}, nil, [][]int{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(d, runtime.DataCentric); err != nil {
		t.Fatal(err)
	}
	// Halo traffic must have been metered as intra-app bytes.
	mt := s.Machine().Metrics()
	intra := mt.Bytes(cluster.IntraApp, cluster.Network) + mt.Bytes(cluster.IntraApp, cluster.SharedMemory)
	if intra == 0 {
		t.Fatal("no intra-app halo traffic recorded")
	}
	inter := mt.Bytes(cluster.InterApp, cluster.Network) + mt.Bytes(cluster.InterApp, cluster.SharedMemory)
	// 3 iterations x full 8^3 domain x 8 bytes of coupled data.
	if want := int64(3 * 8 * 8 * 8 * 8); inter != want {
		t.Fatalf("coupled bytes = %d, want %d", inter, want)
	}
}

// Full sequential workflow: SAP1 stores, SAP2 and SAP3 retrieve and verify.
func TestSequentialThreeAppWorkflow(t *testing.T) {
	size := []int{8, 8, 8}
	s := newServer(t, 4, 4, size)
	if err := s.RegisterApp(runtime.AppSpec{
		ID:     1,
		Decomp: mustDecomp(t, decomp.Blocked, size, []int{2, 2, 2}),
		Run:    NewProducer(ProducerConfig{Var: "state", Iterations: 1, Mode: Sequential}),
	}); err != nil {
		t.Fatal(err)
	}
	for _, id := range []int{2, 3} {
		grid := []int{2, 2, 1}
		if id == 3 {
			grid = []int{1, 2, 2}
		}
		if err := s.RegisterApp(runtime.AppSpec{
			ID:     id,
			Decomp: mustDecomp(t, decomp.Blocked, size, grid),
			Run: NewConsumer(ConsumerConfig{
				Var: "state", Iterations: 1, Halo: 1, Mode: Sequential, Verify: true,
			}),
			ReadsVar: "state",
		}); err != nil {
			t.Fatal(err)
		}
	}
	d, err := workflow.New([]int{1, 2, 3}, [][2]int{{1, 2}, {1, 3}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(d, runtime.DataCentric); err != nil {
		t.Fatal(err)
	}
	mt := s.Machine().Metrics()
	inter := mt.Bytes(cluster.InterApp, cluster.Network) + mt.Bytes(cluster.InterApp, cluster.SharedMemory)
	// Both consumers retrieve the full domain once.
	if want := int64(2 * 8 * 8 * 8 * 8); inter != want {
		t.Fatalf("coupled bytes = %d, want %d", inter, want)
	}
}

// Mismatched distributions still deliver correct data (the mapping just
// cannot keep it local — Figure 10's scenario).
func TestConcurrentMismatchedDistributionsCorrectness(t *testing.T) {
	size := []int{8, 8}
	s := newServer(t, 4, 4, size)
	if err := s.RegisterApp(runtime.AppSpec{
		ID:     1,
		Decomp: mustDecomp(t, decomp.Blocked, size, []int{2, 2}),
		Run:    NewProducer(ProducerConfig{Var: "w", Iterations: 1, Mode: Concurrent}),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterApp(runtime.AppSpec{
		ID:     2,
		Decomp: mustDecomp(t, decomp.Cyclic, size, []int{2, 2}),
		Run: NewConsumer(ConsumerConfig{
			Var: "w", Producer: 1, Iterations: 1, Mode: Concurrent, Verify: true,
		}),
	}); err != nil {
		t.Fatal(err)
	}
	d, err := workflow.New([]int{1, 2}, nil, [][]int{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(d, runtime.RoundRobin); err != nil {
		t.Fatal(err)
	}
}

func TestHaloExchangeNoGridNeighbours(t *testing.T) {
	// Single-task app: halo must be a no-op and not deadlock.
	size := []int{4, 4}
	s := newServer(t, 1, 2, size)
	if err := s.RegisterApp(runtime.AppSpec{
		ID:     1,
		Decomp: mustDecomp(t, decomp.Blocked, size, []int{1, 1}),
		Run: func(ctx *runtime.AppContext) error {
			return HaloExchange(ctx, 2)
		},
	}); err != nil {
		t.Fatal(err)
	}
	d, _ := workflow.New([]int{1}, nil, nil)
	if _, err := s.Run(d, runtime.DataCentric); err != nil {
		t.Fatal(err)
	}
	if b := s.Machine().Metrics().Bytes(cluster.IntraApp, cluster.Network); b != 0 {
		t.Fatalf("single task produced halo bytes: %d", b)
	}
}

func TestHaloBytesMatchAnalyticModel(t *testing.T) {
	// The functional halo exchange must meter exactly the bytes the
	// analytic StencilBytes model predicts (cross-checked via totals).
	size := []int{8, 8}
	s := newServer(t, 8, 1, size) // one core per node: all halo bytes cross the network
	dc := mustDecomp(t, decomp.Blocked, size, []int{2, 4})
	if err := s.RegisterApp(runtime.AppSpec{
		ID:     1,
		Decomp: dc,
		Run: func(ctx *runtime.AppContext) error {
			return HaloExchange(ctx, 1)
		},
	}); err != nil {
		t.Fatal(err)
	}
	d, _ := workflow.New([]int{1}, nil, nil)
	if _, err := s.Run(d, runtime.RoundRobin); err != nil {
		t.Fatal(err)
	}
	got := s.Machine().Metrics().Bytes(cluster.IntraApp, cluster.Network)
	// Analytic: each of 8 tasks exchanges along both dims; total bytes =
	// sum over tasks and dims of 2 directions x face x halo x 8.
	// dim0: face 2 (grid 2: wrap==direct, both exchanged), dim1: face 4.
	// Per task: dim0 2*2*8=32... compute via graph model instead: totals
	// must match the per-pair map summed.
	var want int64
	for d0 := 0; d0 < dc.NumTasks(); d0++ {
		coord := dc.GridCoord(d0)
		vol := dc.OwnedVolume(d0)
		for dim, g := range dc.Grid() {
			if g == 1 {
				continue
			}
			var extent int64
			for _, iv := range dc.Intervals(dim, coord[dim], 0, size[dim]) {
				extent += int64(iv.Hi - iv.Lo)
			}
			want += 2 * (vol / extent) * 8 // two directional sends per task
		}
	}
	if got != want {
		t.Fatalf("halo bytes = %d, want %d", got, want)
	}
}

// Ghost retrieval: neighbouring consumer tasks pull overlapping regions
// (owned block + halo) and the data is still correct everywhere.
func TestConsumerGhostRetrieval(t *testing.T) {
	size := []int{8, 8}
	s := newServer(t, 4, 4, size)
	if err := s.RegisterApp(runtime.AppSpec{
		ID:     1,
		Decomp: mustDecomp(t, decomp.Blocked, size, []int{2, 2}),
		Run:    NewProducer(ProducerConfig{Var: "g", Iterations: 1, Mode: Sequential}),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterApp(runtime.AppSpec{
		ID:     2,
		Decomp: mustDecomp(t, decomp.Blocked, size, []int{2, 2}),
		Run: NewConsumer(ConsumerConfig{
			Var: "g", Iterations: 1, Mode: Sequential, Verify: true, GhostWidth: 2,
		}),
		ReadsVar: "g",
	}); err != nil {
		t.Fatal(err)
	}
	d, err := workflow.New([]int{1, 2}, [][2]int{{1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(d, runtime.DataCentric); err != nil {
		t.Fatal(err)
	}
	// Ghost pulls move more than the domain volume: 4 tasks each pull a
	// (4+2+2)^2-clipped region instead of 4x4.
	mt := s.Machine().Metrics()
	inter := mt.Bytes(cluster.InterApp, cluster.Network) + mt.Bytes(cluster.InterApp, cluster.SharedMemory)
	if inter <= int64(8*8*8) {
		t.Fatalf("ghost retrieval moved only %d bytes", inter)
	}
}

// Failure injection: a consumer asking for a variable nobody produced gets
// a coverage error, which the runtime propagates.
func TestConsumerMissingVariableFails(t *testing.T) {
	size := []int{4, 4}
	s := newServer(t, 2, 2, size)
	if err := s.RegisterApp(runtime.AppSpec{
		ID:     1,
		Decomp: mustDecomp(t, decomp.Blocked, size, []int{1, 1}),
		Run:    NewProducer(ProducerConfig{Var: "present", Iterations: 1, Mode: Sequential}),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterApp(runtime.AppSpec{
		ID:     2,
		Decomp: mustDecomp(t, decomp.Blocked, size, []int{1, 1}),
		Run: NewConsumer(ConsumerConfig{
			Var: "absent", Iterations: 1, Mode: Sequential,
		}),
		ReadsVar: "absent",
	}); err != nil {
		t.Fatal(err)
	}
	d, err := workflow.New([]int{1, 2}, [][2]int{{1, 2}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(d, runtime.DataCentric); err == nil {
		t.Fatal("missing variable did not fail the workflow")
	}
}

// Failure injection: a consumer referencing a producer outside its bundle
// fails cleanly.
func TestConsumerWrongProducerFails(t *testing.T) {
	size := []int{4, 4}
	s := newServer(t, 2, 2, size)
	if err := s.RegisterApp(runtime.AppSpec{
		ID:     1,
		Decomp: mustDecomp(t, decomp.Blocked, size, []int{1, 1}),
		Run:    NewProducer(ProducerConfig{Var: "v", Iterations: 1, Mode: Concurrent}),
	}); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterApp(runtime.AppSpec{
		ID:     2,
		Decomp: mustDecomp(t, decomp.Blocked, size, []int{1, 1}),
		Run: NewConsumer(ConsumerConfig{
			Var: "v", Producer: 99, Iterations: 1, Mode: Concurrent,
		}),
	}); err != nil {
		t.Fatal(err)
	}
	d, err := workflow.New([]int{1, 2}, nil, [][]int{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(d, runtime.DataCentric); err == nil {
		t.Fatal("unknown producer did not fail the workflow")
	}
}
