package apps

import (
	"errors"
	"fmt"

	"github.com/insitu/cods/internal/cods"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/runtime"
)

// Streaming applications (DESIGN §5i): a producer that publishes a
// bounded-lag stream of versions instead of lock-step iterations, and a
// consumer that follows the stream through a cursor. They are what
// codsrun registers under -stream and what the streaming chaos suite
// drives across a node kill.

// StreamProducerIndexBase returns the producer index of rank's first
// owned piece: the stream stamps one monotone version sequence per
// published block, so a rank owning several pieces publishes each through
// its own index, and indices are assigned densely in rank-major, piece
// order. The stream's declared producer count is StreamProducerIndexBase
// of one-past-the-last rank.
func StreamProducerIndexBase(ctx *runtime.AppContext, rank int) int {
	base := 0
	for r := 0; r < rank; r++ {
		base += len(ctx.Decomp.Region(r))
	}
	return base
}

// StreamProducerConfig parameterizes a stream-publishing application.
type StreamProducerConfig struct {
	// Var is the declared stream variable written.
	Var string
	// Rounds is the number of versions each producer index publishes.
	Rounds int
	// Halo enables a stencil exchange of this width before every publish.
	Halo int
}

// NewStreamProducer builds the producer subroutine: per round it performs
// its stencil exchange, then publishes every owned piece of the coupled
// domain as the next version of its piece's producer index. Version
// content is the deterministic CellValue fill, so consumers verify
// end to end. When its rounds are done the task closes its producer
// indices, ending the stream once every rank has.
func NewStreamProducer(cfg StreamProducerConfig) runtime.AppFunc {
	return func(ctx *runtime.AppContext) (err error) {
		rounds := cfg.Rounds
		if rounds <= 0 {
			rounds = 1
		}
		base := StreamProducerIndexBase(ctx, ctx.Rank)
		pieces := ctx.Decomp.Region(ctx.Rank)
		// A producer that fails must still end its share of the stream —
		// consumers blocked on the watermark would otherwise wait forever
		// for versions that will never complete.
		defer func() {
			if err == nil {
				return
			}
			for i := range pieces {
				_ = ctx.Space.ClosePublisher(cfg.Var, base+i)
			}
		}()
		for round := 0; round < rounds; round++ {
			ctx.Space.SetPhase(fmt.Sprintf("halo:%d:%d", ctx.AppID, round))
			ctx.Comm.SetPhase(fmt.Sprintf("halo:%d:%d", ctx.AppID, round))
			if err := HaloExchange(ctx, cfg.Halo); err != nil {
				return err
			}
			ctx.Space.SetPhase(fmt.Sprintf("publish:%d:%d", ctx.AppID, round))
			for i, blk := range pieces {
				ver, err := ctx.Space.Publish(cfg.Var, base+i, blk, FillRegion(blk, round))
				if err != nil {
					return fmt.Errorf("apps: app %d rank %d publish round %d: %w",
						ctx.AppID, ctx.Rank, round, err)
				}
				if ver != round {
					return fmt.Errorf("apps: app %d rank %d piece %d stamped version %d, want %d",
						ctx.AppID, ctx.Rank, i, ver, round)
				}
			}
		}
		for i := range pieces {
			if err := ctx.Space.ClosePublisher(cfg.Var, base+i); err != nil {
				return err
			}
		}
		return nil
	}
}

// StreamConsumerConfig parameterizes a stream-following application.
type StreamConsumerConfig struct {
	// Var is the declared stream variable read.
	Var string
	// Halo enables a stencil exchange of this width after every consumed
	// version.
	Halo int
	// Verify checks every retrieved version cell by cell.
	Verify bool
	// Quiet suppresses the per-task summary line.
	Quiet bool
}

// NewStreamConsumer builds the consumer subroutine: the task subscribes a
// cursor, then follows the stream one version at a time — window-read its
// owned regions, verify, acknowledge — until the producers close. Under
// the drop-oldest policy a slow task's cursor can be bumped mid-read; the
// task then resumes at the bumped position, counting the skipped versions
// as gaps. At the end it prints one summary line per task,
//
//	stream consumer <app>.<rank> observed <n> versions [<lo>..<hi>] gaps <g>
//
// which the chaos suite parses: under backpressure the sequence must be
// gap-free even across a mid-stream node replacement.
func NewStreamConsumer(cfg StreamConsumerConfig) runtime.AppFunc {
	return func(ctx *runtime.AppContext) error {
		regions := ctx.Decomp.Region(ctx.Rank)
		if len(regions) == 0 {
			// A rank owning nothing neither reads nor subscribes — an idle
			// cursor would throttle the producers forever.
			if !cfg.Quiet {
				fmt.Printf("stream consumer %d.%d observed 0 versions [] gaps 0\n", ctx.AppID, ctx.Rank)
			}
			return nil
		}
		cur, err := ctx.Space.Subscribe(cfg.Var)
		if err != nil {
			return err
		}
		defer cur.Close()
		first, last, observed, gaps := -1, -1, 0, 0
		for {
			ctx.Space.SetPhase(fmt.Sprintf("couple:%d:%d", ctx.AppID, cur.Pos()))
			pos, bumped, ended, err := consumeStreamVersion(ctx, cfg, cur, regions)
			if err != nil {
				return err
			}
			if ended {
				break
			}
			if bumped {
				continue // cursor moved mid-read; retry at the new position
			}
			if first < 0 {
				first = pos
			} else if pos != last+1 {
				gaps += pos - last - 1
			}
			last = pos
			observed++
			ctx.Space.SetPhase(fmt.Sprintf("halo:%d:%d", ctx.AppID, pos))
			ctx.Comm.SetPhase(fmt.Sprintf("halo:%d:%d", ctx.AppID, pos))
			if err := HaloExchange(ctx, cfg.Halo); err != nil {
				return err
			}
		}
		if !cfg.Quiet {
			span := "[]"
			if observed > 0 {
				span = fmt.Sprintf("[%d..%d]", first, last)
			}
			fmt.Printf("stream consumer %d.%d observed %d versions %s gaps %d\n",
				ctx.AppID, ctx.Rank, observed, span, gaps)
		}
		return nil
	}
}

// consumeStreamVersion reads and acknowledges the version at the cursor's
// position across all of the task's regions. It reports the version
// consumed, or that the cursor was bumped past it mid-read (drop-oldest),
// or that the stream ended before the version completed.
func consumeStreamVersion(ctx *runtime.AppContext, cfg StreamConsumerConfig,
	cur *cods.Cursor, regions []geometry.BBox) (pos int, bumped, ended bool, err error) {
	pos = cur.Pos()
	for _, region := range regions {
		window, err := cur.GetWindow(region, pos, pos)
		if errors.Is(err, cods.ErrStreamEnded) {
			return pos, false, true, nil
		}
		if err != nil {
			if cur.Pos() > pos {
				return pos, true, false, nil
			}
			return pos, false, false, err
		}
		if cfg.Verify {
			if verr := VerifyRegion(region, pos, window[0]); verr != nil {
				return pos, false, false, fmt.Errorf("apps: app %d rank %d v%d: %w",
					ctx.AppID, ctx.Rank, pos, verr)
			}
		}
	}
	if err := cur.Advance(pos + 1); err != nil {
		if cur.Pos() > pos {
			return pos, true, false, nil
		}
		return pos, false, false, err
	}
	return pos, false, false, nil
}
