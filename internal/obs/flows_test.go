package obs

import (
	"reflect"
	"testing"

	"github.com/insitu/cods/internal/cluster"
)

func TestBuildFlowMatrix(t *testing.T) {
	flows := []cluster.Flow{
		{Src: 1, Dst: 0, Medium: "network", Class: "inter-app", Bytes: 100},
		{Src: 0, Dst: 0, Medium: "shm", Class: "inter-app", Bytes: 40},
		{Src: 1, Dst: 0, Medium: "network", Class: "inter-app", Bytes: 60},
		{Src: 0, Dst: 1, Medium: "network", Class: "control", Bytes: 8},
	}
	m := BuildFlowMatrix(flows)
	want := []FlowCell{
		{Src: 0, Dst: 0, Medium: "shm", Class: "inter-app", Bytes: 40},
		{Src: 0, Dst: 1, Medium: "network", Class: "control", Bytes: 8},
		{Src: 1, Dst: 0, Medium: "network", Class: "inter-app", Bytes: 160},
	}
	if !reflect.DeepEqual(m.Cells, want) {
		t.Fatalf("cells:\ngot  %+v\nwant %+v", m.Cells, want)
	}
	if m.TotalBytes != 208 {
		t.Fatalf("total = %d, want 208", m.TotalBytes)
	}
	if empty := BuildFlowMatrix(nil); empty.Cells != nil || empty.TotalBytes != 0 {
		t.Fatalf("empty log = %+v", empty)
	}
}

func TestFlowWindowDeltas(t *testing.T) {
	log := []cluster.Flow{{Src: 1, Dst: 0, Medium: "network", Class: "inter-app", Bytes: 100}}
	w := NewFlowWindow()

	m := BuildFlowMatrix(log)
	w.Update(&m)
	if m.Cells[0].Delta != 100 {
		t.Fatalf("first observation delta = %d, want full count 100", m.Cells[0].Delta)
	}

	// The log grows by 50 bytes in the same cell and gains a new cell.
	log[0].Bytes = 150
	log = append(log, cluster.Flow{Src: 0, Dst: 1, Medium: "network", Class: "inter-app", Bytes: 30})
	m = BuildFlowMatrix(log)
	w.Update(&m)
	for _, c := range m.Cells {
		switch {
		case c.Src == 1 && c.Delta != 50:
			t.Fatalf("grown cell delta = %d, want 50", c.Delta)
		case c.Src == 0 && c.Delta != 30:
			t.Fatalf("new cell delta = %d, want 30", c.Delta)
		}
	}

	// No growth: every delta collapses to zero.
	m = BuildFlowMatrix(log)
	w.Update(&m)
	for _, c := range m.Cells {
		if c.Delta != 0 {
			t.Fatalf("idle window delta = %d, want 0 (cell %+v)", c.Delta, c)
		}
	}
}
