package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// A Report is the structured artifact of one instrumented run: the
// registry snapshot, arbitrary run metadata, and a reconciliation section
// that cross-checks registry totals against an independent source (the
// fabric's per-medium counters, the machine metrics). The reconciliation
// is the point: when the registry and the transport layer disagree about
// how many bytes moved, instrumentation has drifted and the report makes
// that visible instead of silently reporting one of the two numbers.

// Check is one reconciliation row: a registry-derived value against the
// same quantity measured independently.
type Check struct {
	Name     string `json:"name"`
	Registry int64  `json:"registry"`
	External int64  `json:"external"`
	Match    bool   `json:"match"`
}

// NodeReport is the per-node section of a cluster report: one remote
// codsnode's shipped registry snapshot with its own reconciliation rows
// (registry vs the node's fabric metering and wire-level counters). A
// failed node check also fails the parent report's verdict.
type NodeReport struct {
	Node    string   `json:"node"`
	Addr    string   `json:"addr,omitempty"`
	Metrics Snapshot `json:"metrics"`
	Checks  []Check  `json:"reconciliation,omitempty"`
	// Reconciled is true when every node-level check matches.
	Reconciled bool `json:"reconciled"`

	parent *Report
}

// Report is a structured run report, serialized as indented JSON.
type Report struct {
	GeneratedBy string            `json:"generated_by"`
	Meta        map[string]string `json:"meta,omitempty"`
	Metrics     Snapshot          `json:"metrics"`
	Checks      []Check           `json:"reconciliation,omitempty"`
	Nodes       []*NodeReport     `json:"nodes,omitempty"`
	// Reconciled is true when every check — including every per-node
	// check — matches.
	Reconciled bool `json:"reconciled"`
}

// NewReport starts a report for the given producer (e.g. "cmd/codsrun")
// with a snapshot of the default registry.
func NewReport(generatedBy string) *Report {
	return &Report{
		GeneratedBy: generatedBy,
		Meta:        make(map[string]string),
		Metrics:     Default.Snapshot(),
		Reconciled:  true,
	}
}

// AddCheck appends a reconciliation row and folds its result into the
// report's overall verdict.
func (r *Report) AddCheck(name string, registry, external int64) {
	ok := registry == external
	r.Checks = append(r.Checks, Check{Name: name, Registry: registry, External: external, Match: ok})
	if !ok {
		r.Reconciled = false
	}
}

// AddNode appends a per-node section for a remote node's shipped
// registry snapshot and returns it for node-level checks.
func (r *Report) AddNode(node, addr string, metrics Snapshot) *NodeReport {
	n := &NodeReport{Node: node, Addr: addr, Metrics: metrics, Reconciled: true, parent: r}
	r.Nodes = append(r.Nodes, n)
	return n
}

// AddCheck appends a node-level reconciliation row, folding its result
// into both the node's and the parent report's verdicts.
func (n *NodeReport) AddCheck(name string, registry, external int64) {
	ok := registry == external
	n.Checks = append(n.Checks, Check{Name: name, Registry: registry, External: external, Match: ok})
	if !ok {
		n.Reconciled = false
		if n.parent != nil {
			n.parent.Reconciled = false
		}
	}
}

// SetMeta records one metadata key of the run (DAG path, policy, machine
// shape, ...).
func (r *Report) SetMeta(key, value string) { r.Meta[key] = value }

// WriteJSON serializes the report as indented JSON.
func (r *Report) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// WriteFile writes the report to path, creating parent directories.
func (r *Report) WriteFile(path string) error {
	if dir := filepath.Dir(path); dir != "." && dir != "" {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return fmt.Errorf("obs: %w", err)
		}
	}
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("obs: %w", err)
	}
	if err := r.WriteJSON(f); err != nil {
		f.Close()
		return fmt.Errorf("obs: %w", err)
	}
	return f.Close()
}

// ReadReport loads a report written by WriteFile (for tests and tools).
func ReadReport(path string) (*Report, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("obs: %w", err)
	}
	var r Report
	if err := json.Unmarshal(buf, &r); err != nil {
		return nil, fmt.Errorf("obs: %s: %w", path, err)
	}
	return &r, nil
}
