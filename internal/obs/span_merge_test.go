package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// TestTracerNodeLabels covers the cross-process additions: a tracer-wide
// node label, per-span overrides, and ID namespacing via SetIDBase.
func TestTracerNodeLabels(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	tr.SetIDBase(1 << 48)
	tr.SetNode("node3")

	s := tr.Start(0, "pull:u")
	tr.Event(s.ID(), "retry")
	tr.StartNode(SpanID(7), "remote:read:u", "node5").End()
	s.End()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	evs, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 5 { // pull b/e, retry i, remote b/e
		t.Fatalf("got %d events, want 5", len(evs))
	}
	for _, ev := range evs {
		if ev.ID <= 1<<48 {
			t.Fatalf("span id %d not namespaced above the base", ev.ID)
		}
		switch ev.Name {
		case "pull:u", "retry":
			if ev.Node != "node3" {
				t.Fatalf("%s node = %q, want tracer-wide label", ev.Name, ev.Node)
			}
		case "remote:read:u":
			if ev.Node != "node5" {
				t.Fatalf("explicit label lost: %+v", ev)
			}
			if ev.Ev == "b" && ev.Parent != 7 {
				t.Fatalf("remote span parent = %d, want propagated 7", ev.Parent)
			}
		}
	}
}

func TestAppendRawMerge(t *testing.T) {
	// A "remote" tracer with a namespaced ID range...
	var remote bytes.Buffer
	rt := NewTracer(&remote)
	rt.SetIDBase(2 << 48)
	rt.StartNode(3, "remote:call:dht", "node1").End()
	if err := rt.Flush(); err != nil {
		t.Fatal(err)
	}

	// ...drained into the driver's stream, interleaved with local spans.
	var merged bytes.Buffer
	dt := NewTracer(&merged)
	root := dt.Start(0, "workflow")
	dt.AppendRaw(remote.Bytes())
	dt.AppendRaw(nil)                                                   // no-op
	dt.AppendRaw([]byte(`{"ev":"i","id":99,"parent":1,"name":"note"}`)) // missing newline
	root.End()
	if err := dt.Flush(); err != nil {
		t.Fatal(err)
	}

	evs, err := ReadSpans(&merged)
	if err != nil {
		t.Fatalf("merged stream unparseable: %v\n%s", err, merged.String())
	}
	var names []string
	for _, ev := range evs {
		names = append(names, ev.Ev+":"+ev.Name)
	}
	if got := strings.Join(names, " "); got != "b:workflow b:remote:call:dht e:remote:call:dht i:note e:workflow" {
		t.Fatalf("merged order = %q", got)
	}
	(&Tracer{}).AppendRaw(nil) // zero-value safety
	var nilT *Tracer
	nilT.AppendRaw([]byte("x"))
}

// TestAppendRawConcurrent races local emission against raw splices; the
// merged output must still be whole JSON lines. Run with -race.
func TestAppendRawConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	chunk := []byte(`{"ev":"i","id":424242,"name":"remote"}` + "\n")
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				tr.Start(0, "local").End()
				tr.AppendRaw(chunk)
			}
		}()
	}
	wg.Wait()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadSpans(&buf)
	if err != nil {
		t.Fatalf("interleaved stream corrupted: %v", err)
	}
	if len(evs) != 4*200*3 {
		t.Fatalf("got %d events, want %d", len(evs), 4*200*3)
	}
}
