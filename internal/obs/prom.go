package obs

import (
	"fmt"
	"io"
	"sort"
	"strings"
)

// WriteProm renders a registry snapshot in the Prometheus text exposition
// format (version 0.0.4): counters and gauges as single samples,
// histograms with cumulative le-labelled buckets plus _sum and _count.
// Instrument names are sanitized (dots and dashes become underscores) and
// prefixed with "cods_" so the dotted registry namespace maps onto one
// flat Prometheus namespace. Output order is deterministic: counters,
// gauges, then histograms, each sorted by name.
func WriteProm(w io.Writer, s Snapshot) error {
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s counter\n%s %d\n", pn, pn, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		pn := promName(name)
		if _, err := fmt.Fprintf(w, "# TYPE %s gauge\n%s %d\n", pn, pn, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		pn := promName(h.Name)
		if _, err := fmt.Fprintf(w, "# TYPE %s histogram\n", pn); err != nil {
			return err
		}
		cum := int64(0)
		for _, b := range h.Buckets {
			cum += b.Count
			if b.UpperBound == overflowBound {
				continue // folded into the +Inf bucket below
			}
			if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", pn, b.UpperBound, cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", pn, h.Count); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n", pn, h.Sum, pn, h.Count); err != nil {
			return err
		}
	}
	return nil
}

// promName maps a dotted registry name onto the Prometheus metric name
// grammar [a-zA-Z_:][a-zA-Z0-9_:]*.
func promName(name string) string {
	var b strings.Builder
	b.Grow(len(name) + 5)
	b.WriteString("cods_")
	for _, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9', r == '_', r == ':':
			b.WriteRune(r)
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}
