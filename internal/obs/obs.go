// Package obs is the framework's observability substrate: a
// dependency-free metrics registry (atomic counters, gauges and
// fixed-bucket histograms) plus a lightweight span tracer (span.go) and a
// structured run report (report.go).
//
// The paper's whole evaluation (Section V) is built on knowing where bytes
// move and where time goes — network vs. shared-memory volume, schedule
// computation cost, end-to-end coupling latency. Instead of re-adding
// ad-hoc printf counters in every layer, the hot paths (transport, dht,
// sfc, cods, runtime) register their instruments here once and every tool
// reads from one place.
//
// Cost model: instruments are resolved to pointers at package init, so a
// hot-path update is one atomic add guarded by one atomic load of the
// global enable flag. With observability disabled (the default) the update
// is just that load-and-branch, which is why the pull engine can stay
// instrumented permanently; cmd/benchguard asserts the enabled overhead
// stays under budget. All operations are safe under -race.
package obs

import (
	"fmt"
	"io"
	"sort"
	"sync"
	"sync/atomic"
)

// enabled is the global on/off switch. Disabled instruments drop updates
// after a single atomic load.
var enabled atomic.Bool

// Enable turns metric collection on or off globally (default off).
func Enable(on bool) { enabled.Store(on) }

// Enabled reports whether metric collection is on.
func Enabled() bool { return enabled.Load() }

// Counter is a monotonically increasing atomic counter.
type Counter struct {
	name string
	v    atomic.Int64
}

// Name returns the counter's registered name.
func (c *Counter) Name() string { return c.name }

// Add increments the counter by n when observability is enabled.
func (c *Counter) Add(n int64) {
	if !enabled.Load() {
		return
	}
	c.v.Add(n)
}

// Inc is Add(1).
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is an atomic instantaneous value.
type Gauge struct {
	name string
	v    atomic.Int64
}

// Name returns the gauge's registered name.
func (g *Gauge) Name() string { return g.name }

// Set stores the gauge value when observability is enabled.
func (g *Gauge) Set(v int64) {
	if !enabled.Load() {
		return
	}
	g.v.Store(v)
}

// Add adjusts the gauge by delta when observability is enabled.
func (g *Gauge) Add(delta int64) {
	if !enabled.Load() {
		return
	}
	g.v.Add(delta)
}

// Value returns the current gauge value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Histogram is a fixed-bucket histogram with atomic bucket counters. The
// bounds are inclusive upper bucket edges; one implicit overflow bucket
// catches everything above the last bound. Bounds are fixed at creation so
// Observe never allocates or locks.
type Histogram struct {
	name   string
	bounds []int64
	counts []atomic.Int64 // len(bounds)+1, last = overflow
	sum    atomic.Int64
	n      atomic.Int64
}

// Name returns the histogram's registered name.
func (h *Histogram) Name() string { return h.name }

// Observe records one sample when observability is enabled.
func (h *Histogram) Observe(v int64) {
	if !enabled.Load() {
		return
	}
	// Binary search the first bound >= v; bucket lists are short (<=32)
	// so a linear scan would also do, but this keeps large histograms
	// honest.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v <= h.bounds[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	h.counts[lo].Add(1)
	h.sum.Add(v)
	h.n.Add(1)
}

// Count returns the number of recorded samples.
func (h *Histogram) Count() int64 { return h.n.Load() }

// Sum returns the sum of recorded samples.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// DefaultLatencyBounds are nanosecond bucket edges from 1us to ~1s in
// powers of four, fitting both in-process copies and simulated RDMA round
// trips.
func DefaultLatencyBounds() []int64 {
	out := make([]int64, 0, 16)
	for b := int64(1_000); b <= 4_000_000_000; b *= 4 {
		out = append(out, b)
	}
	return out
}

// DefaultSizeBounds are byte bucket edges from 64 B to 1 GiB in powers of
// four.
func DefaultSizeBounds() []int64 {
	out := make([]int64, 0, 16)
	for b := int64(64); b <= 1<<30; b *= 4 {
		out = append(out, b)
	}
	return out
}

// Registry holds named instruments. Get-or-create methods are safe for
// concurrent use; hot paths resolve instruments once and keep the pointer.
type Registry struct {
	mu         sync.Mutex
	counters   map[string]*Counter
	gauges     map[string]*Gauge
	histograms map[string]*Histogram
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters:   make(map[string]*Counter),
		gauges:     make(map[string]*Gauge),
		histograms: make(map[string]*Histogram),
	}
}

// Default is the process-wide registry the framework's packages register
// their instruments in.
var Default = NewRegistry()

// Counter returns the named counter, creating it on first use.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{name: name}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{name: name}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it with the given bucket
// bounds on first use (later calls ignore bounds).
func (r *Registry) Histogram(name string, bounds []int64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.histograms[name]
	if !ok {
		bs := append([]int64(nil), bounds...)
		sort.Slice(bs, func(i, j int) bool { return bs[i] < bs[j] })
		h = &Histogram{name: name, bounds: bs, counts: make([]atomic.Int64, len(bs)+1)}
		r.histograms[name] = h
	}
	return h
}

// C is shorthand for Default.Counter.
func C(name string) *Counter { return Default.Counter(name) }

// G is shorthand for Default.Gauge.
func G(name string) *Gauge { return Default.Gauge(name) }

// H is shorthand for Default.Histogram.
func H(name string, bounds []int64) *Histogram { return Default.Histogram(name, bounds) }

// Reset zeroes every instrument in the registry (instruments stay
// registered, so held pointers remain valid).
func (r *Registry) Reset() {
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, c := range r.counters {
		c.v.Store(0)
	}
	for _, g := range r.gauges {
		g.v.Store(0)
	}
	for _, h := range r.histograms {
		for i := range h.counts {
			h.counts[i].Store(0)
		}
		h.sum.Store(0)
		h.n.Store(0)
	}
}

// BucketSnap is one histogram bucket of a snapshot. UpperBound is the
// inclusive edge; the overflow bucket has UpperBound math.MaxInt64.
type BucketSnap struct {
	UpperBound int64 `json:"le"`
	Count      int64 `json:"count"`
}

// HistogramSnap is the snapshot of one histogram.
type HistogramSnap struct {
	Name    string       `json:"name"`
	Count   int64        `json:"count"`
	Sum     int64        `json:"sum"`
	Buckets []BucketSnap `json:"buckets,omitempty"`
}

// Snapshot is a point-in-time copy of a registry, sorted by name.
type Snapshot struct {
	Enabled    bool             `json:"enabled"`
	Counters   map[string]int64 `json:"counters,omitempty"`
	Gauges     map[string]int64 `json:"gauges,omitempty"`
	Histograms []HistogramSnap  `json:"histograms,omitempty"`
}

const overflowBound = int64(^uint64(0) >> 1) // math.MaxInt64 without the import

// Snapshot copies every instrument's current value. Counters updated
// concurrently are read atomically, one by one: the snapshot is a
// consistent set of individually consistent values, not a global fence.
func (r *Registry) Snapshot() Snapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := Snapshot{Enabled: Enabled()}
	if len(r.counters) > 0 {
		s.Counters = make(map[string]int64, len(r.counters))
		for name, c := range r.counters {
			s.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		s.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			s.Gauges[name] = g.Value()
		}
	}
	for _, h := range r.histograms {
		hs := HistogramSnap{Name: h.name, Count: h.Count(), Sum: h.Sum()}
		for i := range h.counts {
			ub := overflowBound
			if i < len(h.bounds) {
				ub = h.bounds[i]
			}
			if n := h.counts[i].Load(); n > 0 {
				hs.Buckets = append(hs.Buckets, BucketSnap{UpperBound: ub, Count: n})
			}
		}
		s.Histograms = append(s.Histograms, hs)
	}
	sort.Slice(s.Histograms, func(i, j int) bool { return s.Histograms[i].Name < s.Histograms[j].Name })
	return s
}

// WriteText renders the registry in a stable, line-oriented text form
// (sorted by instrument name), for terminals and test goldens.
func (r *Registry) WriteText(w io.Writer) error {
	s := r.Snapshot()
	names := make([]string, 0, len(s.Counters))
	for name := range s.Counters {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "counter %-44s %d\n", name, s.Counters[name]); err != nil {
			return err
		}
	}
	names = names[:0]
	for name := range s.Gauges {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if _, err := fmt.Fprintf(w, "gauge   %-44s %d\n", name, s.Gauges[name]); err != nil {
			return err
		}
	}
	for _, h := range s.Histograms {
		mean := int64(0)
		if h.Count > 0 {
			mean = h.Sum / h.Count
		}
		if _, err := fmt.Fprintf(w, "hist    %-44s count=%d sum=%d mean=%d\n",
			h.Name, h.Count, h.Sum, mean); err != nil {
			return err
		}
	}
	return nil
}
