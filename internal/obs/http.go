package obs

import (
	"encoding/json"
	"errors"
	"net"
	"net/http"
	"net/http/pprof"

	"github.com/insitu/cods/internal/cluster"
)

// The HTTP endpoint is the expvar-style live view of a registry: GET /
// (or /metrics) returns the JSON snapshot, /metrics.txt the text
// rendering, /metrics.prom the Prometheus exposition, and /flows the
// aggregated flow matrix with windowed deltas. It is optional — nothing
// in the framework starts a listener unless a command is asked to
// (codsrun -obs-http, codsnode -obs-http).

// HandlerOpts selects the optional views a handler serves beyond the
// metric endpoints.
type HandlerOpts struct {
	// Flows, when non-nil, enables GET /flows: each request aggregates
	// the returned flow log into a FlowMatrix and annotates it with the
	// byte deltas since the previous scrape of this handler.
	Flows func() []cluster.Flow
	// Pprof mounts net/http/pprof's profile endpoints under
	// /debug/pprof/.
	Pprof bool
	// Members, when non-nil, enables GET /members: a JSON snapshot of
	// the elastic membership view (node, address, incarnation, lease
	// state) the serving process holds.
	Members func() any
}

// Handler serves a registry over HTTP with the default options.
func Handler(r *Registry) http.Handler { return NewHandler(r, HandlerOpts{}) }

// NewHandler serves a registry over HTTP: / and /metrics (JSON snapshot),
// /metrics.txt (text), /metrics.prom (Prometheus text exposition), plus
// the optional views selected by opts.
func NewHandler(r *Registry, opts HandlerOpts) http.Handler {
	mux := http.NewServeMux()
	serveJSON := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	}
	mux.HandleFunc("/", serveJSON)
	mux.HandleFunc("/metrics", serveJSON)
	mux.HandleFunc("/metrics.txt", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.WriteText(w)
	})
	mux.HandleFunc("/metrics.prom", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = WriteProm(w, r.Snapshot())
	})
	if opts.Flows != nil {
		win := NewFlowWindow()
		mux.HandleFunc("/flows", func(w http.ResponseWriter, _ *http.Request) {
			m := BuildFlowMatrix(opts.Flows())
			win.Update(&m)
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(m)
		})
	}
	if opts.Members != nil {
		mux.HandleFunc("/members", func(w http.ResponseWriter, _ *http.Request) {
			w.Header().Set("Content-Type", "application/json")
			enc := json.NewEncoder(w)
			enc.SetIndent("", "  ")
			_ = enc.Encode(opts.Members())
		})
	}
	if opts.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

// Server is a running observability HTTP listener. Close shuts it down
// and surfaces any abnormal serve error — the two lifecycle gaps the old
// listener-returning Serve had (no shutdown path, errors lost).
type Server struct {
	ln   net.Listener
	srv  *http.Server
	done chan struct{}
	err  error
}

// Addr returns the bound listen address (useful with ":0").
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops the server, waits for the serve loop to exit, and returns
// the first abnormal error from either serving or shutdown.
func (s *Server) Close() error {
	cerr := s.srv.Close()
	<-s.done
	if s.err != nil {
		return s.err
	}
	return cerr
}

// Serve starts an HTTP server for h on addr (":0" picks a free port) and
// returns a Server handle; Close it to stop serving.
func Serve(addr string, h http.Handler) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	s := &Server{ln: ln, srv: &http.Server{Handler: h}, done: make(chan struct{})}
	go func() {
		defer close(s.done)
		if err := s.srv.Serve(ln); err != nil && !errors.Is(err, http.ErrServerClosed) {
			s.err = err
		}
	}()
	return s, nil
}
