package obs

import (
	"encoding/json"
	"net"
	"net/http"
)

// The HTTP endpoint is the expvar-style live view of a registry: GET /
// (or /metrics) returns the JSON snapshot, GET /metrics.txt the text
// rendering. It is optional — nothing in the framework starts a listener
// unless a command is asked to (codsrun -obs-http).

// Handler serves a registry over HTTP.
func Handler(r *Registry) http.Handler {
	mux := http.NewServeMux()
	serveJSON := func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(r.Snapshot())
	}
	mux.HandleFunc("/", serveJSON)
	mux.HandleFunc("/metrics", serveJSON)
	mux.HandleFunc("/metrics.txt", func(w http.ResponseWriter, _ *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		_ = r.WriteText(w)
	})
	return mux
}

// Serve starts an HTTP listener for the registry on addr (":0" picks a
// free port) and returns the listener; close it to stop serving. The
// bound address is listener.Addr().
func Serve(addr string, r *Registry) (net.Listener, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: Handler(r)}
	go func() { _ = srv.Serve(ln) }()
	return ln, nil
}
