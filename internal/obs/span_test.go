package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestTracerParentLinkage(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	root := tr.Start(0, "workflow")
	child := tr.Start(root.ID(), "task:1:0")
	child.End()
	root.End()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 4 {
		t.Fatalf("events = %d, want 4", len(evs))
	}
	if evs[0].Ev != "b" || evs[0].Name != "workflow" || evs[0].Parent != 0 {
		t.Fatalf("root begin = %+v", evs[0])
	}
	if evs[1].Ev != "b" || evs[1].Parent != evs[0].ID {
		t.Fatalf("child begin = %+v (root id %d)", evs[1], evs[0].ID)
	}
	if evs[2].Ev != "e" || evs[2].ID != evs[1].ID || evs[2].Dur < 0 {
		t.Fatalf("child end = %+v", evs[2])
	}
	if evs[3].Ev != "e" || evs[3].ID != evs[0].ID {
		t.Fatalf("root end = %+v", evs[3])
	}
	if evs[3].Dur < evs[2].Dur {
		t.Fatalf("parent duration %d < child duration %d", evs[3].Dur, evs[2].Dur)
	}
}

func TestNilTracerNoops(t *testing.T) {
	var tr *Tracer
	sp := tr.Start(0, "x")
	sp.End()
	if sp.ID() != 0 {
		t.Fatal("nil tracer handed out an id")
	}
	tr.Event(0, "retry:pull:u")
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
}

func TestTracerInstantEvent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	root := tr.Start(0, "pull:u")
	tr.Event(root.ID(), "retry:pull:u")
	root.End()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 3 {
		t.Fatalf("events = %d, want 3", len(evs))
	}
	ev := evs[1]
	if ev.Ev != "i" || ev.Name != "retry:pull:u" || ev.Parent != evs[0].ID || ev.Dur != 0 {
		t.Fatalf("instant event = %+v", ev)
	}
	if ev.ID == evs[0].ID {
		t.Fatalf("instant event reused span id %d", ev.ID)
	}
}

func TestTracerConcurrent(t *testing.T) {
	var buf bytes.Buffer
	tr := NewTracer(&buf)
	root := tr.Start(0, "root")
	const workers = 8
	const spansPer = 50
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < spansPer; i++ {
				tr.Start(root.ID(), "op").End()
			}
		}()
	}
	wg.Wait()
	root.End()
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := ReadSpans(&buf)
	if err != nil {
		t.Fatal(err)
	}
	want := 2 * (workers*spansPer + 1)
	if len(evs) != want {
		t.Fatalf("events = %d, want %d", len(evs), want)
	}
	seen := map[SpanID]int{}
	for _, ev := range evs {
		seen[ev.ID]++
	}
	for id, n := range seen {
		if n != 2 {
			t.Fatalf("span %d has %d events, want begin+end", id, n)
		}
	}
}

func TestReadSpansLineNumbers(t *testing.T) {
	in := `{"ev":"b","id":1,"name":"a","t_ns":0}
{"ev":"e","id":1,"name":"a","t_ns":5,"dur_ns":5}
garbage here
`
	_, err := ReadSpans(strings.NewReader(in))
	if err == nil || !strings.Contains(err.Error(), "line 3") {
		t.Fatalf("err = %v, want line 3", err)
	}
}
