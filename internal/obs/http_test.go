package obs

import (
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"

	"github.com/insitu/cods/internal/cluster"
)

func get(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	return resp.StatusCode, string(body)
}

// TestServeLifecycle pins the regression the Server type fixed: Serve used
// to return a bare listener with no shutdown path, losing serve errors
// and leaking the accept loop.
func TestServeLifecycle(t *testing.T) {
	withObs(t, func() {
		srv, err := Serve("127.0.0.1:0", Handler(NewRegistry()))
		if err != nil {
			t.Fatal(err)
		}
		addr := srv.Addr().String()
		if code, _ := get(t, "http://"+addr+"/metrics"); code != 200 {
			t.Fatalf("GET /metrics = %d", code)
		}
		if err := srv.Close(); err != nil {
			t.Fatalf("clean Close returned %v", err)
		}
		if _, err := http.Get("http://" + addr + "/metrics"); err == nil {
			t.Fatal("listener still accepting after Close")
		}
		// The port is released: a second server can bind it immediately.
		again, err := Serve(addr, Handler(NewRegistry()))
		if err != nil {
			t.Fatalf("rebinding released address: %v", err)
		}
		if err := again.Close(); err != nil {
			t.Fatal(err)
		}
	})
}

func TestHandlerProm(t *testing.T) {
	withObs(t, func() {
		r := NewRegistry()
		r.Counter("tcpnet.bytes_out").Add(512)
		r.Gauge("pull.workers").Set(8)
		h := r.Histogram("pull.ns", []int64{10, 100})
		h.Observe(5)
		h.Observe(50)
		h.Observe(5000)

		resp, err := http.Get(serveOne(t, NewHandler(r, HandlerOpts{})) + "/metrics.prom")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
			t.Fatalf("Content-Type = %q", ct)
		}
		want := `# TYPE cods_tcpnet_bytes_out counter
cods_tcpnet_bytes_out 512
# TYPE cods_pull_workers gauge
cods_pull_workers 8
# TYPE cods_pull_ns histogram
cods_pull_ns_bucket{le="10"} 1
cods_pull_ns_bucket{le="100"} 2
cods_pull_ns_bucket{le="+Inf"} 3
cods_pull_ns_sum 5055
cods_pull_ns_count 3
`
		if string(body) != want {
			t.Fatalf("prom exposition:\ngot:\n%s\nwant:\n%s", body, want)
		}
	})
}

func TestHandlerFlows(t *testing.T) {
	withObs(t, func() {
		log := []cluster.Flow{{Src: 1, Dst: 0, Medium: "network", Class: "inter-app", Bytes: 100}}
		base := serveOne(t, NewHandler(NewRegistry(), HandlerOpts{
			Flows: func() []cluster.Flow { return log },
		}))

		var m FlowMatrix
		_, body := get(t, base+"/flows")
		if err := json.Unmarshal([]byte(body), &m); err != nil {
			t.Fatalf("%v\n%s", err, body)
		}
		if len(m.Cells) != 1 || m.Cells[0].Bytes != 100 || m.Cells[0].Delta != 100 {
			t.Fatalf("first scrape = %+v", m)
		}
		log[0].Bytes = 160
		_, body = get(t, base+"/flows")
		if err := json.Unmarshal([]byte(body), &m); err != nil {
			t.Fatal(err)
		}
		if m.Cells[0].Bytes != 160 || m.Cells[0].Delta != 60 {
			t.Fatalf("windowed scrape = %+v", m.Cells[0])
		}
	})
}

func TestHandlerPprofGating(t *testing.T) {
	withObs(t, func() {
		// Without the opt-in the path falls through to the catch-all JSON
		// snapshot; the profile index must not be reachable.
		withoutPprof := serveOne(t, NewHandler(NewRegistry(), HandlerOpts{}))
		if _, body := get(t, withoutPprof+"/debug/pprof/"); strings.Contains(body, "profiles") {
			t.Fatalf("pprof index served without opt-in:\n%s", body)
		}
		withPprof := serveOne(t, NewHandler(NewRegistry(), HandlerOpts{Pprof: true}))
		if code, body := get(t, withPprof+"/debug/pprof/cmdline"); code != 200 {
			t.Fatalf("pprof cmdline = %d %q", code, body)
		}
	})
}

// serveOne starts a server for h, closed with the test, returning its base
// URL.
func serveOne(t *testing.T, h http.Handler) string {
	t.Helper()
	srv, err := Serve("127.0.0.1:0", h)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { srv.Close() })
	return "http://" + srv.Addr().String()
}
