package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// The span tracer records begin/end events of named operations with parent
// linkage, so a workflow run can be unfolded into a tree: workflow ->
// bundle group -> task -> pull. Events are serialized as JSON Lines, the
// same stream-appendable one-object-per-line format internal/trace uses
// for flow dumps — a span trace extends a flow trace rather than replacing
// it, and the two can be concatenated into one file without ambiguity
// (span events carry an "ev" discriminator field flows never have).

// SpanID identifies one span within a tracer. 0 means "no span" and is
// used as the root parent.
type SpanID uint64

// SpanEvent is the serialized form of one tracer event.
type SpanEvent struct {
	// Ev discriminates the event kind: "b" for begin, "e" for end, "i"
	// for an instantaneous event (retries, injected faults, recoveries).
	Ev string `json:"ev"`
	// ID is the span's identifier, unique per tracer.
	ID SpanID `json:"id"`
	// Parent links to the enclosing span (0 = root).
	Parent SpanID `json:"parent,omitempty"`
	// Name labels the operation, e.g. "task:2:1" or "pull:data.1".
	Name string `json:"name"`
	// T is the event time in nanoseconds relative to the tracer's start.
	// In a merged cross-process trace each process's events keep their own
	// origin; parent linkage, not T, is what relates spans across nodes.
	T int64 `json:"t_ns"`
	// Dur is the span duration in nanoseconds, set on end events.
	Dur int64 `json:"dur_ns,omitempty"`
	// Node labels the emitting node in a merged cross-process trace
	// (e.g. "node2"). Empty for driver-local spans.
	Node string `json:"node,omitempty"`
}

// Tracer streams span events to a writer. All methods are safe for
// concurrent use, and every method on a nil *Tracer is a no-op, so
// instrumented code never branches on whether tracing is wired up.
type Tracer struct {
	mu     sync.Mutex
	bw     *bufio.Writer
	enc    *json.Encoder
	err    error
	start  time.Time
	nextID atomic.Uint64
	node   atomic.Pointer[string]
}

// NewTracer creates a tracer writing JSON Lines span events to w.
func NewTracer(w io.Writer) *Tracer {
	bw := bufio.NewWriter(w)
	return &Tracer{bw: bw, enc: json.NewEncoder(bw), start: time.Now()}
}

// SetIDBase namespaces the tracer's span identifiers: subsequent spans get
// IDs strictly above base. When traces from several processes are merged
// into one file, giving each process a disjoint base (node k starts at
// (k+1)<<48, the driver stays below 1<<48) keeps IDs unique without any
// cross-process coordination. Call before the first Start. Safe on nil.
func (t *Tracer) SetIDBase(base uint64) {
	if t == nil {
		return
	}
	t.nextID.Store(base)
}

// SetNode sets a node label stamped on every subsequent begin and instant
// event, identifying the emitting process in a merged trace. Safe on nil.
func (t *Tracer) SetNode(node string) {
	if t == nil {
		return
	}
	t.node.Store(&node)
}

func (t *Tracer) nodeLabel() string {
	if p := t.node.Load(); p != nil {
		return *p
	}
	return ""
}

// Span is a live span handle; call End exactly once.
type Span struct {
	tr    *Tracer
	id    SpanID
	name  string
	node  string
	begin time.Time
}

// ID returns the span's identifier (0 for the zero Span).
func (s Span) ID() SpanID { return s.id }

// Start begins a new span under parent (0 for a root span) and writes its
// begin event.
func (t *Tracer) Start(parent SpanID, name string) Span {
	if t == nil {
		return Span{}
	}
	return t.StartNode(parent, name, t.nodeLabel())
}

// StartNode begins a span like Start but with an explicit node label,
// overriding the tracer-wide SetNode default. A backend that serves
// several nodes from one process (the loopback backend in tests) uses
// this to label each handler span with the node that executed it.
func (t *Tracer) StartNode(parent SpanID, name, node string) Span {
	if t == nil {
		return Span{}
	}
	id := SpanID(t.nextID.Add(1))
	now := time.Now()
	t.emit(SpanEvent{Ev: "b", ID: id, Parent: parent, Name: name, T: now.Sub(t.start).Nanoseconds(), Node: node})
	return Span{tr: t, id: id, name: name, begin: now, node: node}
}

// End writes the span's end event with its measured duration. End on the
// zero Span is a no-op.
func (s Span) End() {
	if s.tr == nil {
		return
	}
	now := time.Now()
	s.tr.emit(SpanEvent{
		Ev:   "e",
		ID:   s.id,
		Name: s.name,
		T:    now.Sub(s.tr.start).Nanoseconds(),
		Dur:  now.Sub(s.begin).Nanoseconds(),
		Node: s.node,
	})
}

// Event emits an instantaneous event under parent (ev "i"): a named point
// in time with no duration, used for retries, injected faults and
// recoveries. Safe on a nil tracer.
func (t *Tracer) Event(parent SpanID, name string) {
	if t == nil {
		return
	}
	id := SpanID(t.nextID.Add(1))
	t.emit(SpanEvent{Ev: "i", ID: id, Parent: parent, Name: name, T: time.Since(t.start).Nanoseconds(), Node: t.nodeLabel()})
}

// AppendRaw splices pre-encoded JSON Lines span events — the drained
// buffer of a remote tracer — into this tracer's stream. The bytes are
// written verbatim (a trailing newline is added if missing), interleaved
// atomically with locally emitted events, so a driver can fold every
// node's spans into its own trace file before Flush. Remote events keep
// their own time origin; parent linkage relates them to driver spans.
// Safe on a nil tracer and with empty input.
func (t *Tracer) AppendRaw(lines []byte) {
	if t == nil || len(lines) == 0 {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	if _, err := t.bw.Write(lines); err != nil {
		t.err = err
		return
	}
	if lines[len(lines)-1] != '\n' {
		t.err = t.bw.WriteByte('\n')
	}
}

// emit serializes one event; the first write error sticks and is returned
// by Flush.
func (t *Tracer) emit(ev SpanEvent) {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return
	}
	t.err = t.enc.Encode(ev)
}

// Flush drains buffered events to the underlying writer and returns the
// first error seen, if any. Safe on a nil tracer.
func (t *Tracer) Flush() error {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.err != nil {
		return t.err
	}
	return t.bw.Flush()
}

// ReadSpans loads a JSON Lines span trace, reporting malformed input with
// its 1-based line number.
func ReadSpans(r io.Reader) ([]SpanEvent, error) {
	br := bufio.NewReader(r)
	var out []SpanEvent
	line := 0
	for {
		text, err := br.ReadString('\n')
		if text != "" {
			line++
			if trimmed := strings.TrimSpace(text); trimmed != "" {
				var ev SpanEvent
				if uerr := json.Unmarshal([]byte(trimmed), &ev); uerr != nil {
					return nil, fmt.Errorf("obs: line %d: %w", line, uerr)
				}
				out = append(out, ev)
			}
		}
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return nil, err
		}
	}
}
