package obs

import (
	"io"
	"net/http"
	"path/filepath"
	"strings"
	"testing"
)

func TestReportReconciliation(t *testing.T) {
	withObs(t, func() {
		Default.Counter("test.report.bytes").Add(42)
		rep := NewReport("obs_test")
		rep.SetMeta("k", "v")
		rep.AddCheck("bytes", 42, 42)
		if !rep.Reconciled {
			t.Fatal("matching check flagged as drift")
		}
		rep.AddCheck("ops", 3, 4)
		if rep.Reconciled {
			t.Fatal("mismatch not flagged")
		}
		path := filepath.Join(t.TempDir(), "sub", "report.json")
		if err := rep.WriteFile(path); err != nil {
			t.Fatal(err)
		}
		back, err := ReadReport(path)
		if err != nil {
			t.Fatal(err)
		}
		if back.GeneratedBy != "obs_test" || back.Meta["k"] != "v" || len(back.Checks) != 2 {
			t.Fatalf("round trip = %+v", back)
		}
		if back.Checks[1].Match || back.Reconciled {
			t.Fatalf("drift lost in round trip: %+v", back)
		}
		if back.Metrics.Counters["test.report.bytes"] < 42 {
			t.Fatalf("snapshot missing counter: %+v", back.Metrics.Counters)
		}
	})
}

func TestHTTPEndpoint(t *testing.T) {
	withObs(t, func() {
		r := NewRegistry()
		r.Counter("http.hits").Add(7)
		srv, err := Serve("127.0.0.1:0", Handler(r))
		if err != nil {
			t.Fatal(err)
		}
		defer srv.Close()
		base := "http://" + srv.Addr().String()
		resp, err := http.Get(base + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		if resp.StatusCode != 200 || !strings.Contains(string(body), "http.hits") {
			t.Fatalf("status %d body %s", resp.StatusCode, body)
		}
		resp, err = http.Get(base + "/metrics.txt")
		if err != nil {
			t.Fatal(err)
		}
		body, _ = io.ReadAll(resp.Body)
		resp.Body.Close()
		if !strings.Contains(string(body), "counter http.hits") {
			t.Fatalf("text body %s", body)
		}
	})
}
