package obs

import (
	"sort"
	"sync"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/mutate"
)

// The flow matrix is the aggregated view of the fabric's flow log: one
// cell per (src node, dst node, medium, class) with its total byte count.
// It is the data feed the ROADMAP's adaptive re-mapping loop consumes —
// a placement policy wants "who talks to whom, over what, how much", not
// the raw per-transfer log. The /flows HTTP view serves it live with
// windowed deltas, so a scraper polling between coupling iterations sees
// the traffic of just the last window.

// FlowCell is one aggregated cell of the flow matrix.
type FlowCell struct {
	Src    int    `json:"src"`
	Dst    int    `json:"dst"`
	Medium string `json:"medium"`
	Class  string `json:"class"`
	Bytes  int64  `json:"bytes"`
	// Delta is the byte growth since the previous observation window,
	// set by FlowWindow.Update (a cell's first observation reports its
	// full count).
	Delta int64 `json:"delta_bytes"`
}

// FlowMatrix is the aggregated per-(src,dst)/per-medium byte matrix,
// cells sorted by (src, dst, medium, class).
type FlowMatrix struct {
	Cells      []FlowCell `json:"cells"`
	TotalBytes int64      `json:"total_bytes"`
}

type flowCellKey struct {
	src, dst      int
	medium, class string
}

// BuildFlowMatrix aggregates a raw flow log into the matrix form. The
// aggregation is exact: summing any column back reproduces the log's
// totals, and the conformance harness holds the inter-app cells to the
// model-predicted intersection volumes.
func BuildFlowMatrix(flows []cluster.Flow) FlowMatrix {
	cells := make(map[flowCellKey]int64, len(flows))
	var total int64
	for _, f := range flows {
		k := flowCellKey{src: int(f.Src), dst: int(f.Dst), medium: f.Medium, class: f.Class}
		if mutate.Enabled(mutate.ObsFlowMisattribute) && k.src != k.dst {
			k.dst++ // seeded defect: credit the wrong destination node
		}
		cells[k] += f.Bytes
		total += f.Bytes
	}
	m := FlowMatrix{TotalBytes: total}
	if len(cells) > 0 {
		m.Cells = make([]FlowCell, 0, len(cells))
		for k, b := range cells {
			m.Cells = append(m.Cells, FlowCell{Src: k.src, Dst: k.dst, Medium: k.medium, Class: k.class, Bytes: b})
		}
		sort.Slice(m.Cells, func(i, j int) bool {
			a, b := m.Cells[i], m.Cells[j]
			if a.Src != b.Src {
				return a.Src < b.Src
			}
			if a.Dst != b.Dst {
				return a.Dst < b.Dst
			}
			if a.Medium != b.Medium {
				return a.Medium < b.Medium
			}
			return a.Class < b.Class
		})
	}
	return m
}

// FlowWindow tracks per-cell byte counts across successive observations
// and annotates each matrix with the growth since the previous one. Safe
// for concurrent use (scrapes serialize on the window's mutex).
type FlowWindow struct {
	mu   sync.Mutex
	prev map[flowCellKey]int64
}

// NewFlowWindow creates an empty window; the first Update reports every
// cell's full byte count as its delta.
func NewFlowWindow() *FlowWindow {
	return &FlowWindow{prev: make(map[flowCellKey]int64)}
}

// Update sets Delta on every cell of m to its byte growth since the last
// Update, then records m as the new baseline.
func (w *FlowWindow) Update(m *FlowMatrix) {
	w.mu.Lock()
	defer w.mu.Unlock()
	next := make(map[flowCellKey]int64, len(m.Cells))
	for i := range m.Cells {
		c := &m.Cells[i]
		k := flowCellKey{src: c.Src, dst: c.Dst, medium: c.Medium, class: c.Class}
		c.Delta = c.Bytes - w.prev[k]
		next[k] = c.Bytes
	}
	w.prev = next
}
