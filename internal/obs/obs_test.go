package obs

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

// withObs runs f with observability enabled, restoring the previous state.
func withObs(t *testing.T, f func()) {
	t.Helper()
	prev := Enabled()
	Enable(true)
	defer Enable(prev)
	f()
}

func TestCounterDisabledIsNoop(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x")
	Enable(false)
	c.Add(5)
	c.Inc()
	if c.Value() != 0 {
		t.Fatalf("disabled counter = %d, want 0", c.Value())
	}
}

func TestCounterGaugeBasics(t *testing.T) {
	withObs(t, func() {
		r := NewRegistry()
		c := r.Counter("ops")
		if again := r.Counter("ops"); again != c {
			t.Fatal("Counter not idempotent")
		}
		c.Add(3)
		c.Inc()
		if c.Value() != 4 {
			t.Fatalf("counter = %d, want 4", c.Value())
		}
		g := r.Gauge("depth")
		g.Set(7)
		g.Add(-2)
		if g.Value() != 5 {
			t.Fatalf("gauge = %d, want 5", g.Value())
		}
	})
}

func TestHistogramBuckets(t *testing.T) {
	withObs(t, func() {
		r := NewRegistry()
		h := r.Histogram("lat", []int64{10, 100, 1000})
		for _, v := range []int64{1, 10, 11, 100, 5000} {
			h.Observe(v)
		}
		if h.Count() != 5 || h.Sum() != 5122 {
			t.Fatalf("count=%d sum=%d", h.Count(), h.Sum())
		}
		snap := r.Snapshot()
		if len(snap.Histograms) != 1 {
			t.Fatalf("histograms = %+v", snap.Histograms)
		}
		got := map[int64]int64{}
		for _, b := range snap.Histograms[0].Buckets {
			got[b.UpperBound] = b.Count
		}
		// 1,10 <= 10; 11,100 <= 100; 5000 overflows.
		if got[10] != 2 || got[100] != 2 || got[overflowBound] != 1 {
			t.Fatalf("buckets = %v", got)
		}
	})
}

func TestRegistryConcurrent(t *testing.T) {
	withObs(t, func() {
		r := NewRegistry()
		const workers = 8
		const perWorker = 1000
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				c := r.Counter("shared")
				h := r.Histogram("hist", DefaultLatencyBounds())
				for i := 0; i < perWorker; i++ {
					c.Inc()
					h.Observe(int64(i))
					r.Gauge("g").Set(int64(i))
				}
			}()
		}
		wg.Wait()
		if got := r.Counter("shared").Value(); got != workers*perWorker {
			t.Fatalf("counter = %d, want %d", got, workers*perWorker)
		}
		if got := r.Histogram("hist", nil).Count(); got != workers*perWorker {
			t.Fatalf("hist count = %d, want %d", got, workers*perWorker)
		}
	})
}

// TestEnableRace flips the global switch while writers hammer instruments;
// the counters must stay torn-free under -race (exact totals depend on
// timing and are not asserted).
func TestEnableRace(t *testing.T) {
	prev := Enabled()
	defer Enable(prev)
	r := NewRegistry()
	c := r.Counter("racy")
	h := r.Histogram("racy_h", []int64{10})
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
					c.Inc()
					h.Observe(5)
				}
			}
		}()
	}
	for i := 0; i < 100; i++ {
		Enable(i%2 == 0)
	}
	close(stop)
	wg.Wait()
}

func TestResetKeepsPointersValid(t *testing.T) {
	withObs(t, func() {
		r := NewRegistry()
		c := r.Counter("c")
		h := r.Histogram("h", []int64{10})
		c.Add(9)
		h.Observe(3)
		r.Reset()
		if c.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
			t.Fatal("Reset left residue")
		}
		c.Inc()
		if c.Value() != 1 {
			t.Fatal("held pointer dead after Reset")
		}
	})
}

func TestWriteTextStable(t *testing.T) {
	withObs(t, func() {
		r := NewRegistry()
		r.Counter("b.ops").Add(2)
		r.Counter("a.ops").Add(1)
		r.Gauge("depth").Set(3)
		r.Histogram("lat", []int64{10}).Observe(4)
		var buf bytes.Buffer
		if err := r.WriteText(&buf); err != nil {
			t.Fatal(err)
		}
		out := buf.String()
		ia, ib := strings.Index(out, "a.ops"), strings.Index(out, "b.ops")
		if ia < 0 || ib < 0 || ia > ib {
			t.Fatalf("counters unsorted:\n%s", out)
		}
		for _, want := range []string{"gauge", "depth", "hist", "lat", "count=1"} {
			if !strings.Contains(out, want) {
				t.Fatalf("missing %q in:\n%s", want, out)
			}
		}
	})
}

func TestSnapshotDisabledFlag(t *testing.T) {
	Enable(false)
	if NewRegistry().Snapshot().Enabled {
		t.Fatal("snapshot claims enabled")
	}
}
