// Package membership implements the elastic cluster layer: serving
// processes (codsnode) register with the driver, hold a TTL lease renewed
// by heartbeat probes, and leave either gracefully (depart) or by lease
// expiry (crash). A desired-state reconcile loop — the operator-controller
// idiom: observe the current state, diff it against the desired member
// set, converge — re-splits the DHT intervals and re-stages or
// re-registers the staged variables recorded in the put ledger, while
// in-flight pulls retry against the updated routing table.
//
// The package is deliberately mechanism-only: it owns the registry, the
// ledger, the lease monitor and the reconcile bookkeeping, and delegates
// the actual convergence actions (re-stage a block, re-insert a location
// record, re-split intervals) to callbacks bound by the embedding driver,
// so it stays free of transport and pull-engine dependencies.
package membership

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/mutate"
	"github.com/insitu/cods/internal/obs"
)

// Registry instruments. migrated_bytes/migrated_blocks are the migration
// counters the driver report reconciles against the reconciler's result.
var (
	obsJoins       = obs.C("membership.joins")
	obsDeparts     = obs.C("membership.departs")
	obsExpirations = obs.C("membership.expirations")
	obsRenewals    = obs.C("membership.leases_renewed")
	obsMigBytes    = obs.C("membership.migrated_bytes")
	obsMigBlocks   = obs.C("membership.migrated_blocks")
	obsReinserts   = obs.C("membership.reinserted_records")
)

// State is the lifecycle state of a member.
type State int

const (
	// Alive: the lease is current.
	Alive State = iota
	// Expired: the lease ran out without renewal (a crash).
	Expired
	// Departed: the member left gracefully.
	Departed
)

func (s State) String() string {
	switch s {
	case Alive:
		return "alive"
	case Expired:
		return "expired"
	case Departed:
		return "departed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Member is one registered serving process.
type Member struct {
	Node        cluster.NodeID `json:"node"`
	Addr        string         `json:"addr"`
	Incarnation uint64         `json:"incarnation"`
	State       string         `json:"state"`
	Renewals    int64          `json:"renewals"`
	// Expires is when the current lease runs out (meaningful while alive).
	Expires time.Time `json:"expires"`
}

// member is the internal mutable record behind a Member snapshot.
type member struct {
	addr        string
	incarnation uint64
	state       State
	renewals    int64
	expires     time.Time
}

// Registry tracks the cluster's member set under TTL leases. The clock is
// injectable so lease expiry is testable without sleeping; every state
// transition is counted in the obs registry and reported to the optional
// event hook (the driver turns events into trace spans).
type Registry struct {
	ttl time.Duration

	mu      sync.Mutex
	now     func() time.Time
	members map[cluster.NodeID]*member
	onEvent func(event string, node cluster.NodeID)
}

// NewRegistry creates a registry granting leases of the given TTL.
func NewRegistry(ttl time.Duration) *Registry {
	return &Registry{
		ttl:     ttl,
		now:     time.Now,
		members: make(map[cluster.NodeID]*member),
	}
}

// TTL returns the lease duration.
func (r *Registry) TTL() time.Duration { return r.ttl }

// SetClock injects the time source (tests drive expiry with a fake clock).
func (r *Registry) SetClock(now func() time.Time) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.now = now
}

// SetEventHook installs a callback invoked (outside the registry lock is
// NOT guaranteed — keep it cheap) on every membership event: "join",
// "renew", "depart", "expire".
func (r *Registry) SetEventHook(fn func(event string, node cluster.NodeID)) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.onEvent = fn
}

func (r *Registry) emit(event string, node cluster.NodeID) {
	if r.onEvent != nil {
		r.onEvent(event, node)
	}
}

// Join registers a serving process for a node and grants it a fresh
// lease. A replacement for a node seen before must carry a strictly
// higher incarnation — a join that replays a dead process's identity is
// rejected, so a partitioned old process cannot reclaim its slot.
func (r *Registry) Join(node cluster.NodeID, addr string, incarnation uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[node]; ok {
		if incarnation <= m.incarnation {
			return fmt.Errorf("membership: node %d join with incarnation %d, already saw %d",
				node, incarnation, m.incarnation)
		}
	}
	r.members[node] = &member{
		addr:        addr,
		incarnation: incarnation,
		state:       Alive,
		expires:     r.now().Add(r.ttl),
	}
	obsJoins.Inc()
	r.emit("join", node)
	return nil
}

// Renew extends a member's lease. The renewal must carry the incarnation
// the lease was granted to: a heartbeat from a superseded process does
// not keep its successor's slot alive, and a member that already expired
// or departed must re-join instead of renewing.
func (r *Registry) Renew(node cluster.NodeID, incarnation uint64) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[node]
	if !ok {
		return fmt.Errorf("membership: renew for unknown node %d", node)
	}
	if m.incarnation != incarnation {
		return fmt.Errorf("membership: node %d renew with incarnation %d, lease held by %d",
			node, incarnation, m.incarnation)
	}
	if m.state != Alive {
		return fmt.Errorf("membership: node %d renew while %s", node, m.state)
	}
	m.expires = r.now().Add(r.ttl)
	m.renewals++
	obsRenewals.Inc()
	r.emit("renew", node)
	return nil
}

// Depart marks a member as gracefully gone.
func (r *Registry) Depart(node cluster.NodeID) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	m, ok := r.members[node]
	if !ok {
		return fmt.Errorf("membership: depart for unknown node %d", node)
	}
	if m.state == Alive {
		m.state = Departed
		obsDeparts.Inc()
		r.emit("depart", node)
	}
	return nil
}

// Sweep transitions every alive member whose lease ran out to Expired and
// returns the nodes that expired in this pass. The reconcile loop calls
// it each tick: a non-empty result is a topology change to converge on.
func (r *Registry) Sweep() []cluster.NodeID {
	if mutate.Enabled(mutate.LeaseExpiryIgnored) {
		// Seeded defect: every lease looks live forever, so a crashed
		// node is never expired and the reconcile loop never runs.
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	now := r.now()
	var expired []cluster.NodeID
	for node, m := range r.members {
		if m.state == Alive && now.After(m.expires) {
			m.state = Expired
			expired = append(expired, node)
			obsExpirations.Inc()
			r.emit("expire", node)
		}
	}
	sort.Slice(expired, func(i, j int) bool { return expired[i] < expired[j] })
	return expired
}

// Incarnation returns the incarnation currently holding a node's slot
// (0 when the node never joined).
func (r *Registry) Incarnation(node cluster.NodeID) uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if m, ok := r.members[node]; ok {
		return m.incarnation
	}
	return 0
}

// Alive returns the node ids of the members currently holding a live
// lease, ascending — the desired member set the reconcile loop converges
// the routing onto.
func (r *Registry) Alive() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	var out []int
	for node, m := range r.members {
		if m.state == Alive {
			out = append(out, int(node))
		}
	}
	sort.Ints(out)
	return out
}

// Members returns a snapshot of every registered member, ascending by
// node — the payload of the obs /members endpoint.
func (r *Registry) Members() []Member {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Member, 0, len(r.members))
	for node, m := range r.members {
		out = append(out, Member{
			Node:        node,
			Addr:        m.addr,
			Incarnation: m.incarnation,
			State:       m.state.String(),
			Renewals:    m.renewals,
			Expires:     m.expires,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Node < out[j].Node })
	return out
}

// Block is one ledger record of a sequentially staged block: enough to
// re-stage it byte-identically at a replacement owner.
type Block struct {
	Var     string
	Version int
	Region  geometry.BBox
	Owner   cluster.CoreID
	Data    []float64
}

// Bytes returns the staged payload size of the block.
func (b Block) Bytes() int64 { return int64(len(b.Data)) * 8 }

func blockKey(v string, version int, region geometry.BBox, owner cluster.CoreID) string {
	return fmt.Sprintf("%s|%d|%s|%d", v, version, region.String(), owner)
}

// Ledger records every sequentially staged block in the driver's memory —
// the durable side channel the reconcile loop re-stages from when an
// owner crashes without handing its buffers off. It implements
// cods.PutRecorder.
type Ledger struct {
	mu     sync.Mutex
	blocks map[string]Block
}

// NewLedger creates an empty ledger.
func NewLedger() *Ledger {
	return &Ledger{blocks: make(map[string]Block)}
}

// RecordPut stores a copy of a staged block (cods.PutRecorder).
func (l *Ledger) RecordPut(v string, version int, region geometry.BBox, owner cluster.CoreID, data []float64) {
	b := Block{Var: v, Version: version, Region: region.Clone(), Owner: owner,
		Data: append([]float64(nil), data...)}
	l.mu.Lock()
	l.blocks[blockKey(v, version, region, owner)] = b
	l.mu.Unlock()
}

// RecordDiscard drops a block's record (cods.PutRecorder).
func (l *Ledger) RecordDiscard(v string, version int, region geometry.BBox, owner cluster.CoreID) {
	l.mu.Lock()
	delete(l.blocks, blockKey(v, version, region, owner))
	l.mu.Unlock()
}

// Blocks returns a snapshot of every recorded block, sorted by key so
// convergence order is deterministic.
func (l *Ledger) Blocks() []Block {
	l.mu.Lock()
	defer l.mu.Unlock()
	keys := make([]string, 0, len(l.blocks))
	for k := range l.blocks {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]Block, 0, len(keys))
	for _, k := range keys {
		out = append(out, l.blocks[k])
	}
	return out
}

// Len returns the number of recorded blocks.
func (l *Ledger) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.blocks)
}

// Actions binds the reconciler's convergence steps to the embedding
// driver's mechanisms.
type Actions struct {
	// Restage re-stages one ledger block whose owning process restarted:
	// the buffer must be exposed again at the owner core and its location
	// re-registered. Re-staging is idempotent on the lookup side.
	Restage func(b Block) error
	// Reinsert re-registers the location records of a block whose owner
	// survived — records that lived on a dead member's DHT interval were
	// lost with it, and inserts are idempotent where they were not.
	Reinsert func(b Block) error
	// Resplit converges the DHT interval assignment onto the alive member
	// set, handing surviving entries off; returns the number of records
	// moved. Nil skips the step (a replacement took the dead node's slot,
	// so the assignment is unchanged).
	Resplit func(alive []int) (int, error)
	// Invalidate drops every cached communication schedule, so pulls
	// re-query the converged routing instead of a pre-change owner.
	Invalidate func()
}

// Result is the accounting of one reconcile pass. MigratedBytes must
// reconcile delta-0 against the membership.migrated_bytes counter.
type Result struct {
	Affected      []cluster.NodeID
	RestagedCount int64
	MigratedBytes int64
	Reinserted    int64
	MovedRecords  int64
}

// Reconciler converges the data plane onto the registry's desired member
// set: observe (registry state + ledger), diff (which owners live on
// affected nodes), converge (re-stage, re-insert, re-split, invalidate).
type Reconciler struct {
	reg     *Registry
	ledger  *Ledger
	machine *cluster.Machine
	acts    Actions
}

// NewReconciler binds a reconciler to its observation sources and
// convergence actions.
func NewReconciler(reg *Registry, ledger *Ledger, m *cluster.Machine, acts Actions) *Reconciler {
	return &Reconciler{reg: reg, ledger: ledger, machine: m, acts: acts}
}

// Reconcile converges after the given nodes lost their serving process
// (crash + replacement join, or graceful depart + rejoin). Every ledger
// block owned by a core of an affected node is re-staged; every other
// block has its location records re-registered (they may have lived on an
// affected member's DHT interval); routing is re-split when the member
// set itself changed; finally every cached schedule is invalidated so
// in-flight and future pulls route against the converged state.
func (rc *Reconciler) Reconcile(affected []cluster.NodeID) (Result, error) {
	res := Result{Affected: append([]cluster.NodeID(nil), affected...)}
	hit := make(map[cluster.NodeID]bool, len(affected))
	for _, n := range affected {
		hit[n] = true
	}
	if rc.acts.Resplit != nil {
		moved, err := rc.acts.Resplit(rc.reg.Alive())
		if err != nil {
			return res, fmt.Errorf("membership: resplit: %w", err)
		}
		res.MovedRecords = int64(moved)
	}
	for _, b := range rc.ledger.Blocks() {
		if hit[rc.machine.NodeOf(b.Owner)] {
			if err := rc.acts.Restage(b); err != nil {
				return res, fmt.Errorf("membership: restaging %s v%d %s: %w", b.Var, b.Version, b.Region, err)
			}
			res.RestagedCount++
			res.MigratedBytes += b.Bytes()
			obsMigBlocks.Inc()
			obsMigBytes.Add(b.Bytes())
			continue
		}
		if rc.acts.Reinsert != nil {
			if err := rc.acts.Reinsert(b); err != nil {
				return res, fmt.Errorf("membership: re-registering %s v%d %s: %w", b.Var, b.Version, b.Region, err)
			}
			res.Reinserted++
			obsReinserts.Inc()
		}
	}
	if rc.acts.Invalidate != nil {
		rc.acts.Invalidate()
	}
	return res, nil
}

// Monitor renews every alive member's lease on a fixed interval by
// probing the serving process (Backend.ProbeLease under the TCP backend).
// Members are probed concurrently — a stalled probe to one node must not
// starve another node's renewal past its TTL — and a failed probe is
// re-tried briefly within the pass before the renewal is given up, so a
// transient dial failure during a neighbor's replacement does not eat a
// healthy lease. A probe that fails every attempt is still not an error —
// the lease simply is not renewed, and expiry surfaces the crash on the
// next Sweep. The steady-state overhead of a running monitor is what
// benchguard's elastic gate bounds.
type Monitor struct {
	reg      *Registry
	interval time.Duration
	probe    func(node cluster.NodeID, incarnation uint64) error

	stop chan struct{}
	done chan struct{}
	once sync.Once
}

// NewMonitor creates a lease monitor probing each alive member every
// interval.
func NewMonitor(reg *Registry, interval time.Duration, probe func(node cluster.NodeID, incarnation uint64) error) *Monitor {
	return &Monitor{
		reg:      reg,
		interval: interval,
		probe:    probe,
		stop:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the renewal loop.
func (mo *Monitor) Start() {
	go func() {
		defer close(mo.done)
		t := time.NewTicker(mo.interval)
		defer t.Stop()
		for {
			select {
			case <-mo.stop:
				return
			case <-t.C:
				mo.renewAll()
			}
		}
	}()
}

// probeAttempts is how many times one renewal pass tries a member's probe
// before giving up on that pass; retries are spaced a fraction of the
// renewal interval apart so a full pass stays within one interval.
const probeAttempts = 3

func (mo *Monitor) renewAll() {
	var wg sync.WaitGroup
	for _, m := range mo.reg.Members() {
		if m.State != Alive.String() {
			continue
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			for attempt := 1; ; attempt++ {
				if err := mo.probe(m.Node, m.Incarnation); err == nil {
					_ = mo.reg.Renew(m.Node, m.Incarnation)
					return
				}
				if attempt >= probeAttempts {
					return // not renewed; expiry will surface it
				}
				time.Sleep(mo.interval / 4)
			}
		}()
	}
	wg.Wait()
}

// Stop halts the renewal loop and waits for it to exit. Idempotent.
func (mo *Monitor) Stop() {
	mo.once.Do(func() { close(mo.stop) })
	<-mo.done
}
