package membership

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/geometry"
)

// fakeClock is an injectable time source driven by the test.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func newFakeClock() *fakeClock { return &fakeClock{t: time.Unix(1000, 0)} }

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func TestLeaseLifecycle(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(time.Second)
	r.SetClock(clk.now)

	if err := r.Join(0, "a:1", 1); err != nil {
		t.Fatal(err)
	}
	if err := r.Join(1, "b:1", 1); err != nil {
		t.Fatal(err)
	}
	if got := r.Alive(); len(got) != 2 {
		t.Fatalf("alive %v, want both members", got)
	}
	// Renewal within the TTL keeps the lease; time passes, node 1 stops
	// renewing and expires while node 0's renewed lease survives.
	clk.advance(700 * time.Millisecond)
	if err := r.Renew(0, 1); err != nil {
		t.Fatal(err)
	}
	clk.advance(700 * time.Millisecond)
	expired := r.Sweep()
	if len(expired) != 1 || expired[0] != 1 {
		t.Fatalf("sweep returned %v, want [1]", expired)
	}
	if got := r.Alive(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("alive %v, want [0]", got)
	}
	// A second sweep reports nothing new.
	if again := r.Sweep(); len(again) != 0 {
		t.Fatalf("second sweep returned %v", again)
	}
	// An expired member cannot renew; a replacement must re-join with a
	// higher incarnation, and a replayed identity is rejected.
	if err := r.Renew(1, 1); err == nil {
		t.Fatal("renew of an expired lease succeeded")
	}
	if err := r.Join(1, "b:2", 1); err == nil {
		t.Fatal("join replaying the dead incarnation succeeded")
	}
	if err := r.Join(1, "b:2", 2); err != nil {
		t.Fatal(err)
	}
	if got := r.Alive(); len(got) != 2 {
		t.Fatalf("alive %v after rejoin, want both", got)
	}
	if inc := r.Incarnation(1); inc != 2 {
		t.Fatalf("incarnation %d after rejoin, want 2", inc)
	}
}

func TestRenewRequiresMatchingIncarnation(t *testing.T) {
	r := NewRegistry(time.Second)
	if err := r.Join(3, "c:1", 5); err != nil {
		t.Fatal(err)
	}
	if err := r.Renew(3, 4); err == nil {
		t.Fatal("renew with a superseded incarnation succeeded")
	}
	if err := r.Renew(3, 5); err != nil {
		t.Fatal(err)
	}
}

func TestDepartedMemberLeavesAliveSet(t *testing.T) {
	r := NewRegistry(time.Second)
	_ = r.Join(0, "a", 1)
	_ = r.Join(1, "b", 1)
	if err := r.Depart(1); err != nil {
		t.Fatal(err)
	}
	if got := r.Alive(); len(got) != 1 || got[0] != 0 {
		t.Fatalf("alive %v after depart, want [0]", got)
	}
	ms := r.Members()
	if len(ms) != 2 || ms[1].State != "departed" {
		t.Fatalf("members %+v", ms)
	}
}

func TestEventHookSeesTransitions(t *testing.T) {
	clk := newFakeClock()
	r := NewRegistry(time.Second)
	r.SetClock(clk.now)
	var events []string
	r.SetEventHook(func(ev string, node cluster.NodeID) {
		events = append(events, ev)
	})
	_ = r.Join(0, "a", 1)
	_ = r.Renew(0, 1)
	clk.advance(2 * time.Second)
	r.Sweep()
	want := []string{"join", "renew", "expire"}
	if len(events) != len(want) {
		t.Fatalf("events %v, want %v", events, want)
	}
	for i := range want {
		if events[i] != want[i] {
			t.Fatalf("events %v, want %v", events, want)
		}
	}
}

func block(v string, version int, owner cluster.CoreID, lo, hi int) Block {
	return Block{Var: v, Version: version, Owner: owner,
		Region: geometry.NewBBox(geometry.Point{lo, 0}, geometry.Point{hi, 4}),
		Data:   make([]float64, (hi-lo)*4)}
}

func TestLedgerRecordsAndDiscards(t *testing.T) {
	l := NewLedger()
	b := block("rho", 0, 2, 0, 4)
	l.RecordPut(b.Var, b.Version, b.Region, b.Owner, b.Data)
	l.RecordPut("rho", 0, b.Region, 3, b.Data) // same region, different owner
	if l.Len() != 2 {
		t.Fatalf("ledger has %d blocks, want 2", l.Len())
	}
	// The ledger must copy: mutating the caller's slice later must not
	// corrupt the recorded payload.
	b.Data[0] = 99
	if got := l.Blocks()[0].Data[0]; got != 0 {
		t.Fatalf("ledger shares the caller's slice (saw %v)", got)
	}
	l.RecordDiscard("rho", 0, b.Region, 3)
	if l.Len() != 1 {
		t.Fatalf("ledger has %d blocks after discard, want 1", l.Len())
	}
}

func TestReconcileRestagesAffectedAndReinsertsRest(t *testing.T) {
	m, err := cluster.NewMachine(3, 2) // cores 0,1 on node 0; 2,3 on node 1; 4,5 on node 2
	if err != nil {
		t.Fatal(err)
	}
	clk := newFakeClock()
	reg := NewRegistry(time.Second)
	reg.SetClock(clk.now)
	for n := 0; n < 3; n++ {
		_ = reg.Join(cluster.NodeID(n), "x", 1)
	}
	l := NewLedger()
	onDead := block("rho", 0, 2, 0, 4)  // owner core 2 → node 1
	onDead2 := block("rho", 0, 3, 4, 8) // owner core 3 → node 1
	onLive := block("rho", 0, 4, 8, 12) // owner core 4 → node 2
	for _, b := range []Block{onDead, onDead2, onLive} {
		l.RecordPut(b.Var, b.Version, b.Region, b.Owner, b.Data)
	}

	var restaged, reinserted []Block
	var resplitWith []int
	invalidated := false
	rc := NewReconciler(reg, l, m, Actions{
		Restage:  func(b Block) error { restaged = append(restaged, b); return nil },
		Reinsert: func(b Block) error { reinserted = append(reinserted, b); return nil },
		Resplit: func(alive []int) (int, error) {
			resplitWith = append([]int(nil), alive...)
			return 7, nil
		},
		Invalidate: func() { invalidated = true },
	})

	// Node 1 crashes: it stops renewing while the others heartbeat, so
	// only its lease runs out. A replacement then joins its slot.
	clk.advance(700 * time.Millisecond)
	_ = reg.Renew(0, 1)
	_ = reg.Renew(2, 1)
	clk.advance(700 * time.Millisecond)
	expired := reg.Sweep()
	if len(expired) != 1 || expired[0] != 1 {
		t.Fatalf("expired %v, want [1]", expired)
	}
	if err := reg.Join(1, "x2", 2); err != nil {
		t.Fatal(err)
	}
	res, err := rc.Reconcile(expired)
	if err != nil {
		t.Fatal(err)
	}
	if len(restaged) != 2 || len(reinserted) != 1 {
		t.Fatalf("restaged %d, reinserted %d; want 2, 1", len(restaged), len(reinserted))
	}
	wantBytes := onDead.Bytes() + onDead2.Bytes()
	if res.RestagedCount != 2 || res.MigratedBytes != wantBytes {
		t.Fatalf("result %+v, want 2 blocks / %d bytes", res, wantBytes)
	}
	if res.MovedRecords != 7 {
		t.Fatalf("moved records %d, want the resplit's count", res.MovedRecords)
	}
	if len(resplitWith) != 3 {
		t.Fatalf("resplit saw alive=%v, want all three (replacement joined)", resplitWith)
	}
	if !invalidated {
		t.Fatal("reconcile did not invalidate cached schedules")
	}
}

func TestReconcileStopsOnRestageFailure(t *testing.T) {
	m, _ := cluster.NewMachine(2, 1)
	reg := NewRegistry(time.Second)
	_ = reg.Join(0, "a", 1)
	l := NewLedger()
	b := block("rho", 0, 1, 0, 4) // owner core 1 → node 1
	l.RecordPut(b.Var, b.Version, b.Region, b.Owner, b.Data)
	boom := errors.New("boom")
	rc := NewReconciler(reg, l, m, Actions{
		Restage: func(Block) error { return boom },
	})
	if _, err := rc.Reconcile([]cluster.NodeID{1}); !errors.Is(err, boom) {
		t.Fatalf("got %v, want the restage failure", err)
	}
}

func TestMonitorRenewsUntilProbeFails(t *testing.T) {
	clk := newFakeClock()
	reg := NewRegistry(50 * time.Millisecond)
	reg.SetClock(clk.now)
	_ = reg.Join(0, "a", 1)

	var mu sync.Mutex
	healthy := true
	probes := 0
	mo := NewMonitor(reg, time.Millisecond, func(node cluster.NodeID, inc uint64) error {
		mu.Lock()
		defer mu.Unlock()
		probes++
		if !healthy {
			return errors.New("unreachable")
		}
		return nil
	})
	mo.Start()
	defer mo.Stop()

	deadline := time.Now().Add(2 * time.Second)
	for {
		mu.Lock()
		n := probes
		mu.Unlock()
		if n >= 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("monitor never probed")
		}
		time.Sleep(time.Millisecond)
	}
	// Healthy probes renewed the lease, so advancing less than a TTL past
	// the last renewal keeps the member alive.
	if got := reg.Sweep(); len(got) != 0 {
		t.Fatalf("swept %v while renewals flow", got)
	}
	// The node dies: probes fail, renewals stop, the lease expires. The
	// loop is stopped first so no in-flight healthy probe races the clock.
	mo.Stop()
	mu.Lock()
	healthy = false
	mu.Unlock()
	mo.renewAll() // a failing probe must not renew
	clk.advance(time.Hour)
	expired := reg.Sweep()
	if len(expired) != 1 || expired[0] != 0 {
		t.Fatalf("swept %v after probes fail, want [0]", expired)
	}
}
