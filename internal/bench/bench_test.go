package bench

import (
	"bytes"
	"strconv"
	"strings"
	"testing"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/mapping"
	"github.com/insitu/cods/internal/runtime"
)

// parseGB reads a table cell produced by gb().
func parseGB(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("cell %q: %v", s, err)
	}
	return v
}

func TestWeakScale(t *testing.T) {
	sc := SmallScale()
	s4, err := sc.WeakScale(4)
	if err != nil {
		t.Fatal(err)
	}
	if tasks(s4.CAP1Grid) != 4*tasks(sc.CAP1Grid) {
		t.Fatalf("CAP1 tasks = %d", tasks(s4.CAP1Grid))
	}
	// Per-task volume constant.
	volPerTask := func(s Scale, grid []int) int {
		v := 1
		for d, g := range grid {
			v *= s.Domain[d] / g
		}
		return v
	}
	if volPerTask(sc, sc.CAP1Grid) != volPerTask(s4, s4.CAP1Grid) {
		t.Fatal("weak scaling changed per-task volume")
	}
	if _, err := sc.WeakScale(3); err == nil {
		t.Fatal("non-power-of-two factor accepted")
	}
	if _, err := sc.WeakScale(0); err == nil {
		t.Fatal("zero factor accepted")
	}
}

func TestFig8ShapesSmall(t *testing.T) {
	tbl, err := Fig8(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != len(Patterns()) {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	// Matching patterns (first three rows): data-centric strictly below
	// the launcher baseline.
	for i := 0; i < 3; i++ {
		rr := parseGB(t, tbl.Rows[i][1])
		dc := parseGB(t, tbl.Rows[i][2])
		if dc >= rr {
			t.Errorf("pattern %s: dc %.3f not below rr %.3f", tbl.Rows[i][0], dc, rr)
		}
	}
}

func TestFig9ShapesSmall(t *testing.T) {
	tbl, err := Fig9(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	rr := parseGB(t, tbl.Rows[0][1])
	dc := parseGB(t, tbl.Rows[0][2])
	if dc >= rr {
		t.Fatalf("blocked/blocked sequential: dc %.3f not below rr %.3f", dc, rr)
	}
}

func TestFig10FanOutShape(t *testing.T) {
	tbl, err := Fig10(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	// Matched blocked/blocked fan-out is small; mismatched blocked/cyclic
	// equals the producer task count.
	matched, err := strconv.ParseFloat(tbl.Rows[0][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	mismatched, err := strconv.ParseFloat(tbl.Rows[3][1], 64)
	if err != nil {
		t.Fatal(err)
	}
	if matched >= mismatched {
		t.Fatalf("fan-out: matched %.1f not below mismatched %.1f", matched, mismatched)
	}
}

func TestFig11DataCentricFaster(t *testing.T) {
	tbl, err := Fig11(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		rr, err1 := strconv.ParseFloat(row[1], 64)
		dc, err2 := strconv.ParseFloat(row[2], 64)
		if err1 != nil || err2 != nil {
			t.Fatalf("row %v", row)
		}
		if dc > rr {
			t.Errorf("%s: data-centric %.1f slower than baseline %.1f", row[0], dc, rr)
		}
	}
}

func TestFig12SmallAppIncreases(t *testing.T) {
	tbl, err := Fig12(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	// CAP2's intra-app network bytes must not decrease under data-centric.
	rr := parseGB(t, tbl.Rows[1][1])
	dc := parseGB(t, tbl.Rows[1][2])
	if dc < rr {
		t.Fatalf("CAP2 intra-app: dc %.4f below rr %.4f", dc, rr)
	}
}

func TestFig14TotalsConsistent(t *testing.T) {
	tbl, err := Fig14(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		inter := parseGB(t, row[1])
		intra := parseGB(t, row[2])
		total := parseGB(t, row[3])
		if diff := inter + intra - total; diff > 0.001 || diff < -0.001 {
			t.Fatalf("row %v: breakdown does not sum", row)
		}
	}
	// Data-centric total below baseline total.
	if parseGB(t, tbl.Rows[1][3]) >= parseGB(t, tbl.Rows[0][3]) {
		t.Fatal("data-centric total not below baseline")
	}
}

func TestFig16Runs(t *testing.T) {
	tbl, err := Fig16(SmallScale(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestAllSmall(t *testing.T) {
	tables, err := All(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 9 {
		t.Fatalf("All returned %d tables", len(tables))
	}
}

// The analytic harness must agree with the executed workflows: same
// placements, same inter-application network bytes.
func TestAnalyticMatchesFunctionalConcurrent(t *testing.T) {
	sc := SmallScale()
	for _, policy := range []runtime.Policy{runtime.RoundRobin, runtime.DataCentric} {
		m, err := RunConcurrentFunctional(sc, policy, 1, true)
		if err != nil {
			t.Fatal(err)
		}
		measured := m.Metrics().Bytes(cluster.InterApp, cluster.Network)

		cs, err := NewConcurrent(sc, Patterns()[0])
		if err != nil {
			t.Fatal(err)
		}
		base, dc, err := cs.Placements()
		if err != nil {
			t.Fatal(err)
		}
		pl := base
		if policy == runtime.DataCentric {
			pl = dc
		}
		tr, err := mapping.CoupledTraffic(cs.Machine, pl, pl, cs.Prod, cs.Cons, ElemSize)
		if err != nil {
			t.Fatal(err)
		}
		if measured != tr.Network {
			t.Fatalf("%v: functional %d bytes != analytic %d bytes", policy, measured, tr.Network)
		}
	}
}

func TestAnalyticMatchesFunctionalSequential(t *testing.T) {
	sc := SmallScale()
	m, err := RunSequentialFunctional(sc, runtime.RoundRobin, true)
	if err != nil {
		t.Fatal(err)
	}
	measured := m.Metrics().Bytes(cluster.InterApp, cluster.Network)

	ss, err := NewSequential(sc, Patterns()[0])
	if err != nil {
		t.Fatal(err)
	}
	base, _, err := ss.ConsumerPlacements()
	if err != nil {
		t.Fatal(err)
	}
	tr2, err := mapping.CoupledTraffic(ss.Machine, ss.ProdPl, base, ss.Prod, ss.Cons2, ElemSize)
	if err != nil {
		t.Fatal(err)
	}
	tr3, err := mapping.CoupledTraffic(ss.Machine, ss.ProdPl, base, ss.Prod, ss.Cons3, ElemSize)
	if err != nil {
		t.Fatal(err)
	}
	want := tr2.Network + tr3.Network
	if measured != want {
		t.Fatalf("functional %d bytes != analytic %d bytes", measured, want)
	}
}

func TestFunctionalComparisonTable(t *testing.T) {
	tbl, err := FunctionalComparison(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}

func TestTableRenderAndCSV(t *testing.T) {
	tbl := &Table{
		ID:      "t",
		Title:   "demo",
		Columns: []string{"a", "b"},
		Notes:   []string{"a note"},
	}
	tbl.AddRow("x", "1")
	tbl.AddRow("y, with comma", `has "quotes"`)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "demo") || !strings.Contains(out, "a note") {
		t.Fatalf("render output:\n%s", out)
	}
	buf.Reset()
	if err := tbl.CSV(&buf); err != nil {
		t.Fatal(err)
	}
	csv := buf.String()
	if !strings.Contains(csv, `"y, with comma"`) || !strings.Contains(csv, `"has ""quotes"""`) {
		t.Fatalf("csv output:\n%s", csv)
	}
}

func TestAblationLinearization(t *testing.T) {
	tbl, err := AblationLinearization()
	if err != nil {
		t.Fatal(err)
	}
	for _, row := range tbl.Rows {
		h, _ := strconv.Atoi(row[1])
		m, _ := strconv.Atoi(row[2])
		r, _ := strconv.Atoi(row[3])
		if h <= 0 || m <= 0 || r <= 0 {
			t.Fatalf("row %v", row)
		}
		if h > m || m > r {
			t.Errorf("query %s: spans not ordered hilbert %d <= morton %d <= row-major %d", row[0], h, m, r)
		}
	}
}

func TestAblationScheduleCache(t *testing.T) {
	tbl, err := AblationScheduleCache(5)
	if err != nil {
		t.Fatal(err)
	}
	onComps, _ := strconv.Atoi(tbl.Rows[0][1])
	offComps, _ := strconv.Atoi(tbl.Rows[1][1])
	if onComps != 1 || offComps != 5 {
		t.Fatalf("schedule computations on/off = %d/%d, want 1/5", onComps, offComps)
	}
	onBytes, _ := strconv.Atoi(tbl.Rows[0][3])
	offBytes, _ := strconv.Atoi(tbl.Rows[1][3])
	if onBytes >= offBytes {
		t.Fatalf("cache did not reduce control bytes: %d vs %d", onBytes, offBytes)
	}
}

func TestAblationPartitioner(t *testing.T) {
	tbl, err := AblationPartitioner(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 4 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	multilevel := parseGB(t, tbl.Rows[3][1])
	launcher := parseGB(t, tbl.Rows[0][1])
	if multilevel >= launcher {
		t.Fatalf("multilevel %.3f not below launcher %.3f", multilevel, launcher)
	}
}

func BenchmarkFig8Small(b *testing.B) {
	sc := SmallScale()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := Fig8(sc); err != nil {
			b.Fatal(err)
		}
	}
}

func TestStagingComparison(t *testing.T) {
	tbl, err := StagingComparison(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	staging := parseGB(t, tbl.Rows[0][1])
	insitu := parseGB(t, tbl.Rows[1][1])
	if insitu >= staging {
		t.Fatalf("in-situ %.4f GB not below staging %.4f GB", insitu, staging)
	}
}

func TestRatioSweepAdvantageShrinks(t *testing.T) {
	tbl, err := RatioSweep(SmallScale(), []int{1, 8})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
	first := parseGB(t, tbl.Rows[0][3])
	last := parseGB(t, tbl.Rows[1][3])
	firstBase := parseGB(t, tbl.Rows[0][2])
	lastBase := parseGB(t, tbl.Rows[1][2])
	advFirst := firstBase / first
	advLast := lastBase / last
	if advLast >= advFirst {
		t.Fatalf("advantage did not shrink: halo1 %.2fx, halo8 %.2fx", advFirst, advLast)
	}
}

func TestMappingCostRuns(t *testing.T) {
	tbl, err := MappingCost(SmallScale(), []int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(tbl.Rows) != 2 {
		t.Fatalf("rows = %d", len(tbl.Rows))
	}
}
