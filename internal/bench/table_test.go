package bench

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite golden files")

// golden compares got against testdata/<name>.golden, rewriting the file
// under -update.
func golden(t *testing.T, name string, got []byte) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, got, 0o644); err != nil {
			t.Fatal(err)
		}
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("%v (run `go test ./internal/bench -update` to create it)", err)
	}
	if !bytes.Equal(got, want) {
		t.Errorf("%s drifted from golden file.\n--- got ---\n%s\n--- want ---\n%s", name, got, want)
	}
}

// sample is a fixed table exercising alignment, CSV escaping and notes.
func sample() *Table {
	tb := &Table{
		ID:      "Fig. X",
		Title:   "sample table",
		Columns: []string{"series", "value", "share"},
		Notes:   []string{"fixed fixture for the formatting golden"},
	}
	tb.AddRow("plain", gb(1_500_000_000), pct(1, 4))
	tb.AddRow("quoted, comma", ms(0.0123), pct(0, 0))
	tb.AddRow(`quoted "inner"`, gb(0), pct(3, 4))
	return tb
}

func TestTableRenderGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().Render(&buf); err != nil {
		t.Fatal(err)
	}
	golden(t, "table_render", buf.Bytes())
}

func TestTableCSVGolden(t *testing.T) {
	var buf bytes.Buffer
	if err := sample().CSV(&buf); err != nil {
		t.Fatal(err)
	}
	golden(t, "table_csv", buf.Bytes())
}

func TestFormatHelpers(t *testing.T) {
	if got := gb(2_000_000_000); got != "2" {
		t.Errorf("gb = %q", got)
	}
	if got := gb(1_234_567); got != "0.00123457" {
		t.Errorf("gb = %q", got)
	}
	if got := ms(0.5); got != "500.0" {
		t.Errorf("ms = %q", got)
	}
	if got := pct(1, 3); got != "33.3%" {
		t.Errorf("pct = %q", got)
	}
	if got := pct(5, 0); got != "n/a" {
		t.Errorf("pct(_, 0) = %q", got)
	}
}

// TestFig8Golden pins the small-scale reproduction of Figure 8: the
// mapping algorithms, the analytic volume arithmetic and the network
// simulator are all deterministic, so the rendered table must be
// byte-stable.
func TestFig8Golden(t *testing.T) {
	tb, err := Fig8(SmallScale())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	golden(t, "fig08_small", buf.Bytes())
}

// TestRatioSweepGolden pins the halo-ratio sweep at small scale.
func TestRatioSweepGolden(t *testing.T) {
	tb, err := RatioSweep(SmallScale(), []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tb.Render(&buf); err != nil {
		t.Fatal(err)
	}
	golden(t, "ratio_small", buf.Bytes())
}
