package bench

import (
	"fmt"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/decomp"
	"github.com/insitu/cods/internal/graph"
	"github.com/insitu/cods/internal/mapping"
	"github.com/insitu/cods/internal/netsim"
)

// StagingComparison quantifies the argument of the paper's related-work
// section (VI): staging-area systems (the DataSpaces lineage) share
// coupled data indirectly through dedicated staging nodes, which costs two
// data movements — producer to staging, staging to consumer — both over
// the network; CoDS's in-situ sharing keeps the data on the compute nodes
// and moves most of it through shared memory.
//
// The sequential scenario is modeled with one staging node per eight
// compute nodes (a typical staging allocation). Every producer block is
// staged on a staging node chosen round-robin; consumers pull from the
// staging area.
func StagingComparison(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "staging",
		Title:   "Staging area vs. in-situ sharing (sequential scenario, blocked/blocked)",
		Columns: []string{"approach", "network (GB)", "movements", "retrieval (ms)"},
		Notes: []string{
			"staging-area sharing pays producer->staging AND staging->consumer network transfers; in-situ sharing stores data where it is produced and consumes most of it node-locally",
		},
	}
	ss, err := NewSequential(sc, Patterns()[0])
	if err != nil {
		return nil, err
	}
	_, dcPl, err := ss.ConsumerPlacements()
	if err != nil {
		return nil, err
	}
	consumers := []graph.App{ss.Cons2, ss.Cons3}

	// ---- In-situ (CoDS, client-side data-centric mapping). Stores cost
	// no movement (data stays in the producer task's memory); retrieval is
	// the consumers' pull phase.
	var insituNet int64
	var insituFlows []cluster.Flow
	for _, cons := range consumers {
		tr, err := mapping.CoupledTraffic(ss.Machine, ss.ProdPl, dcPl, ss.Prod, cons, ElemSize)
		if err != nil {
			return nil, err
		}
		insituNet += tr.Network
		fl, err := mapping.CoupledFlows(ss.ProdPl, dcPl, ss.Prod, cons, ElemSize, "get")
		if err != nil {
			return nil, err
		}
		insituFlows = append(insituFlows, fl...)
	}

	// ---- Staging area: compute nodes plus dedicated staging nodes on the
	// same fabric.
	computeNodes := ss.Machine.NumNodes()
	stagingNodes := (computeNodes + 7) / 8
	bigMachine, err := cluster.NewMachine(computeNodes+stagingNodes, sc.CoresPerNode)
	if err != nil {
		return nil, err
	}
	stagingOf := func(prodRank int) cluster.NodeID {
		return cluster.NodeID(computeNodes + prodRank%stagingNodes)
	}
	// Producer -> staging: every stored block crosses to its staging node.
	var stageInNet int64
	var stageInFlows []cluster.Flow
	for rp := 0; rp < ss.Prod.Decomp.NumTasks(); rp++ {
		bytes := ss.Prod.Decomp.OwnedVolume(rp) * ElemSize
		src, _ := ss.ProdPl.NodeOfTask(cluster.TaskID{App: ss.Prod.ID, Rank: rp})
		stageInNet += bytes
		stageInFlows = append(stageInFlows, cluster.Flow{Phase: "stage-in", Src: src, Dst: stagingOf(rp), Bytes: bytes})
	}
	// Staging -> consumer: each consumer piece comes from the staging node
	// of the producer block holding it. Consumers run on the compute nodes
	// (their placement is irrelevant for locality: nothing is node-local).
	var stageOutNet int64
	var stageOutFlows []cluster.Flow
	for _, cons := range consumers {
		ov, err := decomp.NewOverlap(ss.Prod.Decomp, cons.Decomp)
		if err != nil {
			return nil, err
		}
		consNode := make([]cluster.NodeID, cons.Decomp.NumTasks())
		for rc := range consNode {
			n, ok := dcPl.NodeOfTask(cluster.TaskID{App: cons.ID, Rank: rc})
			if !ok {
				return nil, fmt.Errorf("bench: consumer task %d unplaced", rc)
			}
			consNode[rc] = n
		}
		ov.EachPair(func(rp, rc int, vol int64) {
			stageOutNet += vol * ElemSize
			stageOutFlows = append(stageOutFlows, cluster.Flow{
				Phase: "stage-out", Src: stagingOf(rp), Dst: consNode[rc], Bytes: vol * ElemSize,
			})
		})
	}

	// Retrieval times: consumers' pull phase only (the paper's metric);
	// staging pulls fan into the few staging nodes.
	insituSim, err := simulator(ss.Machine)
	if err != nil {
		return nil, err
	}
	stagingSim, err := netsim.New(netsim.DefaultConfig(), bigMachine.NumNodes())
	if err != nil {
		return nil, err
	}
	insituTime := insituSim.Simulate(insituFlows).Makespan
	stagingTime := stagingSim.Simulate(stageOutFlows).Makespan

	t.AddRow("staging area", gb(stageInNet+stageOutNet), "2 (in + out)", ms(stagingTime))
	t.AddRow("in-situ CoDS (data-centric)", gb(insituNet), "1 (direct pull)", ms(insituTime))
	t.Notes = append(t.Notes, fmt.Sprintf(
		"%d compute nodes + %d staging nodes; staging network volume is in+out of the staging area",
		computeNodes, stagingNodes))
	return t, nil
}
