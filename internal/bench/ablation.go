package bench

import (
	"fmt"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/cods"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/mapping"
	"github.com/insitu/cods/internal/partition"
	"github.com/insitu/cods/internal/sfc"
	"github.com/insitu/cods/internal/transport"
)

// AblationLinearization compares the Hilbert space-filling curve against a
// naive row-major linearization: the number of DHT index spans a box query
// decomposes into (fewer spans = fewer DHT cores touched per query).
func AblationLinearization() (*Table, error) {
	t := &Table{
		ID:      "ablation-linearization",
		Title:   "DHT linearization: index spans per box query",
		Columns: []string{"query box", "hilbert", "morton (z-order)", "row-major"},
		Notes: []string{
			"the Hilbert curve keeps geometrically close cells close in the index space, so queries touch far fewer spans (and DHT intervals)",
		},
	}
	// The same registry the -curve flag selects from, over the 64^3 domain
	// the queries below cover. CurveNames order matches the columns.
	curves := make([]sfc.Linearizer, 0, len(sfc.CurveNames()))
	for _, name := range sfc.CurveNames() {
		l, err := sfc.ForDomain(name, []int{64, 64, 64})
		if err != nil {
			return nil, err
		}
		curves = append(curves, l)
	}
	queries := []geometry.BBox{
		geometry.NewBBox(geometry.Point{0, 0, 0}, geometry.Point{16, 16, 16}),
		geometry.NewBBox(geometry.Point{8, 8, 8}, geometry.Point{24, 24, 24}),
		geometry.NewBBox(geometry.Point{4, 4, 4}, geometry.Point{36, 36, 36}),
		geometry.NewBBox(geometry.Point{16, 0, 16}, geometry.Point{48, 64, 48}),
		geometry.NewBBox(geometry.Point{0, 0, 0}, geometry.Point{64, 64, 8}),
	}
	for _, q := range queries {
		row := []string{q.String()}
		for _, l := range curves {
			row = append(row, fmt.Sprint(len(l.Spans(q))))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// AblationScheduleCache measures what communication-schedule caching saves
// in an iterative coupling: lookup-service control messages per get when
// the consumer reuses its schedule versus recomputing it each iteration.
func AblationScheduleCache(iterations int) (*Table, error) {
	t := &Table{
		ID:      "ablation-schedule-cache",
		Title:   fmt.Sprintf("Communication-schedule caching over %d iterations", iterations),
		Columns: []string{"cache", "schedule computations", "control messages", "control bytes"},
		Notes: []string{
			"coupling patterns repeat across iterations, so the schedule (and its DHT queries) can be computed once and reused (paper Section IV-A)",
		},
	}
	for _, cached := range []bool{true, false} {
		m, err := cluster.NewMachine(4, 4)
		if err != nil {
			return nil, err
		}
		f := transport.NewFabric(m)
		domain := geometry.BoxFromSize([]int{16, 16, 16})
		sp, err := cods.NewSpace(f, domain)
		if err != nil {
			return nil, err
		}
		// One producer block per core of node 0..1; consumer on node 3.
		producer := sp.HandleAt(0, 1, "put")
		for v := 0; v < iterations; v++ {
			if err := producer.PutSequential("u", v, domain, make([]float64, domain.Volume())); err != nil {
				return nil, err
			}
		}
		m.Metrics().Reset()
		consumer := sp.HandleAt(12, 2, "get")
		consumer.CacheEnabled = cached
		for v := 0; v < iterations; v++ {
			if _, err := consumer.GetSequential("u", v, domain); err != nil {
				return nil, err
			}
		}
		ctlBytes := m.Metrics().Bytes(cluster.Control, cluster.Network) +
			m.Metrics().Bytes(cluster.Control, cluster.SharedMemory)
		// Every flow in the get phase beyond the payload pulls (one per
		// iteration: the whole domain is one stored block) is lookup
		// control traffic.
		ctlMsgs := len(m.Metrics().Flows("get")) - iterations
		name := "on"
		if !cached {
			name = "off"
		}
		t.AddRow(name, fmt.Sprint(consumer.CacheMisses), fmt.Sprint(ctlMsgs), fmt.Sprint(ctlBytes))
	}
	return t, nil
}

// AblationPartitioner compares mapping qualities on the concurrent
// scenario: the multilevel partitioner against its single-level variant,
// the round-robin deal and the launcher placement.
func AblationPartitioner(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "ablation-partitioner",
		Title:   "Mapping strategy vs. network coupled bytes (GB), blocked/blocked",
		Columns: []string{"strategy", "network", "share of total"},
		Notes: []string{
			"multilevel partitioning is what makes the server-side mapping effective; greedy single-level and placement-only baselines leave much more coupling on the network",
		},
	}
	cs, err := NewConcurrent(sc, Patterns()[0])
	if err != nil {
		return nil, err
	}
	total := int64(1)
	for _, s := range sc.Domain {
		total *= int64(s)
	}
	total *= ElemSize
	add := func(name string, pl *cluster.Placement) error {
		tr, err := mapping.CoupledTraffic(cs.Machine, pl, pl, cs.Prod, cs.Cons, ElemSize)
		if err != nil {
			return err
		}
		t.AddRow(name, gb(tr.Network), pct(tr.Network, total))
		return nil
	}
	cons, err := mapping.Consecutive(cs.Machine, cs.Bundle().Apps, nil)
	if err != nil {
		return nil, err
	}
	if err := add("launcher (consecutive)", cons); err != nil {
		return nil, err
	}
	rr, err := mapping.RoundRobin(cs.Machine, cs.Bundle().Apps, nil)
	if err != nil {
		return nil, err
	}
	if err := add("round-robin deal", rr); err != nil {
		return nil, err
	}
	single, err := mapping.ServerDataCentricOpts(cs.Machine, cs.Bundle(), nil, ElemSize,
		partition.Options{Seed: sc.Seed, SingleLevel: true})
	if err != nil {
		return nil, err
	}
	if err := add("single-level greedy", single); err != nil {
		return nil, err
	}
	multi, err := mapping.ServerDataCentric(cs.Machine, cs.Bundle(), nil, ElemSize, sc.Seed)
	if err != nil {
		return nil, err
	}
	if err := add("multilevel (data-centric)", multi); err != nil {
		return nil, err
	}
	return t, nil
}

// Ablations runs every ablation study.
func Ablations(sc Scale) ([]*Table, error) {
	var out []*Table
	lin, err := AblationLinearization()
	if err != nil {
		return nil, err
	}
	out = append(out, lin)
	cache, err := AblationScheduleCache(8)
	if err != nil {
		return nil, err
	}
	out = append(out, cache)
	part, err := AblationPartitioner(sc)
	if err != nil {
		return nil, err
	}
	out = append(out, part)
	return out, nil
}
