package bench

import (
	"fmt"

	"github.com/insitu/cods/internal/graph"
	"github.com/insitu/cods/internal/mapping"
)

// RatioSweep quantifies the sensitivity the paper states at the end of
// Section V-B: "the effectiveness of the data-centric task mapping also
// depends on the ratio of inter-application data transfer size to
// intra-application data exchange size". The sweep grows the stencil ghost
// width — shifting traffic from coupling-dominated to exchange-dominated —
// and reports the total network bytes under both mappings and the
// resulting advantage.
func RatioSweep(sc Scale, halos []int) (*Table, error) {
	if halos == nil {
		halos = []int{1, 2, 4, 8, 16, 32}
	}
	t := &Table{
		ID:      "ratio",
		Title:   "Coupling/exchange ratio sweep (concurrent, blocked/blocked)",
		Columns: []string{"halo", "inter/intra ratio", "baseline total (GB)", "data-centric total (GB)", "advantage"},
		Notes: []string{
			"as intra-application exchange grows relative to coupling, the data-centric advantage shrinks — the paper's stated applicability condition",
		},
	}
	cs, err := NewConcurrent(sc, Patterns()[0])
	if err != nil {
		return nil, err
	}
	base, dc, err := cs.Placements()
	if err != nil {
		return nil, err
	}
	interBase, err := mapping.CoupledTraffic(cs.Machine, base, base, cs.Prod, cs.Cons, ElemSize)
	if err != nil {
		return nil, err
	}
	interDC, err := mapping.CoupledTraffic(cs.Machine, dc, dc, cs.Prod, cs.Cons, ElemSize)
	if err != nil {
		return nil, err
	}
	for _, halo := range halos {
		var intraBase, intraDC int64
		for _, a := range []graph.App{cs.Prod, cs.Cons} {
			sb, err := mapping.StencilTraffic(cs.Machine, base, a, halo, ElemSize)
			if err != nil {
				return nil, err
			}
			sd, err := mapping.StencilTraffic(cs.Machine, dc, a, halo, ElemSize)
			if err != nil {
				return nil, err
			}
			intraBase += sb.Network
			intraDC += sd.Network
		}
		totalBase := interBase.Network + intraBase
		totalDC := interDC.Network + intraDC
		ratio := "inf"
		if intraBase > 0 {
			ratio = fmt.Sprintf("%.2f", float64(interBase.Network)/float64(intraBase))
		}
		adv := "n/a"
		if totalDC > 0 {
			adv = fmt.Sprintf("%.2fx", float64(totalBase)/float64(totalDC))
		}
		t.AddRow(fmt.Sprint(halo), ratio, gb(totalBase), gb(totalDC), adv)
	}
	return t, nil
}
