package bench

import (
	"fmt"
	"time"

	"github.com/insitu/cods/internal/mapping"
)

// MappingCost measures the wall-clock cost of computing the data-centric
// mappings themselves across weak-scaling factors: the server-side graph
// partitioning (performed offline before a bundle launches, Section IV-B)
// and the client-side locality mapping. It answers whether the mapping
// machinery itself scales to the evaluation's 8192-task runs.
func MappingCost(sc Scale, factors []int) (*Table, error) {
	if factors == nil {
		factors = []int{1, 2, 4, 8, 16}
	}
	t := &Table{
		ID:      "mapping-cost",
		Title:   "Cost of computing the data-centric mappings (wall clock, ms)",
		Columns: []string{"factor", "bundle tasks", "server-side", "consumer tasks", "client-side"},
		Notes: []string{
			"server-side: communication graph + multilevel partitioning of the concurrent bundle",
			"client-side: locality aggregation + greedy re-dispatch of the sequential consumers",
		},
	}
	for _, f := range factors {
		scaled, err := sc.WeakScale(f)
		if err != nil {
			return nil, err
		}
		cs, err := NewConcurrent(scaled, Patterns()[0])
		if err != nil {
			return nil, err
		}
		start := time.Now()
		if _, err := mapping.ServerDataCentric(cs.Machine, cs.Bundle(), nil, ElemSize, scaled.Seed); err != nil {
			return nil, err
		}
		serverMs := float64(time.Since(start).Microseconds()) / 1e3

		ss, err := NewSequential(scaled, Patterns()[0])
		if err != nil {
			return nil, err
		}
		start = time.Now()
		if _, err := mapping.ClientDataCentricAnalytic(ss.Machine, ss.ProdPl, ss.Prod, ss.consumers(), nil); err != nil {
			return nil, err
		}
		clientMs := float64(time.Since(start).Microseconds()) / 1e3

		t.AddRow(
			fmt.Sprintf("x%d", f),
			fmt.Sprint(tasks(scaled.CAP1Grid)+tasks(scaled.CAP2Grid)),
			fmt.Sprintf("%.1f", serverMs),
			fmt.Sprint(tasks(scaled.SAP2Grid)+tasks(scaled.SAP3Grid)),
			fmt.Sprintf("%.1f", clientMs),
		)
	}
	return t, nil
}
