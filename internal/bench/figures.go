package bench

import (
	"fmt"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/decomp"
	"github.com/insitu/cods/internal/graph"
	"github.com/insitu/cods/internal/mapping"
)

// Fig8 reproduces Figure 8: the amount of coupled data transferred over
// the network in the concurrent coupling scenario, for the data-centric
// and round-robin task mappings, across decomposition pattern pairs.
func Fig8(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "fig8",
		Title:   "Concurrent coupling: network-transferred coupled data (GB)",
		Columns: []string{"pattern", "round-robin", "data-centric", "reduction"},
		Notes: []string{
			fmt.Sprintf("CAP1 %d tasks, CAP2 %d tasks, domain %v, %d-core nodes",
				tasks(sc.CAP1Grid), tasks(sc.CAP2Grid), sc.Domain, sc.CoresPerNode),
			"expected shape: ~80% fewer network bytes for matching distributions; little gain for mismatched pairs",
		},
	}
	for _, pat := range Patterns() {
		cs, err := NewConcurrent(sc, pat)
		if err != nil {
			return nil, err
		}
		rr, dc, err := cs.Placements()
		if err != nil {
			return nil, err
		}
		trRR, err := mapping.CoupledTraffic(cs.Machine, rr, rr, cs.Prod, cs.Cons, ElemSize)
		if err != nil {
			return nil, err
		}
		trDC, err := mapping.CoupledTraffic(cs.Machine, dc, dc, cs.Prod, cs.Cons, ElemSize)
		if err != nil {
			return nil, err
		}
		t.AddRow(pat.Name, gb(trRR.Network), gb(trDC.Network), pct(trRR.Network-trDC.Network, trRR.Network))
	}
	return t, nil
}

// Fig9 reproduces Figure 9: network-transferred coupled data in the
// sequential coupling scenario (SAP1 -> SAP2 + SAP3) per pattern pair.
func Fig9(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "fig9",
		Title:   "Sequential coupling: network-transferred coupled data (GB)",
		Columns: []string{"pattern", "round-robin", "data-centric", "reduction"},
		Notes: []string{
			fmt.Sprintf("SAP1 %d tasks -> SAP2 %d + SAP3 %d tasks, domain %v",
				tasks(sc.SAP1Grid), tasks(sc.SAP2Grid), tasks(sc.SAP3Grid), sc.Domain),
			"expected shape: ~90% fewer network bytes for matching distributions",
		},
	}
	for _, pat := range Patterns() {
		ss, err := NewSequential(sc, pat)
		if err != nil {
			return nil, err
		}
		rr, dc, err := ss.ConsumerPlacements()
		if err != nil {
			return nil, err
		}
		var netRR, netDC int64
		for _, cons := range []graph.App{ss.Cons2, ss.Cons3} {
			trRR, err := mapping.CoupledTraffic(ss.Machine, ss.ProdPl, rr, ss.Prod, cons, ElemSize)
			if err != nil {
				return nil, err
			}
			trDC, err := mapping.CoupledTraffic(ss.Machine, ss.ProdPl, dc, ss.Prod, cons, ElemSize)
			if err != nil {
				return nil, err
			}
			netRR += trRR.Network
			netDC += trDC.Network
		}
		t.AddRow(pat.Name, gb(netRR), gb(netDC), pct(netRR-netDC, netRR))
	}
	return t, nil
}

// Fig10 reproduces Figure 10's effect quantitatively: the fan-out (number
// of producer tasks a consumer task must pull from) per pattern pair. The
// 1-to-N pattern of mismatched distributions is what defeats locality.
func Fig10(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "fig10",
		Title:   "Producer fan-out per consumer task (concurrent scenario)",
		Columns: []string{"pattern", "avg fan-out", "max fan-out", "producer tasks"},
		Notes: []string{
			"expected shape: small constant fan-out for matching distributions; fan-out approaching the full producer task count for mismatched ones",
		},
	}
	for _, pat := range Patterns() {
		cs, err := NewConcurrent(sc, pat)
		if err != nil {
			return nil, err
		}
		fan, err := decomp.FanOut(cs.Cons.Decomp, cs.Prod.Decomp)
		if err != nil {
			return nil, err
		}
		sum, max := 0, 0
		for _, f := range fan {
			sum += f
			if f > max {
				max = f
			}
		}
		avg := float64(sum) / float64(len(fan))
		t.AddRow(pat.Name, fmt.Sprintf("%.1f", avg), fmt.Sprint(max), fmt.Sprint(cs.Prod.Decomp.NumTasks()))
	}
	return t, nil
}

// retrieveTimes simulates the coupled-data retrieval of one or more
// consumer applications whose pulls start simultaneously, returning the
// completion time per application id.
func retrieveTimes(m *cluster.Machine, prodPl *cluster.Placement, prod graph.App,
	consPl *cluster.Placement, consumers []graph.App) (map[int]float64, error) {
	sim, err := simulator(m)
	if err != nil {
		return nil, err
	}
	var flows []cluster.Flow
	owner := make([]int, 0) // flow index -> app id
	for _, cons := range consumers {
		fl, err := mapping.CoupledFlows(prodPl, consPl, prod, cons, ElemSize,
			fmt.Sprintf("couple:%d", cons.ID))
		if err != nil {
			return nil, err
		}
		flows = append(flows, fl...)
		for range fl {
			owner = append(owner, cons.ID)
		}
	}
	res := sim.Simulate(flows)
	times := make(map[int]float64, len(consumers))
	for i, c := range res.Completion {
		id := owner[i]
		if c > times[id] {
			times[id] = c
		}
	}
	return times, nil
}

// Fig11 reproduces Figure 11: the time to retrieve the coupled data for
// CAP2 (concurrent) and SAP2/SAP3 (sequential), under both mappings, for
// the matching blocked/blocked pattern.
func Fig11(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "fig11",
		Title:   "Coupled data retrieval time (ms), blocked/blocked",
		Columns: []string{"application", "round-robin", "data-centric", "speedup"},
		Notes: []string{
			"times from the flow-level torus simulator over the mapping's transfer set",
			"expected shape: large reduction under data-centric mapping; SAP2/SAP3 slower than CAP2 despite smaller per-task volumes (twice the concurrent retrieve queries)",
		},
	}
	pat := Patterns()[0]

	cs, err := NewConcurrent(sc, pat)
	if err != nil {
		return nil, err
	}
	csRR, csDC, err := cs.Placements()
	if err != nil {
		return nil, err
	}
	rrT, err := retrieveTimes(cs.Machine, csRR, cs.Prod, csRR, []graph.App{cs.Cons})
	if err != nil {
		return nil, err
	}
	dcT, err := retrieveTimes(cs.Machine, csDC, cs.Prod, csDC, []graph.App{cs.Cons})
	if err != nil {
		return nil, err
	}
	addRow := func(name string, rr, dc float64) {
		speed := "n/a"
		if dc > 0 {
			speed = fmt.Sprintf("%.1fx", rr/dc)
		}
		t.AddRow(name, ms(rr), ms(dc), speed)
	}
	addRow("CAP2", rrT[cs.Cons.ID], dcT[cs.Cons.ID])

	ss, err := NewSequential(sc, pat)
	if err != nil {
		return nil, err
	}
	ssRR, ssDC, err := ss.ConsumerPlacements()
	if err != nil {
		return nil, err
	}
	seqCons := []graph.App{ss.Cons2, ss.Cons3}
	rrS, err := retrieveTimes(ss.Machine, ss.ProdPl, ss.Prod, ssRR, seqCons)
	if err != nil {
		return nil, err
	}
	dcS, err := retrieveTimes(ss.Machine, ss.ProdPl, ss.Prod, ssDC, seqCons)
	if err != nil {
		return nil, err
	}
	addRow("SAP2", rrS[ss.Cons2.ID], dcS[ss.Cons2.ID])
	addRow("SAP3", rrS[ss.Cons3.ID], dcS[ss.Cons3.ID])
	return t, nil
}

// Fig12 reproduces Figure 12: intra-application (stencil) data exchanged
// over the network in the concurrent scenario, per application, for both
// mappings.
func Fig12(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "fig12",
		Title:   "Concurrent scenario: intra-app network exchange (GB/iteration)",
		Columns: []string{"application", "round-robin", "data-centric", "change"},
		Notes: []string{
			fmt.Sprintf("3-D near-neighbour halo exchange, ghost width %d", sc.Halo),
			"expected shape: data-centric roughly doubles the smaller application's (CAP2) intra-app network bytes; CAP1 barely changes",
		},
	}
	pat := Patterns()[0]
	cs, err := NewConcurrent(sc, pat)
	if err != nil {
		return nil, err
	}
	rr, dc, err := cs.Placements()
	if err != nil {
		return nil, err
	}
	for _, app := range []struct {
		name string
		a    graph.App
	}{{"CAP1", cs.Prod}, {"CAP2", cs.Cons}} {
		trRR, err := mapping.StencilTraffic(cs.Machine, rr, app.a, sc.Halo, ElemSize)
		if err != nil {
			return nil, err
		}
		trDC, err := mapping.StencilTraffic(cs.Machine, dc, app.a, sc.Halo, ElemSize)
		if err != nil {
			return nil, err
		}
		change := "n/a"
		if trRR.Network > 0 {
			change = fmt.Sprintf("%.2fx", float64(trDC.Network)/float64(trRR.Network))
		}
		t.AddRow(app.name, gb(trRR.Network), gb(trDC.Network), change)
	}
	return t, nil
}

// Fig13 reproduces Figure 13: intra-application network exchange in the
// sequential scenario. SAP1 runs alone before the consumers, so its
// placement (and stencil traffic) is identical under both policies.
func Fig13(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "fig13",
		Title:   "Sequential scenario: intra-app network exchange (GB/iteration)",
		Columns: []string{"application", "round-robin", "data-centric", "change"},
		Notes: []string{
			"expected shape: SAP2 (the small consumer) roughly doubles; SAP1 and SAP3 change little",
		},
	}
	pat := Patterns()[0]
	ss, err := NewSequential(sc, pat)
	if err != nil {
		return nil, err
	}
	rr, dc, err := ss.ConsumerPlacements()
	if err != nil {
		return nil, err
	}
	type row struct {
		name string
		a    graph.App
		rrPl *cluster.Placement
		dcPl *cluster.Placement
	}
	rows := []row{
		{"SAP1", ss.Prod, ss.ProdPl, ss.ProdPl},
		{"SAP2", ss.Cons2, rr, dc},
		{"SAP3", ss.Cons3, rr, dc},
	}
	for _, r := range rows {
		trRR, err := mapping.StencilTraffic(ss.Machine, r.rrPl, r.a, sc.Halo, ElemSize)
		if err != nil {
			return nil, err
		}
		trDC, err := mapping.StencilTraffic(ss.Machine, r.dcPl, r.a, sc.Halo, ElemSize)
		if err != nil {
			return nil, err
		}
		change := "n/a"
		if trRR.Network > 0 {
			change = fmt.Sprintf("%.2fx", float64(trDC.Network)/float64(trRR.Network))
		}
		t.AddRow(r.name, gb(trRR.Network), gb(trDC.Network), change)
	}
	return t, nil
}

// Fig14 reproduces Figure 14: the total network communication cost of the
// concurrent workflow, broken into inter-application coupling and
// intra-application exchange, per mapping.
func Fig14(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "fig14",
		Title:   "Concurrent scenario: network communication breakdown (GB)",
		Columns: []string{"mapping", "inter-app", "intra-app", "total"},
		Notes: []string{
			"expected shape: coupling dominates under round-robin; data-centric wins overall despite the intra-app increase",
		},
	}
	pat := Patterns()[0]
	cs, err := NewConcurrent(sc, pat)
	if err != nil {
		return nil, err
	}
	rr, dc, err := cs.Placements()
	if err != nil {
		return nil, err
	}
	for _, m := range []struct {
		name string
		pl   *cluster.Placement
	}{{"round-robin", rr}, {"data-centric", dc}} {
		inter, err := mapping.CoupledTraffic(cs.Machine, m.pl, m.pl, cs.Prod, cs.Cons, ElemSize)
		if err != nil {
			return nil, err
		}
		var intra int64
		for _, a := range []graph.App{cs.Prod, cs.Cons} {
			st, err := mapping.StencilTraffic(cs.Machine, m.pl, a, sc.Halo, ElemSize)
			if err != nil {
				return nil, err
			}
			intra += st.Network
		}
		t.AddRow(m.name, gb(inter.Network), gb(intra), gb(inter.Network+intra))
	}
	return t, nil
}

// Fig15 reproduces Figure 15: the same breakdown for the sequential
// workflow.
func Fig15(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "fig15",
		Title:   "Sequential scenario: network communication breakdown (GB)",
		Columns: []string{"mapping", "inter-app", "intra-app", "total"},
		Notes: []string{
			"expected shape: as Figure 14 — the coupling reduction outweighs the intra-app increase",
		},
	}
	pat := Patterns()[0]
	ss, err := NewSequential(sc, pat)
	if err != nil {
		return nil, err
	}
	rr, dc, err := ss.ConsumerPlacements()
	if err != nil {
		return nil, err
	}
	for _, m := range []struct {
		name string
		pl   *cluster.Placement
	}{{"round-robin", rr}, {"data-centric", dc}} {
		var inter, intra int64
		for _, cons := range []graph.App{ss.Cons2, ss.Cons3} {
			tr, err := mapping.CoupledTraffic(ss.Machine, ss.ProdPl, m.pl, ss.Prod, cons, ElemSize)
			if err != nil {
				return nil, err
			}
			inter += tr.Network
			st, err := mapping.StencilTraffic(ss.Machine, m.pl, cons, sc.Halo, ElemSize)
			if err != nil {
				return nil, err
			}
			intra += st.Network
		}
		st, err := mapping.StencilTraffic(ss.Machine, ss.ProdPl, ss.Prod, sc.Halo, ElemSize)
		if err != nil {
			return nil, err
		}
		intra += st.Network
		t.AddRow(m.name, gb(inter), gb(intra), gb(inter+intra))
	}
	return t, nil
}

// Fig16 reproduces Figure 16: weak scaling of the coupled-data retrieval
// time under the data-centric mapping, growing both scenarios 16-fold.
func Fig16(sc Scale, factors []int) (*Table, error) {
	if factors == nil {
		factors = []int{1, 2, 4, 8, 16}
	}
	t := &Table{
		ID:      "fig16",
		Title:   "Weak scaling: retrieval time (ms) under data-centric mapping",
		Columns: []string{"factor", "CAP1/CAP2 cores", "CAP2", "SAP1 cores", "SAP2", "SAP3"},
		Notes: []string{
			"expected shape: slow growth (link contention) as scale grows 16x; SAP2/SAP3 grow faster than CAP2 (twice the concurrent retrieve queries)",
		},
	}
	pat := Patterns()[0]
	for _, f := range factors {
		scaled, err := sc.WeakScale(f)
		if err != nil {
			return nil, err
		}
		cs, err := NewConcurrent(scaled, pat)
		if err != nil {
			return nil, err
		}
		_, csDC, err := cs.Placements()
		if err != nil {
			return nil, err
		}
		capT, err := retrieveTimes(cs.Machine, csDC, cs.Prod, csDC, []graph.App{cs.Cons})
		if err != nil {
			return nil, err
		}
		ss, err := NewSequential(scaled, pat)
		if err != nil {
			return nil, err
		}
		_, ssDC, err := ss.ConsumerPlacements()
		if err != nil {
			return nil, err
		}
		seqT, err := retrieveTimes(ss.Machine, ss.ProdPl, ss.Prod, ssDC, []graph.App{ss.Cons2, ss.Cons3})
		if err != nil {
			return nil, err
		}
		t.AddRow(
			fmt.Sprintf("x%d", f),
			fmt.Sprintf("%d/%d", tasks(scaled.CAP1Grid), tasks(scaled.CAP2Grid)),
			ms(capT[cs.Cons.ID]),
			fmt.Sprint(tasks(scaled.SAP1Grid)),
			ms(seqT[ss.Cons2.ID]),
			ms(seqT[ss.Cons3.ID]),
		)
	}
	return t, nil
}

// All runs every figure at a scale (Fig16 with the default factors).
func All(sc Scale) ([]*Table, error) {
	var out []*Table
	type fig struct {
		name string
		fn   func(Scale) (*Table, error)
	}
	figs := []fig{
		{"fig8", Fig8}, {"fig9", Fig9}, {"fig10", Fig10}, {"fig11", Fig11},
		{"fig12", Fig12}, {"fig13", Fig13}, {"fig14", Fig14}, {"fig15", Fig15},
	}
	for _, f := range figs {
		tbl, err := f.fn(sc)
		if err != nil {
			return nil, fmt.Errorf("bench: %s: %w", f.name, err)
		}
		out = append(out, tbl)
	}
	tbl, err := Fig16(sc, nil)
	if err != nil {
		return nil, fmt.Errorf("bench: fig16: %w", err)
	}
	out = append(out, tbl)
	return out, nil
}
