package bench

import (
	"fmt"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/decomp"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/graph"
	"github.com/insitu/cods/internal/mapping"
	"github.com/insitu/cods/internal/netsim"
)

// ElemSize is the coupled-field element size in bytes.
const ElemSize = 8

// Scale fixes the sizes of one experiment campaign. The paper's base
// configuration: 12-core nodes, a 1024^3 shared domain, producer tasks
// owning 128^3 blocks (16 MB), CAP1/CAP2 on 512/64 cores, SAP1 -> SAP2 +
// SAP3 on 512 -> 128+384 cores.
type Scale struct {
	Name         string
	CoresPerNode int
	Domain       []int
	CAP1Grid     []int
	CAP2Grid     []int
	SAP1Grid     []int
	SAP2Grid     []int
	SAP3Grid     []int
	// Block is the per-dimension block size of block-cyclic variants.
	Block []int
	// Halo is the stencil ghost width of the intra-application exchanges.
	Halo int
	Seed int64
}

// PaperScale reproduces the evaluation's sizes exactly.
func PaperScale() Scale {
	return Scale{
		Name:         "paper",
		CoresPerNode: 12,
		Domain:       []int{1024, 1024, 1024},
		CAP1Grid:     []int{8, 8, 8}, // 512 tasks x 128^3 = 16 MB/task
		CAP2Grid:     []int{4, 4, 4}, // 64 tasks x 128 MB
		SAP1Grid:     []int{8, 8, 8},
		SAP2Grid:     []int{8, 4, 4}, // 128 tasks x 64 MB
		SAP3Grid:     []int{8, 8, 6}, // 384 tasks x ~21 MB
		Block:        []int{64, 64, 64},
		Halo:         2,
		Seed:         1,
	}
}

// SmallScale is a laptop-sized configuration with the same structure
// (used by tests, examples and the functional cross-validation path).
func SmallScale() Scale {
	return Scale{
		Name:         "small",
		CoresPerNode: 4,
		Domain:       []int{32, 32, 32},
		CAP1Grid:     []int{4, 4, 2}, // 32 tasks
		CAP2Grid:     []int{2, 2, 2}, // 8 tasks
		SAP1Grid:     []int{4, 4, 2},
		SAP2Grid:     []int{2, 2, 2}, // 8 tasks
		SAP3Grid:     []int{2, 3, 4}, // 24 tasks
		Block:        []int{4, 4, 4},
		Halo:         1,
		Seed:         1,
	}
}

// WeakScale multiplies the task counts (and the domain, keeping per-task
// volume constant) by factor, which must be a power of two. Dimensions are
// doubled round-robin, mirroring how the paper grows 512/64 to 8192/1024.
func (sc Scale) WeakScale(factor int) (Scale, error) {
	if factor < 1 || factor&(factor-1) != 0 {
		return Scale{}, fmt.Errorf("bench: weak-scaling factor %d is not a power of two", factor)
	}
	out := sc
	out.Name = fmt.Sprintf("%s-x%d", sc.Name, factor)
	out.Domain = append([]int(nil), sc.Domain...)
	grids := [][]int{
		append([]int(nil), sc.CAP1Grid...),
		append([]int(nil), sc.CAP2Grid...),
		append([]int(nil), sc.SAP1Grid...),
		append([]int(nil), sc.SAP2Grid...),
		append([]int(nil), sc.SAP3Grid...),
	}
	d := 0
	for f := factor; f > 1; f >>= 1 {
		out.Domain[d] *= 2
		for _, g := range grids {
			g[d] *= 2
		}
		d = (d + 1) % len(out.Domain)
	}
	out.CAP1Grid, out.CAP2Grid = grids[0], grids[1]
	out.SAP1Grid, out.SAP2Grid, out.SAP3Grid = grids[2], grids[3], grids[4]
	return out, nil
}

// tasks returns the product of a grid.
func tasks(grid []int) int {
	n := 1
	for _, p := range grid {
		n *= p
	}
	return n
}

// Pattern is one x-axis entry of Figures 8/9: the distribution kinds of
// the coupled producer and consumer.
type Pattern struct {
	Name string
	Prod decomp.Kind
	Cons decomp.Kind
}

// Patterns returns the decomposition pattern pairs of the evaluation:
// three matching pairs and two mismatched ones.
func Patterns() []Pattern {
	return []Pattern{
		{Name: "blocked/blocked", Prod: decomp.Blocked, Cons: decomp.Blocked},
		{Name: "cyclic/cyclic", Prod: decomp.Cyclic, Cons: decomp.Cyclic},
		{Name: "bcyclic/bcyclic", Prod: decomp.BlockCyclic, Cons: decomp.BlockCyclic},
		{Name: "blocked/cyclic", Prod: decomp.Blocked, Cons: decomp.Cyclic},
		{Name: "blocked/bcyclic", Prod: decomp.Blocked, Cons: decomp.BlockCyclic},
	}
}

// newDecomp builds a decomposition of the scale's domain.
func (sc Scale) newDecomp(kind decomp.Kind, grid []int) (*decomp.Decomposition, error) {
	return decomp.New(kind, geometry.BoxFromSize(sc.Domain), grid, sc.Block)
}

// Concurrent is the CAP1/CAP2 concurrently coupled scenario at one scale
// and pattern.
type Concurrent struct {
	Scale   Scale
	Machine *cluster.Machine
	Prod    graph.App // CAP1
	Cons    graph.App // CAP2
}

// NewConcurrent builds the concurrent scenario: CAP1 and CAP2 share one
// allocation sized to hold both applications.
func NewConcurrent(sc Scale, pat Pattern) (*Concurrent, error) {
	prodDc, err := sc.newDecomp(pat.Prod, sc.CAP1Grid)
	if err != nil {
		return nil, err
	}
	consDc, err := sc.newDecomp(pat.Cons, sc.CAP2Grid)
	if err != nil {
		return nil, err
	}
	total := prodDc.NumTasks() + consDc.NumTasks()
	nodes := (total + sc.CoresPerNode - 1) / sc.CoresPerNode
	m, err := cluster.NewMachine(nodes, sc.CoresPerNode)
	if err != nil {
		return nil, err
	}
	return &Concurrent{
		Scale:   sc,
		Machine: m,
		Prod:    graph.App{ID: 1, Decomp: prodDc},
		Cons:    graph.App{ID: 2, Decomp: consDc},
	}, nil
}

// Bundle returns the mapping bundle of the scenario.
func (c *Concurrent) Bundle() mapping.Bundle {
	return mapping.Bundle{
		Apps:      []graph.App{c.Prod, c.Cons},
		Couplings: [][2]int{{c.Prod.ID, c.Cons.ID}},
	}
}

// Placements computes the baseline (launcher) and data-centric
// placements. The baseline is SMP-style consecutive placement — what the
// paper's "round-robin task mapping employed by many MPI job launchers"
// behaves like: each application's ranks pack node after node, so
// intra-application neighbours co-locate but coupling is ignored.
func (c *Concurrent) Placements() (rr, dc *cluster.Placement, err error) {
	rr, err = mapping.Consecutive(c.Machine, c.Bundle().Apps, nil)
	if err != nil {
		return nil, nil, err
	}
	dc, err = mapping.ServerDataCentric(c.Machine, c.Bundle(), nil, ElemSize, c.Scale.Seed)
	if err != nil {
		return nil, nil, err
	}
	return rr, dc, nil
}

// Sequential is the SAP1 -> SAP2 + SAP3 sequentially coupled scenario.
type Sequential struct {
	Scale   Scale
	Machine *cluster.Machine
	Prod    graph.App // SAP1
	Cons2   graph.App // SAP2
	Cons3   graph.App // SAP3
	// ProdPl is SAP1's placement: it runs first, alone, placed round-robin;
	// its stored blocks live on its cores.
	ProdPl *cluster.Placement
}

// NewSequential builds the sequential scenario. The allocation is sized to
// SAP1 (SAP2 and SAP3 together reuse the same cores afterwards).
func NewSequential(sc Scale, pat Pattern) (*Sequential, error) {
	prodDc, err := sc.newDecomp(pat.Prod, sc.SAP1Grid)
	if err != nil {
		return nil, err
	}
	cons2Dc, err := sc.newDecomp(pat.Cons, sc.SAP2Grid)
	if err != nil {
		return nil, err
	}
	cons3Dc, err := sc.newDecomp(pat.Cons, sc.SAP3Grid)
	if err != nil {
		return nil, err
	}
	if cons2Dc.NumTasks()+cons3Dc.NumTasks() > prodDc.NumTasks() {
		// Consumers reuse SAP1's allocation; grow it if they don't fit.
		// (The paper's 128+384 = 512 exactly reuses SAP1's cores.)
		return nil, fmt.Errorf("bench: consumers (%d tasks) exceed producer allocation (%d)",
			cons2Dc.NumTasks()+cons3Dc.NumTasks(), prodDc.NumTasks())
	}
	nodes := (prodDc.NumTasks() + sc.CoresPerNode - 1) / sc.CoresPerNode
	m, err := cluster.NewMachine(nodes, sc.CoresPerNode)
	if err != nil {
		return nil, err
	}
	prod := graph.App{ID: 1, Decomp: prodDc}
	prodPl, err := mapping.Consecutive(m, []graph.App{prod}, nil)
	if err != nil {
		return nil, err
	}
	return &Sequential{
		Scale:   sc,
		Machine: m,
		Prod:    prod,
		Cons2:   graph.App{ID: 2, Decomp: cons2Dc},
		Cons3:   graph.App{ID: 3, Decomp: cons3Dc},
		ProdPl:  prodPl,
	}, nil
}

// consumers returns the mapping descriptors of SAP2 and SAP3.
func (s *Sequential) consumers() []mapping.Consumer {
	return []mapping.Consumer{
		{App: s.Cons2, Var: "state", Version: 0},
		{App: s.Cons3, Var: "state", Version: 0},
	}
}

// ConsumerPlacements computes the baseline (launcher) and client-side
// data-centric placements of SAP2 + SAP3 (jointly, as they launch
// together).
func (s *Sequential) ConsumerPlacements() (rr, dc *cluster.Placement, err error) {
	apps := []graph.App{s.Cons2, s.Cons3}
	rr, err = mapping.Consecutive(s.Machine, apps, nil)
	if err != nil {
		return nil, nil, err
	}
	dc, err = mapping.ClientDataCentricAnalytic(s.Machine, s.ProdPl, s.Prod, s.consumers(), nil)
	if err != nil {
		return nil, nil, err
	}
	return rr, dc, nil
}

// simulator builds the torus network simulator for a machine.
func simulator(m *cluster.Machine) (*netsim.Simulator, error) {
	return netsim.New(netsim.DefaultConfig(), m.NumNodes())
}
