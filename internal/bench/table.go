// Package bench regenerates the paper's evaluation (Section V): one
// function per figure, each returning a Table with the same series the
// paper plots. Byte volumes are computed analytically from the real
// mapping algorithms' placements (exact — the same arithmetic the
// functional path meters, validated against it in the tests), and transfer
// times come from replaying the coupling's transfer set through the
// flow-level torus network simulator.
package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is one reproduced figure: a title, column headers and formatted
// rows, plus free-form notes (experiment setup, expected shape).
type Table struct {
	ID      string
	Title   string
	Columns []string
	Rows    [][]string
	Notes   []string
}

// AddRow appends a formatted row; values are used as-is.
func (t *Table) AddRow(values ...string) {
	t.Rows = append(t.Rows, values)
}

// Render writes the table in aligned plain text.
func (t *Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, v := range row {
			if i < len(widths) && len(v) > widths[i] {
				widths[i] = len(v)
			}
		}
	}
	line := func(parts []string) string {
		out := make([]string, len(parts))
		for i, p := range parts {
			out[i] = fmt.Sprintf("%-*s", widths[i], p)
		}
		return "  " + strings.Join(out, "  ")
	}
	if _, err := fmt.Fprintln(w, line(t.Columns)); err != nil {
		return err
	}
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	if _, err := fmt.Fprintln(w, line(sep)); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	for _, n := range t.Notes {
		if _, err := fmt.Fprintf(w, "  note: %s\n", n); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

// CSV writes the table as comma-separated values (header + rows).
func (t *Table) CSV(w io.Writer) error {
	esc := func(s string) string {
		if strings.ContainsAny(s, ",\"\n") {
			return `"` + strings.ReplaceAll(s, `"`, `""`) + `"`
		}
		return s
	}
	cols := make([]string, len(t.Columns))
	for i, c := range t.Columns {
		cols[i] = esc(c)
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for _, row := range t.Rows {
		vals := make([]string, len(row))
		for i, v := range row {
			vals[i] = esc(v)
		}
		if _, err := fmt.Fprintln(w, strings.Join(vals, ",")); err != nil {
			return err
		}
	}
	return nil
}

// gb formats bytes as gigabytes with six significant digits (small-scale
// runs move kilobytes, paper-scale runs move gigabytes).
func gb(bytes int64) string {
	return fmt.Sprintf("%.6g", float64(bytes)/1e9)
}

// ms formats seconds as milliseconds with one decimal.
func ms(seconds float64) string {
	return fmt.Sprintf("%.1f", seconds*1e3)
}

// pct formats a ratio as a percentage.
func pct(part, whole int64) string {
	if whole == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(part)/float64(whole))
}
