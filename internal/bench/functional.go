package bench

import (
	"fmt"

	"github.com/insitu/cods/internal/apps"
	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/decomp"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/runtime"
	"github.com/insitu/cods/internal/workflow"
)

// The functional path actually executes the workflows — real execution
// clients, real puts/gets, every byte moved and metered — at a reduced
// scale. The tests cross-validate it against the analytic path: the same
// placements must produce the same inter-application network bytes.

// RunConcurrentFunctional executes the CAP1/CAP2 workflow with blocked
// decompositions at the given scale and policy, returning the machine
// whose metrics carry the measured traffic.
func RunConcurrentFunctional(sc Scale, policy runtime.Policy, iterations int, verify bool) (*cluster.Machine, error) {
	prodDc, err := sc.newDecomp(decomp.Blocked, sc.CAP1Grid)
	if err != nil {
		return nil, err
	}
	consDc, err := sc.newDecomp(decomp.Blocked, sc.CAP2Grid)
	if err != nil {
		return nil, err
	}
	total := prodDc.NumTasks() + consDc.NumTasks()
	nodes := (total + sc.CoresPerNode - 1) / sc.CoresPerNode
	m, err := cluster.NewMachine(nodes, sc.CoresPerNode)
	if err != nil {
		return nil, err
	}
	srv, err := runtime.NewServer(m, geometry.BoxFromSize(sc.Domain), sc.Seed)
	if err != nil {
		return nil, err
	}
	if err := srv.RegisterApp(runtime.AppSpec{
		ID: 1, Decomp: prodDc,
		Run: apps.NewProducer(apps.ProducerConfig{
			Var: "field", Iterations: iterations, Halo: sc.Halo, Mode: apps.Concurrent,
		}),
	}); err != nil {
		return nil, err
	}
	if err := srv.RegisterApp(runtime.AppSpec{
		ID: 2, Decomp: consDc,
		Run: apps.NewConsumer(apps.ConsumerConfig{
			Var: "field", Producer: 1, Iterations: iterations, Halo: sc.Halo,
			Mode: apps.Concurrent, Verify: verify,
		}),
	}); err != nil {
		return nil, err
	}
	d, err := workflow.New([]int{1, 2}, nil, [][]int{{1, 2}})
	if err != nil {
		return nil, err
	}
	if _, err := srv.Run(d, policy); err != nil {
		return nil, err
	}
	return m, nil
}

// RunSequentialFunctional executes the SAP1 -> SAP2 + SAP3 workflow with
// blocked decompositions at the given scale and policy.
func RunSequentialFunctional(sc Scale, policy runtime.Policy, verify bool) (*cluster.Machine, error) {
	prodDc, err := sc.newDecomp(decomp.Blocked, sc.SAP1Grid)
	if err != nil {
		return nil, err
	}
	cons2Dc, err := sc.newDecomp(decomp.Blocked, sc.SAP2Grid)
	if err != nil {
		return nil, err
	}
	cons3Dc, err := sc.newDecomp(decomp.Blocked, sc.SAP3Grid)
	if err != nil {
		return nil, err
	}
	nodes := (prodDc.NumTasks() + sc.CoresPerNode - 1) / sc.CoresPerNode
	m, err := cluster.NewMachine(nodes, sc.CoresPerNode)
	if err != nil {
		return nil, err
	}
	srv, err := runtime.NewServer(m, geometry.BoxFromSize(sc.Domain), sc.Seed)
	if err != nil {
		return nil, err
	}
	if err := srv.RegisterApp(runtime.AppSpec{
		ID: 1, Decomp: prodDc,
		Run: apps.NewProducer(apps.ProducerConfig{
			Var: "state", Iterations: 1, Halo: sc.Halo, Mode: apps.Sequential,
		}),
	}); err != nil {
		return nil, err
	}
	consumer := func(dc *decomp.Decomposition) runtime.AppSpec {
		return runtime.AppSpec{
			Decomp: dc,
			Run: apps.NewConsumer(apps.ConsumerConfig{
				Var: "state", Iterations: 1, Halo: sc.Halo, Mode: apps.Sequential, Verify: verify,
			}),
			ReadsVar: "state",
		}
	}
	c2 := consumer(cons2Dc)
	c2.ID = 2
	if err := srv.RegisterApp(c2); err != nil {
		return nil, err
	}
	c3 := consumer(cons3Dc)
	c3.ID = 3
	if err := srv.RegisterApp(c3); err != nil {
		return nil, err
	}
	d, err := workflow.New([]int{1, 2, 3}, [][2]int{{1, 2}, {1, 3}}, nil)
	if err != nil {
		return nil, err
	}
	if _, err := srv.Run(d, policy); err != nil {
		return nil, err
	}
	return m, nil
}

// FunctionalComparison runs both policies functionally at a scale and
// tabulates measured network bytes — the executed counterpart of Figures
// 8/9 used to validate the analytic harness.
func FunctionalComparison(sc Scale) (*Table, error) {
	t := &Table{
		ID:      "functional",
		Title:   fmt.Sprintf("Executed workflows (%s scale, blocked/blocked): measured network bytes (MB)", sc.Name),
		Columns: []string{"scenario", "class", "round-robin", "data-centric"},
		Notes: []string{
			"every byte below was actually moved by the execution clients and metered by HybridDART",
		},
	}
	mb := func(b int64) string { return fmt.Sprintf("%.3f", float64(b)/1e6) }
	for _, scenario := range []string{"concurrent", "sequential"} {
		run := func(policy runtime.Policy) (*cluster.Machine, error) {
			if scenario == "concurrent" {
				return RunConcurrentFunctional(sc, policy, 1, false)
			}
			return RunSequentialFunctional(sc, policy, false)
		}
		rr, err := run(runtime.RoundRobin)
		if err != nil {
			return nil, err
		}
		dc, err := run(runtime.DataCentric)
		if err != nil {
			return nil, err
		}
		t.AddRow(scenario, "inter-app",
			mb(rr.Metrics().Bytes(cluster.InterApp, cluster.Network)),
			mb(dc.Metrics().Bytes(cluster.InterApp, cluster.Network)))
		t.AddRow(scenario, "intra-app",
			mb(rr.Metrics().Bytes(cluster.IntraApp, cluster.Network)),
			mb(dc.Metrics().Bytes(cluster.IntraApp, cluster.Network)))
	}
	return t, nil
}
