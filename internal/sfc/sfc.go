// Package sfc implements the space-filling-curve linearization used by the
// CoDS distributed hash table. The paper linearizes the n-dimensional
// Cartesian application domain with a Hilbert curve so that a contiguous
// region of the domain maps to a small number of contiguous spans of the
// 1-D index space (Section IV-A, Figure 6).
//
// Curve implements the n-dimensional Hilbert transform following Skilling,
// "Programming the Hilbert curve" (AIP Conf. Proc. 707, 2004). RowMajor is
// an alternative naive linearizer kept for the ablation benchmarks.
package sfc

import (
	"fmt"
	"sort"

	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/mutate"
)

// Span is a half-open interval [Start, End) of the 1-D linearized index
// space.
type Span struct {
	Start uint64
	End   uint64
}

// Len returns the number of indices covered by the span.
func (s Span) Len() uint64 { return s.End - s.Start }

// Linearizer maps n-dimensional grid points to 1-D indices and back, and
// decomposes a box query into index spans.
type Linearizer interface {
	// Dim returns the dimensionality of the curve.
	Dim() int
	// Bits returns the number of bits per dimension.
	Bits() int
	// Total returns the size of the index space, 2^(Dim*Bits).
	Total() uint64
	// Encode maps a point to its index. Coordinates must lie in
	// [0, 2^Bits).
	Encode(p geometry.Point) uint64
	// Decode maps an index back to its point.
	Decode(idx uint64) geometry.Point
	// Spans decomposes the cells of box b (clipped to the curve's domain)
	// into a sorted, merged list of index spans.
	Spans(b geometry.BBox) []Span
}

// Curve is an n-dimensional Hilbert curve over a grid of side 2^bits.
type Curve struct {
	dim  int
	bits int
}

// NewCurve creates a Hilbert curve for dim dimensions with bits bits per
// dimension. dim*bits must not exceed 63 so indices fit in uint64 with
// headroom. It returns an error for degenerate parameters.
func NewCurve(dim, bits int) (*Curve, error) {
	if dim < 1 {
		return nil, fmt.Errorf("sfc: dimension %d < 1", dim)
	}
	if bits < 1 {
		return nil, fmt.Errorf("sfc: bits %d < 1", bits)
	}
	if dim*bits > 63 {
		return nil, fmt.Errorf("sfc: dim*bits = %d exceeds 63", dim*bits)
	}
	return &Curve{dim: dim, bits: bits}, nil
}

// CurveForDomain builds the smallest Hilbert curve whose grid covers the
// given domain sizes (each dimension padded to the next power of two; all
// dimensions share the largest bit width, as the transform requires a cubic
// grid).
func CurveForDomain(size []int) (*Curve, error) {
	dim, bits, err := domainParams(size)
	if err != nil {
		return nil, err
	}
	return NewCurve(dim, bits)
}

// domainParams derives the (dim, bits) of the padded cubic grid covering
// the given domain sizes.
func domainParams(size []int) (dim, bits int, err error) {
	if len(size) == 0 {
		return 0, 0, fmt.Errorf("sfc: empty domain")
	}
	bits = 1
	for _, s := range size {
		if s < 1 {
			return 0, 0, fmt.Errorf("sfc: domain extent %d < 1", s)
		}
		if b := bitsFor(s); b > bits {
			bits = b
		}
	}
	return len(size), bits, nil
}

// The selectable linearization policies (DESIGN §5j). Hilbert is the
// paper's curve and the default; Morton and row-major are the ablation
// alternatives.
const (
	CurveHilbert  = "hilbert"
	CurveMorton   = "morton"
	CurveRowMajor = "rowmajor"
)

// CurveNames lists the selectable linearizer names, default first.
func CurveNames() []string { return []string{CurveHilbert, CurveMorton, CurveRowMajor} }

// ForDomain builds the named linearizer over the smallest padded cubic
// grid covering the given domain sizes. The empty name selects Hilbert.
func ForDomain(name string, size []int) (Linearizer, error) {
	dim, bits, err := domainParams(size)
	if err != nil {
		return nil, err
	}
	switch name {
	case "", CurveHilbert:
		return NewCurve(dim, bits)
	case CurveMorton:
		return NewMorton(dim, bits)
	case CurveRowMajor:
		return NewRowMajor(dim, bits)
	default:
		return nil, fmt.Errorf("sfc: unknown curve %q (want one of %v)", name, CurveNames())
	}
}

// bitsFor returns the minimum b with 2^b >= s (at least 1).
func bitsFor(s int) int {
	b := 1
	for (1 << b) < s {
		b++
	}
	return b
}

// Dim returns the curve's dimensionality.
func (c *Curve) Dim() int { return c.dim }

// Bits returns the bits per dimension.
func (c *Curve) Bits() int { return c.bits }

// Total returns the size of the 1-D index space.
func (c *Curve) Total() uint64 { return 1 << uint(c.dim*c.bits) }

// Domain returns the cubic grid covered by the curve.
func (c *Curve) Domain() geometry.BBox {
	size := make([]int, c.dim)
	for d := range size {
		size[d] = 1 << uint(c.bits)
	}
	return geometry.BoxFromSize(size)
}

// Encode maps point p to its Hilbert index.
func (c *Curve) Encode(p geometry.Point) uint64 {
	if len(p) != c.dim {
		panic(fmt.Sprintf("sfc: point dimension %d, curve dimension %d", len(p), c.dim))
	}
	x := make([]uint64, c.dim)
	for d, v := range p {
		if v < 0 || v >= (1<<uint(c.bits)) {
			panic(fmt.Sprintf("sfc: coordinate %d out of range [0,%d)", v, 1<<uint(c.bits)))
		}
		x[d] = uint64(v)
	}
	c.axesToTranspose(x)
	return c.interleave(x)
}

// Decode maps a Hilbert index back to its point.
func (c *Curve) Decode(idx uint64) geometry.Point {
	if idx >= c.Total() {
		panic(fmt.Sprintf("sfc: index %d out of range [0,%d)", idx, c.Total()))
	}
	x := c.deinterleave(idx)
	c.transposeToAxes(x)
	p := make(geometry.Point, c.dim)
	for d := range p {
		p[d] = int(x[d])
	}
	return p
}

// axesToTranspose converts coordinates in place to the "transpose" Hilbert
// representation (Skilling's AxestoTranspose).
func (c *Curve) axesToTranspose(x []uint64) {
	n := c.dim
	m := uint64(1) << uint(c.bits-1)
	// Inverse undo.
	for q := m; q > 1; q >>= 1 {
		p := q - 1
		for i := 0; i < n; i++ {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
	// Gray encode.
	for i := 1; i < n; i++ {
		x[i] ^= x[i-1]
	}
	var t uint64
	for q := m; q > 1; q >>= 1 {
		if x[n-1]&q != 0 {
			t ^= q - 1
		}
	}
	for i := 0; i < n; i++ {
		x[i] ^= t
	}
}

// transposeToAxes converts the transpose representation in place back to
// coordinates (Skilling's TransposetoAxes).
func (c *Curve) transposeToAxes(x []uint64) {
	n := c.dim
	top := uint64(2) << uint(c.bits-1) // 2^bits
	// Gray decode by H ^ (H/2).
	t := x[n-1] >> 1
	for i := n - 1; i > 0; i-- {
		x[i] ^= x[i-1]
	}
	x[0] ^= t
	// Undo excess work.
	for q := uint64(2); q != top; q <<= 1 {
		p := q - 1
		for i := n - 1; i >= 0; i-- {
			if x[i]&q != 0 {
				x[0] ^= p
			} else {
				t := (x[0] ^ x[i]) & p
				x[0] ^= t
				x[i] ^= t
			}
		}
	}
}

// interleave packs the transpose representation into a single index: the
// most significant bit of the result is bit bits-1 of x[0], then bit bits-1
// of x[1], and so on.
func (c *Curve) interleave(x []uint64) uint64 {
	var h uint64
	for l := c.bits - 1; l >= 0; l-- {
		for i := 0; i < c.dim; i++ {
			h = (h << 1) | ((x[i] >> uint(l)) & 1)
		}
	}
	return h
}

// deinterleave is the inverse of interleave.
func (c *Curve) deinterleave(h uint64) []uint64 {
	x := make([]uint64, c.dim)
	c.deinterleaveInto(h, x)
	return x
}

// deinterleaveInto de-interleaves h into the caller-provided slice, which
// must be zeroed and of length dim.
func (c *Curve) deinterleaveInto(h uint64, x []uint64) {
	shift := uint(c.dim*c.bits - 1)
	for l := c.bits - 1; l >= 0; l-- {
		for i := 0; i < c.dim; i++ {
			x[i] |= ((h >> shift) & 1) << uint(l)
			shift--
		}
	}
}

// Spans decomposes the query box (clipped to the curve's grid) into a
// minimal sorted list of index spans. It walks the implicit orthant tree of
// the curve: an aligned index range of length 2^(dim*level) always covers
// one axis-aligned cube of side 2^level, so subtrees fully inside the query
// emit one span and disjoint subtrees are pruned. Results are memoized in a
// bounded process-wide LRU (see SetSpanCacheCapacity), as iterative
// workflows re-translate identical regions every version.
func (c *Curve) Spans(b geometry.BBox) []Span {
	query, ok := b.Intersect(c.Domain())
	if !ok {
		return nil
	}
	if mutate.Enabled(mutate.SfcSpanSplit) {
		// Seeded defect: recompute uncached (never poison the LRU) and
		// lose the tail of the span decomposition.
		w := curveWalker{c: c, query: query, spans: make([]Span, 0, 64), x: make([]uint64, c.dim)}
		w.walk(0, c.bits)
		return mutateSpans(MergeSpans(w.spans))
	}
	key := spanKey{kind: kindHilbert, dim: c.dim, bits: c.bits, box: boxKey(query)}
	if spans, ok := globalSpanCache.get(key); ok {
		return spans
	}
	w := curveWalker{c: c, query: query, spans: make([]Span, 0, 64), x: make([]uint64, c.dim)}
	w.walk(0, c.bits)
	spans := MergeSpans(w.spans)
	globalSpanCache.put(key, spans)
	return spans
}

// mutateSpans applies the sfc-span-split seeded defect: drop the last span,
// or shorten a lone multi-index span by one.
func mutateSpans(spans []Span) []Span {
	if len(spans) > 1 {
		return spans[:len(spans)-1]
	}
	if len(spans) == 1 && spans[0].End > spans[0].Start+1 {
		spans[0].End--
	}
	return spans
}

// curveWalker carries the query and scratch buffers through the recursive
// orthant walk so a Spans call allocates only its result slice.
type curveWalker struct {
	c     *Curve
	query geometry.BBox
	spans []Span
	x     []uint64 // decode scratch
}

// walk visits the orthant subtree whose indices start at start with side
// 2^level, appending covered spans.
func (w *curveWalker) walk(start uint64, level int) {
	c := w.c
	length := uint64(1) << uint(c.dim*level)
	side := 1 << uint(level)
	// The cube covered by this index range is the alignment cube of any
	// point in it; decode into scratch to avoid per-node allocation.
	x := w.x
	for i := range x {
		x[i] = 0
	}
	c.deinterleaveInto(start, x)
	c.transposeToAxes(x)
	contained := true
	for d := 0; d < c.dim; d++ {
		cmin := int(x[d]) &^ (side - 1)
		cmax := cmin + side
		if cmax <= w.query.Min[d] || cmin >= w.query.Max[d] {
			return // disjoint from the query
		}
		if cmin < w.query.Min[d] || cmax > w.query.Max[d] {
			contained = false
		}
	}
	if contained {
		w.spans = append(w.spans, Span{Start: start, End: start + length})
		return
	}
	if level == 0 {
		// Single cell partially matched cannot happen (volume 1), but be
		// safe: it intersects, so include it.
		w.spans = append(w.spans, Span{Start: start, End: start + 1})
		return
	}
	childLen := length >> uint(c.dim)
	for j := uint64(0); j < (1 << uint(c.dim)); j++ {
		w.walk(start+j*childLen, level-1)
	}
}

// spansByStart orders spans by start index without the closure allocation
// of sort.Slice in the hot path.
type spansByStart []Span

func (s spansByStart) Len() int           { return len(s) }
func (s spansByStart) Less(i, j int) bool { return s[i].Start < s[j].Start }
func (s spansByStart) Swap(i, j int)      { s[i], s[j] = s[j], s[i] }

// MergeSpans sorts spans and merges adjacent or overlapping ones in place.
func MergeSpans(spans []Span) []Span {
	if len(spans) == 0 {
		return nil
	}
	sort.Sort(spansByStart(spans))
	out := spans[:1]
	for _, s := range spans[1:] {
		last := &out[len(out)-1]
		if s.Start <= last.End {
			if s.End > last.End {
				last.End = s.End
			}
		} else {
			out = append(out, s)
		}
	}
	return out
}

// TotalLen sums the lengths of all spans.
func TotalLen(spans []Span) uint64 {
	var n uint64
	for _, s := range spans {
		n += s.Len()
	}
	return n
}

// RowMajor is a naive row-major (last dimension fastest) linearizer over
// the same padded cubic grid as Curve. It exists to quantify, in the
// ablation benchmarks, how much the Hilbert curve reduces the number of
// spans per box query.
type RowMajor struct {
	dim  int
	bits int
}

// NewRowMajor creates a row-major linearizer; the parameter constraints
// match NewCurve.
func NewRowMajor(dim, bits int) (*RowMajor, error) {
	if dim < 1 || bits < 1 || dim*bits > 63 {
		return nil, fmt.Errorf("sfc: invalid row-major parameters dim=%d bits=%d", dim, bits)
	}
	return &RowMajor{dim: dim, bits: bits}, nil
}

// Dim returns the dimensionality.
func (r *RowMajor) Dim() int { return r.dim }

// Bits returns the bits per dimension.
func (r *RowMajor) Bits() int { return r.bits }

// Total returns the index-space size.
func (r *RowMajor) Total() uint64 { return 1 << uint(r.dim*r.bits) }

// Domain returns the cubic grid covered by the linearizer.
func (r *RowMajor) Domain() geometry.BBox {
	size := make([]int, r.dim)
	for d := range size {
		size[d] = 1 << uint(r.bits)
	}
	return geometry.BoxFromSize(size)
}

// Encode maps a point to its row-major index.
func (r *RowMajor) Encode(p geometry.Point) uint64 {
	if len(p) != r.dim {
		panic(fmt.Sprintf("sfc: point dimension %d, linearizer dimension %d", len(p), r.dim))
	}
	var idx uint64
	for d := 0; d < r.dim; d++ {
		if p[d] < 0 || p[d] >= (1<<uint(r.bits)) {
			panic(fmt.Sprintf("sfc: coordinate %d out of range", p[d]))
		}
		idx = (idx << uint(r.bits)) | uint64(p[d])
	}
	return idx
}

// Decode maps a row-major index back to its point.
func (r *RowMajor) Decode(idx uint64) geometry.Point {
	if idx >= r.Total() {
		panic(fmt.Sprintf("sfc: index %d out of range", idx))
	}
	p := make(geometry.Point, r.dim)
	mask := uint64(1<<uint(r.bits)) - 1
	for d := r.dim - 1; d >= 0; d-- {
		p[d] = int(idx & mask)
		idx >>= uint(r.bits)
	}
	return p
}

// Spans decomposes a box into row-major index spans: one contiguous run per
// fixed prefix of leading coordinates. Results share the process-wide span
// LRU with the other linearizers, keyed by the curve family so a cached
// Hilbert or Morton decomposition of the same box is never served here.
func (r *RowMajor) Spans(b geometry.BBox) []Span {
	query, ok := b.Intersect(r.Domain())
	if !ok {
		return nil
	}
	// Runs vary along the last dimension; iterate the leading dims.
	if r.dim == 1 {
		return []Span{{Start: uint64(query.Min[0]), End: uint64(query.Max[0])}}
	}
	key := spanKey{kind: kindRowMajor, dim: r.dim, bits: r.bits, box: boxKey(query)}
	if spans, ok := globalSpanCache.get(key); ok {
		return spans
	}
	prefix := geometry.BBox{Min: query.Min[:r.dim-1], Max: query.Max[:r.dim-1]}
	var spans []Span
	last := r.dim - 1
	prefix.Each(func(p geometry.Point) {
		full := make(geometry.Point, r.dim)
		copy(full, p)
		full[last] = query.Min[last]
		start := r.Encode(full)
		spans = append(spans, Span{Start: start, End: start + uint64(query.Size(last))})
	})
	spans = MergeSpans(spans)
	globalSpanCache.put(key, spans)
	return spans
}

// Morton is a Z-order (bit-interleaving) linearizer over the same padded
// cubic grid. It preserves locality better than row-major but worse than
// Hilbert (Z-order has long jumps at quadrant boundaries); the ablation
// benchmarks compare all three.
type Morton struct {
	dim  int
	bits int
}

// NewMorton creates a Z-order linearizer; parameter constraints match
// NewCurve.
func NewMorton(dim, bits int) (*Morton, error) {
	if dim < 1 || bits < 1 || dim*bits > 63 {
		return nil, fmt.Errorf("sfc: invalid morton parameters dim=%d bits=%d", dim, bits)
	}
	return &Morton{dim: dim, bits: bits}, nil
}

// Dim returns the dimensionality.
func (m *Morton) Dim() int { return m.dim }

// Bits returns the bits per dimension.
func (m *Morton) Bits() int { return m.bits }

// Total returns the index-space size.
func (m *Morton) Total() uint64 { return 1 << uint(m.dim*m.bits) }

// Domain returns the cubic grid covered by the linearizer.
func (m *Morton) Domain() geometry.BBox {
	size := make([]int, m.dim)
	for d := range size {
		size[d] = 1 << uint(m.bits)
	}
	return geometry.BoxFromSize(size)
}

// Encode interleaves the coordinate bits: bit l of dimension d lands at
// index bit l*dim + (dim-1-d).
func (m *Morton) Encode(p geometry.Point) uint64 {
	if len(p) != m.dim {
		panic(fmt.Sprintf("sfc: point dimension %d, linearizer dimension %d", len(p), m.dim))
	}
	var idx uint64
	for d, v := range p {
		if v < 0 || v >= (1<<uint(m.bits)) {
			panic(fmt.Sprintf("sfc: coordinate %d out of range", v))
		}
		for l := 0; l < m.bits; l++ {
			bit := (uint64(v) >> uint(l)) & 1
			idx |= bit << uint(l*m.dim+(m.dim-1-d))
		}
	}
	return idx
}

// Decode de-interleaves an index back to its point.
func (m *Morton) Decode(idx uint64) geometry.Point {
	if idx >= m.Total() {
		panic(fmt.Sprintf("sfc: index %d out of range", idx))
	}
	p := make(geometry.Point, m.dim)
	for d := 0; d < m.dim; d++ {
		pos := l2pos(m.dim, d)
		if mutate.Enabled(mutate.MortonBitSwap) {
			// Seeded defect: transposed interleave — bit l of dimension d
			// is read from l*dim+d instead of l*dim+(dim-1-d), so Decode
			// disagrees with Encode about the bit layout.
			pos = d
		}
		var v uint64
		for l := 0; l < m.bits; l++ {
			bit := (idx >> uint(l*m.dim+pos)) & 1
			v |= bit << uint(l)
		}
		p[d] = int(v)
	}
	return p
}

// l2pos is the within-level bit position of dimension d in the Morton
// interleave: the first dimension owns the most significant lane.
func l2pos(dim, d int) int { return dim - 1 - d }

// Spans decomposes a box query using the same aligned-orthant walk as the
// Hilbert curve: every aligned index range of length 2^(dim*level) covers
// one axis-aligned cube under Z-order too. Results are memoized in the
// process-wide span LRU, keyed by the curve family so a cached Hilbert
// decomposition of the same box is never served for a Morton query.
func (m *Morton) Spans(b geometry.BBox) []Span {
	query, ok := b.Intersect(m.Domain())
	if !ok {
		return nil
	}
	if mutate.Enabled(mutate.MortonBitSwap) {
		// Seeded defect path: recompute uncached (never poison the LRU)
		// through the transposed-interleave Decode.
		var spans []Span
		m.spanWalk(0, m.bits, query, &spans)
		return MergeSpans(spans)
	}
	key := spanKey{kind: kindMorton, dim: m.dim, bits: m.bits, box: boxKey(query)}
	if spans, ok := globalSpanCache.get(key); ok {
		return spans
	}
	var spans []Span
	m.spanWalk(0, m.bits, query, &spans)
	spans = MergeSpans(spans)
	globalSpanCache.put(key, spans)
	return spans
}

func (m *Morton) spanWalk(start uint64, level int, query geometry.BBox, spans *[]Span) {
	length := uint64(1) << uint(m.dim*level)
	side := 1 << uint(level)
	corner := m.Decode(start)
	cell := geometry.BBox{Min: make(geometry.Point, m.dim), Max: make(geometry.Point, m.dim)}
	for d := 0; d < m.dim; d++ {
		cell.Min[d] = corner[d] &^ (side - 1)
		cell.Max[d] = cell.Min[d] + side
	}
	inter, ok := cell.Intersect(query)
	if !ok {
		return
	}
	if inter.Equal(cell) {
		*spans = append(*spans, Span{Start: start, End: start + length})
		return
	}
	if level == 0 {
		*spans = append(*spans, Span{Start: start, End: start + 1})
		return
	}
	childLen := length >> uint(m.dim)
	for j := uint64(0); j < (1 << uint(m.dim)); j++ {
		m.spanWalk(start+j*childLen, level-1, query, spans)
	}
}

var (
	_ Linearizer = (*Curve)(nil)
	_ Linearizer = (*RowMajor)(nil)
	_ Linearizer = (*Morton)(nil)
)
