package sfc

import (
	"container/list"
	"strconv"
	"strings"
	"sync"

	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/obs"
)

// Registry mirrors of the cache's own hit/miss fields, plus the eviction
// count the fields never tracked; one place (internal/obs) aggregates them
// with the rest of the pipeline's counters.
var (
	obsHits      = obs.C("sfc.spancache.hits")
	obsMisses    = obs.C("sfc.spancache.misses")
	obsEvictions = obs.C("sfc.spancache.evictions")
)

// The span cache memoizes Curve.Spans results. The orthant walk is
// recursive and revisits the same query boxes every iteration of an
// iterative workflow (the DHT translates each put/get region to spans), so
// identical (curve, box) queries are answered from a bounded LRU instead.
//
// The cache is process-global and keyed by the curve's parameters as well
// as the query box, so independent Space instances (and the ablation
// benchmarks' side-by-side linearizers) share it safely.

// DefaultSpanCacheCapacity is the initial number of cached span lists.
const DefaultSpanCacheCapacity = 512

// spanKey identifies one memoized Spans query.
type spanKey struct {
	kind uint8 // curve family (hilbert, morton, ...)
	dim  int
	bits int
	box  string // canonical min/max rendering of the clipped query
}

const (
	kindHilbert uint8 = iota
	kindMorton
	kindRowMajor
)

// boxKey renders a box into a compact canonical string key.
func boxKey(b geometry.BBox) string {
	var sb strings.Builder
	sb.Grow(4 * b.Dim() * 4)
	for d := range b.Min {
		sb.WriteString(strconv.Itoa(b.Min[d]))
		sb.WriteByte(',')
	}
	sb.WriteByte(';')
	for d := range b.Max {
		sb.WriteString(strconv.Itoa(b.Max[d]))
		sb.WriteByte(',')
	}
	return sb.String()
}

// spanCache is a mutex-guarded LRU of span lists.
type spanCache struct {
	mu       sync.Mutex
	capacity int
	order    *list.List // front = most recently used
	items    map[spanKey]*list.Element
	hits     uint64
	misses   uint64
}

type spanCacheEntry struct {
	key   spanKey
	spans []Span
}

func newSpanCache(capacity int) *spanCache {
	return &spanCache{
		capacity: capacity,
		order:    list.New(),
		items:    make(map[spanKey]*list.Element),
	}
}

var globalSpanCache = newSpanCache(DefaultSpanCacheCapacity)

// get returns a copy of the cached spans for key. Copies keep the cache
// immune to callers that sort or merge the returned slice.
func (c *spanCache) get(key spanKey) ([]Span, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity <= 0 {
		return nil, false
	}
	el, ok := c.items[key]
	if !ok {
		c.misses++
		obsMisses.Inc()
		return nil, false
	}
	c.hits++
	obsHits.Inc()
	c.order.MoveToFront(el)
	cached := el.Value.(*spanCacheEntry).spans
	out := make([]Span, len(cached))
	copy(out, cached)
	return out, true
}

// put stores a private copy of spans under key, evicting the least
// recently used entry when over capacity.
func (c *spanCache) put(key spanKey, spans []Span) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.capacity <= 0 {
		return
	}
	if el, ok := c.items[key]; ok {
		c.order.MoveToFront(el)
		return
	}
	own := make([]Span, len(spans))
	copy(own, spans)
	el := c.order.PushFront(&spanCacheEntry{key: key, spans: own})
	c.items[key] = el
	for c.order.Len() > c.capacity {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*spanCacheEntry).key)
		obsEvictions.Inc()
	}
}

func (c *spanCache) setCapacity(n int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.capacity = n
	for c.order.Len() > n && c.order.Len() > 0 {
		oldest := c.order.Back()
		c.order.Remove(oldest)
		delete(c.items, oldest.Value.(*spanCacheEntry).key)
		obsEvictions.Inc()
	}
}

func (c *spanCache) reset() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.order.Init()
	c.items = make(map[spanKey]*list.Element)
	c.hits, c.misses = 0, 0
}

func (c *spanCache) stats() (hits, misses uint64, size int) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.hits, c.misses, c.order.Len()
}

// SetSpanCacheCapacity bounds the global Spans LRU to n entries. n <= 0
// disables caching entirely (the ablation benchmarks measure the raw walk).
func SetSpanCacheCapacity(n int) { globalSpanCache.setCapacity(n) }

// ResetSpanCache drops all cached span lists and zeroes the hit counters.
func ResetSpanCache() { globalSpanCache.reset() }

// SpanCacheStats reports the global cache's hits, misses and current size.
func SpanCacheStats() (hits, misses uint64, size int) { return globalSpanCache.stats() }
