package sfc

import (
	"sync"
	"testing"

	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/obs"
)

// resetCache restores the default cache state after a test.
func resetCache(t testing.TB) {
	t.Helper()
	ResetSpanCache()
	SetSpanCacheCapacity(DefaultSpanCacheCapacity)
	t.Cleanup(func() {
		ResetSpanCache()
		SetSpanCacheCapacity(DefaultSpanCacheCapacity)
	})
}

func TestSpanCacheHitReturnsEqualSpans(t *testing.T) {
	resetCache(t)
	c, err := NewCurve(2, 5)
	if err != nil {
		t.Fatal(err)
	}
	q := geometry.NewBBox(geometry.Point{3, 7}, geometry.Point{19, 23})
	first := c.Spans(q)
	second := c.Spans(q)
	if len(first) != len(second) {
		t.Fatalf("cached spans differ in length: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Fatalf("span %d: %v != %v", i, first[i], second[i])
		}
	}
	hits, misses, _ := SpanCacheStats()
	if hits < 1 || misses < 1 {
		t.Fatalf("stats hits=%d misses=%d, want at least one of each", hits, misses)
	}
}

// TestSpanCacheCopySemantics: a caller mutating a returned slice must not
// corrupt later answers.
func TestSpanCacheCopySemantics(t *testing.T) {
	resetCache(t)
	c, _ := NewCurve(2, 4)
	q := geometry.NewBBox(geometry.Point{1, 1}, geometry.Point{7, 7})
	first := c.Spans(q)
	want := make([]Span, len(first))
	copy(want, first)
	for i := range first {
		first[i].Start = 0
		first[i].End = 0
	}
	again := c.Spans(q)
	for i := range want {
		if again[i] != want[i] {
			t.Fatalf("cache corrupted by caller mutation: span %d = %v, want %v", i, again[i], want[i])
		}
	}
}

func TestSpanCacheEviction(t *testing.T) {
	resetCache(t)
	SetSpanCacheCapacity(4)
	c, _ := NewCurve(2, 5)
	for i := 0; i < 10; i++ {
		q := geometry.NewBBox(geometry.Point{i, 0}, geometry.Point{i + 3, 5})
		c.Spans(q)
	}
	_, _, size := SpanCacheStats()
	if size > 4 {
		t.Fatalf("cache size %d exceeds capacity 4", size)
	}
}

func TestSpanCacheDisabled(t *testing.T) {
	resetCache(t)
	SetSpanCacheCapacity(0)
	c, _ := NewCurve(2, 4)
	q := geometry.NewBBox(geometry.Point{0, 0}, geometry.Point{5, 5})
	a := c.Spans(q)
	b := c.Spans(q)
	if TotalLen(a) != TotalLen(b) || TotalLen(a) != uint64(q.Volume()) {
		t.Fatalf("disabled cache changed results: %d vs %d (volume %d)", TotalLen(a), TotalLen(b), uint64(q.Volume()))
	}
	_, _, size := SpanCacheStats()
	if size != 0 {
		t.Fatalf("disabled cache stored %d entries", size)
	}
}

// TestSpanCacheKeyedByCurve: curves with different bits must not share
// entries even for the same query box.
func TestSpanCacheKeyedByCurve(t *testing.T) {
	resetCache(t)
	c4, _ := NewCurve(2, 4)
	c5, _ := NewCurve(2, 5)
	q := geometry.NewBBox(geometry.Point{0, 0}, geometry.Point{16, 16})
	a := c4.Spans(q) // covers c4's whole domain: one span of 256
	b := c5.Spans(q) // a quadrant of c5's domain
	if TotalLen(a) != 256 || TotalLen(b) != 256 {
		t.Fatalf("span volumes %d / %d, want 256 / 256", TotalLen(a), TotalLen(b))
	}
	if len(a) == len(b) && a[0] == b[0] && len(a) == 1 && a[0].End == b[0].End {
		// Both being the single identical span would mean the cache
		// conflated the two curves (c4's is [0,256), c5's quadrant is not
		// guaranteed to start at 0 — compare defensively).
		t.Log("identical spans for different curves; verifying independently")
	}
	// Recompute with cache disabled and compare.
	SetSpanCacheCapacity(0)
	a2 := c4.Spans(q)
	b2 := c5.Spans(q)
	if len(a) != len(a2) || len(b) != len(b2) {
		t.Fatalf("cached results differ from uncached: %v/%v vs %v/%v", a, b, a2, b2)
	}
}

// TestSpanCacheCountersConcurrent: with observability on, every Spans call
// lands in exactly one of the hit/miss registry counters even when callers
// race (run under -race), and the registry deltas agree with the cache's
// own stats.
func TestSpanCacheCountersConcurrent(t *testing.T) {
	resetCache(t)
	prev := obs.Enabled()
	obs.Enable(true)
	t.Cleanup(func() { obs.Enable(prev) })
	baseHits, baseMisses := obsHits.Value(), obsMisses.Value()

	c, err := NewCurve(2, 6)
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const perGoroutine = 50
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perGoroutine; i++ {
				// A small set of distinct queries so every goroutine mixes
				// first-time misses with repeat hits.
				q := geometry.NewBBox(
					geometry.Point{(g + i) % 8, i % 8},
					geometry.Point{(g+i)%8 + 4, i%8 + 4})
				c.Spans(q)
			}
		}(g)
	}
	wg.Wait()

	dHits := obsHits.Value() - baseHits
	dMisses := obsMisses.Value() - baseMisses
	if dHits+dMisses != goroutines*perGoroutine {
		t.Fatalf("hits %d + misses %d = %d, want %d calls",
			dHits, dMisses, dHits+dMisses, goroutines*perGoroutine)
	}
	if dMisses == 0 {
		t.Fatal("expected at least one miss for first-time queries")
	}
	hits, misses, _ := SpanCacheStats()
	if int64(hits) != dHits || int64(misses) != dMisses {
		t.Fatalf("registry deltas (%d/%d) disagree with cache stats (%d/%d)",
			dHits, dMisses, hits, misses)
	}
}

// TestSpanCacheEvictionCounter: over-capacity inserts of distinct keys must
// be counted one eviction each.
func TestSpanCacheEvictionCounter(t *testing.T) {
	resetCache(t)
	prev := obs.Enabled()
	obs.Enable(true)
	t.Cleanup(func() { obs.Enable(prev) })
	base := obsEvictions.Value()

	SetSpanCacheCapacity(4)
	c, _ := NewCurve(2, 5)
	const queries = 10
	for i := 0; i < queries; i++ {
		q := geometry.NewBBox(geometry.Point{i, 0}, geometry.Point{i + 3, 5})
		c.Spans(q)
	}
	if got := obsEvictions.Value() - base; got != queries-4 {
		t.Fatalf("evictions = %d, want %d", got, queries-4)
	}
}

// TestSpanCacheConcurrent exercises the cache from many goroutines (run
// under -race).
func TestSpanCacheConcurrent(t *testing.T) {
	resetCache(t)
	c, _ := NewCurve(2, 6)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				q := geometry.NewBBox(
					geometry.Point{(g + i) % 32, i % 32},
					geometry.Point{(g+i)%32 + 8, i%32 + 8})
				spans := c.Spans(q)
				var want uint64
				if inter, ok := q.Intersect(c.Domain()); ok {
					want = uint64(inter.Volume())
				}
				if TotalLen(spans) != want {
					t.Errorf("goroutine %d: span volume %d, want %d", g, TotalLen(spans), want)
					return
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestSpanCacheKeyedByCurveKind: the cache key must carry the curve's
// identity, not just its geometry — Hilbert, Morton and row-major curves
// of identical dim/bits produce different decompositions for the same
// box, and a curve switch mid-process (the -curve policy is selectable
// end to end) must never serve one curve's spans to another. Each curve
// first populates the cache, then every answer is compared against an
// uncached recomputation.
func TestSpanCacheKeyedByCurveKind(t *testing.T) {
	resetCache(t)
	h, _ := NewCurve(2, 4)
	m, _ := NewMorton(2, 4)
	r, _ := NewRowMajor(2, 4)
	q := geometry.NewBBox(geometry.Point{1, 2}, geometry.Point{7, 11})

	cached := map[string][]Span{
		"hilbert":  h.Spans(q), // miss: populates the shared cache
		"morton":   m.Spans(q), // would hit hilbert's entry if kind were unkeyed
		"rowmajor": r.Spans(q),
	}
	// The three decompositions are genuinely distinct for this box, so a
	// conflated key could not go unnoticed.
	if len(cached["hilbert"]) == len(cached["morton"]) {
		hEqual := true
		for i := range cached["hilbert"] {
			if cached["hilbert"][i] != cached["morton"][i] {
				hEqual = false
				break
			}
		}
		if hEqual {
			t.Fatal("hilbert and morton spans identical; pick a different probe box")
		}
	}
	SetSpanCacheCapacity(0) // recompute below bypasses the cache entirely
	for name, l := range map[string]Linearizer{"hilbert": h, "morton": m, "rowmajor": r} {
		fresh := l.Spans(q)
		got := cached[name]
		if len(got) != len(fresh) {
			t.Fatalf("%s: cached %d spans, uncached %d", name, len(got), len(fresh))
		}
		for i := range fresh {
			if got[i] != fresh[i] {
				t.Fatalf("%s span %d: cached %v, uncached %v (cache served another curve's entry)",
					name, i, got[i], fresh[i])
			}
		}
	}
}
