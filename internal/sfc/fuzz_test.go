package sfc

import (
	"testing"

	"github.com/insitu/cods/internal/geometry"
)

// fuzzCurve builds the linearizer a fuzz input selects, clamping dim and
// bits into the constructible range so every input is meaningful.
func fuzzCurve(t *testing.T, kind uint8, dim, bits int) Linearizer {
	t.Helper()
	if dim < 1 {
		dim = 1
	}
	if dim > 3 {
		dim = 1 + dim%3
	}
	if bits < 1 {
		bits = 1
	}
	if bits > 6 {
		bits = 1 + bits%6
	}
	var l Linearizer
	var err error
	switch kind % 3 {
	case 0:
		l, err = NewCurve(dim, bits)
	case 1:
		l, err = NewMorton(dim, bits)
	case 2:
		l, err = NewRowMajor(dim, bits)
	}
	if err != nil {
		t.Fatalf("constructing curve kind %d dim %d bits %d: %v", kind%3, dim, bits, err)
	}
	return l
}

// FuzzLinearizerRoundTrip asserts bijectivity of every linearization
// policy: Decode inverts Encode over the whole index space, for Hilbert,
// Morton and row-major curves across the dims and bits the conformance
// scenarios shrink to.
func FuzzLinearizerRoundTrip(f *testing.F) {
	// Seed corpus: (kind, dim, bits) pairs from shrunk conformance
	// scenarios — 1-D domains of 8 and 16, 2-D and 3-D coupling grids.
	f.Add(uint8(0), 1, 3, uint64(5))
	f.Add(uint8(0), 1, 4, uint64(9))
	f.Add(uint8(0), 2, 3, uint64(37))
	f.Add(uint8(1), 2, 3, uint64(11))
	f.Add(uint8(1), 2, 4, uint64(200))
	f.Add(uint8(1), 3, 2, uint64(63))
	f.Add(uint8(2), 3, 3, uint64(511))
	f.Add(uint8(2), 1, 1, uint64(1))
	f.Fuzz(func(t *testing.T, kind uint8, dim, bits int, idx uint64) {
		l := fuzzCurve(t, kind, dim, bits)
		idx %= l.Total()
		p := l.Decode(idx)
		for d, x := range p {
			if x < 0 || x >= 1<<uint(l.Bits()) {
				t.Fatalf("decode(%d)[%d] = %d outside [0, %d)", idx, d, x, 1<<uint(l.Bits()))
			}
		}
		if back := l.Encode(p); back != idx {
			t.Fatalf("round trip broken: decode(%d) = %v encodes back to %d", idx, p, back)
		}
	})
}

// FuzzSpans asserts the span decomposition invariant for arbitrary boxes:
// total span length equals the clipped query volume, and no panic occurs.
func FuzzSpans(f *testing.F) {
	f.Add(0, 0, 0, 4, 4, 4)
	f.Add(3, 5, 1, 11, 13, 2)
	f.Add(-5, -5, -5, 20, 20, 20)
	f.Add(7, 7, 7, 7, 7, 7) // empty
	f.Fuzz(func(t *testing.T, x0, y0, z0, x1, y1, z1 int) {
		// Bound the coordinates so the test stays fast.
		clamp := func(v int) int {
			if v < -32 {
				return -32
			}
			if v > 32 {
				return 32
			}
			return v
		}
		min := geometry.Point{clamp(x0), clamp(y0), clamp(z0)}
		max := geometry.Point{clamp(x1), clamp(y1), clamp(z1)}
		q := geometry.BBox{Min: min, Max: max}
		if q.Volume() < 0 {
			return
		}
		c, err := NewCurve(3, 4)
		if err != nil {
			t.Fatal(err)
		}
		spans := c.Spans(q)
		clipped, ok := q.Intersect(c.Domain())
		var want uint64
		if ok {
			want = uint64(clipped.Volume())
		}
		if TotalLen(spans) != want {
			t.Fatalf("spans cover %d cells, clipped query has %d", TotalLen(spans), want)
		}
	})
}
