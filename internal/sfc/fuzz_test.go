package sfc

import (
	"testing"

	"github.com/insitu/cods/internal/geometry"
)

// FuzzSpans asserts the span decomposition invariant for arbitrary boxes:
// total span length equals the clipped query volume, and no panic occurs.
func FuzzSpans(f *testing.F) {
	f.Add(0, 0, 0, 4, 4, 4)
	f.Add(3, 5, 1, 11, 13, 2)
	f.Add(-5, -5, -5, 20, 20, 20)
	f.Add(7, 7, 7, 7, 7, 7) // empty
	f.Fuzz(func(t *testing.T, x0, y0, z0, x1, y1, z1 int) {
		// Bound the coordinates so the test stays fast.
		clamp := func(v int) int {
			if v < -32 {
				return -32
			}
			if v > 32 {
				return 32
			}
			return v
		}
		min := geometry.Point{clamp(x0), clamp(y0), clamp(z0)}
		max := geometry.Point{clamp(x1), clamp(y1), clamp(z1)}
		q := geometry.BBox{Min: min, Max: max}
		if q.Volume() < 0 {
			return
		}
		c, err := NewCurve(3, 4)
		if err != nil {
			t.Fatal(err)
		}
		spans := c.Spans(q)
		clipped, ok := q.Intersect(c.Domain())
		var want uint64
		if ok {
			want = uint64(clipped.Volume())
		}
		if TotalLen(spans) != want {
			t.Fatalf("spans cover %d cells, clipped query has %d", TotalLen(spans), want)
		}
	})
}
