package sfc

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/insitu/cods/internal/geometry"
)

func mustCurve(t testing.TB, dim, bits int) *Curve {
	t.Helper()
	c, err := NewCurve(dim, bits)
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestNewCurveValidation(t *testing.T) {
	if _, err := NewCurve(0, 4); err == nil {
		t.Error("dim=0 accepted")
	}
	if _, err := NewCurve(3, 0); err == nil {
		t.Error("bits=0 accepted")
	}
	if _, err := NewCurve(8, 8); err == nil {
		t.Error("dim*bits=64 accepted, index would not fit in 63 bits")
	}
	if _, err := NewCurve(3, 21); err != nil {
		t.Errorf("dim*bits=63 rejected: %v", err)
	}
}

func TestCurveForDomain(t *testing.T) {
	c, err := CurveForDomain([]int{100, 256, 3})
	if err != nil {
		t.Fatal(err)
	}
	if c.Dim() != 3 {
		t.Fatalf("Dim = %d", c.Dim())
	}
	if c.Bits() != 8 { // max extent 256 = 2^8
		t.Fatalf("Bits = %d, want 8", c.Bits())
	}
	if _, err := CurveForDomain(nil); err == nil {
		t.Error("empty domain accepted")
	}
	if _, err := CurveForDomain([]int{4, 0}); err == nil {
		t.Error("zero extent accepted")
	}
}

func TestEncodeDecodeRoundTripExhaustive2D(t *testing.T) {
	c := mustCurve(t, 2, 4)
	seen := make(map[uint64]bool)
	c.Domain().Each(func(p geometry.Point) {
		idx := c.Encode(p)
		if idx >= c.Total() {
			t.Fatalf("Encode(%v) = %d out of range", p, idx)
		}
		if seen[idx] {
			t.Fatalf("index %d produced twice (not injective)", idx)
		}
		seen[idx] = true
		back := c.Decode(idx)
		if !back.Equal(p) {
			t.Fatalf("Decode(Encode(%v)) = %v", p, back)
		}
	})
	if len(seen) != int(c.Total()) {
		t.Fatalf("covered %d of %d indices", len(seen), c.Total())
	}
}

func TestEncodeDecodeRoundTripExhaustive3D(t *testing.T) {
	c := mustCurve(t, 3, 3)
	c.Domain().Each(func(p geometry.Point) {
		if back := c.Decode(c.Encode(p)); !back.Equal(p) {
			t.Fatalf("round trip failed for %v -> %v", p, back)
		}
	})
}

// The defining property of the Hilbert curve: consecutive indices map to
// grid cells at Manhattan distance exactly 1.
func TestHilbertAdjacency(t *testing.T) {
	for _, cfg := range []struct{ dim, bits int }{{2, 4}, {2, 5}, {3, 3}, {4, 2}} {
		c := mustCurve(t, cfg.dim, cfg.bits)
		prev := c.Decode(0)
		for idx := uint64(1); idx < c.Total(); idx++ {
			cur := c.Decode(idx)
			dist := 0
			for d := 0; d < cfg.dim; d++ {
				diff := cur[d] - prev[d]
				if diff < 0 {
					diff = -diff
				}
				dist += diff
			}
			if dist != 1 {
				t.Fatalf("dim=%d bits=%d: indices %d,%d map to %v,%v (distance %d)",
					cfg.dim, cfg.bits, idx-1, idx, prev, cur, dist)
			}
			prev = cur
		}
	}
}

func TestEncodeOutOfRangePanics(t *testing.T) {
	c := mustCurve(t, 2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range coordinate")
		}
	}()
	c.Encode(geometry.Point{8, 0})
}

func TestDecodeOutOfRangePanics(t *testing.T) {
	c := mustCurve(t, 2, 3)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for out-of-range index")
		}
	}()
	c.Decode(c.Total())
}

func TestDim1Identityish(t *testing.T) {
	c := mustCurve(t, 1, 6)
	for i := 0; i < 64; i++ {
		p := geometry.Point{i}
		back := c.Decode(c.Encode(p))
		if !back.Equal(p) {
			t.Fatalf("1-D round trip failed: %v -> %v", p, back)
		}
	}
}

func TestSpansCoverExactlyQuery(t *testing.T) {
	c := mustCurve(t, 2, 4)
	query := geometry.NewBBox(geometry.Point{3, 5}, geometry.Point{11, 13})
	spans := c.Spans(query)
	if TotalLen(spans) != uint64(query.Volume()) {
		t.Fatalf("spans cover %d cells, query has %d", TotalLen(spans), query.Volume())
	}
	for _, s := range spans {
		for idx := s.Start; idx < s.End; idx++ {
			if !query.Contains(c.Decode(idx)) {
				t.Fatalf("span index %d decodes to %v outside query %v", idx, c.Decode(idx), query)
			}
		}
	}
	// Sorted, non-adjacent.
	for i := 1; i < len(spans); i++ {
		if spans[i].Start <= spans[i-1].End {
			t.Fatalf("spans not merged/sorted: %v", spans)
		}
	}
}

func TestSpansFullDomainIsSingleSpan(t *testing.T) {
	c := mustCurve(t, 3, 4)
	spans := c.Spans(c.Domain())
	if len(spans) != 1 || spans[0].Start != 0 || spans[0].End != c.Total() {
		t.Fatalf("full-domain spans = %v", spans)
	}
}

func TestSpansDisjointQuery(t *testing.T) {
	c := mustCurve(t, 2, 4)
	out := c.Spans(geometry.NewBBox(geometry.Point{16, 16}, geometry.Point{20, 20}))
	if out != nil {
		t.Fatalf("query outside domain produced spans %v", out)
	}
}

func TestSpansClippedToDomain(t *testing.T) {
	c := mustCurve(t, 2, 3)
	query := geometry.NewBBox(geometry.Point{6, 6}, geometry.Point{100, 100})
	spans := c.Spans(query)
	if TotalLen(spans) != 4 { // clipped to [6,8)x[6,8)
		t.Fatalf("clipped spans cover %d cells, want 4", TotalLen(spans))
	}
}

func TestQuickSpansCoverage(t *testing.T) {
	c := mustCurve(t, 3, 3)
	r := rand.New(rand.NewSource(7))
	f := func() bool {
		min := geometry.Point{r.Intn(8), r.Intn(8), r.Intn(8)}
		max := geometry.Point{min[0] + 1 + r.Intn(8-min[0]), min[1] + 1 + r.Intn(8-min[1]), min[2] + 1 + r.Intn(8-min[2])}
		q := geometry.NewBBox(min, max)
		spans := c.Spans(q)
		if TotalLen(spans) != uint64(q.Volume()) {
			return false
		}
		// Every cell of the query must be inside some span.
		okAll := true
		q.Each(func(p geometry.Point) {
			idx := c.Encode(p)
			found := false
			for _, s := range spans {
				if idx >= s.Start && idx < s.End {
					found = true
					break
				}
			}
			if !found {
				okAll = false
			}
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickRoundTripRandom(t *testing.T) {
	c := mustCurve(t, 3, 10)
	r := rand.New(rand.NewSource(11))
	f := func() bool {
		p := geometry.Point{r.Intn(1024), r.Intn(1024), r.Intn(1024)}
		return c.Decode(c.Encode(p)).Equal(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 1000}); err != nil {
		t.Fatal(err)
	}
}

func TestMergeSpans(t *testing.T) {
	in := []Span{{10, 20}, {0, 5}, {5, 10}, {30, 40}, {35, 45}}
	out := MergeSpans(in)
	want := []Span{{0, 20}, {30, 45}}
	if len(out) != len(want) {
		t.Fatalf("MergeSpans = %v, want %v", out, want)
	}
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("MergeSpans = %v, want %v", out, want)
		}
	}
	if MergeSpans(nil) != nil {
		t.Fatal("MergeSpans(nil) should be nil")
	}
}

func TestRowMajorRoundTrip(t *testing.T) {
	rm, err := NewRowMajor(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	rm.Domain().Each(func(p geometry.Point) {
		if back := rm.Decode(rm.Encode(p)); !back.Equal(p) {
			t.Fatalf("row-major round trip failed for %v", p)
		}
	})
}

func TestRowMajorSpansCoverage(t *testing.T) {
	rm, err := NewRowMajor(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := geometry.NewBBox(geometry.Point{2, 3}, geometry.Point{7, 9})
	spans := rm.Spans(q)
	if TotalLen(spans) != uint64(q.Volume()) {
		t.Fatalf("row-major spans cover %d, want %d", TotalLen(spans), q.Volume())
	}
	// A row-major box query in 2-D needs one span per row (rows are not
	// adjacent here because the box does not span the full last dimension).
	if len(spans) != q.Size(0) {
		t.Fatalf("row-major span count = %d, want %d", len(spans), q.Size(0))
	}
}

// Hilbert locality: the same box query should need far fewer spans than
// row-major for a well-aligned 3-D region.
func TestHilbertBeatsRowMajorOnSpanCount(t *testing.T) {
	c := mustCurve(t, 3, 6)
	rm, _ := NewRowMajor(3, 6)
	q := geometry.NewBBox(geometry.Point{16, 16, 16}, geometry.Point{32, 32, 32})
	h := len(c.Spans(q))
	r := len(rm.Spans(q))
	if h >= r {
		t.Fatalf("Hilbert spans (%d) not fewer than row-major spans (%d)", h, r)
	}
}

func BenchmarkEncode3D(b *testing.B) {
	c := mustCurve(b, 3, 16)
	p := geometry.Point{12345, 54321, 7777}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Encode(p)
	}
}

func BenchmarkDecode3D(b *testing.B) {
	c := mustCurve(b, 3, 16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Decode(uint64(i) & (c.Total() - 1))
	}
}

func BenchmarkSpans3D(b *testing.B) {
	c := mustCurve(b, 3, 8)
	q := geometry.NewBBox(geometry.Point{10, 20, 30}, geometry.Point{100, 120, 90})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Spans(q)
	}
}

func TestMortonRoundTrip(t *testing.T) {
	m, err := NewMorton(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	seen := make(map[uint64]bool)
	m.Domain().Each(func(p geometry.Point) {
		idx := m.Encode(p)
		if seen[idx] {
			t.Fatalf("morton index %d duplicated", idx)
		}
		seen[idx] = true
		if back := m.Decode(idx); !back.Equal(p) {
			t.Fatalf("morton round trip failed: %v -> %v", p, back)
		}
	})
	if len(seen) != int(m.Total()) {
		t.Fatalf("morton covered %d of %d", len(seen), m.Total())
	}
}

func TestMortonSpansCoverQuery(t *testing.T) {
	m, err := NewMorton(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	q := geometry.NewBBox(geometry.Point{3, 5}, geometry.Point{11, 13})
	spans := m.Spans(q)
	if TotalLen(spans) != uint64(q.Volume()) {
		t.Fatalf("morton spans cover %d, want %d", TotalLen(spans), q.Volume())
	}
	for _, s := range spans {
		for idx := s.Start; idx < s.End; idx++ {
			if !q.Contains(m.Decode(idx)) {
				t.Fatalf("span index %d outside query", idx)
			}
		}
	}
}

func TestMortonZOrderProperty(t *testing.T) {
	// In 2-D with 1 bit per dim, Z-order visits (0,0),(0,1),(1,0),(1,1)
	// with x owning the high bit (dimension 0 most significant).
	m, err := NewMorton(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	want := []geometry.Point{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	for i, w := range want {
		if got := m.Decode(uint64(i)); !got.Equal(w) {
			t.Fatalf("Decode(%d) = %v, want %v", i, got, w)
		}
	}
}

// Locality ordering: Hilbert <= Morton <= row-major span counts on an
// aligned cubic query.
func TestLinearizerLocalityOrdering(t *testing.T) {
	h := mustCurve(t, 3, 6)
	m, _ := NewMorton(3, 6)
	r, _ := NewRowMajor(3, 6)
	q := geometry.NewBBox(geometry.Point{16, 16, 16}, geometry.Point{48, 48, 48})
	hs, ms, rs := len(h.Spans(q)), len(m.Spans(q)), len(r.Spans(q))
	if !(hs <= ms && ms <= rs) {
		t.Fatalf("span ordering violated: hilbert %d, morton %d, row-major %d", hs, ms, rs)
	}
}

// TestForDomainSelectsCurve: the named factory builds the right
// linearizer for each policy name, defaults to Hilbert, and rejects
// unknown names.
func TestForDomainSelectsCurve(t *testing.T) {
	size := []int{8, 8}
	for _, tc := range []struct {
		name string
		want string
	}{
		{"", "*sfc.Curve"},
		{CurveHilbert, "*sfc.Curve"},
		{CurveMorton, "*sfc.Morton"},
		{CurveRowMajor, "*sfc.RowMajor"},
	} {
		l, err := ForDomain(tc.name, size)
		if err != nil {
			t.Fatalf("ForDomain(%q): %v", tc.name, err)
		}
		if got := fmt.Sprintf("%T", l); got != tc.want {
			t.Fatalf("ForDomain(%q) built %s, want %s", tc.name, got, tc.want)
		}
		if l.Dim() != 2 || l.Bits() != 3 {
			t.Fatalf("ForDomain(%q) dim=%d bits=%d, want 2/3", tc.name, l.Dim(), l.Bits())
		}
	}
	if _, err := ForDomain("peano", size); err == nil {
		t.Fatal("unknown curve name accepted")
	}
	if len(CurveNames()) != 3 {
		t.Fatalf("CurveNames() = %v, want the three policies", CurveNames())
	}
}

// TestSpansMatchNaiveEnumeration differentially checks the span
// decomposition of every curve against brute force: the union of the
// spans of a box must be exactly {Encode(p) : p in box clipped to the
// domain}, across aligned, unaligned, degenerate and clipped boxes.
func TestSpansMatchNaiveEnumeration(t *testing.T) {
	boxes2 := []geometry.BBox{
		geometry.NewBBox(geometry.Point{0, 0}, geometry.Point{8, 8}),
		geometry.NewBBox(geometry.Point{1, 2}, geometry.Point{7, 5}),
		geometry.NewBBox(geometry.Point{3, 3}, geometry.Point{4, 4}),
		geometry.NewBBox(geometry.Point{-2, 5}, geometry.Point{9, 12}),
	}
	boxes3 := []geometry.BBox{
		geometry.NewBBox(geometry.Point{0, 0, 0}, geometry.Point{4, 4, 4}),
		geometry.NewBBox(geometry.Point{1, 0, 2}, geometry.Point{3, 4, 3}),
	}
	for _, name := range CurveNames() {
		for _, tc := range []struct {
			size  []int
			boxes []geometry.BBox
		}{
			{[]int{8, 8}, boxes2},
			{[]int{4, 4, 4}, boxes3},
		} {
			l, err := ForDomain(name, tc.size)
			if err != nil {
				t.Fatalf("ForDomain(%q, %v): %v", name, tc.size, err)
			}
			domain := geometry.BoxFromSize(tc.size)
			for _, box := range tc.boxes {
				covered := make(map[uint64]bool)
				for _, s := range l.Spans(box) {
					for idx := s.Start; idx < s.End; idx++ {
						if covered[idx] {
							t.Fatalf("%s %v: index %d covered twice", name, box, idx)
						}
						covered[idx] = true
					}
				}
				clipped, ok := box.Intersect(domain)
				if !ok {
					if len(covered) != 0 {
						t.Fatalf("%s %v: spans cover %d cells of a disjoint box", name, box, len(covered))
					}
					continue
				}
				var cells int
				p := make(geometry.Point, len(tc.size))
				var walk func(d int)
				walk = func(d int) {
					if d == len(tc.size) {
						cells++
						if idx := l.Encode(p); !covered[idx] {
							t.Fatalf("%s %v: spans miss cell %v at index %d", name, box, p, idx)
						}
						return
					}
					for x := clipped.Min[d]; x < clipped.Max[d]; x++ {
						p[d] = x
						walk(d + 1)
					}
				}
				walk(0)
				if len(covered) != cells {
					t.Fatalf("%s %v: spans cover %d indices, clipped box has %d cells",
						name, box, len(covered), cells)
				}
			}
		}
	}
}
