package sfc

import (
	"testing"

	"github.com/insitu/cods/internal/geometry"
)

// benchQueries is a repeating set of box queries shaped like an iterative
// workflow's put/get regions (same boxes every version).
func benchQueries() []geometry.BBox {
	var qs []geometry.BBox
	for bx := 0; bx < 4; bx++ {
		for by := 0; by < 4; by++ {
			qs = append(qs, geometry.NewBBox(
				geometry.Point{bx * 16, by * 16},
				geometry.Point{(bx + 1) * 16, (by + 1) * 16}))
		}
	}
	return qs
}

// BenchmarkSpansCached measures Curve.Spans with the LRU enabled (steady
// state of an iterative workflow: every query repeats).
func BenchmarkSpansCached(b *testing.B) {
	ResetSpanCache()
	SetSpanCacheCapacity(DefaultSpanCacheCapacity)
	defer func() {
		ResetSpanCache()
		SetSpanCacheCapacity(DefaultSpanCacheCapacity)
	}()
	c, err := NewCurve(2, 8)
	if err != nil {
		b.Fatal(err)
	}
	qs := benchQueries()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			if len(c.Spans(q)) == 0 {
				b.Fatal("empty spans")
			}
		}
	}
}

// BenchmarkSpansUncached measures the raw recursive orthant walk (cache
// disabled), the cost every repeated query paid before the cache.
func BenchmarkSpansUncached(b *testing.B) {
	ResetSpanCache()
	SetSpanCacheCapacity(0)
	defer func() {
		ResetSpanCache()
		SetSpanCacheCapacity(DefaultSpanCacheCapacity)
	}()
	c, err := NewCurve(2, 8)
	if err != nil {
		b.Fatal(err)
	}
	qs := benchQueries()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, q := range qs {
			if len(c.Spans(q)) == 0 {
				b.Fatal("empty spans")
			}
		}
	}
}
