package runtime

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/decomp"
	"github.com/insitu/cods/internal/retry"
	"github.com/insitu/cods/internal/workflow"
)

// fastRetry is a task retry policy with negligible backoff, so tests stay
// quick.
func fastRetry(attempts int) TaskRetryPolicy {
	return TaskRetryPolicy{Policy: retry.Policy{
		MaxAttempts: attempts,
		BaseDelay:   time.Microsecond,
		MaxDelay:    10 * time.Microsecond,
		Multiplier:  2,
	}}
}

// flakiness counts subroutine invocations per rank and fails the first
// failuresPer of them.
type flakiness struct {
	mu          sync.Mutex
	calls       map[int]int
	failuresPer int
}

func (f *flakiness) run(ctx *AppContext) error {
	f.mu.Lock()
	f.calls[ctx.Rank]++
	n := f.calls[ctx.Rank]
	f.mu.Unlock()
	if n <= f.failuresPer {
		return fmt.Errorf("transient glitch %d", n)
	}
	return nil
}

func TestTaskRetryRecoversFlakyApp(t *testing.T) {
	size := []int{4, 4}
	s := newServer(t, 2, 2, size)
	s.SetTaskRetry(fastRetry(3))
	fl := &flakiness{calls: map[int]int{}, failuresPer: 2}
	if err := s.RegisterApp(AppSpec{
		ID: 1, Decomp: mustDecomp(t, decomp.Blocked, size, []int{2, 1}),
		Run: fl.run,
	}); err != nil {
		t.Fatal(err)
	}
	d, _ := workflow.New([]int{1}, nil, nil)
	rep, err := s.Run(d, DataCentric)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TasksRun != 2 {
		t.Fatalf("TasksRun = %d", rep.TasksRun)
	}
	// Each of the 2 tasks fails twice, then succeeds on attempt 3.
	if rep.TaskAttempts != 6 || rep.TaskRetries != 4 || rep.TaskRecoveries != 2 {
		t.Fatalf("attempts/retries/recoveries = %d/%d/%d, want 6/4/2",
			rep.TaskAttempts, rep.TaskRetries, rep.TaskRecoveries)
	}
}

func TestTaskRetryDisabledByDefault(t *testing.T) {
	size := []int{4, 4}
	s := newServer(t, 2, 2, size)
	fl := &flakiness{calls: map[int]int{}, failuresPer: 1}
	if err := s.RegisterApp(AppSpec{
		ID: 1, Decomp: mustDecomp(t, decomp.Blocked, size, []int{1, 1}),
		Run: fl.run,
	}); err != nil {
		t.Fatal(err)
	}
	d, _ := workflow.New([]int{1}, nil, nil)
	_, err := s.Run(d, DataCentric)
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TaskError", err)
	}
	if te.Attempts != 1 {
		t.Fatalf("Attempts = %d, want 1 (no policy installed)", te.Attempts)
	}
}

func TestTaskErrorContract(t *testing.T) {
	boom := errors.New("boom")
	te := &TaskError{
		Task:     cluster.TaskID{App: 3, Rank: 5},
		Core:     7,
		Attempts: 4,
		Err:      fmt.Errorf("wrapped: %w", boom),
	}
	if !errors.Is(te, boom) {
		t.Fatal("errors.Is does not reach the cause through TaskError")
	}
	var got *TaskError
	if !errors.As(error(te), &got) || got.Task.App != 3 || got.Attempts != 4 {
		t.Fatalf("errors.As round-trip = %+v", got)
	}
	msg := te.Error()
	for _, want := range []string{"3.5", "core 7", "4 attempt(s)", "boom"} {
		if !strings.Contains(msg, want) {
			t.Fatalf("Error() = %q, missing %q", msg, want)
		}
	}
}

func TestTaskRetryBudgetExhausted(t *testing.T) {
	size := []int{4, 4}
	s := newServer(t, 2, 2, size)
	s.SetTaskRetry(fastRetry(3))
	boom := errors.New("boom")
	if err := s.RegisterApp(AppSpec{
		ID: 1, Decomp: mustDecomp(t, decomp.Blocked, size, []int{1, 1}),
		Run: func(*AppContext) error { return boom },
	}); err != nil {
		t.Fatal(err)
	}
	d, _ := workflow.New([]int{1}, nil, nil)
	_, err := s.Run(d, DataCentric)
	var te *TaskError
	if !errors.As(err, &te) {
		t.Fatalf("err = %v, want *TaskError", err)
	}
	if te.Attempts != 3 {
		t.Fatalf("Attempts = %d, want 3", te.Attempts)
	}
	if !errors.Is(err, boom) {
		t.Fatal("TaskError does not unwrap to the subroutine error")
	}
}

func TestTaskRetryCapturesPanicPerAttempt(t *testing.T) {
	size := []int{4, 4}
	s := newServer(t, 2, 2, size)
	s.SetTaskRetry(fastRetry(3))
	var mu sync.Mutex
	calls := 0
	if err := s.RegisterApp(AppSpec{
		ID: 1, Decomp: mustDecomp(t, decomp.Blocked, size, []int{1, 1}),
		Run: func(*AppContext) error {
			mu.Lock()
			calls++
			n := calls
			mu.Unlock()
			if n < 3 {
				panic("kaboom")
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	d, _ := workflow.New([]int{1}, nil, nil)
	rep, err := s.Run(d, DataCentric)
	if err != nil {
		t.Fatalf("panicking attempts not retried: %v", err)
	}
	if rep.TaskRecoveries != 1 || rep.TaskAttempts != 3 {
		t.Fatalf("report = %+v", rep)
	}
}

// A retried task with Remap enabled rebinds its data operations to a spare
// idle core, so the CoDS handle cores seen across attempts differ.
func TestTaskRetryRemapMovesHandle(t *testing.T) {
	size := []int{4, 4}
	s := newServer(t, 2, 2, size)
	pol := fastRetry(2)
	pol.Remap = true
	s.SetTaskRetry(pol)
	var mu sync.Mutex
	var seen []cluster.CoreID
	if err := s.RegisterApp(AppSpec{
		ID: 1, Decomp: mustDecomp(t, decomp.Blocked, size, []int{1, 1}),
		Run: func(ctx *AppContext) error {
			mu.Lock()
			seen = append(seen, ctx.Space.Core())
			n := len(seen)
			mu.Unlock()
			if n == 1 {
				return errors.New("first attempt fails")
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	d, _ := workflow.New([]int{1}, nil, nil)
	rep, err := s.Run(d, DataCentric)
	if err != nil {
		t.Fatal(err)
	}
	if rep.TaskRecoveries != 1 {
		t.Fatalf("report = %+v", rep)
	}
	if len(seen) != 2 {
		t.Fatalf("attempts = %d, want 2", len(seen))
	}
	if seen[0] == seen[1] {
		t.Fatalf("remap kept the handle on core %d", seen[0])
	}
}
