// Package runtime ties the framework together: it implements the workflow
// management server (execution client management + workflow engine) and
// the execution clients that run the computation tasks of the coupled
// applications (paper Sections III-A and IV-C).
//
// One execution client is created per processor core. To run a bundle, the
// server chooses a task mapping (server-side data-centric for concurrently
// coupled bundles, decentralized client-side for sequentially coupled
// consumers, or the round-robin baseline), then launches the bundle's
// tasks: the execution clients form a process group per application by
// "coloring" a bundle-wide communicator with the application id through
// CommSplit — the MPI_Comm_split mechanism of Section IV-C — and invoke
// the application subroutine registered for that id (applications are
// statically registered with the framework, mirroring the paper's
// pre-linked MPI subroutines).
package runtime

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/cods"
	"github.com/insitu/cods/internal/decomp"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/graph"
	"github.com/insitu/cods/internal/lock"
	"github.com/insitu/cods/internal/mapping"
	"github.com/insitu/cods/internal/mpi"
	"github.com/insitu/cods/internal/obs"
	"github.com/insitu/cods/internal/transport"
	"github.com/insitu/cods/internal/workflow"
)

// Registry instruments for the workflow engine: per-phase wall clock (the
// mapping decision and the group launch are the two server-side phases the
// paper's Figure 13/14 cost out) and run-shape counters.
var (
	obsMapNs       = obs.H("runtime.map_ns", obs.DefaultLatencyBounds())
	obsGroupNs     = obs.H("runtime.group_ns", obs.DefaultLatencyBounds())
	obsTaskNs      = obs.H("runtime.task_ns", obs.DefaultLatencyBounds())
	obsBundlesRun  = obs.C("runtime.bundles_run")
	obsTasksRun    = obs.C("runtime.tasks_run")
	obsTasksActive = obs.G("runtime.tasks_active")
)

// Policy selects the task mapping strategy for a run.
type Policy int

// Mapping policies.
const (
	// DataCentric uses server-side graph partitioning for concurrently
	// coupled bundles and client-side locality mapping for sequentially
	// coupled consumers (the paper's contribution).
	DataCentric Policy = iota
	// RoundRobin is the baseline of many MPI job launchers.
	RoundRobin
)

// String names the policy.
func (p Policy) String() string {
	if p == DataCentric {
		return "data-centric"
	}
	return "round-robin"
}

// AppContext is what a computation task sees while running.
type AppContext struct {
	// AppID and Rank identify this task.
	AppID int
	Rank  int
	// Comm is the per-application communicator created by the coloring
	// split; rank order follows task rank.
	Comm *mpi.Comm
	// Space is the task's CoDS handle for put/get operators.
	Space *cods.Handle
	// Decomp is the application's declared data decomposition.
	Decomp *decomp.Decomposition
	// Producers describes the other applications of the same bundle, for
	// GetConcurrent against a concurrently coupled producer.
	Producers map[int]cods.ProducerInfo
	// Locks is this task's handle on the distributed reader/writer lock
	// service, for lock-on-write / lock-on-read coordination of shared
	// variables.
	Locks *lock.Client
	// Machine gives access to topology and metrics.
	Machine *cluster.Machine
}

// AppFunc is the registered subroutine of one parallel application; it is
// invoked once per computation task.
type AppFunc func(*AppContext) error

// AppSpec declares an application to the framework.
type AppSpec struct {
	// ID is the unique application id used in the workflow description.
	ID int
	// Decomp is the data decomposition of the application's domain.
	Decomp *decomp.Decomposition
	// Run is the application subroutine.
	Run AppFunc
	// ReadsVar optionally names the CoDS variable this application
	// consumes from a sequentially coupled producer; it enables the
	// client-side data-centric mapping for this application.
	ReadsVar string
	// ReadsVersion is the version of ReadsVar the tasks will request.
	ReadsVersion int
}

// clientState tracks one execution client in the management server.
type clientState int

const (
	clientIdle clientState = iota
	clientBusy
)

// Server is the workflow management server plus the shared substrate
// (fabric, CoDS space) of one simulated machine.
type Server struct {
	machine *cluster.Machine
	fabric  *transport.Fabric
	space   *cods.Space
	locks   *lock.Service
	apps    map[int]AppSpec
	seed    int64

	mu      sync.Mutex
	clients map[cluster.CoreID]clientState

	tracer atomic.Pointer[obs.Tracer]
}

// NewServer bootstraps the framework on a machine for a coupled data
// domain: it builds the HybridDART fabric, the CoDS space (with its lookup
// service) and registers one execution client per core.
func NewServer(m *cluster.Machine, domain geometry.BBox, seed int64) (*Server, error) {
	f := transport.NewFabric(m)
	sp, err := cods.NewSpace(f, domain)
	if err != nil {
		return nil, err
	}
	s := &Server{
		machine: m,
		fabric:  f,
		space:   sp,
		locks:   lock.NewService(f),
		apps:    make(map[int]AppSpec),
		seed:    seed,
		clients: make(map[cluster.CoreID]clientState),
	}
	for c := 0; c < m.TotalCores(); c++ {
		s.clients[cluster.CoreID(c)] = clientIdle
	}
	return s, nil
}

// SetTracer routes span events from the workflow engine — and from the
// CoDS pulls the launched tasks perform — to tr. A nil tracer disables
// span emission.
func (s *Server) SetTracer(tr *obs.Tracer) {
	s.tracer.Store(tr)
	s.space.SetTracer(tr)
}

// Machine returns the underlying machine.
func (s *Server) Machine() *cluster.Machine { return s.machine }

// Space returns the CoDS instance.
func (s *Server) Space() *cods.Space { return s.space }

// Fabric returns the transport fabric.
func (s *Server) Fabric() *transport.Fabric { return s.fabric }

// ClientCount returns the number of registered execution clients.
func (s *Server) ClientCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

// RegisterApp declares an application; all applications of a workflow must
// be registered before Run.
func (s *Server) RegisterApp(spec AppSpec) error {
	if spec.Run == nil {
		return fmt.Errorf("runtime: application %d has no subroutine", spec.ID)
	}
	if spec.Decomp == nil {
		return fmt.Errorf("runtime: application %d has no decomposition", spec.ID)
	}
	if _, dup := s.apps[spec.ID]; dup {
		return fmt.Errorf("runtime: application %d registered twice", spec.ID)
	}
	s.apps[spec.ID] = spec
	return nil
}

// Report summarizes one workflow run.
type Report struct {
	Policy     Policy
	BundlesRun int
	TasksRun   int
	// PlacementOf records the placement each application ran under.
	PlacementOf map[int]*cluster.Placement
}

// Run executes a workflow to completion under the given mapping policy.
// Ready bundles found at the same engine step run concurrently when they
// are single-application consumers (the paper's land + sea-ice pattern);
// multi-application bundles run as their own group.
func (s *Server) Run(d *workflow.DAG, policy Policy) (*Report, error) {
	for _, a := range d.Apps {
		if _, ok := s.apps[a]; !ok {
			return nil, fmt.Errorf("runtime: workflow references unregistered application %d", a)
		}
	}
	eng := workflow.NewEngine(d)
	rep := &Report{Policy: policy, PlacementOf: make(map[int]*cluster.Placement)}
	tr := s.tracer.Load()
	root := tr.Start(0, "workflow:"+policy.String())
	defer root.End()
	for !eng.Finished() {
		ready := eng.Ready()
		if len(ready) == 0 {
			return nil, fmt.Errorf("runtime: workflow stuck with no ready bundles")
		}
		// Group the ready set: each multi-app bundle is its own group;
		// single-app bundles run together as one group so sibling
		// consumers retrieve data simultaneously.
		var groups [][]int
		var singles []int
		for _, b := range ready {
			if len(d.Bundles[b]) > 1 {
				groups = append(groups, []int{b})
			} else {
				singles = append(singles, b)
			}
		}
		if len(singles) > 0 {
			groups = append(groups, singles)
		}
		for _, grp := range groups {
			var appIDs []int
			for _, b := range grp {
				if err := eng.Start(b); err != nil {
					return nil, err
				}
				appIDs = append(appIDs, d.Bundles[b]...)
			}
			var mapStart time.Time
			if obs.Enabled() {
				mapStart = time.Now()
			}
			pl, err := s.mapGroup(d, appIDs, policy)
			if err != nil {
				return nil, err
			}
			if !mapStart.IsZero() {
				obsMapNs.Observe(time.Since(mapStart).Nanoseconds())
			}
			gs := tr.Start(root.ID(), fmt.Sprintf("group:%v", appIDs))
			var groupStart time.Time
			if obs.Enabled() {
				groupStart = time.Now()
				obsBundlesRun.Add(int64(len(grp)))
			}
			err = s.launchGroup(appIDs, pl, gs.ID())
			gs.End()
			if err != nil {
				return nil, err
			}
			if !groupStart.IsZero() {
				obsGroupNs.Observe(time.Since(groupStart).Nanoseconds())
			}
			for _, a := range appIDs {
				rep.PlacementOf[a] = pl
				rep.TasksRun += s.apps[a].Decomp.NumTasks()
			}
			for _, b := range grp {
				if err := eng.Complete(b); err != nil {
					return nil, err
				}
				rep.BundlesRun++
			}
		}
	}
	return rep, nil
}

// graphApps converts registered specs to graph.App descriptors.
func (s *Server) graphApps(appIDs []int) []graph.App {
	out := make([]graph.App, len(appIDs))
	for i, a := range appIDs {
		out[i] = graph.App{ID: a, Decomp: s.apps[a].Decomp}
	}
	return out
}

// mapGroup chooses and computes the placement for a group of applications
// scheduled together.
func (s *Server) mapGroup(d *workflow.DAG, appIDs []int, policy Policy) (*cluster.Placement, error) {
	apps := s.graphApps(appIDs)
	if policy == RoundRobin {
		// The launcher baseline: consecutive SMP placement, which is what
		// the "round-robin" MPI job launchers of the paper's comparison
		// produce per application.
		return mapping.Consecutive(s.machine, apps, nil)
	}
	if len(appIDs) > 1 && sameBundle(d, appIDs) {
		// Concurrently coupled bundle: server-side mapping over the
		// inter-application communication graph. All producer->consumer
		// pairs inside the bundle are coupled.
		var couplings [][2]int
		for i := 0; i < len(appIDs); i++ {
			for j := i + 1; j < len(appIDs); j++ {
				couplings = append(couplings, [2]int{appIDs[i], appIDs[j]})
			}
		}
		return mapping.ServerDataCentric(s.machine,
			mapping.Bundle{Apps: apps, Couplings: couplings}, nil, cods.ElemSize, s.seed)
	}
	// Sequentially coupled consumers: client-side mapping when every app
	// declares what it reads and has a parent.
	var consumers []mapping.Consumer
	for i, a := range appIDs {
		spec := s.apps[a]
		if spec.ReadsVar == "" || len(d.Parents(a)) == 0 {
			consumers = nil
			break
		}
		consumers = append(consumers, mapping.Consumer{
			App: apps[i], Var: spec.ReadsVar, Version: spec.ReadsVersion,
		})
	}
	if consumers != nil {
		return mapping.ClientDataCentric(s.machine, s.space.Lookup(), consumers, nil,
			fmt.Sprintf("map:%v", appIDs))
	}
	return mapping.Consecutive(s.machine, apps, nil)
}

// sameBundle reports whether the app ids form exactly one bundle of the
// DAG.
func sameBundle(d *workflow.DAG, appIDs []int) bool {
	want := append([]int(nil), appIDs...)
	sort.Ints(want)
	for _, b := range d.Bundles {
		got := append([]int(nil), b...)
		sort.Ints(got)
		if len(got) != len(want) {
			continue
		}
		same := true
		for i := range got {
			if got[i] != want[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// launchGroup runs every task of the group's applications on its placed
// core: a bundle-wide communicator is created, each execution client
// colors itself with its application id and splits into the per-app
// communicator, then runs the registered subroutine.
func (s *Server) launchGroup(appIDs []int, pl *cluster.Placement, parent obs.SpanID) error {
	// Deterministic task order defines bundle-comm ranks.
	tasks := pl.Tasks()
	if len(tasks) == 0 {
		return fmt.Errorf("runtime: empty placement")
	}
	cores := make([]cluster.CoreID, len(tasks))
	for i, t := range tasks {
		cores[i] = pl.MustCoreOf(t)
	}
	bundleComms, err := mpi.NewComms(s.fabric, cores, 0, "setup")
	if err != nil {
		return err
	}
	// Producer info for concurrent coupling inside the group.
	producers := make(map[int]cods.ProducerInfo, len(appIDs))
	for _, a := range appIDs {
		a := a
		producers[a] = cods.ProducerInfo{
			Decomp: s.apps[a].Decomp,
			CoreOf: func(rank int) cluster.CoreID {
				return pl.MustCoreOf(cluster.TaskID{App: a, Rank: rank})
			},
		}
	}
	s.markClients(cores, clientBusy)
	defer s.markClients(cores, clientIdle)

	tr := s.tracer.Load()
	errs := make([]error, len(tasks))
	var wg sync.WaitGroup
	for i, t := range tasks {
		wg.Add(1)
		go func(i int, t cluster.TaskID) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("runtime: task %v panicked: %v", t, r)
				}
			}()
			ts := tr.Start(parent, fmt.Sprintf("task:%d.%d", t.App, t.Rank))
			defer ts.End()
			if obs.Enabled() {
				taskStart := time.Now()
				obsTasksRun.Inc()
				obsTasksActive.Add(1)
				defer func() {
					obsTasksActive.Add(-1)
					obsTaskNs.Observe(time.Since(taskStart).Nanoseconds())
				}()
			}
			// Coloring: same app id -> same process group.
			sub, err := bundleComms[i].CommSplit(t.App, t.Rank)
			if err != nil {
				errs[i] = err
				return
			}
			spec := s.apps[t.App]
			others := make(map[int]cods.ProducerInfo, len(producers)-1)
			for a, info := range producers {
				if a != t.App {
					others[a] = info
				}
			}
			h := s.space.HandleAt(cores[i], t.App, fmt.Sprintf("app:%d", t.App))
			h.SetSpanParent(ts.ID())
			ctx := &AppContext{
				AppID:     t.App,
				Rank:      t.Rank,
				Comm:      sub,
				Space:     h,
				Decomp:    spec.Decomp,
				Producers: others,
				Locks:     s.locks.ClientAt(cores[i]),
				Machine:   s.machine,
			}
			errs[i] = spec.Run(ctx)
		}(i, t)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("runtime: task %v: %w", tasks[i], err)
		}
	}
	return nil
}

// markClients flips the registration state of a core set.
func (s *Server) markClients(cores []cluster.CoreID, st clientState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range cores {
		s.clients[c] = st
	}
}
