// Package runtime ties the framework together: it implements the workflow
// management server (execution client management + workflow engine) and
// the execution clients that run the computation tasks of the coupled
// applications (paper Sections III-A and IV-C).
//
// One execution client is created per processor core. To run a bundle, the
// server chooses a task mapping (server-side data-centric for concurrently
// coupled bundles, decentralized client-side for sequentially coupled
// consumers, or the round-robin baseline), then launches the bundle's
// tasks: the execution clients form a process group per application by
// "coloring" a bundle-wide communicator with the application id through
// CommSplit — the MPI_Comm_split mechanism of Section IV-C — and invoke
// the application subroutine registered for that id (applications are
// statically registered with the framework, mirroring the paper's
// pre-linked MPI subroutines).
package runtime

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/cods"
	"github.com/insitu/cods/internal/decomp"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/graph"
	"github.com/insitu/cods/internal/lock"
	"github.com/insitu/cods/internal/mapping"
	"github.com/insitu/cods/internal/mpi"
	"github.com/insitu/cods/internal/obs"
	"github.com/insitu/cods/internal/retry"
	"github.com/insitu/cods/internal/transport"
	"github.com/insitu/cods/internal/workflow"
)

// Registry instruments for the workflow engine: per-phase wall clock (the
// mapping decision and the group launch are the two server-side phases the
// paper's Figure 13/14 cost out) and run-shape counters.
var (
	obsMapNs       = obs.H("runtime.map_ns", obs.DefaultLatencyBounds())
	obsGroupNs     = obs.H("runtime.group_ns", obs.DefaultLatencyBounds())
	obsTaskNs      = obs.H("runtime.task_ns", obs.DefaultLatencyBounds())
	obsBundlesRun  = obs.C("runtime.bundles_run")
	obsTasksRun    = obs.C("runtime.tasks_run")
	obsTasksActive = obs.G("runtime.tasks_active")
	obsTaskRetries = obs.C("runtime.task.retries")
	obsTaskRecovs  = obs.C("runtime.task.recoveries")
	obsTaskRemaps  = obs.C("runtime.task.remaps")
	obsTaskBackoff = obs.H("runtime.task.backoff_ns", obs.DefaultLatencyBounds())
)

// Policy selects the task mapping strategy for a run.
type Policy int

// Mapping policies.
const (
	// DataCentric uses server-side graph partitioning for concurrently
	// coupled bundles and client-side locality mapping for sequentially
	// coupled consumers (the paper's contribution).
	DataCentric Policy = iota
	// RoundRobin is the baseline of many MPI job launchers.
	RoundRobin
)

// String names the policy.
func (p Policy) String() string {
	if p == DataCentric {
		return "data-centric"
	}
	return "round-robin"
}

// AppContext is what a computation task sees while running.
type AppContext struct {
	// AppID and Rank identify this task.
	AppID int
	Rank  int
	// Comm is the per-application communicator created by the coloring
	// split; rank order follows task rank.
	Comm *mpi.Comm
	// Space is the task's CoDS handle for put/get operators.
	Space *cods.Handle
	// Decomp is the application's declared data decomposition.
	Decomp *decomp.Decomposition
	// Producers describes the other applications of the same bundle, for
	// GetConcurrent against a concurrently coupled producer.
	Producers map[int]cods.ProducerInfo
	// Locks is this task's handle on the distributed reader/writer lock
	// service, for lock-on-write / lock-on-read coordination of shared
	// variables.
	Locks *lock.Client
	// Machine gives access to topology and metrics.
	Machine *cluster.Machine
}

// AppFunc is the registered subroutine of one parallel application; it is
// invoked once per computation task.
type AppFunc func(*AppContext) error

// AppSpec declares an application to the framework.
type AppSpec struct {
	// ID is the unique application id used in the workflow description.
	ID int
	// Decomp is the data decomposition of the application's domain.
	Decomp *decomp.Decomposition
	// Run is the application subroutine.
	Run AppFunc
	// ReadsVar optionally names the CoDS variable this application
	// consumes from a sequentially coupled producer; it enables the
	// client-side data-centric mapping for this application.
	ReadsVar string
	// ReadsVersion is the version of ReadsVar the tasks will request.
	ReadsVersion int
}

// TaskRetryPolicy bounds the re-running of failed computation tasks. The
// embedded retry.Policy supplies the attempt budget and the backoff slept
// between attempts. Task retry assumes restartable subroutines: a
// subroutine must tolerate being invoked again from the top (the put/get
// operators are idempotent — re-exposing an existing buffer fails
// harmlessly and re-inserting a location record is deduplicated — but a
// subroutine blocked inside a collective with already-finished peers
// cannot be saved by re-running it, so retries are opt-in).
type TaskRetryPolicy struct {
	retry.Policy
	// Remap rebinds a retried task's data operations (its CoDS handle and
	// lock client) to a spare idle core, so a task whose own endpoint went
	// bad can make progress from a healthy one. The task's communicator
	// rank is unchanged.
	Remap bool
}

// TaskError reports a computation task that failed all its attempts. It
// unwraps to the subroutine's final error, so errors.Is/As reach through
// to PullError and the transport sentinels.
type TaskError struct {
	// Task identifies the failed task; Core is the core its last attempt
	// ran its data operations from.
	Task cluster.TaskID
	Core cluster.CoreID
	// Attempts is the number of times the subroutine was invoked.
	Attempts int
	// Err is the last attempt's failure.
	Err error
}

// Error formats the failure.
func (e *TaskError) Error() string {
	return fmt.Sprintf("runtime: task %d.%d on core %d failed after %d attempt(s): %v",
		e.Task.App, e.Task.Rank, e.Core, e.Attempts, e.Err)
}

// Unwrap exposes the subroutine's error.
func (e *TaskError) Unwrap() error { return e.Err }

// clientState tracks one execution client in the management server.
type clientState int

const (
	clientIdle clientState = iota
	clientBusy
	// clientRetired marks a core whose node left the member set: it is
	// never picked as a remap spare until the node rejoins (RestoreNode).
	clientRetired
)

// Server is the workflow management server plus the shared substrate
// (fabric, CoDS space) of one simulated machine.
type Server struct {
	machine *cluster.Machine
	fabric  *transport.Fabric
	space   *cods.Space
	locks   *lock.Service
	apps    map[int]AppSpec
	seed    int64

	mu      sync.Mutex
	clients map[cluster.CoreID]clientState

	tracer    atomic.Pointer[obs.Tracer]
	taskRetry atomic.Pointer[TaskRetryPolicy]
}

// NewServer bootstraps the framework on a machine for a coupled data
// domain: it builds the HybridDART fabric, the CoDS space (with its lookup
// service) and registers one execution client per core. The space
// linearizes with the default Hilbert curve; NewServerWithCurve selects
// another policy.
func NewServer(m *cluster.Machine, domain geometry.BBox, seed int64) (*Server, error) {
	return NewServerWithCurve(m, domain, seed, "")
}

// NewServerWithCurve is NewServer with an explicit linearization policy
// ("hilbert", "morton" or "rowmajor"; empty selects the default).
func NewServerWithCurve(m *cluster.Machine, domain geometry.BBox, seed int64, curve string) (*Server, error) {
	f := transport.NewFabric(m)
	sp, err := cods.NewSpaceWithCurve(f, domain, curve)
	if err != nil {
		return nil, err
	}
	s := &Server{
		machine: m,
		fabric:  f,
		space:   sp,
		locks:   lock.NewService(f),
		apps:    make(map[int]AppSpec),
		seed:    seed,
		clients: make(map[cluster.CoreID]clientState),
	}
	for c := 0; c < m.TotalCores(); c++ {
		s.clients[cluster.CoreID(c)] = clientIdle
	}
	return s, nil
}

// SetTracer routes span events from the workflow engine — and from the
// CoDS pulls the launched tasks perform — to tr. A nil tracer disables
// span emission.
func (s *Server) SetTracer(tr *obs.Tracer) {
	s.tracer.Store(tr)
	s.space.SetTracer(tr)
}

// SetTaskRetry installs the task retry policy: a failed task is re-run up
// to the policy's attempt budget, with backoff between attempts and
// optionally remapped to a spare core. The zero policy (the default)
// disables task retrying.
func (s *Server) SetTaskRetry(p TaskRetryPolicy) { s.taskRetry.Store(&p) }

// taskRetryPolicy returns the installed policy (zero when none).
func (s *Server) taskRetryPolicy() TaskRetryPolicy {
	if p := s.taskRetry.Load(); p != nil {
		return *p
	}
	return TaskRetryPolicy{}
}

// Machine returns the underlying machine.
func (s *Server) Machine() *cluster.Machine { return s.machine }

// Space returns the CoDS instance.
func (s *Server) Space() *cods.Space { return s.space }

// Fabric returns the transport fabric.
func (s *Server) Fabric() *transport.Fabric { return s.fabric }

// ClientCount returns the number of registered execution clients.
func (s *Server) ClientCount() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.clients)
}

// RegisterApp declares an application; all applications of a workflow must
// be registered before Run.
func (s *Server) RegisterApp(spec AppSpec) error {
	if spec.Run == nil {
		return fmt.Errorf("runtime: application %d has no subroutine", spec.ID)
	}
	if spec.Decomp == nil {
		return fmt.Errorf("runtime: application %d has no decomposition", spec.ID)
	}
	if _, dup := s.apps[spec.ID]; dup {
		return fmt.Errorf("runtime: application %d registered twice", spec.ID)
	}
	s.apps[spec.ID] = spec
	return nil
}

// Report summarizes one workflow run.
type Report struct {
	Policy     Policy
	BundlesRun int
	TasksRun   int
	// PlacementOf records the placement each application ran under.
	PlacementOf map[int]*cluster.Placement

	// TaskAttempts counts every subroutine invocation, retries included;
	// it equals TasksRun when nothing failed.
	TaskAttempts int
	// TaskRetries counts re-invocations after a failed attempt.
	TaskRetries int
	// TaskRecoveries counts tasks that succeeded after >= 1 failure.
	TaskRecoveries int
	// FaultsInjected is the fabric's injected-error total at run end
	// (across the fabric's lifetime, not just this run).
	FaultsInjected int64
}

// Run executes a workflow to completion under the given mapping policy.
// Ready bundles found at the same engine step run concurrently when they
// are single-application consumers (the paper's land + sea-ice pattern);
// multi-application bundles run as their own group.
func (s *Server) Run(d *workflow.DAG, policy Policy) (*Report, error) {
	for _, a := range d.Apps {
		if _, ok := s.apps[a]; !ok {
			return nil, fmt.Errorf("runtime: workflow references unregistered application %d", a)
		}
	}
	eng := workflow.NewEngine(d)
	rep := &Report{Policy: policy, PlacementOf: make(map[int]*cluster.Placement)}
	tr := s.tracer.Load()
	root := tr.Start(0, "workflow:"+policy.String())
	defer root.End()
	for !eng.Finished() {
		ready := eng.Ready()
		if len(ready) == 0 {
			return nil, fmt.Errorf("runtime: workflow stuck with no ready bundles")
		}
		// Group the ready set: each multi-app bundle is its own group;
		// single-app bundles run together as one group so sibling
		// consumers retrieve data simultaneously.
		var groups [][]int
		var singles []int
		for _, b := range ready {
			if len(d.Bundles[b]) > 1 {
				groups = append(groups, []int{b})
			} else {
				singles = append(singles, b)
			}
		}
		if len(singles) > 0 {
			groups = append(groups, singles)
		}
		for _, grp := range groups {
			var appIDs []int
			for _, b := range grp {
				if err := eng.Start(b); err != nil {
					return nil, err
				}
				appIDs = append(appIDs, d.Bundles[b]...)
			}
			var mapStart time.Time
			if obs.Enabled() {
				mapStart = time.Now()
			}
			pl, err := s.mapGroup(d, appIDs, policy)
			if err != nil {
				return nil, err
			}
			if !mapStart.IsZero() {
				obsMapNs.Observe(time.Since(mapStart).Nanoseconds())
			}
			gs := tr.Start(root.ID(), fmt.Sprintf("group:%v", appIDs))
			var groupStart time.Time
			if obs.Enabled() {
				groupStart = time.Now()
				obsBundlesRun.Add(int64(len(grp)))
			}
			gstats, err := s.launchGroup(appIDs, pl, gs.ID())
			rep.TaskAttempts += gstats.attempts
			rep.TaskRetries += gstats.retries
			rep.TaskRecoveries += gstats.recoveries
			gs.End()
			if err != nil {
				rep.FaultsInjected = s.fabric.FaultsInjected()
				return nil, err
			}
			if !groupStart.IsZero() {
				obsGroupNs.Observe(time.Since(groupStart).Nanoseconds())
			}
			for _, a := range appIDs {
				rep.PlacementOf[a] = pl
				rep.TasksRun += s.apps[a].Decomp.NumTasks()
			}
			for _, b := range grp {
				if err := eng.Complete(b); err != nil {
					return nil, err
				}
				rep.BundlesRun++
			}
		}
	}
	rep.FaultsInjected = s.fabric.FaultsInjected()
	return rep, nil
}

// graphApps converts registered specs to graph.App descriptors.
func (s *Server) graphApps(appIDs []int) []graph.App {
	out := make([]graph.App, len(appIDs))
	for i, a := range appIDs {
		out[i] = graph.App{ID: a, Decomp: s.apps[a].Decomp}
	}
	return out
}

// mapGroup chooses and computes the placement for a group of applications
// scheduled together.
func (s *Server) mapGroup(d *workflow.DAG, appIDs []int, policy Policy) (*cluster.Placement, error) {
	apps := s.graphApps(appIDs)
	if policy == RoundRobin {
		// The launcher baseline: consecutive SMP placement, which is what
		// the "round-robin" MPI job launchers of the paper's comparison
		// produce per application.
		return mapping.Consecutive(s.machine, apps, nil)
	}
	if len(appIDs) > 1 && sameBundle(d, appIDs) {
		// Concurrently coupled bundle: server-side mapping over the
		// inter-application communication graph. All producer->consumer
		// pairs inside the bundle are coupled.
		var couplings [][2]int
		for i := 0; i < len(appIDs); i++ {
			for j := i + 1; j < len(appIDs); j++ {
				couplings = append(couplings, [2]int{appIDs[i], appIDs[j]})
			}
		}
		return mapping.ServerDataCentric(s.machine,
			mapping.Bundle{Apps: apps, Couplings: couplings}, nil, cods.ElemSize, s.seed)
	}
	// Sequentially coupled consumers: client-side mapping when every app
	// declares what it reads and has a parent.
	var consumers []mapping.Consumer
	for i, a := range appIDs {
		spec := s.apps[a]
		if spec.ReadsVar == "" || len(d.Parents(a)) == 0 {
			consumers = nil
			break
		}
		consumers = append(consumers, mapping.Consumer{
			App: apps[i], Var: spec.ReadsVar, Version: spec.ReadsVersion,
		})
	}
	if consumers != nil {
		return mapping.ClientDataCentric(s.machine, s.space.Lookup(), consumers, nil,
			fmt.Sprintf("map:%v", appIDs))
	}
	return mapping.Consecutive(s.machine, apps, nil)
}

// sameBundle reports whether the app ids form exactly one bundle of the
// DAG.
func sameBundle(d *workflow.DAG, appIDs []int) bool {
	want := append([]int(nil), appIDs...)
	sort.Ints(want)
	for _, b := range d.Bundles {
		got := append([]int(nil), b...)
		sort.Ints(got)
		if len(got) != len(want) {
			continue
		}
		same := true
		for i := range got {
			if got[i] != want[i] {
				same = false
				break
			}
		}
		if same {
			return true
		}
	}
	return false
}

// groupStats tallies the retry activity of one launched group.
type groupStats struct {
	attempts   int
	retries    int
	recoveries int
}

// launchGroup runs every task of the group's applications on its placed
// core: a bundle-wide communicator is created, each execution client
// colors itself with its application id and splits into the per-app
// communicator, then runs the registered subroutine. When a task retry
// policy is installed, a failed subroutine is re-invoked up to the attempt
// budget with backoff between attempts; the communicator split happens
// once, before the first attempt, because a torn-down group cannot be
// re-colored without its peers.
func (s *Server) launchGroup(appIDs []int, pl *cluster.Placement, parent obs.SpanID) (groupStats, error) {
	// Deterministic task order defines bundle-comm ranks.
	tasks := pl.Tasks()
	if len(tasks) == 0 {
		return groupStats{}, fmt.Errorf("runtime: empty placement")
	}
	cores := make([]cluster.CoreID, len(tasks))
	for i, t := range tasks {
		cores[i] = pl.MustCoreOf(t)
	}
	bundleComms, err := mpi.NewComms(s.fabric, cores, 0, "setup")
	if err != nil {
		return groupStats{}, err
	}
	// Producer info for concurrent coupling inside the group.
	producers := make(map[int]cods.ProducerInfo, len(appIDs))
	for _, a := range appIDs {
		a := a
		producers[a] = cods.ProducerInfo{
			Decomp: s.apps[a].Decomp,
			CoreOf: func(rank int) cluster.CoreID {
				return pl.MustCoreOf(cluster.TaskID{App: a, Rank: rank})
			},
		}
	}
	s.markClients(cores, clientBusy)
	defer s.markClients(cores, clientIdle)

	pol := s.taskRetryPolicy()
	tr := s.tracer.Load()
	errs := make([]error, len(tasks))
	stats := make([]groupStats, len(tasks))
	var wg sync.WaitGroup
	for i, t := range tasks {
		wg.Add(1)
		go func(i int, t cluster.TaskID) {
			defer wg.Done()
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("runtime: task %v panicked: %v", t, r)
				}
			}()
			ts := tr.Start(parent, fmt.Sprintf("task:%d.%d", t.App, t.Rank))
			defer ts.End()
			if obs.Enabled() {
				taskStart := time.Now()
				obsTasksRun.Inc()
				obsTasksActive.Add(1)
				defer func() {
					obsTasksActive.Add(-1)
					obsTaskNs.Observe(time.Since(taskStart).Nanoseconds())
				}()
			}
			// Coloring: same app id -> same process group. Split errors are
			// not retried: the peers have already formed the group.
			sub, err := bundleComms[i].CommSplit(t.App, t.Rank)
			if err != nil {
				errs[i] = err
				return
			}
			spec := s.apps[t.App]
			others := make(map[int]cods.ProducerInfo, len(producers)-1)
			for a, info := range producers {
				if a != t.App {
					others[a] = info
				}
			}
			// core is where the task's data operations bind; a remap moves
			// it to a spare execution client between attempts.
			core := cores[i]
			runAttempt := func() (err error) {
				defer func() {
					if r := recover(); r != nil {
						err = fmt.Errorf("runtime: task %v panicked: %v", t, r)
					}
				}()
				h := s.space.HandleAt(core, t.App, fmt.Sprintf("app:%d", t.App))
				h.SetSpanParent(ts.ID())
				ctx := &AppContext{
					AppID:     t.App,
					Rank:      t.Rank,
					Comm:      sub,
					Space:     h,
					Decomp:    spec.Decomp,
					Producers: others,
					Locks:     s.locks.ClientAt(core),
					Machine:   s.machine,
				}
				return spec.Run(ctx)
			}
			seed := uint64(uint32(t.App))<<32 | uint64(uint32(t.Rank))
			attempts, err := retry.Do(pol.Policy, seed, nil,
				func(d time.Duration) {
					obsTaskBackoff.Observe(d.Nanoseconds())
				},
				func(attempt int) error {
					if attempt > 1 {
						stats[i].retries++
						obsTaskRetries.Inc()
						tr.Event(ts.ID(), fmt.Sprintf("retry:task:%d.%d", t.App, t.Rank))
						if pol.Remap {
							if spare, ok := s.spareCore(core); ok {
								core = spare
								obsTaskRemaps.Inc()
							}
						}
					}
					stats[i].attempts++
					return runAttempt()
				})
			if err != nil {
				errs[i] = &TaskError{Task: t, Core: core, Attempts: attempts, Err: err}
				return
			}
			if attempts > 1 {
				stats[i].recoveries++
				obsTaskRecovs.Inc()
				tr.Event(ts.ID(), fmt.Sprintf("recovered:task:%d.%d", t.App, t.Rank))
			}
		}(i, t)
	}
	wg.Wait()
	var gs groupStats
	for _, st := range stats {
		gs.attempts += st.attempts
		gs.retries += st.retries
		gs.recoveries += st.recoveries
	}
	for i, err := range errs {
		if err != nil {
			var te *TaskError
			if errors.As(err, &te) {
				return gs, err
			}
			return gs, fmt.Errorf("runtime: task %v: %w", tasks[i], err)
		}
	}
	return gs, nil
}

// spareCore picks an idle execution client other than busy, for remapping a
// retried task's data operations. Spares are not marked busy: a handle on a
// shared core is harmless (every endpoint operation is concurrency-safe),
// and marking would starve sibling retries on small machines.
func (s *Server) spareCore(busy cluster.CoreID) (cluster.CoreID, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	best, found := cluster.CoreID(0), false
	for c, st := range s.clients {
		if st != clientIdle || c == busy {
			continue
		}
		if !found || c < best {
			best, found = c, true
		}
	}
	return best, found
}

// markClients flips the registration state of a core set. Retired cores
// keep their state: a group teardown racing a node retirement must not
// resurrect the departed node's clients.
func (s *Server) markClients(cores []cluster.CoreID, st clientState) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, c := range cores {
		if s.clients[c] == clientRetired {
			continue
		}
		s.clients[c] = st
	}
}

// RetireNode withdraws every execution client on a node from the remap
// spare pool — the node's serving process left the member set, so a
// retried task must move to a surviving core, never onto the dead node.
func (s *Server) RetireNode(node cluster.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := 0; c < s.machine.TotalCores(); c++ {
		if s.machine.NodeOf(cluster.CoreID(c)) == node {
			s.clients[cluster.CoreID(c)] = clientRetired
		}
	}
}

// RestoreNode re-registers a node's execution clients after a replacement
// process joined its slot.
func (s *Server) RestoreNode(node cluster.NodeID) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for c := 0; c < s.machine.TotalCores(); c++ {
		if s.machine.NodeOf(cluster.CoreID(c)) == node && s.clients[cluster.CoreID(c)] == clientRetired {
			s.clients[cluster.CoreID(c)] = clientIdle
		}
	}
}
