package runtime

import (
	"fmt"
	"strings"
	"testing"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/decomp"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/workflow"
)

func cellValue(p geometry.Point) float64 {
	v := 0.0
	for _, x := range p {
		v = v*1000 + float64(x)
	}
	return v
}

func fillRegion(b geometry.BBox) []float64 {
	data := make([]float64, b.Volume())
	i := 0
	b.Each(func(p geometry.Point) {
		data[i] = cellValue(p)
		i++
	})
	return data
}

func verifyRegion(region geometry.BBox, got []float64) error {
	if int64(len(got)) != region.Volume() {
		return fmt.Errorf("length %d != volume %d", len(got), region.Volume())
	}
	i := 0
	var err error
	region.Each(func(p geometry.Point) {
		if err == nil && got[i] != cellValue(p) {
			err = fmt.Errorf("cell %v = %v, want %v", p, got[i], cellValue(p))
		}
		i++
	})
	return err
}

func mustDecomp(t testing.TB, kind decomp.Kind, size, grid []int) *decomp.Decomposition {
	t.Helper()
	dc, err := decomp.New(kind, geometry.BoxFromSize(size), grid, nil)
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

func newServer(t testing.TB, nodes, cores int, size []int) *Server {
	t.Helper()
	m, err := cluster.NewMachine(nodes, cores)
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewServer(m, geometry.BoxFromSize(size), 1)
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// producerPutsConcurrent returns an AppFunc that exposes every owned block
// for direct consumption.
func producerPutsConcurrent(v string) AppFunc {
	return func(ctx *AppContext) error {
		for _, blk := range ctx.Decomp.Region(ctx.Rank) {
			if err := ctx.Space.PutConcurrent(v, 0, blk, fillRegion(blk)); err != nil {
				return err
			}
		}
		return ctx.Comm.Barrier()
	}
}

// consumerGetsConcurrent pulls the task's region from a producer and
// verifies the contents.
func consumerGetsConcurrent(v string, producer int) AppFunc {
	return func(ctx *AppContext) error {
		info, ok := ctx.Producers[producer]
		if !ok {
			return fmt.Errorf("producer %d info missing", producer)
		}
		for _, region := range ctx.Decomp.Region(ctx.Rank) {
			got, err := ctx.Space.GetConcurrent(info, v, 0, region)
			if err != nil {
				return err
			}
			if err := verifyRegion(region, got); err != nil {
				return fmt.Errorf("rank %d: %w", ctx.Rank, err)
			}
		}
		return nil
	}
}

func TestConcurrentWorkflowBothPolicies(t *testing.T) {
	for _, policy := range []Policy{DataCentric, RoundRobin} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			size := []int{8, 8, 8}
			s := newServer(t, 4, 4, size)
			if err := s.RegisterApp(AppSpec{
				ID:     1,
				Decomp: mustDecomp(t, decomp.Blocked, size, []int{2, 2, 2}),
				Run:    producerPutsConcurrent("flux"),
			}); err != nil {
				t.Fatal(err)
			}
			if err := s.RegisterApp(AppSpec{
				ID:     2,
				Decomp: mustDecomp(t, decomp.Blocked, size, []int{1, 2, 2}),
				Run:    consumerGetsConcurrent("flux", 1),
			}); err != nil {
				t.Fatal(err)
			}
			d, err := workflow.New([]int{1, 2}, nil, [][]int{{1, 2}})
			if err != nil {
				t.Fatal(err)
			}
			rep, err := s.Run(d, policy)
			if err != nil {
				t.Fatal(err)
			}
			if rep.BundlesRun != 1 || rep.TasksRun != 12 {
				t.Fatalf("report = %+v", rep)
			}
			if rep.PlacementOf[1] == nil || rep.PlacementOf[2] == nil {
				t.Fatal("placements missing from report")
			}
		})
	}
}

func TestSequentialWorkflowBothPolicies(t *testing.T) {
	for _, policy := range []Policy{DataCentric, RoundRobin} {
		policy := policy
		t.Run(policy.String(), func(t *testing.T) {
			size := []int{8, 8, 8}
			s := newServer(t, 4, 4, size)
			producer := func(ctx *AppContext) error {
				for _, blk := range ctx.Decomp.Region(ctx.Rank) {
					if err := ctx.Space.PutSequential("state", 0, blk, fillRegion(blk)); err != nil {
						return err
					}
				}
				return nil
			}
			consumer := func(ctx *AppContext) error {
				for _, region := range ctx.Decomp.Region(ctx.Rank) {
					got, err := ctx.Space.GetSequential("state", 0, region)
					if err != nil {
						return err
					}
					if err := verifyRegion(region, got); err != nil {
						return err
					}
				}
				return nil
			}
			specs := []AppSpec{
				{ID: 1, Decomp: mustDecomp(t, decomp.Blocked, size, []int{2, 2, 2}), Run: producer},
				{ID: 2, Decomp: mustDecomp(t, decomp.Blocked, size, []int{2, 2, 1}), Run: consumer,
					ReadsVar: "state"},
				{ID: 3, Decomp: mustDecomp(t, decomp.Blocked, size, []int{1, 2, 2}), Run: consumer,
					ReadsVar: "state"},
			}
			for _, spec := range specs {
				if err := s.RegisterApp(spec); err != nil {
					t.Fatal(err)
				}
			}
			d, err := workflow.New([]int{1, 2, 3}, [][2]int{{1, 2}, {1, 3}}, nil)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := s.Run(d, policy)
			if err != nil {
				t.Fatal(err)
			}
			if rep.BundlesRun != 3 || rep.TasksRun != 16 {
				t.Fatalf("report = %+v", rep)
			}
			// The sibling consumers must have run as one group: their
			// placements are the same object.
			if rep.PlacementOf[2] != rep.PlacementOf[3] {
				t.Fatal("sibling consumers did not share a mapping group")
			}
		})
	}
}

func TestDataCentricBeatsRoundRobinOnNetworkBytes(t *testing.T) {
	size := []int{8, 8, 8}
	run := func(policy Policy) int64 {
		s := newServer(t, 4, 4, size)
		if err := s.RegisterApp(AppSpec{
			ID: 1, Decomp: mustDecomp(t, decomp.Blocked, size, []int{2, 2, 2}),
			Run: producerPutsConcurrent("v"),
		}); err != nil {
			t.Fatal(err)
		}
		if err := s.RegisterApp(AppSpec{
			ID: 2, Decomp: mustDecomp(t, decomp.Blocked, size, []int{2, 2, 1}),
			Run: consumerGetsConcurrent("v", 1),
		}); err != nil {
			t.Fatal(err)
		}
		d, err := workflow.New([]int{1, 2}, nil, [][]int{{1, 2}})
		if err != nil {
			t.Fatal(err)
		}
		if _, err := s.Run(d, policy); err != nil {
			t.Fatal(err)
		}
		return s.Machine().Metrics().Bytes(cluster.InterApp, cluster.Network)
	}
	rr := run(RoundRobin)
	dc := run(DataCentric)
	if dc >= rr {
		t.Fatalf("data-centric network bytes %d not below round-robin %d", dc, rr)
	}
}

func TestRunValidation(t *testing.T) {
	size := []int{4, 4}
	s := newServer(t, 2, 2, size)
	d, err := workflow.New([]int{1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(d, DataCentric); err == nil {
		t.Fatal("run with unregistered app accepted")
	}
	if err := s.RegisterApp(AppSpec{ID: 1}); err == nil {
		t.Fatal("spec without Run accepted")
	}
	if err := s.RegisterApp(AppSpec{ID: 1, Run: func(*AppContext) error { return nil }}); err == nil {
		t.Fatal("spec without Decomp accepted")
	}
	ok := AppSpec{ID: 1, Decomp: mustDecomp(t, decomp.Blocked, size, []int{2, 2}),
		Run: func(*AppContext) error { return nil }}
	if err := s.RegisterApp(ok); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterApp(ok); err == nil {
		t.Fatal("duplicate registration accepted")
	}
}

func TestAppErrorPropagates(t *testing.T) {
	size := []int{4, 4}
	s := newServer(t, 2, 2, size)
	boom := fmt.Errorf("boom")
	if err := s.RegisterApp(AppSpec{
		ID: 1, Decomp: mustDecomp(t, decomp.Blocked, size, []int{2, 1}),
		Run: func(ctx *AppContext) error {
			if ctx.Rank == 1 {
				return boom
			}
			return nil
		},
	}); err != nil {
		t.Fatal(err)
	}
	d, err := workflow.New([]int{1}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(d, DataCentric)
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Fatalf("error not propagated: %v", err)
	}
}

func TestAppPanicIsCaptured(t *testing.T) {
	size := []int{4, 4}
	s := newServer(t, 2, 2, size)
	if err := s.RegisterApp(AppSpec{
		ID: 1, Decomp: mustDecomp(t, decomp.Blocked, size, []int{1, 1}),
		Run: func(ctx *AppContext) error { panic("kaboom") },
	}); err != nil {
		t.Fatal(err)
	}
	d, _ := workflow.New([]int{1}, nil, nil)
	_, err := s.Run(d, DataCentric)
	if err == nil || !strings.Contains(err.Error(), "kaboom") {
		t.Fatalf("panic not captured: %v", err)
	}
}

func TestCommSplitRanksMatchTaskRanks(t *testing.T) {
	size := []int{8, 8}
	s := newServer(t, 2, 4, size)
	check := func(ctx *AppContext) error {
		if ctx.Comm.Rank() != ctx.Rank {
			return fmt.Errorf("app %d: comm rank %d != task rank %d", ctx.AppID, ctx.Comm.Rank(), ctx.Rank)
		}
		if ctx.Comm.Size() != ctx.Decomp.NumTasks() {
			return fmt.Errorf("app %d: comm size %d != tasks %d", ctx.AppID, ctx.Comm.Size(), ctx.Decomp.NumTasks())
		}
		// Exercise the group communicator.
		sum, err := ctx.Comm.Allreduce(0, []float64{1})
		if err != nil {
			return err
		}
		if int(sum[0]) != ctx.Comm.Size() {
			return fmt.Errorf("allreduce = %v", sum)
		}
		return nil
	}
	for _, id := range []int{1, 2} {
		grid := []int{2, 2}
		if id == 2 {
			grid = []int{2, 1}
		}
		if err := s.RegisterApp(AppSpec{ID: id, Decomp: mustDecomp(t, decomp.Blocked, size, grid), Run: check}); err != nil {
			t.Fatal(err)
		}
	}
	d, err := workflow.New([]int{1, 2}, nil, [][]int{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(d, DataCentric); err != nil {
		t.Fatal(err)
	}
}

func TestClientRegistration(t *testing.T) {
	s := newServer(t, 3, 4, []int{4, 4})
	if s.ClientCount() != 12 {
		t.Fatalf("ClientCount = %d", s.ClientCount())
	}
}

// Tasks can coordinate through the distributed lock service: the producer
// holds the write lock while updating, consumers read-lock before pulling.
func TestLockCoordinationAcrossApps(t *testing.T) {
	size := []int{4, 4}
	s := newServer(t, 2, 4, size)
	if err := s.RegisterApp(runtime_TestSpecProducer(t, size)); err != nil {
		t.Fatal(err)
	}
	if err := s.RegisterApp(runtime_TestSpecConsumer(t, size)); err != nil {
		t.Fatal(err)
	}
	d, err := workflow.New([]int{1, 2}, nil, [][]int{{1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.Run(d, DataCentric); err != nil {
		t.Fatal(err)
	}
}

// The DataSpaces coordination pattern: rank 0 holds the application-wide
// lock while the whole application's ranks put (or get), synchronized
// with barriers. Taking the lock per rank would deadlock — a consumer
// holding the read lock would wait for data a producer rank cannot
// publish until the readers release.
func runtime_TestSpecProducer(t *testing.T, size []int) AppSpec {
	return AppSpec{
		ID: 1, Decomp: mustDecomp(t, decomp.Blocked, size, []int{2, 1}),
		Run: func(ctx *AppContext) error {
			if ctx.Rank == 0 {
				if err := ctx.Locks.AcquireWrite("field"); err != nil {
					return err
				}
			}
			if err := ctx.Comm.Barrier(); err != nil {
				return err
			}
			for _, blk := range ctx.Decomp.Region(ctx.Rank) {
				if err := ctx.Space.PutConcurrent("field", 0, blk, fillRegion(blk)); err != nil {
					return err
				}
			}
			if err := ctx.Comm.Barrier(); err != nil {
				return err
			}
			if ctx.Rank == 0 {
				return ctx.Locks.Release("field")
			}
			return nil
		},
	}
}

func runtime_TestSpecConsumer(t *testing.T, size []int) AppSpec {
	return AppSpec{
		ID: 2, Decomp: mustDecomp(t, decomp.Blocked, size, []int{1, 2}),
		Run: func(ctx *AppContext) error {
			if ctx.Rank == 0 {
				if err := ctx.Locks.AcquireRead("field"); err != nil {
					return err
				}
			}
			if err := ctx.Comm.Barrier(); err != nil {
				return err
			}
			info := ctx.Producers[1]
			for _, region := range ctx.Decomp.Region(ctx.Rank) {
				got, err := ctx.Space.GetConcurrent(info, "field", 0, region)
				if err != nil {
					return err
				}
				if err := verifyRegion(region, got); err != nil {
					return err
				}
			}
			if err := ctx.Comm.Barrier(); err != nil {
				return err
			}
			if ctx.Rank == 0 {
				return ctx.Locks.Release("field")
			}
			return nil
		},
	}
}
