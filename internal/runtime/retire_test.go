package runtime

import (
	"testing"

	"github.com/insitu/cods/internal/cluster"
)

func TestRetireNodeExcludesCoresFromSparePool(t *testing.T) {
	s := newServer(t, 2, 2, []int{8, 8}) // cores 0,1 on node 0; 2,3 on node 1
	if spare, ok := s.spareCore(0); !ok || spare != 1 {
		t.Fatalf("spare for 0 = %d, %v; want 1, true", spare, ok)
	}
	s.RetireNode(1)
	// Only node 0's other core remains eligible.
	if spare, ok := s.spareCore(0); !ok || spare != 1 {
		t.Fatalf("spare for 0 after retire = %d, %v; want 1, true", spare, ok)
	}
	// With core 1 as the busy one, the only candidates are node 1's cores
	// — all retired, so there is no spare.
	s.markClients([]cluster.CoreID{0}, clientBusy)
	if spare, ok := s.spareCore(1); ok {
		t.Fatalf("spare for 1 picked retired core %d", spare)
	}
	// markClients must not resurrect retired clients (the group teardown
	// path marks its cores idle when the bundle finishes).
	s.markClients([]cluster.CoreID{2, 3}, clientIdle)
	if spare, ok := s.spareCore(1); ok {
		t.Fatalf("group teardown resurrected retired core %d", spare)
	}
	// RestoreNode re-admits the replacement's cores.
	s.RestoreNode(1)
	if spare, ok := s.spareCore(1); !ok || spare != 2 {
		t.Fatalf("spare for 1 after restore = %d, %v; want 2, true", spare, ok)
	}
}
