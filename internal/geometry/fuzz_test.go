package geometry_test

// Differential fuzzing of the region arithmetic against the conformance
// harness's naive reference implementation (internal/refmodel): geometry
// computes intersections, subtractions and coalesced unions with interval
// arithmetic; refmodel materializes cell sets. Any divergence on the small
// boxes fuzzed here is a bug in one of them. The test lives in an external
// package because refmodel imports geometry.

import (
	"testing"

	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/refmodel"
)

// buildBoxes decodes the fuzz input into two same-dimension boxes with
// coordinates in [-4, 8], small enough to enumerate cells.
func buildBoxes(dimSel uint8, c [12]int8) (a, b geometry.BBox) {
	dim := int(dimSel)%3 + 1
	clamp := func(x int8) int {
		v := int(x) % 13
		if v < 0 {
			v = -v
		}
		return v - 4
	}
	mk := func(off int) geometry.BBox {
		box := geometry.BBox{Min: make(geometry.Point, dim), Max: make(geometry.Point, dim)}
		for d := 0; d < dim; d++ {
			lo, hi := clamp(c[off+2*d]), clamp(c[off+2*d+1])
			if hi < lo {
				lo, hi = hi, lo
			}
			box.Min[d], box.Max[d] = lo, hi
		}
		return box
	}
	return mk(0), mk(6)
}

func FuzzRegionOpsAgainstModel(f *testing.F) {
	// Seed corpus: shapes taken from shrunk conformance scenarios — the
	// 1-D two-block/ghost layouts of the directed mutation detections and
	// a few degenerate and 3-D cases.
	f.Add(uint8(0), int8(0), int8(9), int8(8), int8(16), int8(0), int8(0), int8(0), int8(0), int8(0), int8(0), int8(0), int8(0))
	f.Add(uint8(0), int8(0), int8(2), int8(0), int8(2), int8(0), int8(0), int8(0), int8(0), int8(0), int8(0), int8(0), int8(0))
	f.Add(uint8(1), int8(0), int8(8), int8(0), int8(4), int8(2), int8(6), int8(1), int8(3), int8(0), int8(0), int8(0), int8(0))
	f.Add(uint8(2), int8(-2), int8(3), int8(0), int8(5), int8(1), int8(4), int8(0), int8(3), int8(-1), int8(2), int8(2), int8(5))
	f.Add(uint8(1), int8(0), int8(0), int8(0), int8(0), int8(0), int8(0), int8(0), int8(0), int8(0), int8(0), int8(0), int8(0))

	f.Fuzz(func(t *testing.T, dimSel uint8,
		c0, c1, c2, c3, c4, c5, c6, c7, c8, c9, c10, c11 int8) {
		a, b := buildBoxes(dimSel, [12]int8{c0, c1, c2, c3, c4, c5, c6, c7, c8, c9, c10, c11})

		// Intersection: interval arithmetic vs cell-set membership.
		wantInter := refmodel.IntersectCellSet(a, b)
		inter, ok := a.Intersect(b)
		if ok != (len(wantInter) > 0) && !(a.Empty() || b.Empty()) {
			t.Fatalf("Intersect(%v, %v) ok=%v, model has %d shared cells", a, b, ok, len(wantInter))
		}
		if ok {
			if got := inter.Volume(); got != int64(len(wantInter)) {
				t.Fatalf("Intersect(%v, %v) = %v (%d cells), model says %d", a, b, inter, got, len(wantInter))
			}
			for cell := range refmodel.CellSet(inter) {
				if !wantInter[cell] {
					t.Fatalf("Intersect(%v, %v) contains cell %s outside the model intersection", a, b, cell)
				}
			}
		}
		if v := refmodel.IntersectionVolume(a, b); v != int64(len(wantInter)) {
			t.Fatalf("refmodel.IntersectionVolume(%v, %v) = %d, cell set has %d", a, b, v, len(wantInter))
		}

		// Union via Coalesce: merged boxes must cover exactly the union
		// cell set, with no overlap between merged boxes.
		merged := geometry.Coalesce([]geometry.BBox{a, b})
		if got, want := refmodel.UnionVolume(merged), refmodel.UnionVolume([]geometry.BBox{a, b}); got != want {
			t.Fatalf("Coalesce(%v, %v) covers %d cells, union has %d", a, b, got, want)
		}
		// Coalesce never splits overlapping inputs, so its output is only
		// guaranteed disjoint when the inputs are.
		if len(wantInter) == 0 {
			var total int64
			for _, m := range merged {
				total += m.Volume()
			}
			if total != refmodel.UnionVolume([]geometry.BBox{a, b}) {
				t.Fatalf("Coalesce(%v, %v) boxes overlap: volumes sum to %d", a, b, total)
			}
		}

		// Subtraction: a \ b piece volumes must sum to the cell-set
		// difference, and every piece must stay inside a and outside b.
		diff := a.Subtract(b)
		wantDiff := int64(len(refmodel.CellSet(a))) - int64(len(wantInter))
		var diffVol int64
		for _, p := range diff {
			diffVol += p.Volume()
			if refmodel.IntersectionVolume(p, a) != p.Volume() {
				t.Fatalf("Subtract(%v, %v) piece %v leaves a", a, b, p)
			}
			if refmodel.Overlaps(p, b) {
				t.Fatalf("Subtract(%v, %v) piece %v still overlaps b", a, b, p)
			}
		}
		if diffVol != wantDiff {
			t.Fatalf("Subtract(%v, %v) = %d cells, model says %d", a, b, diffVol, wantDiff)
		}
	})
}
