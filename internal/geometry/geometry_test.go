package geometry

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// box builds a BBox from interleaved corners: box(x0,y0, x1,y1) in 2-D,
// box(x0,y0,z0, x1,y1,z1) in 3-D.
func box(coords ...int) BBox {
	n := len(coords) / 2
	return NewBBox(Point(coords[:n]), Point(coords[n:]))
}

func TestPointEqual(t *testing.T) {
	if !(Point{1, 2, 3}).Equal(Point{1, 2, 3}) {
		t.Fatal("equal points reported unequal")
	}
	if (Point{1, 2}).Equal(Point{1, 2, 3}) {
		t.Fatal("different-dimension points reported equal")
	}
	if (Point{1, 2, 3}).Equal(Point{1, 2, 4}) {
		t.Fatal("different points reported equal")
	}
}

func TestPointAdd(t *testing.T) {
	got := (Point{1, 2, 3}).Add(Point{10, -2, 0})
	if !got.Equal(Point{11, 0, 3}) {
		t.Fatalf("Add = %v", got)
	}
}

func TestPointCloneIndependent(t *testing.T) {
	p := Point{1, 2}
	q := p.Clone()
	q[0] = 99
	if p[0] != 1 {
		t.Fatal("Clone shares storage with original")
	}
}

func TestVolume(t *testing.T) {
	cases := []struct {
		b    BBox
		want int64
	}{
		{BoxFromSize([]int{4, 4, 4}), 64},
		{NewBBox(Point{2, 2}, Point{5, 3}), 3},
		{NewBBox(Point{0, 0}, Point{0, 10}), 0},
		{NewBBox(Point{5, 5}, Point{2, 8}), 0}, // inverted
	}
	for _, c := range cases {
		if got := c.b.Volume(); got != c.want {
			t.Errorf("Volume(%v) = %d, want %d", c.b, got, c.want)
		}
	}
}

func TestIntersect(t *testing.T) {
	a := box(0, 0, 10, 10)
	b := box(5, 5, 15, 15)
	got, ok := a.Intersect(b)
	if !ok || !got.Equal(box(5, 5, 10, 10)) {
		t.Fatalf("Intersect = %v ok=%v", got, ok)
	}
	c := box(10, 0, 20, 10) // shares only the exclusive edge
	if _, ok := a.Intersect(c); ok {
		t.Fatal("boxes touching at an exclusive boundary must not intersect")
	}
}

func TestIntersectCommutative(t *testing.T) {
	a := box(0, 3, 9, 11)
	b := box(2, 0, 40, 7)
	ab, ok1 := a.Intersect(b)
	ba, ok2 := b.Intersect(a)
	if ok1 != ok2 || !ab.Equal(ba) {
		t.Fatalf("Intersect not commutative: %v vs %v", ab, ba)
	}
}

func TestContains(t *testing.T) {
	b := box(0, 0, 4, 4)
	if !b.Contains(Point{0, 0}) || !b.Contains(Point{3, 3}) {
		t.Fatal("corner containment wrong")
	}
	if b.Contains(Point{4, 0}) || b.Contains(Point{0, -1}) {
		t.Fatal("exclusive upper bound violated")
	}
}

func TestContainsBox(t *testing.T) {
	outer := box(0, 0, 10, 10)
	if !outer.ContainsBox(box(2, 2, 8, 8)) {
		t.Fatal("inner box not contained")
	}
	if outer.ContainsBox(box(2, 2, 11, 8)) {
		t.Fatal("overflowing box reported contained")
	}
	empty := NewBBox(Point{3, 3}, Point{3, 3})
	if !outer.ContainsBox(empty) {
		t.Fatal("empty box must be contained in anything")
	}
}

func TestCover(t *testing.T) {
	a := box(0, 0, 2, 2)
	b := box(5, 5, 7, 9)
	got := a.Cover(b)
	if !got.Equal(box(0, 0, 7, 9)) {
		t.Fatalf("Cover = %v", got)
	}
}

func TestTranslate(t *testing.T) {
	b := box(1, 1, 3, 3).Translate(Point{10, -1})
	if !b.Equal(box(11, 0, 13, 2)) {
		t.Fatalf("Translate = %v", b)
	}
}

func TestEachVisitsAllCellsOnce(t *testing.T) {
	b := box(1, 2, 4, 5) // 3x3
	seen := map[string]int{}
	b.Each(func(p Point) { seen[p.String()]++ })
	if len(seen) != 9 {
		t.Fatalf("Each visited %d distinct cells, want 9", len(seen))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("cell %s visited %d times", k, n)
		}
	}
}

func TestEachEmptyBox(t *testing.T) {
	calls := 0
	NewBBox(Point{0}, Point{0}).Each(func(Point) { calls++ })
	if calls != 0 {
		t.Fatal("Each must not visit cells of an empty box")
	}
}

func TestOffsetRowMajor(t *testing.T) {
	b := box(0, 0, 2, 3)
	want := int64(0)
	b.Each(func(p Point) {
		if got := b.Offset(p); got != want {
			t.Fatalf("Offset(%v) = %d, want %d", p, got, want)
		}
		want++
	})
}

func TestSubtractFullOverlap(t *testing.T) {
	b := box(0, 0, 4, 4)
	if rest := b.Subtract(b); len(rest) != 0 {
		t.Fatalf("b - b = %v, want empty", rest)
	}
}

func TestSubtractDisjoint(t *testing.T) {
	b := box(0, 0, 4, 4)
	rest := b.Subtract(box(10, 10, 12, 12))
	if len(rest) != 1 || !rest[0].Equal(b) {
		t.Fatalf("disjoint subtract = %v", rest)
	}
}

func TestSubtractPartial(t *testing.T) {
	b := box(0, 0, 4, 4)
	hole := box(1, 1, 3, 3)
	rest := b.Subtract(hole)
	if !Disjoint(rest) {
		t.Fatal("Subtract produced overlapping pieces")
	}
	if got := TotalVolume(rest); got != b.Volume()-hole.Volume() {
		t.Fatalf("Subtract volume = %d, want %d", got, b.Volume()-hole.Volume())
	}
	for _, r := range rest {
		if r.Overlaps(hole) {
			t.Fatalf("piece %v overlaps the hole", r)
		}
	}
}

func TestDisjoint(t *testing.T) {
	if !Disjoint([]BBox{box(0, 0, 2, 2), box(2, 0, 4, 2)}) {
		t.Fatal("adjacent boxes reported overlapping")
	}
	if Disjoint([]BBox{box(0, 0, 3, 3), box(2, 2, 4, 4)}) {
		t.Fatal("overlapping boxes reported disjoint")
	}
}

func TestStringFormats(t *testing.T) {
	if got := (Point{0, 1, 2}).String(); got != "(0,1,2)" {
		t.Fatalf("Point.String = %q", got)
	}
	if got := box(0, 0, 0, 10, 10, 20).String(); got != "<0,0,0; 10,10,20>" {
		t.Fatalf("BBox.String = %q", got)
	}
}

func TestDimensionMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on dimension mismatch")
		}
	}()
	a := box(0, 0, 1, 1)
	b := NewBBox(Point{0}, Point{1})
	a.Intersect(b)
}

// randomBox produces a (possibly empty) box within [-20,20)^dim.
func randomBox(r *rand.Rand, dim int) BBox {
	min := make(Point, dim)
	max := make(Point, dim)
	for d := 0; d < dim; d++ {
		a := r.Intn(40) - 20
		b := r.Intn(40) - 20
		if a > b {
			a, b = b, a
		}
		min[d], max[d] = a, b
	}
	return BBox{Min: min, Max: max}
}

func TestQuickIntersectVolumeNeverLarger(t *testing.T) {
	r := rand.New(rand.NewSource(1))
	f := func() bool {
		a := randomBox(r, 3)
		b := randomBox(r, 3)
		inter, ok := a.Intersect(b)
		if !ok {
			return inter.Empty()
		}
		return inter.Volume() <= a.Volume() && inter.Volume() <= b.Volume() &&
			a.ContainsBox(inter) && b.ContainsBox(inter)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickSubtractPartition(t *testing.T) {
	r := rand.New(rand.NewSource(2))
	f := func() bool {
		a := randomBox(r, 2)
		b := randomBox(r, 2)
		rest := a.Subtract(b)
		if !Disjoint(rest) {
			return false
		}
		inter, _ := a.Intersect(b)
		if TotalVolume(rest) != a.Volume()-inter.Volume() {
			return false
		}
		for _, piece := range rest {
			if !a.ContainsBox(piece) || piece.Overlaps(b) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickCoverContainsBoth(t *testing.T) {
	r := rand.New(rand.NewSource(3))
	f := func() bool {
		a := randomBox(r, 3)
		b := randomBox(r, 3)
		c := a.Cover(b)
		if a.Empty() && b.Empty() {
			return true
		}
		if a.Empty() {
			return c.Equal(b)
		}
		if b.Empty() {
			return c.Equal(a)
		}
		return c.ContainsBox(a) && c.ContainsBox(b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkIntersect(b *testing.B) {
	x := box(0, 0, 0, 128, 128, 128)
	y := box(64, 64, 64, 192, 192, 192)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		x.Intersect(y)
	}
}

func BenchmarkEach64(b *testing.B) {
	x := box(0, 0, 0, 4, 4, 4)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		n := 0
		x.Each(func(Point) { n++ })
	}
}

func TestExpand(t *testing.T) {
	within := box(0, 0, 16, 16)
	b := box(4, 4, 8, 8)
	got := b.Expand(2, within)
	if !got.Equal(box(2, 2, 10, 10)) {
		t.Fatalf("Expand = %v", got)
	}
	// Clipping at the domain edge.
	edge := box(0, 14, 4, 16).Expand(3, within)
	if !edge.Equal(box(0, 11, 7, 16)) {
		t.Fatalf("clipped Expand = %v", edge)
	}
	// Negative width shrinks, possibly to empty.
	if !b.Expand(-2, within).Empty() {
		t.Fatal("shrink to empty failed")
	}
	if got := box(4, 4, 12, 12).Expand(-1, within); !got.Equal(box(5, 5, 11, 11)) {
		t.Fatalf("shrink = %v", got)
	}
}

func TestQuickExpandContainsOriginal(t *testing.T) {
	r := rand.New(rand.NewSource(17))
	within := box(-20, -20, 20, 20)
	f := func() bool {
		b := randomBox(r, 2)
		if b.Empty() {
			return true
		}
		g := b.Expand(1+r.Intn(3), within)
		inner, _ := b.Intersect(within)
		return g.ContainsBox(inner) && within.ContainsBox(g)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestCoalesceSimpleRow(t *testing.T) {
	in := []BBox{box(0, 0, 2, 2), box(2, 0, 4, 2), box(4, 0, 6, 2)}
	out := Coalesce(in)
	if len(out) != 1 || !out[0].Equal(box(0, 0, 6, 2)) {
		t.Fatalf("Coalesce = %v", out)
	}
}

func TestCoalesceGrid(t *testing.T) {
	// Four quadrants of a square coalesce fully (two merges along one dim,
	// then one along the other).
	in := []BBox{box(0, 0, 2, 2), box(2, 0, 4, 2), box(0, 2, 2, 4), box(2, 2, 4, 4)}
	out := Coalesce(in)
	if len(out) != 1 || !out[0].Equal(box(0, 0, 4, 4)) {
		t.Fatalf("Coalesce = %v", out)
	}
}

func TestCoalesceKeepsDisjoint(t *testing.T) {
	in := []BBox{box(0, 0, 2, 2), box(3, 0, 5, 2)} // gap between them
	out := Coalesce(in)
	if len(out) != 2 {
		t.Fatalf("Coalesce merged non-adjacent boxes: %v", out)
	}
	// Misaligned neighbours must not merge either.
	in = []BBox{box(0, 0, 2, 2), box(2, 1, 4, 3)}
	if out := Coalesce(in); len(out) != 2 {
		t.Fatalf("Coalesce merged misaligned boxes: %v", out)
	}
}

func TestCoalesceDropsEmpty(t *testing.T) {
	in := []BBox{box(0, 0, 2, 2), NewBBox(Point{5, 5}, Point{5, 9})}
	out := Coalesce(in)
	if len(out) != 1 {
		t.Fatalf("Coalesce = %v", out)
	}
}

func TestQuickCoalescePreservesCells(t *testing.T) {
	r := rand.New(rand.NewSource(29))
	f := func() bool {
		// Build disjoint boxes by slicing a grid region.
		var boxes []BBox
		for i := 0; i < 3; i++ {
			for j := 0; j < 3; j++ {
				if r.Intn(3) > 0 {
					boxes = append(boxes, box(i*2, j*2, i*2+2, j*2+2))
				}
			}
		}
		out := Coalesce(boxes)
		if TotalVolume(out) != TotalVolume(boxes) {
			return false
		}
		if !Disjoint(out) {
			return false
		}
		// Every original cell is covered.
		for _, b := range boxes {
			covered := true
			b.Each(func(p Point) {
				found := false
				for _, o := range out {
					if o.Contains(p) {
						found = true
						break
					}
				}
				if !found {
					covered = false
				}
			})
			if !covered {
				return false
			}
		}
		return len(out) <= len(boxes)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}
