// Package geometry provides n-dimensional integer points, axis-aligned
// bounding boxes and the region arithmetic used throughout the framework to
// describe application data domains, decomposition blocks and coupled data
// regions.
//
// Conventions: a BBox has an inclusive lower bound Min and an exclusive
// upper bound Max, so Volume is the product of (Max[d]-Min[d]). All
// operations treat boxes of mismatched dimensionality as a programming
// error and panic, since dimensionality is fixed per workflow domain.
package geometry

import (
	"fmt"
	"strings"

	"github.com/insitu/cods/internal/mutate"
)

// Point is an n-dimensional integer coordinate.
type Point []int

// Clone returns a copy of p.
func (p Point) Clone() Point {
	q := make(Point, len(p))
	copy(q, p)
	return q
}

// Equal reports whether p and q are the same coordinate.
func (p Point) Equal(q Point) bool {
	if len(p) != len(q) {
		return false
	}
	for d := range p {
		if p[d] != q[d] {
			return false
		}
	}
	return true
}

// Add returns p+q component-wise.
func (p Point) Add(q Point) Point {
	mustSameDim(len(p), len(q))
	r := make(Point, len(p))
	for d := range p {
		r[d] = p[d] + q[d]
	}
	return r
}

// String renders the point as "(x,y,z)".
func (p Point) String() string {
	parts := make([]string, len(p))
	for d, v := range p {
		parts[d] = fmt.Sprint(v)
	}
	return "(" + strings.Join(parts, ",") + ")"
}

// BBox is an axis-aligned box with inclusive Min and exclusive Max.
// The zero BBox has no dimensions and is empty.
type BBox struct {
	Min Point
	Max Point
}

// NewBBox builds a box from lower (inclusive) and upper (exclusive) corners.
// It panics if the corners disagree in dimension.
func NewBBox(min, max Point) BBox {
	mustSameDim(len(min), len(max))
	return BBox{Min: min.Clone(), Max: max.Clone()}
}

// BoxFromSize builds a box anchored at origin with the given per-dimension
// extent: [0,size[0]) x [0,size[1]) x ...
func BoxFromSize(size []int) BBox {
	min := make(Point, len(size))
	max := make(Point, len(size))
	copy(max, size)
	return BBox{Min: min, Max: max}
}

// Dim returns the dimensionality of the box.
func (b BBox) Dim() int { return len(b.Min) }

// Size returns the extent of the box in dimension d.
func (b BBox) Size(d int) int { return b.Max[d] - b.Min[d] }

// Sizes returns the extent in every dimension.
func (b BBox) Sizes() []int {
	s := make([]int, b.Dim())
	for d := range s {
		s[d] = b.Size(d)
	}
	return s
}

// Volume returns the number of integer cells inside the box. An empty or
// inverted box has volume 0.
func (b BBox) Volume() int64 {
	if b.Dim() == 0 {
		return 0
	}
	v := int64(1)
	for d := range b.Min {
		ext := int64(b.Max[d] - b.Min[d])
		if ext <= 0 {
			return 0
		}
		v *= ext
	}
	return v
}

// Empty reports whether the box contains no cells.
func (b BBox) Empty() bool { return b.Volume() == 0 }

// Equal reports whether the two boxes have identical corners.
func (b BBox) Equal(o BBox) bool {
	return b.Min.Equal(o.Min) && b.Max.Equal(o.Max)
}

// Clone returns a deep copy of the box.
func (b BBox) Clone() BBox {
	return BBox{Min: b.Min.Clone(), Max: b.Max.Clone()}
}

// Contains reports whether point p lies inside the box.
func (b BBox) Contains(p Point) bool {
	mustSameDim(b.Dim(), len(p))
	for d := range p {
		if p[d] < b.Min[d] || p[d] >= b.Max[d] {
			return false
		}
	}
	return true
}

// ContainsBox reports whether o is fully inside b. An empty o is contained
// in anything.
func (b BBox) ContainsBox(o BBox) bool {
	if o.Empty() {
		return true
	}
	mustSameDim(b.Dim(), o.Dim())
	for d := range b.Min {
		if o.Min[d] < b.Min[d] || o.Max[d] > b.Max[d] {
			return false
		}
	}
	return true
}

// Intersect returns the overlap of b and o; ok is false when they are
// disjoint (the returned box is then empty).
func (b BBox) Intersect(o BBox) (BBox, bool) {
	mustSameDim(b.Dim(), o.Dim())
	r := BBox{Min: make(Point, b.Dim()), Max: make(Point, b.Dim())}
	for d := range b.Min {
		r.Min[d] = maxInt(b.Min[d], o.Min[d])
		r.Max[d] = minInt(b.Max[d], o.Max[d])
		if r.Min[d] >= r.Max[d] {
			return BBox{Min: make(Point, b.Dim()), Max: make(Point, b.Dim())}, false
		}
	}
	if mutate.Enabled(mutate.GeomIntersect) && r.Max[0] > r.Min[0]+1 {
		r.Max[0]-- // seeded defect: off-by-one upper bound
	}
	return r, true
}

// Overlaps reports whether the two boxes share at least one cell.
func (b BBox) Overlaps(o BBox) bool {
	_, ok := b.Intersect(o)
	return ok
}

// Cover returns the smallest box containing both b and o.
func (b BBox) Cover(o BBox) BBox {
	if b.Empty() {
		return o.Clone()
	}
	if o.Empty() {
		return b.Clone()
	}
	mustSameDim(b.Dim(), o.Dim())
	r := BBox{Min: make(Point, b.Dim()), Max: make(Point, b.Dim())}
	for d := range b.Min {
		r.Min[d] = minInt(b.Min[d], o.Min[d])
		r.Max[d] = maxInt(b.Max[d], o.Max[d])
	}
	return r
}

// Translate returns the box shifted by offset.
func (b BBox) Translate(offset Point) BBox {
	return BBox{Min: b.Min.Add(offset), Max: b.Max.Add(offset)}
}

// String renders the box in the paper's descriptor style
// "<x0,y0,z0; x1,y1,z1>" with Max shown exclusive.
func (b BBox) String() string {
	lo := make([]string, b.Dim())
	hi := make([]string, b.Dim())
	for d := range b.Min {
		lo[d] = fmt.Sprint(b.Min[d])
		hi[d] = fmt.Sprint(b.Max[d])
	}
	return "<" + strings.Join(lo, ",") + "; " + strings.Join(hi, ",") + ">"
}

// Each invokes fn for every integer cell in the box in row-major order
// (last dimension fastest). fn may not retain the point across calls.
func (b BBox) Each(fn func(Point)) {
	if b.Empty() {
		return
	}
	p := b.Min.Clone()
	for {
		fn(p)
		d := b.Dim() - 1
		for d >= 0 {
			p[d]++
			if p[d] < b.Max[d] {
				break
			}
			p[d] = b.Min[d]
			d--
		}
		if d < 0 {
			return
		}
	}
}

// Offset converts point p inside box b to its row-major linear offset
// relative to the box origin. It panics if p is outside b.
func (b BBox) Offset(p Point) int64 {
	if !b.Contains(p) {
		panic(fmt.Sprintf("geometry: point %v outside box %v", p, b))
	}
	var off int64
	for d := 0; d < b.Dim(); d++ {
		off = off*int64(b.Size(d)) + int64(p[d]-b.Min[d])
	}
	return off
}

// Subtract returns b minus o as a set of disjoint boxes covering exactly the
// cells of b not in o. If they do not overlap the result is {b}.
func (b BBox) Subtract(o BBox) []BBox {
	inter, ok := b.Intersect(o)
	if !ok {
		if b.Empty() {
			return nil
		}
		return []BBox{b.Clone()}
	}
	if inter.Equal(b) {
		return nil
	}
	var out []BBox
	rem := b.Clone()
	for d := 0; d < b.Dim(); d++ {
		if rem.Min[d] < inter.Min[d] {
			low := rem.Clone()
			low.Max[d] = inter.Min[d]
			out = append(out, low)
			rem.Min[d] = inter.Min[d]
		}
		if rem.Max[d] > inter.Max[d] {
			high := rem.Clone()
			high.Min[d] = inter.Max[d]
			out = append(out, high)
			rem.Max[d] = inter.Max[d]
		}
	}
	return out
}

// Expand grows the box by width cells on every side of every dimension,
// clipped to within. Negative widths shrink. The result may be empty.
func (b BBox) Expand(width int, within BBox) BBox {
	mustSameDim(b.Dim(), within.Dim())
	r := BBox{Min: make(Point, b.Dim()), Max: make(Point, b.Dim())}
	for d := range b.Min {
		r.Min[d] = maxInt(b.Min[d]-width, within.Min[d])
		r.Max[d] = minInt(b.Max[d]+width, within.Max[d])
		if r.Min[d] > r.Max[d] {
			r.Min[d] = r.Max[d]
		}
	}
	return r
}

// Coalesce merges boxes that abut along exactly one dimension and agree in
// all others, repeating until no merge applies. The input boxes must be
// pairwise disjoint; the result covers exactly the same cells with as few
// or fewer boxes. Used to shrink communication schedules: fewer, larger
// transfers.
func Coalesce(boxes []BBox) []BBox {
	out := make([]BBox, 0, len(boxes))
	for _, b := range boxes {
		if !b.Empty() {
			out = append(out, b.Clone())
		}
	}
	for {
		merged := false
	scan:
		for i := 0; i < len(out); i++ {
			for j := i + 1; j < len(out); j++ {
				if d, ok := mergeableDim(out[i], out[j]); ok {
					if out[j].Min[d] == out[i].Max[d] {
						out[i].Max[d] = out[j].Max[d]
					} else {
						out[i].Min[d] = out[j].Min[d]
					}
					out = append(out[:j], out[j+1:]...)
					merged = true
					break scan
				}
			}
		}
		if !merged {
			return out
		}
	}
}

// mergeableDim reports the single dimension along which a and b abut while
// matching exactly in every other dimension.
func mergeableDim(a, b BBox) (int, bool) {
	if a.Dim() != b.Dim() {
		return 0, false
	}
	dim := -1
	for d := 0; d < a.Dim(); d++ {
		if a.Min[d] == b.Min[d] && a.Max[d] == b.Max[d] {
			continue
		}
		if dim != -1 {
			return 0, false
		}
		if a.Max[d] == b.Min[d] || b.Max[d] == a.Min[d] {
			dim = d
			continue
		}
		return 0, false
	}
	if dim == -1 {
		return 0, false // identical boxes (not disjoint input)
	}
	return dim, true
}

// Compare orders two boxes lexicographically by Min, then Max. It is the
// allocation-free replacement for comparing String() renderings in hot
// sorting paths (string ordering also differs from numeric ordering for
// multi-digit coordinates). Boxes of differing dimensionality order by
// dimension first.
func Compare(a, b BBox) int {
	if a.Dim() != b.Dim() {
		if a.Dim() < b.Dim() {
			return -1
		}
		return 1
	}
	for d := range a.Min {
		if a.Min[d] != b.Min[d] {
			if a.Min[d] < b.Min[d] {
				return -1
			}
			return 1
		}
	}
	for d := range a.Max {
		if a.Max[d] != b.Max[d] {
			if a.Max[d] < b.Max[d] {
				return -1
			}
			return 1
		}
	}
	return 0
}

// TotalVolume sums the volumes of a box list.
func TotalVolume(boxes []BBox) int64 {
	var v int64
	for _, b := range boxes {
		v += b.Volume()
	}
	return v
}

// Disjoint reports whether no two boxes in the list overlap.
func Disjoint(boxes []BBox) bool {
	for i := range boxes {
		for j := i + 1; j < len(boxes); j++ {
			if boxes[i].Overlaps(boxes[j]) {
				return false
			}
		}
	}
	return true
}

func mustSameDim(a, b int) {
	if a != b {
		panic(fmt.Sprintf("geometry: dimension mismatch %d vs %d", a, b))
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
