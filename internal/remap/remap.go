// Package remap closes the ROADMAP's adaptive re-mapping loop (DESIGN
// §5j): between coupled iterations a planner consumes the observed
// per-(src,dst)/per-medium flow matrix (obs.BuildFlowMatrix over the
// fabric's flow log), scores the current block→core mapping against the
// inter-node coupled bytes it actually moved, and emits a migration plan.
// The executor applies the plan through the staged-block machinery the
// elastic plane already trusts — put-ledger restage at the new owner,
// discard at the old, a DHT Resplit to converge the location tables and an
// epoch bump fencing out every cached schedule — so in-flight pulls
// converge on the new placement with no correctness change.
package remap

import (
	"fmt"
	"sort"
	"time"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/cods"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/membership"
	"github.com/insitu/cods/internal/mutate"
	"github.com/insitu/cods/internal/netsim"
	"github.com/insitu/cods/internal/obs"
)

// Registry instruments for the remap plane: how often plans are computed
// and how long that takes (the planner runs on the coupling path between
// iterations, so its cost is budgeted by benchguard), how many moves were
// planned and how many blocks actually migrated.
var (
	obsPlans   = obs.C("remap.plans")
	obsPlanNs  = obs.H("remap.plan_ns", obs.DefaultLatencyBounds())
	obsPlanned = obs.C("remap.moves.planned")
	obsMoved   = obs.C("remap.moves.applied")
)

// Block is one staged block of the current mapping: what the planner
// scores and the executor migrates. It mirrors the put ledger's record
// minus the payload.
type Block struct {
	Var     string
	Version int
	Region  geometry.BBox
	Owner   cluster.CoreID
}

// key is the ledger-compatible identity of a block.
func (b Block) key() string {
	return fmt.Sprintf("%s|%d|%s|%d", b.Var, b.Version, b.Region.String(), b.Owner)
}

// Move relocates one block to a new owner core.
type Move struct {
	Block Block
	To    cluster.CoreID
	// Shares[n] is the observed inter-app byte volume node n pulled of
	// this block, apportioned from the flow matrix by block volume. The
	// move's gain and the netsim what-if evaluation both derive from it.
	Shares []int64
	// Gain is the predicted inter-node byte reduction of this move under
	// a repeat of the observed traffic: the destination's share becomes
	// node-local while the old node's local share moves onto the network.
	Gain int64
}

// Plan is one remap round's migration set with its traffic score.
type Plan struct {
	Moves []Move
	// StaticNetBytes is the observed inter-node coupled byte volume under
	// the current mapping; PlannedNetBytes the predicted volume under the
	// planned one, assuming the traffic pattern repeats.
	StaticNetBytes  int64
	PlannedNetBytes int64
}

// Reduction is the predicted fractional inter-node byte reduction.
func (p Plan) Reduction() float64 {
	if p.StaticNetBytes == 0 {
		return 0
	}
	return float64(p.StaticNetBytes-p.PlannedNetBytes) / float64(p.StaticNetBytes)
}

// Options tune the planner.
type Options struct {
	// MinGain is the fractional inter-node byte reduction below which
	// Propose keeps the static mapping (an empty plan). Zero accepts any
	// strictly positive gain.
	MinGain float64
	// MaxMoves bounds the migrations per round, largest gains first
	// (0 = unbounded).
	MaxMoves int
}

// Propose scores the current block→core mapping against the observed flow
// matrix and plans migrations. The matrix's inter-app cells give who pulled
// how much from whom at node granularity; each source node's outgoing
// volume is apportioned over the blocks stored there by block volume, and a
// block whose heaviest reader is a remote node is planned to move next to
// that reader (same core slot on the reader's node). The result is
// deterministic: blocks are visited in ledger order and ties break toward
// the lower node id.
func Propose(m *cluster.Machine, fm obs.FlowMatrix, blocks []Block, opts Options) Plan {
	start := time.Now()
	defer func() {
		obsPlans.Inc()
		obsPlanNs.Observe(time.Since(start).Nanoseconds())
	}()

	numNodes := m.NumNodes()
	// traffic[src][dst]: observed inter-app bytes pulled by dst's tasks
	// from blocks stored on src (both media — the src==dst diagonal is the
	// node-local volume a move away must be charged for).
	traffic := make([][]int64, numNodes)
	for i := range traffic {
		traffic[i] = make([]int64, numNodes)
	}
	var static int64
	for _, c := range fm.Cells {
		if c.Class != cluster.InterApp.String() {
			continue
		}
		if c.Src < 0 || c.Src >= numNodes || c.Dst < 0 || c.Dst >= numNodes {
			continue
		}
		traffic[c.Src][c.Dst] += c.Bytes
		if c.Src != c.Dst {
			static += c.Bytes
		}
	}
	plan := Plan{StaticNetBytes: static, PlannedNetBytes: static}

	// Apportionment denominator: staged volume per node.
	volByNode := make([]int64, numNodes)
	for _, b := range blocks {
		volByNode[m.NodeOf(b.Owner)] += b.Region.Volume()
	}

	sorted := append([]Block(nil), blocks...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].key() < sorted[j].key() })

	var cands []Move
	for _, b := range sorted {
		src := int(m.NodeOf(b.Owner))
		vol := b.Region.Volume()
		if volByNode[src] == 0 || vol == 0 {
			continue
		}
		shares := make([]int64, numNodes)
		best, bestBytes := src, int64(-1)
		for dst := 0; dst < numNodes; dst++ {
			shares[dst] = traffic[src][dst] * vol / volByNode[src]
			if dst == src {
				continue
			}
			if shares[dst] > bestBytes {
				best, bestBytes = dst, shares[dst]
			}
		}
		gain := bestBytes - shares[src]
		if best == src || gain <= 0 {
			continue
		}
		slot := int(b.Owner) % m.CoresPerNode()
		cands = append(cands, Move{
			Block:  b,
			To:     m.CoreOn(cluster.NodeID(best), slot),
			Shares: shares,
			Gain:   gain,
		})
	}
	// Largest gains first; ties keep ledger order (stable sort).
	sort.SliceStable(cands, func(i, j int) bool { return cands[i].Gain > cands[j].Gain })
	if opts.MaxMoves > 0 && len(cands) > opts.MaxMoves {
		cands = cands[:opts.MaxMoves]
	}
	var reduction int64
	for _, mv := range cands {
		reduction += mv.Gain
	}
	if static == 0 || reduction <= 0 {
		return plan // keep the static mapping
	}
	if float64(reduction)/float64(static) < opts.MinGain {
		return plan
	}
	plan.Moves = cands
	plan.PlannedNetBytes = static - reduction
	obsPlanned.Add(int64(len(cands)))
	return plan
}

// Apply executes a migration plan: every moved block is discarded at its
// old owner and restaged byte-identically at the new one from the put
// ledger's copy, the lookup tables are re-converged with a Resplit over
// the unchanged member set, and an epoch bump fences out every consumer's
// cached schedule so no in-flight pull can be served from pre-migration
// state. Returns the number of blocks migrated. The space's put recorder
// must be the given ledger, so the restage re-records itself.
func Apply(sp *cods.Space, ledger *membership.Ledger, plan Plan, app int, phase string) (int, error) {
	if len(plan.Moves) == 0 {
		return 0, nil
	}
	byKey := make(map[string]membership.Block)
	for _, b := range ledger.Blocks() {
		byKey[Block{Var: b.Var, Version: b.Version, Region: b.Region, Owner: b.Owner}.key()] = b
	}
	moved := 0
	for _, mv := range plan.Moves {
		b := mv.Block
		if mv.To == b.Owner {
			continue
		}
		rec, ok := byKey[b.key()]
		if !ok {
			return moved, fmt.Errorf("remap: block %q v%d %v at core %d not in the put ledger",
				b.Var, b.Version, b.Region, b.Owner)
		}
		from := sp.HandleAt(b.Owner, app, phase)
		if mutate.Enabled(mutate.RemapStaleOwner) {
			// Seeded defect: free the old copy's bytes but leave its
			// location record registered (and skip the schedule
			// invalidation that rides on the removal), so lookups keep
			// naming the pre-migration owner after the epoch bump.
			from.Discard(b.Var, b.Version, b.Region)
		} else if err := from.DiscardSequential(b.Var, b.Version, b.Region); err != nil {
			return moved, fmt.Errorf("remap: discarding %q v%d at core %d: %w",
				b.Var, b.Version, b.Owner, err)
		}
		to := sp.HandleAt(mv.To, app, phase)
		if err := to.PutSequential(b.Var, b.Version, b.Region, rec.Data); err != nil {
			return moved, fmt.Errorf("remap: restaging %q v%d at core %d: %w",
				b.Var, b.Version, mv.To, err)
		}
		moved++
		obsMoved.Inc()
	}
	// Converge: the member set is unchanged, but entries moved between
	// intervals' owners — the re-split re-registers every surviving record
	// with the DHT cores responsible for it (inserts are idempotent).
	members := sp.Lookup().Members()
	if len(members) > 0 {
		cl := sp.Lookup().ClientAt(sp.Fabric().Machine().CoreOn(cluster.NodeID(members[0]), 0))
		if _, err := cl.Resplit(phase, app, members); err != nil {
			return moved, fmt.Errorf("remap: resplit: %w", err)
		}
	}
	// Fence: any schedule computed before the migration may name an old
	// owner; the epoch bump forces recomputation from the fresh tables.
	sp.InvalidateAll()
	return moved, nil
}

// Cost is one placement's price under the torus cost model.
type Cost struct {
	NetworkBytes int64
	ShmBytes     int64
	Makespan     float64
	MaxLinkBytes int64
}

// Evaluate prices the static and the planned mapping through the netsim
// cost model: the observed inter-app cells are replayed as one flow per
// (src,dst) node pair, and each planned move re-homes its apportioned
// share vector from the old owner's node to the new one (remote readers
// switch links, the destination's share becomes a memory copy). This is
// the what-if the codsrun report surfaces next to a plan.
func Evaluate(sim *netsim.Simulator, m *cluster.Machine, fm obs.FlowMatrix, p Plan) (static, planned Cost) {
	n := m.NumNodes()
	base := make([][]int64, n)
	for i := range base {
		base[i] = make([]int64, n)
	}
	for _, c := range fm.Cells {
		if c.Class != cluster.InterApp.String() {
			continue
		}
		if c.Src < 0 || c.Src >= n || c.Dst < 0 || c.Dst >= n {
			continue
		}
		base[c.Src][c.Dst] += c.Bytes
	}
	adj := make([][]int64, n)
	for i := range adj {
		adj[i] = append([]int64(nil), base[i]...)
	}
	for _, mv := range p.Moves {
		src := int(m.NodeOf(mv.Block.Owner))
		dst := int(m.NodeOf(mv.To))
		for reader, bytes := range mv.Shares {
			if bytes == 0 || reader >= n {
				continue
			}
			adj[src][reader] -= bytes
			adj[dst][reader] += bytes
		}
	}
	return price(sim, base), price(sim, adj)
}

// price runs one traffic matrix through the simulator.
func price(sim *netsim.Simulator, mat [][]int64) Cost {
	var flows []cluster.Flow
	for src := range mat {
		for dst, bytes := range mat[src] {
			if bytes <= 0 {
				continue
			}
			medium := cluster.Network
			if src == dst {
				medium = cluster.SharedMemory
			}
			flows = append(flows, cluster.Flow{
				Phase:  "remap-eval",
				Src:    cluster.NodeID(src),
				Dst:    cluster.NodeID(dst),
				Bytes:  bytes,
				Medium: medium.String(),
				Class:  cluster.InterApp.String(),
			})
		}
	}
	res := sim.Simulate(flows)
	return Cost{
		NetworkBytes: res.NetworkBytes,
		ShmBytes:     res.ShmBytes,
		Makespan:     res.Makespan,
		MaxLinkBytes: res.MaxLinkBytes,
	}
}

// LedgerBlocks converts a put ledger's snapshot into the planner's block
// form (the payloads stay behind in the ledger).
func LedgerBlocks(l *membership.Ledger) []Block {
	recs := l.Blocks()
	out := make([]Block, 0, len(recs))
	for _, b := range recs {
		out = append(out, Block{Var: b.Var, Version: b.Version, Region: b.Region, Owner: b.Owner})
	}
	return out
}
