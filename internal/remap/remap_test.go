package remap

import (
	"testing"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/cods"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/membership"
	"github.com/insitu/cods/internal/netsim"
	"github.com/insitu/cods/internal/obs"
	"github.com/insitu/cods/internal/transport"
)

func mustMachine(t *testing.T, nodes, cores int) *cluster.Machine {
	t.Helper()
	m, err := cluster.NewMachine(nodes, cores)
	if err != nil {
		t.Fatalf("NewMachine: %v", err)
	}
	return m
}

// matrixCell builds one inter-app cell of a synthetic flow matrix.
func matrixCell(src, dst int, bytes int64) obs.FlowCell {
	medium := cluster.Network
	if src == dst {
		medium = cluster.SharedMemory
	}
	return obs.FlowCell{Src: src, Dst: dst, Medium: medium.String(),
		Class: cluster.InterApp.String(), Bytes: bytes}
}

func TestProposeMovesHotBlockToItsReader(t *testing.T) {
	m := mustMachine(t, 2, 2)
	box := geometry.BoxFromSize([]int{4, 4})
	blocks := []Block{
		{Var: "u", Version: 0, Region: box, Owner: m.CoreOn(0, 1)},
	}
	fm := obs.FlowMatrix{Cells: []obs.FlowCell{
		matrixCell(0, 1, 1024), // node 1 pulls everything node 0 stores
	}}
	p := Propose(m, fm, blocks, Options{})
	if len(p.Moves) != 1 {
		t.Fatalf("planned %d moves, want 1: %+v", len(p.Moves), p)
	}
	mv := p.Moves[0]
	if got, want := mv.To, m.CoreOn(1, 1); got != want {
		t.Fatalf("move target core %d, want %d (same slot on the reader's node)", got, want)
	}
	if mv.Gain != 1024 {
		t.Fatalf("gain %d, want 1024", mv.Gain)
	}
	if p.StaticNetBytes != 1024 || p.PlannedNetBytes != 0 {
		t.Fatalf("scores static=%d planned=%d, want 1024/0", p.StaticNetBytes, p.PlannedNetBytes)
	}
	if r := p.Reduction(); r != 1 {
		t.Fatalf("reduction %v, want 1", r)
	}
}

func TestProposeKeepsLocallyReadBlocks(t *testing.T) {
	m := mustMachine(t, 2, 2)
	box := geometry.BoxFromSize([]int{4, 4})
	blocks := []Block{{Var: "u", Version: 0, Region: box, Owner: m.CoreOn(0, 0)}}
	fm := obs.FlowMatrix{Cells: []obs.FlowCell{
		matrixCell(0, 0, 4096), // mostly local reads
		matrixCell(0, 1, 512),  // a thin remote tail
	}}
	p := Propose(m, fm, blocks, Options{})
	if len(p.Moves) != 0 {
		t.Fatalf("planned %d moves, want 0 (local share dominates): %+v", len(p.Moves), p.Moves)
	}
	if p.PlannedNetBytes != p.StaticNetBytes {
		t.Fatalf("planned %d != static %d for an empty plan", p.PlannedNetBytes, p.StaticNetBytes)
	}
}

func TestProposeMinGainKeepsStatic(t *testing.T) {
	m := mustMachine(t, 2, 2)
	box := geometry.BoxFromSize([]int{4, 4})
	blocks := []Block{
		{Var: "u", Version: 0, Region: box, Owner: m.CoreOn(0, 0)},
		{Var: "w", Version: 0, Region: box, Owner: m.CoreOn(1, 0)},
	}
	fm := obs.FlowMatrix{Cells: []obs.FlowCell{
		matrixCell(0, 1, 100),   // u: tiny win from moving to node 1
		matrixCell(1, 1, 10000), // w stays put
		matrixCell(1, 0, 9000),  // and accounts for most inter-node bytes
	}}
	if p := Propose(m, fm, blocks, Options{MinGain: 0.5}); len(p.Moves) != 0 {
		t.Fatalf("planned %d moves under a 50%% gain floor, want 0", len(p.Moves))
	}
	if p := Propose(m, fm, blocks, Options{}); len(p.Moves) == 0 {
		t.Fatalf("planned no moves without a gain floor, want the small win taken")
	}
}

func TestProposeMaxMovesTakesLargestGains(t *testing.T) {
	m := mustMachine(t, 3, 1)
	boxA := geometry.NewBBox(geometry.Point{0, 0}, geometry.Point{4, 4})
	boxB := geometry.NewBBox(geometry.Point{4, 0}, geometry.Point{8, 4})
	blocks := []Block{
		{Var: "a", Version: 0, Region: boxA, Owner: m.CoreOn(0, 0)},
		{Var: "b", Version: 0, Region: boxB, Owner: m.CoreOn(1, 0)},
	}
	fm := obs.FlowMatrix{Cells: []obs.FlowCell{
		matrixCell(0, 2, 100),
		matrixCell(1, 2, 900),
	}}
	p := Propose(m, fm, blocks, Options{MaxMoves: 1})
	if len(p.Moves) != 1 {
		t.Fatalf("planned %d moves, want 1", len(p.Moves))
	}
	if p.Moves[0].Block.Var != "b" {
		t.Fatalf("kept move %q, want the larger gain %q", p.Moves[0].Block.Var, "b")
	}
}

// TestApplyMigratesByteIdentically drives the full loop on an in-process
// fabric: stage on node 0, pull from node 1 (observing the skew), plan,
// apply, and require the re-pull to be byte-identical with zero inter-node
// coupled bytes.
func TestApplyMigratesByteIdentically(t *testing.T) {
	m := mustMachine(t, 2, 2)
	f := transport.NewFabric(m)
	domain := geometry.BoxFromSize([]int{8, 8})
	sp, err := cods.NewSpace(f, domain)
	if err != nil {
		t.Fatalf("NewSpace: %v", err)
	}
	ledger := membership.NewLedger()
	sp.SetPutRecorder(ledger)

	const prodApp, consApp = 1, 2
	halves := []geometry.BBox{
		geometry.NewBBox(geometry.Point{0, 0}, geometry.Point{4, 8}),
		geometry.NewBBox(geometry.Point{4, 0}, geometry.Point{8, 8}),
	}
	for i, rg := range halves {
		h := sp.HandleAt(m.CoreOn(0, i), prodApp, "put")
		data := make([]float64, rg.Volume())
		for j := range data {
			data[j] = float64(i*1000 + j)
		}
		if err := h.PutSequential("u", 0, rg, data); err != nil {
			t.Fatalf("PutSequential: %v", err)
		}
	}
	consumer := sp.HandleAt(m.CoreOn(1, 0), consApp, "get")
	before, err := consumer.GetSequential("u", 0, domain)
	if err != nil {
		t.Fatalf("GetSequential (static): %v", err)
	}

	fm := obs.BuildFlowMatrix(m.Metrics().Flows(""))
	plan := Propose(m, fm, LedgerBlocks(ledger), Options{})
	if len(plan.Moves) != 2 {
		t.Fatalf("planned %d moves, want both staged halves: %+v", len(plan.Moves), plan)
	}
	moved, err := Apply(sp, ledger, plan, consApp, "remap")
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	if moved != 2 {
		t.Fatalf("moved %d blocks, want 2", moved)
	}

	netBefore := m.Metrics().Bytes(cluster.InterApp, cluster.Network)
	after, err := consumer.GetSequential("u", 0, domain)
	if err != nil {
		t.Fatalf("GetSequential (remapped): %v", err)
	}
	if len(after) != len(before) {
		t.Fatalf("result length changed: %d vs %d", len(after), len(before))
	}
	for i := range after {
		if after[i] != before[i] {
			t.Fatalf("cell %d differs after remap: %v vs %v", i, after[i], before[i])
		}
	}
	if d := m.Metrics().Bytes(cluster.InterApp, cluster.Network) - netBefore; d != 0 {
		t.Fatalf("remapped pull still moved %d inter-node coupled bytes, want 0", d)
	}
	// The ledger must have followed the migration.
	for _, b := range ledger.Blocks() {
		if got := m.NodeOf(b.Owner); got != 1 {
			t.Fatalf("ledger block %q still owned on node %d, want 1", b.Var, got)
		}
	}
}

func TestEvaluatePricesPlannedBelowStatic(t *testing.T) {
	m := mustMachine(t, 2, 2)
	sim, err := netsim.New(netsim.DefaultConfig(), m.NumNodes())
	if err != nil {
		t.Fatalf("netsim.New: %v", err)
	}
	box := geometry.BoxFromSize([]int{4, 4})
	blocks := []Block{{Var: "u", Version: 0, Region: box, Owner: m.CoreOn(0, 0)}}
	fm := obs.FlowMatrix{Cells: []obs.FlowCell{matrixCell(0, 1, 1<<20)}}
	plan := Propose(m, fm, blocks, Options{})
	if len(plan.Moves) != 1 {
		t.Fatalf("planned %d moves, want 1", len(plan.Moves))
	}
	static, planned := Evaluate(sim, m, fm, plan)
	if static.NetworkBytes != 1<<20 {
		t.Fatalf("static network bytes %d, want %d", static.NetworkBytes, 1<<20)
	}
	if planned.NetworkBytes != 0 {
		t.Fatalf("planned network bytes %d, want 0 (the reader owns the block now)", planned.NetworkBytes)
	}
	if planned.ShmBytes != 1<<20 {
		t.Fatalf("planned shm bytes %d, want %d", planned.ShmBytes, 1<<20)
	}
	if planned.Makespan >= static.Makespan {
		t.Fatalf("planned makespan %v not below static %v", planned.Makespan, static.Makespan)
	}
}
