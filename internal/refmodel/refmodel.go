// Package refmodel is the sequential reference model of CoDS semantics the
// conformance harness checks the real pipeline against (DESIGN §5e). It
// models the space as nothing but a map from (variable, version) to a set
// of stored n-D blocks, and answers gets by per-cell assembly.
//
// Everything here is deliberately naive and self-contained: region
// arithmetic is written out over BBox corners cell by cell, with no calls
// into geometry's Intersect/Coalesce/Offset, no SFC, no DHT, no schedule
// caching and no transport. The two implementations share only the BBox
// struct itself, so a seeded defect in any layer of the real pipeline
// (internal/mutate) diverges from the model instead of cancelling out.
package refmodel

import (
	"fmt"
	"sort"

	"github.com/insitu/cods/internal/geometry"
)

// Block is one stored region of a variable version, together with the core
// that holds it (Owner is what the DHT invariant compares against; use -1
// when ownership is irrelevant).
type Block struct {
	Region geometry.BBox
	Owner  int
	Data   []float64
}

// Model is the sequential reference store. It is not safe for concurrent
// use: the conformance driver mutates and queries it only between the
// joined phases of a scenario.
type Model struct {
	domain geometry.BBox
	vars   map[string]map[int][]Block // variable -> version -> blocks
}

// New creates an empty model over the given domain.
func New(domain geometry.BBox) *Model {
	return &Model{domain: domain, vars: make(map[string]map[int][]Block)}
}

// blocks returns the block list of a variable version (nil when none).
func (m *Model) blocks(v string, version int) []Block {
	return m.vars[v][version]
}

// Put stores one block. It rejects data of the wrong length, regions
// outside the domain and regions overlapping an already stored block of
// the same variable version — the producers of a valid scenario own
// disjoint blocks, and the model's per-cell Get depends on that.
func (m *Model) Put(v string, version int, region geometry.BBox, owner int, data []float64) error {
	if Volume(region) == 0 {
		return fmt.Errorf("refmodel: empty region %v for %q", region, v)
	}
	if int64(len(data)) != Volume(region) {
		return fmt.Errorf("refmodel: %q data length %d != region volume %d", v, len(data), Volume(region))
	}
	if !containsBox(m.domain, region) {
		return fmt.Errorf("refmodel: region %v outside domain %v", region, m.domain)
	}
	for _, b := range m.blocks(v, version) {
		if Overlaps(b.Region, region) {
			return fmt.Errorf("refmodel: region %v overlaps stored block %v of %q v%d",
				region, b.Region, v, version)
		}
	}
	if m.vars[v] == nil {
		m.vars[v] = make(map[int][]Block)
	}
	cp := make([]float64, len(data))
	copy(cp, data)
	m.vars[v][version] = append(m.vars[v][version], Block{Region: region.Clone(), Owner: owner, Data: cp})
	return nil
}

// Discard removes the block stored for exactly (region, owner); removing
// an absent block is an error (the driver only discards what it put).
func (m *Model) Discard(v string, version int, region geometry.BBox, owner int) error {
	blocks := m.blocks(v, version)
	for i, b := range blocks {
		if b.Owner == owner && b.Region.Equal(region) {
			m.vars[v][version] = append(blocks[:i:i], blocks[i+1:]...)
			return nil
		}
	}
	return fmt.Errorf("refmodel: no block %v owned by %d for %q v%d", region, owner, v, version)
}

// Move re-homes the block stored for exactly (region, from) onto another
// owner, keeping its data — the model mirror of one adaptive-remap
// migration (discard at the source, restage at the target).
func (m *Model) Move(v string, version int, region geometry.BBox, from, to int) error {
	for _, b := range m.blocks(v, version) {
		if b.Owner == from && b.Region.Equal(region) {
			if err := m.Discard(v, version, region, from); err != nil {
				return err
			}
			return m.Put(v, version, region, to, b.Data)
		}
	}
	return fmt.Errorf("refmodel: no block %v owned by %d for %q v%d to move", region, from, v, version)
}

// Get assembles the cells of region row-major from the stored blocks,
// cell by cell. Every cell must be covered by exactly the blocks' data;
// an uncovered cell is an error naming the shortfall, mirroring the real
// coverage error.
func (m *Model) Get(v string, version int, region geometry.BBox) ([]float64, error) {
	vol := Volume(region)
	if vol == 0 {
		return nil, fmt.Errorf("refmodel: empty get region %v for %q", region, v)
	}
	blocks := m.blocks(v, version)
	out := make([]float64, vol)
	var covered int64
	i := 0
	eachCell(region, func(p []int) {
		for _, b := range blocks {
			if containsCell(b.Region, p) {
				out[i] = b.Data[cellOffset(b.Region, p)]
				covered++
				break
			}
		}
		i++
	})
	if covered != vol {
		return nil, fmt.Errorf("refmodel: %q v%d: stored data covers %d of %d cells of %v",
			v, version, covered, vol, region)
	}
	return out, nil
}

// Owners predicts the exact answer of a DHT query for the region: every
// stored block whose region shares at least one cell with it, sorted by
// owner then region corners (the order the real lookup service returns).
func (m *Model) Owners(v string, version int, region geometry.BBox) []Block {
	var out []Block
	for _, b := range m.blocks(v, version) {
		if Overlaps(b.Region, region) {
			out = append(out, b)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Owner != out[j].Owner {
			return out[i].Owner < out[j].Owner
		}
		return compareBoxes(out[i].Region, out[j].Region) < 0
	})
	return out
}

// Volume counts the cells of a box, treating any inverted extent as empty.
func Volume(b geometry.BBox) int64 {
	if len(b.Min) == 0 {
		return 0
	}
	v := int64(1)
	for d := range b.Min {
		ext := int64(b.Max[d]) - int64(b.Min[d])
		if ext <= 0 {
			return 0
		}
		v *= ext
	}
	return v
}

// IntersectionVolume counts the cells two boxes share, dimension by
// dimension, without constructing the intersection box.
func IntersectionVolume(a, b geometry.BBox) int64 {
	if len(a.Min) == 0 || len(a.Min) != len(b.Min) {
		return 0
	}
	v := int64(1)
	for d := range a.Min {
		lo, hi := a.Min[d], a.Max[d]
		if b.Min[d] > lo {
			lo = b.Min[d]
		}
		if b.Max[d] < hi {
			hi = b.Max[d]
		}
		if hi <= lo {
			return 0
		}
		v *= int64(hi - lo)
	}
	return v
}

// Overlaps reports whether two boxes share at least one cell.
func Overlaps(a, b geometry.BBox) bool { return IntersectionVolume(a, b) > 0 }

// CellSet enumerates the cells of a box as "x,y,z" strings — the
// ground-truth set representation the differential fuzz target compares
// geometry's interval arithmetic against. Intended for small boxes only.
func CellSet(b geometry.BBox) map[string]bool {
	set := make(map[string]bool, Volume(b))
	eachCell(b, func(p []int) {
		set[cellKey(p)] = true
	})
	return set
}

// IntersectCellSet returns the cells in both boxes, by membership test.
func IntersectCellSet(a, b geometry.BBox) map[string]bool {
	set := make(map[string]bool)
	eachCell(a, func(p []int) {
		if containsCell(b, p) {
			set[cellKey(p)] = true
		}
	})
	return set
}

// UnionVolume counts the distinct cells covered by a list of boxes, by
// materializing the union cell set. Intended for small boxes only.
func UnionVolume(boxes []geometry.BBox) int64 {
	set := make(map[string]bool)
	for _, b := range boxes {
		eachCell(b, func(p []int) {
			set[cellKey(p)] = true
		})
	}
	return int64(len(set))
}

func cellKey(p []int) string {
	s := ""
	for d, x := range p {
		if d > 0 {
			s += ","
		}
		s += fmt.Sprint(x)
	}
	return s
}

// eachCell visits the cells of a box in row-major order (last dimension
// fastest), the layout both the model and the real space use.
func eachCell(b geometry.BBox, fn func(p []int)) {
	if Volume(b) == 0 {
		return
	}
	p := make([]int, len(b.Min))
	copy(p, b.Min)
	for {
		fn(p)
		d := len(p) - 1
		for d >= 0 {
			p[d]++
			if p[d] < b.Max[d] {
				break
			}
			p[d] = b.Min[d]
			d--
		}
		if d < 0 {
			return
		}
	}
}

// containsCell tests cell membership against the box corners.
func containsCell(b geometry.BBox, p []int) bool {
	if len(p) != len(b.Min) {
		return false
	}
	for d := range p {
		if p[d] < b.Min[d] || p[d] >= b.Max[d] {
			return false
		}
	}
	return true
}

// containsBox reports whether inner lies fully inside outer.
func containsBox(outer, inner geometry.BBox) bool {
	if len(outer.Min) != len(inner.Min) {
		return false
	}
	for d := range outer.Min {
		if inner.Min[d] < outer.Min[d] || inner.Max[d] > outer.Max[d] {
			return false
		}
	}
	return true
}

// cellOffset converts a cell to its row-major offset inside a box.
func cellOffset(b geometry.BBox, p []int) int64 {
	var off int64
	for d := range b.Min {
		off = off*int64(b.Max[d]-b.Min[d]) + int64(p[d]-b.Min[d])
	}
	return off
}

// compareBoxes orders boxes by Min then Max corners, mirroring the sort
// the real lookup service applies to query answers.
func compareBoxes(a, b geometry.BBox) int {
	for d := range a.Min {
		if a.Min[d] != b.Min[d] {
			if a.Min[d] < b.Min[d] {
				return -1
			}
			return 1
		}
	}
	for d := range a.Max {
		if a.Max[d] != b.Max[d] {
			if a.Max[d] < b.Max[d] {
				return -1
			}
			return 1
		}
	}
	return 0
}
