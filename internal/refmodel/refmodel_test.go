package refmodel

import (
	"strings"
	"testing"

	"github.com/insitu/cods/internal/geometry"
)

func box(min, max []int) geometry.BBox {
	return geometry.BBox{Min: min, Max: max}
}

func fill(b geometry.BBox, base float64) []float64 {
	data := make([]float64, Volume(b))
	for i := range data {
		data[i] = base + float64(i)
	}
	return data
}

func TestPutGetRoundTrip(t *testing.T) {
	domain := box([]int{0, 0}, []int{8, 8})
	m := New(domain)
	left := box([]int{0, 0}, []int{8, 4})
	right := box([]int{0, 4}, []int{8, 8})
	if err := m.Put("u", 0, left, 1, fill(left, 100)); err != nil {
		t.Fatal(err)
	}
	if err := m.Put("u", 0, right, 2, fill(right, 200)); err != nil {
		t.Fatal(err)
	}
	// A whole-domain get stitches the two blocks back together row-major.
	got, err := m.Get("u", 0, domain)
	if err != nil {
		t.Fatal(err)
	}
	// Row 0 is left's first 4 cells then right's first 4 cells.
	want := []float64{100, 101, 102, 103, 200, 201, 202, 203}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("cell %d = %v, want %v", i, got[i], w)
		}
	}
	// A sub-region crossing the seam.
	sub := box([]int{2, 2}, []int{3, 6})
	got, err = m.Get("u", 0, sub)
	if err != nil {
		t.Fatal(err)
	}
	// Row 2 of left is cells 8..11 (base 100), of right 8..11 (base 200).
	want = []float64{110, 111, 208, 209}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("seam cell %d = %v, want %v", i, got[i], w)
		}
	}
}

func TestGetReportsCoverageShortfall(t *testing.T) {
	domain := box([]int{0}, []int{8})
	m := New(domain)
	if err := m.Put("u", 0, box([]int{0}, []int{4}), 0, fill(box([]int{0}, []int{4}), 0)); err != nil {
		t.Fatal(err)
	}
	_, err := m.Get("u", 0, box([]int{2}, []int{6}))
	if err == nil || !strings.Contains(err.Error(), "covers 2 of 4") {
		t.Fatalf("err = %v, want coverage shortfall", err)
	}
	// Wrong version: nothing stored at all.
	if _, err := m.Get("u", 1, box([]int{0}, []int{2})); err == nil {
		t.Fatal("get of unstored version succeeded")
	}
}

func TestPutValidation(t *testing.T) {
	domain := box([]int{0, 0}, []int{4, 4})
	m := New(domain)
	b := box([]int{0, 0}, []int{2, 2})
	if err := m.Put("u", 0, b, 0, fill(b, 0)); err != nil {
		t.Fatal(err)
	}
	if err := m.Put("u", 0, box([]int{1, 1}, []int{3, 3}), 1, fill(b, 0)); err == nil {
		t.Fatal("overlapping put accepted")
	}
	if err := m.Put("u", 0, box([]int{2, 2}, []int{6, 6}), 1, make([]float64, 16)); err == nil {
		t.Fatal("out-of-domain put accepted")
	}
	if err := m.Put("u", 0, box([]int{2, 2}, []int{3, 3}), 1, nil); err == nil {
		t.Fatal("wrong-length put accepted")
	}
	// Same region at a different version is independent.
	if err := m.Put("u", 1, b, 0, fill(b, 9)); err != nil {
		t.Fatal(err)
	}
}

func TestDiscardAndOwners(t *testing.T) {
	domain := box([]int{0}, []int{8})
	m := New(domain)
	a, b := box([]int{0}, []int{4}), box([]int{4}, []int{8})
	if err := m.Put("u", 0, a, 3, fill(a, 0)); err != nil {
		t.Fatal(err)
	}
	if err := m.Put("u", 0, b, 1, fill(b, 0)); err != nil {
		t.Fatal(err)
	}
	owners := m.Owners("u", 0, box([]int{3}, []int{5}))
	if len(owners) != 2 || owners[0].Owner != 1 || owners[1].Owner != 3 {
		t.Fatalf("owners = %+v, want owner-sorted {1,3}", owners)
	}
	if got := m.Owners("u", 0, box([]int{5}, []int{6})); len(got) != 1 || got[0].Owner != 1 {
		t.Fatalf("owners = %+v, want only owner 1", got)
	}
	if err := m.Discard("u", 0, a, 3); err != nil {
		t.Fatal(err)
	}
	if err := m.Discard("u", 0, a, 3); err == nil {
		t.Fatal("double discard succeeded")
	}
	if got := m.Owners("u", 0, box([]int{3}, []int{5})); len(got) != 1 {
		t.Fatalf("owners after discard = %+v", got)
	}
	// Restage at a new owner is visible.
	if err := m.Put("u", 0, a, 7, fill(a, 0)); err != nil {
		t.Fatal(err)
	}
	if got := m.Owners("u", 0, a); len(got) != 1 || got[0].Owner != 7 {
		t.Fatalf("owners after restage = %+v", got)
	}
}

func TestNaiveArithmeticAgreesWithGeometry(t *testing.T) {
	// The naive helpers must agree with the package geometry operations on
	// a brute-force sweep of small boxes; the conformance harness depends
	// on the two implementations being independent but equivalent.
	boxes := []geometry.BBox{
		box([]int{0, 0}, []int{4, 4}),
		box([]int{2, 1}, []int{5, 3}),
		box([]int{4, 4}, []int{6, 6}),
		box([]int{0, 3}, []int{1, 9}),
		box([]int{3, 3}, []int{3, 5}), // empty
	}
	for _, a := range boxes {
		if got, want := Volume(a), a.Volume(); got != want {
			t.Fatalf("Volume(%v) = %d, geometry says %d", a, got, want)
		}
		for _, b := range boxes {
			gotV := IntersectionVolume(a, b)
			inter, ok := a.Intersect(b)
			wantV := int64(0)
			if ok {
				wantV = inter.Volume()
			}
			if gotV != wantV {
				t.Fatalf("IntersectionVolume(%v, %v) = %d, geometry says %d", a, b, gotV, wantV)
			}
			if Overlaps(a, b) != ok {
				t.Fatalf("Overlaps(%v, %v) disagrees with geometry", a, b)
			}
			if !a.Empty() && !b.Empty() {
				if got := int64(len(IntersectCellSet(a, b))); got != wantV {
					t.Fatalf("IntersectCellSet(%v, %v) has %d cells, want %d", a, b, got, wantV)
				}
			}
		}
	}
	// Union of disjoint pieces equals total volume; overlapping pieces
	// count shared cells once.
	u := UnionVolume([]geometry.BBox{boxes[0], boxes[2]})
	if u != boxes[0].Volume()+boxes[2].Volume() {
		t.Fatalf("disjoint union = %d", u)
	}
	u = UnionVolume([]geometry.BBox{boxes[0], boxes[1]})
	if want := boxes[0].Volume() + boxes[1].Volume() - IntersectionVolume(boxes[0], boxes[1]); u != want {
		t.Fatalf("overlapping union = %d, want %d", u, want)
	}
}
