package refmodel

import (
	"fmt"

	"github.com/insitu/cods/internal/geometry"
)

// Stream is the sequential reference of the streaming coupling semantics
// (DESIGN §5i), layered over the versioned Model exactly as the real
// stream layer sits over the sequential put/get path: version n of the
// stream is every producer rank's nth published block, the complete
// watermark is the highest version every rank has staged, and retirement
// — whether consumed or forced by the drop-oldest policy — removes the
// version's blocks from the model so a later get fails its coverage
// check, mirroring the real GC.
//
// Like the Model it is single-threaded by design: the conformance driver
// applies the same operations to both sides in the same order and
// compares watermarks, floors, cursor positions, per-version accounting
// and bytes.
type Stream struct {
	m      *Model
	v      string
	maxLag int
	drop   bool

	pub    []int
	closed []bool
	latest int
	floor  int

	cursors map[int]int // subscriber id -> lowest unacknowledged version
	nextSub int

	published, consumed, dropped int64
}

// NewStream declares a stream over variable v of the model, with the same
// shape parameters as the real StreamConfig (drop selects drop-oldest
// over backpressure).
func NewStream(m *Model, v string, producers, maxLag int, drop bool) *Stream {
	return &Stream{
		m:       m,
		v:       v,
		maxLag:  maxLag,
		drop:    drop,
		pub:     make([]int, producers),
		closed:  make([]bool, producers),
		latest:  -1,
		cursors: make(map[int]int),
	}
}

// minPos returns the lowest cursor position, or latest+1 when no cursor
// is subscribed.
func (s *Stream) minPos() int {
	min := s.latest + 1
	first := true
	for _, pos := range s.cursors {
		if first || pos < min {
			min = pos
			first = false
		}
	}
	return min
}

func (s *Stream) complete() int {
	min := s.pub[0]
	for _, n := range s.pub[1:] {
		if n < min {
			min = n
		}
	}
	return min - 1
}

// retire removes every block of a version from the model.
func (s *Stream) retire(version int) {
	for _, b := range append([]Block(nil), s.m.blocks(s.v, version)...) {
		s.m.Discard(s.v, version, b.Region, b.Owner)
	}
}

// Publish stamps producer rank's next version with one block. It returns
// the version stamped. A watermark advance under the drop-oldest policy
// force-retires versions older than maxLag behind, bumping lagging
// cursors past them and counting each skipped version as dropped.
func (s *Stream) Publish(producer int, region geometry.BBox, owner int, data []float64) (int, error) {
	if producer < 0 || producer >= len(s.pub) {
		return 0, fmt.Errorf("refmodel: stream %q: producer %d out of range", s.v, producer)
	}
	if s.closed[producer] {
		return 0, fmt.Errorf("refmodel: stream %q: producer %d closed", s.v, producer)
	}
	ver := s.pub[producer]
	if err := s.m.Put(s.v, ver, region, owner, data); err != nil {
		return 0, err
	}
	s.pub[producer] = ver + 1
	s.published++
	was := s.latest
	s.latest = s.complete()
	if s.latest > was && s.drop {
		bound := s.latest - s.maxLag + 1
		for v := s.floor; v < bound; v++ {
			for id, pos := range s.cursors {
				if pos <= v {
					s.cursors[id] = v + 1
					s.dropped++
				}
			}
			s.retire(v)
			s.floor = v + 1
		}
	}
	return ver, nil
}

// ClosePublisher marks producer rank's sequence finished.
func (s *Stream) ClosePublisher(producer int) { s.closed[producer] = true }

// Ended reports whether every producer rank has closed.
func (s *Stream) Ended() bool {
	for _, c := range s.closed {
		if !c {
			return false
		}
	}
	return true
}

// Subscribe opens a cursor at version from, clamped up to the floor, and
// returns its id and starting position.
func (s *Stream) Subscribe(from int) (id, pos int) {
	pos = from
	if pos < s.floor {
		pos = s.floor
	}
	id = s.nextSub
	s.nextSub++
	s.cursors[id] = pos
	return id, pos
}

// Close removes a cursor.
func (s *Stream) Close(id int) error {
	if _, ok := s.cursors[id]; !ok {
		return fmt.Errorf("refmodel: stream %q: no cursor %d", s.v, id)
	}
	delete(s.cursors, id)
	return nil
}

// Pos returns a cursor's position.
func (s *Stream) Pos(id int) (int, error) {
	pos, ok := s.cursors[id]
	if !ok {
		return 0, fmt.Errorf("refmodel: stream %q: no cursor %d", s.v, id)
	}
	return pos, nil
}

// Latest returns the complete watermark; Floor the lowest retained
// version.
func (s *Stream) Latest() int { return s.latest }
func (s *Stream) Floor() int  { return s.floor }

// Stats returns the per-version accounting.
func (s *Stream) Stats() (published, consumed, dropped int64) {
	return s.published, s.consumed, s.dropped
}

// GetWindow assembles versions from..to (inclusive) of region, one
// row-major slice per version. The window must start at or after both the
// cursor position and the floor, and end at or below the watermark (the
// model never blocks — the driver only asks for complete versions).
func (s *Stream) GetWindow(id int, region geometry.BBox, from, to int) ([][]float64, error) {
	pos, ok := s.cursors[id]
	if !ok {
		return nil, fmt.Errorf("refmodel: stream %q: no cursor %d", s.v, id)
	}
	if to < from {
		return nil, fmt.Errorf("refmodel: stream %q: inverted window [%d,%d]", s.v, from, to)
	}
	if from < pos || from < s.floor {
		return nil, fmt.Errorf("refmodel: stream %q: window start %d behind cursor %d / floor %d",
			s.v, from, pos, s.floor)
	}
	if to > s.latest {
		return nil, fmt.Errorf("refmodel: stream %q: window end %d past watermark %d", s.v, to, s.latest)
	}
	out := make([][]float64, 0, to-from+1)
	for ver := from; ver <= to; ver++ {
		data, err := s.m.Get(s.v, ver, region)
		if err != nil {
			return nil, err
		}
		out = append(out, data)
	}
	return out, nil
}

// GetLatest assembles region at the watermark and returns the version
// read.
func (s *Stream) GetLatest(region geometry.BBox) ([]float64, int, error) {
	if s.latest < 0 {
		return nil, 0, fmt.Errorf("refmodel: stream %q: no complete version", s.v)
	}
	data, err := s.m.Get(s.v, s.latest, region)
	if err != nil {
		return nil, 0, err
	}
	return data, s.latest, nil
}

// Advance acknowledges every version below to for a cursor, then retires
// versions every cursor has passed.
func (s *Stream) Advance(id, to int) error {
	pos, ok := s.cursors[id]
	if !ok {
		return fmt.Errorf("refmodel: stream %q: no cursor %d", s.v, id)
	}
	if to < pos {
		return fmt.Errorf("refmodel: stream %q: advance to %d behind cursor %d", s.v, to, pos)
	}
	if to > s.latest+1 {
		return fmt.Errorf("refmodel: stream %q: advance to %d past watermark %d", s.v, to, s.latest)
	}
	s.consumed += int64(to - pos)
	s.cursors[id] = to
	bound := s.minPos()
	for v := s.floor; v < bound; v++ {
		s.retire(v)
		s.floor = v + 1
	}
	return nil
}
