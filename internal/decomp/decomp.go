// Package decomp describes how a regular multi-dimensional data domain is
// decomposed across the computation tasks of a data-parallel application.
//
// Following Section III-B of the paper, a decomposition is specified by the
// domain size (s1..sn), the process layout (p1..pn), a distribution kind and
// a block size. Three distribution kinds are supported: standard blocked,
// cyclic and block-cyclic. Ranks map to process-grid coordinates in
// row-major order (last dimension fastest).
//
// All distributions are tensor products of per-dimension 1-D distributions,
// which the package exploits: the overlap volume between a task of one
// application and a task of another factors into per-dimension overlap
// counts (OverlapMatrix), so the full M x N inter-application communication
// graph is computable without enumerating cells.
package decomp

import (
	"fmt"

	"github.com/insitu/cods/internal/geometry"
)

// Kind identifies a data distribution type.
type Kind int

// The three distribution types from the paper.
const (
	Blocked Kind = iota
	Cyclic
	BlockCyclic
)

// String returns the lower-case name of the kind.
func (k Kind) String() string {
	switch k {
	case Blocked:
		return "blocked"
	case Cyclic:
		return "cyclic"
	case BlockCyclic:
		return "block-cyclic"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// ParseKind converts a distribution name to its Kind.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "blocked":
		return Blocked, nil
	case "cyclic":
		return Cyclic, nil
	case "block-cyclic", "blockcyclic":
		return BlockCyclic, nil
	}
	return 0, fmt.Errorf("decomp: unknown distribution kind %q", s)
}

// Interval is a half-open 1-D range [Lo, Hi).
type Interval struct {
	Lo, Hi int
}

// Decomposition maps the cells of a domain onto the ranks of a process
// grid.
type Decomposition struct {
	domain geometry.BBox
	grid   []int
	kind   Kind
	block  []int // block size per dimension (BlockCyclic); 1 for Cyclic
}

// New creates a decomposition of domain across a process grid. block is the
// per-dimension block size and is only consulted for BlockCyclic (Cyclic
// always uses block 1; Blocked ignores it). Passing nil block for
// BlockCyclic is an error.
func New(kind Kind, domain geometry.BBox, grid []int, block []int) (*Decomposition, error) {
	if domain.Empty() {
		return nil, fmt.Errorf("decomp: empty domain %v", domain)
	}
	if len(grid) != domain.Dim() {
		return nil, fmt.Errorf("decomp: grid rank %d != domain dimension %d", len(grid), domain.Dim())
	}
	for d, p := range grid {
		if p < 1 {
			return nil, fmt.Errorf("decomp: grid[%d] = %d < 1", d, p)
		}
		if p > domain.Size(d) {
			return nil, fmt.Errorf("decomp: grid[%d] = %d exceeds domain extent %d", d, p, domain.Size(d))
		}
	}
	dc := &Decomposition{domain: domain.Clone(), grid: append([]int(nil), grid...), kind: kind}
	switch kind {
	case Blocked:
		dc.block = nil
	case Cyclic:
		dc.block = make([]int, len(grid))
		for d := range dc.block {
			dc.block[d] = 1
		}
	case BlockCyclic:
		if len(block) != domain.Dim() {
			return nil, fmt.Errorf("decomp: block rank %d != domain dimension %d", len(block), domain.Dim())
		}
		for d, b := range block {
			if b < 1 {
				return nil, fmt.Errorf("decomp: block[%d] = %d < 1", d, b)
			}
		}
		dc.block = append([]int(nil), block...)
	default:
		return nil, fmt.Errorf("decomp: unknown kind %d", int(kind))
	}
	return dc, nil
}

// Domain returns the decomposed domain.
func (dc *Decomposition) Domain() geometry.BBox { return dc.domain.Clone() }

// Grid returns the process layout.
func (dc *Decomposition) Grid() []int { return append([]int(nil), dc.grid...) }

// Kind returns the distribution type.
func (dc *Decomposition) Kind() Kind { return dc.kind }

// NumTasks returns the number of ranks (the product of the process grid).
func (dc *Decomposition) NumTasks() int {
	n := 1
	for _, p := range dc.grid {
		n *= p
	}
	return n
}

// GridCoord converts a rank to its process-grid coordinate (row-major, last
// dimension fastest).
func (dc *Decomposition) GridCoord(rank int) []int {
	if rank < 0 || rank >= dc.NumTasks() {
		panic(fmt.Sprintf("decomp: rank %d out of range [0,%d)", rank, dc.NumTasks()))
	}
	coord := make([]int, len(dc.grid))
	for d := len(dc.grid) - 1; d >= 0; d-- {
		coord[d] = rank % dc.grid[d]
		rank /= dc.grid[d]
	}
	return coord
}

// RankOf converts a process-grid coordinate back to a rank.
func (dc *Decomposition) RankOf(coord []int) int {
	if len(coord) != len(dc.grid) {
		panic("decomp: coordinate rank mismatch")
	}
	rank := 0
	for d := 0; d < len(dc.grid); d++ {
		if coord[d] < 0 || coord[d] >= dc.grid[d] {
			panic(fmt.Sprintf("decomp: grid coordinate %v outside grid %v", coord, dc.grid))
		}
		rank = rank*dc.grid[d] + coord[d]
	}
	return rank
}

// ownerOf1D returns the grid coordinate owning relative index g (g is the
// offset from the domain lower bound) in dimension d.
func (dc *Decomposition) ownerOf1D(d, g int) int {
	p := dc.grid[d]
	switch dc.kind {
	case Blocked:
		s := dc.domain.Size(d)
		// Balanced blocked split: coordinate c owns [c*s/p, (c+1)*s/p).
		// Invert with a direct formula then adjust for rounding.
		c := (g*p + p - 1) / s
		for c > 0 && blockLo(c, s, p) > g {
			c--
		}
		for c < p-1 && blockLo(c+1, s, p) <= g {
			c++
		}
		return c
	case Cyclic:
		return g % p
	case BlockCyclic:
		return (g / dc.block[d]) % p
	}
	panic("decomp: unknown kind")
}

// blockLo returns the inclusive start of blocked chunk c for extent s over
// p processes.
func blockLo(c, s, p int) int { return c * s / p }

// OwnerOf returns the rank owning cell p of the domain.
func (dc *Decomposition) OwnerOf(pt geometry.Point) int {
	if !dc.domain.Contains(pt) {
		panic(fmt.Sprintf("decomp: point %v outside domain %v", pt, dc.domain))
	}
	coord := make([]int, len(dc.grid))
	for d := range coord {
		coord[d] = dc.ownerOf1D(d, pt[d]-dc.domain.Min[d])
	}
	return dc.RankOf(coord)
}

// Intervals returns the 1-D intervals (in absolute domain coordinates) of
// dimension d owned by grid coordinate c, clipped to [lo, hi). lo and hi
// are absolute coordinates.
func (dc *Decomposition) Intervals(d, c, lo, hi int) []Interval {
	base := dc.domain.Min[d]
	s := dc.domain.Size(d)
	p := dc.grid[d]
	if lo < base {
		lo = base
	}
	if hi > base+s {
		hi = base + s
	}
	if lo >= hi {
		return nil
	}
	switch dc.kind {
	case Blocked:
		a := base + blockLo(c, s, p)
		b := base + blockLo(c+1, s, p)
		if a < lo {
			a = lo
		}
		if b > hi {
			b = hi
		}
		if a >= b {
			return nil
		}
		return []Interval{{a, b}}
	case Cyclic, BlockCyclic:
		bs := dc.block[d]
		stride := bs * p
		// Blocks of coordinate c start (relative to base) at c*bs + q*stride
		// for q = 0,1,... Find the first q whose block reaches past lo.
		relLo := lo - base
		q := 0
		if over := relLo - c*bs - bs; over >= 0 {
			q = over/stride + 1
		}
		var out []Interval
		for start := base + c*bs + q*stride; start < hi; start += stride {
			a, b := start, start+bs
			if a < lo {
				a = lo
			}
			if b > hi {
				b = hi
			}
			if a < b {
				out = append(out, Interval{a, b})
			}
		}
		return out
	}
	panic("decomp: unknown kind")
}

// Pieces returns the disjoint boxes of rank's owned region intersected with
// the box within. The result is empty when the rank owns nothing inside
// within.
func (dc *Decomposition) Pieces(rank int, within geometry.BBox) []geometry.BBox {
	q, ok := within.Intersect(dc.domain)
	if !ok {
		return nil
	}
	coord := dc.GridCoord(rank)
	perDim := make([][]Interval, dc.domain.Dim())
	for d := range perDim {
		perDim[d] = dc.Intervals(d, coord[d], q.Min[d], q.Max[d])
		if len(perDim[d]) == 0 {
			return nil
		}
	}
	// Cartesian product of per-dimension intervals.
	var out []geometry.BBox
	idx := make([]int, len(perDim))
	for {
		min := make(geometry.Point, len(perDim))
		max := make(geometry.Point, len(perDim))
		for d := range perDim {
			iv := perDim[d][idx[d]]
			min[d], max[d] = iv.Lo, iv.Hi
		}
		out = append(out, geometry.BBox{Min: min, Max: max})
		d := len(perDim) - 1
		for d >= 0 {
			idx[d]++
			if idx[d] < len(perDim[d]) {
				break
			}
			idx[d] = 0
			d--
		}
		if d < 0 {
			return out
		}
	}
}

// Region returns all boxes owned by rank across the whole domain. For
// Blocked this is a single box; for (block-)cyclic it may be many.
func (dc *Decomposition) Region(rank int) []geometry.BBox {
	return dc.Pieces(rank, dc.domain)
}

// OwnedVolume returns the number of cells owned by rank.
func (dc *Decomposition) OwnedVolume(rank int) int64 {
	coord := dc.GridCoord(rank)
	v := int64(1)
	for d := range dc.grid {
		var n int64
		for _, iv := range dc.Intervals(d, coord[d], dc.domain.Min[d], dc.domain.Max[d]) {
			n += int64(iv.Hi - iv.Lo)
		}
		v *= n
	}
	return v
}

// GhostRegions returns, for each owned box of rank, the box expanded by a
// ghost (halo) margin of the given width, clipped to the domain. Consumer
// applications use these to retrieve their region of interest including
// the boundary cells their stencils need.
func (dc *Decomposition) GhostRegions(rank, width int) []geometry.BBox {
	owned := dc.Region(rank)
	out := make([]geometry.BBox, len(owned))
	for i, b := range owned {
		out[i] = b.Expand(width, dc.domain)
	}
	return out
}

// BlockContaining returns the maximal owned tensor block that contains
// point pt: the box whose per-dimension extent is the full owned interval
// of the owning rank around pt. Producers store (and expose) data at this
// block granularity, and consumers use the same function to derive the
// buffer key for a cell they need.
func (dc *Decomposition) BlockContaining(pt geometry.Point) geometry.BBox {
	if !dc.domain.Contains(pt) {
		panic(fmt.Sprintf("decomp: point %v outside domain %v", pt, dc.domain))
	}
	min := make(geometry.Point, len(dc.grid))
	max := make(geometry.Point, len(dc.grid))
	for d := range dc.grid {
		base := dc.domain.Min[d]
		s := dc.domain.Size(d)
		p := dc.grid[d]
		g := pt[d] - base
		switch dc.kind {
		case Blocked:
			c := dc.ownerOf1D(d, g)
			min[d] = base + blockLo(c, s, p)
			max[d] = base + blockLo(c+1, s, p)
		case Cyclic, BlockCyclic:
			bs := dc.block[d]
			start := g - g%bs
			min[d] = base + start
			max[d] = base + start + bs
			if max[d] > base+s {
				max[d] = base + s
			}
		}
	}
	return geometry.BBox{Min: min, Max: max}
}

// Overlap answers rank-pair overlap-volume queries between two
// decompositions of the same domain without materializing the full
// num_task x num_task matrix.
//
// Because both distributions are tensor products, the overlap factors per
// dimension: a joint ownership histogram is computed along each axis in
// O(extent) time and the rank-pair volume is the product of the per-axis
// counts. This is what makes building paper-scale (8192-task)
// communication graphs cheap.
type Overlap struct {
	a, b  *Decomposition
	joint [][]int64 // joint[d][ca*pb+cb]
}

// NewOverlap prepares overlap queries between decompositions a and b,
// which must decompose the same domain.
func NewOverlap(a, b *Decomposition) (*Overlap, error) {
	if !a.domain.Equal(b.domain) {
		return nil, fmt.Errorf("decomp: overlap requires identical domains, got %v and %v", a.domain, b.domain)
	}
	dim := a.domain.Dim()
	joint := make([][]int64, dim)
	for d := 0; d < dim; d++ {
		pa, pb := a.grid[d], b.grid[d]
		j := make([]int64, pa*pb)
		for g := 0; g < a.domain.Size(d); g++ {
			ca := a.ownerOf1D(d, g)
			cb := b.ownerOf1D(d, g)
			j[ca*pb+cb]++
		}
		joint[d] = j
	}
	return &Overlap{a: a, b: b, joint: joint}, nil
}

// A returns the first decomposition of the pair.
func (o *Overlap) A() *Decomposition { return o.a }

// B returns the second decomposition of the pair.
func (o *Overlap) B() *Decomposition { return o.b }

// Volume returns the overlap in cells between rank ra of a and rank rb of
// b.
func (o *Overlap) Volume(ra, rb int) int64 {
	coordA := o.a.GridCoord(ra)
	coordB := o.b.GridCoord(rb)
	v := int64(1)
	for d := range o.joint {
		v *= o.joint[d][coordA[d]*o.b.grid[d]+coordB[d]]
		if v == 0 {
			return 0
		}
	}
	return v
}

// EachPair invokes fn for every rank pair with a non-zero overlap volume.
// Only non-zero combinations are enumerated: per dimension the overlapping
// grid-coordinate pairs are indexed up front, so a sparse coupling (e.g.
// blocked vs blocked, where each consumer touches a handful of producers)
// costs O(number of overlapping pairs), not O(na x nb).
func (o *Overlap) EachPair(fn func(ra, rb int, vol int64)) {
	dim := len(o.joint)
	// nz[d][ca] lists the b-coordinates overlapping a-coordinate ca in
	// dimension d.
	type entry struct {
		cb  int
		vol int64
	}
	nz := make([][][]entry, dim)
	for d := 0; d < dim; d++ {
		pa, pb := o.a.grid[d], o.b.grid[d]
		nz[d] = make([][]entry, pa)
		for ca := 0; ca < pa; ca++ {
			for cb := 0; cb < pb; cb++ {
				if v := o.joint[d][ca*pb+cb]; v > 0 {
					nz[d][ca] = append(nz[d][ca], entry{cb: cb, vol: v})
				}
			}
		}
	}
	na := o.a.NumTasks()
	var walk func(ra int, coordA []int, d, rbPrefix int, vol int64)
	walk = func(ra int, coordA []int, d, rbPrefix int, vol int64) {
		if d == dim {
			fn(ra, rbPrefix, vol)
			return
		}
		for _, e := range nz[d][coordA[d]] {
			walk(ra, coordA, d+1, rbPrefix*o.b.grid[d]+e.cb, vol*e.vol)
		}
	}
	for ra := 0; ra < na; ra++ {
		walk(ra, o.a.GridCoord(ra), 0, 0, 1)
	}
}

// OverlapMatrix computes the dense overlap matrix:
// result[ra][rb] = overlap volume of region_a(ra) and region_b(rb).
// Prefer Overlap for large task counts.
func OverlapMatrix(a, b *Decomposition) ([][]int64, error) {
	o, err := NewOverlap(a, b)
	if err != nil {
		return nil, err
	}
	na, nb := a.NumTasks(), b.NumTasks()
	out := make([][]int64, na)
	for ra := 0; ra < na; ra++ {
		out[ra] = make([]int64, nb)
	}
	o.EachPair(func(ra, rb int, vol int64) {
		out[ra][rb] = vol
	})
	return out, nil
}

// FanOut returns, for each rank of consumer, how many producer ranks its
// owned region overlaps. This is the 1-to-N effect of Figure 10: with
// matching distributions the fan-out stays small, with mismatched ones it
// approaches the producer task count.
func FanOut(consumer, producer *Decomposition) ([]int, error) {
	m, err := OverlapMatrix(consumer, producer)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(m))
	for rc := range m {
		n := 0
		for _, v := range m[rc] {
			if v > 0 {
				n++
			}
		}
		out[rc] = n
	}
	return out, nil
}

// String describes the decomposition.
func (dc *Decomposition) String() string {
	return fmt.Sprintf("%s domain=%v grid=%v block=%v", dc.kind, dc.domain, dc.grid, dc.block)
}
