package decomp

import (
	"math/rand"
	"testing"
	"testing/quick"

	"github.com/insitu/cods/internal/geometry"
)

func mustNew(t testing.TB, kind Kind, size, grid, block []int) *Decomposition {
	t.Helper()
	dc, err := New(kind, geometry.BoxFromSize(size), grid, block)
	if err != nil {
		t.Fatal(err)
	}
	return dc
}

func TestNewValidation(t *testing.T) {
	dom := geometry.BoxFromSize([]int{8, 8})
	if _, err := New(Blocked, dom, []int{2}, nil); err == nil {
		t.Error("grid rank mismatch accepted")
	}
	if _, err := New(Blocked, dom, []int{2, 0}, nil); err == nil {
		t.Error("zero grid extent accepted")
	}
	if _, err := New(Blocked, dom, []int{2, 16}, nil); err == nil {
		t.Error("grid larger than domain accepted")
	}
	if _, err := New(BlockCyclic, dom, []int{2, 2}, nil); err == nil {
		t.Error("block-cyclic without block size accepted")
	}
	if _, err := New(BlockCyclic, dom, []int{2, 2}, []int{2, 0}); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := New(Blocked, geometry.NewBBox(geometry.Point{0}, geometry.Point{0}), []int{1}, nil); err == nil {
		t.Error("empty domain accepted")
	}
}

func TestKindString(t *testing.T) {
	for _, c := range []struct {
		k    Kind
		want string
	}{{Blocked, "blocked"}, {Cyclic, "cyclic"}, {BlockCyclic, "block-cyclic"}} {
		if c.k.String() != c.want {
			t.Errorf("Kind(%d).String() = %q, want %q", int(c.k), c.k.String(), c.want)
		}
		back, err := ParseKind(c.want)
		if err != nil || back != c.k {
			t.Errorf("ParseKind(%q) = %v, %v", c.want, back, err)
		}
	}
	if _, err := ParseKind("fancy"); err == nil {
		t.Error("unknown kind parsed")
	}
}

func TestRankCoordRoundTrip(t *testing.T) {
	dc := mustNew(t, Blocked, []int{12, 8, 10}, []int{3, 2, 5}, nil)
	if dc.NumTasks() != 30 {
		t.Fatalf("NumTasks = %d", dc.NumTasks())
	}
	for r := 0; r < dc.NumTasks(); r++ {
		if got := dc.RankOf(dc.GridCoord(r)); got != r {
			t.Fatalf("RankOf(GridCoord(%d)) = %d", r, got)
		}
	}
	// Row-major: last dim fastest.
	c := dc.GridCoord(1)
	if c[0] != 0 || c[1] != 0 || c[2] != 1 {
		t.Fatalf("GridCoord(1) = %v, want last dim fastest", c)
	}
}

// everyCellOwnedOnce verifies the partition property: each domain cell is
// owned by exactly one rank, and is inside exactly one Region box of that
// rank.
func everyCellOwnedOnce(t *testing.T, dc *Decomposition) {
	t.Helper()
	regions := make([][]geometry.BBox, dc.NumTasks())
	var total int64
	for r := range regions {
		regions[r] = dc.Region(r)
		if !geometry.Disjoint(regions[r]) {
			t.Fatalf("rank %d region has overlapping boxes", r)
		}
		total += geometry.TotalVolume(regions[r])
		if geometry.TotalVolume(regions[r]) != dc.OwnedVolume(r) {
			t.Fatalf("rank %d OwnedVolume = %d, region volume = %d",
				r, dc.OwnedVolume(r), geometry.TotalVolume(regions[r]))
		}
	}
	if total != dc.Domain().Volume() {
		t.Fatalf("regions cover %d cells, domain has %d", total, dc.Domain().Volume())
	}
	dc.Domain().Each(func(p geometry.Point) {
		owner := dc.OwnerOf(p)
		found := false
		for _, b := range regions[owner] {
			if b.Contains(p) {
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("cell %v: owner %d's region does not contain it", p, owner)
		}
	})
}

func TestPartitionPropertyBlocked(t *testing.T) {
	everyCellOwnedOnce(t, mustNew(t, Blocked, []int{10, 7}, []int{3, 2}, nil))
}

func TestPartitionPropertyCyclic(t *testing.T) {
	everyCellOwnedOnce(t, mustNew(t, Cyclic, []int{10, 7}, []int{3, 2}, nil))
}

func TestPartitionPropertyBlockCyclic(t *testing.T) {
	everyCellOwnedOnce(t, mustNew(t, BlockCyclic, []int{12, 9}, []int{2, 3}, []int{2, 2}))
}

func TestPartitionPropertyBlockCyclicUneven(t *testing.T) {
	// Extents not divisible by block*grid exercise the clipping paths.
	everyCellOwnedOnce(t, mustNew(t, BlockCyclic, []int{11, 13}, []int{2, 2}, []int{3, 4}))
}

func TestPartitionProperty3D(t *testing.T) {
	everyCellOwnedOnce(t, mustNew(t, Blocked, []int{6, 5, 4}, []int{2, 1, 2}, nil))
	everyCellOwnedOnce(t, mustNew(t, Cyclic, []int{6, 5, 4}, []int{2, 1, 2}, nil))
}

func TestPartitionPropertyOffsetDomain(t *testing.T) {
	dom := geometry.NewBBox(geometry.Point{5, -3}, geometry.Point{15, 6})
	dc, err := New(BlockCyclic, dom, []int{2, 3}, []int{2, 2})
	if err != nil {
		t.Fatal(err)
	}
	everyCellOwnedOnce(t, dc)
}

func TestBlockedRegionsAreSingleBoxes(t *testing.T) {
	dc := mustNew(t, Blocked, []int{16, 16}, []int{4, 4}, nil)
	for r := 0; r < dc.NumTasks(); r++ {
		if rg := dc.Region(r); len(rg) != 1 {
			t.Fatalf("blocked rank %d has %d boxes", r, len(rg))
		}
	}
}

func TestBlockedBalanced(t *testing.T) {
	dc := mustNew(t, Blocked, []int{10}, []int{3}, nil)
	vols := []int64{dc.OwnedVolume(0), dc.OwnedVolume(1), dc.OwnedVolume(2)}
	for _, v := range vols {
		if v < 3 || v > 4 {
			t.Fatalf("unbalanced blocked volumes: %v", vols)
		}
	}
}

func TestPiecesClipping(t *testing.T) {
	dc := mustNew(t, Cyclic, []int{8}, []int{4}, nil)
	// Rank 1 owns cells 1, 5. Query [4, 8) should return only cell 5.
	pieces := dc.Pieces(1, geometry.NewBBox(geometry.Point{4}, geometry.Point{8}))
	if len(pieces) != 1 || pieces[0].Min[0] != 5 || pieces[0].Max[0] != 6 {
		t.Fatalf("Pieces = %v", pieces)
	}
	// Disjoint query.
	if p := dc.Pieces(1, geometry.NewBBox(geometry.Point{100}, geometry.Point{200})); p != nil {
		t.Fatalf("disjoint query returned %v", p)
	}
}

func TestOwnerOfOutsidePanics(t *testing.T) {
	dc := mustNew(t, Blocked, []int{4}, []int{2}, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	dc.OwnerOf(geometry.Point{4})
}

func TestBlockContaining(t *testing.T) {
	decomps := []*Decomposition{
		mustNew(t, Blocked, []int{10, 7}, []int{3, 2}, nil),
		mustNew(t, Cyclic, []int{10, 7}, []int{3, 2}, nil),
		mustNew(t, BlockCyclic, []int{11, 9}, []int{2, 2}, []int{3, 2}),
	}
	for _, dc := range decomps {
		dc.Domain().Each(func(p geometry.Point) {
			blk := dc.BlockContaining(p)
			if !blk.Contains(p) {
				t.Fatalf("%v: block %v does not contain %v", dc, blk, p)
			}
			owner := dc.OwnerOf(p)
			// The whole block must belong to the same owner, and the block
			// must be one of the owner's maximal pieces.
			blk.Each(func(q geometry.Point) {
				if dc.OwnerOf(q) != owner {
					t.Fatalf("%v: block %v spans owners", dc, blk)
				}
			})
			found := false
			for _, piece := range dc.Region(owner) {
				if piece.Equal(blk) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("%v: block %v of %v is not a maximal piece of rank %d (%v)",
					dc, blk, p, owner, dc.Region(owner))
			}
		})
	}
}

func TestOverlapMatrixAgainstBruteForce(t *testing.T) {
	cases := []struct{ a, b *Decomposition }{
		{mustNew(t, Blocked, []int{12, 10}, []int{3, 2}, nil), mustNew(t, Blocked, []int{12, 10}, []int{2, 2}, nil)},
		{mustNew(t, Blocked, []int{12, 10}, []int{3, 2}, nil), mustNew(t, Cyclic, []int{12, 10}, []int{2, 3}, nil)},
		{mustNew(t, BlockCyclic, []int{12, 10}, []int{2, 2}, []int{3, 2}), mustNew(t, Cyclic, []int{12, 10}, []int{3, 2}, nil)},
	}
	for ci, c := range cases {
		m, err := OverlapMatrix(c.a, c.b)
		if err != nil {
			t.Fatal(err)
		}
		brute := make([][]int64, c.a.NumTasks())
		for i := range brute {
			brute[i] = make([]int64, c.b.NumTasks())
		}
		c.a.Domain().Each(func(p geometry.Point) {
			brute[c.a.OwnerOf(p)][c.b.OwnerOf(p)]++
		})
		for i := range brute {
			for j := range brute[i] {
				if m[i][j] != brute[i][j] {
					t.Fatalf("case %d: overlap[%d][%d] = %d, brute force = %d", ci, i, j, m[i][j], brute[i][j])
				}
			}
		}
	}
}

func TestOverlapMatrixDomainMismatch(t *testing.T) {
	a := mustNew(t, Blocked, []int{8}, []int{2}, nil)
	b := mustNew(t, Blocked, []int{10}, []int{2}, nil)
	if _, err := OverlapMatrix(a, b); err == nil {
		t.Fatal("mismatched domains accepted")
	}
}

func TestFanOutMatchingVsMismatched(t *testing.T) {
	size := []int{32, 32}
	prodB := mustNew(t, Blocked, size, []int{4, 4}, nil)
	consB := mustNew(t, Blocked, size, []int{2, 2}, nil)
	consC := mustNew(t, Cyclic, size, []int{2, 2}, nil)

	matched, err := FanOut(consB, prodB)
	if err != nil {
		t.Fatal(err)
	}
	mismatched, err := FanOut(consC, prodB)
	if err != nil {
		t.Fatal(err)
	}
	for r := range matched {
		// Matching blocked/blocked: each consumer block covers a 2x2 set of
		// producer blocks.
		if matched[r] != 4 {
			t.Fatalf("matched fan-out[%d] = %d, want 4", r, matched[r])
		}
		// Cyclic consumer touches every producer rank.
		if mismatched[r] != prodB.NumTasks() {
			t.Fatalf("mismatched fan-out[%d] = %d, want %d", r, mismatched[r], prodB.NumTasks())
		}
	}
}

func TestQuickPiecesMatchOwnerOf(t *testing.T) {
	r := rand.New(rand.NewSource(21))
	kinds := []Kind{Blocked, Cyclic, BlockCyclic}
	f := func() bool {
		kind := kinds[r.Intn(len(kinds))]
		size := []int{4 + r.Intn(12), 4 + r.Intn(12)}
		grid := []int{1 + r.Intn(3), 1 + r.Intn(3)}
		block := []int{1 + r.Intn(3), 1 + r.Intn(3)}
		dc, err := New(kind, geometry.BoxFromSize(size), grid, block)
		if err != nil {
			return false
		}
		// A random query window.
		lo := geometry.Point{r.Intn(size[0]), r.Intn(size[1])}
		hi := geometry.Point{lo[0] + 1 + r.Intn(size[0]-lo[0]), lo[1] + 1 + r.Intn(size[1]-lo[1])}
		q := geometry.NewBBox(lo, hi)
		// Union of all ranks' pieces within q must partition q.
		var vol int64
		owned := map[string]int{}
		for rank := 0; rank < dc.NumTasks(); rank++ {
			for _, b := range dc.Pieces(rank, q) {
				vol += b.Volume()
				rank := rank
				b.Each(func(p geometry.Point) {
					owned[p.String()] = rank
				})
			}
		}
		if vol != q.Volume() {
			return false
		}
		okAll := true
		q.Each(func(p geometry.Point) {
			if owned[p.String()] != dc.OwnerOf(p) {
				okAll = false
			}
		})
		return okAll
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 120}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOverlapMatrixPaperScale(b *testing.B) {
	// CAP1 512 tasks x CAP2 64 tasks over a 1024^3 domain.
	dom := geometry.BoxFromSize([]int{1024, 1024, 1024})
	a, err := New(Blocked, dom, []int{8, 8, 8}, nil)
	if err != nil {
		b.Fatal(err)
	}
	c, err := New(Blocked, dom, []int{4, 4, 4}, nil)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := OverlapMatrix(a, c); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPiecesCyclic(b *testing.B) {
	dc := mustNew(b, Cyclic, []int{64, 64, 64}, []int{4, 4, 4}, nil)
	q := geometry.NewBBox(geometry.Point{8, 8, 8}, geometry.Point{24, 24, 24})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		dc.Pieces(7, q)
	}
}

func TestGhostRegions(t *testing.T) {
	dc := mustNew(t, Blocked, []int{16, 16}, []int{4, 4}, nil)
	for r := 0; r < dc.NumTasks(); r++ {
		owned := dc.Region(r)
		ghosts := dc.GhostRegions(r, 2)
		if len(ghosts) != len(owned) {
			t.Fatalf("rank %d: %d ghosts for %d boxes", r, len(ghosts), len(owned))
		}
		for i := range owned {
			if !ghosts[i].ContainsBox(owned[i]) {
				t.Fatalf("rank %d: ghost %v does not contain owned %v", r, ghosts[i], owned[i])
			}
			if !dc.Domain().ContainsBox(ghosts[i]) {
				t.Fatalf("rank %d: ghost %v leaves the domain", r, ghosts[i])
			}
		}
	}
	// Interior rank grows by the halo on every side.
	interior := dc.RankOf([]int{1, 1})
	g := dc.GhostRegions(interior, 1)[0]
	o := dc.Region(interior)[0]
	for d := 0; d < 2; d++ {
		if g.Min[d] != o.Min[d]-1 || g.Max[d] != o.Max[d]+1 {
			t.Fatalf("interior ghost %v from %v", g, o)
		}
	}
}
