package transport

// The fabric's data movement is pluggable: every choke point — Send/Recv
// messaging, the one-sided Read, the RPC Call, and the buffer-exposure
// state ops — funnels through a Backend once the op is determined to be
// remote. The default backend is the in-process one (this file); the
// internal/transport/tcpnet package provides a real TCP implementation
// that runs each simulated node as its own endpoint group over sockets
// (DESIGN §5f). The Local* methods on Fabric are the executing side of
// every operation: they contain the metering, so an op records its bytes
// exactly once, in the process that actually moves the data.

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"time"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/geometry"
)

// Backend moves data between endpoints on behalf of the fabric. Initiating
// endpoints call it only for operations Remote reports as crossing the
// process or node boundary; the backend is then responsible for executing
// the operation where the target endpoint's state lives (inbox, exposed
// buffers, RPC handlers) and for metering it there, via the Local* methods
// of the owning fabric.
type Backend interface {
	// Name identifies the backend ("inproc", "tcp") in logs and reports.
	Name() string
	// Remote reports whether an operation initiated by core initiator
	// against the state or data of core target must traverse the backend.
	Remote(initiator, target cluster.CoreID) bool
	// Send delivers a tagged message into dst's inbox.
	Send(src, dst cluster.CoreID, tag uint64, payload []byte, m Meter) error
	// Recv blocks until a message matching (src, tag) is available in on's
	// inbox; src may be AnySource.
	Recv(on, src cluster.CoreID, tag uint64) (Message, error)
	// Read pulls the buffer key exposed by owner on behalf of reader. With
	// wait it blocks until the buffer is published; without, ok reports
	// whether it was.
	Read(reader, owner cluster.CoreID, key BufKey, m Meter, n int64, wait bool) (payload any, ok bool, err error)
	// ReadMulti pulls several exposed sub-regions in one batched
	// operation, blocking until every buffer is published. All specs must
	// target owners whose endpoint state lives behind the same peer, so a
	// network backend can serve the whole batch with a single request
	// frame. Each spec is metered individually on the executing side,
	// exactly as a Read of spec.Bytes would be. deliver is invoked once
	// per spec, in spec order, with either the owner's full exposed
	// payload (an in-process backend, where the reader clips) or the
	// owner-clipped raw cell bytes of spec.Sub (a network backend); the
	// clipped slice is only valid for the duration of the call.
	ReadMulti(reader cluster.CoreID, specs []ReadSpec, m Meter, deliver SegmentFunc) error
	// Call performs a synchronous RPC against a service on dst.
	Call(src, dst cluster.CoreID, service string, request any, m Meter, reqBytes, respBytes int64) (any, error)
	// Expose / Unexpose / Exposed manage owner's one-sided buffers.
	Expose(owner cluster.CoreID, key BufKey, payload any) error
	Unexpose(owner cluster.CoreID, key BufKey) error
	Exposed(owner cluster.CoreID, key BufKey) (bool, error)
	// Close releases the backend's resources (connections, listeners).
	Close() error
}

// ReadSpec is one element of a batched ReadMulti: pull the cells of Sub
// out of the buffer Key exposed by Owner. Bytes is the metered volume of
// the transfer — like Read's n argument, it is what the executing side
// records, so schedule-predicted accounting is identical across backends.
type ReadSpec struct {
	Owner cluster.CoreID
	Key   BufKey
	Sub   geometry.BBox
	Bytes int64
}

// SegmentFunc consumes the result of one ReadSpec of a batch. Exactly one
// of payload and clipped is set: payload is the owner's full exposed
// buffer (the reader clips, as with Read), clipped is the owner-clipped
// raw cell data of the spec's sub-box — Sub intersected with the exposed
// region, row-major, big-endian float64 bits. clipped is only valid until
// the callback returns; implementations reuse the buffer.
type SegmentFunc func(i int, payload any, clipped []byte) error

// RegionClipper is implemented by exposed payloads that support
// owner-side clipping: ClipRegion appends the raw bytes of the cells of
// sub (clipped to the payload's own region) to dst and returns the
// extended slice. A network backend serving a ReadMulti uses it to put
// only the requested bytes on the wire instead of the whole buffer.
type RegionClipper interface {
	ClipRegion(dst []byte, sub geometry.BBox) ([]byte, error)
}

// Routing modes. routeLocal is the fast path: no backend consulted at all.
const (
	routeLocal  int32 = iota // in-process backend, ops execute directly
	routeRemote              // consult Backend.Remote per operation
	routeAll                 // force every op through the backend interface
)

// SetBackend installs a network backend; nil restores the in-process one.
// It must be called before any endpoint traffic starts — installation is
// not synchronized with in-flight operations.
func (f *Fabric) SetBackend(b Backend) {
	if b == nil {
		f.backend = localBackend{f}
		f.routeMode.Store(routeLocal)
		return
	}
	f.backend = b
	f.routeMode.Store(routeRemote)
}

// Backend returns the installed backend (the in-process one by default).
func (f *Fabric) Backend() Backend { return f.backend }

// ForceBackendRouting routes every operation through the Backend interface
// even when it would execute locally. The in-process backend is semantics-
// preserving, so forcing it on measures exactly the indirection cost of
// the interface — cmd/benchguard holds it under its budget.
func (f *Fabric) ForceBackendRouting(on bool) {
	switch {
	case on:
		f.routeMode.Store(routeAll)
	default:
		if _, local := f.backend.(localBackend); local {
			f.routeMode.Store(routeLocal)
		} else {
			f.routeMode.Store(routeRemote)
		}
	}
}

// routed reports whether an operation from initiator against target must
// go through the backend. One atomic load on the fast path.
func (f *Fabric) routed(initiator, target cluster.CoreID) bool {
	switch f.routeMode.Load() {
	case routeLocal:
		return false
	case routeAll:
		return true
	default:
		return f.backend.Remote(initiator, target)
	}
}

// Routed reports whether data initiated by initiator against the state
// of target would traverse a real wire — the backend's Remote predicate.
// The pull engine uses it to group remote transfers into batched per-peer
// reads while keeping in-process transfers on the direct path. Unlike the
// internal dispatch decision it deliberately ignores ForceBackendRouting:
// that toggle changes how an operation is dispatched, not where the data
// lives, and batching in-process transfers would serialize reads that the
// worker pool otherwise overlaps.
func (f *Fabric) Routed(initiator, target cluster.CoreID) bool {
	if f.routeMode.Load() == routeLocal {
		return false
	}
	return f.backend.Remote(initiator, target)
}

// LocalReadMulti is the executing side of ReadMulti against owner
// endpoints in this process: each spec is a blocking LocalRead metered at
// spec.Bytes, delivered as the full exposed payload for the reader to
// clip — observationally identical to issuing the Reads one by one.
func (f *Fabric) LocalReadMulti(reader cluster.CoreID, specs []ReadSpec, m Meter, deliver SegmentFunc) error {
	for i, spec := range specs {
		payload, _, err := f.LocalRead(reader, spec.Owner, spec.Key, m, spec.Bytes, true)
		if err != nil {
			return err
		}
		if err := deliver(i, payload, nil); err != nil {
			return err
		}
	}
	return nil
}

// LocalSend is the executing side of Send: it meters the transfer and
// appends the message to dst's inbox in this process.
func (f *Fabric) LocalSend(src, dst cluster.CoreID, tag uint64, payload []byte, m Meter) error {
	f.record(m, src, dst, int64(len(payload)))
	de := f.endpoints[int(dst)]
	de.mu.Lock()
	defer de.mu.Unlock()
	if de.closed {
		return fmt.Errorf("transport: sending to endpoint %d: %w", dst, ErrEndpointClosed)
	}
	de.inbox = append(de.inbox, Message{Src: src, Tag: tag, Payload: payload})
	de.inboxCond.Broadcast()
	return nil
}

// LocalRecv is the executing side of Recv: it blocks on the inbox of the
// endpoint on, which must live in this process.
func (f *Fabric) LocalRecv(on, src cluster.CoreID, tag uint64) (Message, error) {
	ep := f.endpoints[int(on)]
	ep.mu.Lock()
	defer ep.mu.Unlock()
	for {
		for i, msg := range ep.inbox {
			if (src == AnySource || msg.Src == src) && msg.Tag == tag {
				ep.inbox = append(ep.inbox[:i], ep.inbox[i+1:]...)
				return msg, nil
			}
		}
		if ep.closed {
			return Message{}, fmt.Errorf("transport: receiving on endpoint %d: %w", on, ErrEndpointClosed)
		}
		ep.inboxCond.Wait()
	}
}

// LocalRead is the executing side of Read/TryRead against an owner endpoint
// in this process: it waits for the buffer (when wait), sleeps the
// simulated read latency, meters the pull and returns the exposed payload
// for the reader to copy from.
func (f *Fabric) LocalRead(reader, owner cluster.CoreID, key BufKey, m Meter, n int64, wait bool) (any, bool, error) {
	oe := f.endpoints[int(owner)]
	oe.exportMu.Lock()
	for {
		if oe.exportClosed {
			oe.exportMu.Unlock()
			return nil, false, fmt.Errorf("transport: reading %v from endpoint %d: %w", key, owner, ErrEndpointClosed)
		}
		if e, ok := oe.exports[key]; ok {
			payload := e.payload
			oe.exportMu.Unlock()
			if wait {
				// TryRead is a cheap existence probe; only the blocking
				// pull models the RDMA round-trip latency.
				f.sleepReadLatency(f.medium(owner, reader))
			}
			f.record(m, owner, reader, n)
			return payload, true, nil
		}
		if !wait {
			oe.exportMu.Unlock()
			return nil, false, nil
		}
		oe.exportCond.Wait()
	}
}

// LocalReadDeadline is LocalRead with a bounded deferred wait: when the
// buffer is not exposed within patience the read fails with
// ErrReadPatience instead of blocking indefinitely. Zero patience is the
// plain waiting LocalRead. Serving processes that can be replaced mid-run
// use the bounded form — a read routed to a process that will never
// receive the buffer (staged before the replacement, re-staged elsewhere)
// must surface a retryable error rather than hold the exchange open
// forever while the reader's retry layer sees no failure.
func (f *Fabric) LocalReadDeadline(reader, owner cluster.CoreID, key BufKey, m Meter, n int64, patience time.Duration) (any, bool, error) {
	if patience <= 0 {
		return f.LocalRead(reader, owner, key, m, n, true)
	}
	oe := f.endpoints[int(owner)]
	expired := false
	timer := time.AfterFunc(patience, func() {
		oe.exportMu.Lock()
		expired = true
		oe.exportMu.Unlock()
		oe.exportCond.Broadcast()
	})
	defer timer.Stop()
	oe.exportMu.Lock()
	for {
		if oe.exportClosed {
			oe.exportMu.Unlock()
			return nil, false, fmt.Errorf("transport: reading %v from endpoint %d: %w", key, owner, ErrEndpointClosed)
		}
		if e, ok := oe.exports[key]; ok {
			payload := e.payload
			oe.exportMu.Unlock()
			f.sleepReadLatency(f.medium(owner, reader))
			f.record(m, owner, reader, n)
			return payload, true, nil
		}
		if expired {
			oe.exportMu.Unlock()
			return nil, false, fmt.Errorf("transport: reading %v from endpoint %d after %s: %w", key, owner, patience, ErrReadPatience)
		}
		oe.exportCond.Wait()
	}
}

// LocalCall is the executing side of Call against a dst endpoint in this
// process. The handler runs in its own goroutine so that closing the
// serving endpoint mid-call unblocks the caller with ErrEndpointClosed
// instead of hanging on a stuck handler.
func (f *Fabric) LocalCall(src, dst cluster.CoreID, service string, request any, m Meter, reqBytes, respBytes int64) (any, error) {
	de := f.endpoints[int(dst)]
	de.mu.Lock()
	closed := de.closed
	done := de.done
	de.mu.Unlock()
	if closed {
		return nil, fmt.Errorf("transport: calling %q on endpoint %d: %w", service, dst, ErrEndpointClosed)
	}
	handlerMu.Lock()
	h := de.handlers[service]
	handlerMu.Unlock()
	if h == nil {
		return nil, fmt.Errorf("transport: no handler %q on core %d", service, dst)
	}
	// Request travels src -> dst, response dst -> src.
	f.record(m, src, dst, reqBytes)
	type callResult struct {
		resp any
		err  error
	}
	resc := make(chan callResult, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				resc <- callResult{err: fmt.Errorf("transport: handler %q on core %d panicked: %v", service, dst, r)}
			}
		}()
		resp, err := h(src, request)
		resc <- callResult{resp: resp, err: err}
	}()
	select {
	case r := <-resc:
		if r.err != nil {
			return nil, r.err
		}
		f.record(m, dst, src, respBytes)
		return r.resp, nil
	case <-done:
		return nil, fmt.Errorf("transport: calling %q on endpoint %d: %w", service, dst, ErrEndpointClosed)
	}
}

// LocalExpose publishes a buffer on an owner endpoint in this process.
func (f *Fabric) LocalExpose(owner cluster.CoreID, key BufKey, payload any) error {
	oe := f.endpoints[int(owner)]
	oe.exportMu.Lock()
	defer oe.exportMu.Unlock()
	if _, ok := oe.exports[key]; ok {
		return fmt.Errorf("transport: buffer %v already exposed on core %d", key, owner)
	}
	oe.exports[key] = &export{payload: payload}
	oe.exportCond.Broadcast()
	return nil
}

// LocalUnexpose withdraws a buffer published on an owner endpoint in this
// process.
func (f *Fabric) LocalUnexpose(owner cluster.CoreID, key BufKey) error {
	oe := f.endpoints[int(owner)]
	oe.exportMu.Lock()
	defer oe.exportMu.Unlock()
	delete(oe.exports, key)
	return nil
}

// LocalExposed reports whether key is published on an owner endpoint in
// this process.
func (f *Fabric) LocalExposed(owner cluster.CoreID, key BufKey) (bool, error) {
	oe := f.endpoints[int(owner)]
	oe.exportMu.Lock()
	defer oe.exportMu.Unlock()
	_, ok := oe.exports[key]
	return ok, nil
}

// localBackend adapts the fabric's own Local* execution to the Backend
// interface. Nothing is ever Remote, so it is only exercised under
// ForceBackendRouting — where it must be observationally identical to the
// direct path.
type localBackend struct{ f *Fabric }

func (b localBackend) Name() string                                 { return "inproc" }
func (b localBackend) Remote(initiator, target cluster.CoreID) bool { return false }

func (b localBackend) Send(src, dst cluster.CoreID, tag uint64, payload []byte, m Meter) error {
	return b.f.LocalSend(src, dst, tag, payload, m)
}

func (b localBackend) Recv(on, src cluster.CoreID, tag uint64) (Message, error) {
	return b.f.LocalRecv(on, src, tag)
}

func (b localBackend) Read(reader, owner cluster.CoreID, key BufKey, m Meter, n int64, wait bool) (any, bool, error) {
	return b.f.LocalRead(reader, owner, key, m, n, wait)
}

func (b localBackend) ReadMulti(reader cluster.CoreID, specs []ReadSpec, m Meter, deliver SegmentFunc) error {
	return b.f.LocalReadMulti(reader, specs, m, deliver)
}

func (b localBackend) Call(src, dst cluster.CoreID, service string, request any, m Meter, reqBytes, respBytes int64) (any, error) {
	return b.f.LocalCall(src, dst, service, request, m, reqBytes, respBytes)
}

func (b localBackend) Expose(owner cluster.CoreID, key BufKey, payload any) error {
	return b.f.LocalExpose(owner, key, payload)
}

func (b localBackend) Unexpose(owner cluster.CoreID, key BufKey) error {
	return b.f.LocalUnexpose(owner, key)
}

func (b localBackend) Exposed(owner cluster.CoreID, key BufKey) (bool, error) {
	return b.f.LocalExposed(owner, key)
}

func (b localBackend) Close() error { return nil }

// MergeMediumStats folds the per-medium transfer totals recorded by
// another process's fabric (a codsnode child) into this one, mirroring
// them into the obs registry exactly the way record does, so driver-side
// reports reconcile across processes. The per-transfer size histogram is
// not merged — it stays a per-process distribution.
func (f *Fabric) MergeMediumStats(shmBytes, shmOps, netBytes, netOps int64) {
	f.stats[cluster.SharedMemory].bytes.Add(shmBytes)
	f.stats[cluster.SharedMemory].ops.Add(shmOps)
	f.stats[cluster.Network].bytes.Add(netBytes)
	f.stats[cluster.Network].ops.Add(netOps)
	obsBytes[cluster.SharedMemory].Add(shmBytes)
	obsOps[cluster.SharedMemory].Add(shmOps)
	obsBytes[cluster.Network].Add(netBytes)
	obsOps[cluster.Network].Add(netOps)
}

// RegisterWireType registers a payload type crossing process boundaries
// through a network backend (RPC requests/responses, exposed buffers).
// Packages register their wire types from init, mirroring gob semantics:
// concrete types carried inside `any` values must be known to both sides.
func RegisterWireType(v any) { gob.Register(v) }

// EncodePayload serializes an `any` payload for the wire. A nil payload
// encodes to an empty buffer.
func EncodePayload(v any) ([]byte, error) {
	if v == nil {
		return nil, nil
	}
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(&v); err != nil {
		return nil, fmt.Errorf("transport: encoding payload %T: %w", v, err)
	}
	return buf.Bytes(), nil
}

// DecodePayload reverses EncodePayload; empty input decodes to nil.
func DecodePayload(data []byte) (any, error) {
	if len(data) == 0 {
		return nil, nil
	}
	var v any
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(&v); err != nil {
		return nil, fmt.Errorf("transport: decoding payload: %w", err)
	}
	return v, nil
}

// StreamBackend is the optional interface a network backend implements to
// mirror streaming control state onto owning nodes (wire v5): publish
// notifications carrying the new complete watermark, cursor advances, and
// version retirements. Every op is incarnation-fenced like a lease probe,
// so a node that was replaced cannot acknowledge stream state addressed to
// its successor; the publish and advance responses return the node's
// recorded watermark so an elastic replacement resumes streams from live
// positions. The in-process fabric has no remote stream tables, so the
// passthroughs below degrade to no-ops when the backend does not
// implement the interface.
type StreamBackend interface {
	// StreamPublish records watermark version of stream v on node and
	// returns the node's resulting recorded watermark.
	StreamPublish(node cluster.NodeID, v string, version int64) (int64, error)
	// StreamAdvance records consumer's cursor position on node and
	// returns the node's recorded watermark.
	StreamAdvance(node cluster.NodeID, v string, consumer, pos int64) (int64, error)
	// StreamRetire raises the retained floor of stream v on node:
	// versions below are retired.
	StreamRetire(node cluster.NodeID, v string, below int64) error
}

// StreamPublish forwards a watermark advance of stream v to node's stream
// table when the backend maintains one; otherwise the version is echoed.
func (f *Fabric) StreamPublish(node cluster.NodeID, v string, version int64) (int64, error) {
	if sb, ok := f.backend.(StreamBackend); ok {
		return sb.StreamPublish(node, v, version)
	}
	return version, nil
}

// StreamAdvance forwards a cursor advance to node's stream table when the
// backend maintains one; otherwise the position is echoed.
func (f *Fabric) StreamAdvance(node cluster.NodeID, v string, consumer, pos int64) (int64, error) {
	if sb, ok := f.backend.(StreamBackend); ok {
		return sb.StreamAdvance(node, v, consumer, pos)
	}
	return pos, nil
}

// StreamRetire forwards a floor advance to node's stream table when the
// backend maintains one.
func (f *Fabric) StreamRetire(node cluster.NodeID, v string, below int64) error {
	if sb, ok := f.backend.(StreamBackend); ok {
		return sb.StreamRetire(node, v, below)
	}
	return nil
}
