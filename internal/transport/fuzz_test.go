package transport

import (
	"testing"
)

// FuzzParseFaultPlan asserts the fault-plan loader never panics: arbitrary
// input either compiles to a valid plan or returns an error. Valid plans
// must additionally be installable and survive a probe operation.
func FuzzParseFaultPlan(f *testing.F) {
	f.Add([]byte(`{"seed": 7, "rules": [{"op": "read", "mode": "error", "prob": 0.05}]}`))
	f.Add([]byte(`{"rules": [{"op": "send", "medium": "shm", "mode": "delay", "prob": 1, "delay_us": 5}]}`))
	f.Add([]byte(`{"rules": [{"op": "call", "dst": 3, "mode": "drop", "from_op": 2, "to_op": 9, "max": 4}]}`))
	f.Add([]byte(`{"rules": [{"op": "any", "src": 0, "mode": "error", "prob": 1}]}`))
	f.Add([]byte(`{"rules": []}`))
	f.Add([]byte(`{"seed": -1}`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"rules": [{"op": "read", "mode": "error", "prob": 1e309}]}`))
	f.Add([]byte(`not json at all`))
	f.Add([]byte(``))
	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := ParseFaultPlan(data)
		if err != nil {
			if p != nil {
				t.Fatalf("error %v returned alongside a plan", err)
			}
			return
		}
		if len(p.rules) == 0 {
			t.Fatalf("accepted plan has no rules")
		}
		// A parsed plan must be usable: install it and run one faultable
		// operation of every kind without panicking.
		f2 := testFuzzFabric(t)
		f2.SetFaultPlan(p)
		m := Meter{Phase: "fuzz"}
		_ = f2.Endpoint(0).Send(1, 1, nil, m)
		_, _ = f2.Endpoint(0).TryRead(1, BufKey{Name: "missing"}, m, 1, nil)
		_, _ = f2.Endpoint(0).Call(1, "missing", nil, m, 1, 1)
	})
}

func testFuzzFabric(t *testing.T) *Fabric {
	t.Helper()
	return testFabric(t, 1, 2)
}
