package transport

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"github.com/insitu/cods/internal/cluster"
)

func fabric(t testing.TB, nodes, cores int) *Fabric {
	t.Helper()
	m, err := cluster.NewMachine(nodes, cores)
	if err != nil {
		t.Fatal(err)
	}
	return NewFabric(m)
}

var testMeter = Meter{Phase: "test", Class: cluster.InterApp, DstApp: 1}

func TestSendRecvBasic(t *testing.T) {
	f := fabric(t, 2, 2)
	src, dst := f.Endpoint(0), f.Endpoint(3)
	done := make(chan Message, 1)
	go func() {
		msg, err := dst.Recv(0, 42)
		if err != nil {
			t.Error(err)
		}
		done <- msg
	}()
	if err := src.Send(3, 42, []byte("hello"), testMeter); err != nil {
		t.Fatal(err)
	}
	msg := <-done
	if string(msg.Payload) != "hello" || msg.Src != 0 || msg.Tag != 42 {
		t.Fatalf("got %+v", msg)
	}
}

func TestRecvTagMatching(t *testing.T) {
	f := fabric(t, 1, 2)
	a, b := f.Endpoint(0), f.Endpoint(1)
	if err := a.Send(1, 7, []byte("seven"), testMeter); err != nil {
		t.Fatal(err)
	}
	if err := a.Send(1, 8, []byte("eight"), testMeter); err != nil {
		t.Fatal(err)
	}
	// Receive tag 8 first even though 7 was sent first.
	msg, err := b.Recv(0, 8)
	if err != nil || string(msg.Payload) != "eight" {
		t.Fatalf("Recv(8) = %v, %v", msg, err)
	}
	msg, err = b.Recv(AnySource, 7)
	if err != nil || string(msg.Payload) != "seven" {
		t.Fatalf("Recv(7) = %v, %v", msg, err)
	}
}

func TestRecvOrderingSameTag(t *testing.T) {
	f := fabric(t, 1, 2)
	a, b := f.Endpoint(0), f.Endpoint(1)
	for i := byte(0); i < 10; i++ {
		if err := a.Send(1, 1, []byte{i}, testMeter); err != nil {
			t.Fatal(err)
		}
	}
	for i := byte(0); i < 10; i++ {
		msg, err := b.Recv(0, 1)
		if err != nil || msg.Payload[0] != i {
			t.Fatalf("message %d out of order: %v", i, msg.Payload)
		}
	}
}

func TestSendInvalidDestination(t *testing.T) {
	f := fabric(t, 1, 2)
	if err := f.Endpoint(0).Send(9, 1, nil, testMeter); err == nil {
		t.Fatal("out-of-range destination accepted")
	}
}

func TestMediumMetering(t *testing.T) {
	f := fabric(t, 2, 2)
	mt := f.Machine().Metrics()
	// Cores 0,1 on node 0; cores 2,3 on node 1.
	if err := f.Endpoint(0).Send(1, 1, make([]byte, 100), testMeter); err != nil {
		t.Fatal(err)
	}
	if err := f.Endpoint(0).Send(2, 1, make([]byte, 200), testMeter); err != nil {
		t.Fatal(err)
	}
	if got := mt.Bytes(cluster.InterApp, cluster.SharedMemory); got != 100 {
		t.Fatalf("shm bytes = %d", got)
	}
	if got := mt.Bytes(cluster.InterApp, cluster.Network); got != 200 {
		t.Fatalf("network bytes = %d", got)
	}
	flows := mt.Flows("test")
	if len(flows) != 2 {
		t.Fatalf("flows = %v", flows)
	}
}

func TestExposeReadRoundTrip(t *testing.T) {
	f := fabric(t, 2, 2)
	owner, reader := f.Endpoint(0), f.Endpoint(2)
	key := BufKey{Name: "temperature", Version: 3}
	data := []float64{1, 2, 3}
	if err := owner.Expose(key, data); err != nil {
		t.Fatal(err)
	}
	if err := owner.Expose(key, data); err == nil {
		t.Fatal("double expose accepted")
	}
	var got []float64
	if err := reader.Read(0, key, testMeter, 24, func(p any) {
		got = p.([]float64)
	}); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[2] != 3 {
		t.Fatalf("Read payload = %v", got)
	}
	if b := f.Machine().Metrics().Bytes(cluster.InterApp, cluster.Network); b != 24 {
		t.Fatalf("metered %d bytes", b)
	}
	owner.Unexpose(key)
	if owner.Exposed(key) {
		t.Fatal("Unexpose did not remove buffer")
	}
}

func TestReadBlocksUntilExpose(t *testing.T) {
	f := fabric(t, 1, 2)
	owner, reader := f.Endpoint(0), f.Endpoint(1)
	key := BufKey{Name: "v", Version: 0}
	got := make(chan struct{})
	go func() {
		if err := reader.Read(0, key, testMeter, 1, nil); err != nil {
			t.Error(err)
		}
		close(got)
	}()
	select {
	case <-got:
		t.Fatal("Read returned before Expose")
	case <-time.After(20 * time.Millisecond):
	}
	if err := owner.Expose(key, "payload"); err != nil {
		t.Fatal(err)
	}
	select {
	case <-got:
	case <-time.After(time.Second):
		t.Fatal("Read did not return after Expose")
	}
}

func TestTryRead(t *testing.T) {
	f := fabric(t, 1, 2)
	owner, reader := f.Endpoint(0), f.Endpoint(1)
	key := BufKey{Name: "v", Version: 0}
	ok, err := reader.TryRead(0, key, testMeter, 1, nil)
	if err != nil || ok {
		t.Fatalf("TryRead before expose = %v, %v", ok, err)
	}
	if err := owner.Expose(key, 99); err != nil {
		t.Fatal(err)
	}
	var got any
	ok, err = reader.TryRead(0, key, testMeter, 1, func(p any) { got = p })
	if err != nil || !ok || got != 99 {
		t.Fatalf("TryRead after expose = %v, %v, payload %v", ok, err, got)
	}
}

func TestCloseUnblocksRecvAndRead(t *testing.T) {
	f := fabric(t, 1, 2)
	ep := f.Endpoint(1)
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		if _, err := ep.Recv(AnySource, 1); err == nil {
			t.Error("Recv returned nil error after Close")
		}
	}()
	go func() {
		defer wg.Done()
		if err := f.Endpoint(0).Read(1, BufKey{Name: "x"}, testMeter, 1, nil); err == nil {
			t.Error("Read returned nil error after Close")
		}
	}()
	time.Sleep(10 * time.Millisecond)
	ep.Close()
	wg.Wait()
}

func TestRPCCall(t *testing.T) {
	f := fabric(t, 2, 1)
	server, client := f.Endpoint(1), f.Endpoint(0)
	server.RegisterHandler("lookup", func(src cluster.CoreID, req any) (any, error) {
		return req.(int) * 2, nil
	})
	resp, err := client.Call(1, "lookup", 21, testMeter, 16, 8)
	if err != nil || resp.(int) != 42 {
		t.Fatalf("Call = %v, %v", resp, err)
	}
	// Control traffic metered both ways: 16 + 8 bytes over network
	// (different nodes).
	if b := f.Machine().Metrics().Bytes(cluster.InterApp, cluster.Network); b != 24 {
		t.Fatalf("metered %d control bytes", b)
	}
	if _, err := client.Call(1, "missing", nil, testMeter, 0, 0); err == nil {
		t.Fatal("missing service accepted")
	}
	if _, err := client.Call(99, "lookup", nil, testMeter, 0, 0); err == nil {
		t.Fatal("out-of-range core accepted")
	}
}

func TestConcurrentSendersOneReceiver(t *testing.T) {
	f := fabric(t, 4, 4)
	recv := f.Endpoint(0)
	const senders = 15
	const per = 50
	var wg sync.WaitGroup
	for s := 1; s <= senders; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			ep := f.Endpoint(cluster.CoreID(s))
			for i := 0; i < per; i++ {
				if err := ep.Send(0, 5, []byte{byte(s)}, testMeter); err != nil {
					t.Error(err)
					return
				}
			}
		}(s)
	}
	got := 0
	done := make(chan struct{})
	go func() {
		for i := 0; i < senders*per; i++ {
			if _, err := recv.Recv(AnySource, 5); err != nil {
				t.Error(err)
				return
			}
			got++
		}
		close(done)
	}()
	wg.Wait()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatalf("received %d of %d messages", got, senders*per)
	}
}

func BenchmarkSendRecvSameNode(b *testing.B) {
	f := fabric(b, 1, 2)
	a, c := f.Endpoint(0), f.Endpoint(1)
	payload := make([]byte, 1024)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := a.Send(1, 1, payload, testMeter); err != nil {
			b.Fatal(err)
		}
		if _, err := c.Recv(0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func TestZeroLengthSend(t *testing.T) {
	f := fabric(t, 1, 2)
	if err := f.Endpoint(0).Send(1, 9, nil, testMeter); err != nil {
		t.Fatal(err)
	}
	msg, err := f.Endpoint(1).Recv(0, 9)
	if err != nil || len(msg.Payload) != 0 {
		t.Fatalf("zero-length message = %v, %v", msg, err)
	}
}

func TestReadAfterUnexposeBlocksUntilReexpose(t *testing.T) {
	f := fabric(t, 1, 2)
	owner, reader := f.Endpoint(0), f.Endpoint(1)
	key := BufKey{Name: "v", Version: 1}
	if err := owner.Expose(key, 1); err != nil {
		t.Fatal(err)
	}
	owner.Unexpose(key)
	done := make(chan any, 1)
	go func() {
		var got any
		if err := reader.Read(0, key, testMeter, 1, func(p any) { got = p }); err != nil {
			done <- err
			return
		}
		done <- got
	}()
	select {
	case v := <-done:
		t.Fatalf("Read returned %v before re-expose", v)
	case <-time.After(20 * time.Millisecond):
	}
	if err := owner.Expose(key, 2); err != nil {
		t.Fatal(err)
	}
	select {
	case v := <-done:
		if v != 2 {
			t.Fatalf("Read returned %v, want the re-exposed payload", v)
		}
	case <-time.After(time.Second):
		t.Fatal("Read never returned")
	}
}

func TestHandlerReplacement(t *testing.T) {
	f := fabric(t, 1, 2)
	server, client := f.Endpoint(0), f.Endpoint(1)
	server.RegisterHandler("svc", func(src cluster.CoreID, req any) (any, error) { return 1, nil })
	server.RegisterHandler("svc", func(src cluster.CoreID, req any) (any, error) { return 2, nil })
	resp, err := client.Call(0, "svc", nil, testMeter, 0, 0)
	if err != nil || resp.(int) != 2 {
		t.Fatalf("Call = %v, %v", resp, err)
	}
}

func TestCallHandlerError(t *testing.T) {
	f := fabric(t, 1, 2)
	f.Endpoint(0).RegisterHandler("bad", func(src cluster.CoreID, req any) (any, error) {
		return nil, fmt.Errorf("handler exploded")
	})
	if _, err := f.Endpoint(1).Call(0, "bad", nil, testMeter, 0, 0); err == nil {
		t.Fatal("handler error swallowed")
	}
}
