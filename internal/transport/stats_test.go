package transport

import (
	"sync"
	"testing"

	"github.com/insitu/cods/internal/cluster"
)

// TestMediumCountersTrackReads: the fabric's atomic per-medium counters
// must agree with the mutex-guarded machine metrics.
func TestMediumCountersTrackReads(t *testing.T) {
	m, _ := cluster.NewMachine(2, 2)
	f := NewFabric(m)
	owner := f.Endpoint(0)
	if err := owner.Expose(BufKey{Name: "b", Version: 0}, "payload"); err != nil {
		t.Fatal(err)
	}
	meter := Meter{Phase: "t", Class: cluster.InterApp, DstApp: 1}
	// Core 1 shares node 0 with the owner; core 2 is on node 1.
	if err := f.Endpoint(1).Read(0, BufKey{Name: "b", Version: 0}, meter, 100, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Endpoint(2).Read(0, BufKey{Name: "b", Version: 0}, meter, 7, nil); err != nil {
		t.Fatal(err)
	}
	if got := f.MediumBytes(cluster.SharedMemory); got != 100 {
		t.Fatalf("shm bytes = %d, want 100", got)
	}
	if got := f.MediumBytes(cluster.Network); got != 7 {
		t.Fatalf("network bytes = %d, want 7", got)
	}
	if f.MediumOps(cluster.SharedMemory) != 1 || f.MediumOps(cluster.Network) != 1 {
		t.Fatalf("ops = %d/%d, want 1/1",
			f.MediumOps(cluster.SharedMemory), f.MediumOps(cluster.Network))
	}
	f.ResetMediumStats()
	if f.MediumBytes(cluster.SharedMemory) != 0 || f.MediumOps(cluster.Network) != 0 {
		t.Fatal("counters survived ResetMediumStats")
	}
}

// TestMediumCountersConcurrent: many goroutines reading through the same
// fabric must be counted exactly (run under -race).
func TestMediumCountersConcurrent(t *testing.T) {
	m, _ := cluster.NewMachine(4, 4)
	f := NewFabric(m)
	owner := f.Endpoint(0)
	if err := owner.Expose(BufKey{Name: "b", Version: 0}, "payload"); err != nil {
		t.Fatal(err)
	}
	meter := Meter{Phase: "t", Class: cluster.InterApp, DstApp: 1}
	const readers = 15
	const perReader = 40
	var wg sync.WaitGroup
	for r := 1; r <= readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := f.Endpoint(cluster.CoreID(r))
			for i := 0; i < perReader; i++ {
				if err := ep.Read(0, BufKey{Name: "b", Version: 0}, meter, 10, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	totalOps := f.MediumOps(cluster.SharedMemory) + f.MediumOps(cluster.Network)
	totalBytes := f.MediumBytes(cluster.SharedMemory) + f.MediumBytes(cluster.Network)
	if totalOps != readers*perReader {
		t.Fatalf("ops = %d, want %d", totalOps, readers*perReader)
	}
	if totalBytes != readers*perReader*10 {
		t.Fatalf("bytes = %d, want %d", totalBytes, readers*perReader*10)
	}
	// The metrics object must have recorded the same totals.
	mt := m.Metrics()
	rec := mt.Bytes(cluster.InterApp, cluster.SharedMemory) + mt.Bytes(cluster.InterApp, cluster.Network)
	if rec != totalBytes {
		t.Fatalf("metrics bytes %d != fabric bytes %d", rec, totalBytes)
	}
}
