package transport

import (
	"sync"
	"testing"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/obs"
)

// TestMediumCountersTrackReads: the fabric's atomic per-medium counters
// must agree with the mutex-guarded machine metrics.
func TestMediumCountersTrackReads(t *testing.T) {
	m, _ := cluster.NewMachine(2, 2)
	f := NewFabric(m)
	owner := f.Endpoint(0)
	if err := owner.Expose(BufKey{Name: "b", Version: 0}, "payload"); err != nil {
		t.Fatal(err)
	}
	meter := Meter{Phase: "t", Class: cluster.InterApp, DstApp: 1}
	// Core 1 shares node 0 with the owner; core 2 is on node 1.
	if err := f.Endpoint(1).Read(0, BufKey{Name: "b", Version: 0}, meter, 100, nil); err != nil {
		t.Fatal(err)
	}
	if err := f.Endpoint(2).Read(0, BufKey{Name: "b", Version: 0}, meter, 7, nil); err != nil {
		t.Fatal(err)
	}
	if got := f.MediumBytes(cluster.SharedMemory); got != 100 {
		t.Fatalf("shm bytes = %d, want 100", got)
	}
	if got := f.MediumBytes(cluster.Network); got != 7 {
		t.Fatalf("network bytes = %d, want 7", got)
	}
	if f.MediumOps(cluster.SharedMemory) != 1 || f.MediumOps(cluster.Network) != 1 {
		t.Fatalf("ops = %d/%d, want 1/1",
			f.MediumOps(cluster.SharedMemory), f.MediumOps(cluster.Network))
	}
	f.ResetMediumStats()
	if f.MediumBytes(cluster.SharedMemory) != 0 || f.MediumOps(cluster.Network) != 0 {
		t.Fatal("counters survived ResetMediumStats")
	}
}

// TestMediumCountersConcurrent: many goroutines reading through the same
// fabric must be counted exactly (run under -race).
func TestMediumCountersConcurrent(t *testing.T) {
	m, _ := cluster.NewMachine(4, 4)
	f := NewFabric(m)
	owner := f.Endpoint(0)
	if err := owner.Expose(BufKey{Name: "b", Version: 0}, "payload"); err != nil {
		t.Fatal(err)
	}
	meter := Meter{Phase: "t", Class: cluster.InterApp, DstApp: 1}
	const readers = 15
	const perReader = 40
	var wg sync.WaitGroup
	for r := 1; r <= readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			ep := f.Endpoint(cluster.CoreID(r))
			for i := 0; i < perReader; i++ {
				if err := ep.Read(0, BufKey{Name: "b", Version: 0}, meter, 10, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	wg.Wait()
	totalOps := f.MediumOps(cluster.SharedMemory) + f.MediumOps(cluster.Network)
	totalBytes := f.MediumBytes(cluster.SharedMemory) + f.MediumBytes(cluster.Network)
	if totalOps != readers*perReader {
		t.Fatalf("ops = %d, want %d", totalOps, readers*perReader)
	}
	if totalBytes != readers*perReader*10 {
		t.Fatalf("bytes = %d, want %d", totalBytes, readers*perReader*10)
	}
	// The metrics object must have recorded the same totals.
	mt := m.Metrics()
	rec := mt.Bytes(cluster.InterApp, cluster.SharedMemory) + mt.Bytes(cluster.InterApp, cluster.Network)
	if rec != totalBytes {
		t.Fatalf("metrics bytes %d != fabric bytes %d", rec, totalBytes)
	}
}

// TestResetMediumStatsRace: ResetMediumStats must be safe to call while
// other cores are mid-record (run under -race). The fabric counters are
// resettable, but the obs registry mirrors are monotonic — a concurrent
// reset must never make the registry lose increments.
func TestResetMediumStatsRace(t *testing.T) {
	prev := obs.Enabled()
	obs.Enable(true)
	t.Cleanup(func() { obs.Enable(prev) })

	m, _ := cluster.NewMachine(4, 4)
	f := NewFabric(m)
	owner := f.Endpoint(0)
	if err := owner.Expose(BufKey{Name: "b", Version: 0}, "payload"); err != nil {
		t.Fatal(err)
	}
	meter := Meter{Phase: "t", Class: cluster.InterApp, DstApp: 1}
	baseBytes := obsBytes[cluster.SharedMemory].Value() + obsBytes[cluster.Network].Value()
	baseOps := obsOps[cluster.SharedMemory].Value() + obsOps[cluster.Network].Value()

	const readers = 8
	const perReader = 50
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				f.ResetMediumStats()
			}
		}
	}()
	var readersWG sync.WaitGroup
	for r := 1; r <= readers; r++ {
		readersWG.Add(1)
		go func(r int) {
			defer readersWG.Done()
			ep := f.Endpoint(cluster.CoreID(r))
			for i := 0; i < perReader; i++ {
				if err := ep.Read(0, BufKey{Name: "b", Version: 0}, meter, 10, nil); err != nil {
					t.Error(err)
					return
				}
			}
		}(r)
	}
	readersWG.Wait()
	close(stop)
	wg.Wait()

	// Fabric counters may hold any prefix of the traffic depending on when
	// the last reset landed, but never more than the true total and never a
	// torn/negative value.
	for _, md := range []cluster.Medium{cluster.SharedMemory, cluster.Network} {
		if b := f.MediumBytes(md); b < 0 || b > readers*perReader*10 {
			t.Fatalf("%v bytes = %d out of range [0,%d]", md, b, readers*perReader*10)
		}
		if ops := f.MediumOps(md); ops < 0 || ops > readers*perReader {
			t.Fatalf("%v ops = %d out of range [0,%d]", md, ops, readers*perReader)
		}
	}
	// The registry mirrors are incremented at the same call site but are
	// never reset by ResetMediumStats: the deltas must be exact.
	gotBytes := obsBytes[cluster.SharedMemory].Value() + obsBytes[cluster.Network].Value() - baseBytes
	gotOps := obsOps[cluster.SharedMemory].Value() + obsOps[cluster.Network].Value() - baseOps
	if gotBytes != readers*perReader*10 {
		t.Fatalf("registry bytes delta = %d, want %d", gotBytes, readers*perReader*10)
	}
	if gotOps != readers*perReader {
		t.Fatalf("registry ops delta = %d, want %d", gotOps, readers*perReader)
	}
	f.ResetMediumStats()
	if f.MediumBytes(cluster.SharedMemory) != 0 || f.MediumOps(cluster.Network) != 0 {
		t.Fatal("counters survived final ResetMediumStats")
	}
}
