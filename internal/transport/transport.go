// Package transport implements HybridDART, the communication layer of the
// framework (paper Section III-A). It provides asynchronous point-to-point
// messaging, an RPC-style call facility, and one-sided remotely accessible
// buffers with receiver-driven pulls.
//
// HybridDART's defining behaviour is dynamic transport selection: a
// transfer between two cores of the same compute node is performed through
// intra-node shared memory, while a transfer between cores of different
// nodes uses the network fabric (RDMA on the paper's Cray XT5). Here both
// paths are in-process copies; what differs — and what the evaluation
// measures — is the accounting: every transfer is recorded in the machine's
// metrics with its medium, traffic class and node endpoints, and the
// network simulator later replays those flows for timing.
package transport

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/mutate"
	"github.com/insitu/cods/internal/obs"
)

// ErrEndpointClosed marks operations against an endpoint that has been
// closed: Send to it, Recv on it, Read of its buffers, Call of its
// services. Callers test for it with errors.Is; it is terminal, not
// transient — retry layers give up on it immediately.
var ErrEndpointClosed = errors.New("endpoint closed")

// ErrReadPatience marks a deferred read abandoned after a bounded wait:
// the owner did not expose the requested buffer within the serving
// process's patience window. Unlike ErrEndpointClosed it is transient —
// the buffer may simply not have been staged yet, or the read may have
// been routed to a replacement process that never receives it — so retry
// layers re-resolve routing and pull again instead of giving up.
var ErrReadPatience = errors.New("deferred read patience exhausted")

// Registry instruments, indexed by cluster.Medium. The fabric's own
// per-instance counters (MediumBytes/MediumOps) and these process-wide
// counters are incremented at the same call site in record, so the obs
// registry is the aggregate view of the same numbers — run reports
// reconcile the two to detect instrumentation drift.
var (
	obsBytes = [2]*obs.Counter{
		cluster.SharedMemory: obs.C("transport.shm.bytes"),
		cluster.Network:      obs.C("transport.network.bytes"),
	}
	obsOps = [2]*obs.Counter{
		cluster.SharedMemory: obs.C("transport.shm.ops"),
		cluster.Network:      obs.C("transport.network.ops"),
	}
	obsTransferBytes = obs.H("transport.transfer_bytes", obs.DefaultSizeBounds())
)

// Meter carries the classification under which a transfer is recorded.
type Meter struct {
	// Phase tags the flow for timing analysis (e.g. "couple:2").
	Phase string
	// Class says whether the transfer crosses applications.
	Class cluster.Class
	// DstApp is the application id of the receiving task.
	DstApp int
	// Span is the requesting side's span identifier (obs.SpanID), the
	// trace context a remote backend propagates so the serving node can
	// parent its handler spans under the driver span that caused them.
	// 0 means "no active span". Observability-only: it never affects
	// metering or accounting.
	Span uint64
}

// Message is a tagged point-to-point payload.
type Message struct {
	Src     cluster.CoreID
	Tag     uint64
	Payload []byte
}

// BufKey names a one-sided buffer exposed by a core. Version separates the
// iterations of iterative applications.
type BufKey struct {
	Name    string
	Version int
}

// AnySource can be passed to Recv to match a message from any sender.
const AnySource cluster.CoreID = -1

// mediumStats counts transfers through one medium. The fields are updated
// atomically so the parallel pull engine's concurrent Reads never contend
// on a lock just to be counted.
type mediumStats struct {
	bytes atomic.Int64
	ops   atomic.Int64
}

// Fabric connects all endpoints of a machine.
type Fabric struct {
	machine   *cluster.Machine
	endpoints []*Endpoint

	// stats holds lock-free per-medium transfer counters, indexed by
	// cluster.Medium. They complement the machine Metrics (which stay the
	// source of truth for the figures) with cheap fabric-level telemetry.
	stats [2]mediumStats

	// readLatency is an optional simulated one-sided-read round-trip
	// latency per medium, in nanoseconds (0 = off, the default). When set,
	// every Read blocks that long before its payload callback, modelling
	// the blocking RDMA get of the paper's DART; it is what the parallel
	// pull engine overlaps. Byte accounting is unaffected.
	readLatency [2]atomic.Int64

	// fault is the installed fault plan (nil = none); faultsInjected
	// counts error faults across all plans this fabric has carried.
	fault          atomic.Pointer[FaultPlan]
	faultsInjected atomic.Int64

	// backend executes operations whose target state lives outside this
	// process; routeMode (routeLocal/routeRemote/routeAll) gates whether
	// an op consults it at all, so the in-process fast path costs one
	// atomic load. See backend.go.
	backend   Backend
	routeMode atomic.Int32
}

// NewFabric creates a fabric with one endpoint per core of the machine.
func NewFabric(m *cluster.Machine) *Fabric {
	f := &Fabric{machine: m, endpoints: make([]*Endpoint, m.TotalCores())}
	f.backend = localBackend{f}
	for c := 0; c < m.TotalCores(); c++ {
		ep := &Endpoint{
			core:    cluster.CoreID(c),
			fabric:  f,
			exports: make(map[BufKey]*export),
			done:    make(chan struct{}),
		}
		ep.inboxCond = sync.NewCond(&ep.mu)
		ep.exportCond = sync.NewCond(&ep.exportMu)
		f.endpoints[c] = ep
	}
	return f
}

// Machine returns the underlying machine.
func (f *Fabric) Machine() *cluster.Machine { return f.machine }

// Endpoint returns the endpoint of core c.
func (f *Fabric) Endpoint(c cluster.CoreID) *Endpoint {
	return f.endpoints[int(c)]
}

// medium classifies a transfer between two cores.
func (f *Fabric) medium(src, dst cluster.CoreID) cluster.Medium {
	if f.machine.SameNode(src, dst) {
		return cluster.SharedMemory
	}
	return cluster.Network
}

// record books a transfer in the machine metrics and the fabric's
// per-medium counters. It is safe for concurrent callers: the Metrics
// object serializes internally and the fabric counters are atomic.
func (f *Fabric) record(m Meter, src, dst cluster.CoreID, n int64) {
	if mutate.Enabled(mutate.SwapFlow) {
		src, dst = dst, src // seeded defect: flow endpoints reversed
	}
	md := f.medium(src, dst)
	f.stats[md].bytes.Add(n)
	f.stats[md].ops.Add(1)
	obsBytes[md].Add(n)
	obsOps[md].Inc()
	obsTransferBytes.Observe(n)
	f.machine.Metrics().Record(m.Phase, m.Class, md, m.DstApp,
		f.machine.NodeOf(src), f.machine.NodeOf(dst), n)
}

// MediumBytes returns the total bytes moved through a medium since the
// fabric was created (or ResetMediumStats).
func (f *Fabric) MediumBytes(md cluster.Medium) int64 { return f.stats[md].bytes.Load() }

// MediumOps returns the number of transfers performed through a medium.
func (f *Fabric) MediumOps(md cluster.Medium) int64 { return f.stats[md].ops.Load() }

// ResetMediumStats zeroes the fabric's per-medium counters.
func (f *Fabric) ResetMediumStats() {
	for i := range f.stats {
		f.stats[i].bytes.Store(0)
		f.stats[i].ops.Store(0)
	}
}

// SetReadLatency configures the simulated one-sided-read latency per
// medium (0 disables, the default). Safe to call concurrently with
// readers; it only affects wall-clock timing, never byte accounting.
func (f *Fabric) SetReadLatency(shm, network time.Duration) {
	f.readLatency[cluster.SharedMemory].Store(int64(shm))
	f.readLatency[cluster.Network].Store(int64(network))
}

// sleepReadLatency blocks for the configured simulated latency of a
// medium, if any.
func (f *Fabric) sleepReadLatency(md cluster.Medium) {
	if d := f.readLatency[md].Load(); d > 0 {
		time.Sleep(time.Duration(d))
	}
}

// export is a one-sided buffer published by a core.
type export struct {
	payload any
}

// Endpoint is the per-core attachment point to the fabric.
type Endpoint struct {
	core   cluster.CoreID
	fabric *Fabric

	mu        sync.Mutex
	inbox     []Message
	inboxCond *sync.Cond
	closed    bool
	// done is closed by Close; in-flight Calls select on it so a stuck
	// handler cannot hang a caller past the endpoint's teardown.
	done chan struct{}

	exportMu     sync.Mutex
	exports      map[BufKey]*export
	exportCond   *sync.Cond
	exportClosed bool

	handlers map[string]Handler // guarded by handlerMu
}

// Core returns the core this endpoint belongs to.
func (ep *Endpoint) Core() cluster.CoreID { return ep.core }

// Send delivers a tagged message to dst asynchronously. The payload is
// owned by the receiver after the call; callers must not modify it.
func (ep *Endpoint) Send(dst cluster.CoreID, tag uint64, payload []byte, m Meter) error {
	if int(dst) < 0 || int(dst) >= len(ep.fabric.endpoints) {
		return fmt.Errorf("transport: destination core %d out of range", dst)
	}
	if err := ep.fabric.inject(FaultSend, int(ep.fabric.medium(ep.core, dst)), ep.core, dst); err != nil {
		return err
	}
	if ep.fabric.routed(ep.core, dst) {
		return ep.fabric.backend.Send(ep.core, dst, tag, payload, m)
	}
	return ep.fabric.LocalSend(ep.core, dst, tag, payload, m)
}

// Recv blocks until a message matching (src, tag) is available and returns
// it. Pass AnySource to match any sender. Messages from the same sender
// with the same tag are delivered in send order.
func (ep *Endpoint) Recv(src cluster.CoreID, tag uint64) (Message, error) {
	// A receive from AnySource has no determinable medium; it only matches
	// medium-agnostic fault rules.
	md := anyMedium
	if src != AnySource {
		md = int(ep.fabric.medium(src, ep.core))
	}
	if err := ep.fabric.inject(FaultRecv, md, src, ep.core); err != nil {
		return Message{}, err
	}
	// The target state is this endpoint's own inbox: it is remote only
	// when this process does not own the endpoint (a driver fabric).
	if ep.fabric.routed(ep.core, ep.core) {
		return ep.fabric.backend.Recv(ep.core, src, tag)
	}
	return ep.fabric.LocalRecv(ep.core, src, tag)
}

// Close wakes all blocked receivers of this endpoint with an error. It is
// used to tear down a simulation.
func (ep *Endpoint) Close() {
	ep.mu.Lock()
	if !ep.closed {
		ep.closed = true
		close(ep.done)
	}
	ep.inboxCond.Broadcast()
	ep.mu.Unlock()
	ep.exportMu.Lock()
	ep.exportClosed = true
	ep.exportCond.Broadcast()
	ep.exportMu.Unlock()
}

// Expose publishes a one-sided buffer under key. Readers on any core can
// pull from it with Read. Re-exposing an existing key is an error (versions
// distinguish iterations).
func (ep *Endpoint) Expose(key BufKey, payload any) error {
	if ep.fabric.routed(ep.core, ep.core) {
		return ep.fabric.backend.Expose(ep.core, key, payload)
	}
	return ep.fabric.LocalExpose(ep.core, key, payload)
}

// Unexpose withdraws a published buffer, freeing its slot.
func (ep *Endpoint) Unexpose(key BufKey) error {
	if ep.fabric.routed(ep.core, ep.core) {
		return ep.fabric.backend.Unexpose(ep.core, key)
	}
	return ep.fabric.LocalUnexpose(ep.core, key)
}

// Exposed reports whether key is currently published on this endpoint.
func (ep *Endpoint) Exposed(key BufKey) bool {
	if ep.fabric.routed(ep.core, ep.core) {
		ok, err := ep.fabric.backend.Exposed(ep.core, key)
		return err == nil && ok
	}
	ok, _ := ep.fabric.LocalExposed(ep.core, key)
	return ok
}

// Read performs a receiver-driven one-sided pull of bytes bytes from the
// buffer key exposed by owner, blocking until the buffer is published. The
// read callback receives the owner's payload to copy the needed region out
// of; the bytes argument is the volume actually moved and is what gets
// metered.
func (ep *Endpoint) Read(owner cluster.CoreID, key BufKey, m Meter, bytes int64, read func(payload any)) error {
	if int(owner) < 0 || int(owner) >= len(ep.fabric.endpoints) {
		return fmt.Errorf("transport: owner core %d out of range", owner)
	}
	if err := ep.fabric.inject(FaultRead, int(ep.fabric.medium(owner, ep.core)), ep.core, owner); err != nil {
		return err
	}
	var payload any
	var err error
	if ep.fabric.routed(ep.core, owner) {
		payload, _, err = ep.fabric.backend.Read(ep.core, owner, key, m, bytes, true)
	} else {
		payload, _, err = ep.fabric.LocalRead(ep.core, owner, key, m, bytes, true)
	}
	if err != nil {
		return err
	}
	if read != nil {
		read(payload)
	}
	return nil
}

// ReadMulti performs a batched receiver-driven pull of several exposed
// sub-regions in one operation, blocking until every buffer is
// published. All specs must target owner endpoints living behind the
// same peer (for the network backends, owners on one node), which lets a
// network backend issue a single request frame for the whole batch and
// clip every region on the owning side. Each spec is metered at
// spec.Bytes on the executing side, exactly like an individual Read, and
// each spec matches fault rules individually, so a batch observes the
// same injected faults as the equivalent sequence of Reads. deliver runs
// once per spec in spec order; see SegmentFunc for the payload-vs-clipped
// contract.
func (ep *Endpoint) ReadMulti(specs []ReadSpec, m Meter, deliver SegmentFunc) error {
	if len(specs) == 0 {
		return nil
	}
	for _, spec := range specs {
		if int(spec.Owner) < 0 || int(spec.Owner) >= len(ep.fabric.endpoints) {
			return fmt.Errorf("transport: owner core %d out of range", spec.Owner)
		}
		if err := ep.fabric.inject(FaultRead, int(ep.fabric.medium(spec.Owner, ep.core)), ep.core, spec.Owner); err != nil {
			return err
		}
	}
	if ep.fabric.routed(ep.core, specs[0].Owner) {
		return ep.fabric.backend.ReadMulti(ep.core, specs, m, deliver)
	}
	return ep.fabric.LocalReadMulti(ep.core, specs, m, deliver)
}

// TryRead is Read without blocking: it returns false when the buffer is not
// yet published.
func (ep *Endpoint) TryRead(owner cluster.CoreID, key BufKey, m Meter, bytes int64, read func(payload any)) (bool, error) {
	if int(owner) < 0 || int(owner) >= len(ep.fabric.endpoints) {
		return false, fmt.Errorf("transport: owner core %d out of range", owner)
	}
	if err := ep.fabric.inject(FaultRead, int(ep.fabric.medium(owner, ep.core)), ep.core, owner); err != nil {
		return false, err
	}
	var payload any
	var ok bool
	var err error
	if ep.fabric.routed(ep.core, owner) {
		payload, ok, err = ep.fabric.backend.Read(ep.core, owner, key, m, bytes, false)
	} else {
		payload, ok, err = ep.fabric.LocalRead(ep.core, owner, key, m, bytes, false)
	}
	if err != nil || !ok {
		return false, err
	}
	if read != nil {
		read(payload)
	}
	return true, nil
}

// Handler processes an RPC request on the serving core and returns a
// response. reqBytes/respBytes returned by Call are metered as control
// traffic.
type Handler func(src cluster.CoreID, request any) (response any, err error)

// handlerRegistry holds RPC services per endpoint.
var handlerMu sync.Mutex

// RegisterHandler installs an RPC handler for the named service on this
// endpoint. It replaces any previous handler with the same name.
func (ep *Endpoint) RegisterHandler(service string, h Handler) {
	handlerMu.Lock()
	defer handlerMu.Unlock()
	if ep.handlers == nil {
		ep.handlers = make(map[string]Handler)
	}
	ep.handlers[service] = h
}

// Call performs a synchronous RPC against a service registered on the dst
// core. reqBytes and respBytes are the metered sizes of the request and
// response (control traffic is small but crosses the same fabric).
func (ep *Endpoint) Call(dst cluster.CoreID, service string, request any, m Meter, reqBytes, respBytes int64) (any, error) {
	if int(dst) < 0 || int(dst) >= len(ep.fabric.endpoints) {
		return nil, fmt.Errorf("transport: destination core %d out of range", dst)
	}
	if err := ep.fabric.inject(FaultCall, int(ep.fabric.medium(ep.core, dst)), ep.core, dst); err != nil {
		return nil, err
	}
	if ep.fabric.routed(ep.core, dst) {
		return ep.fabric.backend.Call(ep.core, dst, service, request, m, reqBytes, respBytes)
	}
	return ep.fabric.LocalCall(ep.core, dst, service, request, m, reqBytes, respBytes)
}
