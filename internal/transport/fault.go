// Deterministic fault injection for the fabric (the chaos-test substrate).
//
// A FaultPlan is a list of rules matched against every fabric operation
// (Send, Recv, Read, Call) by operation kind, medium and endpoint cores. A
// matching rule fires either probabilistically — the decision for the
// rule's n-th match is a pure function of (plan seed, rule index, n), so
// the number of faults injected out of N matched operations is identical
// across runs — or on an explicit scripted window of match sequence
// numbers, which models an endpoint going dark for a bounded stretch and
// then healing. Fired rules inject a delay (the operation proceeds after
// sleeping) or an error (the operation fails before any side effect: no
// bytes are metered, no message is delivered, no payload is copied), which
// is what the retry layers above recover from.
package transport

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"sync/atomic"
	"time"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/obs"
)

// ErrInjected marks an error produced by the fault injector rather than a
// real condition of the fabric; retry layers treat it as transient.
var ErrInjected = errors.New("injected fault")

// Fault-injection instruments, one counter per faultable operation kind
// plus a histogram of injected delays.
var (
	obsFaults = [4]*obs.Counter{
		obs.C("transport.faults.send"),
		obs.C("transport.faults.recv"),
		obs.C("transport.faults.read"),
		obs.C("transport.faults.call"),
	}
	obsFaultDelayNs = obs.H("transport.faults.delay_ns", obs.DefaultLatencyBounds())
)

// FaultOp names the fabric operation a rule applies to.
type FaultOp uint8

// Faultable operations.
const (
	FaultSend FaultOp = iota
	FaultRecv
	FaultRead
	FaultCall
	faultOpCount
	faultAnyOp // matches every operation
)

// String names the operation.
func (o FaultOp) String() string {
	switch o {
	case FaultSend:
		return "send"
	case FaultRecv:
		return "recv"
	case FaultRead:
		return "read"
	case FaultCall:
		return "call"
	default:
		return "any"
	}
}

// fault modes.
const (
	modeError uint8 = iota // fail the operation with ErrInjected
	modeDelay              // sleep, then let the operation proceed
)

// medium match values: cluster.SharedMemory, cluster.Network, or anyMedium.
const (
	anyMedium = -1
	anyCore   = -1
)

// FaultRule is the JSON form of one injection rule. Omitted src/dst/medium
// match any; a rule fires either with probability Prob per match or on the
// scripted window [FromOp, ToOp) of its own match counter, and stops for
// good after Max fires (0 = unlimited).
type FaultRule struct {
	// Op selects the operation kind: "send", "recv", "read", "call" or
	// "any".
	Op string `json:"op"`
	// Medium restricts the rule to one transfer medium: "shm", "network"
	// or "any" (default). Recv from AnySource has no determinable medium
	// and only matches medium-agnostic rules.
	Medium string `json:"medium,omitempty"`
	// Src/Dst restrict the rule to an initiating / serving core (for Read,
	// Dst is the owner of the buffer; for Recv, Dst is the receiving
	// core). nil matches any core.
	Src *int `json:"src,omitempty"`
	Dst *int `json:"dst,omitempty"`
	// Mode is "error" (fail the operation), "drop" (synonym for error:
	// the operation does not happen and the caller is told) or "delay".
	Mode string `json:"mode"`
	// Prob fires the rule on each match with this probability, decided
	// deterministically from the plan seed and the rule's match counter.
	Prob float64 `json:"prob,omitempty"`
	// FromOp/ToOp script a firing window on the rule's match counter
	// instead of a probability: matches FromOp <= n < ToOp fire.
	FromOp int64 `json:"from_op,omitempty"`
	ToOp   int64 `json:"to_op,omitempty"`
	// DelayUS is the injected delay in microseconds (delay mode only).
	DelayUS int64 `json:"delay_us,omitempty"`
	// Max bounds the total number of fires of this rule (0 = unlimited).
	// Probabilistic error rules in chaos tests set it so that recovery is
	// guaranteed to terminate.
	Max int64 `json:"max,omitempty"`
}

// compiledRule is the validated runtime form of a FaultRule.
type compiledRule struct {
	op      FaultOp // faultAnyOp = all
	medium  int     // cluster.Medium or anyMedium
	src     int     // core or anyCore
	dst     int     // core or anyCore
	mode    uint8
	prob    float64
	fromOp  int64
	toOp    int64 // only meaningful when prob == 0
	delay   time.Duration
	max     int64
	matches atomic.Int64
	fires   atomic.Int64
}

// FaultPlan is a compiled, installable set of injection rules. A plan
// carries its own match/fire counters, so installing the same *FaultPlan
// twice continues its sequence; parse a fresh plan for a fresh sequence.
type FaultPlan struct {
	seed     uint64
	rules    []*compiledRule
	injected atomic.Int64 // error-mode fires
	delayed  atomic.Int64 // delay-mode fires
}

// planJSON is the wire form of a plan.
type planJSON struct {
	Seed  uint64      `json:"seed"`
	Rules []FaultRule `json:"rules"`
}

// ParseFaultPlan loads and validates a fault plan from its JSON form.
// Malformed input returns an error, never a partially applied plan.
func ParseFaultPlan(data []byte) (*FaultPlan, error) {
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	var pj planJSON
	if err := dec.Decode(&pj); err != nil {
		return nil, fmt.Errorf("transport: fault plan: %w", err)
	}
	// Trailing garbage after the plan object is an error, not ignored.
	if dec.More() {
		return nil, fmt.Errorf("transport: fault plan: trailing data after plan object")
	}
	if len(pj.Rules) == 0 {
		return nil, fmt.Errorf("transport: fault plan has no rules")
	}
	p := &FaultPlan{seed: pj.Seed, rules: make([]*compiledRule, 0, len(pj.Rules))}
	for i, r := range pj.Rules {
		cr, err := compileRule(r)
		if err != nil {
			return nil, fmt.Errorf("transport: fault plan rule %d: %w", i, err)
		}
		p.rules = append(p.rules, cr)
	}
	return p, nil
}

func compileRule(r FaultRule) (*compiledRule, error) {
	cr := &compiledRule{src: anyCore, dst: anyCore, medium: anyMedium}
	switch r.Op {
	case "send":
		cr.op = FaultSend
	case "recv":
		cr.op = FaultRecv
	case "read":
		cr.op = FaultRead
	case "call":
		cr.op = FaultCall
	case "any":
		cr.op = faultAnyOp
	default:
		return nil, fmt.Errorf("unknown op %q (want send, recv, read, call or any)", r.Op)
	}
	switch r.Medium {
	case "", "any":
		cr.medium = anyMedium
	case "shm":
		cr.medium = int(cluster.SharedMemory)
	case "network":
		cr.medium = int(cluster.Network)
	default:
		return nil, fmt.Errorf("unknown medium %q (want shm, network or any)", r.Medium)
	}
	if r.Src != nil {
		if *r.Src < 0 {
			return nil, fmt.Errorf("negative src core %d", *r.Src)
		}
		cr.src = *r.Src
	}
	if r.Dst != nil {
		if *r.Dst < 0 {
			return nil, fmt.Errorf("negative dst core %d", *r.Dst)
		}
		cr.dst = *r.Dst
	}
	switch r.Mode {
	case "error", "drop":
		cr.mode = modeError
	case "delay":
		cr.mode = modeDelay
		if r.DelayUS <= 0 {
			return nil, fmt.Errorf("delay mode needs delay_us > 0, got %d", r.DelayUS)
		}
	default:
		return nil, fmt.Errorf("unknown mode %q (want error, drop or delay)", r.Mode)
	}
	if r.DelayUS < 0 {
		return nil, fmt.Errorf("negative delay_us %d", r.DelayUS)
	}
	// A per-operation delay beyond one second is a misconfiguration, not a
	// plausible stall model; rejecting it also keeps fuzzed plans from
	// wedging the loader's callers.
	if r.DelayUS > 1_000_000 {
		return nil, fmt.Errorf("delay_us %d exceeds the 1s bound", r.DelayUS)
	}
	cr.delay = time.Duration(r.DelayUS) * time.Microsecond
	if r.Prob < 0 || r.Prob > 1 {
		return nil, fmt.Errorf("prob %v outside [0, 1]", r.Prob)
	}
	cr.prob = r.Prob
	if r.FromOp < 0 || r.ToOp < 0 {
		return nil, fmt.Errorf("negative op window [%d, %d)", r.FromOp, r.ToOp)
	}
	if r.Prob == 0 && r.ToOp <= r.FromOp {
		return nil, fmt.Errorf("rule fires never: prob 0 and empty window [%d, %d)", r.FromOp, r.ToOp)
	}
	if r.Prob > 0 && (r.FromOp != 0 || r.ToOp != 0) {
		return nil, fmt.Errorf("prob and op window are mutually exclusive")
	}
	cr.fromOp, cr.toOp = r.FromOp, r.ToOp
	if r.Max < 0 {
		return nil, fmt.Errorf("negative max %d", r.Max)
	}
	cr.max = r.Max
	return cr, nil
}

// Injected returns the number of error faults the plan has injected.
func (p *FaultPlan) Injected() int64 { return p.injected.Load() }

// Delayed returns the number of delay faults the plan has injected.
func (p *FaultPlan) Delayed() int64 { return p.delayed.Load() }

// splitmix64 is the SplitMix64 finalizer; the probabilistic fire decision
// for a rule's n-th match is unit(splitmix64(seed ^ mix(rule, n))) < prob,
// a pure function with no shared RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// fires decides whether the rule's n-th match (0-based) fires, given the
// plan seed and the rule's index.
func (r *compiledRule) firesAt(seed uint64, idx int, n int64) bool {
	if r.prob > 0 {
		h := splitmix64(seed ^ uint64(idx)<<40 ^ uint64(n))
		return float64(h>>11)/float64(1<<53) < r.prob
	}
	return n >= r.fromOp && n < r.toOp
}

// matches reports whether the rule applies to an operation.
func (r *compiledRule) matchesOp(op FaultOp, md int, src, dst int) bool {
	if r.op != faultAnyOp && r.op != op {
		return false
	}
	if r.medium != anyMedium && r.medium != md {
		return false
	}
	if r.src != anyCore && r.src != src {
		return false
	}
	if r.dst != anyCore && r.dst != dst {
		return false
	}
	return true
}

// SetFaultPlan installs a fault plan on the fabric (nil removes it). Safe
// to call concurrently with fabric traffic; with no plan installed the
// only cost on every operation is one atomic pointer load.
func (f *Fabric) SetFaultPlan(p *FaultPlan) { f.fault.Store(p) }

// FaultsInjected returns the total number of error faults injected into
// this fabric since creation, across all plans it has carried. It counts
// independently of the obs registry so chaos tests and reports can assert
// on it with observability disabled.
func (f *Fabric) FaultsInjected() int64 { return f.faultsInjected.Load() }

// inject consults the installed fault plan for one operation. md is a
// cluster.Medium or anyMedium when the medium is not determinable (Recv
// from AnySource). It returns a non-nil error when an error fault fired;
// delay faults sleep here and return nil. Rules are evaluated in plan
// order: every fired delay accumulates, the first fired error wins.
func (f *Fabric) inject(op FaultOp, md int, src, dst cluster.CoreID) error {
	p := f.fault.Load()
	if p == nil {
		return nil
	}
	var delay time.Duration
	for i, r := range p.rules {
		if !r.matchesOp(op, md, int(src), int(dst)) {
			continue
		}
		n := r.matches.Add(1) - 1
		if !r.firesAt(p.seed, i, n) {
			continue
		}
		if r.max > 0 && r.fires.Add(1) > r.max {
			continue
		} else if r.max == 0 {
			r.fires.Add(1)
		}
		if r.mode == modeDelay {
			delay += r.delay
			p.delayed.Add(1)
			continue
		}
		if delay > 0 {
			time.Sleep(delay)
			obsFaultDelayNs.Observe(delay.Nanoseconds())
		}
		p.injected.Add(1)
		f.faultsInjected.Add(1)
		obsFaults[op].Inc()
		return fmt.Errorf("transport: %s %d->%d: %w (match %d)", op, src, dst, ErrInjected, n)
	}
	if delay > 0 {
		time.Sleep(delay)
		obsFaultDelayNs.Observe(delay.Nanoseconds())
	}
	return nil
}
