package tcpnet

import (
	"errors"

	"github.com/insitu/cods/internal/cluster"
)

// ErrStaleIncarnation marks a handshake against a peer process whose
// incarnation differs from the one this backend last observed: the node
// restarted behind the same address with empty endpoint state, or the
// route points at a replacement the membership layer has not installed
// yet. Dialing does not retry it — only SetPeerIncarnation/UpdatePeer
// (driven by the membership reconcile loop) clears the condition.
var ErrStaleIncarnation = errors.New("tcpnet: peer incarnation changed")

// PeerIncarnation returns the incarnation this backend expects node to be
// serving under (0 = none recorded; any incarnation is accepted and
// recorded on first contact).
func (b *Backend) PeerIncarnation(node cluster.NodeID) uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.peerInc[node]
}

// SetPeerIncarnation installs the incarnation node is now expected to
// serve under and drops the pooled connections that still talk to the
// previous process. The next operation redials and the handshake accepts
// the new identity.
func (b *Backend) SetPeerIncarnation(node cluster.NodeID, inc uint64) {
	b.mu.Lock()
	b.peerInc[node] = inc
	stale := b.pools[node]
	delete(b.pools, node)
	b.mu.Unlock()
	for _, c := range stale {
		c.Close()
	}
}

// UpdatePeer installs a replacement identity for node: its new address
// (ignored when empty or when the node is served by this process) and its
// new incarnation, flushing the node's connection pool either way.
func (b *Backend) UpdatePeer(node cluster.NodeID, addr string, inc uint64) {
	b.mu.Lock()
	if addr != "" && int(node) >= 0 && int(node) < len(b.owned) && !b.owned[int(node)] {
		b.addrs[node] = addr
	}
	b.peerInc[node] = inc
	stale := b.pools[node]
	delete(b.pools, node)
	b.mu.Unlock()
	for _, c := range stale {
		c.Close()
	}
}

// PushJoin announces a replacement identity for joined to every other
// remote peer process (and installs it locally first), so handlers on any
// node reach the new process instead of the dead one. Mirrors PushPeers'
// one-frame-per-distinct-process fan-out.
func (b *Backend) PushJoin(joined cluster.NodeID, addr string, inc uint64) error {
	b.UpdatePeer(joined, addr, inc)
	fr := &frame{Op: opJoin, Dst: int32(joined), Name: addr, Tag: inc}
	seen := make(map[string]bool)
	for node := range b.owned {
		if b.owned[node] || cluster.NodeID(node) == joined {
			continue
		}
		b.mu.Lock()
		peerAddr := b.addrs[cluster.NodeID(node)]
		b.mu.Unlock()
		if peerAddr == "" || seen[peerAddr] {
			continue
		}
		seen[peerAddr] = true
		resp, err := b.roundTrip(cluster.NodeID(node), fr, false)
		if err != nil {
			return err
		}
		if err := respErr(resp); err != nil {
			return err
		}
	}
	return nil
}

// ProbeLease performs one lease probe/renewal round trip against node,
// asserting the incarnation the lease was granted under (0 skips the
// assertion). It returns the incarnation the serving process reports. An
// error means the node is unreachable, not serving, or serving under a
// different incarnation — in every case the lease must not be renewed.
func (b *Backend) ProbeLease(node cluster.NodeID, inc uint64) (uint64, error) {
	resp, err := b.roundTrip(node, &frame{Op: opLease, Dst: int32(node), Tag: inc}, false)
	if err != nil {
		return 0, err
	}
	if err := respErr(resp); err != nil {
		return 0, err
	}
	return resp.Tag, nil
}

// DepartPeer asks the process serving node to leave the cluster
// gracefully and exit. Unlike ShutdownPeers it targets one node and
// reports the error: a failed depart means the membership layer must fall
// back to lease expiry.
func (b *Backend) DepartPeer(node cluster.NodeID) error {
	resp, err := b.roundTrip(node, &frame{Op: opDepart, Dst: int32(node)}, false)
	if err != nil {
		return err
	}
	return respErr(resp)
}

// TransferEntries ships a batch of handed-off lookup entries (an opaque
// payload agreed with the receiving side's transfer handler) to the
// process serving node and returns the number of entries it adopted.
func (b *Backend) TransferEntries(node cluster.NodeID, payload []byte) (int64, error) {
	resp, err := b.roundTrip(node, &frame{Op: opTransfer, Dst: int32(node), Payload: payload}, false)
	if err != nil {
		return 0, err
	}
	if err := respErr(resp); err != nil {
		return 0, err
	}
	return resp.Bytes, nil
}

// SetTransferHandler installs the function that applies an opTransfer
// payload on this serving process (nil uninstalls). The handler returns
// the number of entries adopted, echoed to the sender.
func (b *Backend) SetTransferHandler(h func([]byte) (int64, error)) {
	if h == nil {
		b.transferHandler.Store(nil)
		return
	}
	b.transferHandler.Store(&h)
}

// Incarnation returns the incarnation this backend's own serving process
// announces in handshakes (0 when elastic identity is disabled).
func (b *Backend) Incarnation() uint64 { return b.cfg.Incarnation }
