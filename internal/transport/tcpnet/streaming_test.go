package tcpnet

import (
	"net"
	"strings"
	"testing"

	"github.com/insitu/cods/internal/cluster"
)

// TestStreamOpsMirrorMonotone drives the three wire v5 streaming ops
// against a serving process and checks the node-local stream table they
// maintain: watermark, cursor positions and retained floor all advance
// monotonically, and a late or duplicate announcement never rewinds the
// recorded state — an elastic replacement must be able to resume a stream
// from this mirror without ever seeing it move backwards.
func TestStreamOpsMirrorMonotone(t *testing.T) {
	m, err := cluster.NewMachine(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := serveNode(t, m, 1)
	client := connectDriver(t, m, s.Addr(1))
	client.SetPeerIncarnation(1, 1)

	// Publish notifications advance the recorded watermark and echo it.
	if got, err := client.StreamPublish(1, "u", 2); err != nil || got != 2 {
		t.Fatalf("publish v2: latest=%d err=%v, want 2, nil", got, err)
	}
	// A late duplicate (a retried notify that lost a race) never rewinds.
	if got, err := client.StreamPublish(1, "u", 0); err != nil || got != 2 {
		t.Fatalf("late publish v0: latest=%d err=%v, want 2, nil", got, err)
	}

	// Cursor advances record per-consumer positions and return the
	// watermark so a resuming driver learns both in one round trip.
	if got, err := client.StreamAdvance(1, "u", 0, 1); err != nil || got != 2 {
		t.Fatalf("advance consumer 0: latest=%d err=%v, want 2, nil", got, err)
	}
	if got, err := client.StreamAdvance(1, "u", 1, 2); err != nil || got != 2 {
		t.Fatalf("advance consumer 1: latest=%d err=%v, want 2, nil", got, err)
	}
	// A stale position report never rewinds a cursor.
	if _, err := client.StreamAdvance(1, "u", 1, 0); err != nil {
		t.Fatalf("stale advance: %v", err)
	}

	// Retirement raises the floor, monotonically.
	if err := client.StreamRetire(1, "u", 1); err != nil {
		t.Fatalf("retire below 1: %v", err)
	}
	if err := client.StreamRetire(1, "u", 0); err != nil {
		t.Fatalf("late retire below 0: %v", err)
	}

	latest, floor, cursors := s.StreamTable("u")
	if latest != 2 || floor != 1 {
		t.Fatalf("stream table latest/floor = %d/%d, want 2/1", latest, floor)
	}
	if cursors[0] != 1 || cursors[1] != 2 || len(cursors) != 2 {
		t.Fatalf("stream table cursors = %v, want {0:1, 1:2}", cursors)
	}

	// A second stream gets its own table, starting empty.
	if latest, floor, cursors := s.StreamTable("w"); latest != -1 || floor != 0 || len(cursors) != 0 {
		t.Fatalf("fresh stream table = %d/%d/%v, want -1/0/empty", latest, floor, cursors)
	}
}

// TestStreamOpsFenceIncarnation: every streaming op addressed to a dead
// process's identity must be rejected by its replacement, exactly like a
// lease renewal — otherwise a driver that has not yet observed a node
// restart could plant stream state into a process that never owned the
// stream's blocks.
func TestStreamOpsFenceIncarnation(t *testing.T) {
	m, err := cluster.NewMachine(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := serveNode(t, m, 3)
	client := connectDriver(t, m, s.Addr(1))

	// Ops carrying the serving incarnation land.
	client.SetPeerIncarnation(1, 3)
	if _, err := client.StreamPublish(1, "u", 1); err != nil {
		t.Fatalf("matching publish: %v", err)
	}
	if _, err := client.StreamAdvance(1, "u", 0, 1); err != nil {
		t.Fatalf("matching advance: %v", err)
	}
	if err := client.StreamRetire(1, "u", 1); err != nil {
		t.Fatalf("matching retire: %v", err)
	}

	// Ops addressed to a previous incarnation must fail even though a live
	// process answers the socket — and must not touch the stream table.
	client.SetPeerIncarnation(1, 2)
	if _, err := client.StreamPublish(1, "u", 9); err == nil ||
		!strings.Contains(err.Error(), "incarnation") {
		t.Fatalf("stale publish: got %v, want an incarnation rejection", err)
	}
	if _, err := client.StreamAdvance(1, "u", 0, 9); err == nil ||
		!strings.Contains(err.Error(), "incarnation") {
		t.Fatalf("stale advance: got %v, want an incarnation rejection", err)
	}
	if err := client.StreamRetire(1, "u", 9); err == nil ||
		!strings.Contains(err.Error(), "incarnation") {
		t.Fatalf("stale retire: got %v, want an incarnation rejection", err)
	}
	if latest, floor, cursors := s.StreamTable("u"); latest != 1 || floor != 1 || cursors[0] != 1 {
		t.Fatalf("fenced ops changed the stream table: %d/%d/%v", latest, floor, cursors)
	}
}

// TestHandshakeRejectsV4Peer pins the wire v5 bump for the streaming ops:
// a peer still speaking v4 (membership, no streaming) is turned away at
// the handshake with a clean version error naming both versions — there
// is no mixed-version mode in which a v4 peer could silently ignore
// publish notifications and serve retired versions forever.
func TestHandshakeRejectsV4Peer(t *testing.T) {
	_, b := newLoopbackFabric(t, 1, 1)
	c, err := net.Dial("tcp", b.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hello := &frame{Op: opHello, Dst: 0, Tag: helloMagic, Version: int64(wireVersion) - 1, Bytes: 1, Bytes2: 1}
	if err := writeFrame(c, hello); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != statusErr || !strings.Contains(resp.Err, "wire version 4, want 5") {
		t.Fatalf("v4 hello answered with status %d, err %q; want a wire version rejection", resp.Status, resp.Err)
	}
}
