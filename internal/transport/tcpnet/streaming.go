package tcpnet

import (
	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/transport"
)

// Streaming control ops (wire v5). The driver's stream layer is the
// authority on watermarks, cursor positions and retained floors; these ops
// mirror that state into each owning node's stream table so an elastic
// replacement resumes streams at the live positions instead of zero. Every
// op carries the driver's notion of the target's incarnation in the Tag
// field and is fenced exactly like a lease probe: a stale process cannot
// acknowledge stream state addressed to its successor.

// nodeStream is one stream's node-local mirror: the highest complete
// watermark announced, the retained floor, and the last announced position
// of each cursor. Guarded by Backend.streamMu.
type nodeStream struct {
	latest  int64
	floor   int64
	cursors map[int64]int64
}

// streamFor returns (creating on first use) the node-local table of
// stream v. Callers hold b.streamMu.
func (b *Backend) streamFor(v string) *nodeStream {
	if b.streams == nil {
		b.streams = make(map[string]*nodeStream)
	}
	s := b.streams[v]
	if s == nil {
		s = &nodeStream{latest: -1, cursors: make(map[int64]int64)}
		b.streams[v] = s
	}
	return s
}

// streamPublishLocal records a watermark announcement and returns the
// recorded watermark (announcements are monotone; a late or duplicate
// notify never rewinds it).
func (b *Backend) streamPublishLocal(v string, version int64) int64 {
	b.streamMu.Lock()
	defer b.streamMu.Unlock()
	s := b.streamFor(v)
	if version > s.latest {
		s.latest = version
	}
	return s.latest
}

// streamAdvanceLocal records a cursor position and returns the recorded
// watermark.
func (b *Backend) streamAdvanceLocal(v string, consumer, pos int64) int64 {
	b.streamMu.Lock()
	defer b.streamMu.Unlock()
	s := b.streamFor(v)
	if pos > s.cursors[consumer] {
		s.cursors[consumer] = pos
	}
	return s.latest
}

// streamRetireLocal raises the retained floor and returns it.
func (b *Backend) streamRetireLocal(v string, below int64) int64 {
	b.streamMu.Lock()
	defer b.streamMu.Unlock()
	s := b.streamFor(v)
	if below > s.floor {
		s.floor = below
	}
	return s.floor
}

// StreamTable reports the node-local mirror of stream v: the recorded
// watermark, floor, and cursor positions (copied).
func (b *Backend) StreamTable(v string) (latest, floor int64, cursors map[int64]int64) {
	b.streamMu.Lock()
	defer b.streamMu.Unlock()
	s := b.streamFor(v)
	cursors = make(map[int64]int64, len(s.cursors))
	for k, p := range s.cursors {
		cursors[k] = p
	}
	return s.latest, s.floor, cursors
}

// StreamPublish notifies the process serving node that stream v's complete
// watermark reached version, and returns the node's recorded watermark.
// The frame carries the driver's notion of the node's incarnation, so a
// stale process rejects it (transport.StreamBackend).
func (b *Backend) StreamPublish(node cluster.NodeID, v string, version int64) (int64, error) {
	fr := &frame{Op: opPublish, Dst: int32(node), Name: v, Version: version, Tag: b.PeerIncarnation(node)}
	resp, err := b.roundTrip(node, fr, false)
	if err != nil {
		return 0, err
	}
	if err := respErr(resp); err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// StreamAdvance notifies the process serving node that consumer's cursor
// on stream v advanced to pos, and returns the node's recorded watermark
// (transport.StreamBackend).
func (b *Backend) StreamAdvance(node cluster.NodeID, v string, consumer, pos int64) (int64, error) {
	fr := &frame{Op: opCursor, Dst: int32(node), Name: v, Version: pos, Bytes: consumer, Tag: b.PeerIncarnation(node)}
	resp, err := b.roundTrip(node, fr, false)
	if err != nil {
		return 0, err
	}
	if err := respErr(resp); err != nil {
		return 0, err
	}
	return resp.Version, nil
}

// StreamRetire notifies the process serving node that stream v's versions
// below the given bound are retired (transport.StreamBackend).
func (b *Backend) StreamRetire(node cluster.NodeID, v string, below int64) error {
	fr := &frame{Op: opStreamGC, Dst: int32(node), Name: v, Version: below, Tag: b.PeerIncarnation(node)}
	resp, err := b.roundTrip(node, fr, false)
	if err != nil {
		return err
	}
	return respErr(resp)
}

// The compile-time check that Backend satisfies the optional streaming
// interface the fabric type-asserts for.
var _ transport.StreamBackend = (*Backend)(nil)
