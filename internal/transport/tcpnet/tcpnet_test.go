package tcpnet

import (
	"bytes"
	"errors"
	"reflect"
	"testing"
	"time"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/retry"
	"github.com/insitu/cods/internal/transport"
)

// echoPayload is a representative RPC payload, registered by value like
// the dht and lock request types; blockPayload is a representative
// exposed buffer, registered as a pointer like cods.StoredObject.
type echoPayload struct {
	Text string
	Vals []float64
}

type blockPayload struct {
	Text string
	Vals []float64
}

func init() {
	transport.RegisterWireType(echoPayload{})
	transport.RegisterWireType(&blockPayload{})
}

func testConfig() Config {
	p := retry.Default()
	p.Deadline = 5 * time.Second
	return Config{Retry: p, IOTimeout: 5 * time.Second}
}

func newLoopbackFabric(t *testing.T, nodes, cores int) (*transport.Fabric, *Backend) {
	t.Helper()
	m, err := cluster.NewMachine(nodes, cores)
	if err != nil {
		t.Fatal(err)
	}
	f := transport.NewFabric(m)
	b, err := NewLoopback(f, testConfig())
	if err != nil {
		t.Fatal(err)
	}
	f.SetBackend(b)
	t.Cleanup(func() {
		f.SetBackend(nil)
		b.Close()
	})
	return f, b
}

func sampleFrames() []*frame {
	return []*frame{
		{Op: opHello, Dst: 1, Tag: helloMagic, Version: int64(wireVersion), Bytes: 2, Bytes2: 4},
		{Op: opSend, Src: 0, Dst: 5, Tag: 42, MeterClass: uint8(cluster.InterApp), DstApp: 2,
			Phase: "couple:1", Payload: []byte("hello")},
		{Op: opRecv, Src: -1, Dst: 3, Tag: 7},
		{Op: opRead, Src: 2, Dst: 6, Name: "temperature", Version: 3, Bytes: 4096,
			Flags: flagWait, MeterClass: uint8(cluster.InterApp), DstApp: 2, Phase: "couple:3",
			Span: 0x123456789A},
		{Op: opCall, Src: 1, Dst: 0, Name: "cods.dht", Bytes: 64, Bytes2: 128,
			MeterClass: uint8(cluster.Control), Payload: []byte{1, 2, 3}, Span: 7},
		{Op: opSpans},
		{Op: opResp, Status: statusOK, Payload: []byte(`{"ev":"b","id":1,"name":"remote:read:t"}` + "\n")},
		{Op: opResp, Status: statusErr, Err: "transport: endpoint closed"},
		{Op: opResp, Status: statusOK, Payload: bytes.Repeat([]byte{0xAB}, 1024)},
		{Op: opReadMulti, Src: 2, Dst: 6, MeterClass: uint8(cluster.InterApp), DstApp: 2,
			Phase: "couple:3", Payload: sampleSpecPayload(), Span: 1<<48 | 9},
		// The scatter-gather response header: Bytes announces the segment
		// count of the raw stream that follows the frame.
		{Op: opResp, Status: statusOK, Bytes: 2},
		// Membership ops (wire v4): a join announcement carrying the new
		// address and incarnation, a lease renewal asserting the granted
		// incarnation, a graceful departure, an ownership-transfer batch,
		// and the handshake/lease acceptance echoing the server's
		// incarnation in Tag.
		{Op: opJoin, Dst: 2, Name: "127.0.0.1:9042", Tag: 7},
		{Op: opLease, Dst: 1, Tag: 3},
		{Op: opDepart, Dst: 0},
		{Op: opTransfer, Dst: 1, Payload: []byte{0x01, 0x00, 0x07, 'v', 'a', 'r'}},
		{Op: opResp, Status: statusOK, Tag: 12},
		// Streaming ops (wire v5): a publish notification announcing stream
		// "u"'s complete watermark, a cursor advance (consumer id in Bytes,
		// new position in Version), and a retirement raising the retained
		// floor. All three carry the target's incarnation in Tag.
		{Op: opPublish, Dst: 1, Name: "u", Version: 4, Tag: 2},
		{Op: opCursor, Dst: 1, Name: "u", Version: 3, Bytes: 1, Tag: 2},
		{Op: opStreamGC, Dst: 0, Name: "u", Version: 2, Tag: 2},
	}
}

// sampleSpecPayload is the encoded spec list of a representative
// scatter-gather request: two sub-boxes of one variable on one peer.
func sampleSpecPayload() []byte {
	specs := []transport.ReadSpec{
		{Owner: 6, Key: transport.BufKey{Name: "temperature|[0,8)x[0,8)", Version: 3},
			Sub: geometry.NewBBox(geometry.Point{1, 2}, geometry.Point{5, 6}), Bytes: 128},
		{Owner: 7, Key: transport.BufKey{Name: "temperature|[8,16)x[0,8)", Version: 3},
			Sub: geometry.NewBBox(geometry.Point{8, 0}, geometry.Point{9, 8}), Bytes: 64},
	}
	buf, err := appendReadSpecs(nil, specs)
	if err != nil {
		panic(err)
	}
	return buf
}

func TestWireRoundTrip(t *testing.T) {
	for _, fr := range sampleFrames() {
		buf, err := marshalFrame(fr)
		if err != nil {
			t.Fatalf("marshal %+v: %v", fr, err)
		}
		got, err := decodeFrame(buf[4:])
		if err != nil {
			t.Fatalf("decode %+v: %v", fr, err)
		}
		if !reflect.DeepEqual(fr, got) {
			t.Fatalf("round trip mismatch:\nwant %+v\ngot  %+v", fr, got)
		}
	}
}

func TestWireStrictDecode(t *testing.T) {
	buf, err := marshalFrame(sampleFrames()[1])
	if err != nil {
		t.Fatal(err)
	}
	body := buf[4:]
	// Every proper prefix of a valid body must fail, and fail as a short
	// frame (or invalid header field), never succeed or panic.
	for n := 0; n < len(body); n++ {
		if _, err := decodeFrame(body[:n]); err == nil {
			t.Fatalf("decode accepted %d-byte prefix of a %d-byte body", n, len(body))
		}
	}
	// Trailing garbage after a valid body is rejected.
	if _, err := decodeFrame(append(append([]byte(nil), body...), 0x00)); !errors.Is(err, errTrailingData) {
		t.Fatalf("trailing byte: got %v, want errTrailingData", err)
	}
	// Invalid op and meter class are rejected.
	bad := append([]byte(nil), body...)
	bad[0] = 0
	if _, err := decodeFrame(bad); err == nil {
		t.Fatal("decode accepted op 0")
	}
	bad[0] = opMax
	if _, err := decodeFrame(bad); err == nil {
		t.Fatal("decode accepted op opMax")
	}
	bad[0] = opSend
	bad[3] = uint8(cluster.Control) + 1
	if _, err := decodeFrame(bad); err == nil {
		t.Fatal("decode accepted out-of-range meter class")
	}
}

func TestLoopbackRemotePredicate(t *testing.T) {
	f, b := newLoopbackFabric(t, 2, 2)
	_ = f
	if b.Remote(0, 1) {
		t.Error("same-node cores must stay in-process")
	}
	if !b.Remote(0, 2) {
		t.Error("cross-node cores must traverse the wire")
	}
}

func TestLoopbackSendRecv(t *testing.T) {
	f, _ := newLoopbackFabric(t, 2, 2)
	m := transport.Meter{Phase: "test", Class: cluster.InterApp, DstApp: 2}
	done := make(chan transport.Message, 1)
	go func() {
		msg, err := f.Endpoint(2).Recv(0, 42)
		if err != nil {
			t.Error(err)
		}
		done <- msg
	}()
	if err := f.Endpoint(0).Send(2, 42, []byte("over the wire"), m); err != nil {
		t.Fatal(err)
	}
	msg := <-done
	if string(msg.Payload) != "over the wire" || msg.Src != 0 || msg.Tag != 42 {
		t.Fatalf("got %+v", msg)
	}
	if f.MediumBytes(cluster.Network) == 0 {
		t.Error("cross-node send recorded no network bytes")
	}
}

func TestLoopbackExposeReadCall(t *testing.T) {
	f, _ := newLoopbackFabric(t, 2, 2)
	m := transport.Meter{Phase: "test", Class: cluster.InterApp, DstApp: 2}
	key := transport.BufKey{Name: "var", Version: 1}
	owner, reader := f.Endpoint(1), f.Endpoint(3)

	if ok, err := reader.TryRead(1, key, m, 8, func(any) {}); err != nil || ok {
		t.Fatalf("TryRead before expose: ok=%v err=%v", ok, err)
	}
	want := &blockPayload{Text: "block", Vals: []float64{1, 2, 3}}
	if err := owner.Expose(key, want); err != nil {
		t.Fatal(err)
	}
	if !owner.Exposed(key) {
		t.Fatal("Exposed() false after Expose")
	}
	var got *blockPayload
	if err := reader.Read(1, key, m, 24, func(p any) { got = p.(*blockPayload) }); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("read %+v, want %+v", got, want)
	}
	if err := owner.Unexpose(key); err != nil {
		t.Fatal(err)
	}
	if owner.Exposed(key) {
		t.Fatal("Exposed() true after Unexpose")
	}

	f.Endpoint(0).RegisterHandler("echo", func(src cluster.CoreID, req any) (any, error) {
		in := req.(echoPayload)
		return echoPayload{Text: in.Text + "!", Vals: in.Vals}, nil
	})
	cm := transport.Meter{Phase: "test", Class: cluster.Control, DstApp: 2}
	resp, err := f.Endpoint(2).Call(0, "echo", echoPayload{Text: "ping", Vals: []float64{9}}, cm, 16, 16)
	if err != nil {
		t.Fatal(err)
	}
	if out := resp.(echoPayload); out.Text != "ping!" || out.Vals[0] != 9 {
		t.Fatalf("call returned %+v", out)
	}
}

func TestClosedEndpointErrorCrossesWire(t *testing.T) {
	f, _ := newLoopbackFabric(t, 2, 1)
	f.Endpoint(1).Close()
	err := f.Endpoint(0).Send(1, 1, []byte("x"), transport.Meter{Class: cluster.IntraApp})
	if !errors.Is(err, transport.ErrEndpointClosed) {
		t.Fatalf("got %v, want ErrEndpointClosed through the wire", err)
	}
}

func TestHandshakeRejectsShapeMismatch(t *testing.T) {
	_, server := newLoopbackFabric(t, 2, 2)
	mOther, err := cluster.NewMachine(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	fOther := transport.NewFabric(mOther)
	p := retry.Default()
	p.MaxAttempts = 1
	client, err := Connect(fOther, map[cluster.NodeID]string{
		0: server.Addr(0), 1: server.Addr(1), 2: server.Addr(0),
	}, Config{Retry: p, IOTimeout: 2 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	defer client.Close()
	if _, err := client.dial(0); !errors.Is(err, errHandshake) {
		t.Fatalf("got %v, want handshake rejection", err)
	}
}

func TestStatsMergeAcrossProcessShapes(t *testing.T) {
	// Loopback owns every node, so MergeRemoteStats must be a no-op there.
	f, b := newLoopbackFabric(t, 2, 2)
	m := transport.Meter{Phase: "t", Class: cluster.InterApp, DstApp: 2}
	go func() { _, _ = f.Endpoint(2).Recv(0, 9) }()
	if err := f.Endpoint(0).Send(2, 9, []byte("abcd"), m); err != nil {
		t.Fatal(err)
	}
	before := f.MediumBytes(cluster.Network)
	if err := b.MergeRemoteStats(); err != nil {
		t.Fatal(err)
	}
	if got := f.MediumBytes(cluster.Network); got != before {
		t.Fatalf("loopback MergeRemoteStats changed stats: %d -> %d", before, got)
	}
}
