package tcpnet

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/mutate"
	"github.com/insitu/cods/internal/obs"
	"github.com/insitu/cods/internal/retry"
	"github.com/insitu/cods/internal/transport"
)

// Registry instruments mirroring the backend's wire-level atomic counters:
// both are incremented at the same call sites, so a node's shipped
// registry snapshot reconciles exactly against its shipped WireStats (the
// same registry-vs-independent-source pattern transport.record uses for
// the per-medium counters). Process-wide like all obs instruments — equal
// to one backend's WireStats whenever the process runs a single backend
// with observability enabled from the start, which is exactly the codsrun
// driver and codsnode child configuration.
var (
	obsWireBytesOut      = obs.C("tcpnet.bytes_out")
	obsWireBytesIn       = obs.C("tcpnet.bytes_in")
	obsWireReadReqs      = obs.C("tcpnet.read.requests")
	obsWireReadMultiReqs = obs.C("tcpnet.readmulti.requests")
	obsWireSegments      = obs.C("tcpnet.segments.served")
	obsWireSegmentBytes  = obs.C("tcpnet.segments.bytes_served")
)

// Config tunes a TCP backend.
type Config struct {
	// Retry governs dialing a peer: attempts, backoff and the deadline
	// each connection attempt (dial + handshake) must finish within. The
	// zero value means a single attempt with no deadline.
	Retry retry.Policy
	// IOTimeout bounds each frame write and each non-blocking response
	// read on an established connection; 0 falls back to Retry.Deadline
	// (and to none when that is 0 too). Blocking operations — a Recv, a
	// waiting Read — legitimately block until a peer produces data, so
	// their response reads never carry a deadline; the layers above bound
	// them (the conformance watchdog, task-level retry deadlines).
	IOTimeout time.Duration
	// MaxFrame bounds a frame body (default 64 MiB).
	MaxFrame int
	// Incarnation identifies this serving process's lifetime: a replacement
	// process for the same node must carry a higher value. It is announced
	// in every handshake response and checked by reconnecting clients, so a
	// crash-and-restart behind an unchanged address is detected instead of
	// silently served by a peer with empty state. 0 disables the check (the
	// loopback and plain-driver configurations).
	Incarnation uint64
	// ReadPatience bounds the deferred wait of a serving-side waiting read
	// (opRead with flagWait, every opReadMulti segment): a buffer not
	// exposed within the window fails the read with a retryable error
	// instead of holding the exchange open indefinitely. Elastic clusters
	// set it on every codsnode so a read that raced a node replacement —
	// routed to a process that never receives the buffer — is bounced back
	// to the reader's retry layer, which re-pulls against the reconciled
	// routing. 0 (the default) waits forever, the classic in-situ
	// deferred-read semantics.
	ReadPatience time.Duration
}

// Backend is a transport.Backend moving operations between simulated
// nodes over TCP. A process owns the endpoint state of zero or more
// nodes: a codsnode child owns one, the conformance loopback backend owns
// all of them (cross-node traffic still travels through real sockets),
// and a driver owns none. Each owned node has its own listener; every
// accepted connection is served by its own goroutine, which executes
// operations against the fabric's Local* methods — metering therefore
// happens in the process that moves the bytes.
type Backend struct {
	fabric  *transport.Fabric
	machine *cluster.Machine
	cfg     Config
	owned   []bool

	mu          sync.Mutex
	addrs       map[cluster.NodeID]string
	pools       map[cluster.NodeID][]net.Conn
	serverConns map[net.Conn]bool
	// peerInc records the last incarnation observed for each peer node
	// (0 = none yet). A handshake that reports a different incarnation
	// fails with ErrStaleIncarnation until the membership layer installs
	// the new identity via SetPeerIncarnation/UpdatePeer.
	peerInc map[cluster.NodeID]uint64

	// transferHandler, when set, applies an opTransfer payload (a batch of
	// handed-off lookup entries) and returns the number of entries adopted.
	transferHandler atomic.Pointer[func([]byte) (int64, error)]

	listeners []net.Listener
	wg        sync.WaitGroup
	closed    atomic.Bool

	stats struct {
		bytesOut, bytesIn           atomic.Int64
		readRequests, readMultiReqs atomic.Int64
		segments, segmentBytes      atomic.Int64
	}

	// spanTracer, when set, emits a handler span for every remote
	// operation that carries trace context (frame.Span != 0) into
	// spanSink, to be drained by the driver through opSpans.
	spanTracer atomic.Pointer[obs.Tracer]
	spanSink   spanSink

	// accounts is the per-peer accounting collected by the last
	// MergeRemoteStats fan-out, guarded by mu.
	accounts []NodeAccount

	// streams is this node's stream table (streaming.go): the watermark,
	// retained floor and cursor positions mirrored from the driver through
	// the incarnation-fenced wire v5 streaming ops, guarded by streamMu.
	streamMu sync.Mutex
	streams  map[string]*nodeStream

	shutdownOnce sync.Once
	shutdownCh   chan struct{}
}

// spanSink buffers the JSON Lines output of the remote-span tracer until
// a driver drains it. Only complete lines are drained: the tracer's
// bufio layer may flush mid-line while handler goroutines are still
// emitting, so the tail after the last newline stays buffered — a
// concurrent drain never ships a torn line.
type spanSink struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (s *spanSink) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.buf.Write(p)
}

func (s *spanSink) drain() []byte {
	s.mu.Lock()
	defer s.mu.Unlock()
	b := s.buf.Bytes()
	i := bytes.LastIndexByte(b, '\n')
	if i < 0 {
		return nil
	}
	out := append([]byte(nil), b[:i+1]...)
	rest := append([]byte(nil), b[i+1:]...)
	s.buf.Reset()
	s.buf.Write(rest)
	return out
}

// WireStats is a snapshot of a backend's wire-level counters: the bytes
// written to and read from its dialed (client-side) connections,
// handshakes included; the one-sided read request frames it issued, by
// kind; and the scatter-gather segments its server side clipped and
// streamed. In loopback mode one backend is both sides, so a probe sees
// the whole exchange; in a multi-process deployment each process reports
// its own half.
type WireStats struct {
	BytesOut, BytesIn               int64
	ReadRequests, ReadMultiRequests int64
	SegmentsServed                  int64
	SegmentBytesServed              int64
}

// WireStats returns the current wire counter snapshot.
func (b *Backend) WireStats() WireStats {
	return WireStats{
		BytesOut:           b.stats.bytesOut.Load(),
		BytesIn:            b.stats.bytesIn.Load(),
		ReadRequests:       b.stats.readRequests.Load(),
		ReadMultiRequests:  b.stats.readMultiReqs.Load(),
		SegmentsServed:     b.stats.segments.Load(),
		SegmentBytesServed: b.stats.segmentBytes.Load(),
	}
}

// EnableSpanCapture starts emitting a node-labelled handler span for
// every remote operation served here that carries trace context
// (opRead/opReadMulti/opCall with a nonzero Span field). The spans are
// buffered in-process and shipped to the driver on demand (opSpans /
// DrainRemoteSpans). Span IDs are namespaced per process — node k's
// spans start above (k+1)<<48 — so merged traces never collide with the
// driver's own IDs, which stay far below. Idempotent.
func (b *Backend) EnableSpanCapture() {
	if b.spanTracer.Load() != nil {
		return
	}
	tr := obs.NewTracer(&b.spanSink)
	tr.SetIDBase(uint64(b.firstOwnedNode()+1) << 48)
	if !b.spanTracer.CompareAndSwap(nil, tr) {
		return // lost a concurrent enable; keep the winner
	}
}

func (b *Backend) firstOwnedNode() int {
	for node, owned := range b.owned {
		if owned {
			return node
		}
	}
	return 0
}

// nodeLabel names the node that serves a target core, for span labels.
func (b *Backend) nodeLabel(target int32) string {
	return fmt.Sprintf("node%d", b.machine.NodeOf(cluster.CoreID(target)))
}

// drainSpans flushes and returns the buffered remote span lines,
// clearing the buffer. Returns nil when capture is off or nothing has
// been emitted.
func (b *Backend) drainSpans() []byte {
	tr := b.spanTracer.Load()
	if tr == nil {
		return nil
	}
	_ = tr.Flush()
	return b.spanSink.drain()
}

// DrainRemoteSpans collects the handler spans every peer process
// buffered — plus this process's own captured spans in loopback mode —
// and splices them into tr (the driver's trace file). Like
// MergeRemoteStats, each distinct peer process is queried once. Call it
// after the workflow completes and before flushing the trace.
func (b *Backend) DrainRemoteSpans(tr *obs.Tracer) error {
	tr.AppendRaw(b.drainSpans())
	seen := make(map[string]bool)
	for node := range b.owned {
		if b.owned[node] {
			continue
		}
		b.mu.Lock()
		addr := b.addrs[cluster.NodeID(node)]
		b.mu.Unlock()
		if addr == "" || seen[addr] {
			continue
		}
		seen[addr] = true
		resp, err := b.roundTrip(cluster.NodeID(node), &frame{Op: opSpans}, false)
		if err != nil {
			return err
		}
		if err := respErr(resp); err != nil {
			return err
		}
		tr.AppendRaw(resp.Payload)
	}
	return nil
}

// countingConn charges every read and write on a dialed connection to the
// backend's byte counters (and their registry mirrors).
type countingConn struct {
	net.Conn
	in, out *atomic.Int64
}

func (c countingConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.in.Add(int64(n))
	obsWireBytesIn.Add(int64(n))
	return n, err
}

func (c countingConn) Write(p []byte) (int, error) {
	n, err := c.Conn.Write(p)
	c.out.Add(int64(n))
	obsWireBytesOut.Add(int64(n))
	return n, err
}

func newBackend(f *transport.Fabric, cfg Config) *Backend {
	if cfg.Retry == (retry.Policy{}) {
		// An unconfigured backend still gets bounded dials: the default
		// policy's deadline also becomes the per-frame IO timeout.
		cfg.Retry = retry.Default()
	}
	return &Backend{
		fabric:      f,
		machine:     f.Machine(),
		cfg:         cfg,
		owned:       make([]bool, f.Machine().NumNodes()),
		addrs:       make(map[cluster.NodeID]string),
		pools:       make(map[cluster.NodeID][]net.Conn),
		serverConns: make(map[net.Conn]bool),
		peerInc:     make(map[cluster.NodeID]uint64),
		shutdownCh:  make(chan struct{}),
	}
}

// NewLoopback serves every node of the machine from this process, each on
// its own 127.0.0.1 listener. Same-node operations stay in-process;
// cross-node operations make a full round trip through the sockets. The
// conformance harness uses it as the TCP dimension of every scenario.
func NewLoopback(f *transport.Fabric, cfg Config) (*Backend, error) {
	b := newBackend(f, cfg)
	for node := range b.owned {
		if err := b.listen(cluster.NodeID(node), "127.0.0.1:0"); err != nil {
			b.Close()
			return nil, err
		}
	}
	return b, nil
}

// Serve owns a single node of the machine, listening on addr — the
// codsnode child configuration. Peer addresses arrive later through an
// opPeers frame (SetPeers).
func Serve(f *transport.Fabric, node cluster.NodeID, addr string, cfg Config) (*Backend, error) {
	b := newBackend(f, cfg)
	if int(node) < 0 || int(node) >= len(b.owned) {
		return nil, fmt.Errorf("tcpnet: node %d out of range", node)
	}
	if err := b.listen(node, addr); err != nil {
		return nil, err
	}
	return b, nil
}

// Connect owns no node: every operation is remote — the driver
// configuration of codsrun -backend=tcp. peers maps each node to the
// address its codsnode child listens on.
func Connect(f *transport.Fabric, peers map[cluster.NodeID]string, cfg Config) (*Backend, error) {
	b := newBackend(f, cfg)
	for node := range b.owned {
		if _, ok := peers[cluster.NodeID(node)]; !ok {
			b.Close()
			return nil, fmt.Errorf("tcpnet: no peer address for node %d", node)
		}
	}
	for node, addr := range peers {
		b.addrs[node] = addr
	}
	return b, nil
}

func (b *Backend) listen(node cluster.NodeID, addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return fmt.Errorf("tcpnet: listening for node %d: %w", node, err)
	}
	b.owned[int(node)] = true
	b.addrs[node] = ln.Addr().String()
	b.listeners = append(b.listeners, ln)
	b.wg.Add(1)
	go b.acceptLoop(ln)
	return nil
}

// Name implements transport.Backend.
func (b *Backend) Name() string { return "tcp" }

// Addr returns the listen address of an owned node ("" when not owned).
func (b *Backend) Addr(node cluster.NodeID) string {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.owned[int(node)] {
		return ""
	}
	return b.addrs[node]
}

// SetPeers installs the addresses of nodes served elsewhere, so handlers
// running in this process (a lock grant, a forwarded op) can reach them.
func (b *Backend) SetPeers(peers map[cluster.NodeID]string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for node, addr := range peers {
		if int(node) >= 0 && int(node) < len(b.owned) && !b.owned[int(node)] {
			b.addrs[node] = addr
		}
	}
}

// Done is closed when a peer asks this backend's process to shut down.
func (b *Backend) Done() <-chan struct{} { return b.shutdownCh }

// Remote implements transport.Backend: an operation traverses the wire
// when the target core's endpoint state lives in another process, or —
// the HybridDART network path — when initiator and target sit on
// different nodes even though both are owned here (loopback mode).
func (b *Backend) Remote(initiator, target cluster.CoreID) bool {
	if !b.owned[int(b.machine.NodeOf(target))] {
		return true
	}
	return !b.machine.SameNode(initiator, target)
}

// ioTimeout is the per-frame deadline for writes and non-blocking reads.
func (b *Backend) ioTimeout() time.Duration {
	if b.cfg.IOTimeout > 0 {
		return b.cfg.IOTimeout
	}
	return b.cfg.Retry.Deadline
}

// errHandshake marks a peer that answered but refused the handshake —
// wrong wire version or machine shape. Retrying cannot fix it.
var errHandshake = errors.New("tcpnet: handshake rejected")

// dial connects to a node's server and completes the versioned handshake,
// retrying transient failures under the configured policy.
func (b *Backend) dial(node cluster.NodeID) (net.Conn, error) {
	b.mu.Lock()
	addr := b.addrs[node]
	b.mu.Unlock()
	if addr == "" {
		return nil, fmt.Errorf("tcpnet: no address for node %d", node)
	}
	var conn net.Conn
	retryable := func(err error) bool {
		return !errors.Is(err, errHandshake) && !errors.Is(err, ErrStaleIncarnation)
	}
	_, err := retry.Do(b.cfg.Retry, uint64(node)*0x9e3779b97f4a7c15, retryable, nil, func(int) error {
		raw, err := net.DialTimeout("tcp", addr, b.ioTimeout())
		if err != nil {
			return err
		}
		c := countingConn{Conn: raw, in: &b.stats.bytesIn, out: &b.stats.bytesOut}
		if err := b.handshake(c, node); err != nil {
			c.Close()
			return err
		}
		conn = c
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("tcpnet: dialing node %d at %s: %w", node, addr, err)
	}
	return conn, nil
}

// handshake announces the wire version and machine shape and waits for
// the peer's acceptance.
func (b *Backend) handshake(c net.Conn, node cluster.NodeID) error {
	if d := b.ioTimeout(); d > 0 {
		c.SetDeadline(time.Now().Add(d))
		defer c.SetDeadline(time.Time{})
	}
	want := b.PeerIncarnation(node)
	hello := &frame{
		Op:      opHello,
		Dst:     int32(node),
		Tag:     helloMagic,
		Version: int64(wireVersion),
		Bytes:   int64(b.machine.NumNodes()),
		Bytes2:  int64(b.machine.CoresPerNode()),
		Span:    want, // the incarnation this client expects (0 = none)
	}
	if err := writeFrame(c, hello); err != nil {
		return err
	}
	resp, err := readFrame(c, b.cfg.MaxFrame)
	if err != nil {
		return err
	}
	if resp.Op != opResp || resp.Status != statusOK {
		return fmt.Errorf("%w: %s", errHandshake, resp.Err)
	}
	// The response Tag is the server's incarnation. A peer that restarted
	// behind the same address answers the handshake happily — but with
	// empty endpoint state, so silently reusing the route would turn every
	// staged buffer into a hang. Reject the connection until the
	// membership layer acknowledges the new incarnation.
	if resp.Tag != 0 {
		if want != 0 && resp.Tag != want {
			return fmt.Errorf("tcpnet: node %d reports incarnation %d, expected %d: %w",
				node, resp.Tag, want, ErrStaleIncarnation)
		}
		b.mu.Lock()
		b.peerInc[node] = resp.Tag
		b.mu.Unlock()
	}
	return nil
}

// checkHello validates a client's handshake against this server.
func (b *Backend) checkHello(fr *frame) error {
	if fr.Op != opHello || fr.Tag != helloMagic {
		return fmt.Errorf("not a tcpnet hello")
	}
	if fr.Version != int64(wireVersion) {
		return fmt.Errorf("wire version %d, want %d", fr.Version, wireVersion)
	}
	if fr.Bytes != int64(b.machine.NumNodes()) || fr.Bytes2 != int64(b.machine.CoresPerNode()) {
		return fmt.Errorf("machine shape %dx%d, want %dx%d",
			fr.Bytes, fr.Bytes2, b.machine.NumNodes(), b.machine.CoresPerNode())
	}
	if int(fr.Dst) < 0 || int(fr.Dst) >= len(b.owned) || !b.owned[int(fr.Dst)] {
		return fmt.Errorf("node %d is not served here", fr.Dst)
	}
	return nil
}

// conn returns a pooled connection to node, dialing when the pool is
// empty; cached reports whether the connection was reused.
func (b *Backend) conn(node cluster.NodeID) (c net.Conn, cached bool, err error) {
	b.mu.Lock()
	if list := b.pools[node]; len(list) > 0 {
		c = list[len(list)-1]
		b.pools[node] = list[:len(list)-1]
		b.mu.Unlock()
		return c, true, nil
	}
	b.mu.Unlock()
	c, err = b.dial(node)
	return c, false, err
}

func (b *Backend) release(node cluster.NodeID, c net.Conn) {
	if b.closed.Load() {
		c.Close()
		return
	}
	b.mu.Lock()
	b.pools[node] = append(b.pools[node], c)
	b.mu.Unlock()
}

// exchange writes one request frame and reads its response. wrote reports
// whether the request hit the wire — a false wrote on a cached connection
// means the peer closed it while pooled, which is safe to retry on a
// fresh connection; any later failure is not, since the operation may
// already have executed remotely.
func (b *Backend) exchange(c net.Conn, fr *frame, blocking bool) (resp *frame, wrote bool, err error) {
	if d := b.ioTimeout(); d > 0 {
		c.SetWriteDeadline(time.Now().Add(d))
	}
	if err := writeFrame(c, fr); err != nil {
		return nil, false, err
	}
	if d := b.ioTimeout(); d > 0 && !blocking {
		c.SetReadDeadline(time.Now().Add(d))
	} else {
		c.SetReadDeadline(time.Time{})
	}
	resp, err = readFrame(c, b.cfg.MaxFrame)
	return resp, true, err
}

// roundTrip performs one request/response exchange against the server of
// node, reusing pooled connections.
func (b *Backend) roundTrip(node cluster.NodeID, fr *frame, blocking bool) (*frame, error) {
	for {
		c, cached, err := b.conn(node)
		if err != nil {
			return nil, err
		}
		resp, wrote, err := b.exchange(c, fr, blocking)
		if err != nil {
			c.Close()
			if cached && !wrote {
				continue // stale pooled connection; redial
			}
			return nil, fmt.Errorf("tcpnet: exchange with node %d: %w", node, err)
		}
		b.release(node, c)
		if resp.Op != opResp {
			return nil, fmt.Errorf("tcpnet: unexpected response op %d from node %d", resp.Op, node)
		}
		return resp, nil
	}
}

// respErr maps a response status to the caller-visible error, preserving
// the ErrEndpointClosed sentinel across the wire so retry layers keep
// treating it as terminal.
func respErr(resp *frame) error {
	switch resp.Status {
	case statusOK, statusNotFound:
		return nil
	case statusClosed:
		return fmt.Errorf("tcpnet: %s: %w", resp.Err, transport.ErrEndpointClosed)
	default:
		return fmt.Errorf("tcpnet: remote: %s", resp.Err)
	}
}

func meterFrame(fr *frame, m transport.Meter) {
	fr.MeterClass = uint8(m.Class)
	fr.DstApp = int32(m.DstApp)
	fr.Phase = m.Phase
	fr.Span = m.Span
}

func frameMeter(fr *frame) transport.Meter {
	return transport.Meter{Phase: fr.Phase, Class: cluster.Class(fr.MeterClass), DstApp: int(fr.DstApp), Span: fr.Span}
}

// Send implements transport.Backend.
func (b *Backend) Send(src, dst cluster.CoreID, tag uint64, payload []byte, m transport.Meter) error {
	fr := &frame{Op: opSend, Src: int32(src), Dst: int32(dst), Tag: tag, Payload: payload}
	meterFrame(fr, m)
	resp, err := b.roundTrip(b.machine.NodeOf(dst), fr, false)
	if err != nil {
		return err
	}
	return respErr(resp)
}

// Recv implements transport.Backend. The response read carries no
// deadline: a receive legitimately blocks until a matching send.
func (b *Backend) Recv(on, src cluster.CoreID, tag uint64) (transport.Message, error) {
	fr := &frame{Op: opRecv, Src: int32(src), Dst: int32(on), Tag: tag}
	resp, err := b.roundTrip(b.machine.NodeOf(on), fr, true)
	if err != nil {
		return transport.Message{}, err
	}
	if err := respErr(resp); err != nil {
		return transport.Message{}, err
	}
	return transport.Message{Src: cluster.CoreID(resp.Src), Tag: resp.Tag, Payload: resp.Payload}, nil
}

// Read implements transport.Backend: the single-buffer read ships the
// whole exposed buffer and the reader's callback copies its region out,
// exactly like the in-process payload sharing. Sub-box reads that should
// move only clipped bytes go through ReadMulti (DESIGN §5f).
func (b *Backend) Read(reader, owner cluster.CoreID, key transport.BufKey, m transport.Meter, n int64, wait bool) (any, bool, error) {
	b.stats.readRequests.Add(1)
	obsWireReadReqs.Inc()
	fr := &frame{Op: opRead, Src: int32(reader), Dst: int32(owner), Name: key.Name, Version: int64(key.Version), Bytes: n}
	meterFrame(fr, m)
	if wait {
		fr.Flags |= flagWait
	}
	resp, err := b.roundTrip(b.machine.NodeOf(owner), fr, wait)
	if err != nil {
		return nil, false, err
	}
	if resp.Status == statusNotFound {
		return nil, false, nil
	}
	if err := respErr(resp); err != nil {
		return nil, false, err
	}
	payload, err := transport.DecodePayload(resp.Payload)
	if err != nil {
		return nil, false, err
	}
	return payload, true, nil
}

// ReadMulti implements transport.Backend: one scatter-gather request
// frame carries the whole batch to the node serving the owners; the
// response header announces the segment count and the pipelined stream
// behind it delivers each owner-clipped sub-box straight to the caller.
// The redial rule matches roundTrip: only a request that never hit the
// wire on a cached connection is retried on a fresh one.
func (b *Backend) ReadMulti(reader cluster.CoreID, specs []transport.ReadSpec, m transport.Meter, deliver transport.SegmentFunc) error {
	if len(specs) == 0 {
		return nil
	}
	node := b.machine.NodeOf(specs[0].Owner)
	bp := getBuf()
	defer putBuf(bp)
	payload, err := appendReadSpecs((*bp)[:0], specs)
	if err != nil {
		return err
	}
	*bp = payload[:0]
	fr := &frame{Op: opReadMulti, Src: int32(reader), Dst: int32(specs[0].Owner), Payload: payload}
	meterFrame(fr, m)
	b.stats.readMultiReqs.Add(1)
	obsWireReadMultiReqs.Inc()
	for {
		c, cached, err := b.conn(node)
		if err != nil {
			return err
		}
		wrote, err := b.readMultiExchange(c, fr, specs, deliver)
		if err != nil {
			c.Close()
			if cached && !wrote {
				continue // stale pooled connection; redial
			}
			return fmt.Errorf("tcpnet: scatter-gather read from node %d: %w", node, err)
		}
		b.release(node, c)
		return nil
	}
}

// readMultiExchange writes one scatter-gather request and consumes its
// response stream, delivering each segment through a pooled staging
// buffer that is only valid for the duration of the callback.
func (b *Backend) readMultiExchange(c net.Conn, fr *frame, specs []transport.ReadSpec, deliver transport.SegmentFunc) (wrote bool, err error) {
	if d := b.ioTimeout(); d > 0 {
		c.SetWriteDeadline(time.Now().Add(d))
	}
	if err := writeFrame(c, fr); err != nil {
		return false, err
	}
	// The stream legitimately blocks until every buffer is exposed; no
	// read deadline, exactly like a waiting opRead.
	c.SetReadDeadline(time.Time{})
	resp, err := readFrame(c, b.cfg.MaxFrame)
	if err != nil {
		return true, err
	}
	if resp.Op != opResp {
		return true, fmt.Errorf("unexpected response op %d", resp.Op)
	}
	if err := respErr(resp); err != nil {
		return true, err
	}
	if int(resp.Bytes) != len(specs) {
		return true, fmt.Errorf("response announces %d segments, want %d", resp.Bytes, len(specs))
	}
	bp := getBuf()
	defer putBuf(bp)
	for i := range specs {
		status, index, length, err := readSegmentHeader(c, b.cfg.MaxFrame)
		if err != nil {
			return true, err
		}
		if index != i {
			return true, fmt.Errorf("segment %d arrived at position %d", index, i)
		}
		var body []byte
		if length <= maxPooledBuf {
			body = grownBuf(bp, length)
		} else {
			body = make([]byte, length)
		}
		if _, err := io.ReadFull(c, body); err != nil {
			return true, err
		}
		switch status {
		case statusOK:
		case statusClosed:
			return true, fmt.Errorf("%s: %w", string(body), transport.ErrEndpointClosed)
		default:
			return true, fmt.Errorf("remote: %s", string(body))
		}
		if err := deliver(i, nil, body); err != nil {
			return true, err
		}
	}
	return true, nil
}

// Call implements transport.Backend.
func (b *Backend) Call(src, dst cluster.CoreID, service string, request any, m transport.Meter, reqBytes, respBytes int64) (any, error) {
	enc, err := transport.EncodePayload(request)
	if err != nil {
		return nil, err
	}
	fr := &frame{Op: opCall, Src: int32(src), Dst: int32(dst), Name: service, Bytes: reqBytes, Bytes2: respBytes, Payload: enc}
	meterFrame(fr, m)
	resp, err := b.roundTrip(b.machine.NodeOf(dst), fr, true)
	if err != nil {
		return nil, err
	}
	if err := respErr(resp); err != nil {
		return nil, err
	}
	return transport.DecodePayload(resp.Payload)
}

// Expose implements transport.Backend.
func (b *Backend) Expose(owner cluster.CoreID, key transport.BufKey, payload any) error {
	enc, err := transport.EncodePayload(payload)
	if err != nil {
		return err
	}
	fr := &frame{Op: opExpose, Dst: int32(owner), Name: key.Name, Version: int64(key.Version), Payload: enc}
	resp, err := b.roundTrip(b.machine.NodeOf(owner), fr, false)
	if err != nil {
		return err
	}
	return respErr(resp)
}

// Unexpose implements transport.Backend.
func (b *Backend) Unexpose(owner cluster.CoreID, key transport.BufKey) error {
	fr := &frame{Op: opUnexpose, Dst: int32(owner), Name: key.Name, Version: int64(key.Version)}
	resp, err := b.roundTrip(b.machine.NodeOf(owner), fr, false)
	if err != nil {
		return err
	}
	return respErr(resp)
}

// Exposed implements transport.Backend.
func (b *Backend) Exposed(owner cluster.CoreID, key transport.BufKey) (bool, error) {
	fr := &frame{Op: opExposed, Dst: int32(owner), Name: key.Name, Version: int64(key.Version)}
	resp, err := b.roundTrip(b.machine.NodeOf(owner), fr, false)
	if err != nil {
		return false, err
	}
	if resp.Status == statusNotFound {
		return false, nil
	}
	return true, respErr(resp)
}

// nodeStats ships one process's recorded transfer accounting to the
// driver: the fabric's per-medium counters, the full metrics snapshot
// (class/medium totals, per-app volumes, flows), the process's obs
// registry and its wire-level counters — everything the driver needs to
// build a per-node report section that reconciles registry values
// against the two independent sources.
type nodeStats struct {
	ShmBytes, ShmOps int64
	NetBytes, NetOps int64
	Metrics          cluster.MetricsSnapshot
	Registry         obs.Snapshot
	Wire             WireStats
}

// NodeAccount is the retained accounting of one remote peer process, as
// collected by the last MergeRemoteStats fan-out: which nodes it serves,
// its fabric per-medium totals, its registry snapshot and its wire
// counters. The driver's report builder turns each into a per-node
// report section.
type NodeAccount struct {
	Addr             string
	Nodes            []int
	ShmBytes, ShmOps int64
	NetBytes, NetOps int64
	Metrics          cluster.MetricsSnapshot
	Registry         obs.Snapshot
	Wire             WireStats
}

// NodeAccounts returns the per-peer accounting retained by the last
// MergeRemoteStats call (nil before the first).
func (b *Backend) NodeAccounts() []NodeAccount {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]NodeAccount(nil), b.accounts...)
}

// MergeRemoteStats pulls the transfer accounting every remote peer
// recorded while executing this process's operations and folds it into
// the local fabric and machine metrics. Each distinct peer process is
// queried once (a peer owning several nodes answers for all of them), so
// the merged totals equal what a single-process run records. Call it
// after the workflow completes and before reading any traffic report.
func (b *Backend) MergeRemoteStats() error {
	seen := make(map[string]int)
	var accounts []NodeAccount
	for node := range b.owned {
		if b.owned[node] {
			continue
		}
		b.mu.Lock()
		addr := b.addrs[cluster.NodeID(node)]
		b.mu.Unlock()
		if addr == "" {
			continue
		}
		if i, ok := seen[addr]; ok {
			accounts[i].Nodes = append(accounts[i].Nodes, node)
			continue
		}
		resp, err := b.roundTrip(cluster.NodeID(node), &frame{Op: opStats}, false)
		if err != nil {
			return err
		}
		if err := respErr(resp); err != nil {
			return err
		}
		var ns nodeStats
		if err := gob.NewDecoder(bytes.NewReader(resp.Payload)).Decode(&ns); err != nil {
			return fmt.Errorf("tcpnet: decoding stats from node %d: %w", node, err)
		}
		b.fabric.MergeMediumStats(ns.ShmBytes, ns.ShmOps, ns.NetBytes, ns.NetOps)
		b.machine.Metrics().Merge(ns.Metrics)
		accounts = append(accounts, NodeAccount{
			Addr:     addr,
			Nodes:    []int{node},
			ShmBytes: ns.ShmBytes, ShmOps: ns.ShmOps,
			NetBytes: ns.NetBytes, NetOps: ns.NetOps,
			Metrics:  ns.Metrics,
			Registry: ns.Registry,
			Wire:     ns.Wire,
		})
		seen[addr] = len(accounts) - 1
	}
	b.mu.Lock()
	b.accounts = accounts
	b.mu.Unlock()
	return nil
}

// PushPeers distributes the full node address table to every remote peer,
// so peers can reach each other (a handler on one node sending to
// another).
func (b *Backend) PushPeers() error {
	b.mu.Lock()
	table := make(map[cluster.NodeID]string, len(b.addrs))
	for node, addr := range b.addrs {
		table[node] = addr
	}
	b.mu.Unlock()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(table); err != nil {
		return err
	}
	seen := make(map[string]bool)
	for node := range b.owned {
		if b.owned[node] || seen[table[cluster.NodeID(node)]] {
			continue
		}
		seen[table[cluster.NodeID(node)]] = true
		resp, err := b.roundTrip(cluster.NodeID(node), &frame{Op: opPeers, Payload: buf.Bytes()}, false)
		if err != nil {
			return err
		}
		if err := respErr(resp); err != nil {
			return err
		}
	}
	return nil
}

// ShutdownPeers asks every remote peer process to exit. Errors are
// collected but do not stop the fan-out — a peer that already exited is
// not a failure.
func (b *Backend) ShutdownPeers() {
	seen := make(map[string]bool)
	for node := range b.owned {
		if b.owned[node] {
			continue
		}
		b.mu.Lock()
		addr := b.addrs[cluster.NodeID(node)]
		b.mu.Unlock()
		if addr == "" || seen[addr] {
			continue
		}
		seen[addr] = true
		_, _ = b.roundTrip(cluster.NodeID(node), &frame{Op: opShutdown}, false)
	}
}

// Close implements transport.Backend: it stops the listeners, closes all
// cached and serving connections and waits for the accept loops. Server
// goroutines blocked inside an operation (a Recv with no sender) exit
// when their connection close surfaces; ones blocked on fabric state are
// released by the endpoints' own teardown.
func (b *Backend) Close() error {
	if !b.closed.CompareAndSwap(false, true) {
		return nil
	}
	for _, ln := range b.listeners {
		ln.Close()
	}
	b.mu.Lock()
	for _, list := range b.pools {
		for _, c := range list {
			c.Close()
		}
	}
	b.pools = make(map[cluster.NodeID][]net.Conn)
	for c := range b.serverConns {
		c.Close()
	}
	b.mu.Unlock()
	b.wg.Wait()
	return nil
}

func (b *Backend) acceptLoop(ln net.Listener) {
	defer b.wg.Done()
	for {
		c, err := ln.Accept()
		if err != nil {
			return
		}
		b.mu.Lock()
		if b.closed.Load() {
			b.mu.Unlock()
			c.Close()
			return
		}
		b.serverConns[c] = true
		b.mu.Unlock()
		go b.serveConn(c)
	}
}

func (b *Backend) forgetConn(c net.Conn) {
	b.mu.Lock()
	delete(b.serverConns, c)
	b.mu.Unlock()
}

// serveConn drives one client connection: handshake, then a strict
// request/response loop. Blocking operations block this goroutine only —
// the client holds the connection out of its pool for the duration.
func (b *Backend) serveConn(c net.Conn) {
	defer c.Close()
	defer b.forgetConn(c)
	hello, err := readFrame(c, b.cfg.MaxFrame)
	if err != nil {
		return
	}
	if err := b.checkHello(hello); err != nil {
		_ = writeFrame(c, &frame{Op: opResp, Status: statusErr, Err: err.Error()})
		return
	}
	// The acceptance carries this process's incarnation so a reconnecting
	// client can tell a restarted server from the one it knew.
	if err := writeFrame(c, &frame{Op: opResp, Status: statusOK, Tag: b.cfg.Incarnation}); err != nil {
		return
	}
	for {
		fr, err := readFrame(c, b.cfg.MaxFrame)
		if err != nil {
			return
		}
		if fr.Op == opReadMulti {
			// The scatter-gather response is a header frame plus a raw
			// segment stream, not a single frame; it writes to the
			// connection itself.
			if !b.serveReadMulti(c, fr) {
				return
			}
			continue
		}
		resp := b.execute(fr)
		if err := writeFrame(c, resp); err != nil {
			return
		}
		if fr.Op == opShutdown || fr.Op == opDepart {
			b.shutdownOnce.Do(func() { close(b.shutdownCh) })
			return
		}
	}
}

// serveReadMulti executes one scatter-gather read: validate the batch,
// announce the segment count in an ordinary response frame, then clip
// each requested sub-box out of its exposed buffer and stream the
// segments. Each spec is metered through LocalRead exactly as its
// unbatched read would be — on this side, the side moving the bytes. The
// return value reports whether the connection is still in protocol sync;
// a failure after the header frame is not (the client was promised
// segments), so the stream is aborted with an error segment and the
// connection dropped.
func (b *Backend) serveReadMulti(c net.Conn, fr *frame) bool {
	headerFail := func(err error) bool {
		resp := &frame{Op: opResp, Err: err.Error()}
		if errors.Is(err, transport.ErrEndpointClosed) {
			resp.Status = statusClosed
		} else {
			resp.Status = statusErr
		}
		// A pre-stream failure is an ordinary request/response exchange;
		// the connection stays usable.
		return writeFrame(c, resp) == nil
	}
	if err := b.checkCore(fr.Src, false); err != nil {
		return headerFail(err)
	}
	specs, err := decodeReadSpecs(fr.Payload)
	if err != nil {
		return headerFail(err)
	}
	for _, spec := range specs {
		if err := b.checkTarget(int32(spec.Owner)); err != nil {
			return headerFail(err)
		}
	}
	if tr := b.spanTracer.Load(); tr != nil && fr.Span != 0 {
		name := fmt.Sprintf("remote:readmulti:%d", len(specs))
		defer tr.StartNode(obs.SpanID(fr.Span), name, b.nodeLabel(fr.Dst)).End()
	}
	count := len(specs)
	if mutate.Enabled(mutate.TCPSGDrop) && count > 1 {
		// Seeded defect: the batch swallows its last sub-box — announced
		// and streamed one segment short.
		count--
		specs = specs[:count]
	}
	if err := writeFrame(c, &frame{Op: opResp, Status: statusOK, Bytes: int64(count)}); err != nil {
		return false
	}
	m := frameMeter(fr)
	reader := cluster.CoreID(fr.Src)
	clip := func(spec transport.ReadSpec, dst []byte) ([]byte, error) {
		payload, _, err := b.fabric.LocalReadDeadline(reader, spec.Owner, spec.Key, m, spec.Bytes, b.cfg.ReadPatience)
		if err != nil {
			return nil, err
		}
		clipper, ok := payload.(transport.RegionClipper)
		if !ok {
			return nil, fmt.Errorf("tcpnet: exposed payload %T cannot clip regions", payload)
		}
		return clipper.ClipRegion(dst, spec.Sub)
	}
	if mutate.Enabled(mutate.TCPSGReorder) && count >= 2 {
		// Seeded defect: the stream keeps its indices but exchanges the
		// first two payloads — protocol-valid, wrong bytes in each slot.
		bodies := make([][]byte, count)
		for i, spec := range specs {
			body, err := clip(spec, nil)
			if err != nil {
				_ = b.writeErrSegment(c, i, err)
				return false
			}
			bodies[i] = body
		}
		bodies[0], bodies[1] = bodies[1], bodies[0]
		for i, body := range bodies {
			if err := b.writeDataSegment(c, i, body); err != nil {
				return false
			}
		}
		return true
	}
	bp := getBuf()
	defer putBuf(bp)
	for i, spec := range specs {
		body, err := clip(spec, (*bp)[:0])
		if err != nil {
			_ = b.writeErrSegment(c, i, err)
			return false
		}
		if err := b.writeDataSegment(c, i, body); err != nil {
			return false
		}
		// The clip may have grown the staging buffer; keep the larger one.
		if cap(body) > cap(*bp) {
			*bp = body[:0]
		}
	}
	return true
}

func (b *Backend) writeDataSegment(c net.Conn, i int, body []byte) error {
	b.stats.segments.Add(1)
	b.stats.segmentBytes.Add(int64(len(body)))
	obsWireSegments.Inc()
	obsWireSegmentBytes.Add(int64(len(body)))
	if d := b.ioTimeout(); d > 0 {
		c.SetWriteDeadline(time.Now().Add(d))
	}
	return writeSegment(c, statusOK, i, body)
}

func (b *Backend) writeErrSegment(c net.Conn, i int, err error) error {
	status := statusErr
	if errors.Is(err, transport.ErrEndpointClosed) {
		status = statusClosed
	}
	if d := b.ioTimeout(); d > 0 {
		c.SetWriteDeadline(time.Now().Add(d))
	}
	return writeSegment(c, status, i, []byte(err.Error()))
}

// checkCore validates a wire-supplied core id; allowAny admits the
// AnySource wildcard.
func (b *Backend) checkCore(c int32, allowAny bool) error {
	if allowAny && cluster.CoreID(c) == transport.AnySource {
		return nil
	}
	if int(c) < 0 || int(c) >= b.machine.TotalCores() {
		return fmt.Errorf("core %d out of range", c)
	}
	return nil
}

// checkTarget validates that the target core of an operation is served by
// this process.
func (b *Backend) checkTarget(c int32) error {
	if err := b.checkCore(c, false); err != nil {
		return err
	}
	if !b.owned[int(b.machine.NodeOf(cluster.CoreID(c)))] {
		return fmt.Errorf("core %d is not served here", c)
	}
	return nil
}

// execute runs one decoded request against the local fabric and builds
// the response frame. With span capture enabled, data operations that
// carry trace context get a handler span parented under the requesting
// driver span, labelled with the serving node.
func (b *Backend) execute(fr *frame) *frame {
	if tr := b.spanTracer.Load(); tr != nil && fr.Span != 0 {
		switch fr.Op {
		case opRead:
			defer tr.StartNode(obs.SpanID(fr.Span), "remote:read:"+fr.Name, b.nodeLabel(fr.Dst)).End()
		case opCall:
			defer tr.StartNode(obs.SpanID(fr.Span), "remote:call:"+fr.Name, b.nodeLabel(fr.Dst)).End()
		}
	}
	resp := &frame{Op: opResp}
	fail := func(err error) *frame {
		if errors.Is(err, transport.ErrEndpointClosed) {
			resp.Status = statusClosed
		} else {
			resp.Status = statusErr
		}
		resp.Err = err.Error()
		return resp
	}
	key := transport.BufKey{Name: fr.Name, Version: int(fr.Version)}
	switch fr.Op {
	case opSend:
		if err := b.checkCore(fr.Src, false); err != nil {
			return fail(err)
		}
		if err := b.checkTarget(fr.Dst); err != nil {
			return fail(err)
		}
		if err := b.fabric.LocalSend(cluster.CoreID(fr.Src), cluster.CoreID(fr.Dst), fr.Tag, fr.Payload, frameMeter(fr)); err != nil {
			return fail(err)
		}
	case opRecv:
		if err := b.checkCore(fr.Src, true); err != nil {
			return fail(err)
		}
		if err := b.checkTarget(fr.Dst); err != nil {
			return fail(err)
		}
		msg, err := b.fabric.LocalRecv(cluster.CoreID(fr.Dst), cluster.CoreID(fr.Src), fr.Tag)
		if err != nil {
			return fail(err)
		}
		resp.Src = int32(msg.Src)
		resp.Tag = msg.Tag
		resp.Payload = msg.Payload
	case opRead:
		if err := b.checkCore(fr.Src, false); err != nil {
			return fail(err)
		}
		if err := b.checkTarget(fr.Dst); err != nil {
			return fail(err)
		}
		var payload any
		var ok bool
		var err error
		if fr.Flags&flagWait != 0 {
			payload, ok, err = b.fabric.LocalReadDeadline(cluster.CoreID(fr.Src), cluster.CoreID(fr.Dst), key, frameMeter(fr), fr.Bytes, b.cfg.ReadPatience)
		} else {
			payload, ok, err = b.fabric.LocalRead(cluster.CoreID(fr.Src), cluster.CoreID(fr.Dst), key, frameMeter(fr), fr.Bytes, false)
		}
		if err != nil {
			return fail(err)
		}
		if !ok {
			resp.Status = statusNotFound
			return resp
		}
		enc, err := transport.EncodePayload(payload)
		if err != nil {
			return fail(err)
		}
		resp.Payload = enc
	case opCall:
		if err := b.checkCore(fr.Src, false); err != nil {
			return fail(err)
		}
		if err := b.checkTarget(fr.Dst); err != nil {
			return fail(err)
		}
		req, err := transport.DecodePayload(fr.Payload)
		if err != nil {
			return fail(err)
		}
		out, err := b.fabric.LocalCall(cluster.CoreID(fr.Src), cluster.CoreID(fr.Dst), fr.Name, req, frameMeter(fr), fr.Bytes, fr.Bytes2)
		if err != nil {
			return fail(err)
		}
		enc, err := transport.EncodePayload(out)
		if err != nil {
			return fail(err)
		}
		resp.Payload = enc
	case opExpose:
		if err := b.checkTarget(fr.Dst); err != nil {
			return fail(err)
		}
		payload, err := transport.DecodePayload(fr.Payload)
		if err != nil {
			return fail(err)
		}
		if err := b.fabric.LocalExpose(cluster.CoreID(fr.Dst), key, payload); err != nil {
			return fail(err)
		}
	case opUnexpose:
		if err := b.checkTarget(fr.Dst); err != nil {
			return fail(err)
		}
		if err := b.fabric.LocalUnexpose(cluster.CoreID(fr.Dst), key); err != nil {
			return fail(err)
		}
	case opExposed:
		if err := b.checkTarget(fr.Dst); err != nil {
			return fail(err)
		}
		ok, err := b.fabric.LocalExposed(cluster.CoreID(fr.Dst), key)
		if err != nil {
			return fail(err)
		}
		if !ok {
			resp.Status = statusNotFound
		}
	case opPeers:
		var table map[cluster.NodeID]string
		if err := gob.NewDecoder(bytes.NewReader(fr.Payload)).Decode(&table); err != nil {
			return fail(err)
		}
		b.SetPeers(table)
	case opStats:
		ns := nodeStats{
			ShmBytes: b.fabric.MediumBytes(cluster.SharedMemory),
			ShmOps:   b.fabric.MediumOps(cluster.SharedMemory),
			NetBytes: b.fabric.MediumBytes(cluster.Network),
			NetOps:   b.fabric.MediumOps(cluster.Network),
			Metrics:  b.machine.Metrics().Snapshot(),
			Registry: obs.Default.Snapshot(),
			Wire:     b.WireStats(),
		}
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(ns); err != nil {
			return fail(err)
		}
		resp.Payload = buf.Bytes()
	case opSpans:
		resp.Payload = b.drainSpans()
	case opJoin:
		// Node fr.Dst is now served at address fr.Name with incarnation
		// fr.Tag: install the route and identity, dropping any pooled
		// connections to the node's previous process.
		if int(fr.Dst) < 0 || int(fr.Dst) >= len(b.owned) {
			return fail(fmt.Errorf("join for node %d out of range", fr.Dst))
		}
		if b.owned[int(fr.Dst)] {
			return fail(fmt.Errorf("join for node %d, which is served here", fr.Dst))
		}
		b.UpdatePeer(cluster.NodeID(fr.Dst), fr.Name, fr.Tag)
	case opLease:
		// A lease probe/renewal: succeeds only when the prober's notion of
		// this process's incarnation is current, so a renewal addressed to a
		// dead process's identity fails even if a replacement answers.
		if b.cfg.Incarnation != 0 && fr.Tag != 0 && fr.Tag != b.cfg.Incarnation {
			return fail(fmt.Errorf("lease for incarnation %d, serving %d", fr.Tag, b.cfg.Incarnation))
		}
		resp.Tag = b.cfg.Incarnation
	case opTransfer:
		h := b.transferHandler.Load()
		if h == nil {
			return fail(fmt.Errorf("no transfer handler installed"))
		}
		adopted, err := (*h)(fr.Payload)
		if err != nil {
			return fail(err)
		}
		resp.Bytes = adopted
	case opPublish:
		// Stream fr.Name's complete watermark reached fr.Version. Fenced
		// like a lease: a notification addressed to a previous incarnation
		// of this node must not be acknowledged by its replacement.
		if b.cfg.Incarnation != 0 && fr.Tag != 0 && fr.Tag != b.cfg.Incarnation {
			return fail(fmt.Errorf("stream publish for incarnation %d, serving %d", fr.Tag, b.cfg.Incarnation))
		}
		if fr.Name == "" {
			return fail(fmt.Errorf("stream publish without a variable name"))
		}
		resp.Tag = b.cfg.Incarnation
		resp.Version = b.streamPublishLocal(fr.Name, fr.Version)
	case opCursor:
		// Consumer fr.Bytes of stream fr.Name advanced to position
		// fr.Version; the response returns the recorded watermark so an
		// elastic replacement can resume the stream from live positions.
		if b.cfg.Incarnation != 0 && fr.Tag != 0 && fr.Tag != b.cfg.Incarnation {
			return fail(fmt.Errorf("cursor advance for incarnation %d, serving %d", fr.Tag, b.cfg.Incarnation))
		}
		if fr.Name == "" {
			return fail(fmt.Errorf("cursor advance without a variable name"))
		}
		resp.Tag = b.cfg.Incarnation
		resp.Version = b.streamAdvanceLocal(fr.Name, fr.Bytes, fr.Version)
	case opStreamGC:
		// Versions of stream fr.Name below fr.Version are retired.
		if b.cfg.Incarnation != 0 && fr.Tag != 0 && fr.Tag != b.cfg.Incarnation {
			return fail(fmt.Errorf("stream gc for incarnation %d, serving %d", fr.Tag, b.cfg.Incarnation))
		}
		if fr.Name == "" {
			return fail(fmt.Errorf("stream gc without a variable name"))
		}
		resp.Tag = b.cfg.Incarnation
		resp.Version = b.streamRetireLocal(fr.Name, fr.Version)
	case opShutdown, opDepart:
		// Acknowledged here; serveConn triggers the shutdown channel after
		// the response is on the wire.
	default:
		return fail(fmt.Errorf("unhandled op %d", fr.Op))
	}
	return resp
}
