package tcpnet

import (
	"bytes"
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/retry"
	"github.com/insitu/cods/internal/transport"
)

// serveNode starts a fresh serving process for node 1 of a 2x1 machine —
// a fresh fabric stands in for the restarted process's empty endpoint
// state — announcing the given incarnation.
func serveNode(t *testing.T, m *cluster.Machine, inc uint64) *Backend {
	t.Helper()
	fs := transport.NewFabric(m)
	cfg := testConfig()
	cfg.Incarnation = inc
	be, err := Serve(fs, 1, "127.0.0.1:0", cfg)
	if err != nil {
		t.Fatal(err)
	}
	fs.SetBackend(be)
	t.Cleanup(func() {
		fs.SetBackend(nil)
		be.Close()
	})
	return be
}

func connectDriver(t *testing.T, m *cluster.Machine, addr string) *Backend {
	t.Helper()
	fc := transport.NewFabric(m)
	p := retry.Default()
	p.MaxAttempts = 2
	p.Deadline = 5 * time.Second
	client, err := Connect(fc, map[cluster.NodeID]string{0: addr, 1: addr},
		Config{Retry: p, IOTimeout: 5 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { client.Close() })
	return client
}

// TestRedialAfterCrashRejectsStaleIncarnation is the regression test for
// the silent-reuse bug: a codsnode crashes, a replacement process comes up
// behind the node's route, and the driver's redial used to complete the
// handshake and keep going against a peer with empty endpoint state. The
// handshake now compares the server's announced incarnation against the
// last one observed and fails the dial with ErrStaleIncarnation until the
// membership layer installs the new identity.
func TestRedialAfterCrashRejectsStaleIncarnation(t *testing.T) {
	m, err := cluster.NewMachine(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s1 := serveNode(t, m, 1)
	client := connectDriver(t, m, s1.Addr(1))

	inc, err := client.ProbeLease(1, 0)
	if err != nil || inc != 1 {
		t.Fatalf("first probe: inc=%d err=%v, want 1, nil", inc, err)
	}
	if got := client.PeerIncarnation(1); got != 1 {
		t.Fatalf("recorded incarnation %d, want 1", got)
	}

	// Crash and replace: the old process dies, a new one (empty state,
	// higher incarnation) starts serving the node's route.
	s1.Close()
	s2 := serveNode(t, m, 2)
	client.SetPeers(map[cluster.NodeID]string{1: s2.Addr(1)})

	// Concurrent operations race the dead pooled connection and the
	// redial. The one that drew the dead connection surfaces a plain
	// connection error (at-most-once: a request that hit the wire is not
	// replayed); everything else redials. None may silently succeed
	// against the replacement's empty state.
	var wg sync.WaitGroup
	errs := make([]error, 4)
	for i := range errs {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = client.ProbeLease(1, 0)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err == nil {
			t.Fatalf("probe %d after crash silently succeeded against the replacement", i)
		}
	}
	// With the stale pool drained, every fresh dial must report the
	// incarnation mismatch specifically.
	if _, err := client.ProbeLease(1, 0); !errors.Is(err, ErrStaleIncarnation) {
		t.Fatalf("probe on fresh dial: got %v, want ErrStaleIncarnation", err)
	}

	// The membership layer acknowledges the new identity; traffic resumes.
	client.SetPeerIncarnation(1, 2)
	inc, err = client.ProbeLease(1, 2)
	if err != nil || inc != 2 {
		t.Fatalf("probe after join: inc=%d err=%v, want 2, nil", inc, err)
	}
}

// TestLeaseProbeAssertsIncarnation: a renewal addressed to a dead
// process's identity must fail even though a live replacement answers the
// socket.
func TestLeaseProbeAssertsIncarnation(t *testing.T) {
	m, err := cluster.NewMachine(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := serveNode(t, m, 3)
	client := connectDriver(t, m, s.Addr(1))
	if _, err := client.ProbeLease(1, 3); err != nil {
		t.Fatalf("matching renewal: %v", err)
	}
	if _, err := client.ProbeLease(1, 2); err == nil {
		t.Fatal("renewal against a stale incarnation succeeded")
	}
}

// TestTransferAndDepart exercises the ownership-transfer and graceful
// departure wire ops end to end.
func TestTransferAndDepart(t *testing.T) {
	m, err := cluster.NewMachine(2, 1)
	if err != nil {
		t.Fatal(err)
	}
	s := serveNode(t, m, 1)
	client := connectDriver(t, m, s.Addr(1))

	var got []byte
	s.SetTransferHandler(func(p []byte) (int64, error) {
		got = append([]byte(nil), p...)
		return 5, nil
	})
	payload := []byte("entries batch")
	adopted, err := client.TransferEntries(1, payload)
	if err != nil || adopted != 5 {
		t.Fatalf("transfer: adopted=%d err=%v", adopted, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatalf("handler saw %q, want %q", got, payload)
	}
	s.SetTransferHandler(nil)
	if _, err := client.TransferEntries(1, payload); err == nil {
		t.Fatal("transfer without a handler succeeded")
	}

	if err := client.DepartPeer(1); err != nil {
		t.Fatalf("depart: %v", err)
	}
	select {
	case <-s.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("depart did not trigger the serving process's shutdown")
	}
}
