package tcpnet

import (
	"bytes"
	"testing"
)

// FuzzWireFrame throws arbitrary bodies at the strict frame decoder. Two
// properties must hold: the decoder never panics, and any body it accepts
// re-encodes to exactly the same bytes (the codec is canonical — a decoded
// frame carries no information outside its wire form). The seed corpus is
// the recorded encoding of every representative frame shape.
func FuzzWireFrame(f *testing.F) {
	for _, fr := range sampleFrames() {
		buf, err := marshalFrame(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[4:])
	}
	// Adversarial seeds: truncations, trailing bytes, hostile lengths.
	valid, _ := marshalFrame(sampleFrames()[1])
	f.Add(valid[4 : len(valid)-1])
	f.Add(append(append([]byte(nil), valid[4:]...), 0xFF))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, fixedHeaderLen+10))
	// Membership-op adversarial seeds: a lease renewal truncated mid-tag
	// (the classic short heartbeat write) and a duplicate join — two
	// complete join bodies back to back, which the strict decoder must
	// reject as trailing data rather than silently applying the first.
	lease, _ := marshalFrame(&frame{Op: opLease, Dst: 1, Tag: 3})
	f.Add(lease[4 : fixedHeaderLen/2])
	join, _ := marshalFrame(&frame{Op: opJoin, Dst: 2, Name: "127.0.0.1:9042", Tag: 7})
	f.Add(append(append([]byte(nil), join[4:]...), join[4:]...))
	// Streaming-op adversarial seeds (wire v5): a cursor advance truncated
	// mid-frame (a consumer killed mid-write) and a duplicate publish
	// notification — two complete bodies back to back, which the strict
	// decoder must reject as trailing data rather than silently applying
	// the first watermark announcement.
	cursor, _ := marshalFrame(&frame{Op: opCursor, Dst: 1, Name: "u", Version: 3, Bytes: 1, Tag: 2})
	f.Add(cursor[4 : fixedHeaderLen/2])
	pub, _ := marshalFrame(&frame{Op: opPublish, Dst: 1, Name: "u", Version: 4, Tag: 2})
	f.Add(append(append([]byte(nil), pub[4:]...), pub[4:]...))

	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := decodeFrame(body)
		if err != nil {
			return
		}
		out := appendFrame(nil, fr)
		if !bytes.Equal(out, body) {
			t.Fatalf("accepted body is not canonical:\nin  %x\nout %x", body, out)
		}
	})
}

// FuzzReadSpecs holds the scatter-gather spec codec to the same bar: the
// strict decoder never panics, and any spec list it accepts re-encodes to
// exactly the input bytes.
func FuzzReadSpecs(f *testing.F) {
	f.Add(sampleSpecPayload())
	empty, _ := appendReadSpecs(nil, nil)
	f.Add(empty)
	f.Add(sampleSpecPayload()[:7])                     // truncated mid-spec
	f.Add(append(append([]byte(nil), empty...), 0x01)) // trailing byte
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF})              // hostile count
	f.Add(bytes.Repeat([]byte{0x00}, 64))              // zero soup
	f.Fuzz(func(t *testing.T, body []byte) {
		specs, err := decodeReadSpecs(body)
		if err != nil {
			return
		}
		out, err := appendReadSpecs(nil, specs)
		if err != nil {
			t.Fatalf("accepted specs fail to re-encode: %v", err)
		}
		if !bytes.Equal(out, body) {
			t.Fatalf("accepted spec list is not canonical:\nin  %x\nout %x", body, out)
		}
	})
}
