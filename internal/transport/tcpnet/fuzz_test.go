package tcpnet

import (
	"bytes"
	"testing"
)

// FuzzWireFrame throws arbitrary bodies at the strict frame decoder. Two
// properties must hold: the decoder never panics, and any body it accepts
// re-encodes to exactly the same bytes (the codec is canonical — a decoded
// frame carries no information outside its wire form). The seed corpus is
// the recorded encoding of every representative frame shape.
func FuzzWireFrame(f *testing.F) {
	for _, fr := range sampleFrames() {
		buf, err := marshalFrame(fr)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(buf[4:])
	}
	// Adversarial seeds: truncations, trailing bytes, hostile lengths.
	valid, _ := marshalFrame(sampleFrames()[1])
	f.Add(valid[4 : len(valid)-1])
	f.Add(append(append([]byte(nil), valid[4:]...), 0xFF))
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xFF}, fixedHeaderLen+10))

	f.Fuzz(func(t *testing.T, body []byte) {
		fr, err := decodeFrame(body)
		if err != nil {
			return
		}
		out := appendFrame(nil, fr)
		if !bytes.Equal(out, body) {
			t.Fatalf("accepted body is not canonical:\nin  %x\nout %x", body, out)
		}
	})
}
