// Package tcpnet is the real-network transport backend (DESIGN §5f): each
// simulated node is served by its own endpoint group over TCP sockets,
// with a length-prefixed binary wire protocol, per-peer connection caching
// behind a versioned handshake, and IO deadlines derived from the shared
// internal/retry policies. Operations are metered by the serving side
// through the fabric's Local* methods, so per-medium accounting reconciles
// with the in-process backend byte for byte.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"sync"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/mutate"
	"github.com/insitu/cods/internal/transport"
)

// Wire operations. opResp is the single response op; the request op a
// response answers is implied by the connection's strict request/response
// discipline.
const (
	opHello uint8 = iota + 1
	opResp
	opSend
	opRecv
	opRead
	opCall
	opExpose
	opUnexpose
	opExposed
	opPeers
	opStats
	opShutdown
	opReadMulti // batched scatter-gather read: one frame out, segment stream back
	opSpans     // drain the node's buffered remote span events (JSON Lines)
	opJoin      // membership: node Dst now serves at Name with incarnation Tag
	opLease     // membership: lease probe/renewal against incarnation Tag
	opDepart    // membership: graceful departure of the serving node
	opTransfer  // membership: adopt a batch of handed-off lookup entries
	opPublish   // streaming: stream Name's complete watermark reached Version
	opCursor    // streaming: consumer Bytes of stream Name advanced to Version
	opStreamGC  // streaming: stream Name's versions below Version are retired
	opMax       // one past the last valid op
)

// Response statuses.
const (
	statusOK uint8 = iota
	statusErr
	statusClosed   // the target endpoint is closed (transport.ErrEndpointClosed)
	statusNotFound // TryRead/Exposed miss: not an error, just absent
)

// Frame flags.
const (
	flagWait uint8 = 1 << iota // opRead: block until the buffer is exposed
)

// Handshake constants. helloMagic rides in the Tag field of the opHello
// frame; bumping wireVersion invalidates cached connections from older
// binaries at the handshake instead of corrupting mid-stream. Version 2
// added the opReadMulti scatter-gather read and its segment stream;
// version 3 added the fixed Span trace-context field to every frame
// header and the opSpans drain; version 4 added the membership ops
// (join/lease/depart/transfer) and the incarnation id carried in the
// hello exchange (the client's expectation in the request Span field,
// the server's actual incarnation in the response Tag); version 5 added
// the streaming ops (publish-notify/cursor-advance/version-GC), each
// incarnation-fenced like a lease probe so an elastic replacement resumes
// streams while its stale predecessor cannot acknowledge them. A
// mismatched peer is rejected at the handshake (there is no per-op
// fallback — a driver must match its codsnode children), which is a clean
// fast failure instead of an old server hanging on a frame layout it
// cannot decode.
const (
	helloMagic  uint64 = 0x434F44534E455400 // "CODSNET\0"
	wireVersion uint8  = 5
)

// maxFrameDefault bounds a frame body (64 MiB) so a corrupted length
// prefix cannot make a reader allocate unboundedly.
const maxFrameDefault = 64 << 20

// frame is the unit of the wire protocol: a 4-byte big-endian body length
// followed by a fixed header and three length-prefixed variable sections.
// Field use per op:
//
//	Src/Dst      initiating and target core (Dst also the owner for
//	             buffer ops); Src is -1 for AnySource receives
//	Tag          message tag (send/recv), helloMagic (hello)
//	Version      BufKey version (read/expose/...), wire version (hello)
//	Bytes/Bytes2 metered sizes: payload volume (read), req/resp (call),
//	             machine shape nodes/cores (hello)
//	MeterClass   cluster.Class of the carried Meter
//	DstApp       Meter.DstApp
//	Span         requesting-side span id (Meter.Span), 0 = no span;
//	             trace context only, never metered
//	Name         BufKey name or RPC service name
//	Phase        Meter.Phase
//	Err          error text (opResp with statusErr/statusClosed)
//	Payload      message bytes, encoded RPC payload, or exposed buffer
type frame struct {
	Op         uint8
	Status     uint8
	Flags      uint8
	MeterClass uint8
	Src        int32
	Dst        int32
	DstApp     int32
	Tag        uint64
	Version    int64
	Bytes      int64
	Bytes2     int64
	Span       uint64
	Name       string
	Phase      string
	Err        string
	Payload    []byte
}

// fixedHeaderLen is the byte length of the fixed part of a frame body.
const fixedHeaderLen = 4 + 3*4 + 8 + 3*8 + 8

// errShortFrame rejects bodies that end before their declared content;
// errTrailingData rejects bodies that continue past it. Both make the
// decoder strict: a frame is valid only when every byte is accounted for.
var (
	errShortFrame   = errors.New("tcpnet: short frame")
	errTrailingData = errors.New("tcpnet: trailing data after frame")
)

// appendFrame encodes fr's body (without the length prefix) onto dst.
func appendFrame(dst []byte, fr *frame) []byte {
	dst = append(dst, fr.Op, fr.Status, fr.Flags, fr.MeterClass)
	dst = binary.BigEndian.AppendUint32(dst, uint32(fr.Src))
	dst = binary.BigEndian.AppendUint32(dst, uint32(fr.Dst))
	dst = binary.BigEndian.AppendUint32(dst, uint32(fr.DstApp))
	dst = binary.BigEndian.AppendUint64(dst, fr.Tag)
	dst = binary.BigEndian.AppendUint64(dst, uint64(fr.Version))
	dst = binary.BigEndian.AppendUint64(dst, uint64(fr.Bytes))
	dst = binary.BigEndian.AppendUint64(dst, uint64(fr.Bytes2))
	dst = binary.BigEndian.AppendUint64(dst, fr.Span)
	for _, s := range []string{fr.Name, fr.Phase, fr.Err} {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
		dst = append(dst, s...)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(fr.Payload)))
	dst = append(dst, fr.Payload...)
	return dst
}

// bufPool recycles the per-frame encode buffers, the small readFrame body
// buffers and the segment staging buffers of the scatter-gather path.
// Oversized buffers are not returned, so one huge frame cannot pin its
// allocation in the pool forever.
var bufPool = sync.Pool{New: func() any { b := make([]byte, 0, 4096); return &b }}

// maxPooledBuf bounds the capacity of a buffer the pool will keep (64
// KiB): typical frames — control RPCs, clipped segments, spec lists — fit
// comfortably; whole-block payloads above it take the allocate path.
const maxPooledBuf = 64 << 10

func getBuf() *[]byte { return bufPool.Get().(*[]byte) }

func putBuf(bp *[]byte) {
	if cap(*bp) > maxPooledBuf {
		return
	}
	*bp = (*bp)[:0]
	bufPool.Put(bp)
}

// grownBuf returns a length-n slice backed by *bp, growing the buffer
// when its capacity is short.
func grownBuf(bp *[]byte, n int) []byte {
	if cap(*bp) < n {
		*bp = make([]byte, n)
	}
	*bp = (*bp)[:n]
	return *bp
}

// marshalFrameInto encodes a full frame — length prefix plus body — onto
// dst. The string sections are bounded by their u16 length prefix;
// oversized ones are a caller bug surfaced as an error rather than silent
// truncation. Two seeded wire defects live here, compiled out of normal
// builds: a one-byte body truncation and an InterApp<->Control
// meter-class swap.
func marshalFrameInto(dst []byte, fr *frame) ([]byte, error) {
	for _, s := range []string{fr.Name, fr.Phase, fr.Err} {
		if len(s) > 0xFFFF {
			return nil, fmt.Errorf("tcpnet: string section of %d bytes exceeds wire limit", len(s))
		}
	}
	if fr.Op == 0 || fr.Op >= opMax {
		return nil, fmt.Errorf("tcpnet: invalid op %d", fr.Op)
	}
	send := *fr
	if mutate.Enabled(mutate.TCPMeterClass) && send.Op != opHello {
		switch cluster.Class(send.MeterClass) {
		case cluster.InterApp:
			send.MeterClass = uint8(cluster.Control)
		case cluster.Control:
			send.MeterClass = uint8(cluster.InterApp)
		}
	}
	start := len(dst)
	dst = append(dst, 0, 0, 0, 0)
	body := appendFrame(dst, &send)
	if mutate.Enabled(mutate.TCPTruncFrame) && send.Op != opHello {
		// The length prefix is computed over the already-truncated body, so
		// the peer's strict decoder fails fast instead of blocking on a
		// byte that never comes.
		body = body[:len(body)-1]
	}
	binary.BigEndian.PutUint32(body[start:start+4], uint32(len(body)-start-4))
	return body, nil
}

// marshalFrame is marshalFrameInto onto a fresh buffer (tests and seed
// corpora; the hot write path uses the pooled writeFrame).
func marshalFrame(fr *frame) ([]byte, error) { return marshalFrameInto(nil, fr) }

// decodeFrame strictly decodes one frame body: every declared section must
// be fully present and no bytes may remain.
func decodeFrame(body []byte) (*frame, error) {
	if len(body) < fixedHeaderLen {
		return nil, errShortFrame
	}
	fr := &frame{
		Op:         body[0],
		Status:     body[1],
		Flags:      body[2],
		MeterClass: body[3],
	}
	if fr.Op == 0 || fr.Op >= opMax {
		return nil, fmt.Errorf("tcpnet: invalid op %d", fr.Op)
	}
	if fr.MeterClass > uint8(cluster.Control) {
		return nil, fmt.Errorf("tcpnet: invalid meter class %d", fr.MeterClass)
	}
	fr.Src = int32(binary.BigEndian.Uint32(body[4:]))
	fr.Dst = int32(binary.BigEndian.Uint32(body[8:]))
	fr.DstApp = int32(binary.BigEndian.Uint32(body[12:]))
	fr.Tag = binary.BigEndian.Uint64(body[16:])
	fr.Version = int64(binary.BigEndian.Uint64(body[24:]))
	fr.Bytes = int64(binary.BigEndian.Uint64(body[32:]))
	fr.Bytes2 = int64(binary.BigEndian.Uint64(body[40:]))
	fr.Span = binary.BigEndian.Uint64(body[48:])
	rest := body[fixedHeaderLen:]
	for _, dst := range []*string{&fr.Name, &fr.Phase, &fr.Err} {
		if len(rest) < 2 {
			return nil, errShortFrame
		}
		n := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		if len(rest) < n {
			return nil, errShortFrame
		}
		*dst = string(rest[:n])
		rest = rest[n:]
	}
	if len(rest) < 4 {
		return nil, errShortFrame
	}
	n := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if len(rest) < n {
		return nil, errShortFrame
	}
	if n > 0 {
		fr.Payload = append([]byte(nil), rest[:n]...)
	}
	if len(rest) != n {
		return nil, errTrailingData
	}
	return fr, nil
}

// writeFrame marshals and writes one frame through a pooled encode buffer.
func writeFrame(w io.Writer, fr *frame) error {
	bp := getBuf()
	buf, err := marshalFrameInto((*bp)[:0], fr)
	if err != nil {
		putBuf(bp)
		return err
	}
	_, werr := w.Write(buf)
	*bp = buf[:0]
	putBuf(bp)
	return werr
}

// readFrame reads one length-prefixed frame, bounding the body at max.
// Small bodies land in a pooled buffer: decodeFrame copies every variable
// section (strings and Payload) out of the body, so the buffer is free for
// reuse the moment decoding returns.
func readFrame(r io.Reader, max int) (*frame, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(prefix[:]))
	if max <= 0 {
		max = maxFrameDefault
	}
	if n > max {
		return nil, fmt.Errorf("tcpnet: frame of %d bytes exceeds limit %d", n, max)
	}
	var body []byte
	if n <= maxPooledBuf {
		bp := getBuf()
		defer putBuf(bp)
		body = grownBuf(bp, n)
	} else {
		body = make([]byte, n)
	}
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return decodeFrame(body)
}

// Scatter-gather read codec (wire version 2). An opReadMulti request frame
// carries the reader in Src, the owning peer's first core in Dst, and its
// Payload encodes the spec list:
//
//	u32  count
//	per spec:
//	  i32        owner core
//	  u16+bytes  buffer name
//	  i64        version
//	  i64        metered bytes
//	  u8         dim
//	  per dim:   i64 min, i64 max   (the requested sub-box)
//
// The response is an opResp header frame whose Bytes field is the segment
// count, followed by count raw segments outside frame framing:
//
//	u8   status (statusOK, or statusErr/statusClosed with the body
//	     carrying the error text instead of cell bytes)
//	u32  index  (must equal the segment's position in the stream)
//	u32  length
//	     body: big-endian float64 cell bits of the owner-clipped sub-box
//	     in row-major order (zero length for an empty intersection)
const segHeaderLen = 1 + 4 + 4

// appendReadSpecs encodes the spec list onto dst.
func appendReadSpecs(dst []byte, specs []transport.ReadSpec) ([]byte, error) {
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(specs)))
	for _, spec := range specs {
		if len(spec.Key.Name) > 0xFFFF {
			return nil, fmt.Errorf("tcpnet: buffer name of %d bytes exceeds wire limit", len(spec.Key.Name))
		}
		if spec.Sub.Dim() > 0xFF {
			return nil, fmt.Errorf("tcpnet: sub-box rank %d exceeds wire limit", spec.Sub.Dim())
		}
		dst = binary.BigEndian.AppendUint32(dst, uint32(spec.Owner))
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(spec.Key.Name)))
		dst = append(dst, spec.Key.Name...)
		dst = binary.BigEndian.AppendUint64(dst, uint64(spec.Key.Version))
		dst = binary.BigEndian.AppendUint64(dst, uint64(spec.Bytes))
		dst = append(dst, uint8(spec.Sub.Dim()))
		for d := 0; d < spec.Sub.Dim(); d++ {
			dst = binary.BigEndian.AppendUint64(dst, uint64(spec.Sub.Min[d]))
			dst = binary.BigEndian.AppendUint64(dst, uint64(spec.Sub.Max[d]))
		}
	}
	return dst, nil
}

// decodeReadSpecs strictly decodes a spec list: every spec fully present,
// no trailing bytes.
func decodeReadSpecs(body []byte) ([]transport.ReadSpec, error) {
	if len(body) < 4 {
		return nil, errShortFrame
	}
	count := int(binary.BigEndian.Uint32(body))
	rest := body[4:]
	// Every spec occupies at least its fixed fields (owner, name length,
	// version, bytes, dim), so a count the body cannot possibly hold is a
	// short frame — rejected before it sizes an allocation.
	const minSpecLen = 4 + 2 + 8 + 8 + 1
	if count > len(rest)/minSpecLen {
		return nil, errShortFrame
	}
	specs := make([]transport.ReadSpec, 0, count)
	for i := 0; i < count; i++ {
		if len(rest) < 4+2 {
			return nil, errShortFrame
		}
		var spec transport.ReadSpec
		spec.Owner = cluster.CoreID(int32(binary.BigEndian.Uint32(rest)))
		n := int(binary.BigEndian.Uint16(rest[4:]))
		rest = rest[6:]
		if len(rest) < n+8+8+1 {
			return nil, errShortFrame
		}
		spec.Key.Name = string(rest[:n])
		rest = rest[n:]
		spec.Key.Version = int(int64(binary.BigEndian.Uint64(rest)))
		spec.Bytes = int64(binary.BigEndian.Uint64(rest[8:]))
		dim := int(rest[16])
		rest = rest[17:]
		if len(rest) < dim*16 {
			return nil, errShortFrame
		}
		spec.Sub = geometry.BBox{Min: make([]int, dim), Max: make([]int, dim)}
		for d := 0; d < dim; d++ {
			spec.Sub.Min[d] = int(int64(binary.BigEndian.Uint64(rest)))
			spec.Sub.Max[d] = int(int64(binary.BigEndian.Uint64(rest[8:])))
			rest = rest[16:]
		}
		specs = append(specs, spec)
	}
	if len(rest) != 0 {
		return nil, errTrailingData
	}
	return specs, nil
}

// writeSegment writes one raw segment (header plus body) of the
// scatter-gather response stream.
func writeSegment(w io.Writer, status uint8, index int, body []byte) error {
	bp := getBuf()
	defer putBuf(bp)
	buf := append(*bp, status)
	buf = binary.BigEndian.AppendUint32(buf, uint32(index))
	buf = binary.BigEndian.AppendUint32(buf, uint32(len(body)))
	if len(body) <= maxPooledBuf {
		buf = append(buf, body...)
		_, err := w.Write(buf)
		*bp = buf[:0]
		return err
	}
	if _, err := w.Write(buf); err != nil {
		*bp = buf[:0]
		return err
	}
	*bp = buf[:0]
	_, err := w.Write(body)
	return err
}

// readSegmentHeader reads one segment header, bounding the body length.
func readSegmentHeader(r io.Reader, max int) (status uint8, index int, length int, err error) {
	var hdr [segHeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, 0, err
	}
	status = hdr[0]
	index = int(binary.BigEndian.Uint32(hdr[1:]))
	length = int(binary.BigEndian.Uint32(hdr[5:]))
	if max <= 0 {
		max = maxFrameDefault
	}
	if length > max {
		return 0, 0, 0, fmt.Errorf("tcpnet: segment of %d bytes exceeds limit %d", length, max)
	}
	return status, index, length, nil
}
