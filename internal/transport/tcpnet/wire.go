// Package tcpnet is the real-network transport backend (DESIGN §5f): each
// simulated node is served by its own endpoint group over TCP sockets,
// with a length-prefixed binary wire protocol, per-peer connection caching
// behind a versioned handshake, and IO deadlines derived from the shared
// internal/retry policies. Operations are metered by the serving side
// through the fabric's Local* methods, so per-medium accounting reconciles
// with the in-process backend byte for byte.
package tcpnet

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/mutate"
)

// Wire operations. opResp is the single response op; the request op a
// response answers is implied by the connection's strict request/response
// discipline.
const (
	opHello uint8 = iota + 1
	opResp
	opSend
	opRecv
	opRead
	opCall
	opExpose
	opUnexpose
	opExposed
	opPeers
	opStats
	opShutdown
	opMax // one past the last valid op
)

// Response statuses.
const (
	statusOK uint8 = iota
	statusErr
	statusClosed   // the target endpoint is closed (transport.ErrEndpointClosed)
	statusNotFound // TryRead/Exposed miss: not an error, just absent
)

// Frame flags.
const (
	flagWait uint8 = 1 << iota // opRead: block until the buffer is exposed
)

// Handshake constants. helloMagic rides in the Tag field of the opHello
// frame; bumping wireVersion invalidates cached connections from older
// binaries at the handshake instead of corrupting mid-stream.
const (
	helloMagic  uint64 = 0x434F44534E455400 // "CODSNET\0"
	wireVersion uint8  = 1
)

// maxFrameDefault bounds a frame body (64 MiB) so a corrupted length
// prefix cannot make a reader allocate unboundedly.
const maxFrameDefault = 64 << 20

// frame is the unit of the wire protocol: a 4-byte big-endian body length
// followed by a fixed header and three length-prefixed variable sections.
// Field use per op:
//
//	Src/Dst      initiating and target core (Dst also the owner for
//	             buffer ops); Src is -1 for AnySource receives
//	Tag          message tag (send/recv), helloMagic (hello)
//	Version      BufKey version (read/expose/...), wire version (hello)
//	Bytes/Bytes2 metered sizes: payload volume (read), req/resp (call),
//	             machine shape nodes/cores (hello)
//	MeterClass   cluster.Class of the carried Meter
//	DstApp       Meter.DstApp
//	Name         BufKey name or RPC service name
//	Phase        Meter.Phase
//	Err          error text (opResp with statusErr/statusClosed)
//	Payload      message bytes, encoded RPC payload, or exposed buffer
type frame struct {
	Op         uint8
	Status     uint8
	Flags      uint8
	MeterClass uint8
	Src        int32
	Dst        int32
	DstApp     int32
	Tag        uint64
	Version    int64
	Bytes      int64
	Bytes2     int64
	Name       string
	Phase      string
	Err        string
	Payload    []byte
}

// fixedHeaderLen is the byte length of the fixed part of a frame body.
const fixedHeaderLen = 4 + 3*4 + 8 + 3*8

// errShortFrame rejects bodies that end before their declared content;
// errTrailingData rejects bodies that continue past it. Both make the
// decoder strict: a frame is valid only when every byte is accounted for.
var (
	errShortFrame   = errors.New("tcpnet: short frame")
	errTrailingData = errors.New("tcpnet: trailing data after frame")
)

// appendFrame encodes fr's body (without the length prefix) onto dst.
func appendFrame(dst []byte, fr *frame) []byte {
	dst = append(dst, fr.Op, fr.Status, fr.Flags, fr.MeterClass)
	dst = binary.BigEndian.AppendUint32(dst, uint32(fr.Src))
	dst = binary.BigEndian.AppendUint32(dst, uint32(fr.Dst))
	dst = binary.BigEndian.AppendUint32(dst, uint32(fr.DstApp))
	dst = binary.BigEndian.AppendUint64(dst, fr.Tag)
	dst = binary.BigEndian.AppendUint64(dst, uint64(fr.Version))
	dst = binary.BigEndian.AppendUint64(dst, uint64(fr.Bytes))
	dst = binary.BigEndian.AppendUint64(dst, uint64(fr.Bytes2))
	for _, s := range []string{fr.Name, fr.Phase, fr.Err} {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(s)))
		dst = append(dst, s...)
	}
	dst = binary.BigEndian.AppendUint32(dst, uint32(len(fr.Payload)))
	dst = append(dst, fr.Payload...)
	return dst
}

// marshalFrame encodes a full frame: length prefix plus body. The string
// sections are bounded by their u16 length prefix; oversized ones are a
// caller bug surfaced as an error rather than silent truncation. Two
// seeded wire defects live here, compiled out of normal builds: a
// one-byte body truncation and an InterApp<->Control meter-class swap.
func marshalFrame(fr *frame) ([]byte, error) {
	for _, s := range []string{fr.Name, fr.Phase, fr.Err} {
		if len(s) > 0xFFFF {
			return nil, fmt.Errorf("tcpnet: string section of %d bytes exceeds wire limit", len(s))
		}
	}
	if fr.Op == 0 || fr.Op >= opMax {
		return nil, fmt.Errorf("tcpnet: invalid op %d", fr.Op)
	}
	send := *fr
	if mutate.Enabled(mutate.TCPMeterClass) && send.Op != opHello {
		switch cluster.Class(send.MeterClass) {
		case cluster.InterApp:
			send.MeterClass = uint8(cluster.Control)
		case cluster.Control:
			send.MeterClass = uint8(cluster.InterApp)
		}
	}
	body := appendFrame(make([]byte, 4, 4+fixedHeaderLen+len(send.Name)+len(send.Phase)+len(send.Err)+len(send.Payload)+10), &send)
	if mutate.Enabled(mutate.TCPTruncFrame) && send.Op != opHello {
		// The length prefix is computed over the already-truncated body, so
		// the peer's strict decoder fails fast instead of blocking on a
		// byte that never comes.
		body = body[:len(body)-1]
	}
	binary.BigEndian.PutUint32(body[:4], uint32(len(body)-4))
	return body, nil
}

// decodeFrame strictly decodes one frame body: every declared section must
// be fully present and no bytes may remain.
func decodeFrame(body []byte) (*frame, error) {
	if len(body) < fixedHeaderLen {
		return nil, errShortFrame
	}
	fr := &frame{
		Op:         body[0],
		Status:     body[1],
		Flags:      body[2],
		MeterClass: body[3],
	}
	if fr.Op == 0 || fr.Op >= opMax {
		return nil, fmt.Errorf("tcpnet: invalid op %d", fr.Op)
	}
	if fr.MeterClass > uint8(cluster.Control) {
		return nil, fmt.Errorf("tcpnet: invalid meter class %d", fr.MeterClass)
	}
	fr.Src = int32(binary.BigEndian.Uint32(body[4:]))
	fr.Dst = int32(binary.BigEndian.Uint32(body[8:]))
	fr.DstApp = int32(binary.BigEndian.Uint32(body[12:]))
	fr.Tag = binary.BigEndian.Uint64(body[16:])
	fr.Version = int64(binary.BigEndian.Uint64(body[24:]))
	fr.Bytes = int64(binary.BigEndian.Uint64(body[32:]))
	fr.Bytes2 = int64(binary.BigEndian.Uint64(body[40:]))
	rest := body[fixedHeaderLen:]
	for _, dst := range []*string{&fr.Name, &fr.Phase, &fr.Err} {
		if len(rest) < 2 {
			return nil, errShortFrame
		}
		n := int(binary.BigEndian.Uint16(rest))
		rest = rest[2:]
		if len(rest) < n {
			return nil, errShortFrame
		}
		*dst = string(rest[:n])
		rest = rest[n:]
	}
	if len(rest) < 4 {
		return nil, errShortFrame
	}
	n := int(binary.BigEndian.Uint32(rest))
	rest = rest[4:]
	if len(rest) < n {
		return nil, errShortFrame
	}
	if n > 0 {
		fr.Payload = append([]byte(nil), rest[:n]...)
	}
	if len(rest) != n {
		return nil, errTrailingData
	}
	return fr, nil
}

// writeFrame marshals and writes one frame.
func writeFrame(w io.Writer, fr *frame) error {
	buf, err := marshalFrame(fr)
	if err != nil {
		return err
	}
	_, err = w.Write(buf)
	return err
}

// readFrame reads one length-prefixed frame, bounding the body at max.
func readFrame(r io.Reader, max int) (*frame, error) {
	var prefix [4]byte
	if _, err := io.ReadFull(r, prefix[:]); err != nil {
		return nil, err
	}
	n := int(binary.BigEndian.Uint32(prefix[:]))
	if max <= 0 {
		max = maxFrameDefault
	}
	if n > max {
		return nil, fmt.Errorf("tcpnet: frame of %d bytes exceeds limit %d", n, max)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return nil, err
	}
	return decodeFrame(body)
}
