package tcpnet

import (
	"net"
	"strings"
	"testing"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/cods"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/transport"
)

// fillCells produces deterministic row-major data for a region.
func fillCells(b geometry.BBox) []float64 {
	data := make([]float64, b.Volume())
	i := 0
	b.Each(func(p geometry.Point) {
		v := 0.0
		for _, x := range p {
			v = v*1000 + float64(x)
		}
		data[i] = v
		i++
	})
	return data
}

// TestReadMultiClipsOnOwner drives the scatter-gather op end to end over
// loopback sockets: the owner must clip each requested sub-box out of its
// exposed block and stream exactly those cells — including the edge cases
// of an empty intersection, a single cell and the full block.
func TestReadMultiClipsOnOwner(t *testing.T) {
	f, _ := newLoopbackFabric(t, 2, 1)
	m := transport.Meter{Phase: "t", Class: cluster.InterApp, DstApp: 2}
	region := geometry.NewBBox(geometry.Point{4, 4}, geometry.Point{8, 8})
	obj := &cods.StoredObject{Region: region, Data: fillCells(region)}
	key := transport.BufKey{Name: "v", Version: 1}
	if err := f.Endpoint(1).Expose(key, obj); err != nil {
		t.Fatal(err)
	}
	subs := []geometry.BBox{
		geometry.NewBBox(geometry.Point{0, 0}, geometry.Point{4, 4}), // empty intersection
		geometry.NewBBox(geometry.Point{4, 4}, geometry.Point{5, 5}), // single cell
		region, // full block
		geometry.NewBBox(geometry.Point{5, 5}, geometry.Point{7, 8}), // strided interior
	}
	specs := make([]transport.ReadSpec, len(subs))
	for i, sub := range subs {
		clip, _ := sub.Intersect(region)
		specs[i] = transport.ReadSpec{Owner: 1, Key: key, Sub: sub, Bytes: clip.Volume() * cods.ElemSize}
	}
	got := make([][]byte, len(subs))
	err := f.Endpoint(0).ReadMulti(specs, m, func(i int, payload any, clipped []byte) error {
		if payload != nil {
			t.Errorf("segment %d delivered a full payload over the wire", i)
		}
		got[i] = append([]byte(nil), clipped...)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, sub := range subs {
		clip, ok := sub.Intersect(region)
		if !ok {
			if len(got[i]) != 0 {
				t.Fatalf("segment %d: empty intersection carried %d bytes", i, len(got[i]))
			}
			continue
		}
		want, err := obj.ClipRegion(nil, sub)
		if err != nil {
			t.Fatal(err)
		}
		if string(got[i]) != string(want) {
			t.Fatalf("segment %d (%v): clipped bytes differ from owner-side reference", i, clip)
		}
		if int64(len(got[i])) != clip.Volume()*cods.ElemSize {
			t.Fatalf("segment %d: %d bytes, want %d", i, len(got[i]), clip.Volume()*cods.ElemSize)
		}
	}
}

// TestBatchedPullFrameCount is the frame-count probe of the acceptance
// criteria: a coalesced multi-transfer pull over the TCP backend issues
// exactly one scatter-gather request per owning peer and zero whole-block
// reads, and the bytes its server clips equal the schedule-predicted byte
// count. Turning batching off restores one whole-block read per transfer
// and moves strictly more bytes over the wire.
func TestBatchedPullFrameCount(t *testing.T) {
	f, b := newLoopbackFabric(t, 2, 2)
	sp, err := cods.NewSpace(f, geometry.BoxFromSize([]int{16}))
	if err != nil {
		t.Fatal(err)
	}
	// Two producer blocks, both owned by node 1.
	for i, core := range []cluster.CoreID{2, 3} {
		blk := geometry.NewBBox(geometry.Point{8 * i}, geometry.Point{8 * (i + 1)})
		h := sp.HandleAt(core, 1, "put")
		if err := h.PutSequential("v", 0, blk, fillCells(blk)); err != nil {
			t.Fatal(err)
		}
	}
	// An inset get region: both sub-boxes are smaller than their stored
	// blocks, so clipping must shrink the wire traffic.
	get := geometry.NewBBox(geometry.Point{3}, geometry.Point{13})
	h := sp.HandleAt(0, 2, "get")
	before := b.WireStats()
	out, err := h.GetSequential("v", 0, get)
	if err != nil {
		t.Fatal(err)
	}
	want := fillCells(get)
	for i := range want {
		if out[i] != want[i] {
			t.Fatalf("cell %d = %v, want %v", i, out[i], want[i])
		}
	}
	after := b.WireStats()
	if n := after.ReadMultiRequests - before.ReadMultiRequests; n != 1 {
		t.Errorf("batched pull issued %d scatter-gather requests, want 1 (one per owning peer)", n)
	}
	if n := after.ReadRequests - before.ReadRequests; n != 0 {
		t.Errorf("batched pull issued %d whole-block reads, want 0", n)
	}
	predicted := get.Volume() * cods.ElemSize
	if n := after.SegmentBytesServed - before.SegmentBytesServed; n != predicted {
		t.Errorf("served %d clipped bytes, want the schedule-predicted %d", n, predicted)
	}
	if n := after.SegmentsServed - before.SegmentsServed; n != 2 {
		t.Errorf("served %d segments, want 2", n)
	}
	batchedWire := (after.BytesIn - before.BytesIn) + (after.BytesOut - before.BytesOut)

	// Ablation: the whole-block protocol for the same pull.
	sp.SetBatchedPulls(false)
	h2 := sp.HandleAt(1, 2, "get")
	before = b.WireStats()
	if _, err := h2.GetSequential("v", 0, get); err != nil {
		t.Fatal(err)
	}
	after = b.WireStats()
	if n := after.ReadRequests - before.ReadRequests; n != 2 {
		t.Errorf("unbatched pull issued %d whole-block reads, want 2", n)
	}
	if n := after.ReadMultiRequests - before.ReadMultiRequests; n != 0 {
		t.Errorf("unbatched pull issued %d scatter-gather requests, want 0", n)
	}
	wholeBlockWire := (after.BytesIn - before.BytesIn) + (after.BytesOut - before.BytesOut)
	if wholeBlockWire <= batchedWire {
		t.Errorf("whole-block protocol moved %d wire bytes, batched clipped path %d — clipping saved nothing",
			wholeBlockWire, batchedWire)
	}
}

// TestHandshakeRejectsOldWireVersion proves the old-peer policy of DESIGN
// §5f: a v1 client is turned away at the handshake with a version error —
// there is no per-op fallback that could strand it mid-stream.
func TestHandshakeRejectsOldWireVersion(t *testing.T) {
	_, b := newLoopbackFabric(t, 1, 1)
	c, err := net.Dial("tcp", b.Addr(0))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	hello := &frame{Op: opHello, Dst: 0, Tag: helloMagic, Version: 1, Bytes: 1, Bytes2: 1}
	if err := writeFrame(c, hello); err != nil {
		t.Fatal(err)
	}
	resp, err := readFrame(c, 0)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != statusErr || !strings.Contains(resp.Err, "wire version") {
		t.Fatalf("v1 hello answered with status %d, err %q; want a wire version rejection", resp.Status, resp.Err)
	}
}

// TestReadSpecsRoundTrip pins the spec codec: encode/decode is the
// identity and the decoder is strict about truncation and trailing bytes.
func TestReadSpecsRoundTrip(t *testing.T) {
	specs := []transport.ReadSpec{
		{Owner: 3, Key: transport.BufKey{Name: "temperature|[0,8)", Version: 7},
			Sub: geometry.NewBBox(geometry.Point{1, 2}, geometry.Point{5, 6}), Bytes: 128},
		{Owner: 0, Key: transport.BufKey{Name: "v", Version: 0},
			Sub: geometry.NewBBox(geometry.Point{0}, geometry.Point{1}), Bytes: 8},
	}
	buf, err := appendReadSpecs(nil, specs)
	if err != nil {
		t.Fatal(err)
	}
	got, err := decodeReadSpecs(buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(specs) {
		t.Fatalf("decoded %d specs, want %d", len(got), len(specs))
	}
	for i := range specs {
		if got[i].Owner != specs[i].Owner || got[i].Key != specs[i].Key ||
			got[i].Bytes != specs[i].Bytes || !got[i].Sub.Equal(specs[i].Sub) {
			t.Fatalf("spec %d round-tripped to %+v, want %+v", i, got[i], specs[i])
		}
	}
	for n := 0; n < len(buf); n++ {
		if _, err := decodeReadSpecs(buf[:n]); err == nil {
			t.Fatalf("decoder accepted %d-byte prefix of a %d-byte spec list", n, len(buf))
		}
	}
	if _, err := decodeReadSpecs(append(buf, 0)); err == nil {
		t.Fatal("decoder accepted trailing byte")
	}
}
