package tcpnet

import (
	"bytes"
	"sync"
	"testing"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/obs"
	"github.com/insitu/cods/internal/transport"
)

// TestRemoteSpanCapture drives reads and calls carrying trace context
// through the loopback wire path and asserts the serving side emits one
// node-labelled handler span per operation, parented under the requesting
// span id that travelled in the frame.
func TestRemoteSpanCapture(t *testing.T) {
	f, b := newLoopbackFabric(t, 2, 2)
	b.EnableSpanCapture()

	key := transport.BufKey{Name: "var", Version: 1}
	if err := f.Endpoint(3).Expose(key, &blockPayload{Text: "x", Vals: []float64{1}}); err != nil {
		t.Fatal(err)
	}
	m := transport.Meter{Phase: "test", Class: cluster.InterApp, DstApp: 2, Span: 42}
	if err := f.Endpoint(0).Read(3, key, m, 8, func(any) {}); err != nil {
		t.Fatal(err)
	}
	f.Endpoint(2).RegisterHandler("echo", func(_ cluster.CoreID, req any) (any, error) { return req, nil })
	cm := transport.Meter{Phase: "test", Class: cluster.Control, Span: 43}
	if _, err := f.Endpoint(1).Call(2, "echo", echoPayload{Text: "hi"}, cm, 8, 8); err != nil {
		t.Fatal(err)
	}
	// Context-free operations must not produce spans.
	if err := f.Endpoint(0).Read(3, key, transport.Meter{Class: cluster.InterApp}, 8, func(any) {}); err != nil {
		t.Fatal(err)
	}

	var out bytes.Buffer
	tr := obs.NewTracer(&out)
	if err := b.DrainRemoteSpans(tr); err != nil {
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}
	evs, err := obs.ReadSpans(&out)
	if err != nil {
		t.Fatal(err)
	}
	begins := map[string]obs.SpanEvent{}
	for _, ev := range evs {
		if ev.Ev == "b" {
			begins[ev.Name] = ev
		}
	}
	if len(begins) != 2 {
		t.Fatalf("captured %d distinct spans, want read + call only: %v", len(begins), begins)
	}
	read := begins["remote:read:var"]
	if read.Parent != 42 || read.Node != "node1" {
		t.Fatalf("read span parent=%d node=%q, want 42/node1", read.Parent, read.Node)
	}
	call := begins["remote:call:echo"]
	if call.Parent != 43 || call.Node != "node1" {
		t.Fatalf("call span parent=%d node=%q, want 43/node1", call.Parent, call.Node)
	}
	if read.ID <= 1<<48 {
		t.Fatalf("handler span id %d not namespaced above the node base", read.ID)
	}

	// The buffer was drained: a second drain ships nothing.
	var again bytes.Buffer
	tr2 := obs.NewTracer(&again)
	if err := b.DrainRemoteSpans(tr2); err != nil {
		t.Fatal(err)
	}
	if err := tr2.Flush(); err != nil {
		t.Fatal(err)
	}
	if again.Len() != 0 {
		t.Fatalf("second drain returned %d bytes", again.Len())
	}
}

// TestRemoteSpanDrainRace races span-emitting remote reads against
// concurrent drains; the merged stream must stay whole JSON lines and
// lose no span. Run with -race.
func TestRemoteSpanDrainRace(t *testing.T) {
	f, b := newLoopbackFabric(t, 2, 2)
	b.EnableSpanCapture()
	key := transport.BufKey{Name: "var", Version: 1}
	if err := f.Endpoint(2).Expose(key, &blockPayload{Text: "x", Vals: []float64{1}}); err != nil {
		t.Fatal(err)
	}

	const workers, opsPer = 4, 50
	var out bytes.Buffer
	tr := obs.NewTracer(&out)
	stop := make(chan struct{})
	var drains sync.WaitGroup
	drains.Add(1)
	go func() {
		defer drains.Done()
		for {
			select {
			case <-stop:
				return
			default:
				if err := b.DrainRemoteSpans(tr); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < opsPer; i++ {
				m := transport.Meter{Phase: "test", Class: cluster.InterApp,
					Span: uint64(1000 + w*opsPer + i)}
				if err := f.Endpoint(0).Read(2, key, m, 8, func(any) {}); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(stop)
	drains.Wait()
	if err := b.DrainRemoteSpans(tr); err != nil { // final sweep
		t.Fatal(err)
	}
	if err := tr.Flush(); err != nil {
		t.Fatal(err)
	}

	evs, err := obs.ReadSpans(&out)
	if err != nil {
		t.Fatalf("merged stream corrupted: %v", err)
	}
	parents := map[obs.SpanID]bool{}
	for _, ev := range evs {
		if ev.Ev == "b" {
			if ev.Node != "node1" {
				t.Fatalf("span missing node label: %+v", ev)
			}
			parents[ev.Parent] = true
		}
	}
	if len(parents) != workers*opsPer {
		t.Fatalf("drained %d distinct spans, want %d", len(parents), workers*opsPer)
	}
	for w := 0; w < workers; w++ {
		for i := 0; i < opsPer; i++ {
			if id := obs.SpanID(1000 + w*opsPer + i); !parents[id] {
				t.Fatalf("span parented under %d lost", id)
			}
		}
	}
}
