package transport

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"github.com/insitu/cods/internal/cluster"
)

func intp(v int) *int { return &v }

func testFabric(t *testing.T, nodes, cores int) *Fabric {
	t.Helper()
	m, err := cluster.NewMachine(nodes, cores)
	if err != nil {
		t.Fatal(err)
	}
	return NewFabric(m)
}

func mustPlan(t *testing.T, rules ...FaultRule) *FaultPlan {
	t.Helper()
	p, err := buildPlan(42, rules...)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// buildPlan compiles rules without round-tripping through JSON.
func buildPlan(seed uint64, rules ...FaultRule) (*FaultPlan, error) {
	p := &FaultPlan{seed: seed}
	for i, r := range rules {
		cr, err := compileRule(r)
		if err != nil {
			return nil, fmt.Errorf("rule %d: %w", i, err)
		}
		p.rules = append(p.rules, cr)
	}
	return p, nil
}

func TestFaultWindowFailsReadsThenHeals(t *testing.T) {
	f := testFabric(t, 2, 2)
	key := BufKey{Name: "u"}
	if err := f.Endpoint(0).Expose(key, "payload"); err != nil {
		t.Fatal(err)
	}
	// Fail the first 3 reads against core 0, then heal.
	f.SetFaultPlan(mustPlan(t, FaultRule{Op: "read", Dst: intp(0), Mode: "error", FromOp: 0, ToOp: 3}))
	m := Meter{Phase: "t", Class: cluster.InterApp}
	for i := 0; i < 3; i++ {
		err := f.Endpoint(1).Read(0, key, m, 8, nil)
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("read %d: err = %v, want ErrInjected", i, err)
		}
	}
	if err := f.Endpoint(1).Read(0, key, m, 8, nil); err != nil {
		t.Fatalf("read after window: %v", err)
	}
	if got := f.FaultsInjected(); got != 3 {
		t.Fatalf("FaultsInjected = %d, want 3", got)
	}
	// Failed reads must not be metered.
	if ops := f.MediumOps(cluster.SharedMemory) + f.MediumOps(cluster.Network); ops != 1 {
		t.Fatalf("metered ops = %d, want 1", ops)
	}
}

func TestFaultProbabilisticDeterministicCount(t *testing.T) {
	// The number of fires out of N matches is a pure function of
	// (seed, rule, N): two fresh plans with the same seed inject the same
	// count, a different seed very likely a different pattern.
	const n = 400
	count := func(seed uint64) int64 {
		f := testFabric(t, 1, 2)
		key := BufKey{Name: "u"}
		if err := f.Endpoint(0).Expose(key, 1); err != nil {
			t.Fatal(err)
		}
		p, err := buildPlan(seed, FaultRule{Op: "read", Mode: "error", Prob: 0.2})
		if err != nil {
			t.Fatal(err)
		}
		f.SetFaultPlan(p)
		m := Meter{Phase: "t"}
		for i := 0; i < n; i++ {
			_ = f.Endpoint(1).Read(0, key, m, 1, nil)
		}
		return p.Injected()
	}
	a, b := count(7), count(7)
	if a != b {
		t.Fatalf("same seed injected %d then %d faults", a, b)
	}
	if a == 0 || a == n {
		t.Fatalf("prob 0.2 injected %d of %d", a, n)
	}
	// ~20% of 400, loose bounds.
	if a < n/10 || a > n/2 {
		t.Fatalf("prob 0.2 injected %d of %d, far off expectation", a, n)
	}
}

func TestFaultMaxBoundsFires(t *testing.T) {
	f := testFabric(t, 1, 2)
	key := BufKey{Name: "u"}
	if err := f.Endpoint(0).Expose(key, 1); err != nil {
		t.Fatal(err)
	}
	p := mustPlan(t, FaultRule{Op: "read", Mode: "error", Prob: 1, Max: 2})
	f.SetFaultPlan(p)
	m := Meter{Phase: "t"}
	fails := 0
	for i := 0; i < 10; i++ {
		if err := f.Endpoint(1).Read(0, key, m, 1, nil); err != nil {
			fails++
		}
	}
	if fails != 2 || p.Injected() != 2 {
		t.Fatalf("fails=%d injected=%d, want 2/2", fails, p.Injected())
	}
}

func TestFaultDelayDoesNotFail(t *testing.T) {
	f := testFabric(t, 1, 2)
	f.SetFaultPlan(mustPlan(t, FaultRule{Op: "send", Medium: "shm", Mode: "delay", Prob: 1, DelayUS: 100}))
	m := Meter{Phase: "t"}
	start := time.Now()
	if err := f.Endpoint(0).Send(1, 1, []byte{1}, m); err != nil {
		t.Fatalf("delayed send failed: %v", err)
	}
	if el := time.Since(start); el < 100*time.Microsecond {
		t.Fatalf("send returned after %v, want >= 100µs delay", el)
	}
	p := f.fault.Load()
	if p.Delayed() != 1 || p.Injected() != 0 {
		t.Fatalf("delayed=%d injected=%d, want 1/0", p.Delayed(), p.Injected())
	}
	if _, err := f.Endpoint(1).Recv(0, 1); err != nil {
		t.Fatalf("message lost: %v", err)
	}
}

func TestFaultMatchScoping(t *testing.T) {
	f := testFabric(t, 2, 2) // cores 0,1 on node 0; 2,3 on node 1
	key := BufKey{Name: "u"}
	if err := f.Endpoint(0).Expose(key, 1); err != nil {
		t.Fatal(err)
	}
	// Only network reads initiated by core 2 fail.
	f.SetFaultPlan(mustPlan(t, FaultRule{Op: "read", Medium: "network", Src: intp(2), Mode: "error", Prob: 1}))
	m := Meter{Phase: "t"}
	if err := f.Endpoint(1).Read(0, key, m, 1, nil); err != nil {
		t.Fatalf("shm read from core 1 failed: %v", err)
	}
	if err := f.Endpoint(3).Read(0, key, m, 1, nil); err != nil {
		t.Fatalf("network read from core 3 failed: %v", err)
	}
	if err := f.Endpoint(2).Read(0, key, m, 1, nil); !errors.Is(err, ErrInjected) {
		t.Fatalf("network read from core 2: err = %v, want ErrInjected", err)
	}
	// Calls are unaffected by a read rule.
	f.Endpoint(0).RegisterHandler("svc", func(src cluster.CoreID, req any) (any, error) { return 1, nil })
	if _, err := f.Endpoint(2).Call(0, "svc", nil, m, 1, 1); err != nil {
		t.Fatalf("call matched a read rule: %v", err)
	}
}

func TestFaultPlanRemoval(t *testing.T) {
	f := testFabric(t, 1, 2)
	key := BufKey{Name: "u"}
	if err := f.Endpoint(0).Expose(key, 1); err != nil {
		t.Fatal(err)
	}
	f.SetFaultPlan(mustPlan(t, FaultRule{Op: "read", Mode: "error", Prob: 1}))
	m := Meter{Phase: "t"}
	if err := f.Endpoint(1).Read(0, key, m, 1, nil); err == nil {
		t.Fatal("fault plan not applied")
	}
	f.SetFaultPlan(nil)
	if err := f.Endpoint(1).Read(0, key, m, 1, nil); err != nil {
		t.Fatalf("read after plan removal: %v", err)
	}
}

func TestParseFaultPlan(t *testing.T) {
	good := `{"seed": 7, "rules": [
		{"op": "read", "medium": "shm", "dst": 3, "mode": "error", "prob": 0.05},
		{"op": "send", "mode": "delay", "prob": 1, "delay_us": 50},
		{"op": "call", "mode": "drop", "from_op": 10, "to_op": 20, "max": 5}
	]}`
	p, err := ParseFaultPlan([]byte(good))
	if err != nil {
		t.Fatalf("valid plan rejected: %v", err)
	}
	if len(p.rules) != 3 || p.seed != 7 {
		t.Fatalf("parsed %d rules seed %d, want 3 rules seed 7", len(p.rules), p.seed)
	}
	bad := []struct {
		name, in string
	}{
		{"empty", ``},
		{"not json", `{"rules": [`},
		{"no rules", `{"seed": 1}`},
		{"unknown field", `{"rules": [{"op": "read", "mode": "error", "prob": 1, "bogus": 1}]}`},
		{"unknown op", `{"rules": [{"op": "teleport", "mode": "error", "prob": 1}]}`},
		{"unknown medium", `{"rules": [{"op": "read", "medium": "carrier-pigeon", "mode": "error", "prob": 1}]}`},
		{"unknown mode", `{"rules": [{"op": "read", "mode": "explode", "prob": 1}]}`},
		{"prob out of range", `{"rules": [{"op": "read", "mode": "error", "prob": 1.5}]}`},
		{"negative prob", `{"rules": [{"op": "read", "mode": "error", "prob": -0.1}]}`},
		{"never fires", `{"rules": [{"op": "read", "mode": "error"}]}`},
		{"prob and window", `{"rules": [{"op": "read", "mode": "error", "prob": 0.5, "to_op": 3}]}`},
		{"delay without duration", `{"rules": [{"op": "send", "mode": "delay", "prob": 1}]}`},
		{"negative delay", `{"rules": [{"op": "send", "mode": "delay", "prob": 1, "delay_us": -3}]}`},
		{"negative src", `{"rules": [{"op": "read", "src": -2, "mode": "error", "prob": 1}]}`},
		{"negative max", `{"rules": [{"op": "read", "mode": "error", "prob": 1, "max": -1}]}`},
		{"inverted window", `{"rules": [{"op": "read", "mode": "error", "from_op": 9, "to_op": 3}]}`},
		{"trailing garbage", `{"rules": [{"op": "read", "mode": "error", "prob": 1}]} {"x": 1}`},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := ParseFaultPlan([]byte(tc.in)); err == nil {
				t.Fatalf("malformed plan accepted: %s", tc.in)
			}
		})
	}
}

func TestEndpointClosedTypedErrors(t *testing.T) {
	f := testFabric(t, 1, 2)
	key := BufKey{Name: "u"}
	if err := f.Endpoint(1).Expose(key, 1); err != nil {
		t.Fatal(err)
	}
	f.Endpoint(1).RegisterHandler("svc", func(src cluster.CoreID, req any) (any, error) { return 1, nil })
	f.Endpoint(1).Close()
	m := Meter{Phase: "t"}

	if err := f.Endpoint(0).Send(1, 1, nil, m); !errors.Is(err, ErrEndpointClosed) {
		t.Fatalf("Send to closed endpoint: %v, want ErrEndpointClosed", err)
	}
	if _, err := f.Endpoint(1).Recv(0, 1); !errors.Is(err, ErrEndpointClosed) {
		t.Fatalf("Recv on closed endpoint: %v, want ErrEndpointClosed", err)
	}
	// Read and Call against a closed endpoint are the regression this test
	// pins: both must surface the typed sentinel, even though the buffer
	// was exposed and the handler registered before the close.
	if err := f.Endpoint(0).Read(1, key, m, 1, nil); !errors.Is(err, ErrEndpointClosed) {
		t.Fatalf("Read from closed endpoint: %v, want ErrEndpointClosed", err)
	}
	if ok, err := f.Endpoint(0).TryRead(1, key, m, 1, nil); ok || !errors.Is(err, ErrEndpointClosed) {
		t.Fatalf("TryRead from closed endpoint: ok=%v err=%v, want ErrEndpointClosed", ok, err)
	}
	if _, err := f.Endpoint(0).Call(1, "svc", nil, m, 1, 1); !errors.Is(err, ErrEndpointClosed) {
		t.Fatalf("Call to closed endpoint: %v, want ErrEndpointClosed", err)
	}
}

func TestFaultInjectionConcurrentSafe(t *testing.T) {
	// Exercised under -race in CI: concurrent readers against one plan.
	f := testFabric(t, 2, 4)
	key := BufKey{Name: "u"}
	if err := f.Endpoint(0).Expose(key, 1); err != nil {
		t.Fatal(err)
	}
	p := mustPlan(t,
		FaultRule{Op: "read", Mode: "error", Prob: 0.3},
		FaultRule{Op: "read", Mode: "delay", Prob: 0.1, DelayUS: 1})
	f.SetFaultPlan(p)
	m := Meter{Phase: "t"}
	done := make(chan int64, 4)
	for c := 1; c < 5; c++ {
		go func(c int) {
			var fails int64
			for i := 0; i < 200; i++ {
				if err := f.Endpoint(cluster.CoreID(c)).Read(0, key, m, 1, nil); err != nil {
					fails++
				}
			}
			done <- fails
		}(c)
	}
	var total int64
	for i := 0; i < 4; i++ {
		total += <-done
	}
	if total != p.Injected() {
		t.Fatalf("observed %d failures, plan counted %d", total, p.Injected())
	}
}
