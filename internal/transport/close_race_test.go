package transport

import (
	"errors"
	"sync"
	"testing"
	"time"

	"github.com/insitu/cods/internal/cluster"
)

// TestCloseDuringCall pins the Close-vs-Call contract: closing the serving
// endpoint while a handler is still running must fail the in-flight Call
// with ErrEndpointClosed instead of leaving the caller blocked on a
// response that will never come.
func TestCloseDuringCall(t *testing.T) {
	f := fabric(t, 1, 2)
	server, client := f.Endpoint(0), f.Endpoint(1)

	entered := make(chan struct{})
	release := make(chan struct{})
	server.RegisterHandler("stuck", func(src cluster.CoreID, req any) (any, error) {
		close(entered)
		<-release
		return "late", nil
	})

	callErr := make(chan error, 1)
	go func() {
		_, err := client.Call(0, "stuck", nil, testMeter, 8, 8)
		callErr <- err
	}()

	<-entered
	server.Close()

	select {
	case err := <-callErr:
		if !errors.Is(err, ErrEndpointClosed) {
			t.Fatalf("got %v, want ErrEndpointClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Call hung after Close of the serving endpoint")
	}
	close(release)
}

// TestCloseCallRace hammers concurrent Calls against a concurrent Close:
// every call must either succeed or fail with ErrEndpointClosed — no
// hangs, no other errors — and the race detector must stay quiet.
func TestCloseCallRace(t *testing.T) {
	f := fabric(t, 1, 4)
	server := f.Endpoint(0)
	server.RegisterHandler("echo", func(src cluster.CoreID, req any) (any, error) {
		return req, nil
	})

	const callers = 8
	var wg sync.WaitGroup
	errs := make(chan error, callers*16)
	for i := 0; i < callers; i++ {
		wg.Add(1)
		go func(core int) {
			defer wg.Done()
			ep := f.Endpoint(cluster.CoreID(1 + core%3))
			for j := 0; j < 16; j++ {
				if _, err := ep.Call(0, "echo", j, testMeter, 8, 8); err != nil {
					errs <- err
				}
			}
		}(i)
	}
	server.Close()
	wg.Wait()
	close(errs)
	for err := range errs {
		if !errors.Is(err, ErrEndpointClosed) {
			t.Fatalf("unexpected error under Close race: %v", err)
		}
	}
}
