package partition

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// buildGraph constructs a symmetric graph from an edge list.
func buildGraph(n int, vwgt []int64, edges [][3]int64) *Graph {
	g := &Graph{VWgt: make([]int64, n), Adj: make([][]Edge, n)}
	for i := 0; i < n; i++ {
		if vwgt != nil {
			g.VWgt[i] = vwgt[i]
		} else {
			g.VWgt[i] = 1
		}
	}
	for _, e := range edges {
		u, v, w := int(e[0]), int(e[1]), e[2]
		g.Adj[u] = append(g.Adj[u], Edge{To: v, Wgt: w})
		g.Adj[v] = append(g.Adj[v], Edge{To: u, Wgt: w})
	}
	return g
}

// twoCliques builds two k-cliques with heavy internal edges joined by one
// light bridge; the optimal bipartition separates the cliques.
func twoCliques(size int) *Graph {
	n := 2 * size
	var edges [][3]int64
	for c := 0; c < 2; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, [3]int64{int64(base + i), int64(base + j), 100})
			}
		}
	}
	edges = append(edges, [3]int64{0, int64(size), 1})
	return buildGraph(n, nil, edges)
}

func checkPartition(t *testing.T, g *Graph, parts []int, k int, cap int64) {
	t.Helper()
	if len(parts) != g.NumVertices() {
		t.Fatalf("parts length %d != vertices %d", len(parts), g.NumVertices())
	}
	for v, p := range parts {
		if p < 0 || p >= k {
			t.Fatalf("vertex %d in invalid part %d", v, p)
		}
	}
	for p, w := range PartWeights(g, parts, k) {
		if w > cap {
			t.Fatalf("part %d weight %d exceeds capacity %d", p, w, cap)
		}
	}
}

func TestValidate(t *testing.T) {
	good := buildGraph(3, nil, [][3]int64{{0, 1, 5}, {1, 2, 2}})
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := &Graph{VWgt: []int64{1, 1}, Adj: [][]Edge{{{To: 1, Wgt: 3}}, {}}}
	if err := bad.Validate(); err == nil {
		t.Error("asymmetric graph validated")
	}
	loop := &Graph{VWgt: []int64{1}, Adj: [][]Edge{{{To: 0, Wgt: 1}}}}
	if err := loop.Validate(); err == nil {
		t.Error("self loop validated")
	}
	zero := &Graph{VWgt: []int64{0}, Adj: [][]Edge{nil}}
	if err := zero.Validate(); err == nil {
		t.Error("zero vertex weight validated")
	}
}

func TestKWayValidation(t *testing.T) {
	g := buildGraph(4, nil, nil)
	if _, err := KWay(g, 0, Options{}); err == nil {
		t.Error("k=0 accepted")
	}
	if _, err := KWay(g, 2, Options{MaxPartWeight: 1}); err == nil {
		t.Error("insufficient capacity accepted")
	}
	heavy := buildGraph(1, []int64{10}, nil)
	if _, err := KWay(heavy, 2, Options{MaxPartWeight: 5}); err == nil {
		t.Error("oversized vertex accepted")
	}
}

func TestKWayEmptyGraph(t *testing.T) {
	g := &Graph{}
	parts, err := KWay(g, 3, Options{})
	if err != nil || len(parts) != 0 {
		t.Fatalf("empty graph: %v, %v", parts, err)
	}
}

func TestKWaySeparatesCliques(t *testing.T) {
	g := twoCliques(8)
	parts, err := KWay(g, 2, Options{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, parts, 2, 8)
	if cut := EdgeCut(g, parts); cut != 1 {
		t.Fatalf("edge cut = %d, want 1 (only the bridge)", cut)
	}
}

func TestKWayFourCliquesFourParts(t *testing.T) {
	// Four 6-cliques in a ring with light bridges.
	size, k := 6, 4
	n := size * k
	var edges [][3]int64
	for c := 0; c < k; c++ {
		base := c * size
		for i := 0; i < size; i++ {
			for j := i + 1; j < size; j++ {
				edges = append(edges, [3]int64{int64(base + i), int64(base + j), 50})
			}
		}
		next := ((c + 1) % k) * size
		edges = append(edges, [3]int64{int64(base), int64(next), 1})
	}
	g := buildGraph(n, nil, edges)
	parts, err := KWay(g, k, Options{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, parts, k, int64(size))
	if cut := EdgeCut(g, parts); cut != int64(k) {
		t.Fatalf("edge cut = %d, want %d (only bridges)", cut, k)
	}
}

func TestKWayStrictCapacity(t *testing.T) {
	// A star graph strains balance: the hub attracts everything, but the
	// capacity forces spreading.
	n := 12
	var edges [][3]int64
	for v := 1; v < n; v++ {
		edges = append(edges, [3]int64{0, int64(v), 10})
	}
	g := buildGraph(n, nil, edges)
	parts, err := KWay(g, 4, Options{Seed: 9, MaxPartWeight: 3})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, parts, 4, 3)
}

func TestKWayDisconnectedGraph(t *testing.T) {
	g := buildGraph(9, nil, nil) // no edges at all
	parts, err := KWay(g, 3, Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, parts, 3, 3)
}

func TestKWayWeightedVertices(t *testing.T) {
	g := buildGraph(6, []int64{4, 1, 1, 4, 1, 1}, [][3]int64{
		{0, 1, 5}, {1, 2, 5}, {3, 4, 5}, {4, 5, 5}, {2, 3, 1},
	})
	parts, err := KWay(g, 2, Options{Seed: 7, MaxPartWeight: 6})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, parts, 2, 6)
	if cut := EdgeCut(g, parts); cut > 5 {
		t.Fatalf("edge cut = %d, expected the light bridge region (<=5)", cut)
	}
}

func TestKWayDeterministicForSeed(t *testing.T) {
	g := twoCliques(10)
	a, err := KWay(g, 2, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := KWay(g, 2, Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("same seed produced different partitions")
		}
	}
}

func TestSingleLevelOption(t *testing.T) {
	g := twoCliques(8)
	parts, err := KWay(g, 2, Options{Seed: 1, SingleLevel: true})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, parts, 2, 8)
	// Single-level should still find the obvious split on this easy graph.
	if cut := EdgeCut(g, parts); cut != 1 {
		t.Fatalf("single-level cut = %d", cut)
	}
}

func TestMultilevelBeatsOrEqualsRandomOnGrid(t *testing.T) {
	// A 2-D grid graph: multilevel partitioning should cut far fewer
	// edges than a random assignment.
	const side = 12
	n := side * side
	var edges [][3]int64
	id := func(i, j int) int64 { return int64(i*side + j) }
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			if i+1 < side {
				edges = append(edges, [3]int64{id(i, j), id(i+1, j), 1})
			}
			if j+1 < side {
				edges = append(edges, [3]int64{id(i, j), id(i, j+1), 1})
			}
		}
	}
	g := buildGraph(n, nil, edges)
	k := 9
	parts, err := KWay(g, k, Options{Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	checkPartition(t, g, parts, k, int64(n/k))
	cut := EdgeCut(g, parts)

	rng := rand.New(rand.NewSource(5))
	randomParts := make([]int, n)
	for i := range randomParts {
		randomParts[i] = rng.Intn(k)
	}
	randomCut := EdgeCut(g, randomParts)
	if cut*2 >= randomCut {
		t.Fatalf("multilevel cut %d not clearly better than random cut %d", cut, randomCut)
	}
}

func TestEdgeCutAndPartWeights(t *testing.T) {
	g := buildGraph(4, []int64{1, 2, 3, 4}, [][3]int64{{0, 1, 5}, {2, 3, 7}, {1, 2, 11}})
	parts := []int{0, 0, 1, 1}
	if cut := EdgeCut(g, parts); cut != 11 {
		t.Fatalf("EdgeCut = %d", cut)
	}
	w := PartWeights(g, parts, 2)
	if w[0] != 3 || w[1] != 7 {
		t.Fatalf("PartWeights = %v", w)
	}
}

func TestQuickPartitionInvariants(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func() bool {
		n := 4 + rng.Intn(40)
		k := 1 + rng.Intn(4)
		var edges [][3]int64
		for e := 0; e < n*2; e++ {
			u, v := rng.Intn(n), rng.Intn(n)
			if u == v {
				continue
			}
			// Deduplicate crudely by skipping duplicates later via map.
			edges = append(edges, [3]int64{int64(u), int64(v), int64(1 + rng.Intn(20))})
		}
		// Merge duplicate pairs.
		merged := map[[2]int]int64{}
		for _, e := range edges {
			u, v := int(e[0]), int(e[1])
			if u > v {
				u, v = v, u
			}
			merged[[2]int{u, v}] += e[2]
		}
		var clean [][3]int64
		for p, w := range merged {
			clean = append(clean, [3]int64{int64(p[0]), int64(p[1]), w})
		}
		g := buildGraph(n, nil, clean)
		if err := g.Validate(); err != nil {
			return false
		}
		cap := int64((n + k - 1) / k)
		parts, err := KWay(g, k, Options{Seed: int64(n * k), MaxPartWeight: cap})
		if err != nil {
			return false
		}
		for _, p := range parts {
			if p < 0 || p >= k {
				return false
			}
		}
		for _, w := range PartWeights(g, parts, k) {
			if w > cap {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkKWayGrid(b *testing.B) {
	const side = 24
	n := side * side
	var edges [][3]int64
	id := func(i, j int) int64 { return int64(i*side + j) }
	for i := 0; i < side; i++ {
		for j := 0; j < side; j++ {
			if i+1 < side {
				edges = append(edges, [3]int64{id(i, j), id(i+1, j), 1})
			}
			if j+1 < side {
				edges = append(edges, [3]int64{id(i, j), id(i, j+1), 1})
			}
		}
	}
	g := buildGraph(n, nil, edges)
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := KWay(g, 48, Options{Seed: int64(i)}); err != nil {
			b.Fatal(err)
		}
	}
}
