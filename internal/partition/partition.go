// Package partition implements the multilevel k-way graph partitioner the
// workflow management server uses for server-side data-centric task
// mapping. The paper uses METIS to split the num_task vertices of the
// inter-application communication graph into num_task/core_count groups so
// that heavily communicating tasks land on the same compute node; this
// package reimplements the same multilevel scheme from scratch:
//
//  1. Coarsening by heavy-edge matching until the graph is small.
//  2. Initial partitioning of the coarsest graph by greedy graph growing.
//  3. Uncoarsening with boundary Kernighan-Lin/Fiduccia-Mattheyses style
//     refinement at every level.
//  4. A final repair pass that enforces the strict per-part capacity
//     (a compute node has exactly core_count cores).
package partition

import (
	"fmt"
	"math/rand"
	"sort"
)

// Edge is a weighted adjacency entry.
type Edge struct {
	To  int
	Wgt int64
}

// Graph is an undirected weighted graph in adjacency-list form. Adj must
// be symmetric: v in Adj[u] iff u in Adj[v], with equal weights.
type Graph struct {
	VWgt []int64
	Adj  [][]Edge
}

// NumVertices returns the vertex count.
func (g *Graph) NumVertices() int { return len(g.VWgt) }

// TotalVertexWeight sums all vertex weights.
func (g *Graph) TotalVertexWeight() int64 {
	var t int64
	for _, w := range g.VWgt {
		t += w
	}
	return t
}

// Validate checks structural invariants (symmetry, weight positivity).
func (g *Graph) Validate() error {
	if len(g.VWgt) != len(g.Adj) {
		return fmt.Errorf("partition: VWgt has %d entries, Adj has %d", len(g.VWgt), len(g.Adj))
	}
	for u := range g.Adj {
		if g.VWgt[u] <= 0 {
			return fmt.Errorf("partition: vertex %d has non-positive weight %d", u, g.VWgt[u])
		}
		for _, e := range g.Adj[u] {
			if e.To < 0 || e.To >= len(g.Adj) {
				return fmt.Errorf("partition: vertex %d has edge to %d out of range", u, e.To)
			}
			if e.To == u {
				return fmt.Errorf("partition: vertex %d has a self loop", u)
			}
			if e.Wgt <= 0 {
				return fmt.Errorf("partition: edge (%d,%d) has non-positive weight", u, e.To)
			}
			back := false
			for _, r := range g.Adj[e.To] {
				if r.To == u && r.Wgt == e.Wgt {
					back = true
					break
				}
			}
			if !back {
				return fmt.Errorf("partition: edge (%d,%d) not symmetric", u, e.To)
			}
		}
	}
	return nil
}

// EdgeCut returns the total weight of edges crossing parts.
func EdgeCut(g *Graph, parts []int) int64 {
	var cut int64
	for u := range g.Adj {
		for _, e := range g.Adj[u] {
			if u < e.To && parts[u] != parts[e.To] {
				cut += e.Wgt
			}
		}
	}
	return cut
}

// PartWeights returns the vertex weight of each part.
func PartWeights(g *Graph, parts []int, k int) []int64 {
	w := make([]int64, k)
	for v, p := range parts {
		w[p] += g.VWgt[v]
	}
	return w
}

// Options tunes the partitioner.
type Options struct {
	// Seed makes the randomized phases deterministic.
	Seed int64
	// MaxPartWeight is the strict per-part capacity. Zero means
	// ceil(total/k).
	MaxPartWeight int64
	// CoarsenTo stops coarsening when the graph has at most this many
	// vertices. Zero means max(4*k, 32).
	CoarsenTo int
	// RefinePasses bounds refinement sweeps per level. Zero means 8.
	RefinePasses int
	// SingleLevel skips the multilevel scheme and partitions the input
	// graph directly (used by the ablation benchmarks).
	SingleLevel bool
}

// KWay splits the graph into k parts of bounded weight, minimizing the
// weight of crossing edges. The returned slice maps vertex to part in
// [0,k). It errors if the capacity cannot hold the vertices.
func KWay(g *Graph, k int, opts Options) ([]int, error) {
	n := g.NumVertices()
	if k < 1 {
		return nil, fmt.Errorf("partition: k = %d < 1", k)
	}
	total := g.TotalVertexWeight()
	cap := opts.MaxPartWeight
	if cap == 0 {
		cap = (total + int64(k) - 1) / int64(k)
	}
	if cap*int64(k) < total {
		return nil, fmt.Errorf("partition: capacity %d x %d parts cannot hold total weight %d", cap, k, total)
	}
	for v := 0; v < n; v++ {
		if g.VWgt[v] > cap {
			return nil, fmt.Errorf("partition: vertex %d weight %d exceeds part capacity %d", v, g.VWgt[v], cap)
		}
	}
	if n == 0 {
		return []int{}, nil
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	coarsenTo := opts.CoarsenTo
	if coarsenTo == 0 {
		coarsenTo = 4 * k
		if coarsenTo < 32 {
			coarsenTo = 32
		}
	}
	passes := opts.RefinePasses
	if passes == 0 {
		passes = 8
	}

	// Multilevel V-cycle.
	type level struct {
		g    *Graph
		cmap []int // fine vertex -> coarse vertex (for the NEXT level)
	}
	levels := []level{{g: g}}
	if !opts.SingleLevel {
		cur := g
		for cur.NumVertices() > coarsenTo {
			coarse, cmap := coarsen(cur, cap, rng)
			if coarse.NumVertices() >= cur.NumVertices() {
				break // no progress; stop coarsening
			}
			levels[len(levels)-1].cmap = cmap
			levels = append(levels, level{g: coarse})
			cur = coarse
		}
	}

	// Initial partition of the coarsest graph.
	coarsest := levels[len(levels)-1].g
	parts := growInitial(coarsest, k, cap, rng)
	refine(coarsest, parts, k, cap, passes)
	repair(coarsest, parts, k, cap)

	// Uncoarsen and refine.
	for li := len(levels) - 2; li >= 0; li-- {
		fine := levels[li].g
		cmap := levels[li].cmap
		fineParts := make([]int, fine.NumVertices())
		for v := range fineParts {
			fineParts[v] = parts[cmap[v]]
		}
		parts = fineParts
		refine(fine, parts, k, cap, passes)
		repair(fine, parts, k, cap)
	}
	return parts, nil
}

// coarsen performs one level of heavy-edge matching and returns the coarse
// graph plus the fine-to-coarse vertex map. Matches whose combined weight
// would exceed cap are skipped so coarse vertices stay placeable.
func coarsen(g *Graph, cap int64, rng *rand.Rand) (*Graph, []int) {
	n := g.NumVertices()
	match := make([]int, n)
	for i := range match {
		match[i] = -1
	}
	order := rng.Perm(n)
	for _, u := range order {
		if match[u] != -1 {
			continue
		}
		best := -1
		var bestW int64 = -1
		for _, e := range g.Adj[u] {
			if match[e.To] != -1 {
				continue
			}
			if g.VWgt[u]+g.VWgt[e.To] > cap {
				continue
			}
			if e.Wgt > bestW {
				bestW = e.Wgt
				best = e.To
			}
		}
		if best >= 0 {
			match[u] = best
			match[best] = u
		} else {
			match[u] = u
		}
	}
	// Number coarse vertices.
	cmap := make([]int, n)
	for i := range cmap {
		cmap[i] = -1
	}
	nc := 0
	for u := 0; u < n; u++ {
		if cmap[u] != -1 {
			continue
		}
		v := match[u]
		cmap[u] = nc
		if v != u {
			cmap[v] = nc
		}
		nc++
	}
	cw := make([]int64, nc)
	cadj := make([]map[int]int64, nc)
	for i := range cadj {
		cadj[i] = make(map[int]int64)
	}
	for u := 0; u < n; u++ {
		cu := cmap[u]
		cw[cu] += g.VWgt[u]
		for _, e := range g.Adj[u] {
			cv := cmap[e.To]
			if cv != cu {
				cadj[cu][cv] += e.Wgt
			}
		}
	}
	// Each fine vertex contributes its full weight once, but each coarse
	// vertex weight was accumulated per fine member; the matched pair adds
	// twice the fine weight only if we double counted — we did not: vwgt
	// summed per member, correct.
	coarse := &Graph{VWgt: cw, Adj: make([][]Edge, nc)}
	for cu := range cadj {
		edges := make([]Edge, 0, len(cadj[cu]))
		for cv, w := range cadj[cu] {
			edges = append(edges, Edge{To: cv, Wgt: w})
		}
		sort.Slice(edges, func(i, j int) bool { return edges[i].To < edges[j].To })
		coarse.Adj[cu] = edges
	}
	return coarse, cmap
}

// growInitial partitions by greedy graph growing: parts are grown one at a
// time from a seed by repeatedly absorbing the unassigned vertex with the
// strongest connection to the growing part.
func growInitial(g *Graph, k int, cap int64, rng *rand.Rand) []int {
	n := g.NumVertices()
	parts := make([]int, n)
	for i := range parts {
		parts[i] = -1
	}
	unassigned := n
	remainingWeight := g.TotalVertexWeight()
	order := rng.Perm(n)
	for p := 0; p < k && unassigned > 0; p++ {
		target := remainingWeight / int64(k-p)
		if target > cap {
			target = cap
		}
		// Seed: first unassigned vertex in the random order.
		seed := -1
		for _, v := range order {
			if parts[v] == -1 {
				seed = v
				break
			}
		}
		if seed == -1 {
			break
		}
		var weight int64
		gain := make(map[int]int64) // unassigned frontier -> connectivity
		add := func(v int) {
			parts[v] = p
			weight += g.VWgt[v]
			unassigned--
			remainingWeight -= g.VWgt[v]
			delete(gain, v)
			for _, e := range g.Adj[v] {
				if parts[e.To] == -1 {
					gain[e.To] += e.Wgt
				}
			}
		}
		add(seed)
		for weight < target && unassigned > 0 {
			// Strongest-connected frontier vertex that fits.
			best, bestGain := -1, int64(-1)
			for v, gw := range gain {
				if weight+g.VWgt[v] > cap {
					continue
				}
				if gw > bestGain || (gw == bestGain && v < best) {
					best, bestGain = v, gw
				}
			}
			if best == -1 {
				// Frontier exhausted or nothing fits: pull any fitting
				// unassigned vertex to keep growth going.
				for _, v := range order {
					if parts[v] == -1 && weight+g.VWgt[v] <= cap {
						best = v
						break
					}
				}
				if best == -1 {
					break
				}
			}
			if weight+g.VWgt[best] > target && weight > 0 {
				break
			}
			add(best)
		}
	}
	// Anything left goes to the lightest part that fits.
	if unassigned > 0 {
		w := make([]int64, k)
		for v, p := range parts {
			if p >= 0 {
				w[p] += g.VWgt[v]
			}
		}
		for v := range parts {
			if parts[v] != -1 {
				continue
			}
			best := 0
			for p := 1; p < k; p++ {
				if w[p] < w[best] {
					best = p
				}
			}
			parts[v] = best
			w[best] += g.VWgt[v]
		}
	}
	return parts
}

// refine runs greedy boundary refinement sweeps: every vertex may move to
// the neighbouring part that maximally reduces the cut, if the capacity
// allows. Sweeps stop early when a pass makes no move.
func refine(g *Graph, parts []int, k int, cap int64, passes int) {
	n := g.NumVertices()
	w := PartWeights(g, parts, k)
	for pass := 0; pass < passes; pass++ {
		moves := 0
		for v := 0; v < n; v++ {
			if len(g.Adj[v]) == 0 {
				continue
			}
			own := parts[v]
			// Connectivity to each adjacent part.
			conn := map[int]int64{}
			for _, e := range g.Adj[v] {
				conn[parts[e.To]] += e.Wgt
			}
			bestPart, bestGain := own, int64(0)
			for p, c := range conn {
				if p == own {
					continue
				}
				if w[p]+g.VWgt[v] > cap {
					continue
				}
				gain := c - conn[own]
				if gain > bestGain || (gain == bestGain && gain > 0 && p < bestPart) {
					bestPart, bestGain = p, gain
				}
			}
			if bestPart != own && bestGain > 0 {
				parts[v] = bestPart
				w[own] -= g.VWgt[v]
				w[bestPart] += g.VWgt[v]
				moves++
			}
		}
		if moves == 0 {
			break
		}
	}
}

// repair enforces the strict capacity: vertices are moved out of
// overweight parts into the lightest fitting parts, choosing the vertex
// with the smallest cut penalty.
func repair(g *Graph, parts []int, k int, cap int64) {
	w := PartWeights(g, parts, k)
	// The fallback branch can in principle oscillate on heavily weighted
	// coarse graphs; bound the work (the finest level has unit weights and
	// always converges long before this).
	for iter := 0; iter <= len(parts)*k; iter++ {
		over := -1
		for p := 0; p < k; p++ {
			if w[p] > cap {
				over = p
				break
			}
		}
		if over == -1 {
			return
		}
		// Choose the (vertex, target) with minimal cut increase.
		bestV, bestTarget := -1, -1
		var bestPenalty int64
		for v := range parts {
			if parts[v] != over {
				continue
			}
			conn := map[int]int64{}
			for _, e := range g.Adj[v] {
				conn[parts[e.To]] += e.Wgt
			}
			for p := 0; p < k; p++ {
				if p == over || w[p]+g.VWgt[v] > cap {
					continue
				}
				penalty := conn[over] - conn[p]
				if bestV == -1 || penalty < bestPenalty {
					bestV, bestTarget, bestPenalty = v, p, penalty
				}
			}
		}
		if bestV == -1 {
			// No single move fits; move the lightest vertex to the
			// lightest part regardless (guaranteed overall capacity was
			// validated up front, so this converges).
			lightest := 0
			for p := 1; p < k; p++ {
				if w[p] < w[lightest] {
					lightest = p
				}
			}
			for v := range parts {
				if parts[v] == over && (bestV == -1 || g.VWgt[v] < g.VWgt[bestV]) {
					bestV = v
				}
			}
			bestTarget = lightest
		}
		parts[bestV] = bestTarget
		w[over] -= g.VWgt[bestV]
		w[bestTarget] += g.VWgt[bestV]
	}
}
