// Package conformance runs generated workflow scenarios (internal/genwf)
// through the real shared-space pipeline and through the sequential
// reference model (internal/refmodel) side by side, asserting that the
// two agree byte for byte and that the cross-layer accounting invariants
// hold (DESIGN §5e): metered inter-application traffic equals the
// model-computed intersection volumes partitioned by medium, the fabric's
// medium totals reconcile with the per-class metrics, recorded flows match
// the model-predicted (source node, destination node) aggregation, lookup
// queries return exactly the owners the model predicts, and schedule-cache
// hits never change the bytes moved.
package conformance

import (
	"fmt"
	"time"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/cods"
	"github.com/insitu/cods/internal/decomp"
	"github.com/insitu/cods/internal/genwf"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/graph"
	"github.com/insitu/cods/internal/mapping"
	"github.com/insitu/cods/internal/membership"
	"github.com/insitu/cods/internal/obs"
	"github.com/insitu/cods/internal/refmodel"
	"github.com/insitu/cods/internal/remap"
	"github.com/insitu/cods/internal/retry"
	"github.com/insitu/cods/internal/sfc"
	"github.com/insitu/cods/internal/transport"
	"github.com/insitu/cods/internal/transport/tcpnet"
)

// Application IDs of the two coupled applications of every scenario.
const (
	prodAppID = 1
	consAppID = 2
)

// Options tunes one conformance run.
type Options struct {
	// Timeout is the watchdog for the whole scenario (0 = 60s). A stuck
	// scenario — e.g. a consumer blocked forever on a stale schedule — is
	// reported as a failure instead of hanging the suite.
	Timeout time.Duration

	// CorruptGet flips one cell of one retrieved region before the
	// model comparison, forcing a deterministic failure. The shrinking
	// tests use it to exercise the minimization machinery on a failure
	// every scenario exhibits.
	CorruptGet bool

	// Backend selects the transport backend: "" or "inproc" keeps every
	// operation in-process; "tcp" installs the loopback TCP backend, so
	// every cross-node operation of the scenario makes a real round trip
	// through sockets and the wire codec.
	Backend string

	// stats, when non-nil, collects the run's observable outcome — get
	// digests and metered byte totals — for cross-backend comparison.
	stats *RunStats
}

// Run executes the scenario and returns nil when the real pipeline agrees
// with the reference model and every invariant holds.
func Run(sc genwf.Scenario) error { return RunOpts(sc, Options{}) }

// RunOpts is Run with explicit options.
func RunOpts(sc genwf.Scenario, opts Options) error {
	timeout := opts.Timeout
	if timeout <= 0 {
		timeout = 60 * time.Second
	}
	done := make(chan error, 1)
	go func() { done <- run(sc, opts) }()
	select {
	case err := <-done:
		return err
	case <-time.After(timeout):
		return fmt.Errorf("conformance: scenario stuck after %v (likely a consumer blocked on a never-exposed buffer)\n%s",
			timeout, sc.GoLiteral())
	}
}

// consumer is one consumer task's execution state, persistent across get
// rounds so the schedule cache behaves as it does in a long-running
// application.
type consumer struct {
	h       *cods.Handle
	rank    int
	regions []geometry.BBox
}

func run(sc genwf.Scenario, opts Options) error {
	if err := sc.Validate(); err != nil {
		return err
	}

	// The SFC span cache is process-global: reset it and install the
	// scenario's capacity, restoring the default afterwards.
	sfc.SetSpanCacheCapacity(sc.SpanCache)
	sfc.ResetSpanCache()
	defer func() {
		sfc.SetSpanCacheCapacity(sfc.DefaultSpanCacheCapacity)
		sfc.ResetSpanCache()
	}()

	machine, err := cluster.NewMachine(sc.Nodes, sc.CoresPerNode)
	if err != nil {
		return err
	}
	fabric := transport.NewFabric(machine)
	switch opts.Backend {
	case "", "inproc":
	case "tcp":
		be, err := tcpnet.NewLoopback(fabric, tcpnet.Config{Retry: retry.Default(), IOTimeout: 10 * time.Second})
		if err != nil {
			return fmt.Errorf("conformance: tcp loopback backend: %w", err)
		}
		fabric.SetBackend(be)
		defer func() {
			fabric.SetBackend(nil)
			be.Close()
		}()
	default:
		return fmt.Errorf("conformance: unknown backend %q", opts.Backend)
	}
	space, err := cods.NewSpaceWithCurve(fabric, sc.DomainBox(), sc.Curve)
	if err != nil {
		return err
	}
	var ledger *membership.Ledger
	if sc.Remap {
		// The remap planner reads staged blocks from the put ledger; the
		// recorder must be installed before the producer stages anything.
		ledger = membership.NewLedger()
		space.SetPutRecorder(ledger)
	}
	if sc.PullWorkers > 0 {
		space.SetPullWorkers(sc.PullWorkers)
	}
	if sc.Retry > 0 {
		space.SetRetryPolicy(retry.Policy{
			MaxAttempts: sc.Retry,
			BaseDelay:   time.Microsecond,
			MaxDelay:    50 * time.Microsecond,
			Multiplier:  2,
			Jitter:      0.2,
		})
	}
	if sc.Faults != "" {
		plan, err := transport.ParseFaultPlan([]byte(sc.Faults))
		if err != nil {
			return fmt.Errorf("conformance: fault plan: %w", err)
		}
		fabric.SetFaultPlan(plan)
	}

	prod, err := sc.ProdDecomp()
	if err != nil {
		return err
	}
	cons, err := sc.ConsDecomp()
	if err != nil {
		return err
	}
	prodApp := graph.App{ID: prodAppID, Decomp: prod}
	consApp := graph.App{ID: consAppID, Decomp: cons}
	model := refmodel.New(sc.DomainBox())
	pred := newPredictor(machine)

	if sc.Stream {
		err = runStreaming(sc, opts, machine, space, prodApp, consApp, model, pred)
	} else if sc.Sequential {
		err = runSequential(sc, opts, machine, space, ledger, prodApp, consApp, model, pred)
	} else {
		err = runConcurrent(sc, opts, machine, space, prodApp, consApp, model, pred)
	}
	if err != nil {
		return err
	}
	if opts.stats != nil {
		opts.stats.MediumBytes = [2]int64{
			fabric.MediumBytes(cluster.SharedMemory),
			fabric.MediumBytes(cluster.Network),
		}
		opts.stats.InterApp = [2]int64{
			machine.Metrics().Bytes(cluster.InterApp, cluster.SharedMemory),
			machine.Metrics().Bytes(cluster.InterApp, cluster.Network),
		}
	}
	return nil
}

// placeConcurrent maps both applications of a concurrent bundle at once.
func placeConcurrent(sc genwf.Scenario, m *cluster.Machine, prodApp, consApp graph.App) (*cluster.Placement, error) {
	apps := []graph.App{prodApp, consApp}
	switch sc.Mapping {
	case genwf.RoundRobin:
		return mapping.RoundRobin(m, apps, nil)
	case genwf.ServerDataCentric:
		return mapping.ServerDataCentric(m, mapping.Bundle{
			Apps:      apps,
			Couplings: [][2]int{{prodAppID, consAppID}},
		}, nil, cods.ElemSize, int64(sc.Seed%1024))
	default:
		return mapping.Consecutive(m, apps, nil)
	}
}

// placeSequentialConsumer maps the consumer of a sequential coupling; for
// the client-side data-centric policy the lookup service must already hold
// the producer's registrations.
func placeSequentialConsumer(sc genwf.Scenario, m *cluster.Machine, space *cods.Space, consApp graph.App) (*cluster.Placement, error) {
	switch sc.Mapping {
	case genwf.RoundRobin:
		return mapping.RoundRobin(m, []graph.App{consApp}, nil)
	case genwf.ClientDataCentric:
		return mapping.ClientDataCentric(m, space.Lookup(), []mapping.Consumer{
			{App: consApp, Var: sc.VarNames()[0], Version: 0},
		}, nil, "map")
	default:
		return mapping.Consecutive(m, []graph.App{consApp}, nil)
	}
}

// getRegions returns the regions consumer rank retrieves: its owned boxes,
// ghost-expanded when the scenario has a halo.
func getRegions(cons *decomp.Decomposition, rank, ghost int) []geometry.BBox {
	if ghost > 0 {
		return cons.GhostRegions(rank, ghost)
	}
	return cons.Region(rank)
}

// runTasks runs fn for every index concurrently and returns the first
// error.
func runTasks(n int, fn func(i int) error) error {
	errc := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) { errc <- fn(i) }(i)
	}
	var first error
	for i := 0; i < n; i++ {
		if err := <-errc; err != nil && first == nil {
			first = err
		}
	}
	return first
}

// newConsumers builds the persistent consumer states from a placement.
func newConsumers(sc genwf.Scenario, space *cods.Space, consPl *cluster.Placement, cons *decomp.Decomposition) []*consumer {
	out := make([]*consumer, cons.NumTasks())
	for r := range out {
		core := consPl.MustCoreOf(cluster.TaskID{App: consAppID, Rank: r})
		out[r] = &consumer{
			h:       space.HandleAt(core, consAppID, "couple"),
			rank:    r,
			regions: getRegions(cons, r, sc.Ghost),
		}
	}
	return out
}

// rotate returns the consumer's deterministic, seed-dependent traversal
// order of its regions, so get orderings vary across scenarios without
// introducing nondeterminism within one.
func rotate(n int, seed uint64, rank int) []int {
	if n == 0 {
		return nil // a block-cyclic tail task can own no regions at all
	}
	out := make([]int, n)
	off := int((seed>>8 + uint64(uint32(rank))) % uint64(n))
	for i := range out {
		out[i] = (i + off) % n
	}
	return out
}

// consumeRound performs one full get round (every consumer, every variable,
// every version) and checks every retrieved region byte for byte against
// the model. round tags restage rounds; the forced corruption only applies
// to round 0 so the second round of a restage scenario stays meaningful.
func consumeRound(sc genwf.Scenario, opts Options, consumers []*consumer, model *refmodel.Model,
	get func(c *consumer, v string, version int, region geometry.BBox) ([]float64, error), round int) error {
	return runTasks(len(consumers), func(i int) error {
		c := consumers[i]
		order := rotate(len(c.regions), sc.Seed, c.rank)
		for version := 0; version < sc.Versions; version++ {
			for _, v := range sc.VarNames() {
				for _, ri := range order {
					region := c.regions[ri]
					got, err := get(c, v, version, region)
					if err != nil {
						return fmt.Errorf("conformance: rank %d get %q v%d %v: %w\n%s",
							c.rank, v, version, region, err, sc.GoLiteral())
					}
					if opts.CorruptGet && round == 0 && c.rank == 0 && ri == 0 && version == 0 && v == sc.VarNames()[0] {
						got[0]++ // forced divergence for the shrinking tests
					}
					if opts.stats != nil {
						opts.stats.recordGet(getKey(c.rank, v, version, round, region), got)
					}
					want, err := model.Get(v, version, region)
					if err != nil {
						return fmt.Errorf("conformance: model get %q v%d %v: %w", v, version, region, err)
					}
					for j := range want {
						if got[j] != want[j] {
							return fmt.Errorf("conformance: rank %d %q v%d %v: cell %d = %v, model says %v\n%s",
								c.rank, v, version, region, j, got[j], want[j], sc.GoLiteral())
						}
					}
				}
			}
		}
		return nil
	})
}

// runConcurrent executes a concurrently coupled scenario: both
// applications are placed as one bundle, producers expose their blocks for
// direct pulls and consumers locate them through the producer's
// decomposition, overlapped in time unless the scenario is staged.
func runConcurrent(sc genwf.Scenario, opts Options, machine *cluster.Machine, space *cods.Space,
	prodApp, consApp graph.App, model *refmodel.Model, pred *predictor) error {
	pl, err := placeConcurrent(sc, machine, prodApp, consApp)
	if err != nil {
		return err
	}
	prod, cons := prodApp.Decomp, consApp.Decomp

	// The model is fully populated up front: concurrent consumers block
	// until the producer exposes each block, so the final bytes are
	// defined regardless of interleaving.
	for r := 0; r < prod.NumTasks(); r++ {
		core := pl.MustCoreOf(cluster.TaskID{App: prodAppID, Rank: r})
		for version := 0; version < sc.Versions; version++ {
			for _, v := range sc.VarNames() {
				for _, piece := range prod.Region(r) {
					if err := model.Put(v, version, piece, int(core), sc.FillRegion(v, version, piece)); err != nil {
						return err
					}
				}
			}
		}
	}
	consumers := newConsumers(sc, space, pl, cons)
	for _, c := range consumers {
		for version := 0; version < sc.Versions; version++ {
			for _, v := range sc.VarNames() {
				for _, region := range c.regions {
					pred.addGet(model, v, version, region, c.h.Core())
				}
			}
		}
	}

	info := cods.ProducerInfo{
		Decomp: prod,
		CoreOf: func(rank int) cluster.CoreID {
			return pl.MustCoreOf(cluster.TaskID{App: prodAppID, Rank: rank})
		},
	}
	produce := func(r int) error {
		h := space.HandleAt(pl.MustCoreOf(cluster.TaskID{App: prodAppID, Rank: r}), prodAppID, "stage")
		for version := 0; version < sc.Versions; version++ {
			for _, v := range sc.VarNames() {
				for _, piece := range prod.Region(r) {
					if err := h.PutConcurrent(v, version, piece, sc.FillRegion(v, version, piece)); err != nil {
						return fmt.Errorf("conformance: rank %d put %q v%d %v: %w", r, v, version, piece, err)
					}
				}
			}
		}
		return nil
	}
	get := func(c *consumer, v string, version int, region geometry.BBox) ([]float64, error) {
		return c.h.GetConcurrent(info, v, version, region)
	}

	if sc.Staged {
		if err := runTasks(prod.NumTasks(), produce); err != nil {
			return err
		}
		if err := consumeRound(sc, opts, consumers, model, get, 0); err != nil {
			return err
		}
	} else {
		perr := make(chan error, 1)
		go func() { perr <- runTasks(prod.NumTasks(), produce) }()
		cerr := consumeRound(sc, opts, consumers, model, get, 0)
		if err := <-perr; err != nil {
			return err
		}
		if cerr != nil {
			return cerr
		}
	}
	return checkInvariants(sc, machine, space, pred, consumers, pl, pl, prodApp, consApp)
}

// runSequential executes a sequentially coupled scenario: the producer
// stages every version through the lookup service and finishes; the
// consumer is then placed (possibly data-centrically, from the populated
// lookup) and retrieves everything; a restage scenario then moves every
// block to a different core and re-runs the gets.
func runSequential(sc genwf.Scenario, opts Options, machine *cluster.Machine, space *cods.Space,
	ledger *membership.Ledger, prodApp, consApp graph.App, model *refmodel.Model, pred *predictor) error {
	prod, cons := prodApp.Decomp, consApp.Decomp
	prodPl, err := mapping.Consecutive(machine, []graph.App{prodApp}, nil)
	if err != nil {
		return err
	}
	if err := runTasks(prod.NumTasks(), func(r int) error {
		core := prodPl.MustCoreOf(cluster.TaskID{App: prodAppID, Rank: r})
		h := space.HandleAt(core, prodAppID, "stage")
		for version := 0; version < sc.Versions; version++ {
			for _, v := range sc.VarNames() {
				for _, piece := range prod.Region(r) {
					if err := h.PutSequential(v, version, piece, sc.FillRegion(v, version, piece)); err != nil {
						return fmt.Errorf("conformance: rank %d put %q v%d %v: %w", r, v, version, piece, err)
					}
				}
			}
		}
		return nil
	}); err != nil {
		return err
	}
	for r := 0; r < prod.NumTasks(); r++ {
		core := prodPl.MustCoreOf(cluster.TaskID{App: prodAppID, Rank: r})
		for version := 0; version < sc.Versions; version++ {
			for _, v := range sc.VarNames() {
				for _, piece := range prod.Region(r) {
					if err := model.Put(v, version, piece, int(core), sc.FillRegion(v, version, piece)); err != nil {
						return err
					}
				}
			}
		}
	}
	if err := checkOwners(sc, machine, space, cons, model); err != nil {
		return err
	}

	consPl, err := placeSequentialConsumer(sc, machine, space, consApp)
	if err != nil {
		return err
	}
	consumers := newConsumers(sc, space, consPl, cons)
	for _, c := range consumers {
		for version := 0; version < sc.Versions; version++ {
			for _, v := range sc.VarNames() {
				for _, region := range c.regions {
					pred.addGet(model, v, version, region, c.h.Core())
				}
			}
		}
	}
	get := func(c *consumer, v string, version int, region geometry.BBox) ([]float64, error) {
		return c.h.GetSequential(v, version, region)
	}
	if err := consumeRound(sc, opts, consumers, model, get, 0); err != nil {
		return err
	}

	if sc.Remap {
		if err := remapRound(sc, opts, machine, space, ledger, cons, model, pred, consumers, get); err != nil {
			return err
		}
	}

	if sc.Restage {
		if err := restage(sc, machine, space, prod, prodPl, model); err != nil {
			return err
		}
		if err := checkOwners(sc, machine, space, cons, model); err != nil {
			return err
		}
		for _, c := range consumers {
			for _, v := range sc.VarNames() {
				for _, region := range c.regions {
					pred.addGet(model, v, 0, region, c.h.Core())
				}
			}
		}
		if err := consumeRound(sc, opts, consumers, model, get, 1); err != nil {
			return err
		}
	}

	if sc.Kill != 0 {
		killed := sc.Kill - 1
		if err := elasticRound(sc, opts, machine, space, prod, prodPl, cons,
			model, pred, consumers, get, killed, false, 1); err != nil {
			return err
		}
		if sc.Rejoin {
			if err := elasticRound(sc, opts, machine, space, prod, prodPl, cons,
				model, pred, consumers, get, killed, true, 2); err != nil {
				return err
			}
		}
	}
	return checkInvariants(sc, machine, space, pred, consumers, prodPl, consPl, prodApp, consApp)
}

// remapRound runs one adaptive traffic-driven remap between get rounds:
// the planner consumes the flow matrix observed during round 0 together
// with the put ledger, the executor migrates the chosen blocks through the
// elastic machinery (restage at the target, interval re-split, epoch
// bump), and a second full get round must return byte-identical data. The
// flow deltas across the remap epoch must equal exactly what the model
// predicts for the re-pull under the new ownership — migration itself
// books no coupled bytes. When the planner finds no profitable move (the
// observed traffic is already local) a deterministic rotation plan —
// every block one node over, same core slot — exercises the executor path
// anyway.
func remapRound(sc genwf.Scenario, opts Options, machine *cluster.Machine, space *cods.Space,
	ledger *membership.Ledger, cons *decomp.Decomposition, model *refmodel.Model, pred *predictor,
	consumers []*consumer,
	get func(c *consumer, v string, version int, region geometry.BBox) ([]float64, error)) error {
	window := obs.NewFlowWindow()
	fm := obs.BuildFlowMatrix(machine.Metrics().Flows(""))
	window.Update(&fm) // baseline: everything booked before the remap epoch

	blocks := remap.LedgerBlocks(ledger)
	if len(blocks) == 0 {
		return fmt.Errorf("conformance: remap round found an empty put ledger\n%s", sc.GoLiteral())
	}
	plan := remap.Propose(machine, fm, blocks, remap.Options{})
	if len(plan.Moves) == 0 {
		for _, b := range blocks {
			node := int(machine.NodeOf(b.Owner))
			slot := int(b.Owner) % machine.CoresPerNode()
			to := machine.CoreOn(cluster.NodeID((node+1)%machine.NumNodes()), slot)
			plan.Moves = append(plan.Moves, remap.Move{Block: b, To: to})
		}
	}
	// Mirror the migration into the model before executing it for real.
	for _, mv := range plan.Moves {
		if err := model.Move(mv.Block.Var, mv.Block.Version, mv.Block.Region, int(mv.Block.Owner), int(mv.To)); err != nil {
			return err
		}
	}
	moved, err := remap.Apply(space, ledger, plan, consAppID, "remap")
	if err != nil {
		return fmt.Errorf("conformance: remap apply: %w\n%s", err, sc.GoLiteral())
	}
	if moved != len(plan.Moves) {
		return fmt.Errorf("conformance: remap applied %d of %d planned moves\n%s",
			moved, len(plan.Moves), sc.GoLiteral())
	}
	if err := checkOwners(sc, machine, space, cons, model); err != nil {
		return err
	}
	// Predict the post-remap round twice: into the cumulative predictor
	// (invariants 1-4b run over the whole scenario) and into a fresh one
	// holding only this epoch, compared against the window deltas below.
	epoch := newPredictor(machine)
	for _, c := range consumers {
		for _, v := range sc.VarNames() {
			for _, region := range c.regions {
				pred.addGet(model, v, 0, region, c.h.Core())
				epoch.addGet(model, v, 0, region, c.h.Core())
			}
		}
	}
	if err := consumeRound(sc, opts, consumers, model, get, 1); err != nil {
		return err
	}
	after := obs.BuildFlowMatrix(machine.Metrics().Flows(""))
	window.Update(&after)
	deltas := make(map[flowKey]int64)
	for _, c := range after.Cells {
		if c.Class != cluster.InterApp.String() || c.Delta == 0 {
			continue
		}
		deltas[flowKey{src: cluster.NodeID(c.Src), dst: cluster.NodeID(c.Dst)}] += c.Delta
	}
	if err := compareFlowMaps(deltas, epoch.flows); err != nil {
		return fmt.Errorf("remap epoch delta: %w\n%s", err, sc.GoLiteral())
	}
	return nil
}

// elasticRound applies one topology change and re-runs a full get round
// against it. rejoin=false crashes the node: every block it staged moves
// to the next surviving node (the elastic driver replays these from its
// ledger) and the lookup intervals re-split over the survivors.
// rejoin=true admits the replacement: blocks migrate home and the
// intervals re-split back to the full set. Either way every cached
// schedule is invalidated — the epoch bump a real reconcile performs —
// and the subsequent gets must return byte-identical data via the new
// routing.
func elasticRound(sc genwf.Scenario, opts Options, machine *cluster.Machine, space *cods.Space,
	prod *decomp.Decomposition, prodPl *cluster.Placement, cons *decomp.Decomposition,
	model *refmodel.Model, pred *predictor, consumers []*consumer,
	get func(c *consumer, v string, version int, region geometry.BBox) ([]float64, error),
	killed int, rejoin bool, round int) error {
	if err := migrateNode(sc, machine, space, prod, prodPl, model, killed, rejoin); err != nil {
		return err
	}
	alive := make([]int, 0, machine.NumNodes())
	for n := 0; n < machine.NumNodes(); n++ {
		if rejoin || n != killed {
			alive = append(alive, n)
		}
	}
	cl := space.Lookup().ClientAt(machine.CoreOn(cluster.NodeID(alive[0]), 0))
	if _, err := cl.Resplit("elastic", consAppID, alive); err != nil {
		return fmt.Errorf("conformance: resplit over %v: %w\n%s", alive, err, sc.GoLiteral())
	}
	space.InvalidateAll()
	if err := checkOwners(sc, machine, space, cons, model); err != nil {
		return err
	}
	for _, c := range consumers {
		for _, v := range sc.VarNames() {
			for _, region := range c.regions {
				pred.addGet(model, v, 0, region, c.h.Core())
			}
		}
	}
	return consumeRound(sc, opts, consumers, model, get, round)
}

// migrateNode moves every block staged on the killed node to the next
// surviving node's matching core slot (back=false), or back home again
// once the replacement rejoined (back=true): discard at the source,
// re-stage at the destination, mirrored into the model.
func migrateNode(sc genwf.Scenario, machine *cluster.Machine, space *cods.Space,
	prod *decomp.Decomposition, prodPl *cluster.Placement, model *refmodel.Model,
	killed int, back bool) error {
	refugeNode := cluster.NodeID((killed + 1) % machine.NumNodes())
	for r := 0; r < prod.NumTasks(); r++ {
		home := prodPl.MustCoreOf(cluster.TaskID{App: prodAppID, Rank: r})
		if int(machine.NodeOf(home)) != killed {
			continue
		}
		refuge := machine.CoreOn(refugeNode, int(home)%machine.CoresPerNode())
		src, dst := home, refuge
		if back {
			src, dst = refuge, home
		}
		hSrc := space.HandleAt(src, prodAppID, "elastic")
		hDst := space.HandleAt(dst, prodAppID, "elastic")
		for _, v := range sc.VarNames() {
			for _, piece := range prod.Region(r) {
				if err := hSrc.DiscardSequential(v, 0, piece); err != nil {
					return fmt.Errorf("conformance: elastic discard %q %v: %w", v, piece, err)
				}
				if err := model.Discard(v, 0, piece, int(src)); err != nil {
					return err
				}
				if err := hDst.PutSequential(v, 0, piece, sc.FillRegion(v, 0, piece)); err != nil {
					return fmt.Errorf("conformance: elastic put %q %v: %w", v, piece, err)
				}
				if err := model.Put(v, 0, piece, int(dst), sc.FillRegion(v, 0, piece)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// restage moves every stored block one node over (one core over on a
// single-node machine): discard at the old core, re-stage at the new one.
// Schedule caches must notice — a consumer still pulling at the old core
// would block forever on the unexposed buffer.
func restage(sc genwf.Scenario, machine *cluster.Machine, space *cods.Space,
	prod *decomp.Decomposition, prodPl *cluster.Placement, model *refmodel.Model) error {
	shift := machine.CoresPerNode()
	if machine.NumNodes() == 1 {
		shift = 1
	}
	for r := 0; r < prod.NumTasks(); r++ {
		oldCore := prodPl.MustCoreOf(cluster.TaskID{App: prodAppID, Rank: r})
		newCore := cluster.CoreID((int(oldCore) + shift) % machine.TotalCores())
		hOld := space.HandleAt(oldCore, prodAppID, "restage")
		hNew := space.HandleAt(newCore, prodAppID, "restage")
		for _, v := range sc.VarNames() {
			for _, piece := range prod.Region(r) {
				if err := hOld.DiscardSequential(v, 0, piece); err != nil {
					return fmt.Errorf("conformance: restage discard %q %v: %w", v, piece, err)
				}
				if err := model.Discard(v, 0, piece, int(oldCore)); err != nil {
					return err
				}
				if err := hNew.PutSequential(v, 0, piece, sc.FillRegion(v, 0, piece)); err != nil {
					return fmt.Errorf("conformance: restage put %q %v: %w", v, piece, err)
				}
				if err := model.Put(v, 0, piece, int(newCore), sc.FillRegion(v, 0, piece)); err != nil {
					return err
				}
			}
		}
	}
	return nil
}
