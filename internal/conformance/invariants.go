package conformance

import (
	"fmt"
	"sort"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/cods"
	"github.com/insitu/cods/internal/decomp"
	"github.com/insitu/cods/internal/genwf"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/graph"
	"github.com/insitu/cods/internal/mapping"
	"github.com/insitu/cods/internal/obs"
	"github.com/insitu/cods/internal/refmodel"
)

// flowKey aggregates flows by (source node, destination node).
type flowKey struct {
	src, dst cluster.NodeID
}

// predictor accumulates, from the reference model alone, the
// inter-application traffic the real run must produce: per-medium byte
// totals and the per-(source node, destination node) aggregation.
type predictor struct {
	m         *cluster.Machine
	flows     map[flowKey]int64
	perMedium [2]int64
}

func newPredictor(m *cluster.Machine) *predictor {
	return &predictor{m: m, flows: make(map[flowKey]int64)}
}

// addGet predicts the transfers of one consumer get from the model's
// current block ownership: every stored block overlapping the region
// contributes its intersection volume, pulled from the block owner's node
// to the consumer core's node. Schedule coalescing in the real pipeline
// merges sub-boxes but never changes these per-owner volumes.
func (p *predictor) addGet(model *refmodel.Model, v string, version int, region geometry.BBox, consCore cluster.CoreID) {
	dst := p.m.NodeOf(consCore)
	for _, b := range model.Owners(v, version, region) {
		n := refmodel.IntersectionVolume(b.Region, region) * cods.ElemSize
		src := p.m.NodeOf(cluster.CoreID(b.Owner))
		p.flows[flowKey{src: src, dst: dst}] += n
		if src == dst {
			p.perMedium[cluster.SharedMemory] += n
		} else {
			p.perMedium[cluster.Network] += n
		}
	}
}

// checkOwners asserts that, for every region a consumer will retrieve, a
// lookup query answers with exactly the (owner, region) set the model
// predicts, in the same deterministic order.
func checkOwners(sc genwf.Scenario, machine *cluster.Machine, space *cods.Space,
	cons *decomp.Decomposition, model *refmodel.Model) error {
	cl := space.Lookup().ClientAt(machine.CoreOn(0, 0))
	for r := 0; r < cons.NumTasks(); r++ {
		for _, region := range getRegions(cons, r, sc.Ghost) {
			for version := 0; version < sc.Versions; version++ {
				for _, v := range sc.VarNames() {
					entries, err := cl.Query("check", consAppID, v, version, region)
					if err != nil {
						return fmt.Errorf("conformance: lookup %q v%d %v: %w", v, version, region, err)
					}
					want := model.Owners(v, version, region)
					if len(entries) != len(want) {
						return fmt.Errorf("conformance: lookup %q v%d %v returned %d owners, model predicts %d\n%s",
							v, version, region, len(entries), len(want), sc.GoLiteral())
					}
					for i, e := range entries {
						if int(e.Owner) != want[i].Owner || !e.Region.Equal(want[i].Region) {
							return fmt.Errorf("conformance: lookup %q v%d %v entry %d = owner %d %v, model predicts owner %d %v\n%s",
								v, version, region, i, e.Owner, e.Region, want[i].Owner, want[i].Region, sc.GoLiteral())
						}
					}
				}
			}
		}
	}
	return nil
}

// checkInvariants runs the cross-layer accounting checks after all rounds
// completed.
func checkInvariants(sc genwf.Scenario, machine *cluster.Machine, space *cods.Space,
	pred *predictor, consumers []*consumer, prodPl, consPl *cluster.Placement,
	prodApp, consApp graph.App) error {
	if err := checkFlowAccounting(sc, machine, space, pred); err != nil {
		return err
	}

	// 5. The static coupled-traffic analysis agrees with the measured
	// totals for halo-free, restage-free, topology-stable scenarios (its
	// overlap model covers exactly the owned regions, once per variable
	// per version).
	if sc.Ghost == 0 && !sc.Restage && sc.Kill == 0 && !sc.Remap {
		tr, err := mapping.CoupledTraffic(machine, prodPl, consPl, prodApp, consApp, cods.ElemSize)
		if err != nil {
			return err
		}
		mult := int64(sc.Versions * sc.Vars)
		if tr.Shm*mult != pred.perMedium[cluster.SharedMemory] || tr.Network*mult != pred.perMedium[cluster.Network] {
			return fmt.Errorf("conformance: CoupledTraffic predicts shm=%d net=%d (x%d), model predicts shm=%d net=%d\n%s",
				tr.Shm, tr.Network, mult, pred.perMedium[cluster.SharedMemory], pred.perMedium[cluster.Network], sc.GoLiteral())
		}
	}

	// 6. Schedule-cache behavior is exactly as designed — repeated
	// coupling patterns hit, invalidation forces recomputation — and,
	// because check 1 already pinned the bytes, hits provably never
	// changed what was transferred.
	// Ghost expansion can clip two owned pieces to the same region; a
	// schedule is computed once per distinct region per handle, so hits
	// are total gets minus that.
	var hits, misses, gets, distinct int
	for _, c := range consumers {
		hits += c.h.CacheHits
		misses += c.h.CacheMisses
		gets += sc.Vars * len(c.regions) * sc.Versions
		seen := make(map[string]bool)
		for _, r := range c.regions {
			seen[r.String()] = true
		}
		distinct += sc.Vars * len(seen)
	}
	// Every extra round — a restage, a kill, a rejoin — re-gets
	// everything after an invalidation that voids every schedule, so
	// gets and misses both scale with the round count.
	rounds := 1
	if sc.Restage {
		rounds++
	}
	if sc.Remap {
		rounds++
	}
	if sc.Kill != 0 {
		rounds++
		if sc.Rejoin {
			rounds++
		}
	}
	gets *= rounds
	wantMisses := distinct * rounds
	wantHits := gets - wantMisses
	if hits != wantHits {
		return fmt.Errorf("conformance: schedule cache hits = %d, want %d\n%s",
			hits, wantHits, sc.GoLiteral())
	}
	// Under faults a failed pull re-queries the lookup and recomputes its
	// schedule, which counts as an extra miss; fault-free runs miss
	// exactly once per distinct region.
	if misses != wantMisses && (sc.Faults == "" || misses < wantMisses) {
		return fmt.Errorf("conformance: schedule cache misses = %d, want %d\n%s",
			misses, wantMisses, sc.GoLiteral())
	}
	return nil
}

// checkFlowAccounting runs the placement-independent traffic checks
// (invariants 1-4b), shared by the lock-step rounds and the streaming
// runner: metered inter-app bytes against the model prediction, fabric
// counter reconciliation, intra-app silence, and the per-(src, dst) flow
// aggregation in both the metrics plane and the obs flow matrix.
func checkFlowAccounting(sc genwf.Scenario, machine *cluster.Machine, space *cods.Space,
	pred *predictor) error {
	mx := machine.Metrics()

	// 1. Metered inter-application bytes equal the model-computed
	// intersection volumes, partitioned by medium per the placements.
	for _, md := range []cluster.Medium{cluster.SharedMemory, cluster.Network} {
		if got, want := mx.Bytes(cluster.InterApp, md), pred.perMedium[md]; got != want {
			return fmt.Errorf("conformance: inter-app %s bytes = %d, model predicts %d\n%s",
				md, got, want, sc.GoLiteral())
		}
		// 2. The fabric's independent medium counters reconcile with the
		// per-class metrics.
		sum := mx.Bytes(cluster.InterApp, md) + mx.Bytes(cluster.IntraApp, md) + mx.Bytes(cluster.Control, md)
		if got := space.Fabric().MediumBytes(md); got != sum {
			return fmt.Errorf("conformance: fabric %s bytes = %d, metrics classes sum to %d\n%s",
				md, got, sum, sc.GoLiteral())
		}
		// 3. A two-application coupling generates no intra-app traffic.
		if got := mx.Bytes(cluster.IntraApp, md); got != 0 {
			return fmt.Errorf("conformance: unexpected intra-app %s bytes = %d\n%s", md, got, sc.GoLiteral())
		}
	}

	// 4. The per-(source node, destination node) flow aggregation matches
	// the model prediction exactly — this is what catches swapped flow
	// endpoints that leave symmetric totals unchanged.
	got := make(map[flowKey]int64)
	for _, f := range mx.Flows("") {
		if f.Class != cluster.InterApp.String() {
			continue
		}
		got[flowKey{src: f.Src, dst: f.Dst}] += f.Bytes
		wantMd := cluster.Network.String()
		if f.Src == f.Dst {
			wantMd = cluster.SharedMemory.String()
		}
		if f.Medium != wantMd {
			return fmt.Errorf("conformance: flow %d->%d tagged %q, want %q\n%s",
				f.Src, f.Dst, f.Medium, wantMd, sc.GoLiteral())
		}
	}
	if err := compareFlowMaps(got, pred.flows); err != nil {
		return fmt.Errorf("%w\n%s", err, sc.GoLiteral())
	}

	// 4b. The observability plane's flow matrix is a pure regrouping of
	// the same flow log, so folding its inter-app cells back to (src, dst)
	// must reproduce the model prediction too. This pins attribution in
	// the aggregation itself: a cell credited to the wrong node keeps
	// every total intact and is invisible to checks 1-4.
	obsGot := make(map[flowKey]int64)
	for _, c := range obs.BuildFlowMatrix(mx.Flows("")).Cells {
		if c.Class != cluster.InterApp.String() {
			continue
		}
		obsGot[flowKey{src: cluster.NodeID(c.Src), dst: cluster.NodeID(c.Dst)}] += c.Bytes
	}
	if err := compareFlowMaps(obsGot, pred.flows); err != nil {
		return fmt.Errorf("obs flow matrix: %w\n%s", err, sc.GoLiteral())
	}
	return nil
}

// compareFlowMaps diffs two (src node, dst node) -> bytes aggregations.
func compareFlowMaps(got, want map[flowKey]int64) error {
	keys := make(map[flowKey]bool, len(got)+len(want))
	for k := range got {
		keys[k] = true
	}
	for k := range want {
		keys[k] = true
	}
	ordered := make([]flowKey, 0, len(keys))
	for k := range keys {
		ordered = append(ordered, k)
	}
	sort.Slice(ordered, func(i, j int) bool {
		if ordered[i].src != ordered[j].src {
			return ordered[i].src < ordered[j].src
		}
		return ordered[i].dst < ordered[j].dst
	})
	for _, k := range ordered {
		if got[k] != want[k] {
			return fmt.Errorf("conformance: inter-app flow %d->%d = %d bytes, model predicts %d",
				k.src, k.dst, got[k], want[k])
		}
	}
	return nil
}
