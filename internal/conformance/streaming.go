package conformance

// Streaming conformance (DESIGN §5i): scenarios with Stream set run the
// bounded-lag publish/subscribe coupling instead of lock-step iterations
// and are checked against the versioned stream reference in
// internal/refmodel.
//
// Two execution modes mirror the two lag policies:
//
//   - Drop-oldest runs lock-step: every producer publishes round r, then
//     the consumers read and acknowledge on their stride. Forced
//     retirements, cursor bumps and mid-stream resubscribes are therefore
//     deterministic, and the runner mirrors every operation into a
//     refmodel.Stream, comparing bytes, stamped versions, watermarks,
//     floors, cursor positions and the published/consumed/dropped
//     accounting after every step.
//
//   - Backpressure runs free: producer and consumer goroutines race, the
//     producers throttled only by the stream's own lag bound. The model is
//     not safe for concurrent use, so bytes are compared against the pure
//     scenario fill and the deterministic end state (fully consumed,
//     nothing dropped, everything retired) is checked analytically, with
//     the flow prediction rebuilt sequentially afterwards.
//
// In both modes retirement is verified through the lookup: retired
// versions must have no DHT records left, retained versions must answer
// with exactly the model's owner set.

import (
	"errors"
	"fmt"

	"github.com/insitu/cods/internal/cluster"
	"github.com/insitu/cods/internal/cods"
	"github.com/insitu/cods/internal/decomp"
	"github.com/insitu/cods/internal/genwf"
	"github.com/insitu/cods/internal/geometry"
	"github.com/insitu/cods/internal/graph"
	"github.com/insitu/cods/internal/mapping"
	"github.com/insitu/cods/internal/refmodel"
)

// publisher is one (producer rank, owned piece) pair. The stream layer
// stamps one block per producer index per version, so a rank owning
// several pieces publishes each through its own index; the stream version
// is still complete only once every piece of it is staged.
type publisher struct {
	h     *cods.Handle
	idx   int
	rank  int
	piece geometry.BBox
}

// runStreaming executes a streaming scenario: producers placed like a
// sequential stage publish sc.Rounds versions of the single stream
// variable and the consumers follow through bounded-lag cursors.
func runStreaming(sc genwf.Scenario, opts Options, machine *cluster.Machine, space *cods.Space,
	prodApp, consApp graph.App, model *refmodel.Model, pred *predictor) error {
	v := sc.VarNames()[0]
	prod, cons := prodApp.Decomp, consApp.Decomp
	prodPl, err := mapping.Consecutive(machine, []graph.App{prodApp}, nil)
	if err != nil {
		return err
	}
	consPl, err := placeSequentialConsumer(sc, machine, space, consApp)
	if err != nil {
		return err
	}

	var pubs []*publisher
	for r := 0; r < prod.NumTasks(); r++ {
		core := prodPl.MustCoreOf(cluster.TaskID{App: prodAppID, Rank: r})
		h := space.HandleAt(core, prodAppID, "stream")
		for _, piece := range prod.Region(r) {
			pubs = append(pubs, &publisher{h: h, idx: len(pubs), rank: r, piece: piece})
		}
	}
	policy := cods.Backpressure
	if sc.Drop {
		policy = cods.DropOldest
	}
	if err := space.DeclareStream(v, cods.StreamConfig{
		Producers: len(pubs), MaxLag: sc.MaxLag, Policy: policy,
	}); err != nil {
		return err
	}
	// A block-cyclic rank can own nothing; it neither reads nor subscribes
	// (an idle cursor would throttle the producers forever under
	// backpressure). At least one rank owns data — the decomposition
	// covers the domain.
	var consumers []*consumer
	for _, c := range newConsumers(sc, space, consPl, cons) {
		if len(c.regions) > 0 {
			consumers = append(consumers, c)
		}
	}

	if sc.Drop {
		return runStreamLockstep(sc, opts, machine, space, v, pubs, consumers, cons, model, pred)
	}
	return runStreamConcurrent(sc, opts, machine, space, v, pubs, consumers, cons, model, pred)
}

// runStreamLockstep drives a drop-oldest scenario one round at a time,
// mirroring every operation into the stream reference model.
func runStreamLockstep(sc genwf.Scenario, opts Options, machine *cluster.Machine, space *cods.Space,
	v string, pubs []*publisher, consumers []*consumer, cons *decomp.Decomposition,
	model *refmodel.Model, pred *predictor) error {
	ms := refmodel.NewStream(model, v, len(pubs), sc.MaxLag, true)

	// Subscribe in rank order so real and model subscriber ids stay
	// aligned for the rest of the run.
	curs := make([]*cods.Cursor, len(consumers))
	ids := make([]int, len(consumers))
	for i, c := range consumers {
		cur, err := c.h.Subscribe(v)
		if err != nil {
			return err
		}
		id, mpos := ms.Subscribe(0)
		if cur.ID() != id || cur.Pos() != mpos {
			return fmt.Errorf("conformance: stream %q: cursor %d subscribed as id %d pos %d, model says id %d pos %d\n%s",
				v, i, cur.ID(), cur.Pos(), id, mpos, sc.GoLiteral())
		}
		curs[i], ids[i] = cur, id
	}

	// A mid-stream kill lands at the half-way round: the node's retained
	// blocks are re-staged (the elastic ledger replay) before publishing
	// continues through the reconciled routing.
	killAt := -1
	if sc.Kill != 0 {
		killAt = sc.Rounds / 2
	}

	for r := 0; r < sc.Rounds; r++ {
		if r == killAt {
			if err := migrateStreamNode(sc, machine, space, v, pubs, ms, model, sc.Kill-1); err != nil {
				return err
			}
			space.ResyncStreams()
			if err := checkStreamOwners(sc, machine, space, v, cons, model, ms.Latest()); err != nil {
				return err
			}
		}

		if err := runTasks(len(pubs), func(i int) error {
			p := pubs[i]
			ver, err := p.h.Publish(v, p.idx, p.piece, sc.FillRegion(v, r, p.piece))
			if err != nil {
				return fmt.Errorf("conformance: publisher %d publish round %d %v: %w\n%s",
					p.idx, r, p.piece, err, sc.GoLiteral())
			}
			if ver != r {
				return fmt.Errorf("conformance: publisher %d stamped version %d in round %d\n%s",
					p.idx, ver, r, sc.GoLiteral())
			}
			return nil
		}); err != nil {
			return err
		}
		for _, p := range pubs {
			mver, err := ms.Publish(p.idx, p.piece, int(p.h.Core()), sc.FillRegion(v, r, p.piece))
			if err != nil {
				return err
			}
			if mver != r {
				return fmt.Errorf("conformance: model stamped version %d in round %d", mver, r)
			}
		}
		if err := checkStreamSync(sc, v, space, curs, ids, ms); err != nil {
			return fmt.Errorf("after publish round %d: %w", r, err)
		}

		if sc.Resub != 0 && r+1 == sc.Resub {
			// Close every cursor and resume it from its last position,
			// exercising the mid-stream SubscribeFrom path.
			for i := range curs {
				pos := curs[i].Pos()
				if err := curs[i].Close(); err != nil {
					return err
				}
				if err := ms.Close(ids[i]); err != nil {
					return err
				}
				cur, err := consumers[i].h.SubscribeFrom(v, pos)
				if err != nil {
					return err
				}
				id, mpos := ms.Subscribe(pos)
				if cur.ID() != id || cur.Pos() != mpos {
					return fmt.Errorf("conformance: stream %q: cursor %d resubscribed from %d at id %d pos %d, model says id %d pos %d\n%s",
						v, i, pos, cur.ID(), cur.Pos(), id, mpos, sc.GoLiteral())
				}
				curs[i], ids[i] = cur, id
			}
		}

		if (r+1)%sc.ConsumeEvery == 0 || r == sc.Rounds-1 {
			if err := consumeStreamStride(sc, opts, v, consumers, curs, ids, ms, model, pred, r); err != nil {
				return err
			}
			if err := checkStreamSync(sc, v, space, curs, ids, ms); err != nil {
				return fmt.Errorf("after consume round %d: %w", r, err)
			}
		}
	}

	for _, p := range pubs {
		if err := space.ClosePublisher(v, p.idx); err != nil {
			return err
		}
		ms.ClosePublisher(p.idx)
	}
	// A window past the final watermark must fail with ErrStreamEnded, not
	// block forever.
	if len(curs) > 0 && len(consumers[0].regions) > 0 {
		pos := curs[0].Pos()
		if _, err := curs[0].GetWindow(consumers[0].regions[0], pos, sc.Rounds); !errors.Is(err, cods.ErrStreamEnded) {
			return fmt.Errorf("conformance: window past final watermark: err = %v, want ErrStreamEnded\n%s",
				err, sc.GoLiteral())
		}
	}
	for i := range curs {
		if err := curs[i].Close(); err != nil {
			return err
		}
		if err := ms.Close(ids[i]); err != nil {
			return err
		}
	}

	published, consumed, dropped := space.StreamStats()
	mp, mc, md := ms.Stats()
	if published != mp || consumed != mc || dropped != md {
		return fmt.Errorf("conformance: stream stats published/consumed/dropped = %d/%d/%d, model says %d/%d/%d\n%s",
			published, consumed, dropped, mp, mc, md, sc.GoLiteral())
	}
	if err := checkStreamOwners(sc, machine, space, v, cons, model, ms.Latest()); err != nil {
		return err
	}
	return checkFlowAccounting(sc, machine, space, pred)
}

// consumeStreamStride runs one lock-step consume: every cursor reads the
// window from its position to the watermark, reads the latest value while
// older versions are still retained, then acknowledges everything read.
// Consumers run sequentially so retirements land at deterministic points.
func consumeStreamStride(sc genwf.Scenario, opts Options, v string, consumers []*consumer,
	curs []*cods.Cursor, ids []int, ms *refmodel.Stream, model *refmodel.Model,
	pred *predictor, r int) error {
	for i, c := range consumers {
		cur := curs[i]
		latest := cur.Latest()
		if mlatest := ms.Latest(); latest != mlatest {
			return fmt.Errorf("conformance: stream %q watermark = %d, model says %d\n%s",
				v, latest, mlatest, sc.GoLiteral())
		}
		from := cur.Pos()
		if mpos, err := ms.Pos(ids[i]); err != nil || mpos != from {
			return fmt.Errorf("conformance: stream %q cursor %d at %d, model says %d (%v)\n%s",
				v, i, from, mpos, err, sc.GoLiteral())
		}
		order := rotate(len(c.regions), sc.Seed, c.rank)
		if from <= latest {
			for _, ri := range order {
				region := c.regions[ri]
				win, err := cur.GetWindow(region, from, latest)
				if err != nil {
					return fmt.Errorf("conformance: rank %d window %q [%d,%d] %v: %w\n%s",
						c.rank, v, from, latest, region, err, sc.GoLiteral())
				}
				mwin, err := ms.GetWindow(ids[i], region, from, latest)
				if err != nil {
					return fmt.Errorf("conformance: model window %q [%d,%d] %v: %w\n%s",
						v, from, latest, region, err, sc.GoLiteral())
				}
				for k := range win {
					ver := from + k
					got, want := win[k], mwin[k]
					if opts.CorruptGet && c.rank == 0 && ri == 0 && ver == 0 {
						got[0]++ // forced divergence for the shrinking tests
					}
					if opts.stats != nil {
						opts.stats.recordGet(getKey(c.rank, v, ver, 0, region), got)
					}
					for j := range want {
						if got[j] != want[j] {
							return fmt.Errorf("conformance: rank %d %q v%d %v: cell %d = %v, model says %v\n%s",
								c.rank, v, ver, region, j, got[j], want[j], sc.GoLiteral())
						}
					}
					pred.addGet(model, v, ver, region, c.h.Core())
				}
			}
			// Latest-value reads before acknowledging: the floor is still
			// below the watermark here, so a stale watermark would serve a
			// version that is retained — and detectably wrong.
			for _, ri := range order {
				region := c.regions[ri]
				got, ver, err := cur.GetLatest(region)
				if err != nil {
					return fmt.Errorf("conformance: rank %d latest %q %v: %w\n%s",
						c.rank, v, region, err, sc.GoLiteral())
				}
				want, mver, err := ms.GetLatest(region)
				if err != nil {
					return err
				}
				if ver != mver {
					return fmt.Errorf("conformance: rank %d latest %q %v served v%d, model says v%d\n%s",
						c.rank, v, region, ver, mver, sc.GoLiteral())
				}
				if opts.stats != nil {
					opts.stats.recordGet(getKey(c.rank, v, ver, -(r+1), region), got)
				}
				for j := range want {
					if got[j] != want[j] {
						return fmt.Errorf("conformance: rank %d latest %q v%d %v: cell %d = %v, model says %v\n%s",
							c.rank, v, ver, region, j, got[j], want[j], sc.GoLiteral())
					}
				}
				pred.addGet(model, v, ver, region, c.h.Core())
			}
		}
		if err := cur.Advance(latest + 1); err != nil {
			return fmt.Errorf("conformance: rank %d advance %q to %d: %w\n%s",
				c.rank, v, latest+1, err, sc.GoLiteral())
		}
		if err := ms.Advance(ids[i], latest+1); err != nil {
			return err
		}
	}
	return nil
}

// runStreamConcurrent drives a backpressure scenario with racing producer
// and consumer goroutines. Bytes are compared against the pure scenario
// fill (the model is not safe for concurrent use); the deterministic end
// state — every version published, consumed by every cursor, nothing
// dropped, everything retired — is checked afterwards, and the flow
// prediction is rebuilt sequentially from the static placement.
func runStreamConcurrent(sc genwf.Scenario, opts Options, machine *cluster.Machine, space *cods.Space,
	v string, pubs []*publisher, consumers []*consumer, cons *decomp.Decomposition,
	model *refmodel.Model, pred *predictor) error {
	// All cursors subscribe before the first publish so the lag bound
	// constrains the producers from version zero.
	curs := make([]*cods.Cursor, len(consumers))
	for i, c := range consumers {
		cur, err := c.h.Subscribe(v)
		if err != nil {
			return err
		}
		curs[i] = cur
	}

	produce := func(i int) error {
		p := pubs[i]
		for r := 0; r < sc.Rounds; r++ {
			ver, err := p.h.Publish(v, p.idx, p.piece, sc.FillRegion(v, r, p.piece))
			if err != nil {
				// Close the sequence so blocked consumers fail with
				// ErrStreamEnded instead of hanging.
				space.ClosePublisher(v, p.idx)
				return fmt.Errorf("conformance: publisher %d publish round %d %v: %w\n%s",
					p.idx, r, p.piece, err, sc.GoLiteral())
			}
			if ver != r {
				space.ClosePublisher(v, p.idx)
				return fmt.Errorf("conformance: publisher %d stamped version %d in round %d\n%s",
					p.idx, ver, r, sc.GoLiteral())
			}
		}
		return space.ClosePublisher(v, p.idx)
	}
	consume := func(i int) (err error) {
		c := consumers[i]
		cur := curs[i]
		defer func() {
			if err != nil {
				cur.Close() // unblock producers constrained by this cursor
			}
		}()
		order := rotate(len(c.regions), sc.Seed, c.rank)
		for r := 0; r < sc.Rounds; r++ {
			for _, ri := range order {
				region := c.regions[ri]
				win, err := cur.GetWindow(region, r, r)
				if err != nil {
					return fmt.Errorf("conformance: rank %d window %q [%d,%d] %v: %w\n%s",
						c.rank, v, r, r, region, err, sc.GoLiteral())
				}
				got := win[0]
				if opts.CorruptGet && c.rank == 0 && ri == 0 && r == 0 {
					got[0]++ // forced divergence for the shrinking tests
				}
				if opts.stats != nil {
					opts.stats.recordGet(getKey(c.rank, v, r, 0, region), got)
				}
				want := sc.FillRegion(v, r, region)
				for j := range want {
					if got[j] != want[j] {
						return fmt.Errorf("conformance: rank %d %q v%d %v: cell %d = %v, fill says %v\n%s",
							c.rank, v, r, region, j, got[j], want[j], sc.GoLiteral())
					}
				}
			}
			// Hold back the final acknowledgment: the last version must
			// stay retained for the latest-value read below.
			if r < sc.Rounds-1 {
				if err := cur.Advance(r + 1); err != nil {
					return fmt.Errorf("conformance: rank %d advance %q to %d: %w\n%s",
						c.rank, v, r+1, err, sc.GoLiteral())
				}
			}
		}
		for _, ri := range order {
			region := c.regions[ri]
			got, ver, err := cur.GetLatest(region)
			if err != nil {
				return fmt.Errorf("conformance: rank %d latest %q %v: %w\n%s",
					c.rank, v, region, err, sc.GoLiteral())
			}
			if ver != sc.Rounds-1 {
				return fmt.Errorf("conformance: rank %d latest %q served v%d, want v%d\n%s",
					c.rank, v, ver, sc.Rounds-1, sc.GoLiteral())
			}
			if opts.stats != nil {
				opts.stats.recordGet(getKey(c.rank, v, ver, -1, region), got)
			}
			want := sc.FillRegion(v, ver, region)
			for j := range want {
				if got[j] != want[j] {
					return fmt.Errorf("conformance: rank %d latest %q v%d %v: cell %d = %v, fill says %v\n%s",
						c.rank, v, ver, region, j, got[j], want[j], sc.GoLiteral())
				}
			}
		}
		if err := cur.Advance(sc.Rounds); err != nil {
			return fmt.Errorf("conformance: rank %d final advance %q: %w\n%s", c.rank, v, err, sc.GoLiteral())
		}
		return cur.Close()
	}

	perr := make(chan error, 1)
	go func() { perr <- runTasks(len(pubs), produce) }()
	cerr := runTasks(len(consumers), func(i int) error { return consume(i) })
	if err := <-perr; err != nil {
		return err
	}
	if cerr != nil {
		return cerr
	}

	// End state: every version complete, acknowledged by every cursor,
	// nothing dropped, everything retired.
	published, consumed, dropped := space.StreamStats()
	wantPub := int64(len(pubs) * sc.Rounds)
	wantCon := int64(len(consumers) * sc.Rounds)
	if published != wantPub || consumed != wantCon || dropped != 0 {
		return fmt.Errorf("conformance: stream stats published/consumed/dropped = %d/%d/%d, want %d/%d/0\n%s",
			published, consumed, dropped, wantPub, wantCon, sc.GoLiteral())
	}
	latest, floor, err := space.StreamState(v)
	if err != nil {
		return err
	}
	if latest != sc.Rounds-1 || floor != sc.Rounds {
		return fmt.Errorf("conformance: stream end state latest/floor = %d/%d, want %d/%d\n%s",
			latest, floor, sc.Rounds-1, sc.Rounds, sc.GoLiteral())
	}

	// Ownership never changes under backpressure, so the flow prediction
	// is rebuilt sequentially: every cursor read every version of its
	// regions once, plus one latest-value read of the final version.
	for ver := 0; ver < sc.Rounds; ver++ {
		for _, p := range pubs {
			if err := model.Put(v, ver, p.piece, int(p.h.Core()), sc.FillRegion(v, ver, p.piece)); err != nil {
				return err
			}
		}
	}
	for _, c := range consumers {
		for ver := 0; ver < sc.Rounds; ver++ {
			for _, region := range c.regions {
				pred.addGet(model, v, ver, region, c.h.Core())
			}
		}
		for _, region := range c.regions {
			pred.addGet(model, v, sc.Rounds-1, region, c.h.Core())
		}
	}
	// The run ended fully retired; mirror that and assert the DHT holds no
	// record of any version anywhere.
	for ver := 0; ver < sc.Rounds; ver++ {
		for _, p := range pubs {
			if err := model.Discard(v, ver, p.piece, int(p.h.Core())); err != nil {
				return err
			}
		}
	}
	if err := checkStreamOwners(sc, machine, space, v, cons, model, sc.Rounds-1); err != nil {
		return err
	}
	return checkFlowAccounting(sc, machine, space, pred)
}

// checkStreamSync asserts the real stream and the model agree on the
// watermark, the retained floor and every cursor position.
func checkStreamSync(sc genwf.Scenario, v string, space *cods.Space,
	curs []*cods.Cursor, ids []int, ms *refmodel.Stream) error {
	latest, floor, err := space.StreamState(v)
	if err != nil {
		return err
	}
	if latest != ms.Latest() || floor != ms.Floor() {
		return fmt.Errorf("conformance: stream %q latest/floor = %d/%d, model says %d/%d\n%s",
			v, latest, floor, ms.Latest(), ms.Floor(), sc.GoLiteral())
	}
	for i, cur := range curs {
		mpos, err := ms.Pos(ids[i])
		if err != nil {
			return err
		}
		if pos := cur.Pos(); pos != mpos {
			return fmt.Errorf("conformance: stream %q cursor %d at %d, model says %d\n%s",
				v, i, pos, mpos, sc.GoLiteral())
		}
	}
	return nil
}

// checkStreamOwners asserts the lookup agrees with the model for every
// stream version up to the watermark: retained versions answer with
// exactly the model's owner set, retired versions answer with nothing —
// their records are gone from the DHT, not merely ignored.
func checkStreamOwners(sc genwf.Scenario, machine *cluster.Machine, space *cods.Space, v string,
	cons *decomp.Decomposition, model *refmodel.Model, latest int) error {
	cl := space.Lookup().ClientAt(machine.CoreOn(0, 0))
	for r := 0; r < cons.NumTasks(); r++ {
		for _, region := range getRegions(cons, r, sc.Ghost) {
			for ver := 0; ver <= latest; ver++ {
				entries, err := cl.Query("check", consAppID, v, ver, region)
				if err != nil {
					return fmt.Errorf("conformance: lookup %q v%d %v: %w", v, ver, region, err)
				}
				want := model.Owners(v, ver, region)
				if len(entries) != len(want) {
					return fmt.Errorf("conformance: lookup %q v%d %v returned %d owners, model predicts %d\n%s",
						v, ver, region, len(entries), len(want), sc.GoLiteral())
				}
				for i, e := range entries {
					if int(e.Owner) != want[i].Owner || !e.Region.Equal(want[i].Region) {
						return fmt.Errorf("conformance: lookup %q v%d %v entry %d = owner %d %v, model predicts owner %d %v\n%s",
							v, ver, region, i, e.Owner, e.Region, want[i].Owner, want[i].Region, sc.GoLiteral())
					}
				}
			}
		}
	}
	return nil
}

// migrateStreamNode re-stages every retained stream block owned by the
// killed node at its original cores, the way the elastic driver's ledger
// replay restores a replaced node: discard, re-put, mirrored into the
// model. The stream layer's block records stay valid because the
// replacement serves the same cores.
func migrateStreamNode(sc genwf.Scenario, machine *cluster.Machine, space *cods.Space,
	v string, pubs []*publisher, ms *refmodel.Stream, model *refmodel.Model, killed int) error {
	floor, latest := ms.Floor(), ms.Latest()
	for _, p := range pubs {
		if int(machine.NodeOf(p.h.Core())) != killed {
			continue
		}
		h := space.HandleAt(p.h.Core(), prodAppID, "stream:elastic")
		for ver := floor; ver <= latest; ver++ {
			if err := h.DiscardSequential(v, ver, p.piece); err != nil {
				return fmt.Errorf("conformance: stream elastic discard %q v%d %v: %w", v, ver, p.piece, err)
			}
			if err := model.Discard(v, ver, p.piece, int(p.h.Core())); err != nil {
				return err
			}
			if err := h.PutSequential(v, ver, p.piece, sc.FillRegion(v, ver, p.piece)); err != nil {
				return fmt.Errorf("conformance: stream elastic put %q v%d %v: %w", v, ver, p.piece, err)
			}
			if err := model.Put(v, ver, p.piece, int(p.h.Core()), sc.FillRegion(v, ver, p.piece)); err != nil {
				return err
			}
		}
	}
	return nil
}
