package conformance

import (
	"encoding/binary"
	"fmt"
	"hash/fnv"
	"math"
	"sync"

	"github.com/insitu/cods/internal/genwf"
	"github.com/insitu/cods/internal/geometry"
)

// RunStats is the backend-observable outcome of one conformance run: a
// digest of every retrieved region, the fabric's per-medium byte totals
// and the metered inter-application bytes per medium. Two backends are
// conformant when a scenario produces identical stats on both.
type RunStats struct {
	mu sync.Mutex
	// Gets maps a (rank, var, version, round, region) key to the FNV-1a
	// digest of the retrieved cells.
	Gets map[string]uint64
	// MediumBytes is the fabric total per medium (shm, network).
	MediumBytes [2]int64
	// InterApp is the metered inter-application bytes per medium.
	InterApp [2]int64
}

func newRunStats() *RunStats { return &RunStats{Gets: make(map[string]uint64)} }

func getKey(rank int, v string, version, round int, region geometry.BBox) string {
	return fmt.Sprintf("%d|%s|%d|%d|%v", rank, v, version, round, region)
}

// recordGet digests one retrieved region. Gets are deterministic per key,
// so recording is last-write-wins under the consumer concurrency.
func (s *RunStats) recordGet(key string, data []float64) {
	h := fnv.New64a()
	var buf [8]byte
	for _, f := range data {
		binary.LittleEndian.PutUint64(buf[:], math.Float64bits(f))
		h.Write(buf[:])
	}
	s.mu.Lock()
	s.Gets[key] = h.Sum64()
	s.mu.Unlock()
}

// RunCross runs the scenario on the in-process backend and again on the
// TCP loopback backend and asserts both produce byte-identical gets and
// identical metered traffic. It is the backend dimension of the
// conformance sweep: every operation the scenario performs must mean the
// same thing whether it stays in-process or crosses real sockets.
func RunCross(sc genwf.Scenario) error { return RunCrossOpts(sc, Options{}) }

// RunCrossOpts is RunCross with explicit options (Backend and stats are
// overwritten per leg).
func RunCrossOpts(sc genwf.Scenario, opts Options) error {
	ref := opts
	ref.Backend = "inproc"
	ref.stats = newRunStats()
	if err := RunOpts(sc, ref); err != nil {
		return fmt.Errorf("in-process backend: %w", err)
	}
	tcp := opts
	tcp.Backend = "tcp"
	tcp.stats = newRunStats()
	if err := RunOpts(sc, tcp); err != nil {
		return fmt.Errorf("tcp backend: %w", err)
	}
	return compareRuns(sc, ref.stats, tcp.stats)
}

// compareRuns diffs the two backends' stats. Get digests and inter-app
// bytes must always match; the full per-medium totals (which include
// control traffic) are compared only for fault-free scenarios, where the
// retry layer cannot legitimately vary the op count between runs, and not
// for backpressure streaming runs, where the racing garbage collection
// invalidates schedules at interleaving-dependent points and the requery
// count legitimately differs between runs.
func compareRuns(sc genwf.Scenario, ref, tcp *RunStats) error {
	if len(ref.Gets) != len(tcp.Gets) {
		return fmt.Errorf("conformance: backends disagree on get count: inproc %d, tcp %d\n%s",
			len(ref.Gets), len(tcp.Gets), sc.GoLiteral())
	}
	for key, want := range ref.Gets {
		got, ok := tcp.Gets[key]
		if !ok {
			return fmt.Errorf("conformance: tcp backend missing get %s\n%s", key, sc.GoLiteral())
		}
		if got != want {
			return fmt.Errorf("conformance: get %s differs across backends: inproc %016x, tcp %016x\n%s",
				key, want, got, sc.GoLiteral())
		}
	}
	for md, name := range [...]string{"shm", "network"} {
		if ref.InterApp[md] != tcp.InterApp[md] {
			return fmt.Errorf("conformance: inter-app %s bytes differ across backends: inproc %d, tcp %d\n%s",
				name, ref.InterApp[md], tcp.InterApp[md], sc.GoLiteral())
		}
		if sc.Faults == "" && !(sc.Stream && !sc.Drop) && ref.MediumBytes[md] != tcp.MediumBytes[md] {
			return fmt.Errorf("conformance: metered %s bytes differ across backends: inproc %d, tcp %d\n%s",
				name, ref.MediumBytes[md], tcp.MediumBytes[md], sc.GoLiteral())
		}
	}
	return nil
}
