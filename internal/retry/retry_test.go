package retry

import (
	"errors"
	"testing"
	"time"
)

func TestBackoffTable(t *testing.T) {
	cases := []struct {
		name    string
		p       Policy
		attempt int
		want    time.Duration
	}{
		{"zero policy", Policy{}, 1, 0},
		{"attempt zero", Policy{BaseDelay: time.Millisecond}, 0, 0},
		{"first backoff is base", Policy{BaseDelay: time.Millisecond, Multiplier: 2}, 1, time.Millisecond},
		{"doubles per attempt", Policy{BaseDelay: time.Millisecond, Multiplier: 2}, 3, 4 * time.Millisecond},
		{"triples per attempt", Policy{BaseDelay: time.Millisecond, Multiplier: 3}, 3, 9 * time.Millisecond},
		{"default multiplier is 2", Policy{BaseDelay: time.Millisecond}, 2, 2 * time.Millisecond},
		{"sub-1 multiplier treated as 2", Policy{BaseDelay: time.Millisecond, Multiplier: 0.5}, 2, 2 * time.Millisecond},
		{"cap applies", Policy{BaseDelay: time.Millisecond, Multiplier: 2, MaxDelay: 5 * time.Millisecond}, 4, 5 * time.Millisecond},
		{"cap on deep attempt", Policy{BaseDelay: time.Millisecond, Multiplier: 2, MaxDelay: 5 * time.Millisecond}, 60, 5 * time.Millisecond},
		{"cap above growth is inert", Policy{BaseDelay: time.Millisecond, Multiplier: 2, MaxDelay: time.Minute}, 3, 4 * time.Millisecond},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if got := tc.p.Backoff(tc.attempt, 7); got != tc.want {
				t.Fatalf("Backoff(%d) = %v, want %v", tc.attempt, got, tc.want)
			}
		})
	}
}

func TestBackoffJitterBounds(t *testing.T) {
	p := Policy{BaseDelay: time.Millisecond, Multiplier: 2, Jitter: 0.5}
	for attempt := 1; attempt <= 8; attempt++ {
		base := Policy{BaseDelay: p.BaseDelay, Multiplier: p.Multiplier}.Backoff(attempt, 0)
		lo := time.Duration(float64(base) * 0.5)
		for seed := uint64(0); seed < 64; seed++ {
			d := p.Backoff(attempt, seed)
			if d < lo || d >= base {
				t.Fatalf("attempt %d seed %d: jittered %v outside [%v, %v)", attempt, seed, d, lo, base)
			}
		}
	}
}

func TestBackoffJitterDeterministic(t *testing.T) {
	p := Policy{BaseDelay: time.Millisecond, Multiplier: 2, Jitter: 0.3}
	for attempt := 1; attempt <= 5; attempt++ {
		a := p.Backoff(attempt, 42)
		b := p.Backoff(attempt, 42)
		if a != b {
			t.Fatalf("attempt %d: same seed gave %v then %v", attempt, a, b)
		}
	}
	// Different seeds must actually spread (not all collapse to one point).
	seen := map[time.Duration]bool{}
	for seed := uint64(0); seed < 32; seed++ {
		seen[p.Backoff(1, seed)] = true
	}
	if len(seen) < 2 {
		t.Fatalf("jitter produced a single value across 32 seeds")
	}
}

func TestBackoffJitterClamped(t *testing.T) {
	p := Policy{BaseDelay: time.Millisecond, Jitter: 3}
	d := p.Backoff(1, 9)
	if d < 0 || d >= time.Millisecond {
		t.Fatalf("over-unity jitter gave %v, want [0, 1ms)", d)
	}
}

func TestDoStopsAtMaxAttempts(t *testing.T) {
	fail := errors.New("transient")
	calls := 0
	attempts, err := Do(Policy{MaxAttempts: 3}, 1, nil, nil, func(int) error {
		calls++
		return fail
	})
	if attempts != 3 || calls != 3 || !errors.Is(err, fail) {
		t.Fatalf("attempts=%d calls=%d err=%v, want 3/3/transient", attempts, calls, err)
	}
}

func TestDoSucceedsMidway(t *testing.T) {
	calls := 0
	attempts, err := Do(Policy{MaxAttempts: 5}, 1, nil, nil, func(int) error {
		calls++
		if calls < 3 {
			return errors.New("transient")
		}
		return nil
	})
	if attempts != 3 || err != nil {
		t.Fatalf("attempts=%d err=%v, want 3/nil", attempts, err)
	}
}

func TestDoRespectsNonRetryable(t *testing.T) {
	fatal := errors.New("fatal")
	attempts, err := Do(Policy{MaxAttempts: 5}, 1,
		func(err error) bool { return !errors.Is(err, fatal) }, nil,
		func(int) error { return fatal })
	if attempts != 1 || !errors.Is(err, fatal) {
		t.Fatalf("attempts=%d err=%v, want 1/fatal", attempts, err)
	}
}

func TestDoDeadlineStopsBeforeSleep(t *testing.T) {
	// The first backoff (10ms) already overshoots the 1ms deadline, so Do
	// must give up after one attempt without sleeping.
	p := Policy{MaxAttempts: 10, BaseDelay: 10 * time.Millisecond, Deadline: time.Millisecond}
	start := time.Now()
	attempts, err := Do(p, 1, nil, nil, func(int) error { return errors.New("transient") })
	if attempts != 1 || err == nil {
		t.Fatalf("attempts=%d err=%v, want 1/non-nil", attempts, err)
	}
	if el := time.Since(start); el > 5*time.Millisecond {
		t.Fatalf("Do slept %v despite deadline", el)
	}
}

func TestDoZeroPolicySingleAttempt(t *testing.T) {
	calls := 0
	attempts, err := Do(Policy{}, 1, nil, nil, func(int) error { calls++; return errors.New("x") })
	if attempts != 1 || calls != 1 || err == nil {
		t.Fatalf("zero policy: attempts=%d calls=%d err=%v", attempts, calls, err)
	}
	if (Policy{}).Enabled() {
		t.Fatalf("zero policy reports Enabled")
	}
	if !Default().Enabled() {
		t.Fatalf("Default policy reports disabled")
	}
}

func TestDoReportsSleeps(t *testing.T) {
	var slept []time.Duration
	p := Policy{MaxAttempts: 3, BaseDelay: 100 * time.Microsecond, Multiplier: 2}
	_, _ = Do(p, 1, nil, func(d time.Duration) { slept = append(slept, d) },
		func(int) error { return errors.New("transient") })
	if len(slept) != 2 || slept[0] != 100*time.Microsecond || slept[1] != 200*time.Microsecond {
		t.Fatalf("slept = %v, want [100µs 200µs]", slept)
	}
}
