// Package retry implements the bounded-retry policy shared by the layers
// that talk to the fabric: exponential backoff with deterministic jitter
// and an optional per-operation deadline.
//
// The paper's platform (Jaguar-scale Cray XT5 allocations) treats transport
// stalls and lost staging buffers as routine, so every fabric-facing layer
// — the CoDS pull engine, the DHT fan-out, the workflow runtime — retries
// transient failures under one policy instead of growing ad-hoc loops.
// Jitter is derived from a caller-provided seed with a splitmix64 hash, not
// from a global RNG: the backoff schedule of a given operation is a pure
// function of (policy, seed, attempt), which is what makes chaos tests
// reproducible under a fixed fault-plan seed.
package retry

import (
	"time"
)

// Policy bounds a retried operation. The zero Policy disables retrying
// (a single attempt, no backoff), so layers pay nothing until a policy is
// explicitly installed.
type Policy struct {
	// MaxAttempts is the total number of attempts, including the first.
	// Values <= 1 mean "no retry".
	MaxAttempts int
	// BaseDelay is the backoff before the second attempt.
	BaseDelay time.Duration
	// MaxDelay caps the grown backoff (0 = uncapped).
	MaxDelay time.Duration
	// Multiplier grows the delay per attempt (values < 1 are treated as 2,
	// the conventional doubling).
	Multiplier float64
	// Jitter is the fraction of each delay that is randomized, in [0, 1]:
	// the slept delay is uniform in [d*(1-Jitter), d). 0 disables jitter.
	Jitter float64
	// Deadline bounds the whole operation across attempts (0 = none): no
	// further attempt starts once Deadline has elapsed since the first.
	Deadline time.Duration
}

// Default is the policy the command-line tools install when retrying is
// requested without explicit tuning.
func Default() Policy {
	return Policy{
		MaxAttempts: 4,
		BaseDelay:   200 * time.Microsecond,
		MaxDelay:    50 * time.Millisecond,
		Multiplier:  2,
		Jitter:      0.2,
		Deadline:    5 * time.Second,
	}
}

// Enabled reports whether the policy performs any retrying at all.
func (p Policy) Enabled() bool { return p.MaxAttempts > 1 }

// splitmix64 is the SplitMix64 finalizer: a cheap, well-distributed
// deterministic hash used to derive jitter without shared RNG state.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to a uniform float64 in [0, 1).
func unit(h uint64) float64 { return float64(h>>11) / float64(1<<53) }

// Backoff returns the delay to sleep before attempt+1, where attempt is
// the 1-based index of the attempt that just failed. The un-jittered delay
// is min(MaxDelay, BaseDelay * Multiplier^(attempt-1)); jitter then picks a
// point in [d*(1-Jitter), d) deterministically from seed and attempt.
func (p Policy) Backoff(attempt int, seed uint64) time.Duration {
	if attempt < 1 || p.BaseDelay <= 0 {
		return 0
	}
	mult := p.Multiplier
	if mult < 1 {
		mult = 2
	}
	d := float64(p.BaseDelay)
	for i := 1; i < attempt; i++ {
		d *= mult
		if p.MaxDelay > 0 && d >= float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	if j := p.Jitter; j > 0 {
		if j > 1 {
			j = 1
		}
		u := unit(splitmix64(seed ^ uint64(attempt)*0x9e3779b97f4a7c15))
		d = d*(1-j) + u*d*j
	}
	return time.Duration(d)
}

// Do runs op up to MaxAttempts times, sleeping the policy's backoff
// between attempts. retryable classifies errors: a non-retryable error
// stops immediately. The per-operation Deadline is consulted before every
// sleep — if the next backoff would land past it, Do returns the last
// error instead of sleeping. It returns the number of attempts performed
// alongside the final error (nil on success).
//
// sleeps, when non-nil, receives each backoff actually slept; callers use
// it to feed histograms without the policy importing obs.
func Do(p Policy, seed uint64, retryable func(error) bool, sleeps func(time.Duration), op func(attempt int) error) (int, error) {
	max := p.MaxAttempts
	if max < 1 {
		max = 1
	}
	start := time.Now()
	var err error
	for attempt := 1; ; attempt++ {
		err = op(attempt)
		if err == nil {
			return attempt, nil
		}
		if attempt >= max {
			return attempt, err
		}
		if retryable != nil && !retryable(err) {
			return attempt, err
		}
		d := p.Backoff(attempt, seed)
		if p.Deadline > 0 && time.Since(start)+d > p.Deadline {
			return attempt, err
		}
		if d > 0 {
			if sleeps != nil {
				sleeps(d)
			}
			time.Sleep(d)
		}
	}
}
