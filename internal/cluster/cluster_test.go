package cluster

import (
	"sync"
	"testing"
)

func machine(t testing.TB, nodes, cores int) *Machine {
	t.Helper()
	m, err := NewMachine(nodes, cores)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestNewMachineValidation(t *testing.T) {
	if _, err := NewMachine(0, 12); err == nil {
		t.Error("zero nodes accepted")
	}
	if _, err := NewMachine(4, 0); err == nil {
		t.Error("zero cores accepted")
	}
}

func TestCoreNodeMapping(t *testing.T) {
	m := machine(t, 4, 12)
	if m.TotalCores() != 48 {
		t.Fatalf("TotalCores = %d", m.TotalCores())
	}
	if m.NodeOf(0) != 0 || m.NodeOf(11) != 0 || m.NodeOf(12) != 1 || m.NodeOf(47) != 3 {
		t.Fatal("NodeOf mapping wrong")
	}
	if m.CoreOn(2, 5) != CoreID(29) {
		t.Fatalf("CoreOn(2,5) = %d", m.CoreOn(2, 5))
	}
	if !m.SameNode(12, 23) || m.SameNode(11, 12) {
		t.Fatal("SameNode wrong")
	}
}

func TestCoreOutOfRangePanics(t *testing.T) {
	m := machine(t, 2, 4)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.NodeOf(8)
}

func TestPlacementAssign(t *testing.T) {
	m := machine(t, 2, 2)
	p := NewPlacement(m)
	t1 := TaskID{App: 1, Rank: 0}
	t2 := TaskID{App: 2, Rank: 0}
	if err := p.Assign(t1, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Assign(t2, 0); err == nil {
		t.Fatal("double-booked core accepted")
	}
	if err := p.Assign(t1, 1); err == nil {
		t.Fatal("double placement of a task accepted")
	}
	if err := p.Assign(t2, 99); err == nil {
		t.Fatal("out-of-range core accepted")
	}
	c, ok := p.CoreOf(t1)
	if !ok || c != 0 {
		t.Fatalf("CoreOf = %d, %v", c, ok)
	}
	n, ok := p.NodeOfTask(t1)
	if !ok || n != 0 {
		t.Fatalf("NodeOfTask = %d, %v", n, ok)
	}
	if _, ok := p.NodeOfTask(TaskID{App: 9, Rank: 9}); ok {
		t.Fatal("unplaced task reported placed")
	}
	got, ok := p.TaskOn(0)
	if !ok || got != t1 {
		t.Fatalf("TaskOn = %v", got)
	}
}

func TestPlacementTasksSortedAndFreeCores(t *testing.T) {
	m := machine(t, 1, 4)
	p := NewPlacement(m)
	if err := p.Assign(TaskID{App: 2, Rank: 0}, 3); err != nil {
		t.Fatal(err)
	}
	if err := p.Assign(TaskID{App: 1, Rank: 1}, 1); err != nil {
		t.Fatal(err)
	}
	if err := p.Assign(TaskID{App: 1, Rank: 0}, 0); err != nil {
		t.Fatal(err)
	}
	tasks := p.Tasks()
	want := []TaskID{{1, 0}, {1, 1}, {2, 0}}
	for i := range want {
		if tasks[i] != want[i] {
			t.Fatalf("Tasks = %v", tasks)
		}
	}
	free := p.FreeCores()
	if len(free) != 1 || free[0] != 2 {
		t.Fatalf("FreeCores = %v", free)
	}
}

func TestMetricsRecordAndQuery(t *testing.T) {
	mt := NewMetrics()
	mt.Record("couple:2", InterApp, Network, 2, 0, 1, 100)
	mt.Record("couple:2", InterApp, SharedMemory, 2, 1, 1, 50)
	mt.Record("halo:1", IntraApp, Network, 1, 0, 2, 7)
	if mt.Bytes(InterApp, Network) != 100 {
		t.Fatalf("inter/network = %d", mt.Bytes(InterApp, Network))
	}
	if mt.Bytes(InterApp, SharedMemory) != 50 {
		t.Fatalf("inter/shm = %d", mt.Bytes(InterApp, SharedMemory))
	}
	if mt.Bytes(IntraApp, Network) != 7 {
		t.Fatalf("intra/network = %d", mt.Bytes(IntraApp, Network))
	}
	if mt.AppBytes(2, InterApp, Network) != 100 || mt.AppBytes(2, InterApp, SharedMemory) != 50 {
		t.Fatal("per-app inter counters wrong")
	}
	if mt.AppBytes(1, IntraApp, Network) != 7 {
		t.Fatal("per-app intra counters wrong")
	}
	if mt.AppBytes(99, InterApp, Network) != 0 {
		t.Fatal("unknown app should read 0")
	}
}

func TestMetricsFlowsFilter(t *testing.T) {
	mt := NewMetrics()
	mt.Record("couple:CAP2", InterApp, Network, 2, 0, 1, 10)
	mt.Record("halo:CAP1", IntraApp, Network, 1, 1, 0, 20)
	all := mt.Flows("")
	if len(all) != 2 {
		t.Fatalf("Flows(\"\") = %d entries", len(all))
	}
	couple := mt.Flows("couple:")
	if len(couple) != 1 || couple[0].Bytes != 10 {
		t.Fatalf("Flows(couple:) = %v", couple)
	}
}

func TestMetricsReset(t *testing.T) {
	mt := NewMetrics()
	mt.Record("x", InterApp, Network, 1, 0, 1, 5)
	mt.Reset()
	if mt.Bytes(InterApp, Network) != 0 || len(mt.Flows("")) != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestMetricsConcurrent(t *testing.T) {
	mt := NewMetrics()
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 1000; i++ {
				mt.Record("p", InterApp, Network, 3, 0, 1, 1)
			}
		}()
	}
	wg.Wait()
	if got := mt.Bytes(InterApp, Network); got != 8000 {
		t.Fatalf("concurrent total = %d, want 8000", got)
	}
}

func TestMediumClassStrings(t *testing.T) {
	if SharedMemory.String() != "shm" || Network.String() != "network" {
		t.Fatal("Medium strings wrong")
	}
	if InterApp.String() != "inter-app" || IntraApp.String() != "intra-app" {
		t.Fatal("Class strings wrong")
	}
}

func TestNegativeTransferPanics(t *testing.T) {
	mt := NewMetrics()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	mt.Record("p", InterApp, Network, 1, 0, 1, -1)
}

func TestTaskIDString(t *testing.T) {
	if (TaskID{App: 3, Rank: 17}).String() != "3:17" {
		t.Fatalf("TaskID.String = %q", TaskID{App: 3, Rank: 17})
	}
}

func TestCoreOnValidation(t *testing.T) {
	m := machine(t, 2, 3)
	for _, fn := range []func(){
		func() { m.CoreOn(5, 0) },
		func() { m.CoreOn(0, 3) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("expected panic")
				}
			}()
			fn()
		}()
	}
}
