// Package cluster models the multi-core compute platform the framework runs
// on: a machine of identical nodes, each with a fixed number of processor
// cores. It stands in for the paper's Cray XT5 allocation (12-core nodes).
//
// The package also owns the measurement side of the reproduction: every
// data transfer the framework performs is recorded here, classified by
// medium (intra-node shared memory vs. inter-node network) and by whether
// it moves data between two applications (coupling) or within one
// (e.g. stencil halo exchange). The evaluation figures are computed from
// these counters, exactly as the paper measures "amount of data transferred
// over the network".
package cluster

import (
	"fmt"
	"sort"
	"sync"
)

// NodeID identifies a compute node.
type NodeID int

// CoreID identifies a processor core globally across the machine.
type CoreID int

// Machine is a homogeneous collection of multi-core nodes. Core c lives on
// node c / CoresPerNode.
type Machine struct {
	numNodes     int
	coresPerNode int
	metrics      *Metrics
}

// NewMachine builds a machine with numNodes nodes of coresPerNode cores.
func NewMachine(numNodes, coresPerNode int) (*Machine, error) {
	if numNodes < 1 {
		return nil, fmt.Errorf("cluster: numNodes %d < 1", numNodes)
	}
	if coresPerNode < 1 {
		return nil, fmt.Errorf("cluster: coresPerNode %d < 1", coresPerNode)
	}
	return &Machine{numNodes: numNodes, coresPerNode: coresPerNode, metrics: NewMetrics()}, nil
}

// NumNodes returns the node count.
func (m *Machine) NumNodes() int { return m.numNodes }

// CoresPerNode returns the per-node core count.
func (m *Machine) CoresPerNode() int { return m.coresPerNode }

// TotalCores returns the machine-wide core count.
func (m *Machine) TotalCores() int { return m.numNodes * m.coresPerNode }

// NodeOf maps a core to the node hosting it.
func (m *Machine) NodeOf(c CoreID) NodeID {
	if c < 0 || int(c) >= m.TotalCores() {
		panic(fmt.Sprintf("cluster: core %d out of range [0,%d)", c, m.TotalCores()))
	}
	return NodeID(int(c) / m.coresPerNode)
}

// CoreOn returns the core at the given slot of a node.
func (m *Machine) CoreOn(n NodeID, slot int) CoreID {
	if n < 0 || int(n) >= m.numNodes {
		panic(fmt.Sprintf("cluster: node %d out of range [0,%d)", n, m.numNodes))
	}
	if slot < 0 || slot >= m.coresPerNode {
		panic(fmt.Sprintf("cluster: slot %d out of range [0,%d)", slot, m.coresPerNode))
	}
	return CoreID(int(n)*m.coresPerNode + slot)
}

// SameNode reports whether two cores share a node.
func (m *Machine) SameNode(a, b CoreID) bool { return m.NodeOf(a) == m.NodeOf(b) }

// Metrics returns the machine's transfer counters.
func (m *Machine) Metrics() *Metrics { return m.metrics }

// TaskID identifies one computation task: a (application id, process rank)
// pair, the unit the mapping strategies place onto cores.
type TaskID struct {
	App  int
	Rank int
}

// String renders the task as "app:rank".
func (t TaskID) String() string { return fmt.Sprintf("%d:%d", t.App, t.Rank) }

// Placement records which core runs each computation task. At most one task
// of a given running set occupies a core (the paper creates one execution
// client per core); sequentially coupled applications may reuse cores, so
// placements are per workflow stage.
type Placement struct {
	m      *Machine
	coreOf map[TaskID]CoreID
	used   map[CoreID]TaskID
}

// NewPlacement creates an empty placement for machine m.
func NewPlacement(m *Machine) *Placement {
	return &Placement{m: m, coreOf: make(map[TaskID]CoreID), used: make(map[CoreID]TaskID)}
}

// Assign places task t on core c. It fails if the core is occupied or the
// task is already placed.
func (p *Placement) Assign(t TaskID, c CoreID) error {
	if int(c) >= p.m.TotalCores() || c < 0 {
		return fmt.Errorf("cluster: core %d out of range", c)
	}
	if old, ok := p.used[c]; ok {
		return fmt.Errorf("cluster: core %d already runs task %v", c, old)
	}
	if old, ok := p.coreOf[t]; ok {
		return fmt.Errorf("cluster: task %v already placed on core %d", t, old)
	}
	p.coreOf[t] = c
	p.used[c] = t
	return nil
}

// CoreOf returns the core running task t.
func (p *Placement) CoreOf(t TaskID) (CoreID, bool) {
	c, ok := p.coreOf[t]
	return c, ok
}

// MustCoreOf is CoreOf for callers that know t is placed.
func (p *Placement) MustCoreOf(t TaskID) CoreID {
	c, ok := p.coreOf[t]
	if !ok {
		panic(fmt.Sprintf("cluster: task %v not placed", t))
	}
	return c
}

// NodeOfTask returns the node hosting task t.
func (p *Placement) NodeOfTask(t TaskID) (NodeID, bool) {
	c, ok := p.coreOf[t]
	if !ok {
		return 0, false
	}
	return p.m.NodeOf(c), true
}

// TaskOn returns the task occupying core c, if any.
func (p *Placement) TaskOn(c CoreID) (TaskID, bool) {
	t, ok := p.used[c]
	return t, ok
}

// Len returns the number of placed tasks.
func (p *Placement) Len() int { return len(p.coreOf) }

// Tasks returns all placed tasks in deterministic order.
func (p *Placement) Tasks() []TaskID {
	out := make([]TaskID, 0, len(p.coreOf))
	for t := range p.coreOf {
		out = append(out, t)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].App != out[j].App {
			return out[i].App < out[j].App
		}
		return out[i].Rank < out[j].Rank
	})
	return out
}

// FreeCores returns the cores without an assigned task, ascending.
func (p *Placement) FreeCores() []CoreID {
	var out []CoreID
	for c := 0; c < p.m.TotalCores(); c++ {
		if _, ok := p.used[CoreID(c)]; !ok {
			out = append(out, CoreID(c))
		}
	}
	return out
}

// Medium distinguishes the two transfer paths of HybridDART.
type Medium int

// Transfer media.
const (
	SharedMemory Medium = iota
	Network
)

// String names the medium.
func (md Medium) String() string {
	if md == SharedMemory {
		return "shm"
	}
	return "network"
}

// Class distinguishes coupling traffic, internal application traffic and
// framework control traffic (DHT queries, collective bookkeeping).
type Class int

// Transfer classes.
const (
	InterApp Class = iota
	IntraApp
	Control
)

// String names the class.
func (cl Class) String() string {
	switch cl {
	case InterApp:
		return "inter-app"
	case IntraApp:
		return "intra-app"
	case Control:
		return "control"
	default:
		return fmt.Sprintf("Class(%d)", int(cl))
	}
}

// Flow is one recorded transfer between nodes, used by the network
// simulator to compute transfer times under contention. Src == Dst flows
// are shared-memory copies.
type Flow struct {
	Phase string // logical phase tag, e.g. "couple:CAP2"
	Src   NodeID
	Dst   NodeID
	Bytes int64
	// Medium is the String() form of the transfer's medium ("shm",
	// "network"). Flows synthesized outside the metrics path (what-if
	// analyses, old traces) may leave it empty, in which case consumers
	// fall back to the Src == Dst heuristic.
	Medium string
	// Class is the String() form of the traffic class ("inter-app",
	// "intra-app", "control"); empty when unrecorded.
	Class string
}

// Metrics accumulates transfer statistics. All methods are safe for
// concurrent use.
type Metrics struct {
	mu sync.Mutex
	// bytes[class][medium] totals.
	bytes [3][2]int64
	// perApp[{app, class}] = bytes received by tasks of app, split by
	// medium (the paper reports per-consumer coupled data volumes and
	// per-application intra-app exchange volumes).
	perApp map[appClass]*[2]int64
	flows  []Flow
}

type appClass struct {
	app   int
	class Class
}

// NewMetrics creates an empty metric set.
func NewMetrics() *Metrics {
	return &Metrics{perApp: make(map[appClass]*[2]int64)}
}

// Record notes a transfer of n bytes to a task of application dstApp.
// class is IntraApp when source and destination belong to the same
// application. phase tags the flow for timing analysis.
func (mt *Metrics) Record(phase string, class Class, medium Medium, dstApp int, src, dst NodeID, n int64) {
	if n < 0 {
		panic("cluster: negative transfer size")
	}
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.bytes[class][medium] += n
	key := appClass{app: dstApp, class: class}
	e := mt.perApp[key]
	if e == nil {
		e = new([2]int64)
		mt.perApp[key] = e
	}
	e[medium] += n
	mt.flows = append(mt.flows, Flow{
		Phase: phase, Src: src, Dst: dst, Bytes: n,
		Medium: medium.String(), Class: class.String(),
	})
}

// Bytes returns the total bytes for a class and medium.
func (mt *Metrics) Bytes(class Class, medium Medium) int64 {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	return mt.bytes[class][medium]
}

// AppBytes returns the bytes received by application app for the given
// class and medium.
func (mt *Metrics) AppBytes(app int, class Class, medium Medium) int64 {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	if e := mt.perApp[appClass{app: app, class: class}]; e != nil {
		return e[medium]
	}
	return 0
}

// Flows returns a copy of all recorded flows, optionally filtered by phase
// prefix ("" matches everything).
func (mt *Metrics) Flows(phasePrefix string) []Flow {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	var out []Flow
	for _, f := range mt.flows {
		if phasePrefix == "" || hasPrefix(f.Phase, phasePrefix) {
			out = append(out, f)
		}
	}
	return out
}

// AppClassBytes is one per-(application, class) row of a MetricsSnapshot,
// split by medium.
type AppClassBytes struct {
	App   int
	Class Class
	Bytes [2]int64
}

// MetricsSnapshot is a serializable copy of a Metrics, used to ship the
// counters a remote endpoint group (a codsnode process) recorded back to
// the driver. All fields are exported so the snapshot crosses process
// boundaries through the wire codec.
type MetricsSnapshot struct {
	Bytes  [3][2]int64
	PerApp []AppClassBytes
	Flows  []Flow
}

// Snapshot copies the full metric state.
func (mt *Metrics) Snapshot() MetricsSnapshot {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	s := MetricsSnapshot{Bytes: mt.bytes}
	for k, e := range mt.perApp {
		s.PerApp = append(s.PerApp, AppClassBytes{App: k.app, Class: k.class, Bytes: *e})
	}
	s.Flows = append(s.Flows, mt.flows...)
	return s
}

// Merge folds a snapshot taken elsewhere into this metric set. Transfers
// executed by distinct processes are disjoint, so merging every child's
// snapshot into the driver's metrics yields the same totals an in-process
// run records.
func (mt *Metrics) Merge(s MetricsSnapshot) {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	for class := range s.Bytes {
		for medium := range s.Bytes[class] {
			mt.bytes[class][medium] += s.Bytes[class][medium]
		}
	}
	for _, row := range s.PerApp {
		key := appClass{app: row.App, class: row.Class}
		e := mt.perApp[key]
		if e == nil {
			e = new([2]int64)
			mt.perApp[key] = e
		}
		e[0] += row.Bytes[0]
		e[1] += row.Bytes[1]
	}
	mt.flows = append(mt.flows, s.Flows...)
}

// Reset clears all counters and flows.
func (mt *Metrics) Reset() {
	mt.mu.Lock()
	defer mt.mu.Unlock()
	mt.bytes = [3][2]int64{}
	mt.perApp = make(map[appClass]*[2]int64)
	mt.flows = nil
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}
