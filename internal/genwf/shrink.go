package genwf

import (
	"github.com/insitu/cods/internal/decomp"
	"github.com/insitu/cods/internal/sfc"
)

// Shrink reduces a failing scenario to a (locally) minimal one that still
// fails. fails must report whether a scenario reproduces the failure; it
// is assumed true for the input. Shrinking is deterministic: candidates
// are tried in a fixed order, greedily restarting from the first accepted
// reduction, so the same failing scenario always shrinks to the same
// minimal scenario.
func Shrink(sc Scenario, fails func(Scenario) bool) Scenario {
	for accepted := 0; accepted < 200; accepted++ {
		improved := false
		for _, cand := range candidates(sc) {
			if cand.Validate() != nil {
				continue
			}
			if fails(cand) {
				sc = cand
				improved = true
				break
			}
		}
		if !improved {
			break
		}
	}
	return sc
}

// candidates lists the single-step reductions of a scenario, biggest
// simplifications first. Every candidate is a deep copy; invalid ones are
// filtered by the caller.
func candidates(sc Scenario) []Scenario {
	var out []Scenario
	add := func(mutate func(*Scenario)) {
		c := sc.Clone()
		mutate(&c)
		out = append(out, c)
	}

	if sc.Faults != "" {
		add(func(c *Scenario) { c.Faults = "" })
	}
	if sc.Retry != 0 && sc.Faults == "" {
		add(func(c *Scenario) { c.Retry = 0 })
	}
	if sc.Restage {
		add(func(c *Scenario) { c.Restage = false })
	}
	if sc.Remap {
		add(func(c *Scenario) { c.Remap = false })
	}
	if sc.Resub != 0 {
		add(func(c *Scenario) { c.Resub = 0 })
	}
	if sc.ConsumeEvery > 1 {
		add(func(c *Scenario) { c.ConsumeEvery = 1 })
	}
	if sc.Stream && sc.Drop {
		// Backpressure is the simpler policy, but stride/resub/kill depend
		// on drop-oldest; drop those with it.
		add(func(c *Scenario) { c.Drop, c.ConsumeEvery, c.Resub, c.Kill = false, 1, 0, 0 })
	}
	if sc.Stream && sc.Rounds > 1 {
		add(func(c *Scenario) { c.Rounds, c.Resub = 1, 0 })
		add(func(c *Scenario) {
			c.Rounds--
			if c.Resub >= c.Rounds {
				c.Resub = 0
			}
		})
	}
	if sc.Stream && sc.MaxLag > 1 {
		add(func(c *Scenario) { c.MaxLag = 1 })
		add(func(c *Scenario) { c.MaxLag-- })
	}
	if sc.Rejoin {
		add(func(c *Scenario) { c.Rejoin = false })
	}
	if sc.Kill != 0 {
		add(func(c *Scenario) { c.Kill, c.Rejoin = 0, false })
		if sc.Kill > 1 {
			add(func(c *Scenario) { c.Kill = 1 })
		}
	}
	if !sc.Sequential {
		// Sequential staging is the base coupling mode — concurrent adds
		// the overlap machinery on top, and needs cores for both apps at
		// once that the producers-then-consumers schedule frees up.
		add(func(c *Scenario) { c.Sequential = true })
	}
	if !sc.Sequential && !sc.Staged {
		add(func(c *Scenario) { c.Staged = true })
	}
	if sc.Versions > 1 {
		add(func(c *Scenario) { c.Versions = 1 })
		add(func(c *Scenario) { c.Versions-- })
	}
	if sc.Vars > 1 {
		add(func(c *Scenario) { c.Vars = 1 })
	}
	if sc.Ghost > 0 {
		add(func(c *Scenario) { c.Ghost = 0 })
		add(func(c *Scenario) { c.Ghost-- })
	}
	if sc.SpanCache != sfc.DefaultSpanCacheCapacity {
		add(func(c *Scenario) { c.SpanCache = sfc.DefaultSpanCacheCapacity })
	}
	if sc.PullWorkers != 1 {
		add(func(c *Scenario) { c.PullWorkers = 1 })
	}
	if sc.Mapping != Consecutive {
		add(func(c *Scenario) { c.Mapping = Consecutive })
	}
	if sc.Curve != "" {
		add(func(c *Scenario) { c.Curve = "" })
	}
	if sc.ProdKind != decomp.Blocked {
		add(func(c *Scenario) { c.ProdKind, c.ProdBlock = decomp.Blocked, nil })
	}
	if sc.ConsKind != decomp.Blocked {
		add(func(c *Scenario) { c.ConsKind, c.ConsBlock = decomp.Blocked, nil })
	}

	// Coarsen the task grids one dimension at a time.
	for d := range sc.ProdGrid {
		if sc.ProdGrid[d] > 1 {
			d := d
			add(func(c *Scenario) { c.ProdGrid[d] = 1 })
			if sc.ProdGrid[d] > 2 {
				add(func(c *Scenario) { c.ProdGrid[d] /= 2 })
			}
		}
	}
	for d := range sc.ConsGrid {
		if sc.ConsGrid[d] > 1 {
			d := d
			add(func(c *Scenario) { c.ConsGrid[d] = 1 })
			if sc.ConsGrid[d] > 2 {
				add(func(c *Scenario) { c.ConsGrid[d] /= 2 })
			}
		}
	}

	// Drop the last dimension entirely.
	if len(sc.Domain) > 1 {
		add(func(c *Scenario) {
			n := len(c.Domain) - 1
			c.Domain = c.Domain[:n]
			c.ProdGrid = c.ProdGrid[:n]
			c.ConsGrid = c.ConsGrid[:n]
			if c.ProdBlock != nil {
				c.ProdBlock = c.ProdBlock[:n]
			}
			if c.ConsBlock != nil {
				c.ConsBlock = c.ConsBlock[:n]
			}
		})
	}

	// Shrink domain extents, keeping each at least as large as the grids
	// that partition it (Validate would reject those anyway; this just
	// avoids generating obviously dead candidates).
	for d := range sc.Domain {
		floor := sc.ProdGrid[d]
		if sc.ConsGrid[d] > floor {
			floor = sc.ConsGrid[d]
		}
		if half := sc.Domain[d] / 2; half >= floor && half < sc.Domain[d] {
			d := d
			add(func(c *Scenario) { c.Domain[d] /= 2 })
		}
		if sc.Domain[d]-1 >= floor {
			d := d
			add(func(c *Scenario) { c.Domain[d]-- })
		}
	}

	// Shrink the machine.
	if sc.Nodes > 1 {
		add(func(c *Scenario) { c.Nodes-- })
	}
	if sc.CoresPerNode > 1 {
		add(func(c *Scenario) { c.CoresPerNode-- })
	}
	return out
}
